// Multiaccel: the extension proposed in the paper's conclusion — a platform
// with MORE than two memories (here a CPU pool plus two different
// accelerator types, each with its own device memory). Tasks come in
// flavours that prefer different accelerators; a pool-time session runs the
// generalised MemHEFT and MemMinMin, spreading them across pools while
// respecting all three memory budgets.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"

	memsched "repro"
)

func main() {
	// A synthetic signal-processing pipeline: stages alternate between
	// FFT-ish tasks (fast on accelerator A), dense-algebra tasks (fast
	// on accelerator B) and glue tasks (fine on the CPU).
	const stages, width = 6, 4
	g := memsched.NewGraph()
	rng := rand.New(rand.NewSource(7))

	type flavour int
	const (
		glue, fftish, dense flavour = 0, 1, 2
	)
	var flavours []flavour

	prev := make([]memsched.TaskID, 0, width)
	for s := 0; s < stages; s++ {
		cur := make([]memsched.TaskID, 0, width)
		for wdt := 0; wdt < width; wdt++ {
			fl := flavour(s % 3)
			id := g.AddTask(fmt.Sprintf("s%d.%d", s, wdt), 0, 0) // times via matrix below
			flavours = append(flavours, fl)
			cur = append(cur, id)
			for _, p := range prev {
				if rng.Intn(2) == 0 {
					g.MustAddEdge(p, id, int64(rng.Intn(4)+1), 2)
				}
			}
		}
		// Guarantee connectivity stage to stage.
		if len(prev) > 0 {
			for _, id := range cur {
				if len(g.Parents(id)) == 0 {
					g.MustAddEdge(prev[rng.Intn(len(prev))], id, 1, 2)
				}
			}
		}
		prev = cur
	}

	// Per-pool times: pool 0 = CPU, pool 1 = accelerator A, pool 2 = B.
	times := make([][]float64, g.NumTasks())
	for i := range times {
		base := float64(rng.Intn(6) + 4)
		switch flavours[i] {
		case glue:
			times[i] = []float64{base, base * 4, base * 4}
		case fftish:
			times[i] = []float64{base * 6, base, base * 5}
		case dense:
			times[i] = []float64{base * 6, base * 5, base}
		}
	}
	sess, err := memsched.NewSession(g, memsched.WithPoolTimes(times))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("pipeline: %d tasks, %d edges over a CPU pool and two accelerators\n\n", g.NumTasks(), g.NumEdges())
	fmt.Println("device-mem  MemHEFT-k  MemMinMin-k   MemMinMin-k stats: tasks/pool  peaks/pool  cache-hit")
	for _, devMem := range []int64{40, 24, 16, 12, 8} {
		p := memsched.NewPlatform(
			memsched.Pool{Procs: 4, Capacity: 120},    // CPU: plenty of RAM
			memsched.Pool{Procs: 1, Capacity: devMem}, // accelerator A
			memsched.Pool{Procs: 1, Capacity: devMem}, // accelerator B
		)
		line := fmt.Sprintf("%10d", devMem)
		var detail string
		for _, name := range []string{"memheft", "memminmin"} {
			res, err := sess.Schedule(ctx, p, memsched.WithScheduler(name), memsched.WithSeed(7))
			switch {
			case errors.Is(err, memsched.ErrMemoryBound):
				line += fmt.Sprintf("  %9s", "-")
			case err != nil:
				log.Fatal(err)
			default:
				line += fmt.Sprintf("  %9.0f", res.Makespan())
				if name == "memminmin" {
					// The structured stats of the incremental k-pool
					// engine: where the tasks landed, the peak memory
					// residency of every pool, and the fraction of
					// candidate evaluations served from the
					// epoch-invalidated memo.
					detail = fmt.Sprintf("   %v  %v  %4.0f%%",
						res.Stats.PoolTasks, res.PeakResidency(), 100*res.Stats.CacheHitRate())
				}
			}
		}
		fmt.Println(line + detail)
	}
	fmt.Println("\nShrinking the device memories forces work back onto the CPU pool until")
	fmt.Println("nothing fits — the dual-memory trade-off of the paper, now across three pools.")
}
