// LU: schedule the tiled LU factorisation of the paper's linear-algebra
// benchmark on a mirage-like machine (12 CPU cores + 3 GPUs) and show how
// the memory-aware heuristics trade makespan for device-memory footprint —
// the experiment behind Figure 14, run through one scheduling session.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	const tiles = 8 // 8x8 tiled matrix keeps the example fast; Fig. 14 uses 13x13
	g, err := memsched.LUGraph(memsched.DefaultLinalgConfig(tiles))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU %dx%d: %d tasks, %d edges (files are tiles, transfers cost 50 ms)\n\n",
		tiles, tiles, g.NumTasks(), g.NumEdges())

	sess, err := memsched.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// First, the memory-oblivious reference: how much memory would HEFT
	// want?
	unbounded := memsched.NewDualPlatform(12, 3, memsched.Unlimited, memsched.Unlimited)
	ref, err := sess.Schedule(ctx, unbounded, memsched.WithScheduler("heft"), memsched.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	peaks := ref.PeakResidency()
	fmt.Printf("HEFT needs %d blue tiles and %d red tiles for makespan %.0f ms\n\n",
		peaks[0], peaks[1], ref.Makespan())

	peak := peaks[0]
	if peaks[1] > peak {
		peak = peaks[1]
	}
	fmt.Println("memory(tiles)  MemHEFT(ms)  MemMinMin(ms)")
	for frac := 10; frac >= 3; frac-- {
		bound := peak * int64(frac) / 10
		p := memsched.NewDualPlatform(12, 3, bound, bound)
		row := fmt.Sprintf("%13d", bound)
		for _, name := range []string{"memheft", "memminmin"} {
			res, err := sess.Schedule(ctx, p, memsched.WithScheduler(name), memsched.WithSeed(1))
			switch {
			case errors.Is(err, memsched.ErrMemoryBound):
				row += fmt.Sprintf("  %11s", "-")
			case err != nil:
				log.Fatal(err)
			default:
				row += fmt.Sprintf("  %11.0f", res.Makespan())
			}
		}
		fmt.Println(row)
	}
	fmt.Println("\nA '-' means the heuristic could not fit the factorisation in that budget.")
	fmt.Println("Note how MemHEFT keeps producing schedules well below MemMinMin's failure point,")
	fmt.Println("matching the paper's observation that MinMin-style greed fills memory with")
	fmt.Println("early-released non-critical tasks (§6.2.3).")
}
