// LU: schedule the tiled LU factorisation of the paper's linear-algebra
// benchmark on a mirage-like machine (12 CPU cores + 3 GPUs) and show how
// the memory-aware heuristics trade makespan for device-memory footprint —
// the experiment behind Figure 14.
package main

import (
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	const tiles = 8 // 8x8 tiled matrix keeps the example fast; Fig. 14 uses 13x13
	g, err := memsched.LUGraph(memsched.DefaultLinalgConfig(tiles))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU %dx%d: %d tasks, %d edges (files are tiles, transfers cost 50 ms)\n\n",
		tiles, tiles, g.NumTasks(), g.NumEdges())

	// First, the memory-oblivious reference: how much memory would HEFT
	// want?
	unbounded := memsched.NewPlatform(12, 3, memsched.Unlimited, memsched.Unlimited)
	ref, err := memsched.HEFT(g, unbounded, memsched.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	blue, red := ref.MemoryPeaks()
	fmt.Printf("HEFT needs %d blue tiles and %d red tiles for makespan %.0f ms\n\n", blue, red, ref.Makespan())

	peak := blue
	if red > peak {
		peak = red
	}
	fmt.Println("memory(tiles)  MemHEFT(ms)  MemMinMin(ms)")
	for frac := 10; frac >= 3; frac-- {
		bound := peak * int64(frac) / 10
		p := memsched.NewPlatform(12, 3, bound, bound)
		row := fmt.Sprintf("%13d", bound)
		for _, fn := range []memsched.SchedulerFunc{memsched.MemHEFT, memsched.MemMinMin} {
			s, err := fn(g, p, memsched.Options{Seed: 1})
			switch {
			case errors.Is(err, memsched.ErrMemoryBound):
				row += fmt.Sprintf("  %11s", "-")
			case err != nil:
				log.Fatal(err)
			default:
				row += fmt.Sprintf("  %11.0f", s.Makespan())
			}
		}
		fmt.Println(row)
	}
	fmt.Println("\nA '-' means the heuristic could not fit the factorisation in that budget.")
	fmt.Println("Note how MemHEFT keeps producing schedules well below MemMinMin's failure point,")
	fmt.Println("matching the paper's observation that MinMin-style greed fills memory with")
	fmt.Println("early-released non-critical tasks (§6.2.3).")
}
