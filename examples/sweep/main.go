// Sweep: evaluate one random workflow across a full memory-fraction ×
// scheduler grid in one call to the parallel sweep engine — the shape of
// the paper's experimental section (normalised-memory sweeps) as a
// first-class batch primitive. The engine fans the grid out over all cores
// with per-worker session forks and still returns results in deterministic
// point order; this example re-runs the sweep single-threaded to prove the
// results are bit-identical.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	memsched "repro"
	"repro/sweep"
)

func main() {
	params := memsched.SmallRandParams()
	params.Size = 60
	g, err := memsched.GenerateRandom(params, 42)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}

	alphas := make([]float64, 10)
	for i := range alphas {
		alphas[i] = float64(i+1) / 10
	}
	spec := sweep.Spec{
		Base:       memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited),
		Alphas:     alphas,
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{42},
	}

	ctx := context.Background()
	res, err := sweep.Run(ctx, sess, spec)
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Summary
	fmt.Printf("random DAG: %d tasks, %d edges; HEFT reference makespan %g, peak %d\n",
		g.NumTasks(), g.NumEdges(), sum.RefMakespan, sum.Peak)
	fmt.Printf("%d points on %d workers in %v (%d feasible)\n\n",
		sum.Points, sum.Workers, sum.WallTime.Round(0), sum.Feasible)

	fmt.Println("alpha   memheft  memminmin   (makespan; - = memory bound)")
	for ai, alpha := range alphas {
		line := fmt.Sprintf("%5.0f%%", alpha*100)
		for _, c := range sum.Curves {
			if math.IsNaN(c.Makespan[ai]) {
				line += fmt.Sprintf("  %8s", "-")
			} else {
				line += fmt.Sprintf("  %8.0f", c.Makespan[ai])
			}
		}
		fmt.Println(line)
	}
	fmt.Println()
	for _, fr := range sum.Frontier {
		if fr.Axis < 0 {
			fmt.Printf("%-10s never fits\n", fr.Scheduler)
			continue
		}
		fmt.Printf("%-10s fits from alpha %.0f%%\n", fr.Scheduler, fr.X*100)
	}
	best := res.Points[sum.BestIndex]
	fmt.Printf("best point: %s at alpha %.0f%% -> makespan %g\n\n",
		best.Point.Scheduler, best.Point.Alpha*100, best.Makespan)

	// Determinism check: a single-worker run must reproduce every result
	// bit for bit.
	spec.Workers = 1
	serial, err := sweep.Run(ctx, sess, spec)
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Points {
		a, b := res.Points[i], serial.Points[i]
		if a.Feasible != b.Feasible || a.Makespan != b.Makespan {
			log.Fatalf("nondeterministic sweep: point %d differs (%v/%g vs %v/%g)",
				i, a.Feasible, a.Makespan, b.Feasible, b.Makespan)
		}
	}
	fmt.Printf("determinism: %d points bit-identical across worker counts\n", len(res.Points))
}
