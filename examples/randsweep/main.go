// Randsweep: generate a DAGGEN-style random workflow, sweep the memory
// budget from generous to starved, and print the resulting
// makespan/feasibility profile of all four heuristics together with the
// theoretical lower bound — a miniature of the paper's Figure 11.
package main

import (
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	params := memsched.SmallRandParams() // 30 tasks, the paper's shape
	g, err := memsched.GenerateRandom(params, 42)
	if err != nil {
		log.Fatal(err)
	}

	p := memsched.NewPlatform(2, 2, memsched.Unlimited, memsched.Unlimited)
	ref, err := memsched.HEFT(g, p, memsched.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	blue, red := ref.MemoryPeaks()
	peak := blue
	if red > peak {
		peak = red
	}
	lb, err := memsched.LowerBound(g, p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("random DAG: %d tasks, %d edges; HEFT makespan %g with peaks (%d, %d)\n",
		g.NumTasks(), g.NumEdges(), ref.Makespan(), blue, red)
	fmt.Printf("makespan lower bound (any schedule): %g\n\n", lb)

	fmt.Println("bound  MemHEFT  MemMinMin   (normalised to HEFT)")
	for pct := 100; pct >= 10; pct -= 10 {
		bound := peak * int64(pct) / 100
		pb := memsched.NewPlatform(2, 2, bound, bound)
		line := fmt.Sprintf("%4d%%", pct)
		for _, fn := range []memsched.SchedulerFunc{memsched.MemHEFT, memsched.MemMinMin} {
			s, err := fn(g, pb, memsched.Options{Seed: 42})
			switch {
			case errors.Is(err, memsched.ErrMemoryBound):
				line += fmt.Sprintf("  %7s", "-")
			case err != nil:
				log.Fatal(err)
			default:
				line += fmt.Sprintf("  %7.3f", s.Makespan()/ref.Makespan())
			}
		}
		fmt.Println(line)
	}
	fmt.Println("\nA '-' marks the memory bounds the heuristic cannot satisfy; the paper's")
	fmt.Println("Figure 11 shows the same staircase shape on its sample DAG.")
}
