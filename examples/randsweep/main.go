// Randsweep: generate a DAGGEN-style random workflow, sweep the memory
// budget from generous to starved, and print the resulting
// makespan/feasibility profile of the memory-aware heuristics together with
// the theoretical lower bound — a miniature of the paper's Figure 11, run
// through one scheduling session.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	params := memsched.SmallRandParams() // 30 tasks, the paper's shape
	g, err := memsched.GenerateRandom(params, 42)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	p := memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited)
	ref, err := sess.Schedule(ctx, p, memsched.WithScheduler("heft"), memsched.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	peaks := ref.PeakResidency()
	peak := peaks[0]
	if peaks[1] > peak {
		peak = peaks[1]
	}
	lb, err := sess.LowerBound(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("random DAG: %d tasks, %d edges; HEFT makespan %g with peaks (%d, %d)\n",
		g.NumTasks(), g.NumEdges(), ref.Makespan(), peaks[0], peaks[1])
	fmt.Printf("makespan lower bound (any schedule): %g\n\n", lb)

	fmt.Println("bound  MemHEFT  MemMinMin   (normalised to HEFT)")
	for pct := 100; pct >= 10; pct -= 10 {
		bound := peak * int64(pct) / 100
		pb := memsched.NewDualPlatform(2, 2, bound, bound)
		line := fmt.Sprintf("%4d%%", pct)
		for _, name := range []string{"memheft", "memminmin"} {
			res, err := sess.Schedule(ctx, pb, memsched.WithScheduler(name), memsched.WithSeed(42))
			switch {
			case errors.Is(err, memsched.ErrMemoryBound):
				line += fmt.Sprintf("  %7s", "-")
			case err != nil:
				log.Fatal(err)
			default:
				line += fmt.Sprintf("  %7.3f", res.Makespan()/ref.Makespan())
			}
		}
		fmt.Println(line)
	}
	fmt.Println("\nA '-' marks the memory bounds the heuristic cannot satisfy; the paper's")
	fmt.Println("Figure 11 shows the same staircase shape on its sample DAG.")
}
