// Quickstart: build a small workflow by hand, open a scheduling session for
// it, run every registered heuristic under a tight memory budget, and
// compare against the exact optimum — the paper's Figure 2 example, end to
// end through the Session API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	// The paper's toy DAG: four tasks, two of which strongly prefer the
	// accelerator (red) side.
	g := memsched.PaperExample()

	// One session per graph: it owns the priority-list and statics memos,
	// so every Schedule call below reuses them.
	sess, err := memsched.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// One CPU-side processor, one accelerator, and equal memory bounds
	// that get progressively tighter.
	for _, bound := range []int64{6, 5, 4, 3} {
		p := memsched.NewDualPlatform(1, 1, bound, bound)
		fmt.Printf("== memory bound %d on each side ==\n", bound)

		for _, name := range []string{"heft", "minmin", "memheft", "memminmin"} {
			res, err := sess.Schedule(ctx, p, memsched.WithScheduler(name), memsched.WithSeed(1))
			if err != nil {
				if errors.Is(err, memsched.ErrMemoryBound) {
					fmt.Printf("  %-9s  does not fit\n", name)
					continue
				}
				log.Fatal(err)
			}
			peaks := res.PeakResidency()
			fits := "fits"
			if peaks[0] > bound || peaks[1] > bound {
				// The oblivious heuristics ignore the bound;
				// report honestly.
				fits = fmt.Sprintf("EXCEEDS bound (peaks %d/%d)", peaks[0], peaks[1])
			}
			fmt.Printf("  %-9s  makespan %-4g %s\n", name, res.Makespan(), fits)
		}

		// The exact reference (tiny graph, instant).
		opt, err := sess.Optimal(ctx, p)
		switch {
		case err != nil:
			log.Fatal(err)
		case opt.Schedule == nil:
			fmt.Println("  optimal    infeasible for every list schedule")
		default:
			fmt.Printf("  optimal    makespan %-4g (proven=%v, %d nodes)\n",
				opt.Makespan(), opt.Stats.Proven, opt.Stats.Nodes)
		}
		fmt.Println()
	}
}
