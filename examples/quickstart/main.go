// Quickstart: build a small workflow by hand, schedule it with every
// heuristic under a tight memory budget, and compare against the exact
// optimum — the paper's Figure 2 example, end to end.
package main

import (
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	// The paper's toy DAG: four tasks, two of which strongly prefer the
	// accelerator (red) side.
	g := memsched.PaperExample()

	// One CPU-side processor, one accelerator, and equal memory bounds
	// that get progressively tighter.
	for _, bound := range []int64{6, 5, 4, 3} {
		p := memsched.NewPlatform(1, 1, bound, bound)
		fmt.Printf("== memory bound %d on each side ==\n", bound)

		for _, algo := range []struct {
			name string
			fn   memsched.SchedulerFunc
		}{
			{"HEFT     ", memsched.HEFT},
			{"MinMin   ", memsched.MinMin},
			{"MemHEFT  ", memsched.MemHEFT},
			{"MemMinMin", memsched.MemMinMin},
		} {
			s, err := algo.fn(g, p, memsched.Options{Seed: 1})
			if err != nil {
				if errors.Is(err, memsched.ErrMemoryBound) {
					fmt.Printf("  %s  does not fit\n", algo.name)
					continue
				}
				log.Fatal(err)
			}
			blue, red := s.MemoryPeaks()
			fits := "fits"
			if blue > bound || red > bound {
				// The oblivious heuristics ignore the bound;
				// report honestly.
				fits = fmt.Sprintf("EXCEEDS bound (peaks %d/%d)", blue, red)
			}
			fmt.Printf("  %s  makespan %-4g %s\n", algo.name, s.Makespan(), fits)
		}

		// The exact reference (tiny graph, instant).
		opt, proven, err := memsched.Optimal(g, p, memsched.OptimalOptions{})
		switch {
		case err != nil:
			log.Fatal(err)
		case opt == nil:
			fmt.Println("  Optimal    infeasible for every list schedule")
		default:
			fmt.Printf("  Optimal    makespan %-4g (proven=%v)\n", opt.Makespan(), proven)
		}
		fmt.Println()
	}
}
