// Cholesky: the Figure 15 scenario. Builds the tiled Cholesky task graph,
// prints its structure, schedules it at a few memory budgets through one
// session and validates every schedule against the model — a template for
// plugging your own workflow into the library.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	const tiles = 8
	cfg := memsched.DefaultLinalgConfig(tiles)
	g, err := memsched.CholeskyGraph(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Cholesky %dx%d: %d tasks, %d edges\n", tiles, tiles, g.NumTasks(), g.NumEdges())
	fmt.Printf("lower-triangular footprint: %d tiles\n\n", tiles*(tiles+1)/2)

	sess, err := memsched.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A coarse bisection for each heuristic: the smallest memory budget
	// (same on both sides) at which it still schedules the graph. The
	// session's memos make the repeated rescheduling cheap.
	p := memsched.NewDualPlatform(12, 3, memsched.Unlimited, memsched.Unlimited)
	ref, err := sess.Schedule(ctx, p, memsched.WithScheduler("heft"), memsched.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	peaks := ref.PeakResidency()
	hi := peaks[0]
	if peaks[1] > hi {
		hi = peaks[1]
	}

	for _, name := range []string{"memheft", "memminmin"} {
		lo, high := int64(1), hi
		for lo < high {
			mid := (lo + high) / 2
			pb := memsched.NewDualPlatform(12, 3, mid, mid)
			if _, err := sess.Schedule(ctx, pb, memsched.WithScheduler(name), memsched.WithSeed(1)); err == nil {
				high = mid
			} else if errors.Is(err, memsched.ErrMemoryBound) {
				lo = mid + 1
			} else {
				log.Fatal(err)
			}
		}
		pb := memsched.NewDualPlatform(12, 3, lo, lo)
		res, err := sess.Schedule(ctx, pb, memsched.WithScheduler(name), memsched.WithSeed(1))
		if err != nil {
			log.Fatalf("%s failed at its own threshold: %v", name, err)
		}
		if err := res.Validate(); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", name, err)
		}
		fmt.Printf("%-9s needs >= %3d tiles per memory (HEFT wants %d); makespan there: %.0f ms\n",
			name, lo, hi, res.Makespan())
	}

	fmt.Println("\nAt ample memory both heuristics approach the memory-oblivious makespan:")
	full := memsched.NewDualPlatform(12, 3, hi, hi)
	for _, name := range []string{"heft", "memheft", "memminmin"} {
		res, err := sess.Schedule(ctx, full, memsched.WithScheduler(name), memsched.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s makespan %.0f ms\n", name, res.Makespan())
	}
}
