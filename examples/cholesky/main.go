// Cholesky: the Figure 15 scenario. Builds the tiled Cholesky task graph,
// prints its structure, schedules it at a few memory budgets and validates
// every schedule against the model — a template for plugging your own
// workflow into the library.
package main

import (
	"errors"
	"fmt"
	"log"

	memsched "repro"
)

func main() {
	const tiles = 8
	cfg := memsched.DefaultLinalgConfig(tiles)
	g, err := memsched.CholeskyGraph(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Cholesky %dx%d: %d tasks, %d edges\n", tiles, tiles, g.NumTasks(), g.NumEdges())
	fmt.Printf("lower-triangular footprint: %d tiles\n\n", tiles*(tiles+1)/2)

	// A coarse bisection for each heuristic: the smallest memory budget
	// (same on both sides) at which it still schedules the graph.
	p := memsched.NewPlatform(12, 3, memsched.Unlimited, memsched.Unlimited)
	ref, err := memsched.HEFT(g, p, memsched.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	b, r := ref.MemoryPeaks()
	hi := b
	if r > hi {
		hi = r
	}

	for _, algo := range []struct {
		name string
		fn   memsched.SchedulerFunc
	}{
		{"MemHEFT", memsched.MemHEFT},
		{"MemMinMin", memsched.MemMinMin},
	} {
		lo, high := int64(1), hi
		for lo < high {
			mid := (lo + high) / 2
			pb := memsched.NewPlatform(12, 3, mid, mid)
			if _, err := algo.fn(g, pb, memsched.Options{Seed: 1}); err == nil {
				high = mid
			} else if errors.Is(err, memsched.ErrMemoryBound) {
				lo = mid + 1
			} else {
				log.Fatal(err)
			}
		}
		pb := memsched.NewPlatform(12, 3, lo, lo)
		s, err := algo.fn(g, pb, memsched.Options{Seed: 1})
		if err != nil {
			log.Fatalf("%s failed at its own threshold: %v", algo.name, err)
		}
		if err := s.Validate(); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", algo.name, err)
		}
		fmt.Printf("%-9s needs >= %3d tiles per memory (HEFT wants %d); makespan there: %.0f ms\n",
			algo.name, lo, hi, s.Makespan())
	}

	fmt.Println("\nAt ample memory both heuristics approach the memory-oblivious makespan:")
	full := memsched.NewPlatform(12, 3, hi, hi)
	for _, algo := range []struct {
		name string
		fn   memsched.SchedulerFunc
	}{
		{"HEFT", memsched.HEFT}, {"MemHEFT", memsched.MemHEFT}, {"MemMinMin", memsched.MemMinMin},
	} {
		s, err := algo.fn(g, full, memsched.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s makespan %.0f ms\n", algo.name, s.Makespan())
	}
}
