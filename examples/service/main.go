// Command service demonstrates embedding the scheduling service
// in-process: it starts a serve.Server on a loopback port, drives it with
// the typed client — register once, schedule twice to show the warm
// session-cache hit — and shuts it down gracefully.
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"

	memsched "repro"
	"repro/serve"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srv := serve.NewServer(serve.Config{Addr: "127.0.0.1:0", CacheSize: 32, MaxInFlight: 8})
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	addr := srv.Addr()
	if addr == "" {
		log.Fatal("service: listener failed to bind")
	}
	client := serve.NewClient("http://" + addr)

	// Register the paper's four-task example once; its id is the graph's
	// canonical content hash.
	reg, err := client.RegisterGraph(ctx, memsched.PaperExample(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d-task graph as %s…\n", reg.Tasks, reg.ID[:12])

	// Schedule it twice by id: both requests reuse the cached session, so
	// the second one runs against warm rank/statics memos.
	four := int64(4)
	req := serve.ScheduleRequest{
		GraphID:   reg.ID,
		Pools:     []serve.PoolSpec{{Procs: 1, Capacity: &four}, {Procs: 1, Capacity: &four}},
		Scheduler: "memheft",
		Seed:      1,
	}
	for i := 0; i < 2; i++ {
		res, err := client.Schedule(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: makespan %g, peaks %v, session cached %v (%d µs)\n",
			i+1, res.Makespan, res.Peaks, res.SessionCached, res.WallMicros)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d scheduled, session hit rate %.0f%%\n",
		st.Scheduled, 100*st.SessionHitRate())

	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
