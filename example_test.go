package memsched_test

import (
	"context"
	"errors"
	"fmt"

	memsched "repro"
)

// The paper's four-task example scheduled with MemHEFT under the memory
// bounds where the memory/makespan trade-off appears (§3.3), through the
// Session API.
func ExampleSession_Schedule() {
	g := memsched.PaperExample()
	sess, err := memsched.NewSession(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	p := memsched.NewDualPlatform(1, 1, 4, 4)
	res, err := sess.Schedule(context.Background(), p, memsched.WithSeed(1))
	if err != nil {
		fmt.Println("does not fit:", err)
		return
	}
	peaks := res.PeakResidency()
	fmt.Printf("makespan %g, peaks (%d,%d)\n", res.Makespan(), peaks[0], peaks[1])
	// Output: makespan 10, peaks (4,4)
}

// Memory-aware scheduling fails cleanly when the graph cannot fit.
func ExampleSession_Schedule_memoryBound() {
	g := memsched.PaperExample()
	sess, _ := memsched.NewSession(g)
	p := memsched.NewDualPlatform(1, 1, 2, 2) // task T3 alone needs 4 units
	_, err := sess.Schedule(context.Background(), p, memsched.WithScheduler("memminmin"))
	fmt.Println(errors.Is(err, memsched.ErrMemoryBound))
	// Output: true
}

// The exact reference search proves the paper's optimal trade-off: with
// both memories capped at 4 units the best achievable makespan is 7.
func ExampleSession_Optimal() {
	g := memsched.PaperExample()
	sess, _ := memsched.NewSession(g)
	res, err := sess.Optimal(context.Background(), memsched.NewDualPlatform(1, 1, 4, 4))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("makespan %g (proven %v)\n", res.Makespan(), res.Stats.Proven)
	// Output: makespan 7 (proven true)
}

// Building a workflow by hand and inspecting the graph.
func ExampleNewGraph() {
	g := memsched.NewGraph()
	prep := g.AddTask("prepare", 3, 1) // blue time 3, red time 1
	solve := g.AddTask("solve", 6, 3)
	g.MustAddEdge(prep, solve, 2, 1) // 2-unit file, 1 time unit across
	fmt.Println(g.NumTasks(), g.NumEdges(), g.MemReq(solve))
	// Output: 2 1 2
}

// Generating one of the paper's random workloads deterministically.
func ExampleGenerateRandom() {
	g, err := memsched.GenerateRandom(memsched.SmallRandParams(), 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(g.NumTasks())
	// Output: 30
}

// The scheduler registry is case-insensitive and enumerable.
func ExampleSchedulers() {
	for _, name := range memsched.Schedulers() {
		fmt.Println(name)
	}
	// Output:
	// heft
	// memheft
	// memheft-insertion
	// memminmin
	// minmin
}
