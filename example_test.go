package memsched_test

import (
	"context"
	"errors"
	"fmt"

	memsched "repro"
)

// The paper's four-task example scheduled with MemHEFT under the memory
// bounds where the memory/makespan trade-off appears (§3.3), through the
// Session API.
func ExampleSession_Schedule() {
	g := memsched.PaperExample()
	sess, err := memsched.NewSession(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	p := memsched.NewDualPlatform(1, 1, 4, 4)
	res, err := sess.Schedule(context.Background(), p, memsched.WithSeed(1))
	if err != nil {
		fmt.Println("does not fit:", err)
		return
	}
	peaks := res.PeakResidency()
	fmt.Printf("makespan %g, peaks (%d,%d)\n", res.Makespan(), peaks[0], peaks[1])
	// Output: makespan 10, peaks (4,4)
}

// Memory-aware scheduling fails cleanly when the graph cannot fit.
func ExampleSession_Schedule_memoryBound() {
	g := memsched.PaperExample()
	sess, _ := memsched.NewSession(g)
	p := memsched.NewDualPlatform(1, 1, 2, 2) // task T3 alone needs 4 units
	_, err := sess.Schedule(context.Background(), p, memsched.WithScheduler("memminmin"))
	fmt.Println(errors.Is(err, memsched.ErrMemoryBound))
	// Output: true
}

// The exact reference search proves the paper's optimal trade-off: with
// both memories capped at 4 units the best achievable makespan is 7.
func ExampleSession_Optimal() {
	g := memsched.PaperExample()
	sess, _ := memsched.NewSession(g)
	res, err := sess.Optimal(context.Background(), memsched.NewDualPlatform(1, 1, 4, 4))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("makespan %g (proven %v)\n", res.Makespan(), res.Stats.Proven)
	// Output: makespan 7 (proven true)
}

// The online StarPU-style dispatcher replays the paper example at runtime:
// scheduling decisions happen at task-completion events, with eager
// transfers and memory admission control. WithPolicy selects the dispatch
// order among admissible ready tasks.
func ExampleSession_Simulate() {
	g := memsched.PaperExample()
	sess, _ := memsched.NewSession(g)
	p := memsched.NewDualPlatform(1, 1, 4, 4)
	for _, policy := range []memsched.SimPolicy{memsched.SimRankPolicy, memsched.SimEFTPolicy} {
		res, err := sess.Simulate(context.Background(), p, memsched.WithPolicy(policy))
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: makespan %g after %d events\n", res.Stats.Scheduler, res.Makespan(), res.Stats.Events)
	}
	// Output:
	// sim-rank: makespan 10 after 5 events
	// sim-eft: makespan 10 after 5 events
}

// One session can run every registered heuristic; the memory-aware
// variants (memheft, memminmin) match their oblivious references (heft,
// minmin) here because the 6-unit memories never constrain the example.
func ExampleWithScheduler() {
	sess, _ := memsched.NewSession(memsched.PaperExample())
	p := memsched.NewDualPlatform(1, 1, 6, 6)
	for _, name := range []string{"heft", "memheft", "memminmin"} {
		res, err := sess.Schedule(context.Background(), p, memsched.WithScheduler(name))
		if err != nil {
			fmt.Println(err)
			return
		}
		peaks := res.PeakResidency()
		fmt.Printf("%s: makespan %g, peaks (%d,%d)\n", name, res.Makespan(), peaks[0], peaks[1])
	}
	// Output:
	// heft: makespan 6, peaks (3,5)
	// memheft: makespan 6, peaks (3,5)
	// memminmin: makespan 7, peaks (0,5)
}

// Equal-content graphs share one canonical hash — the key under which the
// scheduling service caches warm sessions.
func ExampleGraphHash() {
	a := memsched.PaperExample()
	b := memsched.PaperExample()
	fmt.Println(memsched.GraphHash(a) == memsched.GraphHash(b))
	fmt.Println(len(memsched.GraphHash(a)))
	// Output:
	// true
	// 64
}

// Building a workflow by hand and inspecting the graph.
func ExampleNewGraph() {
	g := memsched.NewGraph()
	prep := g.AddTask("prepare", 3, 1) // blue time 3, red time 1
	solve := g.AddTask("solve", 6, 3)
	g.MustAddEdge(prep, solve, 2, 1) // 2-unit file, 1 time unit across
	fmt.Println(g.NumTasks(), g.NumEdges(), g.MemReq(solve))
	// Output: 2 1 2
}

// Generating one of the paper's random workloads deterministically.
func ExampleGenerateRandom() {
	g, err := memsched.GenerateRandom(memsched.SmallRandParams(), 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(g.NumTasks())
	// Output: 30
}

// The scheduler registry is case-insensitive and enumerable.
func ExampleSchedulers() {
	for _, name := range memsched.Schedulers() {
		fmt.Println(name)
	}
	// Output:
	// heft
	// memheft
	// memheft-insertion
	// memminmin
	// minmin
}
