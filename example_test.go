package memsched_test

import (
	"errors"
	"fmt"

	memsched "repro"
)

// The paper's four-task example scheduled with MemHEFT under the memory
// bounds where the memory/makespan trade-off appears (§3.3).
func ExampleMemHEFT() {
	g := memsched.PaperExample()
	p := memsched.NewPlatform(1, 1, 4, 4)
	s, err := memsched.MemHEFT(g, p, memsched.Options{Seed: 1})
	if err != nil {
		fmt.Println("does not fit:", err)
		return
	}
	blue, red := s.MemoryPeaks()
	fmt.Printf("makespan %g, peaks (%d,%d)\n", s.Makespan(), blue, red)
	// Output: makespan 10, peaks (4,4)
}

// Memory-aware scheduling fails cleanly when the graph cannot fit.
func ExampleMemMinMin_memoryBound() {
	g := memsched.PaperExample()
	p := memsched.NewPlatform(1, 1, 2, 2) // task T3 alone needs 4 units
	_, err := memsched.MemMinMin(g, p, memsched.Options{})
	fmt.Println(errors.Is(err, memsched.ErrMemoryBound))
	// Output: true
}

// The exact reference search proves the paper's optimal trade-off: with
// both memories capped at 4 units the best achievable makespan is 7.
func ExampleOptimal() {
	g := memsched.PaperExample()
	s, proven, err := memsched.Optimal(g, memsched.NewPlatform(1, 1, 4, 4), memsched.OptimalOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("makespan %g (proven %v)\n", s.Makespan(), proven)
	// Output: makespan 7 (proven true)
}

// Building a workflow by hand and inspecting the graph.
func ExampleNewGraph() {
	g := memsched.NewGraph()
	prep := g.AddTask("prepare", 3, 1) // blue time 3, red time 1
	solve := g.AddTask("solve", 6, 3)
	g.MustAddEdge(prep, solve, 2, 1) // 2-unit file, 1 time unit across
	fmt.Println(g.NumTasks(), g.NumEdges(), g.MemReq(solve))
	// Output: 2 1 2
}

// Generating one of the paper's random workloads deterministically.
func ExampleGenerateRandom() {
	g, err := memsched.GenerateRandom(memsched.SmallRandParams(), 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(g.NumTasks())
	// Output: 30
}
