package memsched

import (
	"context"
	"sync"
	"testing"

	"repro/internal/daggen"
)

func warmTestGraph(t *testing.T, size int, seed int64) *Graph {
	t.Helper()
	params := daggen.SmallParams()
	params.Size = size
	g, err := daggen.Generate(params, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWarmStartChainMatchesCold walks a shrinking-capacity chain with
// WithWarmStart and asserts every schedule is bit-identical to a cold run
// on a fresh session, with replay doing real work after the first point.
func TestWarmStartChainMatchesCold(t *testing.T) {
	ctx := context.Background()
	g := warmTestGraph(t, 70, 17)
	warm, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate from the unbounded peak down into the infeasible band.
	ref, err := warm.Schedule(ctx, NewDualPlatform(2, 2, Unlimited, Unlimited), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	peak := ref.PeakResidency()[0]
	if p := ref.PeakResidency()[1]; p > peak {
		peak = p
	}
	replayedTotal := 0
	for step, frac := range []float64{1.0, 0.9, 0.8, 0.7, 0.5, 0.3} {
		capacity := int64(frac * float64(peak))
		p := NewDualPlatform(2, 2, capacity, capacity)
		wres, werr := warm.Schedule(ctx, p, WithSeed(17), WithWarmStart(true))
		cres, cerr := cold.Schedule(ctx, p, WithSeed(17))
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("step %d: warm err %v, cold err %v", step, werr, cerr)
		}
		if werr != nil {
			continue // both infeasible: nothing to compare, no trace stored
		}
		if len(wres.Schedule.Tasks) != len(cres.Schedule.Tasks) {
			t.Fatalf("step %d: task count diverged", step)
		}
		for i := range cres.Schedule.Tasks {
			if wres.Schedule.Tasks[i] != cres.Schedule.Tasks[i] {
				t.Fatalf("step %d: task %d placed %+v warm, %+v cold",
					step, i, wres.Schedule.Tasks[i], cres.Schedule.Tasks[i])
			}
		}
		if step == 0 && wres.Stats.ReplayedPlacements != 0 {
			t.Fatalf("first warm run replayed %d placements with no trace", wres.Stats.ReplayedPlacements)
		}
		replayedTotal += wres.Stats.ReplayedPlacements
	}
	if replayedTotal == 0 {
		t.Fatal("shrinking chain never replayed a placement")
	}
}

// TestWarmStartGrowingCapacityNotReplayed pins the soundness guard: a trace
// recorded on a smaller platform must not be replayed when a capacity grew
// — growth can unblock tasks the trace never saw.
func TestWarmStartGrowingCapacityNotReplayed(t *testing.T) {
	ctx := context.Background()
	sess, err := NewSession(warmTestGraph(t, 50, 9))
	if err != nil {
		t.Fatal(err)
	}
	small := NewDualPlatform(2, 2, 1<<40, 1<<40)
	big := NewDualPlatform(2, 2, 1<<41, 1<<41)
	if !ReplayEligible(big, small) || ReplayEligible(small, big) {
		t.Fatal("ReplayEligible direction wrong")
	}
	if _, err := sess.Schedule(ctx, small, WithSeed(9), WithWarmStart(true)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Schedule(ctx, big, WithSeed(9), WithWarmStart(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReplayedPlacements != 0 {
		t.Fatalf("grown capacity replayed %d placements", res.Stats.ReplayedPlacements)
	}
	// The big run's own trace replaces the small one; shrinking back is
	// eligible again and replays fully (the schedule is unchanged).
	res, err = sess.Schedule(ctx, small, WithSeed(9), WithWarmStart(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ReplayedPlacements == 0 {
		t.Fatal("shrinking back replayed nothing")
	}
}

// TestWarmStartInsertionInert pins that the insertion ablation never
// records or replays: its commits depend on idle-gap state a trace does not
// capture.
func TestWarmStartInsertionInert(t *testing.T) {
	ctx := context.Background()
	sess, err := NewSession(warmTestGraph(t, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	p := NewDualPlatform(2, 2, Unlimited, Unlimited)
	for round := 0; round < 2; round++ {
		res, err := sess.Schedule(ctx, p, WithSeed(3), WithInsertion(), WithWarmStart(true))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ReplayedPlacements != 0 || res.Stats.ReplayTruncated {
			t.Fatalf("round %d: insertion run replayed %d placements", round, res.Stats.ReplayedPlacements)
		}
	}
}

// TestWarmUpCancellation pins the cooperative-cancellation contract of
// WarmUp.
func TestWarmUpCancellation(t *testing.T) {
	sess, err := NewSession(warmTestGraph(t, 60, 5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sess.WarmUp(ctx, 5); err == nil {
		t.Fatal("cancelled WarmUp succeeded")
	}
	if err := sess.WarmUp(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentForkDetach exercises the copy-on-write fork machinery under
// the race detector: warm forks (and a fork-of-fork) schedule divergent
// seeds — each detaching onto its private memo — while the parent keeps
// scheduling its own seed and taking further forks. Run with -race this
// proves the frozen snapshot handoff never races with parent writes.
func TestConcurrentForkDetach(t *testing.T) {
	ctx := context.Background()
	g := warmTestGraph(t, 60, 13)
	parent, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.WarmUp(ctx, 13); err != nil {
		t.Fatal(err)
	}
	p := NewDualPlatform(2, 2, Unlimited, Unlimited)
	want, err := parent.Schedule(ctx, p, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for i := 0; i < 8; i++ {
		fork := parent.Fork()
		if i%2 == 1 {
			fork = fork.Fork() // fork-of-fork merges frozen views
		}
		wg.Add(1)
		go func(fork *Session, seed int64) {
			defer wg.Done()
			// Inherited seed first (served frozen), then a divergent
			// seed (copy-on-write detach), then warm-start replay runs.
			if _, err := fork.Schedule(ctx, p, WithSeed(13)); err != nil {
				errc <- err
				return
			}
			if _, err := fork.Schedule(ctx, p, WithSeed(seed)); err != nil {
				errc <- err
				return
			}
			for r := 0; r < 3; r++ {
				if _, err := fork.Schedule(ctx, p, WithSeed(seed), WithWarmStart(true)); err != nil {
					errc <- err
					return
				}
			}
		}(fork, int64(100+i))
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := parent.Schedule(ctx, p, WithSeed(13)); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	again, err := parent.Schedule(ctx, p, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Schedule.Tasks {
		if again.Schedule.Tasks[i] != want.Schedule.Tasks[i] {
			t.Fatalf("parent schedule diverged at task %d after concurrent forks", i)
		}
	}
}
