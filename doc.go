// Package memsched is a Go implementation of the memory-aware list
// scheduling heuristics for hybrid (dual-memory) platforms of Herrmann,
// Marchal and Robert, "Memory-aware list scheduling for hybrid platforms"
// (INRIA RR-8461, IPDPS 2014).
//
// A hybrid platform has P1 identical "blue" processors sharing a blue
// memory (think CPUs and host RAM) and P2 identical "red" processors
// sharing a red memory (think GPUs and device memory). An application is a
// DAG of tasks; every task has one processing time per processor colour,
// and every edge carries a data file that occupies memory from its
// producer's start until its consumer's completion, moving between memories
// at a communication cost when producer and consumer live on different
// sides. The problem: minimise the makespan without ever exceeding either
// memory capacity.
//
// The package exposes:
//
//   - graph construction and serialisation (type Graph, NewGraph, ReadGraph);
//   - the four schedulers of the paper — HEFT and MinMin (memory-oblivious
//     references) and MemHEFT and MemMinMin (the memory-aware variants);
//   - a schedule validator that checks all model constraints, plus makespan
//     and per-memory peak reporting;
//   - workload generators: DAGGEN-style random graphs and tiled LU /
//     Cholesky factorisation graphs with broadcast pipelines;
//   - exact references for small instances: the paper's ILP formulation
//     solved by a built-in branch-and-bound MILP solver, and a combinatorial
//     optimal search over list schedules;
//   - the full experiment harness reproducing every figure and table of the
//     paper's evaluation (see EXPERIMENTS.md).
//
// Quickstart:
//
//	g := memsched.NewGraph()
//	a := g.AddTask("prepare", 3, 1) // 3 time units on blue, 1 on red
//	b := g.AddTask("solve", 6, 3)
//	g.MustAddEdge(a, b, 2, 1) // a 2-unit file, 1 time unit to move across
//
//	p := memsched.NewPlatform(2, 1, 8, 4) // 2 blue procs, 1 red, memories 8 and 4
//	s, err := memsched.MemHEFT(g, p, memsched.Options{})
//	if err != nil { ... }
//	fmt.Println(s.Makespan())
//
// See the examples/ directory for complete programs.
package memsched
