// Package memsched is a Go implementation of the memory-aware list
// scheduling heuristics for hybrid (dual-memory) platforms of Herrmann,
// Marchal and Robert, "Memory-aware list scheduling for hybrid platforms"
// (INRIA RR-8461, IPDPS 2014), generalised to platforms with any number of
// memory pools.
//
// A platform is an ordered list of memory pools, each with identical
// processors sharing one memory (type Platform, NewPlatform). The paper's
// hybrid platform is the 2-pool case — P1 "blue" processors sharing a blue
// memory (think CPUs and host RAM) and P2 "red" processors sharing a red
// memory (think GPUs and device memory) — built with NewDualPlatform. An
// application is a DAG of tasks; every task has one processing time per
// pool, and every edge carries a data file that occupies memory from its
// producer's start until its consumer's completion, moving between pools at
// a communication cost when producer and consumer live on different sides.
// The problem: minimise the makespan without ever exceeding any memory
// capacity.
//
// # Sessions
//
// All scheduling goes through a Session, created once per graph:
//
//	g := memsched.NewGraph()
//	a := g.AddTask("prepare", 3, 1) // 3 time units on blue, 1 on red
//	b := g.AddTask("solve", 6, 3)
//	g.MustAddEdge(a, b, 2, 1) // a 2-unit file, 1 time unit to move across
//
//	sess, err := memsched.NewSession(g)
//	if err != nil { ... }
//	p := memsched.NewDualPlatform(2, 1, 8, 4) // 2 blue procs, 1 red, memories 8 and 4
//	res, err := sess.Schedule(ctx, p, memsched.WithScheduler("memheft"), memsched.WithSeed(1))
//	if err != nil { ... }
//	fmt.Println(res.Makespan(), res.PeakResidency(), res.Stats.CacheHitRate())
//
// The session owns the per-graph memos that repeated scheduling reuses —
// the pattern of every memory sweep: validated statics, seeded priority
// lists and mean ranks for both the dual-memory and the k-pool engine, plus
// the k-pool engine's recycled scratch buffers. It is safe for concurrent
// use: goroutines scheduling different graphs through different sessions
// share nothing. Every entry point takes a context.Context with cooperative
// cancellation; WithTimeout is a convenience wrapper over it.
//
// Session methods:
//
//   - Schedule runs a registered heuristic (Schedulers lists them): the
//     paper's MemHEFT and MemMinMin, their memory-oblivious references HEFT
//     and MinMin, and the insertion-policy ablation. Dual sessions on
//     2-pool platforms run the incremental dual-memory engine; pool-time
//     sessions (WithPoolTimes) run the generalised k-pool engine.
//   - Optimal runs the exact branch-and-bound reference over list
//     schedules, reporting nodes explored and whether optimality was
//     proven.
//   - Simulate runs the online StarPU-style dispatcher (WithPolicy selects
//     rank or EFT dispatch order).
//
// Each call returns a Result carrying the schedule plus structured stats:
// makespan, per-pool peak residency, candidate-cache hit rate, per-pool
// task counts (k-pool engine), search nodes, wall time.
//
// Session.Fork returns a twin session for contention-free parallel use:
// forks produce bit-identical schedules and never share a mutex with their
// parent, which is what package repro/sweep builds its per-worker fan-out
// on. By default a fork is born warm — it inherits the parent's immutable
// memos (statics, validation, ranks, priority lists) behind copy-on-write
// wrappers and detaches on the first divergent write; Fork(ForkCold())
// starts from empty caches instead. Session.WarmUp precomputes those memos
// ahead of time, and WithWarmStart enables capacity-delta replay across
// Schedule calls (see ReplayEligible).
//
// The package also exposes graph construction and serialisation (Graph,
// NewGraph, ReadGraph), a canonical per-graph content hash (GraphHash),
// workload generators (DAGGEN-style random graphs, tiled LU/Cholesky
// factorisations) and a schedule validator. The experiment harness
// reproducing the paper's figures lives in internal/experiments (driven by
// cmd/experiments, see EXPERIMENTS.md) on top of the sweep engine.
//
// # Performance architecture
//
// The scheduling hot path is incremental in both engines (see
// internal/core, internal/multi and internal/memfn): a commit perturbs only
// one processor, the staircases of the touched memory pools and the
// readiness of the committed task's children, so the engines re-derive only
// what changed. Each pool carries an epoch counter bumped on every
// mutation; candidate evaluations are memoized per (task, pool) and reused
// while the pool's epoch and the task's parents are unchanged — on a k-pool
// platform a commit typically leaves k-1 pools' candidates cached.
// Ready-ness is tracked with in-degree counters, the makespan is a running
// max, MemMinMin keeps its candidates in an EFT-ordered heap with lazy
// invalidation, and the free-memory staircases answer earliest-fit queries
// in O(log l) through a lazily repaired suffix-minimum array, with all
// reservations of one commit spliced in one batched suffix-local merge pass
// per touched pool. Sessions own the cross-run memos (priority lists, mean
// ranks, graph statics, validation, recycled k-pool scratch), so repeated
// scheduling of the same graph — memory sweeps, benchmarks, server traffic
// — pays the ranking phase once per (graph, seed). None of this changes
// results: the naive implementations are retained as reference oracles
// (MemHEFTReference / MemMinMinReference in internal/core and their k-pool
// counterparts in internal/multi) and golden-equivalence tests assert
// bit-identical schedules, including under concurrent session use.
// docs/ARCHITECTURE.md walks through the whole incremental architecture —
// epoch invalidation, staircase suffix-min, session memos, the dual vs
// k-pool routing — in one place.
//
// # Sweeps and the scheduling service
//
// Package repro/sweep batch-evaluates one Session across a grid of
// platforms × schedulers × seeds (the paper's experimental shape) on a
// bounded worker pool, with deterministic point-ordered results and a
// computed summary (best point, makespan curves, memory-bound frontier).
//
// Package repro/serve exposes Sessions over HTTP/JSON with a bounded LRU
// session cache keyed by GraphHash, request admission control, a streaming
// NDJSON sweep endpoint, Prometheus metrics and graceful shutdown;
// cmd/memschedd is the daemon and cmd/schedload its load generator. Use it
// when the request stream crosses a process boundary; embed Sessions
// directly otherwise.
//
// # Deprecated flat API
//
// The pre-Session dual facade (MemHEFT, SchedulerByName, Optimal, Simulate
// as top-level functions) survives as thin deprecated wrappers. The
// parallel Multi* type names (MultiPlatform, MultiInstance, MultiMemHEFT,
// ErrMultiMemoryBound, ...) completed their deprecation cycle and have been
// removed — pool-aware callers use the unified Platform/Pool surface and a
// Session. See docs/MIGRATION.md for the full mapping.
//
// See the examples/ directory for complete programs.
package memsched
