// Package memsched is a Go implementation of the memory-aware list
// scheduling heuristics for hybrid (dual-memory) platforms of Herrmann,
// Marchal and Robert, "Memory-aware list scheduling for hybrid platforms"
// (INRIA RR-8461, IPDPS 2014).
//
// A hybrid platform has P1 identical "blue" processors sharing a blue
// memory (think CPUs and host RAM) and P2 identical "red" processors
// sharing a red memory (think GPUs and device memory). An application is a
// DAG of tasks; every task has one processing time per processor colour,
// and every edge carries a data file that occupies memory from its
// producer's start until its consumer's completion, moving between memories
// at a communication cost when producer and consumer live on different
// sides. The problem: minimise the makespan without ever exceeding either
// memory capacity.
//
// The package exposes:
//
//   - graph construction and serialisation (type Graph, NewGraph, ReadGraph);
//   - the four schedulers of the paper — HEFT and MinMin (memory-oblivious
//     references) and MemHEFT and MemMinMin (the memory-aware variants);
//   - a schedule validator that checks all model constraints, plus makespan
//     and per-memory peak reporting;
//   - workload generators: DAGGEN-style random graphs and tiled LU /
//     Cholesky factorisation graphs with broadcast pipelines;
//   - exact references for small instances: the paper's ILP formulation
//     solved by a built-in branch-and-bound MILP solver, and a combinatorial
//     optimal search over list schedules;
//   - the full experiment harness reproducing every figure and table of the
//     paper's evaluation (see EXPERIMENTS.md).
//
// # Performance architecture
//
// The scheduling hot path is incremental (see internal/core and
// internal/memfn): a commit perturbs only one processor, one or two memory
// staircases and the readiness of the committed task's children, so the
// engine re-derives only what changed. Each memory carries an epoch counter
// bumped on every mutation; candidate evaluations are memoized per
// (task, memory) and reused while the memory's epoch and the task's parents
// are unchanged. Ready-ness is tracked with in-degree counters, the
// makespan is a running max, MemMinMin keeps its candidates in an
// EFT-ordered heap with lazy invalidation, and the free-memory staircases
// answer earliest-fit queries in O(log l) through a lazily repaired
// suffix-minimum array, with all reservations of one commit spliced in a
// single suffix-local merge pass. Repeated scheduling of the same graph
// (memory sweeps, benchmarks) reuses the memoized priority list and
// per-graph statics. None of this changes results: the naive
// implementations are retained as reference oracles (MemHEFTReference,
// MemMinMinReference) and golden-equivalence tests assert bit-identical
// schedules.
//
// Quickstart:
//
//	g := memsched.NewGraph()
//	a := g.AddTask("prepare", 3, 1) // 3 time units on blue, 1 on red
//	b := g.AddTask("solve", 6, 3)
//	g.MustAddEdge(a, b, 2, 1) // a 2-unit file, 1 time unit to move across
//
//	p := memsched.NewPlatform(2, 1, 8, 4) // 2 blue procs, 1 red, memories 8 and 4
//	s, err := memsched.MemHEFT(g, p, memsched.Options{})
//	if err != nil { ... }
//	fmt.Println(s.Makespan())
//
// See the examples/ directory for complete programs.
package memsched
