package memsched

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := NewGraph()
	a := g.AddTask("prepare", 3, 1)
	b := g.AddTask("solve", 6, 3)
	g.MustAddEdge(a, b, 2, 1)

	p := NewDualPlatform(2, 1, 8, 4)
	s, err := MemHEFT(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() <= 0 {
		t.Fatal("nonpositive makespan")
	}
}

func TestFacadeSchedulersRegistered(t *testing.T) {
	for _, name := range []string{"heft", "minmin", "memheft", "memminmin"} {
		if _, err := SchedulerByName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := SchedulerByName("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestFacadeErrMemoryBound(t *testing.T) {
	g := PaperExample()
	p := NewDualPlatform(1, 1, 2, 2)
	_, err := MemMinMin(g, p, Options{})
	if !errors.Is(err, ErrMemoryBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeGraphJSONRoundTrip(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != 4 || back.NumEdges() != 4 {
		t.Fatal("round trip lost structure")
	}
}

func TestFacadeOptimalOnPaperExample(t *testing.T) {
	g := PaperExample()
	s, proven, err := Optimal(g, NewDualPlatform(1, 1, 4, 4), OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !proven || s == nil || s.Makespan() != 7 {
		t.Fatalf("proven=%v s=%v", proven, s)
	}
	// Infeasible case: nil schedule with proven=true.
	s, proven, err = Optimal(g, NewDualPlatform(1, 1, 2, 2), OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s != nil || !proven {
		t.Fatalf("infeasible case: s=%v proven=%v", s, proven)
	}
}

func TestFacadeLowerBound(t *testing.T) {
	lb, err := LowerBound(PaperExample(), NewDualPlatform(1, 1, 10, 10))
	if err != nil || lb != 5 {
		t.Fatalf("lb=%g err=%v", lb, err)
	}
}

func TestFacadeGenerators(t *testing.T) {
	g, err := GenerateRandom(SmallRandParams(), 1)
	if err != nil || g.NumTasks() != 30 {
		t.Fatalf("random: %v", err)
	}
	if LargeRandParams().Size != 1000 {
		t.Fatal("large params wrong")
	}
	lu, err := LUGraph(DefaultLinalgConfig(3))
	if err != nil || lu.NumTasks() == 0 {
		t.Fatalf("lu: %v", err)
	}
	ch, err := CholeskyGraph(DefaultLinalgConfig(3))
	if err != nil || ch.NumTasks() == 0 {
		t.Fatalf("cholesky: %v", err)
	}
}

func TestFacadeMemoryConstants(t *testing.T) {
	if Blue.String() != "blue" || Red.String() != "red" {
		t.Fatal("memory constants wrong")
	}
	p := NewDualPlatform(1, 1, Unlimited, Unlimited)
	if !strings.Contains(p.String(), "inf") {
		t.Fatal("Unlimited not formatted as inf")
	}
}

func TestFacadeMultiPool(t *testing.T) {
	ctx := context.Background()
	g := PaperExample()
	inst := DualInstance(g)
	sess, err := NewSession(g, WithPoolTimes(inst.Times))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(Pool{Procs: 1, Capacity: 10}, Pool{Procs: 1, Capacity: 10})
	for _, name := range []string{"memheft", "memminmin"} {
		res, err := sess.Schedule(ctx, p, WithScheduler(name), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Pools.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(res.Pools.MemoryPeaks()) != 2 {
			t.Fatal("peak count")
		}
	}
	// Differential against the dual-memory scheduler.
	dual, err := MemHEFT(g, NewDualPlatform(1, 1, 10, 10), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := sess.Schedule(ctx, p, WithScheduler("memheft"), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if dual.Makespan() != ms.Pools.Makespan() {
		t.Fatalf("dual %g vs multi %g", dual.Makespan(), ms.Pools.Makespan())
	}
	// Tiny memories must error with the sentinel.
	tiny := NewPlatform(Pool{Procs: 1, Capacity: 2}, Pool{Procs: 1, Capacity: 2})
	if _, err := sess.Schedule(ctx, tiny, WithScheduler("memheft")); !errors.Is(err, ErrMemoryBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeEndToEndLU(t *testing.T) {
	// A miniature of the Figure 14 pipeline through the public API only.
	g, err := LUGraph(DefaultLinalgConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	unbounded := NewDualPlatform(12, 3, Unlimited, Unlimited)
	ref, err := HEFT(g, unbounded, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blue, red := ref.MemoryPeaks()
	peak := blue
	if red > peak {
		peak = red
	}
	tight := NewDualPlatform(12, 3, peak/2, peak/2)
	s, err := MemHEFT(g, tight, Options{Seed: 1})
	if err != nil {
		t.Fatalf("MemHEFT at half the HEFT peak: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	b2, r2 := s.MemoryPeaks()
	if b2 > peak/2 || r2 > peak/2 {
		t.Fatalf("peaks (%d,%d) exceed bound %d", b2, r2, peak/2)
	}
}

func TestFacadeSimulateAndInsertion(t *testing.T) {
	g := PaperExample()
	p := NewDualPlatform(1, 1, 10, 10)
	for _, pol := range []SimPolicy{SimRankPolicy, SimEFTPolicy} {
		s, err := Simulate(g, p, pol, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Simulate(g, NewDualPlatform(1, 1, 2, 2), SimRankPolicy, 1); !errors.Is(err, ErrSimStuck) {
		t.Fatalf("err = %v", err)
	}
	s, err := MemHEFTInsertion(g, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
