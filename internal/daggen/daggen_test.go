package daggen

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestGenerateSizeAndValidity(t *testing.T) {
	g, err := Generate(SmallParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 30 {
		t.Fatalf("NumTasks = %d, want 30", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(SmallParams(), 42)
	b, _ := Generate(SmallParams(), 42)
	if a.NumTasks() != b.NumTasks() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different shapes")
	}
	for i := 0; i < a.NumTasks(); i++ {
		if a.Task(dag.TaskID(i)) != b.Task(dag.TaskID(i)) {
			t.Fatal("same seed produced different tasks")
		}
	}
	for e := 0; e < a.NumEdges(); e++ {
		if a.Edge(dag.EdgeID(e)) != b.Edge(dag.EdgeID(e)) {
			t.Fatal("same seed produced different edges")
		}
	}
	c, _ := Generate(SmallParams(), 43)
	if c.NumEdges() == a.NumEdges() && c.NumTasks() == a.NumTasks() {
		// Shapes can coincide; compare weights too before declaring
		// the generator seed-insensitive.
		same := true
		for i := 0; i < a.NumTasks() && same; i++ {
			same = a.Task(dag.TaskID(i)) == c.Task(dag.TaskID(i))
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateWeightRanges(t *testing.T) {
	p := SmallParams()
	g, _ := Generate(p, 7)
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(dag.TaskID(i))
		for _, w := range []float64{task.WBlue, task.WRed} {
			if w < float64(p.MinWork) || w > float64(p.MaxWork) {
				t.Fatalf("task %d weight %g outside [%d,%d]", i, w, p.MinWork, p.MaxWork)
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(dag.EdgeID(e))
		if edge.File < p.MinFile || edge.File > p.MaxFile {
			t.Fatalf("edge %d file %d outside range", e, edge.File)
		}
		if edge.Comm < float64(p.MinComm) || edge.Comm > float64(p.MaxComm) {
			t.Fatalf("edge %d comm %g outside range", e, edge.Comm)
		}
	}
}

func TestWidthControlsParallelism(t *testing.T) {
	narrow := Params{Size: 60, Width: 0.05, Regularity: 0, Density: 0.5, Jumps: 1,
		MinWork: 1, MaxWork: 5, MinFile: 1, MaxFile: 5, MinComm: 1, MaxComm: 5}
	wide := narrow
	wide.Width = 0.8
	gn, err := Generate(narrow, 3)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := Generate(wide, 3)
	if err != nil {
		t.Fatal(err)
	}
	sn, _ := gn.ComputeStats()
	sw, _ := gw.ComputeStats()
	if sn.MaxWidth >= sw.MaxWidth {
		t.Fatalf("narrow MaxWidth %d >= wide MaxWidth %d", sn.MaxWidth, sw.MaxWidth)
	}
	if sn.Levels <= sw.Levels {
		t.Fatalf("narrow Levels %d <= wide Levels %d", sn.Levels, sw.Levels)
	}
}

func TestDensityControlsEdgeCount(t *testing.T) {
	sparse := Params{Size: 80, Width: 0.2, Regularity: 0.5, Density: 0.1, Jumps: 1,
		MinWork: 1, MaxWork: 5, MinFile: 1, MaxFile: 5, MinComm: 1, MaxComm: 5}
	dense := sparse
	dense.Density = 0.9
	gs, _ := Generate(sparse, 11)
	gd, _ := Generate(dense, 11)
	if gs.NumEdges() >= gd.NumEdges() {
		t.Fatalf("sparse edges %d >= dense edges %d", gs.NumEdges(), gd.NumEdges())
	}
}

func TestEveryNonFirstLevelTaskHasAParent(t *testing.T) {
	g, _ := Generate(SmallParams(), 5)
	level, _, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// In the generated structure only construction-level-0 tasks may be
	// parentless; they sit at DAG level 0 too.
	for i := 0; i < g.NumTasks(); i++ {
		if len(g.Parents(dag.TaskID(i))) == 0 && level[i] != 0 {
			t.Fatalf("task %d has no parents but level %d", i, level[i])
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := SmallParams()
	bad := []func(*Params){
		func(p *Params) { p.Size = 0 },
		func(p *Params) { p.Width = 0 },
		func(p *Params) { p.Width = 1.5 },
		func(p *Params) { p.Regularity = -0.1 },
		func(p *Params) { p.Density = 1.2 },
		func(p *Params) { p.Jumps = 0 },
		func(p *Params) { p.MinWork = 0 },
		func(p *Params) { p.MaxWork = 0 },
		func(p *Params) { p.MinFile = 0 },
		func(p *Params) { p.MaxComm = 0 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if _, err := Generate(p, 1); err == nil {
			t.Fatalf("bad params #%d accepted: %+v", i, p)
		}
	}
}

func TestSetSeedsAreConsecutive(t *testing.T) {
	set, err := Set(SmallParams(), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := Generate(SmallParams(), 101)
	if set[1].NumEdges() != single.NumEdges() {
		t.Fatal("Set element 1 differs from Generate with seed 101")
	}
}

func TestSmallRandSetShape(t *testing.T) {
	set, err := SmallRandSet(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 50 {
		t.Fatalf("SmallRandSet has %d DAGs, want 50", len(set))
	}
	for i, g := range set {
		if g.NumTasks() != 30 {
			t.Fatalf("DAG %d has %d tasks", i, g.NumTasks())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("DAG %d invalid: %v", i, err)
		}
	}
}

func TestLargeParamsShape(t *testing.T) {
	p := LargeParams()
	if p.Size != 1000 || p.MaxWork != 100 || p.MaxFile != 100 {
		t.Fatalf("LargeParams = %+v", p)
	}
	p.Size = 120 // reduced-scale sanity run
	g, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 120 {
		t.Fatalf("NumTasks = %d", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGeneratedGraphsAreAcyclicAndConnected(t *testing.T) {
	f := func(seed int64) bool {
		p := SmallParams()
		g, err := Generate(p, seed)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		// No duplicate edges by construction.
		seen := map[[2]dag.TaskID]bool{}
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(dag.EdgeID(e))
			key := [2]dag.TaskID{edge.From, edge.To}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyJumpEdgesStayWithinWindow(t *testing.T) {
	f := func(seed int64) bool {
		p := SmallParams()
		g, err := Generate(p, seed)
		if err != nil {
			return false
		}
		level, _, err := g.Levels()
		if err != nil {
			return false
		}
		// DAG levels are computed from longest paths so they can only
		// compress construction levels; an edge can therefore never
		// span more than the construction allows going *backwards*:
		// every edge goes strictly forward.
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(dag.EdgeID(e))
			if level[edge.From] >= level[edge.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
