// Package daggen generates random task graphs following the level-based
// scheme of the DAGGEN tool used by the paper (§6.1.1, footnote 1). The four
// shape parameters are the paper's:
//
//   - Size: number of tasks, organised in levels;
//   - Width in (0,1]: controls the parallelism — following the DAGGEN tool
//     the expected number of tasks per level is Width*sqrt(Size), so small
//     values yield chain-like graphs and large values fork-join-like
//     graphs (the page-tall samples of the paper's Figures 8-9 match this
//     scaling, not Width*Size);
//   - Density in [0,1]: controls how many edges connect consecutive levels
//     (each task draws 1 + U(0, Density*|previous level|) parents);
//   - Jumps >= 1: extra edges may skip up to Jumps levels forward.
//
// Level sizes are perturbed by a Regularity factor (the DAGGEN parameter the
// paper leaves at its default); all randomness flows from a single seed, so
// generation is reproducible. Edges always go from lower to higher levels,
// guaranteeing acyclicity by construction.
//
// The two data sets of the paper are provided as SmallRandSet (50 DAGs,
// size 30, weights in [1,20], files and communications in [1,10]) and
// LargeRandSet (100 DAGs, size 1000, everything in [1,100]).
package daggen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dag"
)

// Params configures one random DAG.
type Params struct {
	Size       int     // number of tasks
	Width      float64 // in (0,1]: expected level size is Width*Size
	Regularity float64 // in [0,1]: 0 = all levels equal, 1 = fully random sizes
	Density    float64 // in [0,1]: edge density between consecutive levels
	Jumps      int     // >= 1: edges may skip up to Jumps levels

	// Weight ranges. Values are drawn uniformly from the inclusive
	// integer ranges below, matching the paper's setup.
	MinWork, MaxWork int   // task processing times, per resource
	MinFile, MaxFile int64 // edge file sizes
	MinComm, MaxComm int   // edge communication times
}

// Validate rejects out-of-range parameters.
func (p Params) Validate() error {
	switch {
	case p.Size <= 0:
		return fmt.Errorf("daggen: Size must be positive, got %d", p.Size)
	case p.Width <= 0 || p.Width > 1:
		return fmt.Errorf("daggen: Width must be in (0,1], got %g", p.Width)
	case p.Regularity < 0 || p.Regularity > 1:
		return fmt.Errorf("daggen: Regularity must be in [0,1], got %g", p.Regularity)
	case p.Density < 0 || p.Density > 1:
		return fmt.Errorf("daggen: Density must be in [0,1], got %g", p.Density)
	case p.Jumps < 1:
		return fmt.Errorf("daggen: Jumps must be >= 1, got %d", p.Jumps)
	case p.MinWork <= 0 || p.MaxWork < p.MinWork:
		return fmt.Errorf("daggen: bad work range [%d,%d]", p.MinWork, p.MaxWork)
	case p.MinFile <= 0 || p.MaxFile < p.MinFile:
		return fmt.Errorf("daggen: bad file range [%d,%d]", p.MinFile, p.MaxFile)
	case p.MinComm <= 0 || p.MaxComm < p.MinComm:
		return fmt.Errorf("daggen: bad comm range [%d,%d]", p.MinComm, p.MaxComm)
	}
	return nil
}

// Generate builds one random DAG from the parameters and seed.
func Generate(p Params, seed int64) (*dag.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := dag.New()

	// Build levels. The DAGGEN tool draws level sizes around
	// width*sqrt(n); sizes are uniform on [(1-r)*mean, (1+r)*mean],
	// clamped to [1, remaining].
	mean := p.Width * math.Sqrt(float64(p.Size))
	if mean < 1 {
		mean = 1
	}
	var levels [][]dag.TaskID
	remaining := p.Size
	for remaining > 0 {
		lo := int((1 - p.Regularity) * mean)
		hi := int((1 + p.Regularity) * mean)
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		count := lo + rng.Intn(hi-lo+1)
		if count > remaining {
			count = remaining
		}
		level := make([]dag.TaskID, count)
		for i := range level {
			level[i] = g.AddTask("",
				float64(p.MinWork+rng.Intn(p.MaxWork-p.MinWork+1)),
				float64(p.MinWork+rng.Intn(p.MaxWork-p.MinWork+1)))
		}
		levels = append(levels, level)
		remaining -= count
	}

	edge := func(from, to dag.TaskID) {
		if _, ok := g.EdgeBetween(from, to); ok {
			return
		}
		g.MustAddEdge(from, to,
			p.MinFile+int64(rng.Int63n(p.MaxFile-p.MinFile+1)),
			float64(p.MinComm+rng.Intn(p.MaxComm-p.MinComm+1)))
	}

	// Density edges: every task below level 0 receives
	// 1 + floor(U(0, Density*|prev|)) parents from the previous level.
	for l := 1; l < len(levels); l++ {
		prev := levels[l-1]
		for _, id := range levels[l] {
			nParents := 1 + int(rng.Float64()*p.Density*float64(len(prev)))
			if nParents > len(prev) {
				nParents = len(prev)
			}
			for _, pi := range rng.Perm(len(prev))[:nParents] {
				edge(prev[pi], id)
			}
		}
	}

	// Jump edges: each task may additionally receive one parent from a
	// level up to Jumps above, with probability Density/2 (the paper
	// only specifies that "random edges are added" within the jump
	// window; this rate keeps jump edges a clear minority, as in the
	// DAGGEN samples shown in Figs. 8-9).
	if p.Jumps > 1 {
		for l := 2; l < len(levels); l++ {
			loLevel := l - p.Jumps
			if loLevel < 0 {
				loLevel = 0
			}
			for _, id := range levels[l] {
				if rng.Float64() >= p.Density/2 || loLevel > l-2 {
					continue
				}
				srcLevel := levels[loLevel+rng.Intn(l-1-loLevel)]
				edge(srcLevel[rng.Intn(len(srcLevel))], id)
			}
		}
	}
	return g, nil
}

// SmallParams are the paper's SmallRandSet parameters: size 30, width 0.3,
// density 0.5, jumps 5, works in [1,20], files and comms in [1,10].
func SmallParams() Params {
	return Params{
		Size: 30, Width: 0.3, Regularity: 0.5, Density: 0.5, Jumps: 5,
		MinWork: 1, MaxWork: 20,
		MinFile: 1, MaxFile: 10,
		MinComm: 1, MaxComm: 10,
	}
}

// LargeParams are the paper's LargeRandSet parameters: size 1000, same shape
// as SmallParams, all values in [1,100]. Size may be overridden by the
// caller for reduced-scale runs.
func LargeParams() Params {
	return Params{
		Size: 1000, Width: 0.3, Regularity: 0.5, Density: 0.5, Jumps: 5,
		MinWork: 1, MaxWork: 100,
		MinFile: 1, MaxFile: 100,
		MinComm: 1, MaxComm: 100,
	}
}

// Set generates count DAGs with consecutive seeds baseSeed, baseSeed+1, ...
func Set(p Params, count int, baseSeed int64) ([]*dag.Graph, error) {
	graphs := make([]*dag.Graph, count)
	for i := range graphs {
		g, err := Generate(p, baseSeed+int64(i))
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}
	return graphs, nil
}

// SmallRandSet generates the paper's 50-DAG small set.
func SmallRandSet(baseSeed int64) ([]*dag.Graph, error) {
	return Set(SmallParams(), 50, baseSeed)
}

// LargeRandSet generates the paper's 100-DAG large set.
func LargeRandSet(baseSeed int64) ([]*dag.Graph, error) {
	return Set(LargeParams(), 100, baseSeed)
}
