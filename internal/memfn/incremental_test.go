package memfn

import (
	"math"
	"math/rand"
	"testing"
)

// randomMutate applies n random Reserve/Release calls to s and returns the
// same calls as a batch for replay.
func randomMutate(rng *rand.Rand, s *Staircase, n int) []Delta {
	var ops []Delta
	for i := 0; i < n; i++ {
		from := rng.Float64() * 100
		to := from + rng.Float64()*20
		if rng.Intn(4) == 0 {
			to = Inf
		}
		amount := int64(rng.Intn(21) - 10)
		ops = append(ops, Delta{From: from, To: to, Amount: amount})
		s.Reserve(from, to, amount)
	}
	return ops
}

// TestEarliestFitMatchesLinear cross-checks the suffix-min binary search
// against the paper's O(l) backward walk after random mutation bursts.
func TestEarliestFitMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := New(int64(rng.Intn(100) + 1))
		randomMutate(rng, s, rng.Intn(30))
		for q := 0; q < 20; q++ {
			lb := rng.Float64() * 120
			need := int64(rng.Intn(120) - 10)
			got := s.EarliestFit(lb, need)
			want := s.EarliestFitLinear(lb, need)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d: EarliestFit(%g, %d) = %g, linear walk says %g on %v",
					trial, lb, need, got, want, s)
			}
		}
	}
}

// TestSufminConsistencyAfterMutations verifies the lazily rebuilt suffix-min
// array against a direct recomputation after every Reserve/Release/coalesce.
func TestSufminConsistencyAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(50)
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			s.Reserve(rng.Float64()*50, rng.Float64()*80, int64(rng.Intn(9)-4))
		case 1:
			s.Release(rng.Float64()*50, int64(rng.Intn(5)))
		default:
			s.ReserveBatch([]Delta{
				{From: rng.Float64() * 50, To: rng.Float64() * 80, Amount: int64(rng.Intn(9) - 4)},
				{From: rng.Float64() * 50, To: Inf, Amount: int64(rng.Intn(5) - 2)},
			})
		}
		// Force the rebuild and compare against a direct suffix scan.
		s.EarliestFit(0, 1)
		if !s.sufminOK {
			t.Fatal("sufmin not rebuilt by EarliestFit")
		}
		if len(s.sufmin) != len(s.steps) {
			t.Fatalf("sufmin length %d, steps %d", len(s.sufmin), len(s.steps))
		}
		m := s.steps[len(s.steps)-1].v
		for j := len(s.steps) - 1; j >= 0; j-- {
			if s.steps[j].v < m {
				m = s.steps[j].v
			}
			if s.sufmin[j] != m {
				t.Fatalf("step %d: sufmin = %d, want %d on %v", j, s.sufmin[j], m, s)
			}
		}
	}
}

// TestReserveBatchMatchesSequential verifies that splicing a whole set of
// deltas at once yields the exact same canonical staircase as sequential
// Reserve calls.
func TestReserveBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		cap := int64(rng.Intn(200) + 1)
		seq := New(cap)
		ops := randomMutate(rng, seq, rng.Intn(12))

		batch := New(cap)
		batch.ReserveBatch(ops)

		ts, vs := seq.Breakpoints()
		tb, vb := batch.Breakpoints()
		if len(ts) != len(tb) {
			t.Fatalf("trial %d: %d pieces sequential vs %d batched\nseq   %v\nbatch %v",
				trial, len(ts), len(tb), seq, batch)
		}
		for i := range ts {
			if ts[i] != tb[i] || vs[i] != vb[i] {
				t.Fatalf("trial %d: piece %d differs\nseq   %v\nbatch %v", trial, i, seq, batch)
			}
		}
	}
}

// TestReserveBatchEdgeCases exercises the skip conditions of ReserveBatch.
func TestReserveBatchEdgeCases(t *testing.T) {
	s := New(10)
	s.ReserveBatch(nil)
	s.ReserveBatch([]Delta{
		{From: 5, To: 3, Amount: 2},   // inverted interval: no-op
		{From: 1, To: 1, Amount: 2},   // empty interval: no-op
		{From: 2, To: 8, Amount: 0},   // zero amount: no-op
		{From: -4, To: -1, Amount: 3}, // entirely before 0: no-op
	})
	if s.Len() != 1 || s.Value(0) != 10 {
		t.Fatalf("no-op batch changed the staircase: %v", s)
	}
	// Clamped start: [-2, 3) behaves as [0, 3).
	s.ReserveBatch([]Delta{{From: -2, To: 3, Amount: 4}})
	ref := New(10)
	ref.Reserve(-2, 3, 4)
	if s.String() != ref.String() {
		t.Fatalf("clamped batch %v, want %v", s, ref)
	}
}

// TestCloneIntoReuse verifies CloneInto both with nil and a reused target.
func TestCloneIntoReuse(t *testing.T) {
	s := New(20)
	s.Reserve(1, 5, 7)
	s.EarliestFit(0, 15) // make sufmin valid so the copy path is exercised

	c := s.CloneInto(nil)
	if c.String() != s.String() {
		t.Fatalf("clone %v, want %v", c, s)
	}
	// Mutating the clone must not touch the original.
	c.Reserve(2, 3, 1)
	if s.String() == c.String() {
		t.Fatal("clone aliases the original")
	}
	// Reuse the clone's storage for a fresh copy.
	c2 := s.CloneInto(c)
	if c2 != c || c2.String() != s.String() {
		t.Fatalf("CloneInto reuse: got %v, want %v", c2, s)
	}
	if got, want := c2.EarliestFit(0, 15), s.EarliestFitLinear(0, 15); got != want {
		t.Fatalf("clone EarliestFit = %g, want %g", got, want)
	}
}

// TestReset verifies Reset restores the constant function while reusing
// storage, and that the staircase behaves like a fresh one afterwards.
func TestReset(t *testing.T) {
	s := New(20)
	s.Reserve(1, 5, 7)
	s.Reserve(3, Inf, 4)
	s.EarliestFit(0, 15) // build sufmin so Reset must invalidate it

	s.Reset(12)
	want := New(12)
	if s.String() != want.String() {
		t.Fatalf("after Reset: %v, want %v", s, want)
	}
	if got := s.EarliestFit(0, 12); got != 0 {
		t.Fatalf("EarliestFit(0,12) = %g after Reset", got)
	}
	if got := s.EarliestFit(0, 13); got != Inf {
		t.Fatalf("EarliestFit(0,13) = %g after Reset, want +Inf", got)
	}
	// The reset staircase must accept mutations like a fresh one.
	s.Reserve(2, 4, 5)
	want.Reserve(2, 4, 5)
	if s.String() != want.String() {
		t.Fatalf("mutation after Reset: %v, want %v", s, want)
	}
	if got, ref := s.EarliestFit(0, 10), want.EarliestFitLinear(0, 10); got != ref {
		t.Fatalf("EarliestFit after Reset = %g, reference %g", got, ref)
	}
}
