// Package memfn implements the staircase "available memory over time"
// functions that drive the memory-aware heuristics of the paper (§5.1).
//
// A Staircase represents a piecewise-constant function free(t) over
// [0, +inf). The paper stores it as a list of couples [(x1,v1),...,(xl,vl)]
// with free(t) = vi on [xi, xi+1) and free(t) = vl for t >= xl; this package
// uses the same representation. The two operations the heuristics need are
// Reserve (commit memory on an interval, possibly unbounded) and EarliestFit
// (the smallest t such that free(t') >= need for every t' >= t), which
// realises the task_mem_EST and comm_mem_EST primitives of Algorithm 1.
//
// Performance notes. EarliestFit is the hot primitive: every candidate
// evaluation of MemHEFT/MemMinMin calls it twice. The paper's backward walk
// is O(l); this implementation instead maintains a suffix-minimum array
// sufmin[i] = min(v[i..l-1]) (rebuilt lazily after mutations) which is
// non-decreasing in i, so the fit point is found by binary search in
// O(log l). The walk is kept as EarliestFitLinear, the reference oracle for
// tests. Mutations arrive in bursts (one Commit touches one staircase with
// up to deg+1 reservations), so ReserveBatch applies a whole set of deltas
// in a single merge pass over the pieces instead of deg+1 independent
// breakpoint insertions.
package memfn

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Inf is the positive-infinity time used for unbounded reservations.
var Inf = math.Inf(1)

type step struct {
	t float64 // start of the interval
	v int64   // free memory on [t, next.t)
}

// Staircase is a piecewise-constant free-memory function. The zero value is
// not usable; call New.
type Staircase struct {
	steps []step // sorted by t; steps[0].t == 0 always

	// sufmin[i] = min(steps[i..].v), fully valid only when sufminOK. It
	// is repaired lazily on the first EarliestFit after a mutation burst.
	// Mutations are suffix-local (schedulers commit near the time
	// frontier), so dirtyFrom records the first piece index touched since
	// the last repair: entries below it still match the unchanged prefix
	// and are reused, entries from it on are recomputed, and the repair
	// propagates leftwards only as far as the suffix minimum actually
	// changed.
	sufmin    []int64
	sufminOK  bool
	dirtyFrom int

	// Scratch buffers reused across ReserveBatch calls.
	evScratch   []batchEvent
	stepScratch []step
	oneOp       [1]Delta
}

// New returns the constant function free(t) = capacity.
func New(capacity int64) *Staircase {
	return &Staircase{steps: []step{{t: 0, v: capacity}}}
}

// Reset reinitialises the staircase to the constant function
// free(t) = capacity, reusing its storage. Engines that recycle partial
// schedules across runs (the k-pool session pool) use it to avoid
// reallocating the breakpoint arrays on every schedule.
func (s *Staircase) Reset(capacity int64) {
	s.steps = append(s.steps[:0], step{t: 0, v: capacity})
	s.sufmin = s.sufmin[:0]
	s.sufminOK = false
	s.dirtyFrom = 0
}

// Clone returns an independent copy.
func (s *Staircase) Clone() *Staircase { return s.CloneInto(nil) }

// CloneInto copies s into dst, reusing dst's storage when possible, and
// returns dst. A nil dst allocates a fresh Staircase. The scratch buffers of
// dst are kept (they carry no state between operations).
func (s *Staircase) CloneInto(dst *Staircase) *Staircase {
	if dst == nil {
		dst = &Staircase{}
	}
	dst.steps = append(dst.steps[:0], s.steps...)
	dst.sufminOK = s.sufminOK
	dst.dirtyFrom = s.dirtyFrom
	dst.sufmin = append(dst.sufmin[:0], s.sufmin...)
	return dst
}

// Len returns the number of constant pieces (the paper's l).
func (s *Staircase) Len() int { return len(s.steps) }

// Value returns free(t). Times before 0 are clamped to 0.
func (s *Staircase) Value(t float64) int64 {
	if t < 0 {
		t = 0
	}
	return s.steps[s.indexAt(t)].v
}

// FinalValue returns the value of the last piece, i.e. free(+inf).
func (s *Staircase) FinalValue() int64 { return s.steps[len(s.steps)-1].v }

// MinValue returns the global minimum of the function.
func (s *Staircase) MinValue() int64 {
	if s.sufminOK {
		return s.sufmin[0]
	}
	m := s.steps[0].v
	for _, st := range s.steps[1:] {
		if st.v < m {
			m = st.v
		}
	}
	return m
}

// MinOn returns the minimum of free over [from, to). An empty interval
// returns the value at from. to may be Inf.
func (s *Staircase) MinOn(from, to float64) int64 {
	if from < 0 {
		from = 0
	}
	m := s.Value(from)
	for _, st := range s.steps {
		if st.t <= from {
			continue
		}
		if st.t >= to {
			break
		}
		if st.v < m {
			m = st.v
		}
	}
	return m
}

// indexAtFromEnd returns the index of the piece containing time t (t >= 0),
// galloping backwards from the last piece before binary-searching: the
// schedulers mutate near the time frontier, so the few adjacent probes
// usually bracket t without walking the whole breakpoint array.
func (s *Staircase) indexAtFromEnd(t float64) int {
	steps := s.steps
	hi := len(steps) - 1
	if steps[hi].t <= t {
		return hi
	}
	// Invariant from here: steps[hi].t > t and steps[lo].t <= t (the
	// first piece starts at 0 and t is clamped non-negative).
	stride := 1
	lo := hi - stride
	for lo > 0 && steps[lo].t > t {
		hi = lo
		stride *= 2
		lo = hi - stride
		if lo < 0 {
			lo = 0
		}
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if steps[mid].t <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// indexAt returns the index of the piece containing time t (t >= 0).
func (s *Staircase) indexAt(t float64) int {
	lo, hi := 0, len(s.steps)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.steps[mid].t <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Reserve subtracts amount from free on [from, to). A negative amount
// releases memory. to may be Inf for an open-ended reservation (the typical
// case for output files whose consumer is not scheduled yet). Reservations
// are allowed to drive the function negative; callers that must respect a
// bound check EarliestFit or MinOn first.
func (s *Staircase) Reserve(from, to float64, amount int64) {
	s.oneOp[0] = Delta{From: from, To: to, Amount: amount}
	s.ReserveBatch(s.oneOp[:])
}

// Release adds amount back to free from time t onward. It is the standard
// way to return an open-ended reservation (an input file consumed at t, or a
// cross-memory file whose transfer completes at t).
func (s *Staircase) Release(t float64, amount int64) {
	s.Reserve(t, Inf, -amount)
}

// Delta is one interval reservation for ReserveBatch: subtract Amount from
// free on [From, To). A negative Amount releases; To may be Inf.
type Delta struct {
	From, To float64
	Amount   int64
}

// batchEvent is a value change at time t in the sweep of ReserveBatch.
type batchEvent struct {
	t float64
	d int64
}

// ReserveBatch applies a set of reservations in one merge pass over the
// pieces. It is equivalent to calling Reserve once per delta (the staircase
// is canonical after coalescing, so the results are identical) but costs
// O(l + k log k) for k deltas instead of O(k·l). Commit uses it to splice a
// task's whole set of file reservations at once.
func (s *Staircase) ReserveBatch(ops []Delta) {
	evs := s.evScratch[:0]
	for _, op := range ops {
		if op.Amount == 0 || op.To <= op.From {
			continue
		}
		from := op.From
		if from < 0 {
			from = 0
		}
		if op.To <= from {
			continue
		}
		evs = append(evs, batchEvent{t: from, d: -op.Amount})
		if !math.IsInf(op.To, 1) {
			evs = append(evs, batchEvent{t: op.To, d: op.Amount})
		}
	}
	s.evScratch = evs[:0]
	if len(evs) == 0 {
		return
	}
	// One Commit combines to a handful of events, so a branch-light
	// insertion sort beats the general sorter; fall back for big batches.
	if len(evs) <= 32 {
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0 && evs[j].t < evs[j-1].t; j-- {
				evs[j], evs[j-1] = evs[j-1], evs[j]
			}
		}
	} else {
		slices.SortFunc(evs, func(a, b batchEvent) int {
			switch {
			case a.t < b.t:
				return -1
			case a.t > b.t:
				return 1
			}
			return 0
		})
	}

	// The pieces strictly before the one containing the first event keep
	// both their index and their value: merge only the suffix from that
	// piece on, coalescing on the fly (a piece is emitted only when its
	// value differs from the previously emitted one), then splice the
	// merged suffix back in place. Schedulers commit near the time
	// frontier, so the untouched prefix is most of the staircase.
	steps := s.steps
	i0 := s.indexAtFromEnd(evs[0].t)
	out := s.stepScratch[:0]
	if cap(out) < len(steps)-i0+len(evs) {
		out = make([]step, 0, 2*(len(steps)+len(evs)))
	}
	var lastV int64
	haveLast := i0 > 0
	if haveLast {
		lastV = steps[i0-1].v
	}
	var delta int64
	ei := 0
	for i := i0; i < len(steps); i++ {
		stp := steps[i]
		next := Inf
		if i+1 < len(steps) {
			next = steps[i+1].t
		}
		for ei < len(evs) && evs[ei].t == stp.t {
			delta += evs[ei].d
			ei++
		}
		if v := stp.v + delta; !haveLast || v != lastV {
			out = append(out, step{t: stp.t, v: v})
			lastV, haveLast = v, true
		}
		for ei < len(evs) && evs[ei].t < next {
			t := evs[ei].t
			for ei < len(evs) && evs[ei].t == t {
				delta += evs[ei].d
				ei++
			}
			if v := stp.v + delta; v != lastV {
				out = append(out, step{t: t, v: v})
				lastV = v
			}
		}
		if ei == len(evs) {
			// No events left: the remaining pieces all shift by the
			// same delta, so their pairwise differences — and hence
			// canonical form — are preserved; only the first may
			// coalesce into the previously emitted piece.
			for i++; i < len(steps); i++ {
				stp := steps[i]
				if v := stp.v + delta; v != lastV {
					out = append(out, step{t: stp.t, v: v})
					lastV = v
				}
			}
			break
		}
	}
	s.steps = append(steps[:i0], out...)
	s.stepScratch = out[:0]
	if i0 < s.dirtyFrom {
		s.dirtyFrom = i0
	}
	s.sufminOK = false
}

// rebuildSufmin repairs the suffix-minimum array: entries from dirtyFrom on
// are recomputed, then the repair propagates leftwards through the
// untouched prefix only while the suffix minimum seen from each piece
// actually changed.
func (s *Staircase) rebuildSufmin() {
	n := len(s.steps)
	if s.dirtyFrom >= n {
		// The last mutation coalesced the whole suffix away; the new
		// final piece still needs a fresh entry to drive the
		// propagation.
		s.dirtyFrom = n - 1
	}
	if cap(s.sufmin) < n {
		// Grow with headroom: the staircase lengthens a little on
		// every commit, so sizing to the exact length would
		// reallocate on each rebuild.
		grown := make([]int64, n, max(2*cap(s.sufmin), cap(s.steps)))
		copy(grown, s.sufmin[:min(len(s.sufmin), s.dirtyFrom)])
		s.sufmin = grown
	} else {
		s.sufmin = s.sufmin[:n]
	}
	i := n - 1
	m := s.steps[i].v
	for ; i >= s.dirtyFrom; i-- {
		if v := s.steps[i].v; v < m {
			m = v
		}
		s.sufmin[i] = m
	}
	for ; i >= 0; i-- {
		m = s.steps[i].v
		if nxt := s.sufmin[i+1]; nxt < m {
			m = nxt
		}
		if s.sufmin[i] == m {
			break // everything further left is unchanged too
		}
		s.sufmin[i] = m
	}
	s.sufminOK = true
	s.dirtyFrom = n
}

// EarliestFit returns the smallest t >= lowerBound such that free(t') >= need
// for all t' >= t, or +Inf when no such time exists (the final piece is below
// need). This is exactly the task_mem_EST / comm_mem_EST computation of
// Algorithm 1. The suffix-minimum array makes it O(log l) amortised (one
// O(l) rebuild after each mutation burst); EarliestFitLinear is the paper's
// O(l) walk, kept as the reference oracle.
func (s *Staircase) EarliestFit(lowerBound float64, need int64) float64 {
	if s.steps[len(s.steps)-1].v < need {
		return Inf
	}
	if !s.sufminOK {
		s.rebuildSufmin()
	}
	if s.sufmin[0] >= need {
		// The whole function fits: the binary search would land on
		// the first piece.
		return math.Max(lowerBound, s.steps[0].t)
	}
	// sufmin is non-decreasing in i: find the first piece from which the
	// whole suffix fits.
	lo, hi := 0, len(s.steps)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.sufmin[mid] >= need {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return math.Max(lowerBound, s.steps[lo].t)
}

// FitsFrom reports whether free(t') >= need for every t' >= t — equivalently
// whether EarliestFit(0, need) <= t (times before 0 are clamped to 0). It is
// the verification primitive of warm-start replay: confirming that a
// recorded fit still holds under a shrunken capacity costs one
// suffix-minimum lookup instead of a fresh earliest-fit search per memory.
func (s *Staircase) FitsFrom(t float64, need int64) bool {
	if need <= 0 {
		return true
	}
	if s.steps[len(s.steps)-1].v < need {
		return false
	}
	if !s.sufminOK {
		s.rebuildSufmin()
	}
	if t < 0 {
		t = 0
	}
	return s.sufmin[s.indexAt(t)] >= need
}

// SlackAt returns the suffix minimum of free over [max(t, 0), +inf) — the
// largest need that FitsFrom(t, need) still accepts. Warm-start recording
// uses it to measure how much headroom each committed fit had: shrinking the
// capacity by delta shifts the whole free function, and hence every suffix
// minimum, down by exactly delta, so a later replay passes the same fit at
// the same position iff delta does not exceed the recorded slack.
func (s *Staircase) SlackAt(t float64) int64 {
	if !s.sufminOK {
		s.rebuildSufmin()
	}
	if t < 0 {
		t = 0
	}
	return s.sufmin[s.indexAt(t)]
}

// EarliestFitLinear is the paper's O(l) backward walk. It is retained as the
// reference implementation that EarliestFit is tested against.
func (s *Staircase) EarliestFitLinear(lowerBound float64, need int64) float64 {
	if s.FinalValue() < need {
		return Inf
	}
	// Walk backwards to find the end of the last deficient piece.
	for i := len(s.steps) - 1; i >= 0; i-- {
		if s.steps[i].v < need {
			// Deficient on [steps[i].t, steps[i+1].t); the fit
			// starts at the next breakpoint. i is never the last
			// index because FinalValue() >= need.
			return math.Max(lowerBound, s.steps[i+1].t)
		}
	}
	return math.Max(lowerBound, 0)
}

// Breakpoints returns copies of the (time, value) pairs, mainly for tests
// and debugging.
func (s *Staircase) Breakpoints() (times []float64, values []int64) {
	times = make([]float64, len(s.steps))
	values = make([]int64, len(s.steps))
	for i, st := range s.steps {
		times[i] = st.t
		values[i] = st.v
	}
	return times, values
}

// String renders the staircase compactly, e.g. "[0:5 2:3 4:5]".
func (s *Staircase) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, st := range s.steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g:%d", st.t, st.v)
	}
	b.WriteByte(']')
	return b.String()
}
