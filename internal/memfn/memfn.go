// Package memfn implements the staircase "available memory over time"
// functions that drive the memory-aware heuristics of the paper (§5.1).
//
// A Staircase represents a piecewise-constant function free(t) over
// [0, +inf). The paper stores it as a list of couples [(x1,v1),...,(xl,vl)]
// with free(t) = vi on [xi, xi+1) and free(t) = vl for t >= xl; this package
// uses the same representation. The two operations the heuristics need are
// Reserve (commit memory on an interval, possibly unbounded) and EarliestFit
// (the smallest t such that free(t') >= need for every t' >= t), which
// realises the task_mem_EST and comm_mem_EST primitives of Algorithm 1.
package memfn

import (
	"fmt"
	"math"
	"strings"
)

// Inf is the positive-infinity time used for unbounded reservations.
var Inf = math.Inf(1)

type step struct {
	t float64 // start of the interval
	v int64   // free memory on [t, next.t)
}

// Staircase is a piecewise-constant free-memory function. The zero value is
// not usable; call New.
type Staircase struct {
	steps []step // sorted by t; steps[0].t == 0 always
}

// New returns the constant function free(t) = capacity.
func New(capacity int64) *Staircase {
	return &Staircase{steps: []step{{t: 0, v: capacity}}}
}

// Clone returns an independent copy.
func (s *Staircase) Clone() *Staircase {
	return &Staircase{steps: append([]step(nil), s.steps...)}
}

// Len returns the number of constant pieces (the paper's l).
func (s *Staircase) Len() int { return len(s.steps) }

// Value returns free(t). Times before 0 are clamped to 0.
func (s *Staircase) Value(t float64) int64 {
	if t < 0 {
		t = 0
	}
	// Binary search for the last step with step.t <= t.
	lo, hi := 0, len(s.steps)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.steps[mid].t <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return s.steps[lo].v
}

// FinalValue returns the value of the last piece, i.e. free(+inf).
func (s *Staircase) FinalValue() int64 { return s.steps[len(s.steps)-1].v }

// MinValue returns the global minimum of the function.
func (s *Staircase) MinValue() int64 {
	m := s.steps[0].v
	for _, st := range s.steps[1:] {
		if st.v < m {
			m = st.v
		}
	}
	return m
}

// MinOn returns the minimum of free over [from, to). An empty interval
// returns the value at from. to may be Inf.
func (s *Staircase) MinOn(from, to float64) int64 {
	if from < 0 {
		from = 0
	}
	m := s.Value(from)
	for _, st := range s.steps {
		if st.t <= from {
			continue
		}
		if st.t >= to {
			break
		}
		if st.v < m {
			m = st.v
		}
	}
	return m
}

// indexAt returns the index of the piece containing time t (t >= 0).
func (s *Staircase) indexAt(t float64) int {
	lo, hi := 0, len(s.steps)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.steps[mid].t <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ensureBreak inserts a breakpoint at time t (if not already present) and
// returns the index of the piece starting at t.
func (s *Staircase) ensureBreak(t float64) int {
	i := s.indexAt(t)
	if s.steps[i].t == t {
		return i
	}
	s.steps = append(s.steps, step{})
	copy(s.steps[i+2:], s.steps[i+1:])
	s.steps[i+1] = step{t: t, v: s.steps[i].v}
	return i + 1
}

// Reserve subtracts amount from free on [from, to). A negative amount
// releases memory. to may be Inf for an open-ended reservation (the typical
// case for output files whose consumer is not scheduled yet). Reservations
// are allowed to drive the function negative; callers that must respect a
// bound check EarliestFit or MinOn first.
func (s *Staircase) Reserve(from, to float64, amount int64) {
	if amount == 0 || to <= from {
		return
	}
	if from < 0 {
		from = 0
	}
	i := s.ensureBreak(from)
	j := len(s.steps) // exclusive
	if !math.IsInf(to, 1) {
		j = s.ensureBreak(to)
		if s.steps[j].t != to {
			panic("memfn: internal error: missing breakpoint")
		}
		// ensureBreak(to) may have shifted index i if to < from is
		// impossible here, but inserting at to > from never moves i.
	}
	for k := i; k < j; k++ {
		s.steps[k].v -= amount
	}
	s.coalesce()
}

// Release adds amount back to free from time t onward. It is the standard
// way to return an open-ended reservation (an input file consumed at t, or a
// cross-memory file whose transfer completes at t).
func (s *Staircase) Release(t float64, amount int64) {
	s.Reserve(t, Inf, -amount)
}

// coalesce merges adjacent pieces with equal values.
func (s *Staircase) coalesce() {
	out := s.steps[:1]
	for _, st := range s.steps[1:] {
		if st.v == out[len(out)-1].v {
			continue
		}
		out = append(out, st)
	}
	s.steps = out
}

// EarliestFit returns the smallest t >= lowerBound such that free(t') >= need
// for all t' >= t, or +Inf when no such time exists (the final piece is below
// need). This is exactly the task_mem_EST / comm_mem_EST computation of
// Algorithm 1 and runs in O(l) for a staircase with l pieces.
func (s *Staircase) EarliestFit(lowerBound float64, need int64) float64 {
	if s.FinalValue() < need {
		return Inf
	}
	// Walk backwards to find the end of the last deficient piece.
	for i := len(s.steps) - 1; i >= 0; i-- {
		if s.steps[i].v < need {
			// Deficient on [steps[i].t, steps[i+1].t); the fit
			// starts at the next breakpoint. i is never the last
			// index because FinalValue() >= need.
			return math.Max(lowerBound, s.steps[i+1].t)
		}
	}
	return math.Max(lowerBound, 0)
}

// Breakpoints returns copies of the (time, value) pairs, mainly for tests
// and debugging.
func (s *Staircase) Breakpoints() (times []float64, values []int64) {
	times = make([]float64, len(s.steps))
	values = make([]int64, len(s.steps))
	for i, st := range s.steps {
		times[i] = st.t
		values[i] = st.v
	}
	return times, values
}

// String renders the staircase compactly, e.g. "[0:5 2:3 4:5]".
func (s *Staircase) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, st := range s.steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g:%d", st.t, st.v)
	}
	b.WriteByte(']')
	return b.String()
}
