package memfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsConstant(t *testing.T) {
	s := New(10)
	for _, tt := range []float64{0, 1, 100, 1e9} {
		if v := s.Value(tt); v != 10 {
			t.Fatalf("Value(%g) = %d, want 10", tt, v)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.FinalValue() != 10 {
		t.Fatalf("FinalValue = %d", s.FinalValue())
	}
}

func TestReserveBoundedInterval(t *testing.T) {
	s := New(10)
	s.Reserve(2, 5, 4)
	cases := []struct {
		t float64
		v int64
	}{{0, 10}, {1.999, 10}, {2, 6}, {3, 6}, {4.999, 6}, {5, 10}, {100, 10}}
	for _, c := range cases {
		if got := s.Value(c.t); got != c.v {
			t.Fatalf("Value(%g) = %d, want %d", c.t, got, c.v)
		}
	}
}

func TestReserveOpenEnded(t *testing.T) {
	s := New(10)
	s.Reserve(3, Inf, 7)
	if s.Value(2) != 10 || s.Value(3) != 3 || s.FinalValue() != 3 {
		t.Fatalf("open-ended reserve wrong: %s", s)
	}
}

func TestReleaseUndoesOpenEndedReservation(t *testing.T) {
	s := New(10)
	s.Reserve(1, Inf, 6)
	s.Release(4, 6)
	if s.Value(0) != 10 || s.Value(2) != 4 || s.Value(4) != 10 || s.Len() != 3 {
		t.Fatalf("after release: %s", s)
	}
}

func TestReserveZeroAmountOrEmptyIntervalIsNoop(t *testing.T) {
	s := New(5)
	s.Reserve(1, 1, 3)
	s.Reserve(3, 2, 3)
	s.Reserve(0, 10, 0)
	if s.Len() != 1 || s.Value(0) != 5 {
		t.Fatalf("no-op reserves changed function: %s", s)
	}
}

func TestReserveNegativeTimeClamped(t *testing.T) {
	s := New(5)
	s.Reserve(-3, 2, 2)
	if s.Value(0) != 3 || s.Value(2) != 5 {
		t.Fatalf("negative-from reserve: %s", s)
	}
}

func TestOverlappingReserves(t *testing.T) {
	s := New(10)
	s.Reserve(0, 4, 3)
	s.Reserve(2, 6, 5)
	want := []struct {
		t float64
		v int64
	}{{0, 7}, {2, 2}, {4, 5}, {6, 10}}
	for _, c := range want {
		if got := s.Value(c.t); got != c.v {
			t.Fatalf("Value(%g) = %d, want %d (%s)", c.t, got, c.v, s)
		}
	}
	if s.MinValue() != 2 {
		t.Fatalf("MinValue = %d, want 2", s.MinValue())
	}
}

func TestMinOn(t *testing.T) {
	s := New(10)
	s.Reserve(2, 5, 4) // 6 on [2,5)
	if got := s.MinOn(0, 2); got != 10 {
		t.Fatalf("MinOn(0,2) = %d", got)
	}
	if got := s.MinOn(0, 3); got != 6 {
		t.Fatalf("MinOn(0,3) = %d", got)
	}
	if got := s.MinOn(5, Inf); got != 10 {
		t.Fatalf("MinOn(5,inf) = %d", got)
	}
	if got := s.MinOn(1, 1); got != 10 { // empty interval: value at from
		t.Fatalf("MinOn(1,1) = %d", got)
	}
}

func TestEarliestFitConstant(t *testing.T) {
	s := New(10)
	if got := s.EarliestFit(0, 10); got != 0 {
		t.Fatalf("EarliestFit(0,10) = %g", got)
	}
	if got := s.EarliestFit(3.5, 10); got != 3.5 {
		t.Fatalf("EarliestFit(3.5,10) = %g", got)
	}
	if got := s.EarliestFit(0, 11); !math.IsInf(got, 1) {
		t.Fatalf("EarliestFit(0,11) = %g, want +inf", got)
	}
}

func TestEarliestFitSkipsTemporaryDip(t *testing.T) {
	s := New(10)
	s.Reserve(2, 5, 8) // free = 2 on [2,5)
	// Need 6: free(t') >= 6 for all t' >= t requires t >= 5.
	if got := s.EarliestFit(0, 6); got != 5 {
		t.Fatalf("EarliestFit(0,6) = %g, want 5", got)
	}
	// Need 2 fits everywhere.
	if got := s.EarliestFit(0, 2); got != 0 {
		t.Fatalf("EarliestFit(0,2) = %g, want 0", got)
	}
	// Lower bound beyond the dip dominates.
	if got := s.EarliestFit(7, 6); got != 7 {
		t.Fatalf("EarliestFit(7,6) = %g, want 7", got)
	}
}

func TestEarliestFitOpenEndedDeficit(t *testing.T) {
	s := New(10)
	s.Reserve(3, Inf, 9) // free = 1 forever after 3
	if got := s.EarliestFit(0, 2); !math.IsInf(got, 1) {
		t.Fatalf("EarliestFit(0,2) = %g, want +inf", got)
	}
	if got := s.EarliestFit(0, 1); got != 0 {
		t.Fatalf("EarliestFit(0,1) = %g, want 0", got)
	}
}

func TestEarliestFitMultipleDips(t *testing.T) {
	s := New(10)
	s.Reserve(1, 2, 5) // 5 on [1,2)
	s.Reserve(6, 8, 7) // 3 on [6,8)
	if got := s.EarliestFit(0, 4); got != 8 {
		t.Fatalf("EarliestFit(0,4) = %g, want 8", got)
	}
	if got := s.EarliestFit(0, 5); got != 8 {
		t.Fatalf("EarliestFit(0,5) = %g, want 8", got)
	}
	if got := s.EarliestFit(0, 3); got != 0 { // min free is exactly 3
		t.Fatalf("EarliestFit(0,3) = %g, want 0", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := New(10)
	s.Reserve(1, 3, 2)
	c := s.Clone()
	c.Reserve(0, Inf, 5)
	if s.Value(0) != 10 || s.Value(1) != 8 {
		t.Fatalf("clone mutation leaked into original: %s", s)
	}
}

func TestCoalesceKeepsRepresentationSmall(t *testing.T) {
	s := New(10)
	for i := 0; i < 100; i++ {
		s.Reserve(float64(i), float64(i+1), 3)
	}
	// All intervals have the same value 7 on [0,100): representation
	// should be [0:7, 100:10], i.e. 2 pieces.
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (%s)", s.Len(), s)
	}
}

func TestBreakpoints(t *testing.T) {
	s := New(10)
	s.Reserve(2, 4, 1)
	times, values := s.Breakpoints()
	if len(times) != 3 || times[0] != 0 || times[1] != 2 || times[2] != 4 {
		t.Fatalf("times = %v", times)
	}
	if values[0] != 10 || values[1] != 9 || values[2] != 10 {
		t.Fatalf("values = %v", values)
	}
}

func TestStringFormat(t *testing.T) {
	s := New(5)
	s.Reserve(1, 2, 3)
	if got := s.String(); got != "[0:5 1:2 2:5]" {
		t.Fatalf("String = %q", got)
	}
}

// randomOps applies a deterministic random mix of reservations and releases
// and returns the staircase plus a brute-force sampled reference model.
func randomOps(seed int64) (*Staircase, func(t float64) int64) {
	rng := rand.New(rand.NewSource(seed))
	capacity := int64(rng.Intn(100) + 1)
	s := New(capacity)
	type op struct {
		from, to float64
		amount   int64
	}
	var ops []op
	for i := 0; i < 20; i++ {
		from := float64(rng.Intn(50))
		to := from + float64(rng.Intn(20))
		if rng.Intn(4) == 0 {
			to = math.Inf(1)
		}
		amount := int64(rng.Intn(21) - 10)
		ops = append(ops, op{from, to, amount})
		s.Reserve(from, to, amount)
	}
	ref := func(t float64) int64 {
		v := capacity
		for _, o := range ops {
			if o.from <= t && t < o.to {
				v -= o.amount
			}
		}
		return v
	}
	return s, ref
}

func TestPropertyValueMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		s, ref := randomOps(seed)
		for x := 0.0; x < 80; x += 0.5 {
			if s.Value(x) != ref(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEarliestFitIsCorrectAndMinimal(t *testing.T) {
	f := func(seed int64, needRaw uint8) bool {
		s, ref := randomOps(seed)
		need := int64(needRaw % 100)
		got := s.EarliestFit(0, need)
		if math.IsInf(got, 1) {
			return s.FinalValue() < need
		}
		// Correct: free >= need everywhere after got (sample densely
		// past every breakpoint region).
		for x := got; x < got+100; x += 0.25 {
			if ref(x) < need {
				return false
			}
		}
		// Minimal: just before got (if got > 0) there is a deficient
		// point at or after got-0.25... only guaranteed when got is a
		// breakpoint; check with the model that got-eps is deficient
		// somewhere in (got-0.5, got) when got > 0.
		if got > 0 {
			if ref(got-1e-6) >= need {
				// got must then equal the lower bound 0; it is
				// not, so minimality failed.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReserveReleaseCancels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(50)
		for i := 0; i < 10; i++ {
			from := float64(rng.Intn(30))
			amt := int64(rng.Intn(10) + 1)
			s.Reserve(from, Inf, amt)
			s.Release(from, amt)
		}
		return s.Len() == 1 && s.Value(0) == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
