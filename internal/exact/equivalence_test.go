package exact

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/daggen"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// naiveSearcher mirrors Solve with the pre-incremental search mechanics: a
// fresh Clone per node and fresh move buffers, no pooling. The branch
// ordering (sort.Slice on EFT) is byte-for-byte the same code, so the
// traversal — and hence node counts and the incumbent sequence — must be
// identical to the optimized search.
type naiveSearcher struct {
	bottom  []float64
	best    float64
	bestSch *schedule.Schedule
	nodes   int
	max     int
	stopped bool
}

func (s *naiveSearcher) dfs(st *core.Partial) {
	s.nodes++
	if s.stopped || s.nodes > s.max {
		s.stopped = true
		return
	}
	if st.Done() {
		if ms := st.MakespanSoFar(); ms < s.best || s.bestSch == nil {
			s.best = ms
			s.bestSch = snapshot(st.Schedule())
		}
		return
	}
	var moves []core.Candidate
	for _, id := range st.ReadyTasks() {
		for _, mu := range platform.Memories {
			if c := st.Evaluate(id, mu); c.Feasible() {
				moves = append(moves, c)
			}
		}
	}
	sort.Slice(moves, func(a, b int) bool { return moves[a].EFT < moves[b].EFT })
	for _, mv := range moves {
		child := st.Clone()
		child.Commit(mv)
		if lbOf(child, s.bottom) >= s.best-schedule.Eps {
			continue
		}
		s.dfs(child)
		if s.stopped {
			return
		}
	}
}

// TestSearchMatchesNaiveClonePerNode runs the pooled branch-and-bound and a
// clone-per-node replica over random bounded instances and requires the
// same optimum, the same node count, and the same final schedule.
func TestSearchMatchesNaiveClonePerNode(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		params := daggen.SmallParams()
		params.Size = 7
		g, err := daggen.Generate(params, seed)
		if err != nil {
			t.Fatal(err)
		}
		p := platform.New(1, 1, 60, 60)
		res, err := Solve(tctx, g, p, Options{MaxNodes: 30000})
		if err != nil {
			t.Fatal(err)
		}

		bottom, err := bottomLevels(g)
		if err != nil {
			t.Fatal(err)
		}
		ns := &naiveSearcher{bottom: bottom, best: math.Inf(1), max: 30000}
		ns.dfs(core.NewPartial(g, p))

		if ns.nodes != res.Nodes {
			t.Fatalf("seed %d: pooled search visited %d nodes, naive %d", seed, res.Nodes, ns.nodes)
		}
		if (ns.bestSch == nil) != (res.Schedule == nil) {
			t.Fatalf("seed %d: feasibility diverged (naive %v, pooled %v)", seed, ns.bestSch != nil, res.Schedule != nil)
		}
		if ns.bestSch == nil {
			continue
		}
		if ns.best != res.Makespan {
			t.Fatalf("seed %d: pooled optimum %g, naive %g", seed, res.Makespan, ns.best)
		}
		for i := range ns.bestSch.Tasks {
			if ns.bestSch.Tasks[i] != res.Schedule.Tasks[i] {
				t.Fatalf("seed %d: task %d placed %+v, naive says %+v",
					seed, i, res.Schedule.Tasks[i], ns.bestSch.Tasks[i])
			}
		}
	}
}
