package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
)

func TestLowerBoundPaperExample(t *testing.T) {
	g := dag.PaperExample()
	// CP (min times) = 5; total min work 7 over 2 procs = 3.5.
	lb, err := LowerBound(g, platform.New(1, 1, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if lb != 5 {
		t.Fatalf("LowerBound = %g, want 5", lb)
	}
	// On a single processor the work bound dominates: 7.
	lb, _ = LowerBound(g, platform.New(0, 1, 10, 10))
	if lb != 7 {
		t.Fatalf("LowerBound(1 proc) = %g, want 7", lb)
	}
}

func TestOptimalPaperExampleUnlimited(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, platform.Unlimited, platform.Unlimited)
	res, err := Solve(tctx, g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Worked out in the paper (§3.3 discussion): 6 is optimal.
	if res.Makespan != 6 {
		t.Fatalf("makespan = %g, want 6", res.Makespan)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalPaperExampleMemoryFour(t *testing.T) {
	// §3.3: with M(blue)=M(red)=4 the optimum trades one time unit for
	// memory: makespan 7.
	g := dag.PaperExample()
	p := platform.New(1, 1, 4, 4)
	res, err := Solve(tctx, g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Makespan != 7 {
		t.Fatalf("status %v makespan %g, want optimal 7", res.Status, res.Makespan)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	blue, red := res.Schedule.MemoryPeaks()
	if blue > 4 || red > 4 {
		t.Fatalf("peaks (%d,%d) exceed 4", blue, red)
	}
}

func TestInfeasibleWhenMemoryTooSmall(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 2, 2) // T3 alone needs 4
	res, err := Solve(tctx, g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	ok, st, err := CheckFeasible(tctx, g, p, Options{})
	if err != nil || ok || st != Infeasible {
		t.Fatalf("CheckFeasible = %v/%v/%v", ok, st, err)
	}
}

func TestFeasibilityOnlyStopsEarly(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 10, 10)
	res, err := Solve(tctx, g, p, Options{FeasibilityOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible || res.Schedule == nil {
		t.Fatalf("res = %+v", res)
	}
	full, _ := Solve(tctx, g, p, Options{})
	if res.Nodes > full.Nodes {
		t.Fatalf("feasibility search (%d nodes) slower than full search (%d)", res.Nodes, full.Nodes)
	}
}

func TestIncumbentPrunes(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 10, 10)
	h, err := core.MemHEFT(tctx, g, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(tctx, g, p, Options{Incumbent: h})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Makespan > h.Makespan() {
		t.Fatalf("res = %+v vs heuristic %g", res, h.Makespan())
	}
	plain, _ := Solve(tctx, g, p, Options{})
	if res.Nodes > plain.Nodes {
		t.Fatalf("seeded search explored more nodes (%d) than unseeded (%d)", res.Nodes, plain.Nodes)
	}
}

func TestNodeBudgetReportsUnknownOrFeasible(t *testing.T) {
	g := dag.Chain(6, 2, 3, 1, 1)
	p := platform.New(1, 1, 10, 10)
	res, err := Solve(tctx, g, p, Options{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal || res.Status == Infeasible {
		t.Fatalf("2-node budget cannot conclude, got %v", res.Status)
	}
}

func TestSolveMatchesEnumerateMinimum(t *testing.T) {
	g := dag.PaperExample()
	for _, m := range []int64{4, 5, 20} {
		p := platform.New(1, 1, m, m)
		all, err := Enumerate(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(tctx, g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(all) == 0 {
			if res.Status != Infeasible {
				t.Fatalf("M=%d: enumerate empty but solve says %v", m, res.Status)
			}
			continue
		}
		min := math.Inf(1)
		for _, v := range all {
			if v < min {
				min = v
			}
		}
		if res.Makespan != min {
			t.Fatalf("M=%d: solve %g, enumeration min %g", m, res.Makespan, min)
		}
	}
}

func TestEnumerateGuard(t *testing.T) {
	g := dag.Chain(9, 1, 1, 1, 1)
	if _, err := Enumerate(g, platform.New(1, 1, 10, 10)); err == nil {
		t.Fatal("Enumerate accepted a 9-task graph")
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		g := smallRandom(seed)
		p := platform.New(1, 1, 25, 25)
		res, err := Solve(tctx, g, p, Options{MaxNodes: 300000})
		if err != nil || res.Status == Unknown || res.Status == Feasible {
			return true // budget blowups do not falsify the property
		}
		for _, f := range []core.Func{core.MemHEFT, core.MemMinMin} {
			hs, err := f(tctx, g, p, core.Options{Seed: seed})
			if err != nil {
				continue
			}
			if res.Status == Infeasible {
				return false // heuristic succeeded where exact search "proved" infeasible
			}
			if res.Makespan > hs.Makespan()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalSchedulesValidate(t *testing.T) {
	f := func(seed int64) bool {
		g := smallRandom(seed)
		p := platform.New(1, 1, 30, 30)
		res, err := Solve(tctx, g, p, Options{MaxNodes: 300000})
		if err != nil {
			return false
		}
		if res.Schedule == nil {
			return true
		}
		return res.Schedule.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundHoldsForOptimal(t *testing.T) {
	f := func(seed int64) bool {
		g := smallRandom(seed)
		p := platform.New(1, 1, platform.Unlimited, platform.Unlimited)
		lb, err := LowerBound(g, p)
		if err != nil {
			return false
		}
		res, err := Solve(tctx, g, p, Options{MaxNodes: 300000})
		if err != nil || res.Schedule == nil {
			return true
		}
		return res.Makespan >= lb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// smallRandom builds a 6-task random DAG (small enough for exact search).
func smallRandom(seed int64) *dag.Graph {
	g := dag.New()
	rng := newRand(seed)
	for i := 0; i < 6; i++ {
		g.AddTask("", float64(rng.next()%9+1), float64(rng.next()%9+1))
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if rng.next()%3 == 0 {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), int64(rng.next()%5+1), float64(rng.next()%5+1))
			}
		}
	}
	return g
}

// newRand is a tiny deterministic PRNG (splitmix-ish) to avoid pulling
// math/rand into many helpers.
type miniRand struct{ s uint64 }

func newRand(seed int64) *miniRand { return &miniRand{s: uint64(seed)*2654435769 + 1} }

func (r *miniRand) next() int {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return int(r.s % (1 << 30))
}

func TestTimeoutStopsSearch(t *testing.T) {
	// A graph big enough that full exploration cannot finish in a
	// nanosecond; the search must stop via the deadline check and report
	// a budgeted status.
	g := smallRandom(3)
	p := platform.New(1, 1, 30, 30)
	res, err := Solve(tctx, g, p, Options{Timeout: 1, MaxNodes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal || res.Status == Infeasible {
		// The deadline is checked every 1024 nodes, so a tiny graph
		// could still finish; smallRandom(3) has 6 tasks and a large
		// search tree, making completion within ~1024 nodes the only
		// escape. Accept it but require the node count to be small.
		if res.Nodes > 2048 {
			t.Fatalf("search ran %d nodes past a 1ns deadline", res.Nodes)
		}
	}
}

func TestLowerBoundOnCyclicGraphFails(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("b", 1, 1)
	g.MustAddEdge(a, b, 1, 1)
	g.MustAddEdge(b, a, 1, 1)
	if _, err := LowerBound(g, platform.New(1, 1, 1, 1)); err == nil {
		t.Fatal("cyclic graph accepted")
	}
	if _, err := Solve(tctx, g, platform.New(1, 1, 1, 1), Options{}); err == nil {
		t.Fatal("cyclic graph accepted by Solve")
	}
}
