// Package exact computes reference solutions for the memory-constrained
// scheduling problem: a makespan lower bound, and a branch-and-bound search
// over the space of eager list schedules with as-late-as-possible
// communications — the decision space that MemHEFT and MemMinMin draw from.
//
// The search stands in for the CPLEX-solved ILP of the paper on instances the
// homemade MILP solver cannot handle (see DESIGN.md, "Substitutions"): it is
// exact over its space, which contains every schedule either heuristic can
// produce, so it lower-bounds their makespans and upper-bounds their failure
// region, which is exactly the role the "Optimal" curve plays in Figure 10.
// On tiny instances the tests cross-check it against the full ILP.
package exact

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// LowerBound returns a makespan lower bound valid for every schedule on the
// platform, memory aside: the maximum of the critical path with best-case
// processing times and the aggregate best-case work spread over all
// processors. It is the "Lower bound" curve of Figure 11.
func LowerBound(g *dag.Graph, p platform.Platform) (float64, error) {
	cp, err := g.CriticalPathLength()
	if err != nil {
		return 0, err
	}
	work := g.TotalMinWork() / float64(p.TotalProcs())
	return math.Max(cp, work), nil
}

// Status classifies a search outcome.
type Status int

// Search outcomes. Feasible means a budget ran out with an incumbent in
// hand; Unknown means it ran out before finding any complete schedule.
const (
	Optimal Status = iota
	Feasible
	Infeasible
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Options bounds the search effort.
type Options struct {
	MaxNodes int // 0 means DefaultMaxNodes
	// Timeout is a convenience wrapper around context cancellation: when
	// positive, Solve derives a context.WithTimeout from its context. An
	// expired budget is not an error — the search reports the incumbent
	// with a Feasible/Unknown status, exactly like an exhausted node
	// budget.
	Timeout time.Duration
	// Incumbent seeds the search with a known feasible schedule (e.g. a
	// heuristic result); branches that cannot beat it are pruned.
	Incumbent *schedule.Schedule
	// FeasibilityOnly stops at the first complete schedule and disables
	// bound pruning.
	FeasibilityOnly bool
	// Caches, when non-nil, serves the per-graph memos (statics,
	// validation) owned by the caller — typically a memsched.Session.
	Caches *core.Caches
}

// DefaultMaxNodes is the node budget used when Options.MaxNodes is zero.
const DefaultMaxNodes = 500000

// Result reports the outcome of a search.
type Result struct {
	Status   Status
	Makespan float64            // makespan of Schedule; +inf when none
	Schedule *schedule.Schedule // best complete schedule known (may be the seeded incumbent)
	Nodes    int
}

type searcher struct {
	g        *dag.Graph
	p        platform.Platform
	bottom   []float64 // per task: min-W critical path to a sink, inclusive
	best     float64
	bestSch  *schedule.Schedule
	improved bool
	nodes    int
	maxNodes int
	ctx      context.Context
	feasOnly bool
	stopped  bool

	// pool holds exhausted Partial nodes for reuse: dfs clones into them
	// via CloneInto instead of allocating a full new state per node.
	pool []*core.Partial
	// movesStack holds one reusable candidate buffer per search depth.
	movesStack [][]core.Candidate
}

// getClone copies st into a pooled Partial (or a fresh one when the pool is
// empty).
func (s *searcher) getClone(st *core.Partial) *core.Partial {
	var dst *core.Partial
	if n := len(s.pool); n > 0 {
		dst, s.pool = s.pool[n-1], s.pool[:n-1]
	}
	return st.CloneInto(dst)
}

// putClone returns an exhausted node to the pool.
func (s *searcher) putClone(st *core.Partial) {
	s.pool = append(s.pool, st)
}

// Solve runs the branch-and-bound search for g on p. The context cancels
// the search cooperatively (checked every 1024 nodes): a cancelled search
// is not an error, it reports the best incumbent found so far with a
// Feasible or Unknown status, exactly like an exhausted node budget.
func Solve(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	if err := opt.Caches.Validate(g); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bottom, err := bottomLevels(g)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		g: g, p: p, bottom: bottom,
		best:     math.Inf(1),
		maxNodes: opt.MaxNodes,
		ctx:      ctx,
		feasOnly: opt.FeasibilityOnly,
	}
	if s.maxNodes <= 0 {
		s.maxNodes = DefaultMaxNodes
	}
	if opt.Incumbent != nil {
		s.bestSch = opt.Incumbent
		s.best = opt.Incumbent.Makespan()
	}
	s.dfs(core.NewPartialCached(g, p, opt.Caches), 0)

	res := &Result{Makespan: s.best, Schedule: s.bestSch, Nodes: s.nodes}
	switch {
	case s.bestSch == nil && s.stopped:
		res.Status = Unknown
	case s.bestSch == nil:
		res.Status = Infeasible
	case s.stopped && !(s.feasOnly && s.improved):
		res.Status = Feasible
	case s.feasOnly:
		res.Status = Feasible
	default:
		res.Status = Optimal
	}
	return res, nil
}

// bottomLevels computes, per task, the longest min-W path from the task to a
// sink (inclusive). Used as an admissible completion estimate.
func bottomLevels(g *dag.Graph) ([]float64, error) {
	rev, err := g.ReverseTopologicalOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, g.NumTasks())
	for _, id := range rev {
		t := g.Task(id)
		w := math.Min(t.WBlue, t.WRed)
		best := 0.0
		for _, e := range g.Out(id) {
			if v := bl[g.Edge(e).To]; v > best {
				best = v
			}
		}
		bl[id] = w + best
	}
	return bl, nil
}

func (s *searcher) budgetExceeded() bool {
	if s.stopped {
		return true
	}
	if s.nodes > s.maxNodes {
		s.stopped = true
		return true
	}
	if s.nodes%1024 == 0 && s.ctx.Err() != nil {
		s.stopped = true
		return true
	}
	return false
}

// dfs explores all completions of st depth-first. depth indexes the
// reusable per-level candidate buffer.
func (s *searcher) dfs(st *core.Partial, depth int) {
	s.nodes++
	if s.budgetExceeded() {
		return
	}
	if st.Done() {
		ms := st.MakespanSoFar()
		if ms < s.best || s.bestSch == nil {
			s.best = ms
			s.bestSch = snapshot(st.Schedule())
			s.improved = true
		}
		if s.feasOnly {
			s.stopped = true
		}
		return
	}

	if depth >= len(s.movesStack) {
		s.movesStack = append(s.movesStack, nil)
	}
	moves := s.movesStack[depth][:0]
	for _, id := range st.ReadyTasks() {
		for _, mu := range platform.Memories {
			if c := st.Evaluate(id, mu); c.Feasible() {
				moves = append(moves, c)
			}
		}
	}
	s.movesStack[depth] = moves
	// Explore small EFT first: good schedules early mean strong pruning.
	sort.Slice(moves, func(a, b int) bool { return moves[a].EFT < moves[b].EFT })
	for _, mv := range moves {
		child := s.getClone(st)
		child.Commit(mv)
		if !s.feasOnly && lbOf(child, s.bottom) >= s.best-schedule.Eps {
			s.putClone(child)
			continue // cannot beat the incumbent
		}
		s.dfs(child, depth+1)
		s.putClone(child)
		if s.stopped {
			return
		}
	}
}

// lbOf computes an admissible lower bound for a partial schedule: the
// makespan so far, and for every unassigned task a precedence-only start
// estimate plus its bottom level.
func lbOf(st *core.Partial, bottom []float64) float64 {
	lb := st.MakespanSoFar()
	g := st.Schedule().Graph
	for i := 0; i < g.NumTasks(); i++ {
		id := dag.TaskID(i)
		if st.Assigned(id) {
			continue
		}
		start := 0.0
		for _, e := range g.In(id) {
			from := g.Edge(e).From
			if st.Assigned(from) {
				if f := st.Finish(from); f > start {
					start = f
				}
			}
		}
		if v := start + bottom[id]; v > lb {
			lb = v
		}
	}
	return lb
}

func snapshot(s *schedule.Schedule) *schedule.Schedule {
	return &schedule.Schedule{
		Graph:     s.Graph,
		Platform:  s.Platform,
		Tasks:     append([]schedule.TaskPlacement(nil), s.Tasks...),
		CommStart: append([]float64(nil), s.CommStart...),
	}
}

// CheckFeasible reports whether any eager list schedule fits the memory bounds,
// within the given budget. The returned status distinguishes a proven "no"
// (Infeasible) from an exhausted budget (Unknown).
func CheckFeasible(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (bool, Status, error) {
	opt.FeasibilityOnly = true
	opt.Incumbent = nil
	res, err := Solve(ctx, g, p, opt)
	if err != nil {
		return false, Unknown, err
	}
	return res.Schedule != nil, res.Status, nil
}

// Enumerate exhaustively lists the makespans of every complete eager list
// schedule of a tiny graph (guarded at 8 tasks); tests use it to validate
// the search.
func Enumerate(g *dag.Graph, p platform.Platform) ([]float64, error) {
	if g.NumTasks() > 8 {
		return nil, fmt.Errorf("exact: Enumerate is restricted to <= 8 tasks, got %d", g.NumTasks())
	}
	var out []float64
	var rec func(st *core.Partial)
	rec = func(st *core.Partial) {
		if st.Done() {
			out = append(out, st.MakespanSoFar())
			return
		}
		for _, id := range st.ReadyTasks() {
			for _, mu := range platform.Memories {
				c := st.Evaluate(id, mu)
				if !c.Feasible() {
					continue
				}
				child := st.Clone()
				child.Commit(c)
				rec(child)
			}
		}
	}
	rec(core.NewPartial(g, p))
	return out, nil
}
