// Package mip implements a small branch-and-bound solver for mixed-integer
// linear programs on top of the simplex solver of internal/lp. It plays the
// role of CPLEX in the paper: solving the ILP formulation of §4 to optimality
// on small instances. Branching is depth-first on the most fractional
// integer variable, exploring first the side closer to the relaxation value;
// bound constraints are added as ordinary LP rows.
package mip

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
)

// Problem couples an LP with integrality requirements.
type Problem struct {
	LP      *lp.Problem
	Integer []int // indices of variables that must take integral values
}

// Options bounds the search effort.
type Options struct {
	MaxNodes int           // 0 means DefaultMaxNodes
	Timeout  time.Duration // 0 means no time limit
}

// DefaultMaxNodes is the node budget used when Options.MaxNodes is zero.
const DefaultMaxNodes = 200000

// Status classifies a solve outcome.
type Status int

// Solve outcomes. Feasible means the search hit a budget with an incumbent
// in hand but without proving optimality; Unknown means the budget ran out
// before any integral solution was found.
const (
	Optimal Status = iota
	Feasible
	Infeasible
	Unbounded
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Result reports the outcome of a branch-and-bound run.
type Result struct {
	Status    Status
	X         []float64 // incumbent, when Status is Optimal or Feasible
	Objective float64
	Nodes     int // LP relaxations solved
}

const intTol = 1e-6

// bound is one branching decision: variable <= / >= value.
type bound struct {
	variable int
	sense    lp.Sense
	value    float64
}

// node is a subproblem defined by the accumulated branching bounds.
type node struct {
	bounds []bound
}

// Solve runs branch and bound. The root relaxation statuses Infeasible and
// Unbounded propagate directly (an unbounded relaxation with integer
// variables is reported as Unbounded without attempting repair).
func Solve(p *Problem, opt Options) (*Result, error) {
	if p.LP == nil {
		return nil, fmt.Errorf("mip: nil LP")
	}
	for _, v := range p.Integer {
		if v < 0 || v >= p.LP.NumVars {
			return nil, fmt.Errorf("mip: integer variable %d out of range", v)
		}
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}

	res := &Result{Status: Unknown, Objective: math.Inf(1)}
	stack := []node{{}}
	budgetHit := false

	for len(stack) > 0 {
		if res.Nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			budgetHit = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		sol, err := solveWithBounds(p.LP, nd.bounds)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if len(nd.bounds) == 0 {
				res.Status = Unbounded
				return res, nil
			}
			// A bounded-below objective cannot become unbounded by
			// adding bounds; treat as a numerical anomaly and prune.
			continue
		}
		if sol.Objective >= res.Objective-1e-9 {
			continue // dominated by the incumbent
		}
		branchVar, frac := pickBranch(p.Integer, sol.X)
		if branchVar < 0 {
			// Integral: new incumbent.
			res.Objective = sol.Objective
			res.X = append([]float64(nil), sol.X...)
			continue
		}
		v := sol.X[branchVar]
		floorNode := node{bounds: append(append([]bound(nil), nd.bounds...),
			bound{branchVar, lp.LE, math.Floor(v)})}
		ceilNode := node{bounds: append(append([]bound(nil), nd.bounds...),
			bound{branchVar, lp.GE, math.Ceil(v)})}
		// Depth-first; push the farther side first so the closer side
		// is explored next.
		if frac <= 0.5 {
			stack = append(stack, ceilNode, floorNode)
		} else {
			stack = append(stack, floorNode, ceilNode)
		}
	}

	switch {
	case res.X != nil && !budgetHit:
		res.Status = Optimal
	case res.X != nil:
		res.Status = Feasible
	case !budgetHit:
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	return res, nil
}

// solveWithBounds solves the LP with the branching bounds appended as rows.
func solveWithBounds(base *lp.Problem, bounds []bound) (*lp.Solution, error) {
	prob := &lp.Problem{
		NumVars:     base.NumVars,
		Objective:   base.Objective,
		Constraints: base.Constraints,
	}
	if len(bounds) > 0 {
		prob.Constraints = make([]lp.Constraint, 0, len(base.Constraints)+len(bounds))
		prob.Constraints = append(prob.Constraints, base.Constraints...)
		for _, b := range bounds {
			prob.Constraints = append(prob.Constraints, lp.Constraint{
				Coeffs: map[int]float64{b.variable: 1},
				Sense:  b.sense,
				RHS:    b.value,
			})
		}
	}
	return lp.Solve(prob)
}

// pickBranch returns the most fractional integer variable and its fractional
// part, or (-1, 0) when every integer variable is integral.
func pickBranch(integer []int, x []float64) (int, float64) {
	best, bestDist := -1, 0.0
	var bestFrac float64
	for _, v := range integer {
		frac := x[v] - math.Floor(x[v])
		dist := math.Min(frac, 1-frac)
		if dist <= intTol {
			continue
		}
		if dist > bestDist {
			best, bestDist, bestFrac = v, dist, frac
		}
	}
	return best, bestFrac
}
