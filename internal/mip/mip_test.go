package mip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsackSmall(t *testing.T) {
	// max 5a+4b+3c s.t. 2a+3b+c <= 5, binaries -> a=1,c=1 ... check:
	// a+c: weight 3, value 8; a+b: weight 5, value 9. Optimal 9.
	p := &lp.Problem{NumVars: 3, Objective: []float64{-5, -4, -3}}
	p.AddConstraint(map[int]float64{0: 2, 1: 3, 2: 1}, lp.LE, 5)
	for v := 0; v < 3; v++ {
		p.AddConstraint(map[int]float64{v: 1}, lp.LE, 1)
	}
	res, err := Solve(&Problem{LP: p, Integer: []int{0, 1, 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.Objective, -9) {
		t.Fatalf("res = %+v", res)
	}
	if !approx(res.X[0], 1) || !approx(res.X[1], 1) || !approx(res.X[2], 0) {
		t.Fatalf("x = %v", res.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x s.t. x >= 2.3, x integer -> 3.
	p := &lp.Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 2.3)
	res, err := Solve(&Problem{LP: p, Integer: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.X[0], 3) {
		t.Fatalf("res = %+v", res)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y - x, x binary, y continuous >= 0.7x, y <= 2: LP would pick
	// x=1, y=0.7 -> obj -0.3.
	p := &lp.Problem{NumVars: 2, Objective: []float64{-1, 1}}
	p.AddConstraint(map[int]float64{1: 1, 0: -0.7}, lp.GE, 0)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	p.AddConstraint(map[int]float64{1: 1}, lp.LE, 2)
	res, err := Solve(&Problem{LP: p, Integer: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.Objective, -0.3) {
		t.Fatalf("res = %+v", res)
	}
}

func TestInfeasibleIntegerProblem(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := &lp.Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 0.4)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 0.6)
	res, err := Solve(&Problem{LP: p, Integer: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("res = %+v", res)
	}
}

func TestRootInfeasible(t *testing.T) {
	p := &lp.Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 2)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	res, err := Solve(&Problem{LP: p, Integer: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("res = %+v", res)
	}
}

func TestUnboundedRoot(t *testing.T) {
	p := &lp.Problem{NumVars: 1, Objective: []float64{-1}}
	res, err := Solve(&Problem{LP: p, Integer: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Fatalf("res = %+v", res)
	}
}

func TestNodeBudgetReturnsFeasibleOrUnknown(t *testing.T) {
	// A 10-item knapsack with a 1-node budget cannot prove optimality.
	rng := rand.New(rand.NewSource(1))
	p := &lp.Problem{NumVars: 10, Objective: make([]float64, 10)}
	weights := map[int]float64{}
	for v := 0; v < 10; v++ {
		p.Objective[v] = -float64(rng.Intn(10) + 1)
		weights[v] = float64(rng.Intn(10) + 1)
		p.AddConstraint(map[int]float64{v: 1}, lp.LE, 1)
	}
	p.AddConstraint(weights, lp.LE, 15)
	res, err := Solve(&Problem{LP: p, Integer: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible && res.Status != Unknown {
		t.Fatalf("status = %v with 1-node budget", res.Status)
	}
}

func TestTimeout(t *testing.T) {
	p := &lp.Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.GE, 3)
	res, err := Solve(&Problem{LP: p, Integer: []int{0, 1}}, Options{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal {
		t.Fatalf("optimality proven in one nanosecond? %+v", res)
	}
}

func TestBadIntegerIndexRejected(t *testing.T) {
	p := &lp.Problem{NumVars: 1, Objective: []float64{1}}
	if _, err := Solve(&Problem{LP: p, Integer: []int{5}}, Options{}); err == nil {
		t.Fatal("bad index accepted")
	}
	if _, err := Solve(&Problem{LP: nil}, Options{}); err == nil {
		t.Fatal("nil LP accepted")
	}
}

func TestPureLPPassesThrough(t *testing.T) {
	p := &lp.Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, lp.GE, 4)
	res, err := Solve(&Problem{LP: p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.Objective, 2) {
		t.Fatalf("res = %+v", res)
	}
}

// bruteKnapsack solves a binary knapsack exactly by enumeration.
func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestPropertyKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		values := make([]float64, n)
		weights := make([]float64, n)
		p := &lp.Problem{NumVars: n, Objective: make([]float64, n)}
		wRow := map[int]float64{}
		for i := 0; i < n; i++ {
			values[i] = float64(rng.Intn(20) + 1)
			weights[i] = float64(rng.Intn(15) + 1)
			p.Objective[i] = -values[i]
			wRow[i] = weights[i]
			p.AddConstraint(map[int]float64{i: 1}, lp.LE, 1)
		}
		capacity := float64(rng.Intn(30) + 5)
		p.AddConstraint(wRow, lp.LE, capacity)
		ints := make([]int, n)
		for i := range ints {
			ints[i] = i
		}
		res, err := Solve(&Problem{LP: p, Integer: ints}, Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		want := bruteKnapsack(values, weights, capacity)
		return approx(-res.Objective, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntegerSolutionsAreIntegral(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		p := &lp.Problem{NumVars: n, Objective: make([]float64, n)}
		for i := 0; i < n; i++ {
			p.Objective[i] = float64(rng.Intn(9) - 4)
			p.AddConstraint(map[int]float64{i: 1}, lp.LE, float64(rng.Intn(5)+1))
		}
		coeffs := map[int]float64{}
		for i := 0; i < n; i++ {
			coeffs[i] = float64(rng.Intn(3) + 1)
		}
		p.AddConstraint(coeffs, lp.GE, float64(rng.Intn(6)))
		ints := make([]int, n)
		for i := range ints {
			ints[i] = i
		}
		res, err := Solve(&Problem{LP: p, Integer: ints}, Options{})
		if err != nil {
			return false
		}
		if res.Status != Optimal {
			return res.Status == Infeasible
		}
		for _, i := range ints {
			if math.Abs(res.X[i]-math.Round(res.X[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
