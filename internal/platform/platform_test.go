package platform

import (
	"strings"
	"testing"
)

func TestMemoryOther(t *testing.T) {
	if Blue.Other() != Red || Red.Other() != Blue {
		t.Fatal("Other wrong")
	}
}

func TestMemoryString(t *testing.T) {
	if Blue.String() != "blue" || Red.String() != "red" {
		t.Fatal("String wrong")
	}
}

func TestMemoryOf(t *testing.T) {
	p := New(3, 2, 10, 10)
	for proc, want := range []Memory{Blue, Blue, Blue, Red, Red} {
		if got := p.MemoryOf(proc); got != want {
			t.Fatalf("MemoryOf(%d) = %v, want %v", proc, got, want)
		}
	}
}

func TestProcRange(t *testing.T) {
	p := New(3, 2, 10, 10)
	if lo, hi := p.ProcRange(Blue); lo != 0 || hi != 3 {
		t.Fatalf("blue range = [%d,%d)", lo, hi)
	}
	if lo, hi := p.ProcRange(Red); lo != 3 || hi != 5 {
		t.Fatalf("red range = [%d,%d)", lo, hi)
	}
	if p.TotalProcs() != 5 {
		t.Fatalf("TotalProcs = %d", p.TotalProcs())
	}
}

func TestProcsAndCapacity(t *testing.T) {
	p := New(3, 2, 7, 9)
	if p.Procs(Blue) != 3 || p.Procs(Red) != 2 {
		t.Fatal("Procs wrong")
	}
	if p.Capacity(Blue) != 7 || p.Capacity(Red) != 9 {
		t.Fatal("Capacity wrong")
	}
}

func TestUnboundedAndWithBounds(t *testing.T) {
	p := New(1, 1, 5, 5)
	u := p.Unbounded()
	if u.MBlue != Unlimited || u.MRed != Unlimited {
		t.Fatal("Unbounded did not lift bounds")
	}
	if p.MBlue != 5 {
		t.Fatal("Unbounded mutated receiver")
	}
	w := p.WithBounds(2, 3)
	if w.MBlue != 2 || w.MRed != 3 || w.PBlue != 1 {
		t.Fatalf("WithBounds = %+v", w)
	}
}

func TestValidate(t *testing.T) {
	if err := New(1, 1, 1, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := New(0, 0, 1, 1).Validate(); err == nil {
		t.Fatal("no-processor platform accepted")
	}
	if err := New(-1, 2, 1, 1).Validate(); err == nil {
		t.Fatal("negative processor count accepted")
	}
	if err := New(1, 1, -1, 1).Validate(); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := New(2, 0, 1, 1).Validate(); err != nil {
		t.Fatalf("blue-only platform rejected: %v", err)
	}
}

func TestStringFormatting(t *testing.T) {
	s := New(2, 1, 5, Unlimited).String()
	if !strings.Contains(s, "P1=2") || !strings.Contains(s, "Mred=inf") || !strings.Contains(s, "Mblue=5") {
		t.Fatalf("String = %q", s)
	}
}
