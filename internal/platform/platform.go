// Package platform describes the dual-memory heterogeneous platform of the
// paper: P1 identical "blue" processors sharing a blue memory of capacity
// MBlue, and P2 identical "red" processors sharing a red memory of capacity
// MRed (Figure 1 of the paper). Blue conventionally models the CPU side and
// red the accelerator (GPU/FPGA) side.
package platform

import "fmt"

// Memory identifies one of the two memories.
type Memory int

const (
	// Blue is the memory shared by the first P1 processors (CPU side).
	Blue Memory = iota
	// Red is the memory shared by the last P2 processors (accelerator side).
	Red
)

// Memories lists both memories, convenient for range loops.
var Memories = [2]Memory{Blue, Red}

// Other returns the opposite memory.
func (m Memory) Other() Memory {
	if m == Blue {
		return Red
	}
	return Blue
}

// String returns "blue" or "red".
func (m Memory) String() string {
	if m == Blue {
		return "blue"
	}
	return "red"
}

// Unlimited is a memory capacity large enough to never constrain a schedule;
// using it turns MemHEFT into plain HEFT and MemMinMin into plain MinMin.
const Unlimited int64 = 1 << 62

// Platform is a dual-memory machine description.
type Platform struct {
	PBlue int   // number of blue processors (P1)
	PRed  int   // number of red processors (P2)
	MBlue int64 // capacity of the blue memory
	MRed  int64 // capacity of the red memory
}

// New returns a platform with the given processor counts and memory bounds.
func New(pBlue, pRed int, mBlue, mRed int64) Platform {
	return Platform{PBlue: pBlue, PRed: pRed, MBlue: mBlue, MRed: mRed}
}

// Unbounded returns the same platform with both memories unlimited.
func (p Platform) Unbounded() Platform {
	p.MBlue, p.MRed = Unlimited, Unlimited
	return p
}

// WithBounds returns the same platform with the given memory capacities.
func (p Platform) WithBounds(mBlue, mRed int64) Platform {
	p.MBlue, p.MRed = mBlue, mRed
	return p
}

// Procs returns the number of processors attached to memory m.
func (p Platform) Procs(m Memory) int {
	if m == Blue {
		return p.PBlue
	}
	return p.PRed
}

// Capacity returns the capacity of memory m.
func (p Platform) Capacity(m Memory) int64 {
	if m == Blue {
		return p.MBlue
	}
	return p.MRed
}

// TotalProcs returns P1 + P2.
func (p Platform) TotalProcs() int { return p.PBlue + p.PRed }

// MemoryOf returns the memory a processor index operates on, following the
// paper's numbering: processors 0..P1-1 are blue, P1..P1+P2-1 are red.
func (p Platform) MemoryOf(proc int) Memory {
	if proc < p.PBlue {
		return Blue
	}
	return Red
}

// ProcRange returns the half-open interval [lo, hi) of processor indices
// attached to memory m.
func (p Platform) ProcRange(m Memory) (lo, hi int) {
	if m == Blue {
		return 0, p.PBlue
	}
	return p.PBlue, p.PBlue + p.PRed
}

// Validate rejects platforms without processors or with negative capacities.
func (p Platform) Validate() error {
	if p.PBlue < 0 || p.PRed < 0 {
		return fmt.Errorf("platform: negative processor count (P1=%d, P2=%d)", p.PBlue, p.PRed)
	}
	if p.PBlue+p.PRed == 0 {
		return fmt.Errorf("platform: no processors")
	}
	if p.MBlue < 0 || p.MRed < 0 {
		return fmt.Errorf("platform: negative memory capacity (blue=%d, red=%d)", p.MBlue, p.MRed)
	}
	return nil
}

// String formats the platform compactly.
func (p Platform) String() string {
	return fmt.Sprintf("platform{P1=%d P2=%d Mblue=%s Mred=%s}", p.PBlue, p.PRed, capString(p.MBlue), capString(p.MRed))
}

func capString(c int64) string {
	if c >= Unlimited {
		return "inf"
	}
	return fmt.Sprintf("%d", c)
}
