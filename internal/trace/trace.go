// Package trace is a dependency-free, allocation-light span recorder
// for in-process latency attribution. It is deliberately not OpenTelemetry:
// a span here is a name plus two monotonic offsets appended to a bounded
// slice under a mutex — cheap enough to thread through the scheduling
// engine's hot paths and leave compiled in.
//
// A *Recorder travels in a context.Context. Code that wants a span calls
//
//	defer trace.Start(ctx, "rank")()
//
// which is a no-op returning a shared closure when no recorder is
// installed, so un-traced callers (benchmarks, the sweep hot loop) pay
// only a context lookup. Span names are hierarchical by convention:
// "engine/rank" is a child of the request-level "engine" span. Consumers
// (serve's ?trace=1 timeline, Result.Stats.Phases) treat names without a
// '/' as top-level.
package trace

import (
	"context"
	"sync"
	"time"
)

// Span is one recorded interval: Start is the offset from the recorder's
// epoch (its creation time), Dur the interval length. Spans appear in
// completion order, not start order.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// DefaultCap bounds the spans one Recorder retains. A schedule call
// records a handful; a long sweep would otherwise record thousands —
// past the cap new spans are counted in Dropped and discarded.
const DefaultCap = 256

// Recorder accumulates spans against a fixed epoch. Safe for concurrent
// use (sweep workers share their request's recorder).
type Recorder struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	dropped uint64
	limit   int
}

// NewRecorder returns an empty recorder whose epoch is now and whose
// capacity is DefaultCap.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now(), limit: DefaultCap}
}

// Epoch is the recorder's zero point: all span offsets are relative to it.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Add appends a raw span. Offsets are relative to the recorder's epoch.
func (r *Recorder) Add(name string, start, dur time.Duration) {
	r.mu.Lock()
	if len(r.spans) >= r.limit {
		r.dropped++
	} else {
		r.spans = append(r.spans, Span{Name: name, Start: start, Dur: dur})
	}
	r.mu.Unlock()
}

// Len reports the number of retained spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped counts spans discarded over the capacity bound.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the retained spans in completion order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// MergeAs folds child's spans into r, prefixing each name and rebasing
// offsets from child's epoch onto r's. Used by Session to surface engine
// phases ("rank") as request-level children ("engine/rank").
func (r *Recorder) MergeAs(prefix string, child *Recorder) {
	if child == nil {
		return
	}
	spans := child.Spans()
	delta := child.epoch.Sub(r.epoch)
	r.mu.Lock()
	for _, s := range spans {
		if len(r.spans) >= r.limit {
			r.dropped += uint64(len(spans)) // remaining, close enough for a drop signal
			break
		}
		r.spans = append(r.spans, Span{Name: prefix + s.Name, Start: s.Start + delta, Dur: s.Dur})
	}
	r.dropped += child.dropped
	r.mu.Unlock()
}

type ctxKey struct{}

// WithRecorder installs r into ctx. A nil r returns ctx unchanged.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the installed recorder, or nil. Nil contexts are
// tolerated: the engine accepts them.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

var noop = func() {}

// Start opens a span named name if ctx carries a recorder and returns
// the closure that closes it. Without a recorder it returns a shared
// no-op, so instrumentation left in hot paths costs one context lookup.
func Start(ctx context.Context, name string) func() {
	r := FromContext(ctx)
	if r == nil {
		return noop
	}
	t0 := time.Now()
	return func() {
		r.Add(name, t0.Sub(r.epoch), time.Since(t0))
	}
}
