package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWithoutRecorderIsNoop(t *testing.T) {
	end := Start(context.Background(), "x")
	end() // must not panic
	end = Start(nil, "x")
	end()
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) != nil")
	}
}

func TestRecorderRecordsSpans(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	end := Start(ctx, "rank")
	time.Sleep(time.Millisecond)
	end()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "rank" {
		t.Fatalf("name = %q", s.Name)
	}
	if s.Dur <= 0 || s.Start < 0 {
		t.Fatalf("span offsets: start=%v dur=%v", s.Start, s.Dur)
	}
}

func TestRecorderBounded(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < DefaultCap+10; i++ {
		r.Add("s", 0, time.Microsecond)
	}
	if got := r.Len(); got != DefaultCap {
		t.Fatalf("len = %d, want %d", got, DefaultCap)
	}
	if r.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", r.Dropped())
	}
}

func TestMergeAsRebasesAndPrefixes(t *testing.T) {
	parent := NewRecorder()
	time.Sleep(time.Millisecond)
	child := NewRecorder()
	child.Add("rank", 2*time.Millisecond, time.Millisecond)
	parent.MergeAs("engine/", child)
	spans := parent.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "engine/rank" {
		t.Fatalf("name = %q", s.Name)
	}
	// Rebasing must add the epoch delta (≥1ms) to the child offset.
	if s.Start < 3*time.Millisecond {
		t.Fatalf("rebased start = %v, want ≥ 3ms", s.Start)
	}
	if s.Dur != time.Millisecond {
		t.Fatalf("dur = %v", s.Dur)
	}
	parent.MergeAs("x/", nil) // nil child is a no-op
	if parent.Len() != 1 {
		t.Fatal("nil merge changed the recorder")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				Start(ctx, "w")()
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != 160 {
		t.Fatalf("len = %d, want 160", got)
	}
	for _, s := range r.Spans() {
		if !strings.HasPrefix(s.Name, "w") {
			t.Fatalf("unexpected span %q", s.Name)
		}
	}
}
