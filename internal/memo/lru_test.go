package memo

import "testing"

func TestLRUBasic(t *testing.T) {
	l := NewLRU[string, int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Get("a")    // refresh a: b is now the LRU entry
	l.Put("c", 3) // evicts b
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := l.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
}

func TestLRUPutRefreshesRecency(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("a", 10) // overwrite refreshes a; b becomes LRU
	l.Put("c", 3)  // evicts b
	if v, ok := l.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = %d, %v, want 10, true", v, ok)
	}
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	l := NewLRU[int, int](0) // clamped to 1
	l.Put(1, 1)
	l.Put(2, 2)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if _, ok := l.Get(2); !ok {
		t.Fatal("latest entry missing")
	}
}

func TestLRUChurn(t *testing.T) {
	const capN = 8
	l := NewLRU[int, int](capN)
	for i := 0; i < 1000; i++ {
		l.Put(i, i)
		if l.Len() > capN {
			t.Fatalf("Len = %d exceeds capacity %d", l.Len(), capN)
		}
	}
	// The last cap keys inserted must all be present.
	for i := 1000 - capN; i < 1000; i++ {
		if v, ok := l.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}
