package memo

// LRU is a map from K to V holding at most a fixed number of entries with
// least-recently-used eviction: Get and Put both refresh an entry's recency,
// and a full Put evicts the entry untouched for longest. It complements
// Bounded, whose arbitrary eviction is fine for pure recomputable memos;
// LRU is for caches whose values are expensive to rebuild and whose access
// pattern has temporal locality — the scheduling service's session cache.
//
// Like the rest of the package, LRU is not concurrency-safe: the owner
// serialises access under its own mutex. The zero value is not usable; call
// NewLRU.
type LRU[K comparable, V any] struct {
	max       int
	evictions uint64
	entries   map[K]*lruEntry[K, V]
	// head.next is the most recently used entry, head.prev the least;
	// the ring always contains head itself, so list edits need no nil
	// checks.
	head lruEntry[K, V]
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// NewLRU returns an empty LRU cache holding at most max entries (max < 1 is
// treated as 1).
func NewLRU[K comparable, V any](max int) *LRU[K, V] {
	if max < 1 {
		max = 1
	}
	l := &LRU[K, V]{max: max, entries: make(map[K]*lruEntry[K, V], max)}
	l.head.prev = &l.head
	l.head.next = &l.head
	return l
}

// Get returns the cached value for k, marking it most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	e, ok := l.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(e)
	return e.val, true
}

// Put stores v under k as the most recently used entry, evicting the least
// recently used entry first when the cache is full.
func (l *LRU[K, V]) Put(k K, v V) {
	if e, ok := l.entries[k]; ok {
		e.val = v
		l.moveToFront(e)
		return
	}
	if len(l.entries) >= l.max {
		oldest := l.head.prev
		l.unlink(oldest)
		delete(l.entries, oldest.key)
		l.evictions++
	}
	e := &lruEntry[K, V]{key: k, val: v}
	l.entries[k] = e
	l.pushFront(e)
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int { return len(l.entries) }

// Evictions counts the entries displaced by a full Put over the cache's
// lifetime — the pressure signal a capacity planner (or a sharding layer
// deciding whether splitting the key space helped) actually wants.
func (l *LRU[K, V]) Evictions() uint64 { return l.evictions }

func (l *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (l *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = &l.head
	e.next = l.head.next
	e.prev.next = e
	e.next.prev = e
}

func (l *LRU[K, V]) moveToFront(e *lruEntry[K, V]) {
	l.unlink(e)
	l.pushFront(e)
}
