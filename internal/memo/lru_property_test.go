package memo

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// shadowLRU is an intentionally naive reference model of LRU semantics: a
// plain slice kept in most-recently-used-first order. Every operation is
// O(n) and obviously correct by inspection, which is the point — the real
// LRU's intrusive ring is checked against it, not the other way around.
type shadowLRU struct {
	max       int
	order     []int // keys, MRU first
	vals      map[int]int
	evictions uint64
}

func newShadowLRU(max int) *shadowLRU {
	return &shadowLRU{max: max, vals: make(map[int]int)}
}

func (s *shadowLRU) touch(k int) {
	for i, key := range s.order {
		if key == k {
			copy(s.order[1:i+1], s.order[:i])
			s.order[0] = k
			return
		}
	}
}

func (s *shadowLRU) get(k int) (int, bool) {
	v, ok := s.vals[k]
	if ok {
		s.touch(k)
	}
	return v, ok
}

func (s *shadowLRU) put(k, v int) {
	if _, ok := s.vals[k]; ok {
		s.vals[k] = v
		s.touch(k)
		return
	}
	if len(s.order) >= s.max {
		oldest := s.order[len(s.order)-1]
		s.order = s.order[:len(s.order)-1]
		delete(s.vals, oldest)
		s.evictions++
	}
	s.order = append([]int{k}, s.order...)
	s.vals[k] = v
}

// TestLRUPropertyConcurrent drives the real LRU and the shadow model with
// the same randomized operation stream from many goroutines. The LRU's
// documented contract is "not concurrency-safe: the owner serialises access
// under its own mutex" — exactly how serve.Server uses it for the session
// cache — so both structures are mutated inside the same critical section,
// and the interleaving (which goroutine wins each lock acquisition) is left
// to the scheduler. After the storm, the real cache must agree with the
// model on length, eviction count, membership, per-key values, and exact
// recency order. Run under -race this also proves the mutex discipline is
// sufficient: any access outside the lock is a data race on the intrusive
// list pointers.
func TestLRUPropertyConcurrent(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 4000
		capacity   = 16
		keySpace   = 48 // 3x capacity: plenty of eviction churn
	)

	real := NewLRU[int, int](capacity)
	shadow := newShadowLRU(capacity)
	var mu sync.Mutex

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < opsPerG; i++ {
				k := rng.Intn(keySpace)
				v := rng.Int()
				doPut := rng.Intn(100) < 40 // 40% puts, 60% gets

				mu.Lock()
				if doPut {
					real.Put(k, v)
					shadow.put(k, v)
				} else {
					rv, rok := real.Get(k)
					sv, sok := shadow.get(k)
					if rok != sok || (rok && rv != sv) {
						mu.Unlock()
						t.Errorf("Get(%d) diverged: real (%d, %v) vs shadow (%d, %v)", k, rv, rok, sv, sok)
						return
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if real.Len() != len(shadow.order) {
		t.Fatalf("Len: real %d vs shadow %d", real.Len(), len(shadow.order))
	}
	if real.Evictions() != shadow.evictions {
		t.Fatalf("Evictions: real %d vs shadow %d", real.Evictions(), shadow.evictions)
	}
	// Membership + values: every shadow entry must be in the real cache with
	// the same value. Get refreshes recency, so check order first (below
	// needs the pre-Get order) — walk the intrusive ring directly instead.
	var realOrder []int
	for e := real.head.next; e != &real.head; e = e.next {
		realOrder = append(realOrder, e.key)
	}
	if fmt.Sprint(realOrder) != fmt.Sprint(shadow.order) {
		t.Fatalf("recency order diverged:\n real:   %v\n shadow: %v", realOrder, shadow.order)
	}
	for _, k := range shadow.order {
		rv, ok := real.Get(k)
		if !ok {
			t.Fatalf("key %d in shadow but missing from real cache", k)
		}
		if rv != shadow.vals[k] {
			t.Fatalf("key %d: real value %d vs shadow %d", k, rv, shadow.vals[k])
		}
	}
}

// TestLRUEvictionOrderExact pins the eviction sequence for a deterministic
// single-goroutine script: entries must leave in least-recently-touched
// order, where both Get and Put count as touches.
func TestLRUEvictionOrderExact(t *testing.T) {
	l := NewLRU[string, int](3)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("c", 3) // order (MRU first): c b a
	l.Get("a")    // order: a c b
	l.Put("d", 4) // evicts b
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted (it was least recently touched)")
	}
	if _, ok := l.Get("a"); !ok {
		t.Fatal("a was refreshed by Get and must survive")
	}
	l.Put("c", 33) // refresh c (update path), order: c a d
	l.Put("e", 5)  // evicts d
	if _, ok := l.Get("d"); ok {
		t.Fatal("d should have been evicted after c's refreshing update")
	}
	if v, ok := l.Get("c"); !ok || v != 33 {
		t.Fatalf("c = (%d, %v), want the updated (33, true)", v, ok)
	}
	if got := l.Evictions(); got != 2 {
		t.Fatalf("Evictions = %d, want 2", got)
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}
