// Package memo provides the small, bounded memoization primitives shared by
// the per-session cache layers of the scheduling engines (core.Caches for
// the dual-memory engine, multi.Caches for the k-pool generalisation).
//
// The containers here are deliberately not concurrency-safe: the cache
// owners already serialise access under their own mutex, and keeping the
// locking in one place avoids double-locking on every hit.
package memo

// Bounded is a map from K to V holding at most a fixed number of entries.
// When full, Put evicts an arbitrary entry — the memoized values are pure
// functions of their key, so an eviction only ever costs a recompute. The
// zero value is not usable; call NewBounded.
type Bounded[K comparable, V any] struct {
	max int
	m   map[K]V
}

// NewBounded returns an empty bounded memo holding at most max entries
// (max < 1 is treated as 1).
func NewBounded[K comparable, V any](max int) *Bounded[K, V] {
	if max < 1 {
		max = 1
	}
	return &Bounded[K, V]{max: max}
}

// Get returns the memoized value for k.
func (b *Bounded[K, V]) Get(k K) (V, bool) {
	v, ok := b.m[k]
	return v, ok
}

// Put stores v under k, evicting an arbitrary entry first when the memo is
// full (an existing entry under k is simply overwritten).
func (b *Bounded[K, V]) Put(k K, v V) {
	if b.m == nil {
		b.m = make(map[K]V, b.max)
	}
	if _, exists := b.m[k]; !exists {
		for len(b.m) >= b.max {
			for victim := range b.m {
				delete(b.m, victim)
				break
			}
		}
	}
	b.m[k] = v
}

// Len returns the number of memoized entries.
func (b *Bounded[K, V]) Len() int { return len(b.m) }

// Snapshot copies every entry into dst (allocated when nil and there is
// anything to copy) and returns dst. The values are shared, not cloned —
// callers snapshotting mutable values must treat them as read-only. A nil
// receiver contributes nothing. Cache owners use this to hand a frozen
// read-only view to copy-on-write forks.
func (b *Bounded[K, V]) Snapshot(dst map[K]V) map[K]V {
	if b == nil || len(b.m) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[K]V, len(b.m))
	}
	for k, v := range b.m {
		dst[k] = v
	}
	return dst
}

// Reset drops every entry, keeping the bound.
func (b *Bounded[K, V]) Reset() { clear(b.m) }
