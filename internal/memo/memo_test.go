package memo

import "testing"

func TestBoundedBasics(t *testing.T) {
	b := NewBounded[int64, string](2)
	if _, ok := b.Get(1); ok {
		t.Fatal("empty memo returned a value")
	}
	b.Put(1, "one")
	b.Put(2, "two")
	if v, ok := b.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	// Overwriting an existing key must not evict anything.
	b.Put(2, "TWO")
	if v, _ := b.Get(2); v != "TWO" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if b.Len() != 2 {
		t.Fatalf("Len after overwrite = %d, want 2", b.Len())
	}
}

func TestBoundedEviction(t *testing.T) {
	b := NewBounded[int, int](4)
	for i := 0; i < 100; i++ {
		b.Put(i, i*i)
	}
	if b.Len() > 4 {
		t.Fatalf("bound violated: %d entries", b.Len())
	}
	// Every surviving entry must still carry its own value.
	for i := 0; i < 100; i++ {
		if v, ok := b.Get(i); ok && v != i*i {
			t.Fatalf("entry %d corrupted: %d", i, v)
		}
	}
}

func TestBoundedReset(t *testing.T) {
	b := NewBounded[string, int](8)
	b.Put("a", 1)
	b.Put("b", 2)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	if _, ok := b.Get("a"); ok {
		t.Fatal("Reset kept an entry")
	}
	b.Put("c", 3)
	if v, ok := b.Get("c"); !ok || v != 3 {
		t.Fatal("memo unusable after Reset")
	}
}

func TestBoundedMinimumCapacity(t *testing.T) {
	b := NewBounded[int, int](0)
	b.Put(1, 1)
	b.Put(2, 2)
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}
