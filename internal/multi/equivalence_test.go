package multi

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// The golden-equivalence suite of the k-pool engine: the incremental
// schedulers (epoch-memoized candidates per (task, pool), heap selection,
// batched staircase splices, intrusive ready tracking, session memos) must
// produce schedules bit-identical to the retained naive reference
// implementations on every instance, feasible or not — the same proof
// obligation internal/core discharges for the dual engine.

// sameSchedule compares two k-pool schedules field by field with exact
// float equality.
func sameSchedule(t *testing.T, tag string, got, want *Schedule) {
	t.Helper()
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("%s: %d task placements, want %d", tag, len(got.Tasks), len(want.Tasks))
	}
	for i := range want.Tasks {
		if got.Tasks[i] != want.Tasks[i] {
			t.Fatalf("%s: task %d placed %+v, reference says %+v", tag, i, got.Tasks[i], want.Tasks[i])
		}
	}
	if len(got.CommStart) != len(want.CommStart) {
		t.Fatalf("%s: %d comm starts, want %d", tag, len(got.CommStart), len(want.CommStart))
	}
	for i := range want.CommStart {
		g, w := got.CommStart[i], want.CommStart[i]
		if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("%s: comm %d starts at %g, reference says %g", tag, i, g, w)
		}
	}
}

// checkPairCached runs an optimized scheduler under a caller-owned cache
// set and its reference on the same instance and requires identical
// outcomes: same error classification and text and, when both succeed,
// identical schedules.
func checkPairCached(t *testing.T, tag string, opt, ref Func, in *Instance, p Platform, seed int64, caches *Caches) (failed bool) {
	t.Helper()
	so, eo := opt(tctx, in, p, Options{Seed: seed, Caches: caches})
	sr, er := ref(tctx, in, p, Options{Seed: seed})
	if (eo == nil) != (er == nil) {
		t.Fatalf("%s: optimized err=%v, reference err=%v", tag, eo, er)
	}
	if eo != nil {
		if !errors.Is(eo, ErrMemoryBound) || !errors.Is(er, ErrMemoryBound) {
			t.Fatalf("%s: unexpected error kind: optimized %v, reference %v", tag, eo, er)
		}
		if eo.Error() != er.Error() {
			t.Fatalf("%s: error text diverged:\noptimized: %v\nreference: %v", tag, eo, er)
		}
		return true
	}
	sameSchedule(t, tag, so, sr)
	return false
}

// randomInstance builds a seeded random DAG with a k-column timing matrix.
func randomInstance(seed int64, n, k int) *Instance {
	g := randomDAG(seed, n)
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	times := make([][]float64, g.NumTasks())
	for i := range times {
		times[i] = make([]float64, k)
		for j := range times[i] {
			times[i][j] = float64(rng.Intn(20) + 1)
		}
	}
	return NewInstance(g, times)
}

// totalFiles sums every edge file of the instance (a capacity that always
// fits on any single pool).
func totalFiles(in *Instance) int64 {
	var total int64
	for e := 0; e < in.G.NumEdges(); e++ {
		total += in.G.Edge(dag.EdgeID(e)).File
	}
	return total
}

// TestGoldenEquivalenceKPool sweeps random instances over pool counts,
// shapes and memory pressures (from comfortable to infeasible) and asserts
// MemHEFT and MemMinMin match their naive references exactly on every one —
// including on the second, memo-warm round under a shared cache set.
func TestGoldenEquivalenceKPool(t *testing.T) {
	sizes := []int{6, 14, 30}
	pools := []int{1, 2, 3, 4, 6}
	alphas := []float64{0.25, 0.5, 0.9, 2.0}
	runs, failures := 0, 0
	for _, n := range sizes {
		for _, k := range pools {
			seed := int64(100*n + k)
			in := randomInstance(seed, n, k)
			total := totalFiles(in)
			caches := NewCaches()
			for _, alpha := range alphas {
				bound := int64(alpha * float64(total))
				if bound < 1 {
					bound = 1
				}
				poolList := make([]Pool, k)
				for j := range poolList {
					poolList[j] = Pool{Procs: 1 + j%2, Capacity: bound}
				}
				p := NewPlatform(poolList...)
				for round := 0; round < 2; round++ {
					if checkPairCached(t, "MemHEFT", MemHEFT, MemHEFTReference, in, p, seed, caches) {
						failures++
					}
					if checkPairCached(t, "MemMinMin", MemMinMin, MemMinMinReference, in, p, seed, caches) {
						failures++
					}
					runs += 2
				}
			}
		}
	}
	if runs == 0 {
		t.Fatal("no equivalence runs executed")
	}
	if failures == 0 {
		t.Log("note: no infeasible instances in the sweep; consider tightening alphas")
	}
}

// TestGoldenEquivalenceUnbounded pins the memory-oblivious path: with every
// pool unbounded the incremental engine skips all staircase maintenance,
// which must not change a single placement.
func TestGoldenEquivalenceUnbounded(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		in := randomInstance(int64(7*k), 24, k)
		p := make([]Pool, k)
		for j := range p {
			p[j] = Pool{Procs: 2, Capacity: 1 << 40}
		}
		plat := NewPlatform(p...).Unbounded()
		caches := NewCaches()
		checkPairCached(t, "MemHEFT-unbounded", MemHEFT, MemHEFTReference, in, plat, 3, caches)
		checkPairCached(t, "MemMinMin-unbounded", MemMinMin, MemMinMinReference, in, plat, 3, caches)
	}
}

// TestGoldenEquivalenceAsymmetricPools stresses pools with different
// processor counts, including processor-less pools, which must simply never
// receive tasks (and not corrupt the candidate memo indexing).
func TestGoldenEquivalenceAsymmetricPools(t *testing.T) {
	in := randomInstance(99, 20, 4)
	total := totalFiles(in)
	p := NewPlatform(
		Pool{Procs: 3, Capacity: total},
		Pool{Procs: 0, Capacity: total}, // no processors: always infeasible
		Pool{Procs: 1, Capacity: total / 2},
		Pool{Procs: 2, Capacity: total / 4},
	)
	caches := NewCaches()
	for round := 0; round < 2; round++ {
		checkPairCached(t, "MemHEFT-asym", MemHEFT, MemHEFTReference, in, p, 5, caches)
		checkPairCached(t, "MemMinMin-asym", MemMinMin, MemMinMinReference, in, p, 5, caches)
	}
}

// TestRecycledPartialKeepsSchedulesIndependent guards the Partial recycling
// path: the schedule returned by one run must stay intact after the session
// cache recycles the partial's buffers into a later run.
func TestRecycledPartialKeepsSchedulesIndependent(t *testing.T) {
	in := randomInstance(11, 25, 3)
	total := totalFiles(in)
	p := NewPlatform(Pool{2, total}, Pool{1, total}, Pool{1, total})
	caches := NewCaches()
	first, err := MemHEFT(tctx, in, p, Options{Seed: 1, Caches: caches})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]Placement(nil), first.Tasks...)
	// A second run with a different seed recycles the first run's partial.
	if _, err := MemHEFT(tctx, in, p, Options{Seed: 2, Caches: caches}); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if first.Tasks[i] != snapshot[i] {
			t.Fatalf("recycling corrupted the first schedule at task %d: %+v vs %+v", i, first.Tasks[i], snapshot[i])
		}
	}
	if err := first.Validate(); err != nil {
		t.Fatalf("first schedule no longer valid after recycling: %v", err)
	}
}
