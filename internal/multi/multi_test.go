package multi

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
)

func dualPlatform(pBlue, pRed int, mBlue, mRed int64) Platform {
	return NewPlatform(Pool{pBlue, mBlue}, Pool{pRed, mRed})
}

func TestPlatformBasics(t *testing.T) {
	p := NewPlatform(Pool{2, 10}, Pool{1, 5}, Pool{3, 7})
	if p.NumPools() != 3 || p.TotalProcs() != 6 {
		t.Fatal("shape wrong")
	}
	if lo, hi := p.ProcRange(1); lo != 2 || hi != 3 {
		t.Fatalf("ProcRange(1) = [%d,%d)", lo, hi)
	}
	for proc, want := range []int{0, 0, 1, 2, 2, 2} {
		if got := p.PoolOf(proc); got != want {
			t.Fatalf("PoolOf(%d) = %d, want %d", proc, got, want)
		}
	}
	if p.PoolOf(99) != -1 {
		t.Fatal("out-of-range proc")
	}
}

func TestPlatformValidate(t *testing.T) {
	if err := NewPlatform().Validate(); err == nil {
		t.Fatal("empty platform accepted")
	}
	if err := NewPlatform(Pool{0, 5}).Validate(); err == nil {
		t.Fatal("zero-processor platform accepted")
	}
	if err := NewPlatform(Pool{1, -2}).Validate(); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := NewPlatform(Pool{1, 5}, Pool{0, 5}).Validate(); err != nil {
		t.Fatalf("valid platform rejected: %v", err)
	}
}

func TestInstanceValidate(t *testing.T) {
	g := dag.PaperExample()
	in := FromDual(g)
	if err := in.Validate(dualPlatform(1, 1, 5, 5)); err != nil {
		t.Fatal(err)
	}
	// Wrong column count.
	if err := in.Validate(NewPlatform(Pool{1, 5})); err == nil {
		t.Fatal("column mismatch accepted")
	}
	bad := NewInstance(g, [][]float64{{1, 1}})
	if err := bad.Validate(dualPlatform(1, 1, 5, 5)); err == nil {
		t.Fatal("row mismatch accepted")
	}
	neg := FromDual(g)
	neg.Times[0][0] = -1
	if err := neg.Validate(dualPlatform(1, 1, 5, 5)); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestMeanRanksMatchDualRanks(t *testing.T) {
	g := dag.PaperExample()
	in := FromDual(g)
	mr, err := in.MeanRanks(nil)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := g.UpwardRanks(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mr {
		if mr[i] != ur[i] {
			t.Fatalf("rank[%d]: %g vs %g", i, mr[i], ur[i])
		}
	}
}

// TestTwoPoolMatchesCore is the key differential test: with two pools the
// generalised heuristics must reproduce the dual-memory implementation's
// placements exactly.
func TestTwoPoolMatchesCore(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 18)
		in := FromDual(g)
		for _, bound := range []int64{30, 60, 1 << 40} {
			dp := platform.New(2, 2, bound, bound)
			mp := dualPlatform(2, 2, bound, bound)
			pairs := []struct {
				dual  core.Func
				multi Func
			}{
				{core.MemHEFT, MemHEFT},
				{core.MemMinMin, MemMinMin},
			}
			for _, pair := range pairs {
				ds, derr := pair.dual(tctx, g, dp, core.Options{Seed: seed})
				ms, merr := pair.multi(tctx, in, mp, Options{Seed: seed})
				if (derr == nil) != (merr == nil) {
					return false
				}
				if derr != nil {
					continue
				}
				for i := 0; i < g.NumTasks(); i++ {
					if ds.Tasks[i].Start != ms.Tasks[i].Start || ds.Tasks[i].Proc != ms.Tasks[i].Proc {
						return false
					}
				}
				// The communication schedules must collapse too:
				// same ALAP starts on cross edges, same NaN
				// markers on intra-pool edges.
				for e := 0; e < g.NumEdges(); e++ {
					dc, mc := ds.CommStart[e], ms.CommStart[e]
					if dc != mc && !(math.IsNaN(dc) && math.IsNaN(mc)) {
						return false
					}
				}
				if ms.Validate() != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoPoolMatchesCoreViaDualBridge checks the platform bridge both
// directions: FromDualPlatform followed by Dual round-trips, and the
// generalised engine on the lifted platform reproduces the dual engine.
func TestTwoPoolMatchesCoreViaDualBridge(t *testing.T) {
	g := dag.PaperExample()
	dp := platform.New(1, 1, 4, 4)
	mp := FromDualPlatform(dp)
	back, ok := mp.Dual()
	if !ok || back != dp {
		t.Fatalf("round trip lost the platform: %v -> %v (ok=%v)", dp, back, ok)
	}
	if _, ok := NewPlatform(Pool{1, 4}).Dual(); ok {
		t.Fatal("1-pool platform claimed to be dual")
	}
	ds, err := core.MemHEFT(tctx, g, dp, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MemHEFT(tctx, FromDual(g), mp, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Tasks {
		if ds.Tasks[i].Start != ms.Tasks[i].Start || ds.Tasks[i].Proc != ms.Tasks[i].Proc {
			t.Fatalf("task %d: dual %+v vs lifted %+v", i, ds.Tasks[i], ms.Tasks[i])
		}
	}
}

func TestThreePoolPrefersSpecialisedAccelerators(t *testing.T) {
	// Two task flavours: "fft" fast on pool 1, "dense" fast on pool 2;
	// pool 0 is a slow CPU. Each flavour should land on its accelerator.
	g := dag.New()
	src := g.AddTask("src", 1, 0)
	fft := g.AddTask("fft", 0, 0)
	dense := g.AddTask("dense", 0, 0)
	sink := g.AddTask("sink", 1, 0)
	g.MustAddEdge(src, fft, 1, 1)
	g.MustAddEdge(src, dense, 1, 1)
	g.MustAddEdge(fft, sink, 1, 1)
	g.MustAddEdge(dense, sink, 1, 1)
	times := [][]float64{
		{1, 5, 5},   // src: cpu
		{20, 2, 20}, // fft: pool 1
		{20, 20, 2}, // dense: pool 2
		{1, 5, 5},   // sink: cpu
	}
	in := NewInstance(g, times)
	p := NewPlatform(Pool{2, 100}, Pool{1, 100}, Pool{1, 100})
	for _, fn := range []Func{MemHEFT, MemMinMin} {
		s, err := fn(tctx, in, p, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.PoolOf(fft) != 1 {
			t.Fatalf("fft on pool %d, want 1", s.PoolOf(fft))
		}
		if s.PoolOf(dense) != 2 {
			t.Fatalf("dense on pool %d, want 2", s.PoolOf(dense))
		}
	}
}

func TestThreePoolMemoryBoundsRespected(t *testing.T) {
	f := func(seed int64, rawBound uint8) bool {
		g := randomDAG(seed, 14)
		bound := int64(rawBound%60) + 8
		rng := rand.New(rand.NewSource(seed))
		times := make([][]float64, g.NumTasks())
		for i := range times {
			times[i] = []float64{
				float64(rng.Intn(10) + 1),
				float64(rng.Intn(10) + 1),
				float64(rng.Intn(10) + 1),
			}
		}
		in := NewInstance(g, times)
		p := NewPlatform(Pool{1, bound}, Pool{1, bound}, Pool{1, bound})
		for _, fn := range []Func{MemHEFT, MemMinMin} {
			s, err := fn(tctx, in, p, Options{Seed: seed})
			if err != nil {
				if !errors.Is(err, ErrMemoryBound) {
					return false
				}
				continue
			}
			if s.Validate() != nil {
				return false
			}
			for _, peak := range s.MemoryPeaks() {
				if peak > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreMemoriesCanBeatTwo(t *testing.T) {
	// A wide fork of big-file tasks: with the same total memory split
	// over more pools, the heuristics can spread files and keep more
	// parallelism. At minimum, the 3-pool run must schedule a graph the
	// 2-pool run cannot.
	g := dag.ForkJoin(6, 2, 2, 4, 1)
	in2 := FromDual(g)
	// 3-pool instance: same times everywhere.
	times := make([][]float64, g.NumTasks())
	for i := range times {
		times[i] = []float64{2, 2, 2}
	}
	in3 := NewInstance(g, times)

	p2 := dualPlatform(1, 1, 24, 24)
	_, err2 := MemHEFT(tctx, in2, p2, Options{Seed: 1})
	p3 := NewPlatform(Pool{1, 24}, Pool{1, 24}, Pool{1, 24})
	s3, err3 := MemHEFT(tctx, in3, p3, Options{Seed: 1})
	if err3 != nil {
		t.Fatalf("3-pool run failed: %v", err3)
	}
	if err := s3.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = err2 // the 2-pool run may or may not fit; the 3-pool one must
}

func TestScheduleAccessors(t *testing.T) {
	g := dag.PaperExample()
	in := FromDual(g)
	p := dualPlatform(1, 1, 100, 100)
	s, err := MemMinMin(tctx, in, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() <= 0 {
		t.Fatal("bad makespan")
	}
	peaks := s.MemoryPeaks()
	if len(peaks) != 2 {
		t.Fatal("peak count")
	}
	if s.Duration(0) <= 0 && s.Duration(1) <= 0 {
		t.Fatal("durations")
	}
}

func TestHeuristicsFailCleanlyOnTinyMemory(t *testing.T) {
	g := dag.PaperExample()
	in := FromDual(g)
	p := dualPlatform(1, 1, 2, 2)
	if _, err := MemHEFT(tctx, in, p, Options{}); !errors.Is(err, ErrMemoryBound) {
		t.Fatalf("MemHEFT err = %v", err)
	}
	if _, err := MemMinMin(tctx, in, p, Options{}); !errors.Is(err, ErrMemoryBound) {
		t.Fatalf("MemMinMin err = %v", err)
	}
}

// randomDAG builds a seeded random DAG (same family as core's tests).
func randomDAG(seed int64, n int) *dag.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dag.New()
	for i := 0; i < n; i++ {
		g.AddTask("", float64(rng.Intn(20)+1), float64(rng.Intn(20)+1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j < i+8; j++ {
			if rng.Float64() < 0.35 {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), int64(rng.Intn(10)+1), float64(rng.Intn(10)+1))
			}
		}
	}
	return g
}
