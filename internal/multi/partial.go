package multi

import (
	"math"

	"repro/internal/dag"
	"repro/internal/memfn"
	"repro/internal/platform"
)

// Partial is the k-pool partial schedule under construction — the direct
// generalisation of core.Partial, carrying the same incremental engine the
// dual-memory scheduler grew in PR 1:
//
//   - ready-ness is tracked intrusively with per-task uncommitted-parent
//     counters and an ID-sorted ready list (Ready is O(1));
//   - the makespan is a running max updated on Commit;
//   - each pool carries an epoch counter, bumped whenever its staircase or
//     one of its processors mutates. Evaluate memoizes its result per
//     (task, pool) and reuses it while the pool's epoch and the task's
//     parent set are unchanged — after a commit on one pool, the other
//     k-1 pools' candidates are typically served from cache;
//   - the precedence aggregates of a ready task (precedence_EST, cross file
//     volume, C(mu,i)) depend only on its committed parents, so they are
//     computed once per (task, pool) and invalidated by parent commits only;
//   - blocked candidates short-circuit through an O(1) final-free-value
//     check instead of two staircase queries;
//   - the staircase updates of one Commit are spliced with one batched
//     memfn.ReserveBatch per touched pool (the task's pool gets at most
//     three coalesced deltas; each source pool of a cross input gets one);
//   - pools with capacity >= platform.Unlimited skip staircase maintenance
//     entirely, turning the memory-oblivious HEFT/MinMin variants into pure
//     list schedulers.
//
// None of this is visible in the results: schedules are bit-identical to
// the retained eager implementation (see naive.go for the reference oracles
// and equivalence_test.go for the proof).
type Partial struct {
	in    *Instance
	g     *dag.Graph
	edges []dag.Edge // g.Edges(), cached to skip bounds checks in hot loops
	p     Platform
	k     int // pool count

	procLo, procHi []int // per pool: global processor interval

	sched     *Schedule
	free      []*memfn.Staircase // per pool
	availProc []float64          // per processor: finish time of its last task
	assigned  []bool             // per task
	finish    []float64          // per task: actual finish time (AFT)
	taskPool  []int32            // per task: committed pool, -1 while unassigned
	nDone     int

	pending    []int        // per task: number of uncommitted parents
	ready      []dag.TaskID // ID-sorted list of ready tasks
	newlyReady []dag.TaskID // tasks turned ready by the last Commit
	makespan   float64      // running max of committed finish times

	commitSeq   uint64     // number of commits so far
	epoch       []uint64   // per pool: mutation counter
	parentStamp []uint64   // per task: commitSeq of the last parent commit
	slots       []evalSlot // per (task, pool): memoized evaluation state
	outFiles    []int64    // per task: total output file size (immutable)
	unbounded   []bool     // per pool: capacity never constrains

	batch     []memfn.Delta // Commit scratch, reused
	crossAmt  []int64       // per pool scratch: cross volume from that source
	poolTasks []int         // per pool: tasks committed there (run stats)

	// hits and misses count memoized candidate lookups served fresh vs
	// recomputed; sessions surface the ratio in their result stats.
	hits, misses uint64
}

// evalSlot is the memoized evaluation state of one (task, pool) pair. The
// candidate part (cand) is valid while the pool's epoch and the task's
// parent stamp still match. The static part (precEST/cross/cmu) is fixed
// once a task is ready, so it is computed once per readiness and invalidated
// by parent commits only.
type evalSlot struct {
	cand  Candidate
	epoch uint64
	stamp uint64
	ok    bool

	precEST float64
	cross   int64
	cmu     float64
	sstamp  uint64
	sok     bool
}

// Candidate is the outcome of evaluating one (task, pool) pair.
type Candidate struct {
	Task dag.TaskID
	Pool int
	EST  float64 // earliest start time; +inf when infeasible
	EFT  float64 // EST + Times[task][pool]
	CMu  float64 // conservative uniform communication duration C(mu,i)
}

// Feasible reports whether the pair can currently be scheduled.
func (c Candidate) Feasible() bool { return !math.IsInf(c.EFT, 1) }

// NewPartial returns an empty k-pool partial schedule, deriving the
// instance statics from scratch.
func NewPartial(in *Instance, p Platform) *Partial {
	return NewPartialCached(in, p, nil)
}

// NewPartialCached is NewPartial serving the per-instance statics from c (a
// nil c computes them fresh).
func NewPartialCached(in *Instance, p Platform, c *Caches) *Partial {
	st := c.getSpare()
	st.reset(in, p, c.staticsOf(in))
	return st
}

// reset (re)initialises st for a fresh run of in on p, reusing every buffer
// whose capacity still fits. The schedule itself is always allocated fresh:
// it escapes to the caller when the run completes.
func (st *Partial) reset(in *Instance, p Platform, gs *instanceStatics) {
	n, k := in.G.NumTasks(), p.NumPools()
	st.in, st.g, st.edges, st.p, st.k = in, in.G, in.G.Edges(), p, k

	st.procLo = resize(st.procLo, k)
	st.procHi = resize(st.procHi, k)
	lo := 0
	for j, pool := range p.Pools {
		st.procLo[j], st.procHi[j] = lo, lo+pool.Procs
		lo += pool.Procs
	}

	st.sched = NewSchedule(in, p)
	if cap(st.free) < k {
		st.free = make([]*memfn.Staircase, k)
	}
	st.free = st.free[:k]
	st.unbounded = resize(st.unbounded, k)
	for j, pool := range p.Pools {
		if st.free[j] == nil {
			st.free[j] = memfn.New(pool.Capacity)
		} else {
			st.free[j].Reset(pool.Capacity)
		}
		st.unbounded[j] = pool.Capacity >= platform.Unlimited
	}

	st.availProc = resize(st.availProc, lo)
	st.assigned = resize(st.assigned, n)
	st.finish = resize(st.finish, n)
	st.taskPool = resize(st.taskPool, n)
	for i := range st.taskPool {
		st.taskPool[i] = -1
	}
	st.nDone = 0

	st.pending = append(st.pending[:0], gs.inDegree...)
	st.ready = append(st.ready[:0], gs.sources...)
	st.newlyReady = st.newlyReady[:0]
	st.makespan = 0

	st.commitSeq = 0
	st.epoch = resize(st.epoch, k)
	st.parentStamp = resize(st.parentStamp, n)
	if cap(st.slots) < n*k {
		st.slots = make([]evalSlot, n*k)
	} else {
		st.slots = st.slots[:n*k]
		clear(st.slots)
	}
	st.outFiles = gs.outFiles
	st.crossAmt = resize(st.crossAmt, k)
	st.poolTasks = resize(st.poolTasks, k)
	st.hits, st.misses = 0, 0
}

// resize returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Schedule returns the underlying schedule (complete only when Done).
func (st *Partial) Schedule() *Schedule { return st.sched }

// Done reports whether every task has been committed.
func (st *Partial) Done() bool { return st.nDone == st.g.NumTasks() }

// Assigned reports whether task id has been committed.
func (st *Partial) Assigned(id dag.TaskID) bool { return st.assigned[id] }

// Finish returns the committed finish time of task id (0 if unassigned).
func (st *Partial) Finish(id dag.TaskID) float64 { return st.finish[id] }

// MakespanSoFar returns the latest committed finish time, O(1).
func (st *Partial) MakespanSoFar() float64 { return st.makespan }

// CacheStats returns how many candidate evaluations were served from the
// (task, pool) memo versus recomputed.
func (st *Partial) CacheStats() (hits, misses uint64) { return st.hits, st.misses }

// reportStats accumulates the candidate-cache counters, the running makespan
// and the per-pool commit counts into rs (nil-safe).
func (st *Partial) reportStats(rs *RunStats) {
	if rs == nil {
		return
	}
	rs.CacheHits += st.hits
	rs.CacheMisses += st.misses
	rs.Makespan = st.makespan
	if len(rs.PoolTasks) != st.k {
		rs.PoolTasks = make([]int, st.k)
	}
	copy(rs.PoolTasks, st.poolTasks)
}

// Ready reports whether every parent of task id has been committed, O(1).
func (st *Partial) Ready(id dag.TaskID) bool {
	return !st.assigned[id] && st.pending[id] == 0
}

// ReadyTasks returns all ready tasks in ID order. The returned slice is the
// maintained internal list: it must not be modified and is only valid until
// the next Commit.
func (st *Partial) ReadyTasks() []dag.TaskID { return st.ready }

// NewlyReady returns the tasks whose last uncommitted parent was the most
// recently committed task, in edge order. Like ReadyTasks, the slice is
// internal and valid until the next Commit.
func (st *Partial) NewlyReady() []dag.TaskID { return st.newlyReady }

// staticFor returns the parent-derived aggregates of a ready task on pool
// k: precedence_EST, the total size of input files not yet on the pool, and
// the conservative communication duration C(mu,i). For a ready task these
// are fixed (all parents committed), so they are memoized per (task, pool)
// keyed by the task's parent stamp.
func (st *Partial) staticFor(id dag.TaskID, k int) (precEST float64, cross int64, cmu float64) {
	sp := &st.slots[int(id)*st.k+k]
	if sp.sok && sp.sstamp == st.parentStamp[id] {
		return sp.precEST, sp.cross, sp.cmu
	}
	for _, e := range st.g.In(id) {
		edge := &st.edges[e]
		aft := st.finish[edge.From]
		if int(st.taskPool[edge.From]) == k {
			if aft > precEST {
				precEST = aft
			}
			continue
		}
		if v := aft + edge.Comm; v > precEST {
			precEST = v
		}
		cross += edge.File
		if edge.Comm > cmu {
			cmu = edge.Comm
		}
	}
	sp.precEST, sp.cross, sp.cmu = precEST, cross, cmu
	sp.sstamp, sp.sok = st.parentStamp[id], true
	return precEST, cross, cmu
}

// slotFresh reports whether a memoized candidate slot is still valid:
// nothing on pool k mutated and no parent of id committed since it was
// evaluated.
func (st *Partial) slotFresh(e *evalSlot, id dag.TaskID, k int) bool {
	return e.ok && e.epoch == st.epoch[k] && e.stamp == st.parentStamp[id]
}

// BestFresh reports whether the memoized Best of id is still valid on every
// pool; MemMinMin's candidate heap uses it for lazy invalidation.
func (st *Partial) BestFresh(id dag.TaskID) bool {
	base := int(id) * st.k
	for k := 0; k < st.k; k++ {
		if !st.slotFresh(&st.slots[base+k], id, k) {
			return false
		}
	}
	return true
}

// blockedOn decides in O(1) whether id is infeasible on pool k — exactly
// when Evaluate would return EFT = +inf: the pool has no processor, or its
// final free value cannot hold the task's files. (Resource, precedence and
// C(mu,i) components are always finite, and Partial's staircases are never
// negative, so only the final value can push an EarliestFit to +inf.)
func (st *Partial) blockedOn(id dag.TaskID, k int) bool {
	if st.procLo[k] == st.procHi[k] {
		return true
	}
	if st.unbounded[k] {
		return false
	}
	_, cross, _ := st.staticFor(id, k)
	return st.free[k].FinalValue() < cross+st.outFiles[id]
}

// Evaluate computes EST and EFT of a ready task id on pool k following the
// four components of §5.1 (with "cross" meaning "parent on any other
// pool"). The caller must ensure Ready(id). Results are memoized per
// (task, pool) under the epoch/parent-stamp invalidation scheme described
// on Partial.
func (st *Partial) Evaluate(id dag.TaskID, k int) Candidate {
	e := &st.slots[int(id)*st.k+k]
	if st.slotFresh(e, id, k) {
		st.hits++
		return e.cand
	}
	st.misses++
	var c Candidate
	if st.blockedOn(id, k) {
		c = Candidate{Task: id, Pool: k, EST: inf, EFT: inf}
	} else {
		c = st.evaluate(id, k)
	}
	e.cand, e.epoch, e.stamp, e.ok = c, st.epoch[k], st.parentStamp[id], true
	return c
}

// evaluate is the uncached candidate computation.
func (st *Partial) evaluate(id dag.TaskID, k int) Candidate {
	c := Candidate{Task: id, Pool: k, EST: inf, EFT: inf}

	// resource_EST: earliest availability among the pool's processors.
	lo, hi := st.procLo[k], st.procHi[k]
	if lo == hi {
		return c // no processor on this pool
	}
	resourceEST := inf
	for proc := lo; proc < hi; proc++ {
		if st.availProc[proc] < resourceEST {
			resourceEST = st.availProc[proc]
		}
	}

	// precedence_EST and the cross-input aggregates.
	precedenceEST, crossFiles, cmu := st.staticFor(id, k)

	// Memory needs: inputs not yet on the pool, plus every output file. A
	// zero need always fits at time 0 (the staircases are never driven
	// negative), so the query can be skipped outright; unbounded pools
	// skip both queries always.
	var taskMemEST, commMemEST float64
	if !st.unbounded[k] {
		if need := crossFiles + st.outFiles[id]; need != 0 {
			taskMemEST = st.free[k].EarliestFit(0, need)
		}
		if crossFiles != 0 {
			commMemEST = st.free[k].EarliestFit(0, crossFiles)
		}
	}

	// All components are non-negative and NaN-free, so plain comparisons
	// reproduce math.Max bit for bit.
	est := resourceEST
	if precedenceEST > est {
		est = precedenceEST
	}
	if taskMemEST > est {
		est = taskMemEST
	}
	if v := commMemEST + cmu; v > est {
		est = v
	}
	if est == inf {
		return c
	}
	c.EST = est
	c.EFT = est + st.in.Times[id][k]
	c.CMu = cmu
	return c
}

// Best returns the minimum-EFT candidate of a ready task over all pools
// (lowest pool index wins ties, matching core's blue preference in the
// 2-pool case). The returned candidate may be infeasible on every pool
// (EFT = +inf).
func (st *Partial) Best(id dag.TaskID) Candidate {
	b := Candidate{Task: id, Pool: -1, EST: inf, EFT: inf}
	for k := 0; k < st.k; k++ {
		if c := st.Evaluate(id, k); c.EFT < b.EFT {
			b = c
		}
	}
	return b
}

// finishTask records the completion bookkeeping of one commit: assignment,
// running makespan, ready tracking and parent stamps.
func (st *Partial) finishTask(id dag.TaskID, fin float64) {
	st.assigned[id] = true
	st.finish[id] = fin
	st.nDone++
	if fin > st.makespan {
		st.makespan = fin
	}
	st.commitSeq++
	st.removeReady(id)
	st.newlyReady = st.newlyReady[:0]
	for _, e := range st.g.Out(id) {
		child := st.edges[e].To
		st.parentStamp[child] = st.commitSeq
		st.pending[child]--
		if st.pending[child] == 0 {
			st.ready = insertSorted(st.ready, child)
			st.newlyReady = append(st.newlyReady, child)
		}
	}
}

// removeReady deletes id from the sorted ready list (no-op if absent).
func (st *Partial) removeReady(id dag.TaskID) {
	lo, hi := 0, len(st.ready)
	for lo < hi {
		mid := (lo + hi) / 2
		if st.ready[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.ready) && st.ready[lo] == id {
		copy(st.ready[lo:], st.ready[lo+1:])
		st.ready = st.ready[:len(st.ready)-1]
	}
}

// insertSorted inserts id into the ID-sorted slice.
func insertSorted(s []dag.TaskID, id dag.TaskID) []dag.TaskID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = id
	return s
}

// commitFiles applies all staircase updates of one commit: one batched
// splice on the task's pool (outputs open-ended from start, intra inputs
// released at finish, cross inputs over the conservative window
// [start-C, finish)) and, for every source pool of a cross input, one
// release of the transferred volume at the task's start. Pool epochs are
// bumped accordingly; unbounded pools skip the staircase work but the
// committed pool's epoch still moves (a processor of it was claimed).
func (st *Partial) commitFiles(id dag.TaskID, k int, start, fin, cmu float64) {
	var intraSum, crossSum int64
	for _, e := range st.g.In(id) {
		edge := &st.edges[e]
		src := int(st.taskPool[edge.From])
		if src == k {
			intraSum += edge.File
			continue
		}
		// Cross edge: emit the true ALAP communication (per-edge
		// duration), account for the conservative window.
		st.sched.CommStart[edge.ID] = start - edge.Comm
		crossSum += edge.File
		st.crossAmt[src] += edge.File
	}
	if !st.unbounded[k] {
		ops := st.batch[:0]
		if out := st.outFiles[id]; out != 0 {
			ops = append(ops, memfn.Delta{From: start, To: memfn.Inf, Amount: out})
		}
		if intraSum != 0 {
			ops = append(ops, memfn.Delta{From: fin, To: memfn.Inf, Amount: -intraSum})
		}
		if crossSum != 0 {
			ops = append(ops, memfn.Delta{From: start - cmu, To: fin, Amount: crossSum})
		}
		if len(ops) > 0 {
			st.free[k].ReserveBatch(ops)
		}
		st.batch = ops[:0]
	}
	st.epoch[k]++
	if crossSum != 0 {
		for j := range st.crossAmt {
			amt := st.crossAmt[j]
			if amt == 0 {
				continue
			}
			st.crossAmt[j] = 0
			if st.unbounded[j] {
				continue
			}
			// The transferred files leave the source pool when the
			// conservative transfer completes, at the task's start.
			st.batch = append(st.batch[:0], memfn.Delta{From: start, To: memfn.Inf, Amount: -amt})
			st.free[j].ReserveBatch(st.batch)
			st.batch = st.batch[:0]
			st.epoch[j]++
		}
	}
}

// Commit places the candidate into the schedule: picks the processor of its
// pool that minimises idle time, schedules every cross communication as
// late as possible, and applies the staircase updates described on
// commitFiles. The feasibility of the reservations is guaranteed by
// task_mem_EST and comm_mem_EST, so Commit never drives a staircase
// negative.
func (st *Partial) Commit(c Candidate) {
	id, k := c.Task, c.Pool
	w := st.in.Times[id][k]
	start, fin := c.EST, c.EST+w

	lo, hi := st.procLo[k], st.procHi[k]
	bestProc, bestAvail := -1, math.Inf(-1)
	for proc := lo; proc < hi; proc++ {
		a := st.availProc[proc]
		if a <= start+Eps && a > bestAvail {
			bestProc, bestAvail = proc, a
		}
	}
	if bestProc < 0 {
		// Cannot happen: resource_EST <= start guarantees a free
		// processor.
		panic("multi: no free processor at committed start time")
	}

	st.sched.Tasks[id] = Placement{Start: start, Proc: bestProc}
	st.availProc[bestProc] = fin
	st.taskPool[id] = int32(k)
	st.poolTasks[k]++
	st.finishTask(id, fin)
	st.commitFiles(id, k, start, fin, c.CMu)
}
