package multi

import (
	"sync"
	"testing"

	"repro/internal/dag"
)

// TestCachesValidateMemoized: the second Validate of the same (instance,
// width) must be served from the memo, and a width change must revalidate.
func TestCachesValidateMemoized(t *testing.T) {
	in := randomInstance(1, 12, 3)
	p := NewPlatform(Pool{1, 50}, Pool{1, 50}, Pool{1, 50})
	c := NewCaches()
	if err := c.Validate(in, p); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(in, p); err != nil {
		t.Fatal(err)
	}
	// A platform with the wrong pool count must still be rejected even
	// though the instance was validated for width 3.
	if err := c.Validate(in, NewPlatform(Pool{1, 50})); err == nil {
		t.Fatal("width mismatch accepted after memoized validation")
	}
	// And width 3 must keep validating after the failed width-1 attempt.
	if err := c.Validate(in, p); err != nil {
		t.Fatal(err)
	}
}

// TestCachesRanksAndPriorityMemoized: mean ranks are computed once per
// instance and reused across seeds; priority lists are memoized per seed
// and returned as independent copies.
func TestCachesRanksAndPriorityMemoized(t *testing.T) {
	in := randomInstance(2, 20, 2)
	c := NewCaches()
	r1, err := c.MeanRanks(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.MeanRanks(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if &r1[0] != &r2[0] {
		t.Fatal("mean ranks recomputed on the warm call")
	}
	want, err := PriorityList(nil, in, 7)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := c.PriorityList(nil, in, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if l1[i] != want[i] {
			t.Fatalf("cached list diverges at %d: %v vs %v", i, l1, want)
		}
	}
	// The returned copy must be caller-mutable without poisoning the memo.
	l1[0], l1[len(l1)-1] = l1[len(l1)-1], l1[0]
	l2, err := c.PriorityList(nil, in, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if l2[i] != want[i] {
			t.Fatalf("memo poisoned by caller mutation at %d", i)
		}
	}
}

// TestCachesRekeyOnGraphGrowth: appending to the graph must invalidate
// statics, ranks and priority memos.
func TestCachesRekeyOnGraphGrowth(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("b", 1, 1)
	g.MustAddEdge(a, b, 1, 1)
	in := NewInstance(g, [][]float64{{1, 1}, {1, 1}})
	c := NewCaches()
	gs := c.staticsOf(in)
	if len(gs.sources) != 1 {
		t.Fatalf("sources = %v", gs.sources)
	}
	// Grow the graph (and matrix) and expect fresh statics.
	cTask := g.AddTask("c", 1, 1)
	g.MustAddEdge(a, cTask, 1, 1)
	in.Times = append(in.Times, []float64{1, 1})
	gs2 := c.staticsOf(in)
	if gs2 == gs {
		t.Fatal("statics not rekeyed after graph growth")
	}
	if len(gs2.inDegree) != 3 {
		t.Fatalf("stale statics: %v", gs2.inDegree)
	}
}

// TestCachesNilReceiver: every method must tolerate a nil cache set.
func TestCachesNilReceiver(t *testing.T) {
	var c *Caches
	in := randomInstance(3, 10, 2)
	p := NewPlatform(Pool{1, 100}, Pool{1, 100})
	if err := c.Validate(in, p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MeanRanks(nil, in); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PriorityList(nil, in, 1); err != nil {
		t.Fatal(err)
	}
	st := NewPartialCached(in, p, nil)
	if st == nil || len(st.ReadyTasks()) == 0 {
		t.Fatal("nil-cache partial unusable")
	}
	c.Recycle(st) // must not panic
}

// TestCachesConcurrentSchedules hammers one cache set from many goroutines
// (run under -race): the memos and the recycled-partial slot must be safe,
// and every schedule identical to the reference.
func TestCachesConcurrentSchedules(t *testing.T) {
	in := randomInstance(4, 30, 3)
	total := totalFiles(in)
	p := NewPlatform(Pool{2, total}, Pool{1, total}, Pool{1, total})
	want, err := MemHEFTReference(tctx, in, p, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCaches()
	const goroutines, iters = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s, err := MemHEFT(tctx, in, p, Options{Seed: 4, Caches: c})
				if err != nil {
					t.Errorf("concurrent schedule: %v", err)
					return
				}
				for j := range want.Tasks {
					if s.Tasks[j] != want.Tasks[j] {
						t.Errorf("task %d placed %+v, want %+v", j, s.Tasks[j], want.Tasks[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
