package multi

import (
	"context"
	"sync"

	"repro/internal/dag"
	"repro/internal/memo"
)

// Caches owns the per-instance memoized scheduler inputs of the k-pool
// engine, mirroring core.Caches for the dual engine: the instance statics
// consumed by every Partial (output totals, in-degrees, sources), the mean
// upward ranks, the seeded priority lists of MemHEFT, and the validation
// results. A memsched.Session creates one Caches per k-pool instance, which
// makes the memos concurrency-safe and contention-free across sessions by
// construction.
//
// All methods tolerate a nil receiver, which simply computes fresh: the
// reference oracles and one-shot callers pass no cache at all.
//
// Growth is bounded by construction: the statics and ranks are one slot (a
// session is one instance), the priority memo holds at most
// maxPriorityEntries seeds, and the spare slot recycles at most one Partial.
// The task/edge counts guard against the graph growing between calls;
// growth re-keys the cache and drops every memo.
type Caches struct {
	mu             sync.Mutex
	in             *Instance
	nTasks, nEdges int
	statics        *instanceStatics
	ranks          []float64
	priority       *memo.Bounded[int64, []dag.TaskID]

	// spare recycles the buffers of one finished Partial (candidate slots,
	// counters, staircases) across Schedule calls — the memory-sweep and
	// service patterns reschedule the same instance over and over. Only
	// the bookkeeping is reused; the produced Schedule always escapes to
	// the caller untouched.
	spare *Partial

	// frozen is the read-only priority-list view inherited from Fork: a
	// snapshot of the parent's memoized lists at fork time. Reads fall
	// back to it after missing the own memo; writes always go to the own
	// memo (copy-on-write). Dropped on rekey like every other memo.
	frozen map[int64][]dag.TaskID
}

// instanceStatics holds the per-instance immutable inputs of a Partial plus
// the memoized validation state.
type instanceStatics struct {
	outFiles []int64
	inDegree []int
	sources  []dag.TaskID

	graphValidated bool // a successful Graph.Validate ran for this graph
	matrixWidth    int  // pool count the matrix was validated against; 0 = none
}

// maxPriorityEntries bounds the per-seed priority-list memo, matching the
// dual engine's bound.
const maxPriorityEntries = 64

// NewCaches returns an empty cache set, ready to be shared by any number of
// goroutines scheduling the same instance.
func NewCaches() *Caches { return &Caches{} }

// rekey points the cache at in, dropping every memo when the instance or
// its append-only graph content changed. The caller holds c.mu.
func (c *Caches) rekey(in *Instance) {
	if c.in == in && c.nTasks == in.G.NumTasks() && c.nEdges == in.G.NumEdges() {
		return
	}
	c.in, c.nTasks, c.nEdges = in, in.G.NumTasks(), in.G.NumEdges()
	c.statics = nil
	c.ranks = nil
	if c.priority != nil {
		c.priority.Reset()
	}
	c.spare = nil
	c.frozen = nil
}

// Fork returns a child cache set born warm, mirroring core.Caches.Fork: it
// shares the parent's immutable memos — the instance statics (inner slices
// are never mutated once computed; the struct is copied so the validation
// fields stay private), the mean-rank slice (immutable once stored) and a
// frozen snapshot of the memoized priority lists — behind copy-on-write
// semantics. The spare Partial is deliberately not shared: it is mutable
// scratch, and each fork recycles its own. The child takes its own mutex
// from birth and never locks the parent's again.
func (c *Caches) Fork() *Caches {
	if c == nil {
		return NewCaches()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	child := &Caches{in: c.in, nTasks: c.nTasks, nEdges: c.nEdges, ranks: c.ranks}
	if c.statics != nil {
		snap := *c.statics
		child.statics = &snap
	}
	if len(c.frozen) > 0 {
		child.frozen = make(map[int64][]dag.TaskID, len(c.frozen))
		for seed, list := range c.frozen {
			child.frozen[seed] = list
		}
	}
	child.frozen = c.priority.Snapshot(child.frozen)
	return child
}

// Warm precomputes everything a fork inherits — instance statics, mean
// ranks and the priority list of every given seed — with cooperative
// cancellation, so forks taken afterwards are born fully warm. Validation
// is platform-dependent (matrix width) and stays lazy.
func (c *Caches) Warm(ctx context.Context, in *Instance, seeds []int64) error {
	if c == nil {
		return nil
	}
	if err := c.warmStatics(ctx, in); err != nil {
		return err
	}
	if _, err := c.MeanRanks(ctx, in); err != nil {
		return err
	}
	for _, seed := range seeds {
		if _, err := c.PriorityList(ctx, in, seed); err != nil {
			return err
		}
	}
	return nil
}

// computeStatics derives the per-instance immutable inputs of a Partial.
func computeStatics(in *Instance) *instanceStatics {
	s, _ := computeStaticsCtx(nil, in) // nil ctx never cancels
	return s
}

// computeStaticsCtx is computeStatics with cooperative cancellation: the
// derivation loop polls ctx (nil allowed) every rank stride.
func computeStaticsCtx(ctx context.Context, in *Instance) (*instanceStatics, error) {
	g := in.G
	n := g.NumTasks()
	edges := g.Edges()
	s := &instanceStatics{
		outFiles: make([]int64, n),
		inDegree: make([]int, n),
	}
	for i := 0; i < n; i++ {
		if ctx != nil && i%rankStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		id := dag.TaskID(i)
		s.inDegree[i] = len(g.In(id))
		if s.inDegree[i] == 0 {
			s.sources = append(s.sources, id)
		}
		for _, e := range g.Out(id) {
			s.outFiles[i] += edges[e].File
		}
	}
	return s, nil
}

// staticsOf returns the memoized statics of in, computing them on a miss.
func (c *Caches) staticsOf(in *Instance) *instanceStatics {
	if c == nil {
		return computeStatics(in)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rekey(in)
	if c.statics == nil {
		c.statics = computeStatics(in)
	}
	return c.statics
}

// warmStatics memoizes in's statics ahead of NewPartialCached with
// cooperative cancellation, mirroring the dual engine: a nil receiver or
// nil ctx computes nothing and NewPartialCached derives them inline.
func (c *Caches) warmStatics(ctx context.Context, in *Instance) error {
	if c == nil || ctx == nil {
		return nil
	}
	c.mu.Lock()
	c.rekey(in)
	warm := c.statics != nil
	nTasks, nEdges := c.nTasks, c.nEdges
	c.mu.Unlock()
	if warm {
		return nil
	}
	s, err := computeStaticsCtx(ctx, in)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.in == in && c.nTasks == nTasks && c.nEdges == nEdges && c.statics == nil {
		c.statics = s
	}
	c.mu.Unlock()
	return nil
}

// Validate is Instance.Validate with the successful parts memoized: the
// graph check runs once per instance, the timing-matrix check once per pool
// count (an unchanged instance cannot become invalid).
func (c *Caches) Validate(in *Instance, p Platform) error {
	if c == nil {
		return in.Validate(p)
	}
	if in == nil || in.G == nil {
		return in.Validate(p)
	}
	c.mu.Lock()
	c.rekey(in)
	if c.statics == nil {
		c.statics = computeStatics(in)
	}
	s := c.statics
	graphDone, matrixDone := s.graphValidated, s.matrixWidth == p.NumPools()
	c.mu.Unlock()
	if graphDone && matrixDone {
		return nil
	}
	if !graphDone {
		if err := in.G.Validate(); err != nil {
			return err
		}
	}
	if !matrixDone {
		if err := in.validateMatrix(p.NumPools()); err != nil {
			return err
		}
	}
	c.mu.Lock()
	s.graphValidated = true
	s.matrixWidth = p.NumPools()
	c.mu.Unlock()
	return nil
}

// MeanRanks returns the memoized mean upward ranks of in, computing them on
// a miss. The returned slice is shared and must not be mutated. The context
// (nil allowed) cancels a cold ranking cooperatively; memo hits never
// consult it.
func (c *Caches) MeanRanks(ctx context.Context, in *Instance) ([]float64, error) {
	if c == nil {
		return in.MeanRanks(ctx)
	}
	c.mu.Lock()
	c.rekey(in)
	if r := c.ranks; r != nil {
		c.mu.Unlock()
		return r, nil
	}
	nTasks, nEdges := c.nTasks, c.nEdges
	c.mu.Unlock()

	ranks, err := in.MeanRanks(ctx)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.in == in && c.nTasks == nTasks && c.nEdges == nEdges && c.ranks == nil {
		c.ranks = ranks
	}
	c.mu.Unlock()
	return ranks, nil
}

// PriorityList returns the memoized MemHEFT priority list of (in, seed),
// computing it on a miss (the O(n log n) sort runs outside the mutex, and
// reuses the memoized ranks when present). The returned slice is a fresh
// copy the caller may mutate. The context (nil allowed) cancels a cold
// ranking cooperatively.
func (c *Caches) PriorityList(ctx context.Context, in *Instance, seed int64) ([]dag.TaskID, error) {
	if c == nil {
		return PriorityList(ctx, in, seed)
	}
	c.mu.Lock()
	c.rekey(in)
	if c.priority == nil {
		c.priority = memo.NewBounded[int64, []dag.TaskID](maxPriorityEntries)
	}
	if list, ok := c.priority.Get(seed); ok {
		out := append([]dag.TaskID(nil), list...)
		c.mu.Unlock()
		return out, nil
	}
	if list, ok := c.frozen[seed]; ok {
		// Inherited from a fork: the frozen snapshot is read-only, so a
		// copy serves the hit exactly like the own memo.
		out := append([]dag.TaskID(nil), list...)
		c.mu.Unlock()
		return out, nil
	}
	nTasks, nEdges := c.nTasks, c.nEdges
	c.mu.Unlock()

	ranks, err := c.MeanRanks(ctx, in)
	if err != nil {
		return nil, err
	}
	list := priorityFromRanks(in, ranks, seed)

	c.mu.Lock()
	// Store only while the cache is still keyed to the instance content
	// the list was derived from.
	if c.in == in && c.nTasks == nTasks && c.nEdges == nEdges {
		if _, ok := c.priority.Get(seed); !ok {
			c.priority.Put(seed, append([]dag.TaskID(nil), list...))
		}
	}
	c.mu.Unlock()
	return list, nil
}

// getSpare pops the recycled Partial (nil receiver or empty slot allocates
// fresh). The caller must reset it before use.
func (c *Caches) getSpare() *Partial {
	if c == nil {
		return &Partial{}
	}
	c.mu.Lock()
	st := c.spare
	c.spare = nil
	c.mu.Unlock()
	if st == nil {
		st = &Partial{}
	}
	return st
}

// Recycle hands a finished Partial's buffers back for the next run. The
// Partial must not be used by the caller afterwards; the schedule it
// produced stays valid (reset always allocates a fresh one).
func (c *Caches) Recycle(st *Partial) {
	if c == nil || st == nil {
		return
	}
	st.sched = nil // drop the escaped schedule; everything else is reused
	c.mu.Lock()
	if c.spare == nil {
		c.spare = st
	}
	c.mu.Unlock()
}
