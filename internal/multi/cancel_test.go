package multi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/dag"
)

// Cancellation coverage for the k-pool engine, mirroring the dual-engine
// session tests: a cancelled context must interrupt a schedule promptly
// both before the ranking phase and in the middle of placement, returning
// the context error wrapped.

// bigInstance builds a layered DAG large enough that a full schedule takes
// visible work (thousands of tasks, dense-ish layers).
func bigInstance(n, k int) *Instance {
	g := dag.New()
	for i := 0; i < n; i++ {
		g.AddTask("", 1, 1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j < i+4; j++ {
			g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), 1, 1)
		}
	}
	times := make([][]float64, n)
	for i := range times {
		times[i] = make([]float64, k)
		for p := range times[i] {
			times[i][p] = float64(1 + (i+p)%5)
		}
	}
	return NewInstance(g, times)
}

func bigPlatform(k int) Platform {
	pools := make([]Pool, k)
	for j := range pools {
		pools[j] = Pool{Procs: 2, Capacity: 1 << 40}
	}
	return NewPlatform(pools...)
}

// TestCancelledBeforeRanking: an already-cancelled context must interrupt
// both heuristics before any ranking or placement work, promptly even on a
// large instance.
func TestCancelledBeforeRanking(t *testing.T) {
	in := bigInstance(4000, 4)
	p := bigPlatform(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, fn := range map[string]Func{"MemHEFT": MemHEFT, "MemMinMin": MemMinMin} {
		start := time.Now()
		s, err := fn(ctx, in, p, Options{Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s on cancelled ctx: err = %v", name, err)
		}
		if s != nil {
			t.Fatalf("%s on cancelled ctx returned a schedule", name)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("%s took %v to notice a pre-cancelled context", name, d)
		}
	}
}

// countdownCtx is a context whose Err starts failing after a fixed number
// of polls — a deterministic way to land the cancellation in the middle of
// the placement loop.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	c.polls--
	if c.polls <= 0 {
		return context.Canceled
	}
	return nil
}

// TestCancelledMidPlacement: a context that expires partway through the
// placement loop interrupts the run with the context error and a partial
// (not completed) schedule.
func TestCancelledMidPlacement(t *testing.T) {
	in := bigInstance(3000, 3)
	p := bigPlatform(3)
	for name, fn := range map[string]Func{"MemHEFT": MemHEFT, "MemMinMin": MemMinMin} {
		// The first poll happens before ranking, then the (now
		// cancellable) ranking phase polls every rankStride tasks
		// (3 polls at n=3000), and the placement loop polls every
		// cancelStride steps — 10 polls lands the cancellation a few
		// hundred placements in.
		ctx := &countdownCtx{Context: context.Background(), polls: 10}
		s, err := fn(ctx, in, p, Options{Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s mid-placement: err = %v", name, err)
		}
		if s == nil {
			t.Fatalf("%s mid-placement: no partial schedule returned", name)
		}
		placed := 0
		for i := range s.Tasks {
			if s.Tasks[i].Proc >= 0 {
				placed++
			}
		}
		if placed == 0 || placed >= in.G.NumTasks() {
			t.Fatalf("%s mid-placement: %d of %d tasks placed, want a strict partial prefix", name, placed, in.G.NumTasks())
		}
	}
}

// TestCancelledDuringRanking: a cancellation landing inside the (now
// cooperative) ranking phase interrupts the run before any placement — no
// partial schedule exists yet, and the error names the heuristic.
func TestCancelledDuringRanking(t *testing.T) {
	in := bigInstance(3000, 3)
	p := bigPlatform(3)
	// Poll 1 is the entry check; polls 2 and 3 are the ranking loop's at
	// steps 0 and rankStride — the countdown expires mid-ranking.
	ctx := &countdownCtx{Context: context.Background(), polls: 3}
	s, err := MemHEFT(ctx, in, p, Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-ranking: err = %v", err)
	}
	if s != nil {
		t.Fatal("mid-ranking cancellation returned a schedule")
	}
	if !strings.Contains(err.Error(), "MemHEFT interrupted") {
		t.Fatalf("mid-ranking error not labelled: %v", err)
	}
}

// TestCancelledMidPlacementViaDeadline exercises the same path with a real
// deadline context on a big instance: the run must stop with
// DeadlineExceeded well before a full schedule would complete.
func TestCancelledMidPlacementViaDeadline(t *testing.T) {
	in := bigInstance(6000, 4)
	p := bigPlatform(4)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := MemHEFT(ctx, in, p, Options{Seed: 1})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error kind: %v", err)
	}
	// err == nil is possible on a very fast machine (the schedule finished
	// inside the deadline); the test only pins the error classification.
}
