package multi

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/memfn"
)

// This file retains the pre-incremental k-pool implementations as
// executable reference oracles, exactly as naive.go in internal/core does
// for the dual engine. They bypass every layer of the incremental engine
// that could conceivably change behaviour — no candidate memoization, no
// static-part caching, no session memos, ready-ness by scanning parents,
// per-edge staircase Reserve calls instead of batched splices, mid-slice
// deletes, linear min scans, ranks recomputed per call — so the
// golden-equivalence tests can assert that the optimized schedulers produce
// bit-identical schedules. They are exported (rather than test-only) so the
// benchmark harness can track the speedup of the incremental paths against
// them.

// naivePartial is the eager k-pool partial schedule of the reference
// oracles.
type naivePartial struct {
	in *Instance
	p  Platform

	sched     *Schedule
	free      []*memfn.Staircase // per pool
	availProc []float64
	assigned  []bool
	finish    []float64
}

func newNaivePartial(in *Instance, p Platform) *naivePartial {
	free := make([]*memfn.Staircase, p.NumPools())
	for k, pool := range p.Pools {
		free[k] = memfn.New(pool.Capacity)
	}
	return &naivePartial{
		in: in, p: p,
		sched:     NewSchedule(in, p),
		free:      free,
		availProc: make([]float64, p.TotalProcs()),
		assigned:  make([]bool, in.G.NumTasks()),
		finish:    make([]float64, in.G.NumTasks()),
	}
}

// ready re-derives readiness the naive way, by scanning parents.
func (st *naivePartial) ready(id dag.TaskID) bool {
	if st.assigned[id] {
		return false
	}
	for _, e := range st.in.G.In(id) {
		if !st.assigned[st.in.G.Edge(e).From] {
			return false
		}
	}
	return true
}

// evaluate computes EST/EFT of a ready task on pool k from scratch: the
// four components of §5.1, with "cross" meaning "parent on any other pool".
func (st *naivePartial) evaluate(id dag.TaskID, k int) Candidate {
	c := Candidate{Task: id, Pool: k, EST: inf, EFT: inf}
	lo, hi := st.p.ProcRange(k)
	if lo == hi {
		return c
	}
	resourceEST := inf
	for proc := lo; proc < hi; proc++ {
		if st.availProc[proc] < resourceEST {
			resourceEST = st.availProc[proc]
		}
	}
	precedenceEST := 0.0
	var crossFiles int64
	cmu := 0.0
	for _, e := range st.in.G.In(id) {
		edge := st.in.G.Edge(e)
		aft := st.finish[edge.From]
		if st.sched.PoolOf(edge.From) == k {
			if aft > precedenceEST {
				precedenceEST = aft
			}
			continue
		}
		if v := aft + edge.Comm; v > precedenceEST {
			precedenceEST = v
		}
		crossFiles += edge.File
		if edge.Comm > cmu {
			cmu = edge.Comm
		}
	}
	var outFiles int64
	for _, e := range st.in.G.Out(id) {
		outFiles += st.in.G.Edge(e).File
	}
	taskMemEST := st.free[k].EarliestFitLinear(0, crossFiles+outFiles)
	commMemEST := st.free[k].EarliestFitLinear(0, crossFiles)

	est := math.Max(resourceEST, precedenceEST)
	est = math.Max(est, taskMemEST)
	est = math.Max(est, commMemEST+cmu)
	if math.IsInf(est, 1) {
		return c
	}
	c.EST = est
	c.EFT = est + st.in.Time(id, k)
	c.CMu = cmu
	return c
}

// best returns the minimum-EFT candidate over all pools (lowest pool index
// wins ties).
func (st *naivePartial) best(id dag.TaskID) Candidate {
	b := Candidate{Task: id, Pool: -1, EST: inf, EFT: inf}
	for k := range st.p.Pools {
		c := st.evaluate(id, k)
		if c.EFT < b.EFT {
			b = c
		}
	}
	return b
}

// commit applies one placement with independent per-edge staircase updates.
func (st *naivePartial) commit(c Candidate) {
	id, k := c.Task, c.Pool
	w := st.in.Time(id, k)
	start, fin := c.EST, c.EST+w

	lo, hi := st.p.ProcRange(k)
	bestProc, bestAvail := -1, math.Inf(-1)
	for proc := lo; proc < hi; proc++ {
		if a := st.availProc[proc]; a <= start+Eps && a > bestAvail {
			bestProc, bestAvail = proc, a
		}
	}
	if bestProc < 0 {
		panic("multi: no free processor at committed start time")
	}
	st.sched.Tasks[id] = Placement{Start: start, Proc: bestProc}
	st.availProc[bestProc] = fin
	st.assigned[id] = true
	st.finish[id] = fin

	for _, e := range st.in.G.In(id) {
		edge := st.in.G.Edge(e)
		srcPool := st.sched.PoolOf(edge.From)
		if srcPool == k {
			st.free[k].Release(fin, edge.File)
			continue
		}
		st.sched.CommStart[edge.ID] = start - edge.Comm
		st.free[k].Reserve(start-c.CMu, fin, edge.File)
		st.free[srcPool].Release(start, edge.File)
	}
	for _, e := range st.in.G.Out(id) {
		st.free[k].Reserve(start, memfn.Inf, st.in.G.Edge(e).File)
	}
}

// MemHEFTReference is the naive k-pool implementation of Algorithm 1: ranks
// recomputed per call, every iteration restarts from the head of the
// priority list, re-derives ready-ness by scanning parents and re-evaluates
// every pool candidate of every visited task from scratch. It is the oracle
// MemHEFT is tested against and must not be "optimized"; the context and
// the memoization options are deliberately ignored.
func MemHEFTReference(_ context.Context, in *Instance, p Platform, opt Options) (*Schedule, error) {
	if err := in.Validate(p); err != nil {
		return nil, err
	}
	remaining, err := PriorityList(nil, in, opt.Seed)
	if err != nil {
		return nil, err
	}
	st := newNaivePartial(in, p)
	for len(remaining) > 0 {
		placed := false
		for index, id := range remaining {
			if !st.ready(id) {
				continue
			}
			c := st.best(id)
			if !c.Feasible() {
				continue
			}
			st.commit(c)
			remaining = append(remaining[:index], remaining[index+1:]...)
			placed = true
			break
		}
		if !placed {
			return st.sched, fmt.Errorf("%w (MemHEFT: %d of %d tasks unscheduled, first stuck task %d)",
				ErrMemoryBound, len(remaining), in.G.NumTasks(), remaining[0])
		}
	}
	return st.sched, nil
}

// MemMinMinReference is the naive k-pool implementation of Algorithm 2:
// every iteration evaluates every pool candidate of every ready task from
// scratch and picks the minimum-EFT pair by linear scan (ties towards the
// smaller task ID). It is the oracle MemMinMin is tested against and must
// not be "optimized"; the context and the memoization options are
// deliberately ignored.
func MemMinMinReference(_ context.Context, in *Instance, p Platform, opt Options) (*Schedule, error) {
	if err := in.Validate(p); err != nil {
		return nil, err
	}
	g := in.G
	st := newNaivePartial(in, p)
	pending := make([]int, g.NumTasks())
	var ready []dag.TaskID
	for i := 0; i < g.NumTasks(); i++ {
		pending[i] = len(g.In(dag.TaskID(i)))
		if pending[i] == 0 {
			ready = append(ready, dag.TaskID(i))
		}
	}
	scheduled := 0
	for len(ready) > 0 {
		bestIdx := -1
		var bestCand Candidate
		for idx, id := range ready {
			c := st.best(id)
			if !c.Feasible() {
				continue
			}
			if bestIdx < 0 || c.EFT < bestCand.EFT || (c.EFT == bestCand.EFT && id < bestCand.Task) {
				bestIdx, bestCand = idx, c
			}
		}
		if bestIdx < 0 {
			return st.sched, fmt.Errorf("%w (MemMinMin: %d of %d tasks unscheduled, %d ready tasks all blocked)",
				ErrMemoryBound, g.NumTasks()-scheduled, g.NumTasks(), len(ready))
		}
		st.commit(bestCand)
		scheduled++
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		for _, e := range g.Out(bestCand.Task) {
			child := g.Edge(e).To
			pending[child]--
			if pending[child] == 0 {
				ready = insertSorted(ready, child)
			}
		}
	}
	return st.sched, nil
}
