package multi

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
)

// Eps is the float tolerance for event-time comparisons.
const Eps = 1e-9

// Placement records where and when one task runs.
type Placement struct {
	Start float64
	Proc  int // global processor index
}

// Schedule is a complete mapping of an instance onto a multi-pool platform.
type Schedule struct {
	Inst     *Instance
	Platform Platform

	Tasks     []Placement
	CommStart []float64 // per edge; NaN when intra-pool
}

// NewSchedule returns an empty schedule skeleton.
func NewSchedule(in *Instance, p Platform) *Schedule {
	s := &Schedule{
		Inst:      in,
		Platform:  p,
		Tasks:     make([]Placement, in.G.NumTasks()),
		CommStart: make([]float64, in.G.NumEdges()),
	}
	for i := range s.Tasks {
		s.Tasks[i] = Placement{Start: -1, Proc: -1}
	}
	for e := range s.CommStart {
		s.CommStart[e] = math.NaN()
	}
	return s
}

// Clone returns an independent copy of the schedule sharing the immutable
// instance. The warm-start margin shortcut hands clones of a recorded
// schedule to callers so the stored original can never be mutated through a
// Result.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		Inst:      s.Inst,
		Platform:  s.Platform,
		Tasks:     append([]Placement(nil), s.Tasks...),
		CommStart: append([]float64(nil), s.CommStart...),
	}
}

// PoolOf returns the pool executing task id.
func (s *Schedule) PoolOf(id dag.TaskID) int { return s.Platform.PoolOf(s.Tasks[id].Proc) }

// Duration returns the actual processing time of task id.
func (s *Schedule) Duration(id dag.TaskID) float64 { return s.Inst.Time(id, s.PoolOf(id)) }

// Finish returns start + duration of task id.
func (s *Schedule) Finish(id dag.TaskID) float64 { return s.Tasks[id].Start + s.Duration(id) }

// Makespan returns the completion time of the last task.
func (s *Schedule) Makespan() float64 {
	ms := 0.0
	for i := range s.Tasks {
		if f := s.Finish(dag.TaskID(i)); f > ms {
			ms = f
		}
	}
	return ms
}

// IsCross reports whether edge e connects tasks on different pools.
func (s *Schedule) IsCross(e dag.EdgeID) bool {
	edge := s.Inst.G.Edge(e)
	return s.PoolOf(edge.From) != s.PoolOf(edge.To)
}

type residency struct {
	pool     int
	from, to float64
	size     int64
}

func (s *Schedule) residencies() []residency {
	g := s.Inst.G
	var rs []residency
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(dag.EdgeID(e))
		if edge.File == 0 {
			continue
		}
		src := s.PoolOf(edge.From)
		prodStart := s.Tasks[edge.From].Start
		consFinish := s.Finish(edge.To)
		if !s.IsCross(dag.EdgeID(e)) {
			rs = append(rs, residency{pool: src, from: prodStart, to: consFinish, size: edge.File})
			continue
		}
		tau := s.CommStart[e]
		rs = append(rs, residency{pool: src, from: prodStart, to: tau + edge.Comm, size: edge.File})
		rs = append(rs, residency{pool: s.PoolOf(edge.To), from: tau, to: consFinish, size: edge.File})
	}
	return rs
}

// MemoryPeaks returns the peak usage of every pool.
func (s *Schedule) MemoryPeaks() []int64 {
	type event struct {
		t     float64
		delta int64
	}
	evs := make([][]event, s.Platform.NumPools())
	for _, r := range s.residencies() {
		evs[r.pool] = append(evs[r.pool], event{r.from, r.size}, event{r.to, -r.size})
	}
	peaks := make([]int64, s.Platform.NumPools())
	for k := range evs {
		sort.Slice(evs[k], func(i, j int) bool {
			if math.Abs(evs[k][i].t-evs[k][j].t) > Eps {
				return evs[k][i].t < evs[k][j].t
			}
			return evs[k][i].delta < evs[k][j].delta
		})
		var cur int64
		for _, e := range evs[k] {
			cur += e.delta
			if cur > peaks[k] {
				peaks[k] = cur
			}
		}
	}
	return peaks
}

// Validate checks completeness, flow, resource and per-pool memory
// constraints, mirroring the dual-memory validator.
func (s *Schedule) Validate() error {
	g, p := s.Inst.G, s.Platform
	if err := p.Validate(); err != nil {
		return err
	}
	if err := s.Inst.Validate(p); err != nil {
		return err
	}
	for i := range s.Tasks {
		pl := s.Tasks[i]
		if pl.Proc < 0 || pl.Proc >= p.TotalProcs() {
			return fmt.Errorf("multi: task %d on invalid processor %d", i, pl.Proc)
		}
		if pl.Start < -Eps {
			return fmt.Errorf("multi: task %d starts at %g", i, pl.Start)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(dag.EdgeID(e))
		srcFinish := s.Finish(edge.From)
		dstStart := s.Tasks[edge.To].Start
		if !s.IsCross(dag.EdgeID(e)) {
			if srcFinish > dstStart+Eps {
				return fmt.Errorf("multi: edge %d->%d violates precedence", edge.From, edge.To)
			}
			continue
		}
		tau := s.CommStart[e]
		if math.IsNaN(tau) {
			return fmt.Errorf("multi: cross edge %d->%d has no communication start", edge.From, edge.To)
		}
		if srcFinish > tau+Eps || tau+edge.Comm > dstStart+Eps {
			return fmt.Errorf("multi: communication %d->%d out of window", edge.From, edge.To)
		}
	}
	byProc := map[int][]dag.TaskID{}
	for i := range s.Tasks {
		byProc[s.Tasks[i].Proc] = append(byProc[s.Tasks[i].Proc], dag.TaskID(i))
	}
	for proc, ids := range byProc {
		sort.Slice(ids, func(a, b int) bool {
			sa, sb := s.Tasks[ids[a]].Start, s.Tasks[ids[b]].Start
			if sa != sb {
				return sa < sb
			}
			return s.Finish(ids[a]) < s.Finish(ids[b])
		})
		for k := 1; k < len(ids); k++ {
			if s.Finish(ids[k-1]) > s.Tasks[ids[k]].Start+Eps {
				return fmt.Errorf("multi: tasks %d and %d overlap on processor %d", ids[k-1], ids[k], proc)
			}
		}
	}
	rs := s.residencies()
	for _, r := range rs {
		var usage int64
		for _, o := range rs {
			if o.pool == r.pool && o.from <= r.from+Eps && r.from < o.to-Eps {
				usage += o.size
			}
		}
		if usage > p.Pools[r.pool].Capacity {
			return fmt.Errorf("multi: pool %d over capacity at t=%g: %d > %d", r.pool, r.from, usage, p.Pools[r.pool].Capacity)
		}
	}
	return nil
}
