package multi

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/memfn"
)

// ErrMemoryBound is returned (wrapped) when a heuristic cannot fit the
// instance in the pool capacities. It is the same sentinel as the
// dual-memory engine's, so one errors.Is check covers both engines.
var ErrMemoryBound = core.ErrMemoryBound

// Options tunes a heuristic run.
type Options struct {
	Seed int64 // rank tie-breaking seed
}

// Func is the common signature of the generalised heuristics.
type Func func(ctx context.Context, in *Instance, p Platform, opt Options) (*Schedule, error)

var inf = math.Inf(1)

// partial is the multi-pool partial schedule (the k-pool generalisation of
// core.Partial).
type partial struct {
	in *Instance
	p  Platform

	sched     *Schedule
	free      []*memfn.Staircase // per pool
	availProc []float64
	assigned  []bool
	finish    []float64
}

func newPartial(in *Instance, p Platform) *partial {
	free := make([]*memfn.Staircase, p.NumPools())
	for k, pool := range p.Pools {
		free[k] = memfn.New(pool.Capacity)
	}
	return &partial{
		in: in, p: p,
		sched:     NewSchedule(in, p),
		free:      free,
		availProc: make([]float64, p.TotalProcs()),
		assigned:  make([]bool, in.G.NumTasks()),
		finish:    make([]float64, in.G.NumTasks()),
	}
}

type candidate struct {
	task dag.TaskID
	pool int
	est  float64
	eft  float64
	cmu  float64
}

func (c candidate) feasible() bool { return !math.IsInf(c.eft, 1) }

func (st *partial) ready(id dag.TaskID) bool {
	if st.assigned[id] {
		return false
	}
	for _, e := range st.in.G.In(id) {
		if !st.assigned[st.in.G.Edge(e).From] {
			return false
		}
	}
	return true
}

// evaluate computes EST/EFT of a ready task on pool k: the four components
// of §5.1, with "cross" meaning "parent on any other pool".
func (st *partial) evaluate(id dag.TaskID, k int) candidate {
	c := candidate{task: id, pool: k, est: inf, eft: inf}
	lo, hi := st.p.ProcRange(k)
	if lo == hi {
		return c
	}
	resourceEST := inf
	for proc := lo; proc < hi; proc++ {
		if st.availProc[proc] < resourceEST {
			resourceEST = st.availProc[proc]
		}
	}
	precedenceEST := 0.0
	var crossFiles int64
	cmu := 0.0
	for _, e := range st.in.G.In(id) {
		edge := st.in.G.Edge(e)
		aft := st.finish[edge.From]
		if st.sched.PoolOf(edge.From) == k {
			if aft > precedenceEST {
				precedenceEST = aft
			}
			continue
		}
		if v := aft + edge.Comm; v > precedenceEST {
			precedenceEST = v
		}
		crossFiles += edge.File
		if edge.Comm > cmu {
			cmu = edge.Comm
		}
	}
	var outFiles int64
	for _, e := range st.in.G.Out(id) {
		outFiles += st.in.G.Edge(e).File
	}
	taskMemEST := st.free[k].EarliestFit(0, crossFiles+outFiles)
	commMemEST := st.free[k].EarliestFit(0, crossFiles)

	est := math.Max(resourceEST, precedenceEST)
	est = math.Max(est, taskMemEST)
	est = math.Max(est, commMemEST+cmu)
	if math.IsInf(est, 1) {
		return c
	}
	c.est = est
	c.eft = est + st.in.Time(id, k)
	c.cmu = cmu
	return c
}

// best returns the minimum-EFT candidate over all pools (lowest pool index
// wins ties, matching core's blue preference in the 2-pool case).
func (st *partial) best(id dag.TaskID) candidate {
	b := candidate{task: id, pool: -1, est: inf, eft: inf}
	for k := range st.p.Pools {
		c := st.evaluate(id, k)
		if c.eft < b.eft {
			b = c
		}
	}
	return b
}

// commit mirrors core.Partial.Commit for k pools.
func (st *partial) commit(c candidate) {
	id, k := c.task, c.pool
	w := st.in.Time(id, k)
	start, fin := c.est, c.est+w

	lo, hi := st.p.ProcRange(k)
	bestProc, bestAvail := -1, math.Inf(-1)
	for proc := lo; proc < hi; proc++ {
		if a := st.availProc[proc]; a <= start+Eps && a > bestAvail {
			bestProc, bestAvail = proc, a
		}
	}
	if bestProc < 0 {
		panic("multi: no free processor at committed start time")
	}
	st.sched.Tasks[id] = Placement{Start: start, Proc: bestProc}
	st.availProc[bestProc] = fin
	st.assigned[id] = true
	st.finish[id] = fin

	for _, e := range st.in.G.In(id) {
		edge := st.in.G.Edge(e)
		srcPool := st.sched.PoolOf(edge.From)
		if srcPool == k {
			st.free[k].Release(fin, edge.File)
			continue
		}
		st.sched.CommStart[edge.ID] = start - edge.Comm
		st.free[k].Reserve(start-c.cmu, fin, edge.File)
		st.free[srcPool].Release(start, edge.File)
	}
	for _, e := range st.in.G.Out(id) {
		st.free[k].Reserve(start, memfn.Inf, st.in.G.Edge(e).File)
	}
}

// PriorityList returns tasks by non-increasing mean rank with seeded random
// tie-breaks.
func PriorityList(in *Instance, seed int64) ([]dag.TaskID, error) {
	ranks, err := in.MeanRanks()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tieKey := rng.Perm(in.G.NumTasks())
	list := make([]dag.TaskID, in.G.NumTasks())
	for i := range list {
		list[i] = dag.TaskID(i)
	}
	sort.SliceStable(list, func(a, b int) bool {
		ra, rb := ranks[list[a]], ranks[list[b]]
		if ra != rb {
			return ra > rb
		}
		return tieKey[list[a]] < tieKey[list[b]]
	})
	return list, nil
}

// MemHEFT is Algorithm 1 generalised to k pools. The context is checked
// cooperatively once per placement.
func MemHEFT(ctx context.Context, in *Instance, p Platform, opt Options) (*Schedule, error) {
	if err := in.Validate(p); err != nil {
		return nil, err
	}
	remaining, err := PriorityList(in, opt.Seed)
	if err != nil {
		return nil, err
	}
	st := newPartial(in, p)
	for len(remaining) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return st.sched, fmt.Errorf("multi: MemHEFT interrupted: %w", err)
			}
		}
		placed := false
		for index, id := range remaining {
			if !st.ready(id) {
				continue
			}
			c := st.best(id)
			if !c.feasible() {
				continue
			}
			st.commit(c)
			remaining = append(remaining[:index], remaining[index+1:]...)
			placed = true
			break
		}
		if !placed {
			return st.sched, fmt.Errorf("%w (MemHEFT: %d tasks unscheduled)", ErrMemoryBound, len(remaining))
		}
	}
	return st.sched, nil
}

// MemMinMin is Algorithm 2 generalised to k pools. The context is checked
// cooperatively once per placement.
func MemMinMin(ctx context.Context, in *Instance, p Platform, opt Options) (*Schedule, error) {
	if err := in.Validate(p); err != nil {
		return nil, err
	}
	g := in.G
	st := newPartial(in, p)
	pending := make([]int, g.NumTasks())
	var ready []dag.TaskID
	for i := 0; i < g.NumTasks(); i++ {
		pending[i] = len(g.In(dag.TaskID(i)))
		if pending[i] == 0 {
			ready = append(ready, dag.TaskID(i))
		}
	}
	for len(ready) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return st.sched, fmt.Errorf("multi: MemMinMin interrupted: %w", err)
			}
		}
		bestIdx := -1
		var bestCand candidate
		for idx, id := range ready {
			c := st.best(id)
			if !c.feasible() {
				continue
			}
			if bestIdx < 0 || c.eft < bestCand.eft || (c.eft == bestCand.eft && id < bestCand.task) {
				bestIdx, bestCand = idx, c
			}
		}
		if bestIdx < 0 {
			return st.sched, fmt.Errorf("%w (MemMinMin: %d ready tasks all blocked)", ErrMemoryBound, len(ready))
		}
		st.commit(bestCand)
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		for _, e := range g.Out(bestCand.task) {
			child := g.Edge(e).To
			pending[child]--
			if pending[child] == 0 {
				lo, hi := 0, len(ready)
				for lo < hi {
					mid := (lo + hi) / 2
					if ready[mid] < child {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				ready = append(ready, 0)
				copy(ready[lo+1:], ready[lo:])
				ready[lo] = child
			}
		}
	}
	return st.sched, nil
}
