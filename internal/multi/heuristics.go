package multi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/trace"
)

// ErrMemoryBound is returned (wrapped) when a heuristic cannot fit the
// instance in the pool capacities. It is the same sentinel as the
// dual-memory engine's, so one errors.Is check covers both engines.
var ErrMemoryBound = core.ErrMemoryBound

// Options tunes a heuristic run. The zero value is ready to use.
type Options struct {
	// Seed feeds the random tie-breaking of the ranking phase.
	Seed int64

	// Caches, when non-nil, serves the per-instance memos (mean ranks,
	// priority lists, statics, validation) owned by the caller —
	// typically a memsched.Session. A nil Caches computes everything
	// fresh.
	Caches *Caches

	// Stats, when non-nil, receives run statistics accumulated over the
	// run.
	Stats *RunStats

	// Record, when non-nil, receives this run's committed placement
	// sequence (reset first, Complete set only on full success) so a later
	// run can warm-start from it.
	Record *Trace

	// Replay, when non-nil, is a previously recorded trace whose verified
	// prefix is committed directly instead of re-deriving each decision.
	// Only consulted when the trace's platform is replay-eligible for this
	// run's platform (see ReplayEligible); every replayed step is
	// re-verified, so results are bit-identical either way. The trace is
	// read-only and must not be mutated while any run may still replay it.
	Replay *Trace
}

// RunStats carries the per-run statistics a heuristic reports through
// Options.Stats.
type RunStats struct {
	// CacheHits / CacheMisses count candidate evaluations served from the
	// epoch-invalidated (task, pool) memo vs recomputed.
	CacheHits, CacheMisses uint64
	// Makespan is the running-max makespan of the produced schedule.
	Makespan float64
	// PoolTasks is the number of tasks committed to each pool.
	PoolTasks []int
	// Replayed counts placements committed by verified warm-start replay
	// (Options.Replay) instead of a fresh decision scan.
	Replayed int
	// ReplayTruncated reports that a requested replay stopped before
	// consuming the whole trace — either the trace was ineligible for this
	// platform or a recorded decision no longer verified.
	ReplayTruncated bool
}

// Func is the common signature of the generalised heuristics.
type Func func(ctx context.Context, in *Instance, p Platform, opt Options) (*Schedule, error)

var inf = math.Inf(1)

// cancelStride is how many main-loop iterations pass between cooperative
// context checks, matching the dual engine's stride.
const cancelStride = 64

// ctxErr polls ctx every cancelStride-th step (nil ctx never cancels).
func ctxErr(ctx context.Context, step int) error {
	if ctx == nil || step%cancelStride != 0 {
		return nil
	}
	return ctx.Err()
}

// PriorityList returns tasks by non-increasing mean rank with seeded random
// tie-breaks. It is a pure function of (instance, seed); sessions memoize
// it per seed through Caches.PriorityList. The context (nil allowed) makes
// the ranking phase cooperatively cancellable.
func PriorityList(ctx context.Context, in *Instance, seed int64) ([]dag.TaskID, error) {
	ranks, err := in.MeanRanks(ctx)
	if err != nil {
		return nil, err
	}
	return priorityFromRanks(in, ranks, seed), nil
}

// wrapInterrupted labels a cancellation surfacing from the ranking/statics
// phase with the heuristic's name (matching the placement loops' wrapping);
// every other error passes through untouched.
func wrapInterrupted(name string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("multi: %s interrupted: %w", name, err)
	}
	return err
}

// priorityFromRanks is the sorting half of PriorityList, reused by the
// cache layer when the ranks are already memoized.
func priorityFromRanks(in *Instance, ranks []float64, seed int64) []dag.TaskID {
	rng := rand.New(rand.NewSource(seed))
	tieKey := rng.Perm(in.G.NumTasks())
	list := make([]dag.TaskID, in.G.NumTasks())
	for i := range list {
		list[i] = dag.TaskID(i)
	}
	sort.SliceStable(list, func(a, b int) bool {
		ra, rb := ranks[list[a]], ranks[list[b]]
		if ra != rb {
			return ra > rb
		}
		return tieKey[list[a]] < tieKey[list[b]]
	})
	return list
}

// MemHEFT is Algorithm 1 generalised to k pools: walk the priority list,
// schedule the first ready task that currently fits, restart from the head
// after every assignment.
//
// The scan is incremental, mirroring the dual engine: ready-ness checks are
// O(1), Best serves memoized candidates for entries whose pool epochs and
// parents are unchanged since the last pass, and scheduled tasks are
// skipped in place and compacted lazily. Commit order — and therefore the
// schedule — is identical to MemHEFTReference (see naive.go). The context
// is checked cooperatively; cancellation returns ctx.Err() wrapped.
func MemHEFT(ctx context.Context, in *Instance, p Platform, opt Options) (*Schedule, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("multi: MemHEFT interrupted: %w", err)
		}
	}
	if err := opt.Caches.Validate(in, p); err != nil {
		return nil, err
	}
	endRank := trace.Start(ctx, "rank")
	remaining, err := opt.Caches.PriorityList(ctx, in, opt.Seed)
	endRank()
	if err != nil {
		return nil, wrapInterrupted("MemHEFT", err)
	}
	endStatics := trace.Start(ctx, "statics")
	if err := opt.Caches.warmStatics(ctx, in); err != nil {
		return nil, wrapInterrupted("MemHEFT", err)
	}
	st := NewPartialCached(in, p, opt.Caches)
	endStatics()
	defer opt.Caches.Recycle(st)
	defer st.reportStats(opt.Stats)
	rec := opt.Record
	endReplay := trace.Start(ctx, "replay")
	replayed, err := st.beginRun(ctx, p, opt)
	endReplay()
	if err != nil {
		return st.sched, fmt.Errorf("multi: MemHEFT interrupted: %w", err)
	}
	defer trace.Start(ctx, "placement")()
	left := len(remaining) - replayed
	head := 0 // index of the first unscheduled entry
	step := 0
	for left > 0 {
		if err := ctxErr(ctx, step); err != nil {
			return st.sched, fmt.Errorf("multi: MemHEFT interrupted: %w", err)
		}
		step++
		for head < len(remaining) && st.Assigned(remaining[head]) {
			head++
		}
		placed := false
		for _, id := range remaining[head:] {
			if !st.Ready(id) {
				continue
			}
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			if rec != nil {
				// Before Commit: recordStep measures pre-commit fit slacks.
				st.recordStep(rec, c)
			}
			st.Commit(c)
			left--
			placed = true
			break
		}
		if !placed {
			// remaining[head] is the highest-priority unscheduled
			// task thanks to the head advance above.
			return st.sched, fmt.Errorf("%w (MemHEFT: %d of %d tasks unscheduled, first stuck task %d)",
				ErrMemoryBound, left, in.G.NumTasks(), remaining[head])
		}
		// Compact once half the list is scheduled: amortised O(n)
		// total instead of an O(n) mid-slice delete per assignment.
		if left > 0 && 2*left <= len(remaining)-head {
			out := remaining[:0]
			for _, id := range remaining[head:] {
				if !st.Assigned(id) {
					out = append(out, id)
				}
			}
			remaining = out
			head = 0
		}
	}
	if rec != nil {
		rec.Complete = true
	}
	return st.sched, nil
}

// MemMinMin is Algorithm 2 generalised to k pools: among all ready tasks,
// repeatedly commit the (task, pool) pair with the minimum earliest finish
// time.
//
// The ready candidates live in a heap ordered by (EFT, task ID) — the
// exact tie-breaking of the reference linear scan — with epoch-bucketed
// lazy invalidation: the refresh tracks which pool epochs moved since the
// last iteration, fully re-derives only entries whose incumbent pool
// moved, and probes just the moved pools for everyone else (a commit
// typically moves one or two of the k pools). The context is checked
// cooperatively; cancellation returns ctx.Err() wrapped.
func MemMinMin(ctx context.Context, in *Instance, p Platform, opt Options) (*Schedule, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("multi: MemMinMin interrupted: %w", err)
		}
	}
	if err := opt.Caches.Validate(in, p); err != nil {
		return nil, err
	}
	endStatics := trace.Start(ctx, "statics")
	if err := opt.Caches.warmStatics(ctx, in); err != nil {
		return nil, wrapInterrupted("MemMinMin", err)
	}
	st := NewPartialCached(in, p, opt.Caches)
	endStatics()
	defer opt.Caches.Recycle(st)
	defer st.reportStats(opt.Stats)
	g := in.G

	// Warm-start: replay the verified prefix of a previous run before the
	// heap is built, so the heap starts from the post-replay ready set.
	rec := opt.Record
	endReplay := trace.Start(ctx, "replay")
	replayed, err := st.beginRun(ctx, p, opt)
	endReplay()
	if err != nil {
		return st.sched, fmt.Errorf("multi: MemMinMin interrupted: %w", err)
	}

	defer trace.Start(ctx, "placement")()
	h := make(eftHeap, 0, g.NumTasks())
	for _, id := range st.ReadyTasks() {
		h = append(h, eftEntry{id: id, cand: st.Best(id)})
	}
	h.init()

	// Epoch-bucketed refresh state: every heap entry is a ready task, so
	// its parents are all committed and its parent stamp can never move
	// again — staleness comes only from pool epochs. Tracking the epochs
	// seen at the last refresh tells us exactly which pools mutated since,
	// so the refresh recomputes the full Best only for entries whose
	// memoized best sits on a moved pool, and for every other entry
	// evaluates just the moved pools (served from the candidate memo when
	// unchanged), instead of probing all k slots of every entry.
	epochSeen := make([]uint64, st.k)
	copy(epochSeen, st.epoch)
	moved := make([]int, 0, st.k)

	scheduled := replayed
	for len(h) > 0 {
		if err := ctxErr(ctx, scheduled); err != nil {
			return st.sched, fmt.Errorf("multi: MemMinMin interrupted: %w", err)
		}
		// Lazy invalidation: refresh candidates invalidated by moved pool
		// epochs, then restore the heap order in one pass.
		moved = moved[:0]
		for k := 0; k < st.k; k++ {
			if st.epoch[k] != epochSeen[k] {
				moved = append(moved, k)
				epochSeen[k] = st.epoch[k]
			}
		}
		changed := false
		if len(moved) > 0 {
			for i := range h {
				e := &h[i]
				if e.cand.Pool >= 0 && poolMoved(moved, e.cand.Pool) {
					// The incumbent pool itself mutated: its EFT may
					// have grown, so the full argmin must be redone.
					if nb := st.Best(e.id); nb != e.cand {
						e.cand = nb
						changed = true
					}
					continue
				}
				// The incumbent pool is unchanged, so the memoized best
				// still beats every unmoved pool; only a moved pool can
				// displace it — with Best's exact lowest-pool tie-break.
				for _, k := range moved {
					c := st.Evaluate(e.id, k)
					if c.EFT < e.cand.EFT || (c.EFT == e.cand.EFT && k < e.cand.Pool) {
						e.cand = c
						changed = true
					}
				}
			}
		}
		if changed {
			h.init()
		}
		best := h[0]
		if !best.cand.Feasible() {
			// The heap minimum is infeasible, hence so is every
			// ready task.
			return st.sched, fmt.Errorf("%w (MemMinMin: %d of %d tasks unscheduled, %d ready tasks all blocked)",
				ErrMemoryBound, g.NumTasks()-scheduled, g.NumTasks(), len(h))
		}
		if rec != nil {
			// Before Commit: recordStep measures pre-commit fit slacks.
			st.recordStep(rec, best.cand)
		}
		st.Commit(best.cand)
		scheduled++
		h.popMin()
		for _, child := range st.NewlyReady() {
			h.push(eftEntry{id: child, cand: st.Best(child)})
		}
	}
	if scheduled != g.NumTasks() {
		// Unreachable for a validated DAG; defensive.
		return st.sched, fmt.Errorf("multi: MemMinMin scheduled %d of %d tasks", scheduled, g.NumTasks())
	}
	if rec != nil {
		rec.Complete = true
	}
	return st.sched, nil
}

// poolMoved reports whether pool k is in the (short, ascending) moved list.
func poolMoved(moved []int, k int) bool {
	for _, m := range moved {
		if m == k {
			return true
		}
	}
	return false
}

// eftEntry is one ready task with its memoized best candidate.
type eftEntry struct {
	id   dag.TaskID
	cand Candidate
}

// eftHeap is a binary min-heap of ready candidates ordered by (EFT, task
// ID), matching the tie-breaking of the naive scan. Infeasible candidates
// carry EFT = +inf and sink to the bottom; inf comparisons are always
// false, so ties fall through to the ID order, which keeps the comparator
// strict and total.
type eftHeap []eftEntry

func (h eftHeap) less(a, b int) bool {
	if h[a].cand.EFT != h[b].cand.EFT {
		return h[a].cand.EFT < h[b].cand.EFT
	}
	return h[a].id < h[b].id
}

func (h eftHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h eftHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h.less(l, m) {
			m = l
		}
		if r < len(h) && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *eftHeap) push(e eftEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eftHeap) popMin() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	if n > 0 {
		s.siftDown(0)
	}
}
