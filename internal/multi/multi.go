// Package multi generalises the paper's dual-memory model and heuristics to
// platforms with an arbitrary number of memory pools — the extension the
// paper's conclusion (§7) proposes: "hybrid platforms with several types of
// accelerators, and/or including more than two memories".
//
// A platform is a list of pools, each with its own processor count and
// memory capacity. A task has one processing time per pool; the DAG
// structure, file sizes and communication delays are shared with the
// dual-memory model (communications between any two distinct pools cost the
// edge's Comm time, during which the file resides in both pools).
//
// MemHEFT and MemMinMin carry over unchanged conceptually: the upward rank
// averages processing times over all pools, and the earliest-start-time
// computation evaluates every pool with the same four components
// (resource, precedence, task memory, communication memory). With exactly
// two pools the algorithms reproduce the decisions of internal/core
// bit-for-bit, which the tests verify.
//
// The engine is incremental, running the same architecture as the dual
// fast path: an epoch-memoized Partial (see partial.go), session-owned
// memos in Caches (mean ranks, priority lists, statics, validation,
// recycled buffers), and batched staircase splices. The pre-incremental
// eager code is retained in naive.go as MemHEFTReference / MemMinMinReference,
// the oracles the golden-equivalence tests compare against.
package multi

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dag"
	"repro/internal/platform"
)

// rankStride is how many tasks the ranking/statics loops process between
// cooperative context polls, matching the dual engine's stride.
const rankStride = 1024

// Pool is one memory with its attached identical processors.
type Pool struct {
	Procs    int
	Capacity int64
}

// Platform is an ordered list of pools. Processor indices are global: pool
// 0 owns processors [0, Pools[0].Procs), pool 1 the next block, and so on.
type Platform struct {
	Pools []Pool
}

// NewPlatform builds a platform from pools.
func NewPlatform(pools ...Pool) Platform { return Platform{Pools: pools} }

// FromDualPlatform lifts a dual-memory platform into its 2-pool equivalent:
// pool 0 is blue, pool 1 is red.
func FromDualPlatform(p platform.Platform) Platform {
	return NewPlatform(
		Pool{Procs: p.PBlue, Capacity: p.MBlue},
		Pool{Procs: p.PRed, Capacity: p.MRed},
	)
}

// Dual projects a 2-pool platform back onto the dual-memory model (pool 0
// blue, pool 1 red); ok is false for any other pool count. This is the
// bridge the session layer uses to route 2-pool requests onto the
// incremental dual-memory engine.
func (p Platform) Dual() (dp platform.Platform, ok bool) {
	if len(p.Pools) != 2 {
		return platform.Platform{}, false
	}
	return platform.New(p.Pools[0].Procs, p.Pools[1].Procs, p.Pools[0].Capacity, p.Pools[1].Capacity), true
}

// Unbounded returns the same platform with every pool's capacity unlimited.
func (p Platform) Unbounded() Platform {
	return p.WithUniformBounds(platform.Unlimited)
}

// WithUniformBounds returns the same platform with every pool capacity set
// to c.
func (p Platform) WithUniformBounds(c int64) Platform {
	pools := make([]Pool, len(p.Pools))
	for k, pool := range p.Pools {
		pool.Capacity = c
		pools[k] = pool
	}
	return Platform{Pools: pools}
}

// Capacity returns the capacity of pool k.
func (p Platform) Capacity(k int) int64 { return p.Pools[k].Capacity }

// String formats the platform compactly, one procs@capacity entry per pool.
func (p Platform) String() string {
	var b strings.Builder
	b.WriteString("platform{")
	for k, pool := range p.Pools {
		if k > 0 {
			b.WriteByte(' ')
		}
		cap := "inf"
		if pool.Capacity < platform.Unlimited {
			cap = fmt.Sprintf("%d", pool.Capacity)
		}
		fmt.Fprintf(&b, "%d@%s", pool.Procs, cap)
	}
	b.WriteString("}")
	return b.String()
}

// NumPools returns the number of memory pools.
func (p Platform) NumPools() int { return len(p.Pools) }

// TotalProcs returns the total processor count.
func (p Platform) TotalProcs() int {
	n := 0
	for _, pool := range p.Pools {
		n += pool.Procs
	}
	return n
}

// ProcRange returns the half-open global processor interval of pool k.
func (p Platform) ProcRange(k int) (lo, hi int) {
	for i := 0; i < k; i++ {
		lo += p.Pools[i].Procs
	}
	return lo, lo + p.Pools[k].Procs
}

// PoolOf returns the pool owning global processor index proc.
func (p Platform) PoolOf(proc int) int {
	for k, pool := range p.Pools {
		if proc < pool.Procs {
			return k
		}
		proc -= pool.Procs
	}
	return -1
}

// Validate rejects platforms without processors or with negative fields.
func (p Platform) Validate() error {
	if len(p.Pools) == 0 {
		return fmt.Errorf("multi: no pools")
	}
	total := 0
	for i, pool := range p.Pools {
		if pool.Procs < 0 {
			return fmt.Errorf("multi: pool %d has negative processor count", i)
		}
		if pool.Capacity < 0 {
			return fmt.Errorf("multi: pool %d has negative capacity", i)
		}
		total += pool.Procs
	}
	if total == 0 {
		return fmt.Errorf("multi: no processors")
	}
	return nil
}

// Instance couples the DAG structure (files and communication delays come
// from the graph's edges) with a per-pool timing matrix. The graph's WBlue
// and WRed fields are ignored.
type Instance struct {
	G     *dag.Graph
	Times [][]float64 // Times[task][pool]
}

// NewInstance wraps a graph and timing matrix.
func NewInstance(g *dag.Graph, times [][]float64) *Instance {
	return &Instance{G: g, Times: times}
}

// FromDual converts a dual-memory graph into a 2-pool instance whose pool 0
// carries the blue times and pool 1 the red times.
func FromDual(g *dag.Graph) *Instance {
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(dag.TaskID(i))
		times[i] = []float64{t.WBlue, t.WRed}
	}
	return &Instance{G: g, Times: times}
}

// Time returns the processing time of task id on pool k.
func (in *Instance) Time(id dag.TaskID, k int) float64 { return in.Times[id][k] }

// Validate checks the matrix shape against the graph and platform.
func (in *Instance) Validate(p Platform) error {
	if in == nil || in.G == nil {
		return fmt.Errorf("multi: nil graph")
	}
	if err := in.G.Validate(); err != nil {
		return err
	}
	return in.validateMatrix(p.NumPools())
}

// validateMatrix is the timing-matrix half of Validate, split out so the
// session cache layer can memoize it per pool count.
func (in *Instance) validateMatrix(nPools int) error {
	if len(in.Times) != in.G.NumTasks() {
		return fmt.Errorf("multi: timing matrix has %d rows for %d tasks", len(in.Times), in.G.NumTasks())
	}
	for i, row := range in.Times {
		if len(row) != nPools {
			return fmt.Errorf("multi: task %d has %d pool times for %d pools", i, len(row), nPools)
		}
		for k, w := range row {
			if w < 0 {
				return fmt.Errorf("multi: task %d has negative time on pool %d", i, k)
			}
		}
	}
	return nil
}

// MeanRanks returns the multi-pool upward ranks: the per-task mean over
// pools of the processing time, plus the max over children of their rank
// plus half the communication cost — the direct generalisation of §5.1.
// The context (nil allowed) is polled cooperatively so a cold ranking
// phase stays interruptible; cancellation returns ctx.Err().
func (in *Instance) MeanRanks(ctx context.Context) ([]float64, error) {
	rev, err := in.G.ReverseTopologicalOrder()
	if err != nil {
		return nil, err
	}
	nPools := len(in.Times[0])
	rank := make([]float64, in.G.NumTasks())
	for step, id := range rev {
		if ctx != nil && step%rankStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		mean := 0.0
		for _, w := range in.Times[id] {
			mean += w
		}
		mean /= float64(nPools)
		best := 0.0
		for _, e := range in.G.Out(id) {
			edge := in.G.Edge(e)
			if v := rank[edge.To] + edge.Comm/2; v > best {
				best = v
			}
		}
		rank[id] = mean + best
	}
	return rank, nil
}
