package multi

import (
	"context"
	"math"

	"repro/internal/platform"
)

// Trace records the committed placement sequence of one k-pool heuristic
// run so a later run on a platform with equal pool shapes and no larger
// capacities can replay the prefix instead of re-deriving it (the dual
// engine's core.Trace, generalised). A stored trace must never be mutated
// afterwards: replay reads it concurrently from forked sessions.
type Trace struct {
	// Platform is the platform the trace was recorded on.
	Platform Platform
	// Cands is the commit sequence: one fully resolved candidate per task
	// in commit order.
	Cands []Candidate
	// Complete reports whether the recorded run scheduled every task.
	Complete bool
	// MinMargin[k] is the minimum, over the recorded steps placed on pool
	// k, of the slack each step's memory fits had when committed
	// (math.MaxInt64 when no bounded fit was recorded on k, -1 when the
	// margins of a mirrored prefix could not be derived). It powers the
	// FullReplayOn shortcut; see core.Trace.MinMargin for the argument.
	MinMargin []int64
}

// ReplayEligible reports whether a trace recorded on prev may be replayed
// on next: same pool count, identical per-pool processor counts, and no
// capacity grown. Shrinking capacities only delays or blocks placements —
// with an identical committed prefix every staircase holds less free
// memory, so earliest-fit times are monotone non-decreasing and blocked
// tasks stay blocked — which the per-step verification catches exactly;
// growing a capacity can unblock a previously skipped task, which replay
// cannot see, so it is rejected. Any two unlimited capacities compare
// equal regardless of their numeric encoding.
func ReplayEligible(prev, next Platform) bool {
	if len(prev.Pools) != len(next.Pools) {
		return false
	}
	for k := range prev.Pools {
		if prev.Pools[k].Procs != next.Pools[k].Procs {
			return false
		}
		pc, nc := prev.Pools[k].Capacity, next.Pools[k].Capacity
		if nc >= platform.Unlimited {
			if pc < platform.Unlimited {
				return false
			}
			continue
		}
		if nc > pc {
			return false
		}
	}
	return true
}

// beginRun applies the warm-start options to a freshly reset Partial:
// resets the recording trace, replays the verified prefix of opt.Replay
// when the trace is eligible for p, mirrors the replayed prefix into the
// recording, and reports the replay counters. It returns the number of
// placements committed by replay; the only error is cooperative
// cancellation mid-replay.
func (st *Partial) beginRun(ctx context.Context, p Platform, opt Options) (int, error) {
	if rec := opt.Record; rec != nil {
		rec.Platform = p
		rec.Cands = rec.Cands[:0]
		rec.Complete = false
		rec.MinMargin = rec.MinMargin[:0]
		for range p.Pools {
			rec.MinMargin = append(rec.MinMargin, int64(math.MaxInt64))
		}
	}
	replayed := 0
	if tr := opt.Replay; tr != nil && ReplayEligible(tr.Platform, p) {
		var err error
		replayed, err = st.replayPrefix(ctx, tr)
		if err != nil {
			return replayed, err
		}
		if rec := opt.Record; rec != nil && replayed > 0 {
			rec.Cands = append(rec.Cands, tr.Cands[:replayed]...)
			for k := range rec.MinMargin {
				tm := int64(-1) // foreign trace without margins: never shortcut
				if k < len(tr.MinMargin) {
					tm = tr.MinMargin[k]
				}
				if m := prefixMargin(tr.Platform.Pools[k].Capacity, p.Pools[k].Capacity, tm); m < rec.MinMargin[k] {
					rec.MinMargin[k] = m
				}
			}
		}
	}
	if opt.Stats != nil && opt.Replay != nil {
		opt.Stats.Replayed += replayed
		opt.Stats.ReplayTruncated = replayed < len(opt.Replay.Cands)
	}
	return replayed, nil
}

// replayPrefix commits the longest verified prefix of tr onto st and
// returns its length. Each step is verified by replayVerify — much cheaper
// than re-deriving the decision, and equally exact — so a full replay costs
// little more than the commits themselves; the first step that no longer
// verifies stops the replay and the caller's normal loop takes over.
func (st *Partial) replayPrefix(ctx context.Context, tr *Trace) (int, error) {
	for i := range tr.Cands {
		if err := ctxErr(ctx, i); err != nil {
			return i, err
		}
		rc := tr.Cands[i]
		if !rc.Feasible() || !st.Ready(rc.Task) {
			return i, nil
		}
		if !st.replayVerify(rc) {
			return i, nil
		}
		st.Commit(rc)
	}
	return len(tr.Cands), nil
}

// replayVerify decides, without re-evaluating any candidate, whether the
// recorded candidate rc is still bit-exactly what the engine would compute
// and commit at this position (core.Partial's replayVerify, generalised to
// k pools — see there for the full argument). With an identical verified
// prefix every non-staircase EST component matches the recording run bit
// for bit, and every staircase holds the same reservations over a capacity
// that did not grow, so fit times are monotone non-decreasing: the recorded
// EST remains exact iff both fits of rc's pool still hold at their recorded
// positions. No other pool needs evaluation — each one's EFT was no better
// than rc's when recorded (strictly worse for lower pool indices, by the
// lowest-pool tie-break) and can only have grown since.
func (st *Partial) replayVerify(rc Candidate) bool {
	k := rc.Pool
	_, cross, cmu := st.staticFor(rc.Task, k)
	if cmu != rc.CMu {
		return false // not this prefix's recording; fall back to scratch
	}
	if st.unbounded[k] {
		return true
	}
	if need := cross + st.outFiles[rc.Task]; need != 0 && !st.free[k].FitsFrom(rc.EST, need) {
		return false
	}
	return cross == 0 || st.free[k].FitsFrom(rc.EST-cmu, cross)
}

// recordStep appends c to the recording trace together with the pre-commit
// slack of its memory fits, folded into rec.MinMargin. Engines call it in
// place of a plain append, immediately before Commit(c): the slacks must be
// measured on the staircase the fits were evaluated against.
func (st *Partial) recordStep(rec *Trace, c Candidate) {
	rec.Cands = append(rec.Cands, c)
	k := c.Pool
	if st.unbounded[k] {
		return
	}
	_, cross, cmu := st.staticFor(c.Task, k)
	if need := cross + st.outFiles[c.Task]; need > 0 {
		if m := st.free[k].SlackAt(c.EST) - need; m < rec.MinMargin[k] {
			rec.MinMargin[k] = m
		}
	}
	if cross > 0 {
		if m := st.free[k].SlackAt(c.EST-cmu) - cross; m < rec.MinMargin[k] {
			rec.MinMargin[k] = m
		}
	}
}

// prefixMargin translates a recorded margin to the capacity a prefix of the
// trace was just replayed on — see core.prefixMargin for the argument.
func prefixMargin(prevCap, nextCap, margin int64) int64 {
	if nextCap >= platform.Unlimited {
		return margin // nothing shrank (eligibility: prevCap is unlimited too)
	}
	if prevCap >= platform.Unlimited {
		return -1
	}
	return margin - (prevCap - nextCap)
}

// FullReplayOn reports whether replaying the complete trace on next is
// guaranteed to verify every step, making the run's schedule bit-identical
// to the recorded one — so a caller holding that schedule can reuse it
// without running the engine at all. See core.Trace.FullReplayOn for the
// soundness argument; the per-memory margin check is applied per pool here.
func (tr *Trace) FullReplayOn(next Platform) bool {
	if tr == nil || !tr.Complete || !ReplayEligible(tr.Platform, next) {
		return false
	}
	if len(tr.MinMargin) != len(next.Pools) {
		return false
	}
	for k := range next.Pools {
		if !marginOK(tr.Platform.Pools[k].Capacity, next.Pools[k].Capacity, tr.MinMargin[k]) {
			return false
		}
	}
	return true
}

// marginOK is the per-pool margin check of FullReplayOn.
func marginOK(prevCap, nextCap, margin int64) bool {
	if nextCap >= platform.Unlimited {
		return true // eligibility guarantees prevCap is unlimited too
	}
	if prevCap >= platform.Unlimited {
		return false // a bounded run of an unbounded recording must verify per step
	}
	return prevCap-nextCap <= margin
}
