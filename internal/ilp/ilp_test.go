package ilp

import (
	"math"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/exact"
	"repro/internal/mip"
	"repro/internal/platform"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// twoChain is the smallest interesting instance: a -> b with a file.
func twoChain(wa1, wa2, wb1, wb2 float64, file int64, comm float64) *dag.Graph {
	g := dag.New()
	a := g.AddTask("a", wa1, wa2)
	b := g.AddTask("b", wb1, wb2)
	g.MustAddEdge(a, b, file, comm)
	return g
}

func TestModelSizesMatchPaperComplexity(t *testing.T) {
	// O(m^2 + mn) variables and constraints (§4).
	g := dag.PaperExample()
	md, err := Build(g, platform.New(1, 1, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	n, m := 4, 4
	if md.NumVariables() > 1+4*n+m+4*n*n+6*n*m+4*m*m {
		t.Fatalf("too many variables: %d", md.NumVariables())
	}
	if md.NumBinaries() == 0 || md.NumBinaries() >= md.NumVariables() {
		t.Fatalf("binaries = %d of %d", md.NumBinaries(), md.NumVariables())
	}
	// Every constraint family of Figure 6/7 must be present.
	for _, family := range []string{
		"1-makespan", "2-comm-after-src", "3-comm-before-dst", "4-m", "5-mp",
		"6-sigma", "7-sigmap", "8-c", "9-cp", "10-d", "11-dp", "12-eps",
		"13-procmem", "14-m-pair", "15-sigma-pair", "16-mp-c", "17-cp-pair",
		"18-dp-pair", "19-m-ge-sigma", "20-sigma-ge-c", "21-c-ge-d",
		"22-d-ge-m", "23-delta", "24-work", "25-resource",
		"26a", "26b", "26c", "26d", "26-task-mem",
		"27a", "27b", "27c", "27d", "27-comm-mem",
	} {
		if md.RowCount(family) == 0 {
			t.Fatalf("constraint family %s missing", family)
		}
	}
}

func TestBuildRejectsHugeGraphs(t *testing.T) {
	g := dag.Chain(80, 1, 1, 1, 1)
	if _, err := Build(g, platform.New(1, 1, 10, 10)); err == nil {
		t.Fatal("80-task model accepted")
	}
}

func TestSingleTask(t *testing.T) {
	g := dag.New()
	g.AddTask("only", 5, 2)
	res, err := Solve(g, platform.New(1, 1, 1, 1), mip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal || !approx(res.Makespan, 2) {
		t.Fatalf("res = %+v", res)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoChainPrefersFasterMemory(t *testing.T) {
	// a: blue 1 / red 10; b: blue 2 / red 10; both on blue, no comm:
	// makespan 3.
	g := twoChain(1, 10, 2, 10, 1, 5)
	res, err := Solve(g, platform.New(1, 1, 10, 10), mip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal || !approx(res.Makespan, 3) {
		t.Fatalf("res = %+v", res)
	}
	s := res.Schedule
	if s.MemoryOf(0) != platform.Blue || s.MemoryOf(1) != platform.Blue {
		t.Fatal("tasks not both on blue")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoChainCrossMemoryPaysCommunication(t *testing.T) {
	// a: blue 1 / red 10; b: blue 10 / red 1; comm 3:
	// split: 1 + 3 + 1 = 5; all blue: 11; all red: 11. Optimal 5.
	g := twoChain(1, 10, 10, 1, 2, 3)
	res, err := Solve(g, platform.New(1, 1, 10, 10), mip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal || !approx(res.Makespan, 5) {
		t.Fatalf("res = %+v", res)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.MemoryOf(0) != platform.Blue || res.Schedule.MemoryOf(1) != platform.Red {
		t.Fatal("expected blue -> red split")
	}
}

func TestTwoChainMemoryBoundForcesOneMemory(t *testing.T) {
	// Same costs as the split test, but the red memory is too small for
	// the file: everything must stay on blue -> makespan 11.
	g := twoChain(1, 10, 10, 1, 2, 3)
	res, err := Solve(g, platform.New(1, 1, 10, 1), mip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal || !approx(res.Makespan, 11) {
		t.Fatalf("res = %+v", res)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInfeasibleWhenNoMemoryFits(t *testing.T) {
	g := twoChain(1, 1, 1, 1, 5, 1)
	res, err := Solve(g, platform.New(1, 1, 2, 2), mip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Infeasible {
		t.Fatalf("res = %+v", res)
	}
}

func TestForkTwoChildrenResourceContention(t *testing.T) {
	// A source with two equal children on a 1+1 platform. Children can
	// run in parallel only by splitting across memories (cost: comm 1).
	// All-blue: 1 + 2 + 2 = 5. Split: 1 + max(2, 1+2) = 4.
	g := dag.New()
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("b", 2, 2)
	c := g.AddTask("c", 2, 2)
	g.MustAddEdge(a, b, 1, 1)
	g.MustAddEdge(a, c, 1, 1)
	res, err := Solve(g, platform.New(1, 1, 10, 10), mip.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal || !approx(res.Makespan, 4) {
		t.Fatalf("res = %+v", res)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestILPMatchesExactSearchOnTinyInstances(t *testing.T) {
	// Cross-validate the two "optimal" engines on instances where the
	// eager-list space provably contains an optimal schedule (single
	// chains and a two-child fork with ample memory).
	cases := []*dag.Graph{
		twoChain(2, 3, 4, 1, 1, 2),
		twoChain(3, 1, 1, 3, 2, 1),
	}
	for i, g := range cases {
		p := platform.New(1, 1, 10, 10)
		ires, err := Solve(g, p, mip.Options{MaxNodes: 50000})
		if err != nil {
			t.Fatal(err)
		}
		eres, err := exact.Solve(tctx, g, p, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ires.Status != mip.Optimal || eres.Status != exact.Optimal {
			t.Fatalf("case %d: statuses %v / %v", i, ires.Status, eres.Status)
		}
		if !approx(ires.Makespan, eres.Makespan) {
			t.Fatalf("case %d: ILP %g vs exact %g", i, ires.Makespan, eres.Makespan)
		}
	}
}

func TestILPNeverWorseThanExactSearch(t *testing.T) {
	// The ILP optimises over all schedules; the list-space search over a
	// subset. On a memory-tight fork the ILP must be at least as good.
	g := dag.New()
	a := g.AddTask("a", 2, 2)
	b := g.AddTask("b", 3, 3)
	g.MustAddEdge(a, b, 2, 1)
	p := platform.New(1, 1, 4, 4)
	ires, err := Solve(g, p, mip.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	eres, err := exact.Solve(tctx, g, p, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ires.Status != mip.Optimal || eres.Status != exact.Optimal {
		t.Fatalf("statuses %v / %v", ires.Status, eres.Status)
	}
	if ires.Makespan > eres.Makespan+1e-6 {
		t.Fatalf("ILP %g worse than list-space %g", ires.Makespan, eres.Makespan)
	}
}

func TestPaperExampleILP(t *testing.T) {
	// The full 4-task example: optimal makespan 6 with ample memory
	// (see §3). ~245 variables. With an open budget the branch and bound
	// proves optimality at 6 in a few minutes (verified); the capped run
	// here checks the model end to end and the no-better-than-optimum
	// invariant while keeping the suite fast.
	if testing.Short() {
		t.Skip("full 4-task ILP solve is slow; run without -short")
	}
	g := dag.PaperExample()
	res, err := Solve(g, platform.New(1, 1, 100, 100), mip.Options{
		MaxNodes: 400, Timeout: 45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == mip.Optimal && !approx(res.Makespan, 6) {
		t.Fatalf("optimal makespan %g, want 6", res.Makespan)
	}
	if res.Schedule != nil {
		if err := res.Schedule.Validate(); err != nil {
			t.Fatal(err)
		}
		if res.Makespan < 6-1e-6 {
			t.Fatalf("ILP beat the true optimum: %g < 6", res.Makespan)
		}
	}
}

func TestDecodeRejectsOverlappingProcessors(t *testing.T) {
	g := twoChain(1, 1, 1, 1, 1, 1)
	md, err := Build(g, platform.New(1, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-craft an inconsistent solution: both tasks at t=0 on blue with
	// w=1 each but only one blue processor.
	x := make([]float64, md.NumVariables())
	x[md.vW[0]], x[md.vW[1]] = 1, 1
	if _, err := md.Decode(x); err == nil {
		t.Fatal("overlapping decode accepted")
	}
}
