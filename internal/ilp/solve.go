package ilp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/mip"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Result is the outcome of solving the ILP.
type Result struct {
	Status   mip.Status
	Makespan float64            // meaningful when Status is Optimal or Feasible
	Schedule *schedule.Schedule // decoded schedule, when available
	Nodes    int                // branch-and-bound nodes explored
}

// Solve builds and solves the ILP for g on p, then decodes the solution into
// a concrete schedule. The options bound the branch-and-bound effort; with a
// hit budget the result may be Feasible (incumbent, not proven optimal) or
// Unknown.
func Solve(g *dag.Graph, p platform.Platform, opt mip.Options) (*Result, error) {
	md, err := Build(g, p)
	if err != nil {
		return nil, err
	}
	return md.Solve(opt)
}

// Solve runs branch and bound on the assembled model and decodes the
// incumbent, if any.
func (md *Model) Solve(opt mip.Options) (*Result, error) {
	res, err := mip.Solve(&mip.Problem{LP: md.LP, Integer: md.Ints}, opt)
	if err != nil {
		return nil, err
	}
	out := &Result{Status: res.Status, Nodes: res.Nodes}
	if res.Status != mip.Optimal && res.Status != mip.Feasible {
		return out, nil
	}
	out.Makespan = res.Objective
	s, err := md.Decode(res.X)
	if err != nil {
		return nil, fmt.Errorf("ilp: decoding incumbent: %w", err)
	}
	out.Schedule = s
	return out, nil
}

// Decode converts an (integral) solution vector of the model into a
// schedule: memories come from the b variables, start times from t and tau,
// and processor indices are reassigned greedily inside each memory (the
// model's resource constraint (25) guarantees at most P-mu tasks of memory
// mu overlap at any instant, so the greedy assignment always succeeds).
func (md *Model) Decode(x []float64) (*schedule.Schedule, error) {
	g, p := md.G, md.P
	s := schedule.New(g, p)
	n := g.NumTasks()

	type placed struct {
		id            dag.TaskID
		start, finish float64
		mem           platform.Memory
	}
	tasks := make([]placed, n)
	for i := 0; i < n; i++ {
		mem := platform.Blue
		if x[md.vB[i]] > 0.5 {
			mem = platform.Red
		}
		start := x[md.vT[i]]
		if start < 0 && start > -1e-6 {
			start = 0
		}
		tasks[i] = placed{id: dag.TaskID(i), start: start, finish: start + x[md.vW[i]], mem: mem}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tasks[order[a]], tasks[order[b]]
		if ta.start != tb.start {
			return ta.start < tb.start
		}
		return ta.finish < tb.finish
	})
	avail := make([]float64, p.TotalProcs())
	for _, idx := range order {
		t := tasks[idx]
		lo, hi := p.ProcRange(t.mem)
		best, bestAvail := -1, math.Inf(-1)
		for proc := lo; proc < hi; proc++ {
			if avail[proc] <= t.start+1e-6 && avail[proc] > bestAvail {
				best, bestAvail = proc, avail[proc]
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("ilp: no free processor on %s for task %d at t=%g", t.mem, t.id, t.start)
		}
		avail[best] = t.finish
		s.Tasks[t.id] = schedule.TaskPlacement{Start: t.start, Proc: best}
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(dag.EdgeID(e))
		if tasks[edge.From].mem != tasks[edge.To].mem {
			s.CommStart[e] = x[md.vTau[e]]
		}
	}
	return s, nil
}

// NumVariables returns the number of LP variables in the model.
func (md *Model) NumVariables() int { return md.LP.NumVars }

// NumConstraints returns the number of LP rows in the model.
func (md *Model) NumConstraints() int { return len(md.LP.Constraints) }

// NumBinaries returns the number of integrality-constrained variables.
func (md *Model) NumBinaries() int { return len(md.Ints) }
