// Package ilp builds the paper's Integer Linear Program formulation of the
// memory-constrained scheduling problem (§4, Figures 5-7) and decodes its
// solutions back into schedules. Together with internal/lp and internal/mip
// it plays the role the CPLEX solver plays in the paper: computing optimal
// schedules for small instances so the heuristics' absolute performance can
// be assessed.
//
// Faithfulness notes (the report has a few internal inconsistencies; this
// implementation follows the variant that makes the constraint system
// coherent and documents each choice):
//
//   - Figure 5 says b_i = 1 means blue, but constraints (13), (24) and the
//     Figure-7 version of (26)-(27) are only consistent with b_i = 1 meaning
//     *red* (e.g. (13b) forces p_i >= P1+1 when b_i = 1). We adopt b_i = 1
//     <=> red.
//   - Constraint (27) bounds the memory of the *destination* of the
//     communication (its indicator terms use delta_kj and delta_pj), so its
//     right-hand side uses b_j; Figures 6 and 7 disagree on the subscript.
//   - Diagonal indicator variables are substituted by their forced values:
//     m_ii = 1 and reflexive c'_ee = 1 (both from the >=1 pairing
//     constraints (14)/(17)), sigma_ii = 0 and d'_ee = 0 (from (15)/(18)),
//     delta_ii = 1 (from (23)). This both shrinks the model and matches how
//     the memory constraint (26) counts a task's own input and output
//     files.
//
// The model has O(m^2 + mn) variables and constraints, exactly as the paper
// states, so only small instances are tractable; Build rejects graphs whose
// model would exceed a configurable size.
package ilp

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/lp"
	"repro/internal/platform"
)

// Model is the assembled ILP for one (graph, platform) instance.
type Model struct {
	G    *dag.Graph
	P    platform.Platform
	LP   *lp.Problem
	Ints []int   // variables constrained to be integral (all binaries)
	Mmax float64 // the big-M horizon

	// Variable indices.
	vMakespan int
	vT        []int // start time per task
	vTau      []int // start time per communication (edge)
	vW        []int // actual work per task
	vP        []int // processor index per task (continuous, 1-based)
	vB        []int // 1 iff the task runs on the red memory

	vEps    map[[2]int]int // eps[i][j], ordered pairs i != j
	vDelta  map[[2]int]int // delta[i][j], unordered pairs i < j
	vM      map[[2]int]int // m[i][j], ordered pairs i != j
	vSigma  map[[2]int]int // sigma[i][j], ordered pairs i != j
	vMp     map[[2]int]int // m'[k][e], task x edge
	vSigmaP map[[2]int]int // sigma'[k][e], task x edge
	vC      map[[2]int]int // c[e][k], edge x task
	vD      map[[2]int]int // d[e][k], edge x task
	vCp     map[[2]int]int // c'[e][f], ordered edge pairs e != f
	vDp     map[[2]int]int // d'[e][f], ordered edge pairs e != f
	vAlpha  map[[2]int]int // alpha[e][i], edge x task (linearisation)
	vBeta   map[[2]int]int // beta[e][i]
	vAlphaP map[[2]int]int // alpha'[e][f], all edge pairs
	vBetaP  map[[2]int]int // beta'[e][f]

	rows map[string]int // constraint-family row counts, for tests/reports
}

// MaxVariables guards against accidentally building an intractable model.
const MaxVariables = 20000

// expr is a small linear expression: sum of coeff*var plus a constant. It
// lets constraint builders treat substituted diagonal variables (constants)
// and real variables uniformly.
type expr struct {
	coeffs map[int]float64
	c      float64
}

func newExpr() *expr { return &expr{coeffs: map[int]float64{}} }

func (e *expr) add(v int, coef float64) *expr {
	if v < 0 {
		panic("ilp: negative variable index in expression")
	}
	e.coeffs[v] += coef
	return e
}

func (e *expr) addConst(c float64) *expr { e.c += c; return e }

// addTerm adds coef * t where t is either a variable or a constant.
func (e *expr) addTerm(t term, coef float64) *expr {
	if t.isVar {
		return e.add(t.v, coef)
	}
	return e.addConst(coef * t.c)
}

// term is a variable-or-constant.
type term struct {
	isVar bool
	v     int
	c     float64
}

func varTerm(v int) term       { return term{isVar: true, v: v} }
func constTerm(c float64) term { return term{c: c} }

// Build assembles the ILP for g on p.
func Build(g *dag.Graph, p platform.Platform) (*Model, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := g.NumTasks(), g.NumEdges()
	est := 1 + 4*n + m + 4*n*n + 6*n*m + 4*m*m
	if est > MaxVariables {
		return nil, fmt.Errorf("ilp: model would need ~%d variables (> %d); the ILP is only meant for small instances", est, MaxVariables)
	}

	md := &Model{
		G: g, P: p,
		LP:   &lp.Problem{},
		Mmax: g.MaxTime(),
		vEps: map[[2]int]int{}, vDelta: map[[2]int]int{},
		vM: map[[2]int]int{}, vSigma: map[[2]int]int{},
		vMp: map[[2]int]int{}, vSigmaP: map[[2]int]int{},
		vC: map[[2]int]int{}, vD: map[[2]int]int{},
		vCp: map[[2]int]int{}, vDp: map[[2]int]int{},
		vAlpha: map[[2]int]int{}, vBeta: map[[2]int]int{},
		vAlphaP: map[[2]int]int{}, vBetaP: map[[2]int]int{},
		rows: map[string]int{},
	}
	md.build()
	return md, nil
}

func (md *Model) newVar() int {
	v := md.LP.NumVars
	md.LP.NumVars++
	return v
}

func (md *Model) newBinary() int {
	v := md.newVar()
	md.Ints = append(md.Ints, v)
	md.constrain("binary-ub", newExpr().add(v, 1), lp.LE, 1)
	return v
}

// constrain appends lhs (sense) rhs, folding the expression constant into
// the right-hand side, and counts the row under the given family name.
func (md *Model) constrain(family string, lhs *expr, sense lp.Sense, rhs float64) {
	md.LP.AddConstraint(lhs.coeffs, sense, rhs-lhs.c)
	md.rows[family]++
}

// RowCount reports how many rows a constraint family produced.
func (md *Model) RowCount(family string) int { return md.rows[family] }

// Accessors for the indicator terms, substituting forced diagonal values.

func (md *Model) mTerm(i, j int) term {
	if i == j {
		return constTerm(1) // forced by (14)
	}
	return varTerm(md.vM[[2]int{i, j}])
}

func (md *Model) sigmaTerm(i, j int) term {
	if i == j {
		return constTerm(0) // forced by (15)
	}
	return varTerm(md.vSigma[[2]int{i, j}])
}

func (md *Model) deltaTerm(i, j int) term {
	if i == j {
		return constTerm(1) // forced by (23)
	}
	if i > j {
		i, j = j, i
	}
	return varTerm(md.vDelta[[2]int{i, j}])
}

func (md *Model) cpTerm(e, f int) term {
	if e == f {
		return constTerm(1) // forced by (17)
	}
	return varTerm(md.vCp[[2]int{e, f}])
}

func (md *Model) dpTerm(e, f int) term {
	if e == f {
		return constTerm(0) // forced by (18)
	}
	return varTerm(md.vDp[[2]int{e, f}])
}

func (md *Model) build() {
	g, p := md.G, md.P
	n, m := g.NumTasks(), g.NumEdges()
	Mmax := md.Mmax
	totalProcs := float64(p.TotalProcs())

	// --- Variables (Figure 5) ---
	md.vMakespan = md.newVar()
	md.vT = make([]int, n)
	md.vW = make([]int, n)
	md.vP = make([]int, n)
	md.vB = make([]int, n)
	for i := 0; i < n; i++ {
		md.vT[i] = md.newVar()
		md.vW[i] = md.newVar()
		md.vP[i] = md.newVar()
		md.vB[i] = md.newBinary()
	}
	md.vTau = make([]int, m)
	for e := 0; e < m; e++ {
		md.vTau[e] = md.newVar()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			md.vEps[[2]int{i, j}] = md.newBinary()
			md.vM[[2]int{i, j}] = md.newBinary()
			md.vSigma[[2]int{i, j}] = md.newBinary()
			if i < j {
				md.vDelta[[2]int{i, j}] = md.newBinary()
			}
		}
	}
	for k := 0; k < n; k++ {
		for e := 0; e < m; e++ {
			md.vMp[[2]int{k, e}] = md.newBinary()
			md.vSigmaP[[2]int{k, e}] = md.newBinary()
			md.vC[[2]int{e, k}] = md.newBinary()
			md.vD[[2]int{e, k}] = md.newBinary()
			md.vAlpha[[2]int{e, k}] = md.newBinary()
			md.vBeta[[2]int{e, k}] = md.newBinary()
		}
	}
	for e := 0; e < m; e++ {
		for f := 0; f < m; f++ {
			if e != f {
				md.vCp[[2]int{e, f}] = md.newBinary()
				md.vDp[[2]int{e, f}] = md.newBinary()
			}
			md.vAlphaP[[2]int{e, f}] = md.newBinary()
			md.vBetaP[[2]int{e, f}] = md.newBinary()
		}
	}

	// Objective: minimise the makespan.
	md.LP.Objective = make([]float64, md.LP.NumVars)
	md.LP.Objective[md.vMakespan] = 1

	commDur := func(e int) (*expr, float64) {
		// Actual duration of communication e as an expression:
		// (1 - delta_ij) * C_ij.
		edge := g.Edge(dag.EdgeID(e))
		dt := md.deltaTerm(int(edge.From), int(edge.To))
		ex := newExpr().addConst(edge.Comm)
		ex.addTerm(dt, -edge.Comm)
		return ex, edge.Comm
	}

	// --- Constraints (Figure 6) ---
	// (1) t_i + w_i <= M
	for i := 0; i < n; i++ {
		md.constrain("1-makespan", newExpr().add(md.vT[i], 1).add(md.vW[i], 1).add(md.vMakespan, -1), lp.LE, 0)
	}
	// (2) t_i + w_i <= tau_ij
	for e := 0; e < m; e++ {
		i := int(g.Edge(dag.EdgeID(e)).From)
		md.constrain("2-comm-after-src", newExpr().add(md.vT[i], 1).add(md.vW[i], 1).add(md.vTau[e], -1), lp.LE, 0)
	}
	// (3) tau_ij + (1-delta_ij)C_ij <= t_j
	for e := 0; e < m; e++ {
		edge := g.Edge(dag.EdgeID(e))
		dur, _ := commDur(e)
		ex := newExpr().add(md.vTau[e], 1).add(md.vT[int(edge.To)], -1)
		for v, cf := range dur.coeffs {
			ex.add(v, cf)
		}
		ex.addConst(dur.c)
		md.constrain("3-comm-before-dst", ex, lp.LE, 0)
	}
	// Big-M indicator pairs. defineOrder(x, y, v): v=1 if y > x
	// ("y - x - v*Mmax <= 0" and "y - x + (1-v)*Mmax >= 0").
	defineOrder := func(family string, xVars *expr, yVars *expr, v int) {
		a := newExpr()
		for vi, cf := range yVars.coeffs {
			a.add(vi, cf)
		}
		a.addConst(yVars.c)
		for vi, cf := range xVars.coeffs {
			a.add(vi, -cf)
		}
		a.addConst(-xVars.c)
		b := newExpr()
		for vi, cf := range a.coeffs {
			b.add(vi, cf)
		}
		b.addConst(a.c)
		a.add(v, -Mmax)
		md.constrain(family, a, lp.LE, 0)
		b.add(v, -Mmax)
		md.constrain(family, b, lp.GE, -Mmax)
	}
	startOf := func(i int) *expr { return newExpr().add(md.vT[i], 1) }
	finishOf := func(i int) *expr { return newExpr().add(md.vT[i], 1).add(md.vW[i], 1) }
	commStart := func(e int) *expr { return newExpr().add(md.vTau[e], 1) }
	commEnd := func(e int) *expr {
		ex := newExpr().add(md.vTau[e], 1)
		dur, _ := commDur(e)
		for v, cf := range dur.coeffs {
			ex.add(v, cf)
		}
		ex.addConst(dur.c)
		return ex
	}

	// (4) m_ij = 1 if t_j > t_i (i != j)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				defineOrder("4-m", startOf(i), startOf(j), md.vM[[2]int{i, j}])
			}
		}
	}
	// (5) m'_kij = 1 if tau_ij > t_k
	for k := 0; k < n; k++ {
		for e := 0; e < m; e++ {
			defineOrder("5-mp", startOf(k), commStart(e), md.vMp[[2]int{k, e}])
		}
	}
	// (6) sigma_ij = 1 if t_j > t_i + w_i
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				defineOrder("6-sigma", finishOf(i), startOf(j), md.vSigma[[2]int{i, j}])
			}
		}
	}
	// (7) sigma'_kij = 1 if tau_ij > t_k + w_k
	for k := 0; k < n; k++ {
		for e := 0; e < m; e++ {
			defineOrder("7-sigmap", finishOf(k), commStart(e), md.vSigmaP[[2]int{k, e}])
		}
	}
	// (8) c_ijk = 1 if t_k > tau_ij
	for e := 0; e < m; e++ {
		for k := 0; k < n; k++ {
			defineOrder("8-c", commStart(e), startOf(k), md.vC[[2]int{e, k}])
		}
	}
	// (9) c'_ijkp = 1 if tau_kp > tau_ij, (k,p) != (i,j)
	for e := 0; e < m; e++ {
		for f := 0; f < m; f++ {
			if e != f {
				defineOrder("9-cp", commStart(e), commStart(f), md.vCp[[2]int{e, f}])
			}
		}
	}
	// (10) d_ijk = 1 if t_k > comm-end(i,j)
	for e := 0; e < m; e++ {
		for k := 0; k < n; k++ {
			defineOrder("10-d", commEnd(e), startOf(k), md.vD[[2]int{e, k}])
		}
	}
	// (11) d'_ijkp = 1 if tau_kp > comm-end(i,j)
	for e := 0; e < m; e++ {
		for f := 0; f < m; f++ {
			if e != f {
				defineOrder("11-dp", commEnd(e), commStart(f), md.vDp[[2]int{e, f}])
			}
		}
	}
	// (12a) p_j - p_i - eps_ij |P| <= 0; (12b) p_j - p_i - 1 + (1-eps_ij)|P| >= 0.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			epsv := md.vEps[[2]int{i, j}]
			md.constrain("12-eps",
				newExpr().add(md.vP[j], 1).add(md.vP[i], -1).add(epsv, -totalProcs), lp.LE, 0)
			md.constrain("12-eps",
				newExpr().add(md.vP[j], 1).add(md.vP[i], -1).add(epsv, -totalProcs), lp.GE, 1-totalProcs)
		}
	}
	// (13) processor range vs memory side: b_i = 0 -> p_i <= P1 (blue);
	// b_i = 1 -> p_i >= P1+1 (red). Plus explicit 1 <= p_i <= P.
	for i := 0; i < n; i++ {
		md.constrain("13-procmem",
			newExpr().add(md.vP[i], 1).add(md.vB[i], -totalProcs), lp.LE, float64(p.PBlue))
		md.constrain("13-procmem",
			newExpr().add(md.vP[i], 1).add(md.vB[i], -(totalProcs+1)), lp.GE, float64(p.PBlue)-totalProcs)
		md.constrain("13-procmem", newExpr().add(md.vP[i], 1), lp.GE, 1)
		md.constrain("13-procmem", newExpr().add(md.vP[i], 1), lp.LE, totalProcs)
	}
	// (14) m_ij + m_ji >= 1; (15) sigma_ij + sigma_ji <= 1 (i<j; diagonals substituted).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			md.constrain("14-m-pair",
				newExpr().add(md.vM[[2]int{i, j}], 1).add(md.vM[[2]int{j, i}], 1), lp.GE, 1)
			md.constrain("15-sigma-pair",
				newExpr().add(md.vSigma[[2]int{i, j}], 1).add(md.vSigma[[2]int{j, i}], 1), lp.LE, 1)
		}
	}
	// (16) m'_kij + c_ijk >= 1.
	for k := 0; k < n; k++ {
		for e := 0; e < m; e++ {
			md.constrain("16-mp-c",
				newExpr().add(md.vMp[[2]int{k, e}], 1).add(md.vC[[2]int{e, k}], 1), lp.GE, 1)
		}
	}
	// (17) c'_ef + c'_fe >= 1; (18) d'_ef + d'_fe <= 1 (e<f; diagonals substituted).
	for e := 0; e < m; e++ {
		for f := e + 1; f < m; f++ {
			md.constrain("17-cp-pair",
				newExpr().add(md.vCp[[2]int{e, f}], 1).add(md.vCp[[2]int{f, e}], 1), lp.GE, 1)
			md.constrain("18-dp-pair",
				newExpr().add(md.vDp[[2]int{e, f}], 1).add(md.vDp[[2]int{f, e}], 1), lp.LE, 1)
		}
	}
	// (19) m_ik >= sigma_ik.
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k {
				md.constrain("19-m-ge-sigma",
					newExpr().add(md.vM[[2]int{i, k}], 1).add(md.vSigma[[2]int{i, k}], -1), lp.GE, 0)
			}
		}
	}
	// (20) sigma_ik >= c_ijk; (21) c_ijk >= d_ijk; (22) d_ijk >= m_jk.
	for e := 0; e < m; e++ {
		edge := g.Edge(dag.EdgeID(e))
		i, j := int(edge.From), int(edge.To)
		for k := 0; k < n; k++ {
			cv := md.vC[[2]int{e, k}]
			dv := md.vD[[2]int{e, k}]
			sig := md.sigmaTerm(i, k)
			ex := newExpr().add(cv, -1)
			ex.addTerm(sig, 1)
			md.constrain("20-sigma-ge-c", ex, lp.GE, 0)
			md.constrain("21-c-ge-d", newExpr().add(cv, 1).add(dv, -1), lp.GE, 0)
			mjk := md.mTerm(j, k)
			ex = newExpr().add(dv, 1)
			ex.addTerm(mjk, -1)
			md.constrain("22-d-ge-m", ex, lp.GE, 0)
		}
	}
	// (23) delta_ij <=> b_i == b_j (i<j).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dv := md.vDelta[[2]int{i, j}]
			bi, bj := md.vB[i], md.vB[j]
			md.constrain("23-delta", newExpr().add(dv, 1).add(bi, -1).add(bj, 1), lp.LE, 1)
			md.constrain("23-delta", newExpr().add(dv, 1).add(bj, -1).add(bi, 1), lp.LE, 1)
			md.constrain("23-delta", newExpr().add(dv, 1).add(bi, -1).add(bj, -1), lp.GE, -1)
			md.constrain("23-delta", newExpr().add(dv, 1).add(bi, 1).add(bj, 1), lp.GE, 1)
		}
	}
	// (24) w_i = b_i W_red + (1-b_i) W_blue, as one equality.
	for i := 0; i < n; i++ {
		t := g.Task(dag.TaskID(i))
		md.constrain("24-work",
			newExpr().add(md.vW[i], 1).add(md.vB[i], t.WBlue-t.WRed), lp.EQ, t.WBlue)
	}
	// (25) sigma_ij + sigma_ji + eps_ij + eps_ji >= 1 (i != j).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			md.constrain("25-resource",
				newExpr().
					add(md.vSigma[[2]int{i, j}], 1).add(md.vSigma[[2]int{j, i}], 1).
					add(md.vEps[[2]int{i, j}], 1).add(md.vEps[[2]int{j, i}], 1),
				lp.GE, 1)
		}
	}

	// --- Memory constraints, linearised (Figure 7) ---
	mBlue := math.Min(float64(p.MBlue), Mmax*1e6)
	mRed := math.Min(float64(p.MRed), Mmax*1e6)
	// (26a-d) alpha/beta definitions and (26) per-task memory bound.
	for i := 0; i < n; i++ {
		sum := newExpr()
		for e := 0; e < m; e++ {
			edge := g.Edge(dag.EdgeID(e))
			k, pp := int(edge.From), int(edge.To)
			al := md.vAlpha[[2]int{e, i}]
			be := md.vBeta[[2]int{e, i}]
			dik := md.deltaTerm(i, k)
			dip := md.deltaTerm(i, pp)
			mki := md.mTerm(k, i)
			dkpi := varTerm(md.vD[[2]int{e, i}])
			ckpi := varTerm(md.vC[[2]int{e, i}])
			spi := md.sigmaTerm(pp, i)

			// (26a) alpha >= delta_ik + m_ki - d_kpi - 1
			ex := newExpr().add(al, 1)
			ex.addTerm(dik, -1).addTerm(mki, -1).addTerm(dkpi, 1)
			md.constrain("26a", ex, lp.GE, -1)
			// (26b) 2 alpha <= delta_ik + m_ki - d_kpi
			ex = newExpr().add(al, 2)
			ex.addTerm(dik, -1).addTerm(mki, -1).addTerm(dkpi, 1)
			md.constrain("26b", ex, lp.LE, 0)
			// (26c) beta >= delta_ip + c_kpi - sigma_pi - 1
			ex = newExpr().add(be, 1)
			ex.addTerm(dip, -1).addTerm(ckpi, -1).addTerm(spi, 1)
			md.constrain("26c", ex, lp.GE, -1)
			// (26d) 2 beta <= delta_ip + c_kpi - sigma_pi
			ex = newExpr().add(be, 2)
			ex.addTerm(dip, -1).addTerm(ckpi, -1).addTerm(spi, 1)
			md.constrain("26d", ex, lp.LE, 0)

			sum.add(al, float64(edge.File)).add(be, float64(edge.File))
		}
		// (26) sum <= (1-b_i) Mblue + b_i Mred.
		sum.add(md.vB[i], mBlue-mRed)
		md.constrain("26-task-mem", sum, lp.LE, mBlue)
	}
	// (27a-d) alpha'/beta' definitions and (27) per-communication bound.
	for f := 0; f < m; f++ { // the communication being started: edge f = (i,j)
		fe := g.Edge(dag.EdgeID(f))
		j := int(fe.To)
		sum := newExpr()
		for e := 0; e < m; e++ { // the file possibly resident: edge e = (k,p)
			ee := g.Edge(dag.EdgeID(e))
			k, pp := int(ee.From), int(ee.To)
			al := md.vAlphaP[[2]int{e, f}]
			be := md.vBetaP[[2]int{e, f}]
			dkj := md.deltaTerm(k, j)
			dpj := md.deltaTerm(pp, j)
			mpk := varTerm(md.vMp[[2]int{k, f}])      // m'_k,(i,j)
			dpe := md.dpTerm(e, f)                    // d'_kp,ij
			cpe := md.cpTerm(e, f)                    // c'_kp,ij
			spj := varTerm(md.vSigmaP[[2]int{pp, f}]) // sigma'_p,(i,j)

			ex := newExpr().add(al, 1)
			ex.addTerm(dkj, -1).addTerm(mpk, -1).addTerm(dpe, 1)
			md.constrain("27a", ex, lp.GE, -1)
			ex = newExpr().add(al, 2)
			ex.addTerm(dkj, -1).addTerm(mpk, -1).addTerm(dpe, 1)
			md.constrain("27b", ex, lp.LE, 0)
			ex = newExpr().add(be, 1)
			ex.addTerm(dpj, -1).addTerm(cpe, -1).addTerm(spj, 1)
			md.constrain("27c", ex, lp.GE, -1)
			ex = newExpr().add(be, 2)
			ex.addTerm(dpj, -1).addTerm(cpe, -1).addTerm(spj, 1)
			md.constrain("27d", ex, lp.LE, 0)

			sum.add(al, float64(ee.File)).add(be, float64(ee.File))
		}
		// (27) sum <= (1-b_j) Mblue + b_j Mred + delta_ij Mmax-slack.
		// The delta term voids the constraint for intra-memory edges
		// (no transfer happens).
		bigSlack := mBlue + mRed + float64(g.TotalFiles())
		sum.add(md.vB[j], mBlue-mRed)
		dij := md.deltaTerm(int(fe.From), j)
		sum.addTerm(dij, -bigSlack)
		md.constrain("27-comm-mem", sum, lp.LE, mBlue)
	}
}
