// Package dag provides the weighted task-graph substrate used throughout the
// library. A Graph is a directed acyclic graph whose nodes are tasks with one
// processing time per resource type (blue and red, following the paper's
// colour convention for the CPU-side and accelerator-side memories) and whose
// edges carry a data file of a given size together with the time needed to
// move that file across memories.
//
// The package offers construction, validation, topological orders, the
// upward-rank priority of HEFT, memory requirement queries, and JSON / DOT
// serialisation. It contains no scheduling logic; see internal/core for the
// heuristics.
package dag

import (
	"errors"
	"fmt"
)

// TaskID identifies a task inside one Graph. IDs are dense: the first task
// added receives ID 0, the next ID 1, and so on.
type TaskID int

// EdgeID identifies an edge inside one Graph, densely numbered in insertion
// order.
type EdgeID int

// Task is a node of the graph. WBlue and WRed are the processing times of the
// task on a blue (CPU-side) and red (accelerator-side) processor. A task with
// both times equal to zero is a fictitious task (the paper uses chains of
// those to model broadcasts).
type Task struct {
	ID    TaskID
	Name  string
	WBlue float64
	WRed  float64
}

// IsFictitious reports whether the task has zero cost on both resources.
func (t Task) IsFictitious() bool { return t.WBlue == 0 && t.WRed == 0 }

// Edge is a dependency (From, To) carrying a file of size File that must
// reside in memory from the producer's start to the consumer's completion,
// and that takes Comm time units to move between memories when producer and
// consumer live on different ones.
type Edge struct {
	ID   EdgeID
	From TaskID
	To   TaskID
	File int64
	Comm float64
}

// Graph is a mutable DAG under construction and an immutable one once
// validated. The zero value is not usable; call New.
type Graph struct {
	tasks []Task
	edges []Edge

	out [][]EdgeID // outgoing edge IDs per task
	in  [][]EdgeID // incoming edge IDs per task

	edgeIndex map[[2]TaskID]EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{edgeIndex: make(map[[2]TaskID]EdgeID)}
}

// AddTask appends a task with the given name and processing times and returns
// its ID. Negative processing times are rejected by Validate, not here, so
// that construction code can stay error-free.
func (g *Graph) AddTask(name string, wBlue, wRed float64) TaskID {
	id := TaskID(len(g.tasks))
	g.tasks = append(g.tasks, Task{ID: id, Name: name, WBlue: wBlue, WRed: wRed})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge appends a dependency from src to dst carrying a file of the given
// size and cross-memory communication time, and returns its ID. It panics on
// out-of-range endpoints (a programming error) and returns an error on
// duplicate edges or self-loops.
func (g *Graph) AddEdge(src, dst TaskID, file int64, comm float64) (EdgeID, error) {
	if !g.validID(src) || !g.validID(dst) {
		panic(fmt.Sprintf("dag: AddEdge endpoints out of range: %d -> %d (have %d tasks)", src, dst, len(g.tasks)))
	}
	if src == dst {
		return 0, fmt.Errorf("dag: self-loop on task %d (%s)", src, g.tasks[src].Name)
	}
	key := [2]TaskID{src, dst}
	if _, dup := g.edgeIndex[key]; dup {
		return 0, fmt.Errorf("dag: duplicate edge %d -> %d", src, dst)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: src, To: dst, File: file, Comm: comm})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	g.edgeIndex[key] = id
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; convenient in generators whose
// construction is known to be well-formed.
func (g *Graph) MustAddEdge(src, dst TaskID, file int64, comm float64) EdgeID {
	id, err := g.AddEdge(src, dst, file, comm)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) validID(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Task returns the task with the given ID. It panics on out-of-range IDs.
func (g *Graph) Task(id TaskID) Task {
	if !g.validID(id) {
		panic(fmt.Sprintf("dag: task %d out of range (have %d)", id, len(g.tasks)))
	}
	return g.tasks[id]
}

// Edge returns the edge with the given ID. It panics on out-of-range IDs.
func (g *Graph) Edge(id EdgeID) Edge {
	if id < 0 || int(id) >= len(g.edges) {
		panic(fmt.Sprintf("dag: edge %d out of range (have %d)", id, len(g.edges)))
	}
	return g.edges[id]
}

// EdgeBetween returns the edge from src to dst, if any.
func (g *Graph) EdgeBetween(src, dst TaskID) (Edge, bool) {
	id, ok := g.edgeIndex[[2]TaskID{src, dst}]
	if !ok {
		return Edge{}, false
	}
	return g.edges[id], true
}

// Edges returns the internal edge slice, indexed by EdgeID in insertion
// order. The returned slice must not be modified; it exists so hot loops can
// avoid the per-call bounds check and struct copy of Edge.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of the edges leaving task id. The returned slice must
// not be modified.
func (g *Graph) Out(id TaskID) []EdgeID { return g.out[id] }

// In returns the IDs of the edges entering task id. The returned slice must
// not be modified.
func (g *Graph) In(id TaskID) []EdgeID { return g.in[id] }

// Children returns the task IDs directly reachable from id, in edge-insertion
// order. A fresh slice is returned.
func (g *Graph) Children(id TaskID) []TaskID {
	out := g.out[id]
	kids := make([]TaskID, len(out))
	for i, e := range out {
		kids[i] = g.edges[e].To
	}
	return kids
}

// Parents returns the task IDs with an edge into id, in edge-insertion order.
// A fresh slice is returned.
func (g *Graph) Parents(id TaskID) []TaskID {
	in := g.in[id]
	ps := make([]TaskID, len(in))
	for i, e := range in {
		ps[i] = g.edges[e].From
	}
	return ps
}

// Sources returns the tasks with no parents, in ID order.
func (g *Graph) Sources() []TaskID {
	var s []TaskID
	for i := range g.tasks {
		if len(g.in[i]) == 0 {
			s = append(s, TaskID(i))
		}
	}
	return s
}

// Sinks returns the tasks with no children, in ID order.
func (g *Graph) Sinks() []TaskID {
	var s []TaskID
	for i := range g.tasks {
		if len(g.out[i]) == 0 {
			s = append(s, TaskID(i))
		}
	}
	return s
}

// MemReq returns the memory requirement of executing task id as defined in
// §3.2 of the paper: the sum of all its input file sizes plus all its output
// file sizes.
func (g *Graph) MemReq(id TaskID) int64 {
	var sum int64
	for _, e := range g.in[id] {
		sum += g.edges[e].File
	}
	for _, e := range g.out[id] {
		sum += g.edges[e].File
	}
	return sum
}

// TotalFiles returns the sum of all edge file sizes.
func (g *Graph) TotalFiles() int64 {
	var sum int64
	for _, e := range g.edges {
		sum += e.File
	}
	return sum
}

// TotalWork returns the sum over tasks of the processing time on the given
// resource: blue if blue is true, red otherwise.
func (g *Graph) TotalWork(blue bool) float64 {
	var sum float64
	for _, t := range g.tasks {
		if blue {
			sum += t.WBlue
		} else {
			sum += t.WRed
		}
	}
	return sum
}

// TotalMinWork returns the sum over tasks of min(WBlue, WRed); it is the
// aggregate work lower bound used by exact.LowerBound.
func (g *Graph) TotalMinWork() float64 {
	var sum float64
	for _, t := range g.tasks {
		sum += min(t.WBlue, t.WRed)
	}
	return sum
}

// MaxTime returns the coarse horizon used by the ILP as Mmax: the sum of all
// blue times, all red times and all communication times. Any schedule that
// never idles unnecessarily finishes before this bound.
func (g *Graph) MaxTime() float64 {
	var sum float64
	for _, t := range g.tasks {
		sum += t.WBlue + t.WRed
	}
	for _, e := range g.edges {
		sum += e.Comm
	}
	return sum
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		tasks:     append([]Task(nil), g.tasks...),
		edges:     append([]Edge(nil), g.edges...),
		out:       make([][]EdgeID, len(g.out)),
		in:        make([][]EdgeID, len(g.in)),
		edgeIndex: make(map[[2]TaskID]EdgeID, len(g.edgeIndex)),
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	for k, v := range g.edgeIndex {
		c.edgeIndex[k] = v
	}
	return c
}

// ErrCyclic is returned by Validate when the graph contains a cycle.
var ErrCyclic = errors.New("dag: graph contains a cycle")

// Validate checks structural soundness: non-negative processing times, file
// sizes and communication times, and acyclicity.
func (g *Graph) Validate() error {
	for _, t := range g.tasks {
		if t.WBlue < 0 || t.WRed < 0 {
			return fmt.Errorf("dag: task %d (%s) has negative processing time", t.ID, t.Name)
		}
	}
	for _, e := range g.edges {
		if e.File < 0 {
			return fmt.Errorf("dag: edge %d -> %d has negative file size %d", e.From, e.To, e.File)
		}
		if e.Comm < 0 {
			return fmt.Errorf("dag: edge %d -> %d has negative communication time %g", e.From, e.To, e.Comm)
		}
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}
