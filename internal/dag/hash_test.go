package dag

import "testing"

func TestCanonicalHashDeterministic(t *testing.T) {
	g := PaperExample()
	if h1, h2 := g.CanonicalHash(), g.CanonicalHash(); h1 != h2 {
		t.Fatalf("hash not deterministic: %s vs %s", h1, h2)
	}
	if h1, h2 := PaperExample().CanonicalHash(), g.Clone().CanonicalHash(); h1 != h2 {
		t.Fatalf("equal graphs hash differently: %s vs %s", h1, h2)
	}
	if len(g.CanonicalHash()) != 64 {
		t.Fatalf("want 64 hex chars, got %d", len(g.CanonicalHash()))
	}
}

func TestCanonicalHashEdgeOrderIndependent(t *testing.T) {
	a := New()
	a0, a1, a2 := a.AddTask("x", 1, 2), a.AddTask("y", 3, 4), a.AddTask("z", 5, 6)
	a.MustAddEdge(a0, a1, 7, 1)
	a.MustAddEdge(a1, a2, 8, 2)

	b := New()
	b0, b1, b2 := b.AddTask("x", 1, 2), b.AddTask("y", 3, 4), b.AddTask("z", 5, 6)
	b.MustAddEdge(b1, b2, 8, 2) // same edges, reversed insertion order
	b.MustAddEdge(b0, b1, 7, 1)

	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("edge insertion order changed the hash")
	}
}

func TestCanonicalHashDistinguishes(t *testing.T) {
	base := func() *Graph {
		g := New()
		s, d := g.AddTask("s", 1, 2), g.AddTask("d", 3, 4)
		g.MustAddEdge(s, d, 5, 6)
		return g
	}
	ref := base().CanonicalHash()

	mutations := map[string]func(*Graph){
		"task name":  func(g *Graph) { g.tasks[0].Name = "S" },
		"blue time":  func(g *Graph) { g.tasks[0].WBlue = 9 },
		"red time":   func(g *Graph) { g.tasks[1].WRed = 9 },
		"file size":  func(g *Graph) { g.edges[0].File = 9 },
		"comm time":  func(g *Graph) { g.edges[0].Comm = 9 },
		"extra task": func(g *Graph) { g.AddTask("t", 0, 0) },
	}
	for name, mutate := range mutations {
		g := base()
		mutate(g)
		if g.CanonicalHash() == ref {
			t.Errorf("%s change not reflected in hash", name)
		}
	}
}
