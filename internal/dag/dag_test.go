package dag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if id := g.AddTask("", 1, 1); id != TaskID(i) {
			t.Fatalf("task %d got ID %d", i, id)
		}
	}
	if g.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d, want 5", g.NumTasks())
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1, 1)
	if _, err := g.AddEdge(a, a, 1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("b", 1, 1)
	g.MustAddEdge(a, b, 1, 1)
	if _, err := g.AddEdge(a, b, 2, 2); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestAddEdgePanicsOnBadEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range endpoint")
		}
	}()
	g := New()
	g.AddTask("a", 1, 1)
	g.AddEdge(0, 7, 1, 1)
}

func TestChildrenParents(t *testing.T) {
	g := PaperExample()
	if got := g.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Children(T1) = %v", got)
	}
	if got := g.Parents(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Parents(T4) = %v", got)
	}
	if got := g.Parents(0); len(got) != 0 {
		t.Fatalf("Parents(T1) = %v, want empty", got)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := PaperExample()
	e, ok := g.EdgeBetween(0, 2)
	if !ok || e.File != 2 || e.Comm != 1 {
		t.Fatalf("EdgeBetween(0,2) = %+v, %v", e, ok)
	}
	if _, ok := g.EdgeBetween(2, 0); ok {
		t.Fatal("reverse edge should not exist")
	}
	if _, ok := g.EdgeBetween(0, 3); ok {
		t.Fatal("absent edge reported present")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := PaperExample()
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Fatalf("Sinks = %v", s)
	}
}

func TestMemReqMatchesPaper(t *testing.T) {
	g := PaperExample()
	// Paper §3.2: MemReq(T3) = F(1,3) + F(3,4) = 4.
	if got := g.MemReq(2); got != 4 {
		t.Fatalf("MemReq(T3) = %d, want 4", got)
	}
	if got := g.MemReq(0); got != 3 { // outputs 1+2
		t.Fatalf("MemReq(T1) = %d, want 3", got)
	}
	if got := g.MemReq(3); got != 3 { // inputs 1+2
		t.Fatalf("MemReq(T4) = %d, want 3", got)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := PaperExample()
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(EdgeID(e))
		if pos[edge.From] >= pos[edge.To] {
			t.Fatalf("edge %d->%d violates order %v", edge.From, edge.To, order)
		}
	}
}

func TestTopologicalOrderDetectsCycle(t *testing.T) {
	g := New()
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("b", 1, 1)
	c := g.AddTask("c", 1, 1)
	g.MustAddEdge(a, b, 1, 1)
	g.MustAddEdge(b, c, 1, 1)
	g.MustAddEdge(c, a, 1, 1)
	if _, err := g.TopologicalOrder(); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	if err := g.Validate(); err != ErrCyclic {
		t.Fatalf("Validate = %v, want ErrCyclic", err)
	}
}

func TestReverseTopologicalOrder(t *testing.T) {
	g := PaperExample()
	rev, err := g.ReverseTopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range rev {
		pos[id] = i
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(EdgeID(e))
		if pos[edge.From] <= pos[edge.To] {
			t.Fatalf("edge %d->%d violates reverse order %v", edge.From, edge.To, rev)
		}
	}
}

func TestLevels(t *testing.T) {
	g := PaperExample()
	level, n, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i, l := range level {
		if l != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, l, want[i])
		}
	}
	if n != 3 {
		t.Fatalf("levels = %d, want 3", n)
	}
}

func TestUpwardRanksPaperExample(t *testing.T) {
	g := PaperExample()
	ranks, err := g.UpwardRanks(nil)
	if err != nil {
		t.Fatal(err)
	}
	// rank(T4) = (1+1)/2 = 1
	// rank(T2) = (2+2)/2 + (1 + 0.5) = 3.5
	// rank(T3) = (6+3)/2 + (1 + 0.5) = 6
	// rank(T1) = (3+1)/2 + max(3.5+0.5, 6+0.5) = 2 + 6.5 = 8.5
	want := []float64{8.5, 3.5, 6, 1}
	for i, r := range ranks {
		if r != want[i] {
			t.Fatalf("rank[%d] = %g, want %g", i, r, want[i])
		}
	}
}

func TestCriticalPathLength(t *testing.T) {
	g := PaperExample()
	// Cheapest times: T1=1, T2=2, T3=3, T4=1; longest path T1-T3-T4 = 5.
	cp, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 5 {
		t.Fatalf("CriticalPathLength = %g, want 5", cp)
	}
}

func TestDescendants(t *testing.T) {
	g := PaperExample()
	d := g.Descendants(1) // T2 reaches only T4
	want := []bool{false, false, false, true}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Descendants(T2)[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	d0 := g.Descendants(0)
	if !d0[1] || !d0[2] || !d0[3] || d0[0] {
		t.Fatalf("Descendants(T1) = %v", d0)
	}
}

func TestTotals(t *testing.T) {
	g := PaperExample()
	if got := g.TotalFiles(); got != 6 {
		t.Fatalf("TotalFiles = %d, want 6", got)
	}
	if got := g.TotalWork(true); got != 12 {
		t.Fatalf("TotalWork(blue) = %g, want 12", got)
	}
	if got := g.TotalWork(false); got != 7 {
		t.Fatalf("TotalWork(red) = %g, want 7", got)
	}
	if got := g.TotalMinWork(); got != 7 {
		t.Fatalf("TotalMinWork = %g, want 7", got)
	}
	if got := g.MaxTime(); got != 23 { // 12 + 7 + 4
		t.Fatalf("MaxTime = %g, want 23", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := PaperExample()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumTasks(), back.NumEdges(), g.NumTasks(), g.NumEdges())
	}
	for i := 0; i < g.NumTasks(); i++ {
		if back.Task(TaskID(i)) != g.Task(TaskID(i)) {
			t.Fatalf("task %d differs after round trip", i)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if back.Edge(EdgeID(e)) != g.Edge(EdgeID(e)) {
			t.Fatalf("edge %d differs after round trip", e)
		}
	}
}

func TestReadWrite(t *testing.T) {
	g := PaperExample()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != 4 || back.NumEdges() != 4 {
		t.Fatalf("Read produced %d tasks %d edges", back.NumTasks(), back.NumEdges())
	}
}

func TestReadRejectsBadEdges(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"tasks":[{"wblue":1,"wred":1}],"edges":[{"from":0,"to":5,"file":1,"comm":1}]}`)); err == nil {
		t.Fatal("edge to missing task accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := PaperExample()
	a, b := g.DOT("dex"), g.DOT("dex")
	if a != b {
		t.Fatal("DOT output not deterministic")
	}
	for _, want := range []string{"digraph \"dex\"", "n0 -> n1", "F=2 C=1", "T3"} {
		if !strings.Contains(a, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, a)
		}
	}
}

func TestClone(t *testing.T) {
	g := PaperExample()
	c := g.Clone()
	c.AddTask("extra", 1, 1)
	c.MustAddEdge(3, 4, 1, 1)
	if g.NumTasks() != 4 || g.NumEdges() != 4 {
		t.Fatal("mutating clone affected original")
	}
	if c.NumTasks() != 5 || c.NumEdges() != 5 {
		t.Fatal("clone mutation lost")
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	g := New()
	g.AddTask("bad", -1, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("negative processing time accepted")
	}
	g2 := New()
	a := g2.AddTask("a", 1, 1)
	b := g2.AddTask("b", 1, 1)
	g2.MustAddEdge(a, b, -3, 1)
	if err := g2.Validate(); err == nil {
		t.Fatal("negative file size accepted")
	}
	g3 := New()
	a = g3.AddTask("a", 1, 1)
	b = g3.AddTask("b", 1, 1)
	g3.MustAddEdge(a, b, 3, -1)
	if err := g3.Validate(); err == nil {
		t.Fatal("negative comm time accepted")
	}
}

func TestChainFixture(t *testing.T) {
	g := Chain(5, 2, 3, 4, 1)
	if g.NumTasks() != 5 || g.NumEdges() != 4 {
		t.Fatalf("chain shape %d/%d", g.NumTasks(), g.NumEdges())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("chain should have one source and one sink")
	}
	_, n, err := g.Levels()
	if err != nil || n != 5 {
		t.Fatalf("chain levels = %d (%v), want 5", n, err)
	}
}

func TestForkJoinFixture(t *testing.T) {
	g := ForkJoin(4, 1, 1, 2, 1)
	if g.NumTasks() != 6 || g.NumEdges() != 8 {
		t.Fatalf("forkjoin shape %d/%d", g.NumTasks(), g.NumEdges())
	}
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxWidth != 4 || st.Levels != 3 {
		t.Fatalf("forkjoin stats %+v", st)
	}
	if st.MaxMemReq != 8 { // fork: 4 outputs of size 2
		t.Fatalf("MaxMemReq = %d, want 8", st.MaxMemReq)
	}
}

func TestComputeStatsPaperExample(t *testing.T) {
	g := PaperExample()
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 || st.Edges != 4 || st.Sources != 1 || st.Sinks != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Fictitious != 0 || st.MaxWidth != 2 || st.Levels != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.CPLength != 5 || st.MaxMemReq != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// propertyRandomDAG builds a random DAG from a seed for property tests:
// edges only go from lower to higher IDs, so the result is always acyclic.
func propertyRandomDAG(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddTask("", float64(rng.Intn(20)+1), float64(rng.Intn(20)+1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.MustAddEdge(TaskID(i), TaskID(j), int64(rng.Intn(10)+1), float64(rng.Intn(10)+1))
			}
		}
	}
	return g
}

func TestPropertyTopoOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := propertyRandomDAG(seed, 12)
		order, err := g.TopologicalOrder()
		if err != nil {
			return false
		}
		seen := make(map[TaskID]bool)
		for _, id := range order {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == g.NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRanksDecreaseAlongEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := propertyRandomDAG(seed, 12)
		ranks, err := g.UpwardRanks(nil)
		if err != nil {
			return false
		}
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(EdgeID(e))
			if ranks[edge.From] <= ranks[edge.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := propertyRandomDAG(seed, 10)
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		back := New()
		if err := json.Unmarshal(data, back); err != nil {
			return false
		}
		if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for e := 0; e < g.NumEdges(); e++ {
			if back.Edge(EdgeID(e)) != g.Edge(EdgeID(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
