package dag

// PaperExample builds the four-task toy DAG Dex of Figure 2 in the paper:
//
//	T1 (W=3,1) ── F=1,C=1 ──> T2 (W=2,2) ── F=1,C=1 ──> T4 (W=1,1)
//	   └──────── F=2,C=1 ──> T3 (W=6,3) ── F=2,C=1 ──────┘
//
// Task IDs are 0..3 for T1..T4. The example is used throughout the test
// suite to pin the exact numbers worked out in §3 of the paper (schedules s1
// and s2, memory peaks 2 and 5, makespans 6 and 7).
func PaperExample() *Graph {
	g := New()
	t1 := g.AddTask("T1", 3, 1)
	t2 := g.AddTask("T2", 2, 2)
	t3 := g.AddTask("T3", 6, 3)
	t4 := g.AddTask("T4", 1, 1)
	g.MustAddEdge(t1, t2, 1, 1)
	g.MustAddEdge(t1, t3, 2, 1)
	g.MustAddEdge(t2, t4, 1, 1)
	g.MustAddEdge(t3, t4, 2, 1)
	return g
}

// Chain builds a linear chain of n tasks, each with the given processing
// times, connected by edges with the given file size and communication time.
// Chains are the worst case for memory-oblivious scheduling and convenient
// in tests.
func Chain(n int, wBlue, wRed float64, file int64, comm float64) *Graph {
	g := New()
	var prev TaskID
	for i := 0; i < n; i++ {
		id := g.AddTask("", wBlue, wRed)
		if i > 0 {
			g.MustAddEdge(prev, id, file, comm)
		}
		prev = id
	}
	return g
}

// ForkJoin builds a source task fanning out to width parallel tasks that all
// join into a sink, with uniform parameters. It exercises broad parallelism
// and is the canonical instance where memory limits force serialisation.
func ForkJoin(width int, wBlue, wRed float64, file int64, comm float64) *Graph {
	g := New()
	src := g.AddTask("fork", wBlue, wRed)
	sink := g.AddTask("join", wBlue, wRed)
	for i := 0; i < width; i++ {
		mid := g.AddTask("", wBlue, wRed)
		g.MustAddEdge(src, mid, file, comm)
		g.MustAddEdge(mid, sink, file, comm)
	}
	return g
}
