package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the wire format of a graph. Task IDs are implicit (slice
// order), which keeps files small and makes hand-written fixtures easy.
type jsonGraph struct {
	Tasks []jsonTask `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTask struct {
	Name  string  `json:"name,omitempty"`
	WBlue float64 `json:"wblue"`
	WRed  float64 `json:"wred"`
}

type jsonEdge struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	File int64   `json:"file"`
	Comm float64 `json:"comm"`
}

// MarshalJSON encodes the graph in the package wire format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Tasks: make([]jsonTask, len(g.tasks)),
		Edges: make([]jsonEdge, len(g.edges)),
	}
	for i, t := range g.tasks {
		jg.Tasks[i] = jsonTask{Name: t.Name, WBlue: t.WBlue, WRed: t.WRed}
	}
	for i, e := range g.edges {
		jg.Edges[i] = jsonEdge{From: int(e.From), To: int(e.To), File: e.File, Comm: e.Comm}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph from the package wire format, replacing the
// receiver's contents.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("dag: decoding graph: %w", err)
	}
	fresh := New()
	for _, t := range jg.Tasks {
		fresh.AddTask(t.Name, t.WBlue, t.WRed)
	}
	for _, e := range jg.Edges {
		if e.From < 0 || e.From >= len(jg.Tasks) || e.To < 0 || e.To >= len(jg.Tasks) {
			return fmt.Errorf("dag: edge %d -> %d references missing task", e.From, e.To)
		}
		if _, err := fresh.AddEdge(TaskID(e.From), TaskID(e.To), e.File, e.Comm); err != nil {
			return err
		}
	}
	*g = *fresh
	return nil
}

// Read decodes a graph from JSON read off r and validates it.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	dec := json.NewDecoder(r)
	if err := dec.Decode(g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Write encodes the graph as indented JSON on w.
func (g *Graph) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// DOT renders the graph in Graphviz dot syntax. Node labels show the task
// name and both processing times; edge labels show file size and
// communication time. Output is deterministic.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("T%d", t.ID)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\nW=(%g,%g)\"];\n", t.ID, label, t.WBlue, t.WRed)
	}
	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"F=%d C=%g\"];\n", e.From, e.To, e.File, e.Comm)
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarises a graph for logging and experiment reports.
type Stats struct {
	Tasks      int
	Edges      int
	Fictitious int
	Sources    int
	Sinks      int
	Levels     int
	MaxWidth   int     // largest number of tasks on one level
	TotalFiles int64   // sum of file sizes
	MaxMemReq  int64   // largest single-task memory requirement
	CPLength   float64 // critical-path lower bound
}

// ComputeStats returns summary statistics; it requires an acyclic graph.
func (g *Graph) ComputeStats() (Stats, error) {
	level, nLevels, err := g.Levels()
	if err != nil {
		return Stats{}, err
	}
	widths := make([]int, nLevels)
	st := Stats{
		Tasks:      g.NumTasks(),
		Edges:      g.NumEdges(),
		Sources:    len(g.Sources()),
		Sinks:      len(g.Sinks()),
		Levels:     nLevels,
		TotalFiles: g.TotalFiles(),
	}
	for i, t := range g.tasks {
		widths[level[i]]++
		if t.IsFictitious() {
			st.Fictitious++
		}
		if mr := g.MemReq(TaskID(i)); mr > st.MaxMemReq {
			st.MaxMemReq = mr
		}
	}
	for _, w := range widths {
		if w > st.MaxWidth {
			st.MaxWidth = w
		}
	}
	st.CPLength, err = g.CriticalPathLength()
	if err != nil {
		return Stats{}, err
	}
	return st, nil
}
