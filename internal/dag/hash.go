package dag

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// CanonicalHash returns a hex SHA-256 digest of the graph's content: every
// task (name and both processing times, in ID order) and every edge
// (endpoints, file size, communication time, sorted by endpoints so the
// digest is independent of edge-insertion order). Two graphs with equal
// content hash equally; the hash is the natural cache key for anything that
// memoizes per-graph work, such as the scheduling service's session cache.
func (g *Graph) CanonicalHash() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}

	writeInt(int64(len(g.tasks)))
	for _, t := range g.tasks {
		writeInt(int64(len(t.Name)))
		h.Write([]byte(t.Name))
		writeFloat(t.WBlue)
		writeFloat(t.WRed)
	}

	edges := append([]Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	writeInt(int64(len(edges)))
	for _, e := range edges {
		writeInt(int64(e.From))
		writeInt(int64(e.To))
		writeInt(e.File)
		writeFloat(e.Comm)
	}
	return hex.EncodeToString(h.Sum(nil))
}
