package dag

import "context"

// rankStride is how many tasks the ranking loop processes between
// cooperative context polls: frequent enough to interrupt a cold ranking
// phase within microseconds, sparse enough to stay invisible next to the
// loop body.
const rankStride = 1024

// pollCtx returns ctx's error on every rankStride-th step (nil ctx never
// cancels).
func pollCtx(ctx context.Context, step int) error {
	if ctx == nil || step%rankStride != 0 {
		return nil
	}
	return ctx.Err()
}

// TopologicalOrder returns a topological order of the tasks (Kahn's
// algorithm, smallest-ID-first among ready tasks so the order is
// deterministic) or ErrCyclic if the graph has a cycle.
func (g *Graph) TopologicalOrder() ([]TaskID, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.tasks {
		indeg[i] = len(g.in[i])
	}
	// A small binary heap over task IDs keeps the order deterministic
	// without pulling in container/heap allocations per push.
	heap := make([]TaskID, 0, n)
	push := func(id TaskID) {
		heap = append(heap, id)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() TaskID {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < last && heap[l] < heap[s] {
				s = l
			}
			if r < last && heap[r] < heap[s] {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}

	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			push(TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(heap) > 0 {
		id := pop()
		order = append(order, id)
		for _, e := range g.out[id] {
			to := g.edges[e].To
			indeg[to]--
			if indeg[to] == 0 {
				push(to)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// ReverseTopologicalOrder returns a topological order reversed, i.e. every
// task appears after all of its children.
func (g *Graph) ReverseTopologicalOrder() ([]TaskID, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Levels assigns to every task its longest-path depth from a source (sources
// are level 0) and returns the per-task level plus the number of levels. It
// returns ErrCyclic on cyclic graphs.
func (g *Graph) Levels() ([]int, int, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, 0, err
	}
	level := make([]int, len(g.tasks))
	maxLevel := 0
	for _, id := range order {
		for _, e := range g.in[id] {
			from := g.edges[e].From
			if level[from]+1 > level[id] {
				level[id] = level[from] + 1
			}
		}
		if level[id] > maxLevel {
			maxLevel = level[id]
		}
	}
	return level, maxLevel + 1, nil
}

// UpwardRanks returns the HEFT upward rank of every task, defined in §5.1 of
// the paper as
//
//	rank(i) = (WBlue(i)+WRed(i))/2 + max over children j of (rank(j) + C(i,j)/2)
//
// with the maximum taken as 0 for sinks. The result indexes by TaskID.
// The context (nil allowed) is polled cooperatively so a cold ranking phase
// on a very large DAG stays interruptible; cancellation returns ctx.Err().
func (g *Graph) UpwardRanks(ctx context.Context) ([]float64, error) {
	rev, err := g.ReverseTopologicalOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]float64, len(g.tasks))
	for step, id := range rev {
		if err := pollCtx(ctx, step); err != nil {
			return nil, err
		}
		t := g.tasks[id]
		best := 0.0
		for _, e := range g.out[id] {
			edge := g.edges[e]
			if v := rank[edge.To] + edge.Comm/2; v > best {
				best = v
			}
		}
		rank[id] = (t.WBlue+t.WRed)/2 + best
	}
	return rank, nil
}

// CriticalPathLength returns the length of the longest path through the graph
// where each task counts min(WBlue, WRed) and communications count zero (the
// schedule may avoid all communications by staying on one memory). It is a
// makespan lower bound for any platform.
func (g *Graph) CriticalPathLength() (float64, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return 0, err
	}
	finish := make([]float64, len(g.tasks))
	longest := 0.0
	for _, id := range order {
		start := 0.0
		for _, e := range g.in[id] {
			if f := finish[g.edges[e].From]; f > start {
				start = f
			}
		}
		t := g.tasks[id]
		finish[id] = start + min(t.WBlue, t.WRed)
		if finish[id] > longest {
			longest = finish[id]
		}
	}
	return longest, nil
}

// Descendants returns the set of tasks reachable from id (excluding id
// itself) as a boolean slice indexed by TaskID.
func (g *Graph) Descendants(id TaskID) []bool {
	seen := make([]bool, len(g.tasks))
	stack := []TaskID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[cur] {
			to := g.edges[e].To
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return seen
}
