// Package linalg builds the dense linear-algebra task graphs of the paper's
// evaluation (§6.1.2): the tiled LU and Cholesky factorisations, with the
// broadcast pipelines of fictitious zero-cost tasks the paper adds so that a
// kernel output feeding several consumers is modelled as a chain of
// single-consumer files.
//
// Kernel processing times follow Table 1 of the paper (measured with MAGMA
// on 192x192 double-precision tiles of the mirage platform) for the blue
// (CPU) side. The paper does not print the accelerator-side times; the red
// (GPU) times used here are synthetic, derived from typical MAGMA speedups
// on Fermi-class GPUs — level-3 BLAS update kernels (gemm, syrk, trsm) run
// roughly an order of magnitude faster on the GPU while panel
// factorisations (getrf, potrf) are slightly slower — which preserves the
// CPU/GPU affinity contrast the experiment exercises (see DESIGN.md,
// "Substitutions"). Every edge carries one tile (file size 1) and
// cross-memory tile transfers take 50 ms, as measured in the paper.
package linalg

import (
	"fmt"

	"repro/internal/dag"
)

// Kernel names the computational kernels of the two factorisations.
type Kernel string

// The kernels of Table 1, plus the fictitious broadcast stage.
const (
	GETRF Kernel = "getrf"
	GEMM  Kernel = "gemm"
	TRSML Kernel = "trsm_l"
	TRSMU Kernel = "trsm_u"
	POTRF Kernel = "potrf"
	SYRK  Kernel = "syrk"
	BCAST Kernel = "bcast" // fictitious zero-cost broadcast stage
)

// Time holds the processing time of one kernel on each resource, in
// milliseconds.
type Time struct {
	Blue float64 // CPU time (Table 1)
	Red  float64 // GPU time (synthetic, see package comment)
}

// KernelTimes reproduces Table 1 for the blue side and the synthetic red
// side used throughout the experiments.
var KernelTimes = map[Kernel]Time{
	GETRF: {Blue: 450, Red: 585},
	GEMM:  {Blue: 1450, Red: 130},
	TRSML: {Blue: 990, Red: 90},
	TRSMU: {Blue: 830, Red: 75},
	POTRF: {Blue: 450, Red: 585},
	SYRK:  {Blue: 990, Red: 90},
	BCAST: {Blue: 0, Red: 0},
}

// Config parameterises a factorisation DAG.
type Config struct {
	Tiles    int             // matrix is Tiles x Tiles tiles
	Times    map[Kernel]Time // kernel timings; nil means KernelTimes
	TileComm float64         // cross-memory transfer time of one tile
	TileFile int64           // memory occupied by one tile (the unit)
	Pipeline bool            // broadcast pipelines (the paper's choice)
}

// DefaultConfig returns the paper's configuration for an n x n tiled
// matrix: Table 1 timings, 50 ms tile transfers, one memory unit per tile,
// broadcast pipelines enabled.
func DefaultConfig(n int) Config {
	return Config{Tiles: n, Times: KernelTimes, TileComm: 50, TileFile: 1, Pipeline: true}
}

func (c Config) times() map[Kernel]Time {
	if c.Times == nil {
		return KernelTimes
	}
	return c.Times
}

// builder accumulates a factorisation graph.
type builder struct {
	g     *dag.Graph
	cfg   Config
	times map[Kernel]Time
}

func newBuilder(cfg Config) (*builder, error) {
	if cfg.Tiles <= 0 {
		return nil, fmt.Errorf("linalg: Tiles must be positive, got %d", cfg.Tiles)
	}
	if cfg.TileFile <= 0 || cfg.TileComm < 0 {
		return nil, fmt.Errorf("linalg: bad tile parameters (file=%d comm=%g)", cfg.TileFile, cfg.TileComm)
	}
	return &builder{g: dag.New(), cfg: cfg, times: cfg.times()}, nil
}

func (b *builder) task(k Kernel, name string) dag.TaskID {
	t, ok := b.times[k]
	if !ok {
		panic(fmt.Sprintf("linalg: no timing for kernel %s", k))
	}
	return b.g.AddTask(name, t.Blue, t.Red)
}

func (b *builder) edge(from, to dag.TaskID) {
	b.g.MustAddEdge(from, to, b.cfg.TileFile, b.cfg.TileComm)
}

// broadcast connects src to every target. With pipelining (the paper's
// model) a linear chain of fictitious tasks forwards the tile, each stage
// handing one copy to one target; without it, src fans out directly.
func (b *builder) broadcast(src dag.TaskID, targets []dag.TaskID) {
	if len(targets) == 0 {
		return
	}
	if !b.cfg.Pipeline || len(targets) == 1 {
		for _, t := range targets {
			b.edge(src, t)
		}
		return
	}
	cur := src
	for i, t := range targets {
		b.edge(cur, t)
		if i < len(targets)-2 {
			next := b.task(BCAST, fmt.Sprintf("bcast[%s+%d]", b.g.Task(src).Name, i))
			b.edge(cur, next)
			cur = next
		} else if i == len(targets)-2 {
			// Last stage feeds the final target directly.
			b.edge(cur, targets[i+1])
			return
		}
	}
}

// LU builds the task graph of the right-looking tiled LU factorisation of a
// Tiles x Tiles matrix: at step k, GETRF(k) factors the diagonal tile,
// TRSM_L(i,k) eliminates column tiles, TRSM_U(k,j) eliminates row tiles, and
// GEMM(i,j,k) updates the trailing matrix. GETRF and TRSM outputs feed
// several consumers and go through broadcast pipelines.
func LU(cfg Config) (*dag.Graph, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Tiles
	// owner[i][j] is the task that produced the current content of tile
	// (i,j); -1 when the tile is still the (unmodelled) input matrix.
	owner := make([][]dag.TaskID, n)
	for i := range owner {
		owner[i] = make([]dag.TaskID, n)
		for j := range owner[i] {
			owner[i][j] = -1
		}
	}
	for k := 0; k < n; k++ {
		getrf := b.task(GETRF, fmt.Sprintf("getrf(%d)", k))
		if owner[k][k] >= 0 {
			b.edge(owner[k][k], getrf)
		}
		owner[k][k] = getrf

		trsmL := make([]dag.TaskID, 0, n-k-1) // column i > k
		trsmU := make([]dag.TaskID, 0, n-k-1) // row j > k
		var getrfTargets []dag.TaskID
		for i := k + 1; i < n; i++ {
			tl := b.task(TRSML, fmt.Sprintf("trsm_l(%d,%d)", i, k))
			if owner[i][k] >= 0 {
				b.edge(owner[i][k], tl)
			}
			owner[i][k] = tl
			trsmL = append(trsmL, tl)
			getrfTargets = append(getrfTargets, tl)
		}
		for j := k + 1; j < n; j++ {
			tu := b.task(TRSMU, fmt.Sprintf("trsm_u(%d,%d)", k, j))
			if owner[k][j] >= 0 {
				b.edge(owner[k][j], tu)
			}
			owner[k][j] = tu
			trsmU = append(trsmU, tu)
			getrfTargets = append(getrfTargets, tu)
		}
		b.broadcast(getrf, getrfTargets)

		// Trailing update. gemm(i,j,k) consumes trsm_l(i,k) and
		// trsm_u(k,j); each trsm output is broadcast along its row or
		// column.
		gemms := make([][]dag.TaskID, n) // gemms[i][j-k-1]
		for i := k + 1; i < n; i++ {
			gemms[i] = make([]dag.TaskID, 0, n-k-1)
			for j := k + 1; j < n; j++ {
				gm := b.task(GEMM, fmt.Sprintf("gemm(%d,%d,%d)", i, j, k))
				if owner[i][j] >= 0 {
					b.edge(owner[i][j], gm)
				}
				owner[i][j] = gm
				gemms[i] = append(gemms[i], gm)
			}
		}
		for idx, i := 0, k+1; i < n; i, idx = i+1, idx+1 {
			b.broadcast(trsmL[idx], gemms[i]) // row i
		}
		for idx, j := 0, k+1; j < n; j, idx = j+1, idx+1 {
			col := make([]dag.TaskID, 0, n-k-1)
			for i := k + 1; i < n; i++ {
				col = append(col, gemms[i][idx])
			}
			b.broadcast(trsmU[idx], col) // column j
		}
	}
	return b.g, nil
}

// Cholesky builds the task graph of the right-looking tiled Cholesky
// factorisation of the lower half of a symmetric Tiles x Tiles matrix: at
// step k, POTRF(k) factors the diagonal tile, TRSM(i,k) eliminates the
// column below it, SYRK(i,k) updates diagonal tiles and GEMM(i,j,k) the
// remaining lower tiles. POTRF and TRSM outputs go through broadcast
// pipelines. (The paper reuses the TRSM_L timing for Cholesky's TRSM.)
func Cholesky(cfg Config) (*dag.Graph, error) {
	b, err := newBuilder(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Tiles
	owner := make([][]dag.TaskID, n) // lower half: owner[i][j], j <= i
	for i := range owner {
		owner[i] = make([]dag.TaskID, i+1)
		for j := range owner[i] {
			owner[i][j] = -1
		}
	}
	for k := 0; k < n; k++ {
		potrf := b.task(POTRF, fmt.Sprintf("potrf(%d)", k))
		if owner[k][k] >= 0 {
			b.edge(owner[k][k], potrf)
		}
		owner[k][k] = potrf

		trsms := make([]dag.TaskID, 0, n-k-1)
		for i := k + 1; i < n; i++ {
			tr := b.task(TRSML, fmt.Sprintf("trsm(%d,%d)", i, k))
			if owner[i][k] >= 0 {
				b.edge(owner[i][k], tr)
			}
			owner[i][k] = tr
			trsms = append(trsms, tr)
		}
		b.broadcast(potrf, trsms)

		// Updates: syrk(i,k) updates tile (i,i) with trsm(i,k);
		// gemm(i,j,k) for k < j < i updates tile (i,j) with trsm(i,k)
		// and trsm(j,k). Collect the consumers of each trsm output.
		consumers := make([][]dag.TaskID, n) // consumers[i] of trsm(i,k)
		for i := k + 1; i < n; i++ {
			sy := b.task(SYRK, fmt.Sprintf("syrk(%d,%d)", i, k))
			if owner[i][i] >= 0 {
				b.edge(owner[i][i], sy)
			}
			owner[i][i] = sy
			consumers[i] = append(consumers[i], sy)
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < i; j++ {
				gm := b.task(GEMM, fmt.Sprintf("gemm(%d,%d,%d)", i, j, k))
				if owner[i][j] >= 0 {
					b.edge(owner[i][j], gm)
				}
				owner[i][j] = gm
				consumers[i] = append(consumers[i], gm)
				consumers[j] = append(consumers[j], gm)
			}
		}
		for idx, i := 0, k+1; i < n; i, idx = i+1, idx+1 {
			b.broadcast(trsms[idx], consumers[i])
		}
	}
	return b.g, nil
}

// LUKernelCount returns the number of real (non-fictitious) tasks of an
// n-tile LU graph: n getrf, n(n-1) trsm, and sum of (n-k-1)^2 gemms.
func LUKernelCount(n int) int {
	gemm := 0
	for k := 0; k < n; k++ {
		gemm += (n - k - 1) * (n - k - 1)
	}
	return n + n*(n-1) + gemm
}

// CholeskyKernelCount returns the number of real tasks of an n-tile Cholesky
// graph: n potrf, n(n-1)/2 trsm, n(n-1)/2 syrk, and C(n,3) gemms.
func CholeskyKernelCount(n int) int {
	gemm := 0
	for k := 0; k < n; k++ {
		r := n - k - 1
		gemm += r * (r - 1) / 2
	}
	return n + n*(n-1) + gemm
}

// TotalTiles returns the number of tiles of the factored matrix: n^2 for LU
// (full matrix), n(n+1)/2 for Cholesky (lower half). The paper relates the
// smallest workable MemHEFT bound to roughly half these footprints per
// memory.
func TotalTiles(kind string, n int) int {
	if kind == "cholesky" {
		return n * (n + 1) / 2
	}
	return n * n
}
