package linalg

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"

	"repro/internal/core"
)

func TestKernelTimesMatchTable1(t *testing.T) {
	// Table 1 of the paper (CPU side, ms).
	want := map[Kernel]float64{
		GETRF: 450, GEMM: 1450, TRSML: 990, TRSMU: 830, POTRF: 450, SYRK: 990,
	}
	for k, blue := range want {
		if KernelTimes[k].Blue != blue {
			t.Fatalf("blue time of %s = %g, want %g", k, KernelTimes[k].Blue, blue)
		}
	}
	// The synthetic GPU side must preserve the affinity contrast: update
	// kernels much faster on GPU, panel kernels slower.
	for _, k := range []Kernel{GEMM, SYRK, TRSML, TRSMU} {
		if KernelTimes[k].Red >= KernelTimes[k].Blue {
			t.Fatalf("update kernel %s not faster on GPU", k)
		}
	}
	for _, k := range []Kernel{GETRF, POTRF} {
		if KernelTimes[k].Red <= KernelTimes[k].Blue {
			t.Fatalf("panel kernel %s should be slower on GPU", k)
		}
	}
}

func countReal(g *dag.Graph) int {
	n := 0
	for i := 0; i < g.NumTasks(); i++ {
		if !g.Task(dag.TaskID(i)).IsFictitious() {
			n++
		}
	}
	return n
}

func TestLUKernelCounts(t *testing.T) {
	for n := 1; n <= 6; n++ {
		g, err := LU(DefaultConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := countReal(g), LUKernelCount(n); got != want {
			t.Fatalf("n=%d: %d real kernels, want %d", n, got, want)
		}
	}
}

func TestCholeskyKernelCounts(t *testing.T) {
	for n := 1; n <= 6; n++ {
		g, err := Cholesky(DefaultConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := countReal(g), CholeskyKernelCount(n); got != want {
			t.Fatalf("n=%d: %d real kernels, want %d", n, got, want)
		}
	}
}

func TestKernelCountFormulas(t *testing.T) {
	// n=3 LU: 3 getrf + 6 trsm + (4+1) gemm = 14.
	if got := LUKernelCount(3); got != 14 {
		t.Fatalf("LUKernelCount(3) = %d, want 14", got)
	}
	// n=3 Cholesky: 3 potrf + 3 trsm + 3 syrk + 1 gemm = 10.
	if got := CholeskyKernelCount(3); got != 10 {
		t.Fatalf("CholeskyKernelCount(3) = %d, want 10", got)
	}
}

func TestLUSingleSourceAndSink(t *testing.T) {
	g, _ := LU(DefaultConfig(4))
	src := g.Sources()
	if len(src) != 1 || !strings.HasPrefix(g.Task(src[0]).Name, "getrf(0)") {
		t.Fatalf("sources = %v", src)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Task(sinks[0]).Name != "getrf(3)" {
		names := make([]string, len(sinks))
		for i, s := range sinks {
			names[i] = g.Task(s).Name
		}
		t.Fatalf("sinks = %v", names)
	}
}

func TestCholeskySingleSourceAndSink(t *testing.T) {
	g, _ := Cholesky(DefaultConfig(4))
	src := g.Sources()
	if len(src) != 1 || g.Task(src[0]).Name != "potrf(0)" {
		t.Fatalf("sources = %v", src)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || g.Task(sinks[0]).Name != "potrf(3)" {
		t.Fatalf("unexpected sinks")
	}
}

func TestPipelineBoundsOutDegree(t *testing.T) {
	// With broadcast pipelines every task forwards at most two files.
	for _, build := range []func(Config) (*dag.Graph, error){LU, Cholesky} {
		g, err := build(DefaultConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.NumTasks(); i++ {
			if d := len(g.Out(dag.TaskID(i))); d > 2 {
				t.Fatalf("task %s has out-degree %d", g.Task(dag.TaskID(i)).Name, d)
			}
		}
	}
}

func TestPipelineBoundsMemReq(t *testing.T) {
	// gemm holds 3 inputs + 1 output; nothing holds more than 4 tiles.
	g, _ := LU(DefaultConfig(6))
	for i := 0; i < g.NumTasks(); i++ {
		if mr := g.MemReq(dag.TaskID(i)); mr > 4 {
			t.Fatalf("task %s needs %d tiles", g.Task(dag.TaskID(i)).Name, mr)
		}
	}
}

func TestNoPipelineFansOutDirectly(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Pipeline = false
	g, err := LU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fict := g.NumTasks() - countReal(g); fict != 0 {
		t.Fatalf("no-pipeline graph has %d fictitious tasks", fict)
	}
	// getrf(0) now feeds all 2*(n-1) trsms directly.
	src := g.Sources()[0]
	if d := len(g.Out(src)); d != 8 {
		t.Fatalf("getrf(0) out-degree = %d, want 8", d)
	}
}

func TestPipelineMatchesPaperScale(t *testing.T) {
	// The paper quotes ~(4/3)n^3 nodes for LU and ~(2/3)n^3 for Cholesky
	// including fictitious tasks; our single-consumer pipelines land in
	// the same order of magnitude. Pin the exact counts for n=13 so any
	// construction change is noticed.
	lu, _ := LU(DefaultConfig(13))
	ch, _ := Cholesky(DefaultConfig(13))
	if lu.NumTasks() != 1941 {
		t.Fatalf("LU(13) has %d tasks (update the pinned count deliberately)", lu.NumTasks())
	}
	if ch.NumTasks() != 1005 {
		t.Fatalf("Cholesky(13) has %d tasks (update the pinned count deliberately)", ch.NumTasks())
	}
}

func TestGemmDependsOnBothTrsms(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Pipeline = false // direct edges make ancestry easy to check
	g, _ := LU(cfg)
	byName := map[string]dag.TaskID{}
	for i := 0; i < g.NumTasks(); i++ {
		byName[g.Task(dag.TaskID(i)).Name] = dag.TaskID(i)
	}
	gm, ok := byName["gemm(1,2,0)"]
	if !ok {
		t.Fatal("gemm(1,2,0) missing")
	}
	parents := map[dag.TaskID]bool{}
	for _, p := range g.Parents(gm) {
		parents[p] = true
	}
	if !parents[byName["trsm_l(1,0)"]] || !parents[byName["trsm_u(0,2)"]] {
		t.Fatal("gemm(1,2,0) missing a trsm parent")
	}
}

func TestOwnershipChains(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Pipeline = false
	g, _ := LU(cfg)
	byName := map[string]dag.TaskID{}
	for i := 0; i < g.NumTasks(); i++ {
		byName[g.Task(dag.TaskID(i)).Name] = dag.TaskID(i)
	}
	// gemm(1,1,0) -> getrf(1), gemm(2,2,0) -> gemm(2,2,1) -> getrf(2).
	for _, pair := range [][2]string{
		{"gemm(1,1,0)", "getrf(1)"},
		{"gemm(2,2,0)", "gemm(2,2,1)"},
		{"gemm(2,2,1)", "getrf(2)"},
		{"gemm(2,1,0)", "trsm_l(2,1)"},
		{"gemm(1,2,0)", "trsm_u(1,2)"},
	} {
		if _, ok := g.EdgeBetween(byName[pair[0]], byName[pair[1]]); !ok {
			t.Fatalf("missing ownership edge %s -> %s", pair[0], pair[1])
		}
	}
}

func TestCholeskyGemmDependencies(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Pipeline = false
	g, _ := Cholesky(cfg)
	byName := map[string]dag.TaskID{}
	for i := 0; i < g.NumTasks(); i++ {
		byName[g.Task(dag.TaskID(i)).Name] = dag.TaskID(i)
	}
	gm, ok := byName["gemm(3,2,0)"]
	if !ok {
		t.Fatal("gemm(3,2,0) missing")
	}
	parents := map[dag.TaskID]bool{}
	for _, p := range g.Parents(gm) {
		parents[p] = true
	}
	if !parents[byName["trsm(3,0)"]] || !parents[byName["trsm(2,0)"]] {
		t.Fatal("gemm(3,2,0) missing a trsm parent")
	}
	// syrk chain on the diagonal: syrk(2,0) -> syrk(2,1) -> potrf(2).
	for _, pair := range [][2]string{
		{"syrk(2,0)", "syrk(2,1)"},
		{"syrk(2,1)", "potrf(2)"},
	} {
		if _, ok := g.EdgeBetween(byName[pair[0]], byName[pair[1]]); !ok {
			t.Fatalf("missing edge %s -> %s", pair[0], pair[1])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := LU(Config{Tiles: 0, TileFile: 1}); err == nil {
		t.Fatal("Tiles=0 accepted")
	}
	if _, err := Cholesky(Config{Tiles: 3, TileFile: 0}); err == nil {
		t.Fatal("TileFile=0 accepted")
	}
	if _, err := LU(Config{Tiles: 3, TileFile: 1, TileComm: -1}); err == nil {
		t.Fatal("negative TileComm accepted")
	}
}

func TestTotalTiles(t *testing.T) {
	if TotalTiles("lu", 13) != 169 {
		t.Fatal("LU tiles wrong")
	}
	if TotalTiles("cholesky", 13) != 91 {
		t.Fatal("Cholesky tiles wrong")
	}
}

func TestTrivialOneTileFactorisations(t *testing.T) {
	lu, err := LU(DefaultConfig(1))
	if err != nil || lu.NumTasks() != 1 {
		t.Fatalf("LU(1): %v, %d tasks", err, lu.NumTasks())
	}
	ch, err := Cholesky(DefaultConfig(1))
	if err != nil || ch.NumTasks() != 1 {
		t.Fatalf("Cholesky(1): %v, %d tasks", err, ch.NumTasks())
	}
}

func TestSchedulableOnMiragePlatform(t *testing.T) {
	// End-to-end smoke test: a small factorisation schedules and
	// validates on the mirage-like platform (12 CPUs + 3 GPUs).
	for _, build := range []func(Config) (*dag.Graph, error){LU, Cholesky} {
		g, err := build(DefaultConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		p := platform.New(12, 3, 60, 60)
		for name, f := range core.Algorithms {
			s, err := f(tctx, g, p, core.Options{Seed: 1})
			if err != nil {
				t.Fatalf("%s failed on 5x5: %v", name, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s invalid on 5x5: %v", name, err)
			}
		}
	}
}
