package core

import (
	"context"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/trace"
)

// PriorityList returns the task IDs sorted by non-increasing upward rank,
// with rank ties broken by a random permutation drawn from seed (§5.1:
// "tie-breaking is done randomly"). It is a pure function of (graph, seed);
// sessions memoize it per seed through Caches.PriorityList, which is what
// the sweeps and benchmarks hit. The context (nil allowed) makes the
// ranking phase cooperatively cancellable.
func PriorityList(ctx context.Context, g *dag.Graph, seed int64) ([]dag.TaskID, error) {
	ranks, err := g.UpwardRanks(ctx)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tieKey := rng.Perm(g.NumTasks())
	list := make([]dag.TaskID, g.NumTasks())
	for i := range list {
		list[i] = dag.TaskID(i)
	}
	// (rank, tieKey) is a total order — tieKey is a permutation — so the
	// sorted result is unique and any sorting algorithm yields it.
	slices.SortFunc(list, func(a, b dag.TaskID) int {
		ra, rb := ranks[a], ranks[b]
		switch {
		case ra > rb:
			return -1
		case ra < rb:
			return 1
		case tieKey[a] < tieKey[b]:
			return -1
		}
		return 1
	})
	return list, nil
}

// memHEFT is Algorithm 1: walk the priority list, schedule the first task
// that currently fits, and restart from the head of the list after every
// assignment.
func memHEFT(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFTWith(ctx, g, p, opt, false)
}

// memHEFTWith optionally enables the insertion-based processor policy.
//
// The scan is incremental: ready-ness checks are O(1) (in-degree counters),
// Best serves memoized candidates for head-of-list entries whose memory
// epoch and parents are unchanged since the last pass, and scheduled tasks
// are skipped in place and compacted lazily instead of being deleted from
// the middle of the list at every assignment. Commit order — and therefore
// the schedule — is identical to MemHEFTReference (see naive.go).
func memHEFTWith(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options, insertion bool) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	endRank := trace.Start(ctx, "rank")
	remaining, err := opt.Caches.PriorityList(ctx, g, opt.Seed)
	endRank()
	if err != nil {
		return nil, wrapInterrupted("MemHEFT", err)
	}
	endStatics := trace.Start(ctx, "statics")
	if err := opt.Caches.warmStatics(ctx, g); err != nil {
		return nil, wrapInterrupted("MemHEFT", err)
	}
	st := NewPartialCached(g, p, opt.Caches)
	endStatics()
	defer st.reportStats(opt.Stats)
	if insertion {
		// The insertion ablation's commits depend on idle-gap state that a
		// trace does not capture; it neither records nor replays.
		st.ins = newInsertionState(p.TotalProcs())
		opt.Record, opt.Replay = nil, nil
	}
	rec := opt.Record
	endReplay := trace.Start(ctx, "replay")
	replayed, err := st.beginRun(ctx, p, opt)
	endReplay()
	if err != nil {
		return st.sched, fmt.Errorf("core: MemHEFT interrupted: %w", err)
	}
	defer trace.Start(ctx, "placement")()
	left := len(remaining) - replayed
	head := 0 // index of the first unscheduled entry
	step := 0
	for left > 0 {
		if err := ctxErr(ctx, step); err != nil {
			return st.sched, fmt.Errorf("core: MemHEFT interrupted: %w", err)
		}
		step++
		for head < len(remaining) && st.Assigned(remaining[head]) {
			head++
		}
		placed := false
		for _, id := range remaining[head:] {
			if !st.Ready(id) {
				// Already scheduled but not yet compacted away,
				// or waiting on a parent (rank ties between
				// zero-cost tasks can put a child before its
				// parent in the list).
				continue
			}
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			if rec != nil {
				// Before Commit: recordStep measures pre-commit fit slacks.
				st.recordStep(rec, c)
			}
			st.Commit(c)
			left--
			placed = true
			break
		}
		if !placed {
			// remaining[head] is the highest-priority unscheduled
			// task thanks to the head advance above.
			return st.sched, fmt.Errorf("%w (MemHEFT: %d of %d tasks unscheduled, first stuck task %d)",
				ErrMemoryBound, left, g.NumTasks(), remaining[head])
		}
		// Compact once half the list is scheduled: amortised O(n)
		// total instead of an O(n) mid-slice delete per assignment.
		if left > 0 && 2*left <= len(remaining)-head {
			out := remaining[:0]
			for _, id := range remaining[head:] {
				if !st.Assigned(id) {
					out = append(out, id)
				}
			}
			remaining = out
			head = 0
		}
	}
	if rec != nil {
		rec.Complete = true
	}
	return st.sched, nil
}
