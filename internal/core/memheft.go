package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// PriorityList returns the task IDs sorted by non-increasing upward rank,
// with rank ties broken by a random permutation drawn from seed (§5.1:
// "tie-breaking is done randomly"). It is exported for tests and for the
// ablation benchmarks that compare tie-breaking strategies.
func PriorityList(g *dag.Graph, seed int64) ([]dag.TaskID, error) {
	ranks, err := g.UpwardRanks()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tieKey := rng.Perm(g.NumTasks())
	list := make([]dag.TaskID, g.NumTasks())
	for i := range list {
		list[i] = dag.TaskID(i)
	}
	sort.SliceStable(list, func(a, b int) bool {
		ra, rb := ranks[list[a]], ranks[list[b]]
		if ra != rb {
			return ra > rb
		}
		return tieKey[list[a]] < tieKey[list[b]]
	})
	return list, nil
}

// memHEFT is Algorithm 1: walk the priority list, schedule the first task
// that currently fits, and restart from the head of the list after every
// assignment.
func memHEFT(g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFTWith(g, p, opt, false)
}

// memHEFTWith optionally enables the insertion-based processor policy.
func memHEFTWith(g *dag.Graph, p platform.Platform, opt Options, insertion bool) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	remaining, err := PriorityList(g, opt.Seed)
	if err != nil {
		return nil, err
	}
	st := NewPartial(g, p)
	if insertion {
		st.ins = newInsertionState(p.TotalProcs())
	}
	for len(remaining) > 0 {
		placed := false
		for index, id := range remaining {
			if !st.Ready(id) {
				// Rank ties between zero-cost tasks can put a
				// child before its parent; skip until the
				// parent is placed.
				continue
			}
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			st.Commit(c)
			remaining = append(remaining[:index], remaining[index+1:]...)
			placed = true
			break
		}
		if !placed {
			return st.sched, fmt.Errorf("%w (MemHEFT: %d of %d tasks unscheduled, first stuck task %d)",
				ErrMemoryBound, len(remaining), g.NumTasks(), remaining[0])
		}
	}
	return st.sched, nil
}
