package core

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// priorityCache memoizes the most recent PriorityList computation. Sweeps
// (and the throughput benchmarks) schedule the same graph with the same seed
// over and over while varying only the memory bounds; the ranking phase —
// upward ranks, seeded permutation, sort — is a pure function of (graph,
// seed), so it is computed once. The task/edge counts guard against the
// graph growing between calls (tasks and edges are append-only and
// immutable once added, so the counts pin the graph's content).
var priorityCache struct {
	sync.Mutex
	g              *dag.Graph
	seed           int64
	nTasks, nEdges int
	list           []dag.TaskID
}

// PriorityList returns the task IDs sorted by non-increasing upward rank,
// with rank ties broken by a random permutation drawn from seed (§5.1:
// "tie-breaking is done randomly"). It is exported for tests and for the
// ablation benchmarks that compare tie-breaking strategies. The result is a
// fresh slice the caller may mutate; repeated calls for the same (graph,
// seed) are served from a memo.
func PriorityList(g *dag.Graph, seed int64) ([]dag.TaskID, error) {
	priorityCache.Lock()
	if priorityCache.g == g && priorityCache.seed == seed &&
		priorityCache.nTasks == g.NumTasks() && priorityCache.nEdges == g.NumEdges() {
		out := append([]dag.TaskID(nil), priorityCache.list...)
		priorityCache.Unlock()
		return out, nil
	}
	priorityCache.Unlock()

	ranks, err := g.UpwardRanks()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tieKey := rng.Perm(g.NumTasks())
	list := make([]dag.TaskID, g.NumTasks())
	for i := range list {
		list[i] = dag.TaskID(i)
	}
	// (rank, tieKey) is a total order — tieKey is a permutation — so the
	// sorted result is unique and any sorting algorithm yields it.
	slices.SortFunc(list, func(a, b dag.TaskID) int {
		ra, rb := ranks[a], ranks[b]
		switch {
		case ra > rb:
			return -1
		case ra < rb:
			return 1
		case tieKey[a] < tieKey[b]:
			return -1
		}
		return 1
	})

	priorityCache.Lock()
	priorityCache.g, priorityCache.seed = g, seed
	priorityCache.nTasks, priorityCache.nEdges = g.NumTasks(), g.NumEdges()
	priorityCache.list = append(priorityCache.list[:0], list...)
	priorityCache.Unlock()
	return list, nil
}

// memHEFT is Algorithm 1: walk the priority list, schedule the first task
// that currently fits, and restart from the head of the list after every
// assignment.
func memHEFT(g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFTWith(g, p, opt, false)
}

// memHEFTWith optionally enables the insertion-based processor policy.
//
// The scan is incremental: ready-ness checks are O(1) (in-degree counters),
// Best serves memoized candidates for head-of-list entries whose memory
// epoch and parents are unchanged since the last pass, and scheduled tasks
// are skipped in place and compacted lazily instead of being deleted from
// the middle of the list at every assignment. Commit order — and therefore
// the schedule — is identical to MemHEFTReference (see naive.go).
func memHEFTWith(g *dag.Graph, p platform.Platform, opt Options, insertion bool) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	remaining, err := PriorityList(g, opt.Seed)
	if err != nil {
		return nil, err
	}
	st := NewPartial(g, p)
	if insertion {
		st.ins = newInsertionState(p.TotalProcs())
	}
	left := len(remaining)
	head := 0 // index of the first unscheduled entry
	for left > 0 {
		for head < len(remaining) && st.Assigned(remaining[head]) {
			head++
		}
		placed := false
		for _, id := range remaining[head:] {
			if !st.Ready(id) {
				// Already scheduled but not yet compacted away,
				// or waiting on a parent (rank ties between
				// zero-cost tasks can put a child before its
				// parent in the list).
				continue
			}
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			st.Commit(c)
			left--
			placed = true
			break
		}
		if !placed {
			// remaining[head] is the highest-priority unscheduled
			// task thanks to the head advance above.
			return st.sched, fmt.Errorf("%w (MemHEFT: %d of %d tasks unscheduled, first stuck task %d)",
				ErrMemoryBound, left, g.NumTasks(), remaining[head])
		}
		// Compact once half the list is scheduled: amortised O(n)
		// total instead of an O(n) mid-slice delete per assignment.
		if left > 0 && 2*left <= len(remaining)-head {
			out := remaining[:0]
			for _, id := range remaining[head:] {
				if !st.Assigned(id) {
					out = append(out, id)
				}
			}
			remaining = out
			head = 0
		}
	}
	return st.sched, nil
}
