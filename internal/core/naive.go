package core

import (
	"context"
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// This file retains the pre-incremental implementations of Algorithm 1 and
// Algorithm 2 as executable reference oracles. They bypass every layer of
// the incremental engine that could conceivably change behaviour — no
// candidate memoization, no static-part caching, ready-ness by scanning
// parents, mid-slice deletes, linear min scans — so the golden-equivalence
// tests can assert that the optimized schedulers produce bit-identical
// schedules. They are exported (rather than test-only) so the benchmark
// harness can track the speedup of the incremental paths against them.

// readyByScan re-derives Ready(id) the naive way, ignoring the maintained
// in-degree counters.
func (st *Partial) readyByScan(id dag.TaskID) bool {
	if st.assigned[id] {
		return false
	}
	for _, e := range st.g.In(id) {
		if !st.assigned[st.g.Edge(e).From] {
			return false
		}
	}
	return true
}

// makespanByScan re-derives MakespanSoFar the naive way, ignoring the
// running max.
func (st *Partial) makespanByScan() float64 {
	ms := 0.0
	for i, done := range st.assigned {
		if done && st.finish[i] > ms {
			ms = st.finish[i]
		}
	}
	return ms
}

// MemHEFTReference is the naive implementation of Algorithm 1: every
// iteration restarts from the head of the priority list, re-derives
// ready-ness by scanning parents and re-evaluates both memory candidates of
// every visited task from scratch. It is the oracle MemHEFT is tested
// against and must not be "optimized"; the context and the memoization
// options are deliberately ignored.
func MemHEFTReference(_ context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	remaining, err := PriorityList(nil, g, opt.Seed)
	if err != nil {
		return nil, err
	}
	st := NewPartial(g, p)
	st.noCache = true
	for len(remaining) > 0 {
		placed := false
		for index, id := range remaining {
			if !st.readyByScan(id) {
				continue
			}
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			st.Commit(c)
			remaining = append(remaining[:index], remaining[index+1:]...)
			placed = true
			break
		}
		if !placed {
			return st.sched, fmt.Errorf("%w (MemHEFT: %d of %d tasks unscheduled, first stuck task %d)",
				ErrMemoryBound, len(remaining), g.NumTasks(), remaining[0])
		}
	}
	return st.sched, nil
}

// MemMinMinReference is the naive implementation of Algorithm 2: every
// iteration evaluates both memory candidates of every ready task from
// scratch and picks the minimum-EFT pair by linear scan (ties towards the
// smaller task ID). It is the oracle MemMinMin is tested against and must
// not be "optimized"; the context and the memoization options are
// deliberately ignored.
func MemMinMinReference(_ context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	st := NewPartial(g, p)
	st.noCache = true

	// Ready set, kept sorted by task ID for deterministic tie-breaking.
	pending := make([]int, g.NumTasks()) // unassigned-parent count
	var ready []dag.TaskID
	for i := 0; i < g.NumTasks(); i++ {
		pending[i] = len(g.In(dag.TaskID(i)))
		if pending[i] == 0 {
			ready = append(ready, dag.TaskID(i))
		}
	}

	scheduled := 0
	for len(ready) > 0 {
		bestIdx := -1
		var bestCand Candidate
		for idx, id := range ready {
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			if bestIdx < 0 || c.EFT < bestCand.EFT || (c.EFT == bestCand.EFT && id < bestCand.Task) {
				bestIdx, bestCand = idx, c
			}
		}
		if bestIdx < 0 {
			return st.sched, fmt.Errorf("%w (MemMinMin: %d of %d tasks unscheduled, %d ready tasks all blocked)",
				ErrMemoryBound, g.NumTasks()-scheduled, g.NumTasks(), len(ready))
		}
		st.Commit(bestCand)
		scheduled++
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		for _, e := range g.Out(bestCand.Task) {
			child := g.Edge(e).To
			pending[child]--
			if pending[child] == 0 {
				ready = insertSorted(ready, child)
			}
		}
	}
	if scheduled != g.NumTasks() {
		return st.sched, fmt.Errorf("core: MemMinMin scheduled %d of %d tasks", scheduled, g.NumTasks())
	}
	return st.sched, nil
}
