// Package core implements the paper's primary contribution: the memory-aware
// list-scheduling heuristics MemHEFT (Algorithm 1) and MemMinMin
// (Algorithm 2) for dual-memory hybrid platforms, together with the
// memory-oblivious references HEFT and MinMin they extend.
//
// Both heuristics share the same earliest-start-time machinery (§5.1): for a
// task i and a memory mu, EST(mu, i) is the max of
//
//   - resource_EST:    a processor of mu is free;
//   - precedence_EST:  parents finished, plus the cross-memory communication
//     delay for parents living on the other memory;
//   - task_mem_EST:    from the start of i onward the memory holds the
//     not-yet-present input files plus all output files;
//   - comm_mem_EST+C:  from the start of the incoming communications onward
//     the memory holds the in-flight input files; all cross
//     communications are scheduled as late as possible with
//     the uniform conservative duration
//     C(mu,i) = max cross-parent C(j,i).
//
// EFT(mu,i) = EST(mu,i) + W(mu,i); the task goes to the memory minimising
// EFT and, inside it, to the processor minimising idle time.
//
// Note on the paper's notation: §5.1 writes delta(mu,j) = 0 when j runs on
// memory mu, but then uses (1-delta) to select the *cross* input files in
// task_mem_EST/comm_mem_EST. The prose ("input files of task i that were not
// stored on memory mu yet") makes the intent unambiguous, so this package
// follows the prose: cross parents contribute both the communication delay
// in precedence_EST and the file sizes in the two memory ESTs.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// ErrMemoryBound is returned (wrapped) when a heuristic cannot schedule the
// graph within the platform's memory bounds. The multi-pool generalisation
// (internal/multi) shares this sentinel, so one errors.Is check covers both
// engines.
var ErrMemoryBound = errors.New("memsched: graph cannot be processed within the memory bounds")

// Options tunes a heuristic run. The zero value is ready to use.
type Options struct {
	// Seed feeds the random tie-breaking of the task prioritising phase
	// (§5.1 breaks rank ties randomly). Runs with equal seeds are
	// reproducible.
	Seed int64

	// Caches, when non-nil, serves the per-graph memos (priority lists,
	// graph statics, validation) owned by the caller — typically a
	// memsched.Session. A nil Caches computes everything fresh.
	Caches *Caches

	// Stats, when non-nil, receives run statistics (candidate-cache hit
	// counters) accumulated over the run.
	Stats *RunStats

	// Record, when non-nil, receives this run's committed placement
	// sequence (reset first, Complete set only on full success) so a later
	// run can warm-start from it. Ignored by the insertion ablation and the
	// exact/simulation paths.
	Record *Trace

	// Replay, when non-nil, is a previously recorded trace whose verified
	// prefix is committed directly instead of re-deriving each decision.
	// Only consulted when the trace's platform is replay-eligible for this
	// run's platform (equal processor counts, capacities not grown); every
	// replayed step is re-verified, so results are bit-identical either
	// way. The trace is read-only and must not be mutated while any run
	// may still replay it.
	Replay *Trace
}

// RunStats carries the per-run statistics a heuristic reports through
// Options.Stats.
type RunStats struct {
	// CacheHits / CacheMisses count candidate evaluations served from the
	// epoch-invalidated (task, memory) memo vs recomputed.
	CacheHits, CacheMisses uint64
	// Makespan is the running-max makespan of the produced schedule, so
	// callers need not rescan the schedule to report it.
	Makespan float64
	// Replayed counts placements committed by verified warm-start replay
	// (Options.Replay) instead of a fresh decision scan.
	Replayed int
	// ReplayTruncated reports that a requested replay stopped before
	// consuming the whole trace — either the trace was ineligible for this
	// platform or a recorded decision no longer verified.
	ReplayTruncated bool
}

// Func is the common signature of all scheduling heuristics in this
// package. The context is checked cooperatively in the scheduling loop;
// cancellation returns ctx.Err() wrapped. A nil context is treated as
// context.Background().
type Func func(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error)

// cancelStride is how many main-loop iterations pass between cooperative
// context checks: frequent enough to interrupt sweeps promptly, sparse
// enough to be invisible in the per-schedule benchmarks.
const cancelStride = 64

// ctxErr polls ctx every cancelStride-th step (nil ctx never cancels).
func ctxErr(ctx context.Context, step int) error {
	if ctx == nil || step%cancelStride != 0 {
		return nil
	}
	return ctx.Err()
}

// wrapInterrupted labels a cancellation surfacing from the ranking/statics
// phase with the heuristic's name (matching the placement loops' wrapping);
// every other error passes through untouched.
func wrapInterrupted(name string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("core: %s interrupted: %w", name, err)
	}
	return err
}

// MemHEFT schedules g on p with Algorithm 1 of the paper: HEFT's upward-rank
// priority list, a memory selection phase minimising the earliest finish
// time under memory constraints, and a scan that skips tasks that do not
// currently fit (restarting from the head of the list after every
// assignment). It returns ErrMemoryBound when no remaining task fits.
func MemHEFT(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFT(ctx, g, p, opt)
}

// MemMinMin schedules g on p with Algorithm 2 of the paper: among all ready
// tasks, repeatedly pick the (task, memory) pair with the minimum earliest
// finish time under memory constraints.
func MemMinMin(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memMinMin(ctx, g, p, opt)
}

// HEFT is the classical memory-oblivious heuristic of Topcuoglu et al.,
// obtained by running MemHEFT with unlimited memories (the paper notes in
// §6.2.1 that the decisions then coincide). The memory bounds of p are
// ignored.
func HEFT(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFT(ctx, g, p.Unbounded(), opt)
}

// MinMin is the classical memory-oblivious MinMin heuristic of Braun et al.,
// obtained by running MemMinMin with unlimited memories. The memory bounds
// of p are ignored.
func MinMin(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memMinMin(ctx, g, p.Unbounded(), opt)
}

// Algorithms is the scheduler registry: the four heuristics of the paper by
// their paper names, plus the insertion-policy ablation.
var Algorithms = map[string]Func{
	"heft":              HEFT,
	"minmin":            MinMin,
	"memheft":           MemHEFT,
	"memminmin":         MemMinMin,
	"memheft-insertion": MemHEFTInsertion,
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	names := make([]string, 0, len(Algorithms))
	for name := range Algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName returns the heuristic registered under name (case-insensitive,
// surrounding space ignored) or an error listing the registered names.
func ByName(name string) (Func, error) {
	if f, ok := Algorithms[strings.ToLower(strings.TrimSpace(name))]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("core: unknown heuristic %q (registered: %s)", name, strings.Join(Names(), ", "))
}

// inf is the infeasibility marker used throughout the EST computations.
var inf = math.Inf(1)
