// Package core implements the paper's primary contribution: the memory-aware
// list-scheduling heuristics MemHEFT (Algorithm 1) and MemMinMin
// (Algorithm 2) for dual-memory hybrid platforms, together with the
// memory-oblivious references HEFT and MinMin they extend.
//
// Both heuristics share the same earliest-start-time machinery (§5.1): for a
// task i and a memory mu, EST(mu, i) is the max of
//
//   - resource_EST:    a processor of mu is free;
//   - precedence_EST:  parents finished, plus the cross-memory communication
//     delay for parents living on the other memory;
//   - task_mem_EST:    from the start of i onward the memory holds the
//     not-yet-present input files plus all output files;
//   - comm_mem_EST+C:  from the start of the incoming communications onward
//     the memory holds the in-flight input files; all cross
//     communications are scheduled as late as possible with
//     the uniform conservative duration
//     C(mu,i) = max cross-parent C(j,i).
//
// EFT(mu,i) = EST(mu,i) + W(mu,i); the task goes to the memory minimising
// EFT and, inside it, to the processor minimising idle time.
//
// Note on the paper's notation: §5.1 writes delta(mu,j) = 0 when j runs on
// memory mu, but then uses (1-delta) to select the *cross* input files in
// task_mem_EST/comm_mem_EST. The prose ("input files of task i that were not
// stored on memory mu yet") makes the intent unambiguous, so this package
// follows the prose: cross parents contribute both the communication delay
// in precedence_EST and the file sizes in the two memory ESTs.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// ErrMemoryBound is returned (wrapped) when a heuristic cannot schedule the
// graph within the platform's memory bounds.
var ErrMemoryBound = errors.New("core: graph cannot be processed within the memory bounds")

// Options tunes a heuristic run. The zero value is ready to use.
type Options struct {
	// Seed feeds the random tie-breaking of the task prioritising phase
	// (§5.1 breaks rank ties randomly). Runs with equal seeds are
	// reproducible.
	Seed int64
}

// Func is the common signature of all scheduling heuristics in this package.
type Func func(*dag.Graph, platform.Platform, Options) (*schedule.Schedule, error)

// MemHEFT schedules g on p with Algorithm 1 of the paper: HEFT's upward-rank
// priority list, a memory selection phase minimising the earliest finish
// time under memory constraints, and a scan that skips tasks that do not
// currently fit (restarting from the head of the list after every
// assignment). It returns ErrMemoryBound when no remaining task fits.
func MemHEFT(g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFT(g, p, opt)
}

// MemMinMin schedules g on p with Algorithm 2 of the paper: among all ready
// tasks, repeatedly pick the (task, memory) pair with the minimum earliest
// finish time under memory constraints.
func MemMinMin(g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memMinMin(g, p, opt)
}

// HEFT is the classical memory-oblivious heuristic of Topcuoglu et al.,
// obtained by running MemHEFT with unlimited memories (the paper notes in
// §6.2.1 that the decisions then coincide). The memory bounds of p are
// ignored.
func HEFT(g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFT(g, p.Unbounded(), opt)
}

// MinMin is the classical memory-oblivious MinMin heuristic of Braun et al.,
// obtained by running MemMinMin with unlimited memories. The memory bounds
// of p are ignored.
func MinMin(g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memMinMin(g, p.Unbounded(), opt)
}

// Algorithms lists the four heuristics by their paper names.
var Algorithms = map[string]Func{
	"heft":      HEFT,
	"minmin":    MinMin,
	"memheft":   MemHEFT,
	"memminmin": MemMinMin,
}

// ByName returns the heuristic registered under name (case-sensitive, as in
// Algorithms) or an error listing the valid names.
func ByName(name string) (Func, error) {
	if f, ok := Algorithms[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("core: unknown heuristic %q (want heft, minmin, memheft or memminmin)", name)
}

// inf is the infeasibility marker used throughout the EST computations.
var inf = math.Inf(1)
