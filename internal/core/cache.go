package core

import (
	"context"
	"sync"

	"repro/internal/dag"
	"repro/internal/memo"
	"repro/internal/platform"
)

// Caches owns the per-graph memoized scheduler inputs that used to live in
// process globals (a single statics slot and a single priority-list slot
// under package mutexes): the graph statics consumed by every Partial, the
// validation result, and the priority lists of MemHEFT keyed by tie-break
// seed. A memsched.Session creates one Caches per graph, which makes the
// memos concurrency-safe and contention-free across sessions by
// construction — two goroutines scheduling different graphs no longer share
// (and thrash) anything.
//
// All methods tolerate a nil receiver, which simply computes fresh: the
// reference oracles and one-shot callers pass no cache at all.
//
// Growth is bounded by construction: the statics are one slot (a session is
// one graph), and the priority memo holds at most maxPriorityEntries seeds
// before evicting. The task/edge counts guard against the graph growing
// between calls (tasks and edges are append-only and immutable once added,
// so the counts pin the graph's content); growth re-keys the cache and
// drops every memo.
type Caches struct {
	mu             sync.Mutex
	g              *dag.Graph
	nTasks, nEdges int
	statics        *graphStatics
	priority       *memo.Bounded[int64, []dag.TaskID]

	// frozen is the read-only priority-list view inherited from Fork: a
	// snapshot of the parent's memoized lists at fork time. Reads fall
	// back to it after missing the own memo; writes always go to the own
	// memo (copy-on-write — the first divergent seed detaches into
	// private storage and the frozen view is never mutated). Dropped on
	// rekey like every other memo.
	frozen map[int64][]dag.TaskID
}

// NewCaches returns an empty cache set, ready to be shared by any number of
// goroutines scheduling the same graph.
func NewCaches() *Caches { return &Caches{} }

// maxPriorityEntries bounds the per-seed priority-list memo. Sweeps use one
// seed (sometimes a handful); beyond the bound an arbitrary entry is
// evicted, which only costs a recompute.
const maxPriorityEntries = 64

// rekey points the cache at g, dropping every memo when the graph or its
// append-only content changed. The caller holds c.mu.
func (c *Caches) rekey(g *dag.Graph) {
	if c.g == g && c.nTasks == g.NumTasks() && c.nEdges == g.NumEdges() {
		return
	}
	c.g, c.nTasks, c.nEdges = g, g.NumTasks(), g.NumEdges()
	c.statics = nil
	if c.priority != nil {
		c.priority.Reset()
	}
	c.frozen = nil
}

// Fork returns a child cache set born warm: it shares the parent's
// immutable memos — the graph statics (inner slices are never mutated once
// computed; the struct is copied so the validation flag stays private) and
// a frozen snapshot of the memoized priority lists — behind copy-on-write
// semantics. The child takes its own mutex from birth and never locks the
// parent's again, so forked sessions stay contention-free; new seeds or a
// re-keyed graph write only to the child's private memos.
func (c *Caches) Fork() *Caches {
	if c == nil {
		return NewCaches()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	child := &Caches{g: c.g, nTasks: c.nTasks, nEdges: c.nEdges}
	if c.statics != nil {
		snap := *c.statics
		child.statics = &snap
	}
	if len(c.frozen) > 0 {
		child.frozen = make(map[int64][]dag.TaskID, len(c.frozen))
		for seed, list := range c.frozen {
			child.frozen[seed] = list
		}
	}
	child.frozen = c.priority.Snapshot(child.frozen)
	return child
}

// Warm precomputes everything a fork inherits — validation, graph statics
// and the priority list of every given seed — with cooperative
// cancellation, so forks taken afterwards are born fully warm.
func (c *Caches) Warm(ctx context.Context, g *dag.Graph, seeds []int64) error {
	if c == nil {
		return nil
	}
	if err := c.warmStatics(ctx, g); err != nil {
		return err
	}
	if err := c.Validate(g); err != nil {
		return err
	}
	for _, seed := range seeds {
		if _, err := c.PriorityList(ctx, g, seed); err != nil {
			return err
		}
	}
	return nil
}

// staticsOf returns the memoized statics of g, computing them on a miss.
func (c *Caches) staticsOf(g *dag.Graph) *graphStatics {
	if c == nil {
		return computeStatics(g)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rekey(g)
	if c.statics == nil {
		c.statics = computeStatics(g)
	}
	return c.statics
}

// warmStatics memoizes g's statics ahead of NewPartialCached with
// cooperative cancellation: the O(n+e) derivation loop polls ctx, so a cold
// session's statics phase is interruptible like the placement loops. A nil
// receiver or nil ctx computes nothing — NewPartialCached will derive the
// statics inline as before.
func (c *Caches) warmStatics(ctx context.Context, g *dag.Graph) error {
	if c == nil || ctx == nil {
		return nil
	}
	c.mu.Lock()
	c.rekey(g)
	warm := c.statics != nil
	nTasks, nEdges := c.nTasks, c.nEdges
	c.mu.Unlock()
	if warm {
		return nil
	}
	s, err := computeStaticsCtx(ctx, g)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.g == g && c.nTasks == nTasks && c.nEdges == nEdges && c.statics == nil {
		c.statics = s
	}
	c.mu.Unlock()
	return nil
}

// PriorityList returns the memoized MemHEFT priority list of (g, seed),
// computing it on a miss. The returned slice is a fresh copy the caller may
// mutate. The O(n log n) ranking runs outside the mutex so a miss never
// blocks concurrent hits on the same session; two goroutines racing on the
// same cold seed simply both compute (deterministically identical) lists
// and one wins the store. The context (nil allowed) cancels a cold ranking
// cooperatively; memo hits never consult it.
func (c *Caches) PriorityList(ctx context.Context, g *dag.Graph, seed int64) ([]dag.TaskID, error) {
	if c == nil {
		return PriorityList(ctx, g, seed)
	}
	c.mu.Lock()
	c.rekey(g)
	if c.priority == nil {
		c.priority = memo.NewBounded[int64, []dag.TaskID](maxPriorityEntries)
	}
	if list, ok := c.priority.Get(seed); ok {
		out := append([]dag.TaskID(nil), list...)
		c.mu.Unlock()
		return out, nil
	}
	if list, ok := c.frozen[seed]; ok {
		// Inherited from a fork: the frozen snapshot is read-only, so a
		// copy serves the hit exactly like the own memo.
		out := append([]dag.TaskID(nil), list...)
		c.mu.Unlock()
		return out, nil
	}
	nTasks, nEdges := c.nTasks, c.nEdges
	c.mu.Unlock()

	list, err := PriorityList(ctx, g, seed)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	// Store only while the cache is still keyed to the graph content the
	// list was derived from (mutating a graph mid-session is forbidden,
	// but a stale entry must not survive it).
	if c.g == g && c.nTasks == nTasks && c.nEdges == nEdges {
		if _, ok := c.priority.Get(seed); !ok {
			c.priority.Put(seed, append([]dag.TaskID(nil), list...))
		}
	}
	c.mu.Unlock()
	return list, nil
}

// Validate is Graph.Validate with a successful result memoized (an
// unchanged graph cannot become invalid).
func (c *Caches) Validate(g *dag.Graph) error {
	if c == nil {
		return g.Validate()
	}
	c.mu.Lock()
	c.rekey(g)
	if c.statics == nil {
		c.statics = computeStatics(g)
	}
	s := c.statics
	done := s.validated
	c.mu.Unlock()
	if done {
		return nil
	}
	if err := g.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	s.validated = true
	c.mu.Unlock()
	return nil
}

// computeStatics derives the per-graph immutable inputs of a Partial.
func computeStatics(g *dag.Graph) *graphStatics {
	s, _ := computeStaticsCtx(nil, g) // nil ctx never cancels
	return s
}

// computeStaticsCtx is computeStatics with cooperative cancellation: the
// derivation loop polls ctx (nil allowed) every statics stride.
func computeStaticsCtx(ctx context.Context, g *dag.Graph) (*graphStatics, error) {
	n := g.NumTasks()
	edges := g.Edges()
	s := &graphStatics{
		wOn:      [2][]float64{make([]float64, n), make([]float64, n)},
		outFiles: make([]int64, n),
		inDegree: make([]int, n),
	}
	for i := 0; i < n; i++ {
		if ctx != nil && i%staticsStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		id := dag.TaskID(i)
		s.inDegree[i] = len(g.In(id))
		if s.inDegree[i] == 0 {
			s.sources = append(s.sources, id)
		}
		for _, e := range g.Out(id) {
			s.outFiles[i] += edges[e].File
		}
		t := g.Task(id)
		s.wOn[platform.Blue][i] = t.WBlue
		s.wOn[platform.Red][i] = t.WRed
	}
	return s, nil
}

// staticsStride is how many tasks the statics loop processes between
// cooperative context polls.
const staticsStride = 1024
