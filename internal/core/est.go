package core

import (
	"math"

	"repro/internal/dag"
	"repro/internal/memfn"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Partial is a partial schedule under construction: the placements committed
// so far, the per-processor availability times, and one free-memory
// staircase per memory. MemHEFT and MemMinMin drive it internally; it is
// exported so that the exact branch-and-bound search of internal/exact can
// explore the same decision space with identical semantics.
//
// Incremental engine. A Commit perturbs very little of the state — one
// processor of one memory, the staircase(s) the committed task's files live
// on, and the readiness of its children — so Partial maintains just enough
// bookkeeping to re-derive only what changed:
//
//   - ready-ness is tracked intrusively with per-task uncommitted-parent
//     counters and an ID-sorted ready list, replacing the O(n·deg) scans of
//     Ready/ReadyTasks;
//   - the makespan is a running max updated on Commit (the branch-and-bound
//     of internal/exact reads it once per node);
//   - each memory carries an epoch counter, bumped whenever its staircase or
//     one of its processors mutates. Evaluate memoizes its result per
//     (task, memory) and reuses it as long as the memory's epoch and the
//     task's parent set are unchanged — so after a commit on one memory,
//     the other memory's candidates are typically served from cache;
//   - the precedence aggregates of a ready task (precedence_EST, cross file
//     volume, C(mu,i)) only depend on its committed parents, so they are
//     computed once per (task, memory) and invalidated by parent commits
//     only;
//   - the staircase updates of one Commit are spliced in a single
//     memfn.ReserveBatch pass per touched memory.
//
// All of this is invisible in the results: candidates and schedules are
// bit-identical to the naive re-evaluation (see naive.go for the retained
// reference oracles and TestGoldenEquivalence for the proof).
type Partial struct {
	g     *dag.Graph
	edges []dag.Edge // g.Edges(), cached to skip bounds checks in hot loops
	p     platform.Platform

	sched     *schedule.Schedule
	free      [2]*memfn.Staircase
	availProc []float64 // per processor: finish time of its last task
	assigned  []bool    // per task
	finish    []float64 // per task: actual finish time (AFT)
	nDone     int

	pending    []int        // per task: number of uncommitted parents
	ready      []dag.TaskID // ID-sorted list of ready tasks
	newlyReady []dag.TaskID // tasks turned ready by the last Commit
	makespan   float64      // running max of committed finish times

	commitSeq   uint64       // number of commits so far
	epoch       [2]uint64    // per memory: mutation counter
	parentStamp []uint64     // per task: commitSeq of the last parent commit
	slots       []evalSlot   // per (task, memory): memoized evaluation state
	outFiles    []int64      // per task: total output file size (immutable)
	wOn         [2][]float64 // per (memory, task): W(mu, i) (immutable)

	// unbounded marks memories whose capacity is platform.Unlimited (or
	// larger): their fits are always immediate, so their staircases are
	// neither maintained nor consulted. This turns HEFT/MinMin (MemHEFT
	// and MemMinMin on an Unbounded platform) into pure list schedulers
	// with zero memory bookkeeping, without changing any decision.
	unbounded [2]bool

	batchMu, batchOther []memfn.Delta // Commit scratch, reused

	// hits and misses count memoized candidate lookups served fresh vs
	// recomputed; sessions surface the ratio in their result stats.
	hits, misses uint64

	// noCache disables all memoization; the reference oracles of naive.go
	// set it so every Evaluate recomputes from scratch.
	noCache bool

	// ins, when non-nil, switches processor selection to classical
	// HEFT's insertion-based policy (see insertion.go). The paper's
	// algorithms leave it nil (append policy).
	ins *insertionState
}

// evalSlot is the memoized evaluation state of one (task, memory) pair,
// kept in a single struct so one cache line serves both lookups of a
// candidate check. The candidate part (cand) is valid while the memory's
// epoch and the task's parent stamp still match. The static part (the
// parent-derived aggregates precEST/cross/cmu) is fixed once a task is
// ready — all parents committed, none can commit again — so it is computed
// exactly once per readiness and invalidated by parent commits only.
type evalSlot struct {
	cand  Candidate
	epoch uint64
	stamp uint64
	ok    bool

	precEST float64
	cross   int64
	cmu     float64
	sstamp  uint64
	sok     bool
}

// graphStatics holds the per-graph immutable inputs of a Partial: task
// durations per memory, output file totals, in-degrees and sources. Sweeps
// schedule the same graph many times (varying only the platform bounds), so
// a session memoizes its graph's statics in a Caches (see cache.go).
type graphStatics struct {
	wOn       [2][]float64
	outFiles  []int64
	inDegree  []int        // template for Partial.pending
	sources   []dag.TaskID // template for Partial.ready
	validated bool         // a successful Graph.Validate ran for this graph
}

// NewPartial returns an empty partial schedule for g on p, deriving the
// graph statics from scratch.
func NewPartial(g *dag.Graph, p platform.Platform) *Partial {
	return NewPartialCached(g, p, nil)
}

// NewPartialCached is NewPartial serving the per-graph statics from c (a
// nil c computes them fresh).
func NewPartialCached(g *dag.Graph, p platform.Platform, c *Caches) *Partial {
	n := g.NumTasks()
	gs := c.staticsOf(g)
	st := &Partial{
		g:           g,
		edges:       g.Edges(),
		p:           p,
		sched:       schedule.New(g, p),
		free:        [2]*memfn.Staircase{memfn.New(p.MBlue), memfn.New(p.MRed)},
		availProc:   make([]float64, p.TotalProcs()),
		assigned:    make([]bool, n),
		finish:      make([]float64, n),
		pending:     append([]int(nil), gs.inDegree...),
		parentStamp: make([]uint64, n),
		slots:       make([]evalSlot, 2*n),
		outFiles:    gs.outFiles,
		wOn:         gs.wOn,
		unbounded:   [2]bool{p.MBlue >= platform.Unlimited, p.MRed >= platform.Unlimited},
	}
	st.ready = make([]dag.TaskID, len(gs.sources), n)
	copy(st.ready, gs.sources)
	return st
}

// Clone returns an independent deep copy, for tree search.
func (st *Partial) Clone() *Partial { return st.CloneInto(nil) }

// CloneInto deep-copies st into dst, reusing dst's storage when possible,
// and returns dst. A nil dst allocates a fresh Partial; internal/exact keeps
// a free list of exhausted nodes and clones into them to avoid churning the
// allocator at every search node.
func (st *Partial) CloneInto(dst *Partial) *Partial {
	if dst == nil {
		dst = &Partial{}
	}
	dst.g, dst.edges, dst.p = st.g, st.edges, st.p
	if dst.sched == nil {
		dst.sched = &schedule.Schedule{}
	}
	dst.sched.Graph = st.sched.Graph
	dst.sched.Platform = st.sched.Platform
	dst.sched.Tasks = append(dst.sched.Tasks[:0], st.sched.Tasks...)
	dst.sched.CommStart = append(dst.sched.CommStart[:0], st.sched.CommStart...)
	dst.free[0] = st.free[0].CloneInto(dst.free[0])
	dst.free[1] = st.free[1].CloneInto(dst.free[1])
	dst.availProc = append(dst.availProc[:0], st.availProc...)
	dst.assigned = append(dst.assigned[:0], st.assigned...)
	dst.finish = append(dst.finish[:0], st.finish...)
	dst.nDone = st.nDone
	dst.pending = append(dst.pending[:0], st.pending...)
	dst.ready = append(dst.ready[:0], st.ready...)
	dst.newlyReady = dst.newlyReady[:0]
	dst.makespan = st.makespan
	dst.commitSeq = st.commitSeq
	dst.epoch = st.epoch
	dst.parentStamp = append(dst.parentStamp[:0], st.parentStamp...)
	dst.slots = append(dst.slots[:0], st.slots...)
	dst.outFiles = st.outFiles // immutable, shared
	dst.wOn = st.wOn           // immutable, shared
	dst.unbounded = st.unbounded
	dst.hits, dst.misses = st.hits, st.misses
	dst.noCache = st.noCache
	if st.ins == nil {
		dst.ins = nil
	} else {
		if dst.ins == nil || len(dst.ins.busy) != len(st.ins.busy) {
			dst.ins = newInsertionState(len(st.ins.busy))
		}
		for i, list := range st.ins.busy {
			dst.ins.busy[i] = append(dst.ins.busy[i][:0], list...)
		}
	}
	return dst
}

// Schedule returns the underlying schedule (complete only when Done).
func (st *Partial) Schedule() *schedule.Schedule { return st.sched }

// Done reports whether every task has been committed.
func (st *Partial) Done() bool { return st.nDone == st.g.NumTasks() }

// Assigned reports whether task id has been committed.
func (st *Partial) Assigned(id dag.TaskID) bool { return st.assigned[id] }

// Finish returns the committed finish time of task id (0 if unassigned).
func (st *Partial) Finish(id dag.TaskID) float64 { return st.finish[id] }

// MakespanSoFar returns the latest committed finish time. It is a running
// max maintained by Commit, O(1).
func (st *Partial) MakespanSoFar() float64 { return st.makespan }

// CacheStats returns how many candidate evaluations were served from the
// (task, memory) memo versus recomputed.
func (st *Partial) CacheStats() (hits, misses uint64) { return st.hits, st.misses }

// reportStats accumulates the candidate-cache counters and the running
// makespan into rs (nil-safe).
func (st *Partial) reportStats(rs *RunStats) {
	if rs != nil {
		rs.CacheHits += st.hits
		rs.CacheMisses += st.misses
		rs.Makespan = st.makespan
	}
}

// Candidate is the outcome of evaluating one (task, memory) pair.
type Candidate struct {
	Task dag.TaskID
	Mem  platform.Memory
	EST  float64 // earliest start time; +inf when infeasible
	EFT  float64 // EST + W(mem)
	CMu  float64 // conservative uniform communication duration C(mu,i)
}

// Feasible reports whether the pair can currently be scheduled.
func (c Candidate) Feasible() bool { return !math.IsInf(c.EFT, 1) }

// Ready reports whether every parent of task id has been committed. The
// uncommitted-parent counters make this O(1).
func (st *Partial) Ready(id dag.TaskID) bool {
	return !st.assigned[id] && st.pending[id] == 0
}

// ReadyTasks returns all ready tasks in ID order. The returned slice is the
// maintained internal list: it must not be modified and is only valid until
// the next Commit (or Clone into this Partial).
func (st *Partial) ReadyTasks() []dag.TaskID { return st.ready }

// NewlyReady returns the tasks whose last uncommitted parent was the most
// recently committed task, in edge order. Like ReadyTasks, the slice is
// internal and valid until the next Commit.
func (st *Partial) NewlyReady() []dag.TaskID { return st.newlyReady }

// duration returns W(mu, id).
func (st *Partial) duration(id dag.TaskID, mu platform.Memory) float64 {
	return st.wOn[mu][id]
}

// staticFor returns the parent-derived aggregates of a ready task on memory
// mu: precedence_EST, the total size of input files not yet on mu, and the
// conservative communication duration C(mu,i). For a ready task these are
// fixed (all parents committed), so they are memoized per (task, memory)
// keyed by the task's parent stamp.
func (st *Partial) staticFor(id dag.TaskID, mu platform.Memory) (precEST float64, cross int64, cmu float64) {
	sp := &st.slots[2*int(id)+int(mu)]
	if !st.noCache && sp.sok && sp.sstamp == st.parentStamp[id] {
		return sp.precEST, sp.cross, sp.cmu
	}
	for _, e := range st.g.In(id) {
		edge := &st.edges[e]
		aft := st.finish[edge.From]
		if st.sched.MemoryOf(edge.From) == mu {
			if aft > precEST {
				precEST = aft
			}
			continue
		}
		if v := aft + edge.Comm; v > precEST {
			precEST = v
		}
		cross += edge.File
		if edge.Comm > cmu {
			cmu = edge.Comm
		}
	}
	if !st.noCache {
		sp.precEST, sp.cross, sp.cmu = precEST, cross, cmu
		sp.sstamp, sp.sok = st.parentStamp[id], true
	}
	return precEST, cross, cmu
}

// slotFresh reports whether a memoized candidate slot is still valid:
// nothing on mu mutated and no parent of id committed since it was
// evaluated.
func (st *Partial) slotFresh(e *evalSlot, id dag.TaskID, mu platform.Memory) bool {
	return e.ok && e.epoch == st.epoch[mu] && e.stamp == st.parentStamp[id]
}

// cacheFresh is slotFresh for the (id, mu) slot.
func (st *Partial) cacheFresh(id dag.TaskID, mu platform.Memory) bool {
	return st.slotFresh(&st.slots[2*int(id)+int(mu)], id, mu)
}

// BestFresh reports whether the memoized Best of id is still valid on both
// memories; MemMinMin's candidate heap uses it for lazy invalidation.
func (st *Partial) BestFresh(id dag.TaskID) bool {
	return st.cacheFresh(id, platform.Blue) && st.cacheFresh(id, platform.Red)
}

// blockedOn decides in O(1) whether id is infeasible on mu — exactly when
// Evaluate would return EFT = +inf: the memory has no processor, or its
// final free value cannot hold the task's files. (Resource, precedence and
// C(mu,i) components are always finite, and Partial's staircases are never
// negative, so only the final value can push an EarliestFit to +inf.) The
// memoizing Evaluate uses it to skip the full evaluation of blocked
// candidates, which MemHEFT's head-of-list rescan hits over and over while
// a high-priority task waits for memory.
func (st *Partial) blockedOn(id dag.TaskID, mu platform.Memory) bool {
	lo, hi := st.p.ProcRange(mu)
	if lo == hi {
		return true
	}
	if st.unbounded[mu] {
		return false
	}
	_, cross, _ := st.staticFor(id, mu)
	return st.free[mu].FinalValue() < cross+st.outFiles[id]
}

// Evaluate computes EST and EFT of a ready task id on memory mu following
// §5.1. The caller must ensure Ready(id). With the insertion policy enabled
// the resource component searches idle gaps instead of queue tails. Results
// are memoized per (task, memory) under the epoch/parent-stamp invalidation
// scheme described on Partial.
func (st *Partial) Evaluate(id dag.TaskID, mu platform.Memory) Candidate {
	if st.noCache {
		return st.evaluate(id, mu)
	}
	e := &st.slots[2*int(id)+int(mu)]
	if st.slotFresh(e, id, mu) {
		st.hits++
		return e.cand
	}
	st.misses++
	var c Candidate
	if st.blockedOn(id, mu) {
		// The infeasible candidate evaluate would build, minus the
		// two staircase queries.
		c = Candidate{Task: id, Mem: mu, EST: inf, EFT: inf}
	} else {
		c = st.evaluate(id, mu)
	}
	e.cand, e.epoch, e.stamp, e.ok = c, st.epoch[mu], st.parentStamp[id], true
	return c
}

// evaluate is the uncached candidate computation.
func (st *Partial) evaluate(id dag.TaskID, mu platform.Memory) Candidate {
	if st.ins != nil {
		return st.evaluateInsertion(id, mu)
	}
	c := Candidate{Task: id, Mem: mu, EST: inf, EFT: inf}

	// resource_EST: earliest availability among mu's processors.
	lo, hi := st.p.ProcRange(mu)
	if lo == hi {
		return c // no processor on this memory
	}
	resourceEST := inf
	for proc := lo; proc < hi; proc++ {
		if st.availProc[proc] < resourceEST {
			resourceEST = st.availProc[proc]
		}
	}

	// precedence_EST and the cross-input aggregates.
	precedenceEST, crossFiles, cmu := st.staticFor(id, mu)

	// Memory needs: inputs not yet on mu, plus every output file. A zero
	// need always fits at time 0: Partial's staircases are never driven
	// negative (Commit only places feasibility-checked candidates), so
	// the query can be skipped outright.
	var taskMemEST, commMemEST float64
	if !st.unbounded[mu] {
		if need := crossFiles + st.outFiles[id]; need != 0 {
			taskMemEST = st.free[mu].EarliestFit(0, need)
		}
		if crossFiles != 0 {
			commMemEST = st.free[mu].EarliestFit(0, crossFiles)
		}
	}

	// All components are non-negative and NaN-free, so plain comparisons
	// reproduce math.Max bit for bit.
	est := resourceEST
	if precedenceEST > est {
		est = precedenceEST
	}
	if taskMemEST > est {
		est = taskMemEST
	}
	if v := commMemEST + cmu; v > est {
		est = v
	}
	if est == inf {
		return c
	}
	c.EST = est
	c.EFT = est + st.duration(id, mu)
	c.CMu = cmu
	return c
}

// Best returns the better of the two memory candidates for a ready task:
// minimum EFT, ties resolved towards blue (deterministic). The returned
// candidate may be infeasible on both memories (EFT = +inf).
func (st *Partial) Best(id dag.TaskID) Candidate {
	b := st.Evaluate(id, platform.Blue)
	r := st.Evaluate(id, platform.Red)
	if r.EFT < b.EFT {
		return r
	}
	return b
}

// finishTask records the completion bookkeeping shared by both commit
// policies: assignment, running makespan, ready tracking and parent stamps.
func (st *Partial) finishTask(id dag.TaskID, fin float64) {
	st.assigned[id] = true
	st.finish[id] = fin
	st.nDone++
	if fin > st.makespan {
		st.makespan = fin
	}
	st.commitSeq++
	st.removeReady(id)
	st.newlyReady = st.newlyReady[:0]
	for _, e := range st.g.Out(id) {
		child := st.edges[e].To
		st.parentStamp[child] = st.commitSeq
		st.pending[child]--
		if st.pending[child] == 0 {
			st.ready = insertSorted(st.ready, child)
			st.newlyReady = append(st.newlyReady, child)
		}
	}
}

// removeReady deletes id from the sorted ready list (no-op if absent).
func (st *Partial) removeReady(id dag.TaskID) {
	lo, hi := 0, len(st.ready)
	for lo < hi {
		mid := (lo + hi) / 2
		if st.ready[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.ready) && st.ready[lo] == id {
		copy(st.ready[lo:], st.ready[lo+1:])
		st.ready = st.ready[:len(st.ready)-1]
	}
}

// commitFiles applies all staircase updates of one commit: a single batched
// splice on the task's memory and, when it has cross parents, one on the
// other memory. It bumps the memory epochs accordingly (the task's memory
// epoch always changes: outputs are reserved there, and a processor of it
// was claimed by the caller).
//
// The per-edge reservations of one commit share their interval endpoints —
// intra inputs are all consumed at fin, cross inputs all occupy the same
// conservative window, all outputs materialise at start — so they are
// summed into at most three deltas per memory before the splice. Staircase
// maintenance is skipped entirely for unbounded memories: their fits are
// always immediate, so their state can never influence a candidate.
func (st *Partial) commitFiles(id dag.TaskID, mu platform.Memory, start, fin, cmu float64) {
	var intraSum, crossSum int64
	for _, e := range st.g.In(id) {
		edge := &st.edges[e]
		if st.sched.MemoryOf(edge.From) == mu {
			// The file was reserved open-ended on mu when the
			// parent was committed; it is consumed at fin.
			intraSum += edge.File
			continue
		}
		// Cross edge: emit the true ALAP communication (per-edge
		// duration), account for the conservative window.
		st.sched.CommStart[edge.ID] = start - edge.Comm
		crossSum += edge.File
	}
	if !st.unbounded[mu] {
		ops := st.batchMu[:0]
		// Output files: open-ended reservations on mu starting now.
		if out := st.outFiles[id]; out != 0 {
			ops = append(ops, memfn.Delta{From: start, To: memfn.Inf, Amount: out})
		}
		if intraSum != 0 {
			ops = append(ops, memfn.Delta{From: fin, To: memfn.Inf, Amount: -intraSum})
		}
		if crossSum != 0 {
			ops = append(ops, memfn.Delta{From: start - cmu, To: fin, Amount: crossSum})
		}
		if len(ops) > 0 {
			st.free[mu].ReserveBatch(ops)
		}
		st.batchMu = ops[:0]
	}
	st.epoch[mu]++
	if crossSum != 0 {
		other := mu.Other()
		if !st.unbounded[other] {
			// The transferred files leave the source memory when the
			// conservative transfer completes, at the task's start.
			st.batchOther = append(st.batchOther[:0], memfn.Delta{From: start, To: memfn.Inf, Amount: -crossSum})
			st.free[other].ReserveBatch(st.batchOther)
			st.batchOther = st.batchOther[:0]
			st.epoch[other]++
		}
	}
}

// Commit places the candidate into the schedule: picks the processor that
// minimises idle time, schedules every cross communication as late as
// possible, and updates the free-memory staircases:
//
//   - output files of the task are reserved on mu from its start, open-ended
//     (they will be partially released when each consumer is scheduled);
//   - intra-memory input files are released at the task's finish;
//   - cross input files are reserved on mu over the conservative window
//     [EST - C(mu,i), finish) and released on the source memory when the
//     (conservative) transfer completes, i.e. at the task's start.
//
// The feasibility of these reservations is guaranteed by task_mem_EST and
// comm_mem_EST, so Commit never drives a staircase negative.
func (st *Partial) Commit(c Candidate) {
	if st.ins != nil {
		st.commitInsertion(c)
		return
	}
	id, mu := c.Task, c.Mem
	w := st.duration(id, mu)
	start, fin := c.EST, c.EST+w

	// Processor selection: minimise idle time EST - avail among the
	// processors of mu that are free by EST.
	lo, hi := st.p.ProcRange(mu)
	bestProc, bestAvail := -1, math.Inf(-1)
	for proc := lo; proc < hi; proc++ {
		a := st.availProc[proc]
		if a <= start+schedule.Eps && a > bestAvail {
			bestProc, bestAvail = proc, a
		}
	}
	if bestProc < 0 {
		// Cannot happen: resource_EST <= start guarantees a free
		// processor.
		panic("core: no free processor at committed start time")
	}

	st.sched.Tasks[id] = schedule.TaskPlacement{Start: start, Proc: bestProc}
	st.availProc[bestProc] = fin
	st.finishTask(id, fin)
	st.commitFiles(id, mu, start, fin, c.CMu)
}
