package core

import (
	"math"

	"repro/internal/dag"
	"repro/internal/memfn"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Partial is a partial schedule under construction: the placements committed
// so far, the per-processor availability times, and one free-memory
// staircase per memory. MemHEFT and MemMinMin drive it internally; it is
// exported so that the exact branch-and-bound search of internal/exact can
// explore the same decision space with identical semantics.
type Partial struct {
	g *dag.Graph
	p platform.Platform

	sched     *schedule.Schedule
	free      [2]*memfn.Staircase
	availProc []float64 // per processor: finish time of its last task
	assigned  []bool    // per task
	finish    []float64 // per task: actual finish time (AFT)
	nDone     int

	// ins, when non-nil, switches processor selection to classical
	// HEFT's insertion-based policy (see insertion.go). The paper's
	// algorithms leave it nil (append policy).
	ins *insertionState
}

// memfnInf aliases the open-ended reservation marker for insertion.go.
var memfnInf = memfn.Inf

// NewPartial returns an empty partial schedule for g on p.
func NewPartial(g *dag.Graph, p platform.Platform) *Partial {
	return &Partial{
		g:         g,
		p:         p,
		sched:     schedule.New(g, p),
		free:      [2]*memfn.Staircase{memfn.New(p.MBlue), memfn.New(p.MRed)},
		availProc: make([]float64, p.TotalProcs()),
		assigned:  make([]bool, g.NumTasks()),
		finish:    make([]float64, g.NumTasks()),
	}
}

// Clone returns an independent deep copy, for tree search.
func (st *Partial) Clone() *Partial {
	c := &Partial{
		g:         st.g,
		p:         st.p,
		sched:     cloneSchedule(st.sched),
		free:      [2]*memfn.Staircase{st.free[0].Clone(), st.free[1].Clone()},
		availProc: append([]float64(nil), st.availProc...),
		assigned:  append([]bool(nil), st.assigned...),
		finish:    append([]float64(nil), st.finish...),
		nDone:     st.nDone,
	}
	if st.ins != nil {
		c.ins = newInsertionState(len(st.ins.busy))
		for i, list := range st.ins.busy {
			c.ins.busy[i] = append([]busyInterval(nil), list...)
		}
	}
	return c
}

func cloneSchedule(s *schedule.Schedule) *schedule.Schedule {
	return &schedule.Schedule{
		Graph:     s.Graph,
		Platform:  s.Platform,
		Tasks:     append([]schedule.TaskPlacement(nil), s.Tasks...),
		CommStart: append([]float64(nil), s.CommStart...),
	}
}

// Schedule returns the underlying schedule (complete only when Done).
func (st *Partial) Schedule() *schedule.Schedule { return st.sched }

// Done reports whether every task has been committed.
func (st *Partial) Done() bool { return st.nDone == st.g.NumTasks() }

// Assigned reports whether task id has been committed.
func (st *Partial) Assigned(id dag.TaskID) bool { return st.assigned[id] }

// Finish returns the committed finish time of task id (0 if unassigned).
func (st *Partial) Finish(id dag.TaskID) float64 { return st.finish[id] }

// MakespanSoFar returns the latest committed finish time.
func (st *Partial) MakespanSoFar() float64 {
	ms := 0.0
	for i, done := range st.assigned {
		if done && st.finish[i] > ms {
			ms = st.finish[i]
		}
	}
	return ms
}

// Candidate is the outcome of evaluating one (task, memory) pair.
type Candidate struct {
	Task dag.TaskID
	Mem  platform.Memory
	EST  float64 // earliest start time; +inf when infeasible
	EFT  float64 // EST + W(mem)
	CMu  float64 // conservative uniform communication duration C(mu,i)
}

// Feasible reports whether the pair can currently be scheduled.
func (c Candidate) Feasible() bool { return !math.IsInf(c.EFT, 1) }

// Ready reports whether every parent of task id has been committed.
func (st *Partial) Ready(id dag.TaskID) bool {
	if st.assigned[id] {
		return false
	}
	for _, e := range st.g.In(id) {
		if !st.assigned[st.g.Edge(e).From] {
			return false
		}
	}
	return true
}

// ReadyTasks returns all ready tasks in ID order.
func (st *Partial) ReadyTasks() []dag.TaskID {
	var out []dag.TaskID
	for i := 0; i < st.g.NumTasks(); i++ {
		if st.Ready(dag.TaskID(i)) {
			out = append(out, dag.TaskID(i))
		}
	}
	return out
}

// duration returns W(mu, id).
func (st *Partial) duration(id dag.TaskID, mu platform.Memory) float64 {
	t := st.g.Task(id)
	if mu == platform.Blue {
		return t.WBlue
	}
	return t.WRed
}

// Evaluate computes EST and EFT of a ready task id on memory mu following
// §5.1. The caller must ensure Ready(id). With the insertion policy enabled
// the resource component searches idle gaps instead of queue tails.
func (st *Partial) Evaluate(id dag.TaskID, mu platform.Memory) Candidate {
	if st.ins != nil {
		return st.evaluateInsertion(id, mu)
	}
	c := Candidate{Task: id, Mem: mu, EST: inf, EFT: inf}

	// resource_EST: earliest availability among mu's processors.
	lo, hi := st.p.ProcRange(mu)
	if lo == hi {
		return c // no processor on this memory
	}
	resourceEST := inf
	for proc := lo; proc < hi; proc++ {
		if st.availProc[proc] < resourceEST {
			resourceEST = st.availProc[proc]
		}
	}

	// precedence_EST and the cross-input aggregates.
	precedenceEST := 0.0
	var crossFiles int64 // input files not yet on mu
	cmu := 0.0           // C(mu, i) = max cross C(j,i)
	for _, e := range st.g.In(id) {
		edge := st.g.Edge(e)
		parentMem := st.sched.MemoryOf(edge.From)
		aft := st.finish[edge.From]
		if parentMem == mu {
			if aft > precedenceEST {
				precedenceEST = aft
			}
			continue
		}
		if v := aft + edge.Comm; v > precedenceEST {
			precedenceEST = v
		}
		crossFiles += edge.File
		if edge.Comm > cmu {
			cmu = edge.Comm
		}
	}

	// Memory needs: inputs not yet on mu, plus every output file.
	var outFiles int64
	for _, e := range st.g.Out(id) {
		outFiles += st.g.Edge(e).File
	}

	taskMemEST := st.free[mu].EarliestFit(0, crossFiles+outFiles)
	commMemEST := st.free[mu].EarliestFit(0, crossFiles)

	est := math.Max(resourceEST, precedenceEST)
	est = math.Max(est, taskMemEST)
	est = math.Max(est, commMemEST+cmu)
	if math.IsInf(est, 1) {
		return c
	}
	c.EST = est
	c.EFT = est + st.duration(id, mu)
	c.CMu = cmu
	return c
}

// Best returns the better of the two memory candidates for a ready task:
// minimum EFT, ties resolved towards blue (deterministic). The returned
// candidate may be infeasible on both memories (EFT = +inf).
func (st *Partial) Best(id dag.TaskID) Candidate {
	b := st.Evaluate(id, platform.Blue)
	r := st.Evaluate(id, platform.Red)
	if r.EFT < b.EFT {
		return r
	}
	return b
}

// Commit places the candidate into the schedule: picks the processor that
// minimises idle time, schedules every cross communication as late as
// possible, and updates the free-memory staircases:
//
//   - output files of the task are reserved on mu from its start, open-ended
//     (they will be partially released when each consumer is scheduled);
//   - intra-memory input files are released at the task's finish;
//   - cross input files are reserved on mu over the conservative window
//     [EST - C(mu,i), finish) and released on the source memory when the
//     (conservative) transfer completes, i.e. at the task's start.
//
// The feasibility of these reservations is guaranteed by task_mem_EST and
// comm_mem_EST, so Commit never drives a staircase negative.
func (st *Partial) Commit(c Candidate) {
	if st.ins != nil {
		st.commitInsertion(c)
		return
	}
	id, mu := c.Task, c.Mem
	w := st.duration(id, mu)
	start, fin := c.EST, c.EST+w

	// Processor selection: minimise idle time EST - avail among the
	// processors of mu that are free by EST.
	lo, hi := st.p.ProcRange(mu)
	bestProc, bestAvail := -1, math.Inf(-1)
	for proc := lo; proc < hi; proc++ {
		a := st.availProc[proc]
		if a <= start+schedule.Eps && a > bestAvail {
			bestProc, bestAvail = proc, a
		}
	}
	if bestProc < 0 {
		// Cannot happen: resource_EST <= start guarantees a free
		// processor.
		panic("core: no free processor at committed start time")
	}

	st.sched.Tasks[id] = schedule.TaskPlacement{Start: start, Proc: bestProc}
	st.availProc[bestProc] = fin
	st.assigned[id] = true
	st.finish[id] = fin
	st.nDone++

	// Input files.
	for _, e := range st.g.In(id) {
		edge := st.g.Edge(e)
		parentMem := st.sched.MemoryOf(edge.From)
		if parentMem == mu {
			// The file was reserved open-ended on mu when the
			// parent was committed; it is consumed at fin.
			st.free[mu].Release(fin, edge.File)
			continue
		}
		// Cross edge: emit the true ALAP communication (per-edge
		// duration), account for the conservative window.
		st.sched.CommStart[edge.ID] = start - edge.Comm
		st.free[mu].Reserve(start-c.CMu, fin, edge.File)
		st.free[parentMem].Release(start, edge.File)
	}

	// Output files: open-ended reservations on mu starting now.
	for _, e := range st.g.Out(id) {
		edge := st.g.Edge(e)
		st.free[mu].Reserve(start, memfn.Inf, edge.File)
	}
}
