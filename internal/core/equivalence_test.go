package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// The golden-equivalence suite: the incremental schedulers (epoch-memoized
// candidates, heap selection, batched staircase splices, intrusive ready
// tracking) must produce schedules bit-identical to the retained naive
// reference implementations on every instance, feasible or not.

// sameSchedule compares two schedules field by field with exact float
// equality — the incremental engine must not perturb a single bit.
func sameSchedule(t *testing.T, tag string, got, want *schedule.Schedule) {
	t.Helper()
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("%s: %d task placements, want %d", tag, len(got.Tasks), len(want.Tasks))
	}
	for i := range want.Tasks {
		if got.Tasks[i] != want.Tasks[i] {
			t.Fatalf("%s: task %d placed %+v, reference says %+v", tag, i, got.Tasks[i], want.Tasks[i])
		}
	}
	if len(got.CommStart) != len(want.CommStart) {
		t.Fatalf("%s: %d comm starts, want %d", tag, len(got.CommStart), len(want.CommStart))
	}
	for i := range want.CommStart {
		g, w := got.CommStart[i], want.CommStart[i]
		if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("%s: comm %d starts at %g, reference says %g", tag, i, g, w)
		}
	}
}

// checkPair runs an optimized scheduler and its reference on the same
// instance and requires identical outcomes: same error classification and,
// when both succeed, identical schedules.
func checkPair(t *testing.T, tag string, opt, ref Func, g *dag.Graph, p platform.Platform, seed int64) (failed bool) {
	return checkPairCached(t, tag, opt, ref, g, p, seed, nil)
}

// checkPairCached is checkPair with the optimized side running under a
// caller-owned cache set (the session configuration); a cache shared across
// many calls must not perturb a single bit either.
func checkPairCached(t *testing.T, tag string, opt, ref Func, g *dag.Graph, p platform.Platform, seed int64, caches *Caches) (failed bool) {
	t.Helper()
	so, eo := opt(tctx, g, p, Options{Seed: seed, Caches: caches})
	sr, er := ref(tctx, g, p, Options{Seed: seed})
	if (eo == nil) != (er == nil) {
		t.Fatalf("%s: optimized err=%v, reference err=%v", tag, eo, er)
	}
	if eo != nil {
		if !errors.Is(eo, ErrMemoryBound) || !errors.Is(er, ErrMemoryBound) {
			t.Fatalf("%s: unexpected error kind: optimized %v, reference %v", tag, eo, er)
		}
		if eo.Error() != er.Error() {
			t.Fatalf("%s: error text diverged:\noptimized: %v\nreference: %v", tag, eo, er)
		}
		return true
	}
	sameSchedule(t, tag, so, sr)
	return false
}

// TestGoldenEquivalenceRandomSweep sweeps random DAGs of varied shapes and
// memory pressures (from comfortable to infeasible) and asserts MemHEFT and
// MemMinMin match their naive references exactly on every one.
func TestGoldenEquivalenceRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	sizes := []int{5, 12, 30, 60}
	alphas := []float64{0.3, 0.5, 0.8, 1.0}
	runs := 0
	for trial := 0; trial < 12; trial++ {
		params := daggen.SmallParams()
		params.Size = sizes[trial%len(sizes)]
		seed := rng.Int63()
		g, err := daggen.Generate(params, seed)
		if err != nil {
			t.Fatal(err)
		}
		p := platform.New(1+rng.Intn(3), 1+rng.Intn(3), platform.Unlimited, platform.Unlimited)
		// Peak memory of the unbounded run calibrates the pressure.
		s, err := MemHEFT(tctx, g, p, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		peakBlue, peakRed := s.MemoryPeaks()
		peak := peakBlue
		if peakRed > peak {
			peak = peakRed
		}
		// One cache set per graph, shared across the whole pressure
		// sweep — the exact configuration a session runs with.
		caches := NewCaches()
		for _, alpha := range alphas {
			bound := int64(alpha * float64(peak))
			bp := p.WithBounds(bound, bound)
			checkPairCached(t, "memheft", MemHEFT, MemHEFTReference, g, bp, seed, caches)
			checkPairCached(t, "memminmin", MemMinMin, MemMinMinReference, g, bp, seed, caches)
			runs += 2
		}
	}
	if runs == 0 {
		t.Fatal("sweep ran no instances")
	}
}

// TestGoldenEquivalenceLowMemoryFailures drives both schedulers into the
// ErrMemoryBound path and checks the failure reports match the references.
func TestGoldenEquivalenceLowMemoryFailures(t *testing.T) {
	g, err := daggen.Generate(daggen.SmallParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.New(2, 2, 1, 1) // far below any peak: must fail identically
	hFailed := checkPair(t, "memheft-fail", MemHEFT, MemHEFTReference, g, p, 5)
	mFailed := checkPair(t, "memminmin-fail", MemMinMin, MemMinMinReference, g, p, 5)
	if !hFailed || !mFailed {
		t.Fatal("expected both schedulers to hit the memory bound")
	}
}

// TestGoldenEquivalenceInsertionPolicy checks the insertion-based variant
// against a reference run with caching disabled, exercising the shared
// static-part and commit machinery under the gap-filling policy.
func TestGoldenEquivalenceInsertionPolicy(t *testing.T) {
	g, err := daggen.Generate(daggen.SmallParams(), 11)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.New(2, 2, 400, 400)
	got, err := MemHEFTInsertion(tctx, g, p, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: same algorithm with the incremental caches bypassed.
	remaining, err := PriorityList(nil, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := NewPartial(g, p)
	st.ins = newInsertionState(p.TotalProcs())
	st.noCache = true
	for len(remaining) > 0 {
		placed := false
		for index, id := range remaining {
			if !st.readyByScan(id) {
				continue
			}
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			st.Commit(c)
			remaining = append(remaining[:index], remaining[index+1:]...)
			placed = true
			break
		}
		if !placed {
			t.Fatal("reference insertion run stuck")
		}
	}
	sameSchedule(t, "insertion", got, st.Schedule())
}

// TestIncrementalStateMatchesScans replays a schedule commit by commit and
// cross-checks every piece of incremental bookkeeping (ready list, ready
// predicate, running makespan) against its naive scan on each step.
func TestIncrementalStateMatchesScans(t *testing.T) {
	g, err := daggen.Generate(daggen.SmallParams(), 17)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.New(2, 1, platform.Unlimited, platform.Unlimited)
	st := NewPartial(g, p)
	for !st.Done() {
		// Naive ready scan.
		var want []dag.TaskID
		for i := 0; i < g.NumTasks(); i++ {
			if st.readyByScan(dag.TaskID(i)) {
				want = append(want, dag.TaskID(i))
			}
		}
		got := st.ReadyTasks()
		if len(got) != len(want) {
			t.Fatalf("ready list %v, scan says %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ready list %v, scan says %v", got, want)
			}
		}
		for i := 0; i < g.NumTasks(); i++ {
			id := dag.TaskID(i)
			if st.Ready(id) != st.readyByScan(id) {
				t.Fatalf("Ready(%d) = %v, scan says %v", id, st.Ready(id), st.readyByScan(id))
			}
		}
		if ms, scan := st.MakespanSoFar(), st.makespanByScan(); ms != scan {
			t.Fatalf("MakespanSoFar = %g, scan says %g", ms, scan)
		}
		// Commit the min-EFT candidate, as MemMinMin would.
		best := Candidate{EFT: math.Inf(1)}
		for _, id := range got {
			if c := st.Best(id); c.EFT < best.EFT {
				best = c
			}
		}
		if !best.Feasible() {
			t.Fatal("unbounded run blocked")
		}
		st.Commit(best)
	}
	if ms, scan := st.MakespanSoFar(), st.makespanByScan(); ms != scan {
		t.Fatalf("final MakespanSoFar = %g, scan says %g", ms, scan)
	}
}

// TestCloneIntoIndependence verifies that a pooled CloneInto target is a
// faithful independent copy: committing to the clone leaves the original
// untouched and vice versa, including the memoization state.
func TestCloneIntoIndependence(t *testing.T) {
	g, err := daggen.Generate(daggen.SmallParams(), 23)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.New(2, 2, 300, 300)
	st := NewPartial(g, p)
	// Warm the caches and commit a couple of tasks.
	for k := 0; k < 2; k++ {
		ready := st.ReadyTasks()
		if len(ready) == 0 {
			t.Fatal("no ready tasks")
		}
		c := st.Best(ready[0])
		if !c.Feasible() {
			t.Fatal("blocked")
		}
		st.Commit(c)
	}
	clone := st.CloneInto(nil)
	dirty := NewPartial(g, p) // pooled target with unrelated state
	clone2 := st.CloneInto(dirty)
	if clone2 != dirty {
		t.Fatal("CloneInto did not reuse the target")
	}

	msBefore := st.MakespanSoFar()
	readyBefore := append([]dag.TaskID(nil), st.ReadyTasks()...)
	for _, c := range []*Partial{clone, clone2} {
		ready := c.ReadyTasks()
		if len(ready) != len(readyBefore) {
			t.Fatalf("clone ready %v, want %v", ready, readyBefore)
		}
		cand := c.Best(ready[0])
		if !cand.Feasible() {
			t.Fatal("clone blocked")
		}
		c.Commit(cand)
	}
	if st.MakespanSoFar() != msBefore {
		t.Fatal("committing to a clone changed the original's makespan")
	}
	got := st.ReadyTasks()
	for i := range readyBefore {
		if got[i] != readyBefore[i] {
			t.Fatalf("committing to a clone changed the original's ready list: %v, want %v", got, readyBefore)
		}
	}
	// The original still schedules to the same result as a fresh run.
	want, err := MemMinMinReference(tctx, g, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := MemMinMin(tctx, g, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameSchedule(t, "post-clone", got2, want)
}
