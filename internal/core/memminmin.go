package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// memMinMin is Algorithm 2: maintain the set of ready tasks and repeatedly
// commit the (task, memory) pair with the minimum earliest finish time.
// Unlike MemHEFT there is no static priority; the order emerges dynamically,
// which lets small early-released tasks jump ahead (the behaviour §6.2.3
// blames for MemMinMin's early failures on linear-algebra DAGs).
func memMinMin(g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	st := NewPartial(g, p)

	// Ready set, kept sorted by task ID for deterministic tie-breaking.
	pending := make([]int, g.NumTasks()) // unassigned-parent count
	var ready []dag.TaskID
	for i := 0; i < g.NumTasks(); i++ {
		pending[i] = len(g.In(dag.TaskID(i)))
		if pending[i] == 0 {
			ready = append(ready, dag.TaskID(i))
		}
	}

	scheduled := 0
	for len(ready) > 0 {
		bestIdx := -1
		var bestCand Candidate
		for idx, id := range ready {
			c := st.Best(id)
			if !c.Feasible() {
				continue
			}
			if bestIdx < 0 || c.EFT < bestCand.EFT || (c.EFT == bestCand.EFT && id < bestCand.Task) {
				bestIdx, bestCand = idx, c
			}
		}
		if bestIdx < 0 {
			return st.sched, fmt.Errorf("%w (MemMinMin: %d of %d tasks unscheduled, %d ready tasks all blocked)",
				ErrMemoryBound, g.NumTasks()-scheduled, g.NumTasks(), len(ready))
		}
		st.Commit(bestCand)
		scheduled++
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
		for _, e := range g.Out(bestCand.Task) {
			child := g.Edge(e).To
			pending[child]--
			if pending[child] == 0 {
				ready = insertSorted(ready, child)
			}
		}
	}
	if scheduled != g.NumTasks() {
		// Unreachable for a validated DAG; defensive.
		return st.sched, fmt.Errorf("core: MemMinMin scheduled %d of %d tasks", scheduled, g.NumTasks())
	}
	return st.sched, nil
}

// insertSorted inserts id into the ID-sorted slice.
func insertSorted(s []dag.TaskID, id dag.TaskID) []dag.TaskID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = id
	return s
}
