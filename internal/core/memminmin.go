package core

import (
	"context"
	"fmt"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/trace"
)

// memMinMin is Algorithm 2: maintain the set of ready tasks and repeatedly
// commit the (task, memory) pair with the minimum earliest finish time.
// Unlike MemHEFT there is no static priority; the order emerges dynamically,
// which lets small early-released tasks jump ahead (the behaviour §6.2.3
// blames for MemMinMin's early failures on linear-algebra DAGs).
//
// The ready candidates live in a heap ordered by (EFT, task ID) — the exact
// tie-breaking of the reference linear scan — with lazy invalidation: after
// a commit, only the entries whose memoized evaluation went stale (their
// memory's epoch moved, or a parent committed) are re-evaluated before the
// minimum is popped. An EFT can decrease when a commit releases memory, so
// every stale entry is refreshed before trusting the heap order. Since a
// commit always bumps its own memory's epoch, the refresh loop visits every
// entry each iteration (the per-memory cache still halves the evaluations);
// that O(width) sweep, not the heap order, is the dominant cost, and the
// heap's job is to hand back the (EFT, ID) minimum with the reference
// scan's exact tie-breaking.
func memMinMin(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Caches.Validate(g); err != nil {
		return nil, err
	}
	endStatics := trace.Start(ctx, "statics")
	if err := opt.Caches.warmStatics(ctx, g); err != nil {
		return nil, wrapInterrupted("MemMinMin", err)
	}
	st := NewPartialCached(g, p, opt.Caches)
	endStatics()
	defer st.reportStats(opt.Stats)

	// Warm-start: replay the verified prefix of a previous run before the
	// heap is built, so the heap starts from the post-replay ready set.
	rec := opt.Record
	endReplay := trace.Start(ctx, "replay")
	replayed, err := st.beginRun(ctx, p, opt)
	endReplay()
	if err != nil {
		return st.sched, fmt.Errorf("core: MemMinMin interrupted: %w", err)
	}

	defer trace.Start(ctx, "placement")()
	h := make(eftHeap, 0, g.NumTasks())
	for _, id := range st.ReadyTasks() {
		h = append(h, eftEntry{id: id, cand: st.Best(id)})
	}
	h.init()

	scheduled := replayed
	for len(h) > 0 {
		if err := ctxErr(ctx, scheduled); err != nil {
			return st.sched, fmt.Errorf("core: MemMinMin interrupted: %w", err)
		}
		// Lazy invalidation: refresh stale memoized candidates, then
		// restore the heap order in one pass.
		changed := false
		for i := range h {
			if !st.BestFresh(h[i].id) {
				h[i].cand = st.Best(h[i].id)
				changed = true
			}
		}
		if changed {
			h.init()
		}
		best := h[0]
		if !best.cand.Feasible() {
			// The heap minimum is infeasible, hence so is every
			// ready task.
			return st.sched, fmt.Errorf("%w (MemMinMin: %d of %d tasks unscheduled, %d ready tasks all blocked)",
				ErrMemoryBound, g.NumTasks()-scheduled, g.NumTasks(), len(h))
		}
		if rec != nil {
			// Before Commit: recordStep measures pre-commit fit slacks.
			st.recordStep(rec, best.cand)
		}
		st.Commit(best.cand)
		scheduled++
		h.popMin()
		for _, child := range st.NewlyReady() {
			h.push(eftEntry{id: child, cand: st.Best(child)})
		}
	}
	if scheduled != g.NumTasks() {
		// Unreachable for a validated DAG; defensive.
		return st.sched, fmt.Errorf("core: MemMinMin scheduled %d of %d tasks", scheduled, g.NumTasks())
	}
	if rec != nil {
		rec.Complete = true
	}
	return st.sched, nil
}

// eftEntry is one ready task with its memoized best candidate.
type eftEntry struct {
	id   dag.TaskID
	cand Candidate
}

// eftHeap is a binary min-heap of ready candidates ordered by (EFT, task
// ID), matching the tie-breaking of the naive scan ("smaller EFT, then
// smaller ID"). Infeasible candidates carry EFT = +inf and sink to the
// bottom; inf comparisons are always false, so ties (including inf-inf)
// fall through to the ID order, which keeps the comparator strict and
// total.
type eftHeap []eftEntry

func (h eftHeap) less(a, b int) bool {
	if h[a].cand.EFT != h[b].cand.EFT {
		return h[a].cand.EFT < h[b].cand.EFT
	}
	return h[a].id < h[b].id
}

func (h eftHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h eftHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h.less(l, m) {
			m = l
		}
		if r < len(h) && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *eftHeap) push(e eftEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eftHeap) popMin() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	if n > 0 {
		s.siftDown(0)
	}
}

// insertSorted inserts id into the ID-sorted slice.
func insertSorted(s []dag.TaskID, id dag.TaskID) []dag.TaskID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = id
	return s
}
