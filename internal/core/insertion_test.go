package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/platform"
)

func TestInsertionStateGapSearch(t *testing.T) {
	is := newInsertionState(1)
	is.insert(0, 2, 3) // busy [2,5)
	is.insert(0, 8, 2) // busy [8,10)
	cases := []struct {
		lb, w, want float64
	}{
		{0, 2, 0},  // fits before the first interval
		{0, 3, 5},  // too wide for [0,2), next gap is [5,8)
		{0, 4, 10}, // only after everything
		{3, 1, 5},  // lb inside a busy interval
		{6, 2, 6},  // fits inside [5,8)
		{6, 3, 10}, // too wide for the remainder of [5,8)
		{12, 1, 12},
	}
	for _, c := range cases {
		if got := is.earliestFitOn(0, c.lb, c.w); got != c.want {
			t.Fatalf("earliestFitOn(lb=%g,w=%g) = %g, want %g", c.lb, c.w, got, c.want)
		}
	}
}

func TestInsertionStateInsertKeepsOrder(t *testing.T) {
	is := newInsertionState(1)
	is.insert(0, 8, 1)
	is.insert(0, 2, 1)
	is.insert(0, 5, 1)
	prev := -1.0
	for _, iv := range is.busy[0] {
		if iv.start < prev {
			t.Fatalf("busy list unsorted: %+v", is.busy[0])
		}
		prev = iv.start
	}
}

func TestMemHEFTInsertionProducesValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 20)
		for _, bound := range []int64{40, platform.Unlimited} {
			p := platform.New(2, 2, bound, bound)
			s, err := MemHEFTInsertion(tctx, g, p, Options{Seed: seed})
			if err != nil {
				continue
			}
			if s.Validate() != nil {
				return false
			}
			blue, red := s.MemoryPeaks()
			if blue > bound || red > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionNeverWorsePerDecision(t *testing.T) {
	// From the same partial state, the insertion policy's EST is <= the
	// append policy's EST for every (task, memory) pair: a queue tail is
	// always also a gap.
	g := dag.PaperExample()
	p := platform.New(1, 1, 100, 100)
	app := NewPartial(g, p)
	ins := NewPartial(g, p)
	ins.ins = newInsertionState(p.TotalProcs())

	// Drive both with the same commits (from the append policy).
	for !app.Done() {
		var chosen Candidate
		found := false
		for _, id := range app.ReadyTasks() {
			for _, mu := range platform.Memories {
				ca := app.Evaluate(id, mu)
				ci := ins.Evaluate(id, mu)
				if ca.Feasible() && ci.EST > ca.EST+1e-9 {
					t.Fatalf("task %d on %v: insertion EST %g > append EST %g", id, mu, ci.EST, ca.EST)
				}
				if ca.Feasible() && !found {
					chosen, found = ca, true
				}
			}
		}
		if !found {
			t.Fatal("stuck")
		}
		app.Commit(chosen)
		ins.Commit(ins.Evaluate(chosen.Task, chosen.Mem))
	}
}

func TestInsertionFillsGap(t *testing.T) {
	// One blue processor. Long task a [0,10); b depends on a remote-ish
	// setup... simpler: schedule order by rank puts a first ([0,10)),
	// then c (independent, duration 2): append policy starts c at 10;
	// insertion cannot do better here since no gap exists. Build an
	// actual gap: two tasks x->y with a communication window, plus an
	// independent short task z that fits in the idle window on red.
	g := dag.New()
	x := g.AddTask("x", 1, 1)
	y := g.AddTask("y", 8, 8)
	g.MustAddEdge(x, y, 1, 6) // y waits for the cross transfer
	z := g.AddTask("z", 2, 2)

	p := platform.New(1, 1, 100, 100)
	// Force x on blue, y on red by times? Keep times equal; with seed
	// tie-breaks the placements vary, so instead check the global
	// property: insertion's makespan <= append's makespan on this
	// instance for the same seed.
	for seed := int64(0); seed < 10; seed++ {
		a, err := MemHEFT(tctx, g, p, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MemHEFTInsertion(tctx, g, p, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if b.Makespan() > a.Makespan()+1e-9 {
			// Insertion is not universally dominant in theory, but
			// on this 3-task instance with a single decision point
			// it must not lose.
			t.Fatalf("seed %d: insertion %g > append %g", seed, b.Makespan(), a.Makespan())
		}
	}
	_ = z
}

func TestInsertionZeroDurationTasks(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 2, 2)
	b := g.AddTask("b", 0, 0)
	c := g.AddTask("c", 2, 2)
	g.MustAddEdge(a, b, 1, 1)
	g.MustAddEdge(b, c, 1, 1)
	p := platform.New(1, 0, 10, 0)
	s, err := MemHEFTInsertion(tctx, g, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 4 {
		t.Fatalf("makespan = %g, want 4", s.Makespan())
	}
}
