package core

import (
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

// buildChain returns a fresh 3-task chain graph.
func buildChain(extra bool) *dag.Graph {
	g := dag.New()
	a := g.AddTask("a", 2, 1)
	b := g.AddTask("b", 1, 2)
	c := g.AddTask("c", 3, 3)
	g.MustAddEdge(a, b, 2, 1)
	g.MustAddEdge(b, c, 1, 1)
	if extra {
		d := g.AddTask("d", 5, 5)
		g.MustAddEdge(a, d, 1, 1)
	}
	return g
}

// TestCachesPriorityListInvalidation checks that the per-session
// (graph, seed) memo is a pure cache: repeated calls return equal fresh
// slices, mutating the returned slice is safe, a different seed misses, and
// growing the graph after a hit invalidates the entry.
func TestCachesPriorityListInvalidation(t *testing.T) {
	g := buildChain(false)
	c := NewCaches()
	l1, err := c.PriorityList(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.PriorityList(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) != len(l2) {
		t.Fatalf("cached list length %d, want %d", len(l2), len(l1))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("cached list %v differs from first %v", l2, l1)
		}
	}
	// The returned slice must be caller-owned.
	l2[0], l2[len(l2)-1] = l2[len(l2)-1], l2[0]
	l3, err := c.PriorityList(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l1 {
		if l3[i] != l1[i] {
			t.Fatalf("mutating a returned list corrupted the cache: %v, want %v", l3, l1)
		}
	}
	// Grow the graph: the memo must miss and reflect the new task.
	g.AddTask("late", 1, 1)
	l4, err := c.PriorityList(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(l4) != g.NumTasks() {
		t.Fatalf("stale cache after graph growth: %d tasks listed, graph has %d", len(l4), g.NumTasks())
	}
	// Different seed on the same graph: must recompute, and match the
	// pure computation on a fresh identical graph.
	fresh := buildChain(false)
	fresh.AddTask("late", 1, 1)
	lf, err := PriorityList(nil, fresh, 13)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := c.PriorityList(nil, g, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lf {
		if lf[i] != lg[i] {
			t.Fatalf("seed switch returned stale list %v, want %v", lg, lf)
		}
	}
}

// TestCachesPriorityListBounded checks the per-seed memo cannot grow
// without bound: far more seeds than the cap leave at most the cap behind.
func TestCachesPriorityListBounded(t *testing.T) {
	g := buildChain(false)
	c := NewCaches()
	for seed := int64(0); seed < 4*maxPriorityEntries; seed++ {
		if _, err := c.PriorityList(nil, g, seed); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := c.priority.Len()
	c.mu.Unlock()
	if n > maxPriorityEntries {
		t.Fatalf("priority memo grew to %d entries, cap is %d", n, maxPriorityEntries)
	}
}

// TestCachesStaticsInvalidation checks that the memoized per-graph inputs
// of NewPartialCached track graph growth.
func TestCachesStaticsInvalidation(t *testing.T) {
	g := buildChain(false)
	c := NewCaches()
	p := platform.New(1, 1, 100, 100)
	st := NewPartialCached(g, p, c)
	if got := len(st.ReadyTasks()); got != 1 {
		t.Fatalf("chain has %d sources, want 1", got)
	}
	if st.outFiles[0] != 2 {
		t.Fatalf("task 0 outFiles = %d, want 2", st.outFiles[0])
	}
	// Add a second edge out of task 0 and a new source: statics must
	// refresh.
	g = buildChain(true)
	st2 := NewPartialCached(g, p, c)
	if st2.outFiles[0] != 3 {
		t.Fatalf("after growth, task 0 outFiles = %d, want 3", st2.outFiles[0])
	}
	// Same pointer growth (the dangerous case): mutate g in place.
	g.AddTask("src2", 4, 4)
	st3 := NewPartialCached(g, p, c)
	if len(st3.pending) != g.NumTasks() {
		t.Fatalf("stale statics: pending has %d entries, graph %d tasks", len(st3.pending), g.NumTasks())
	}
	if got := len(st3.ReadyTasks()); got != 2 {
		t.Fatalf("after adding a source, %d ready tasks, want 2", got)
	}
	// Validate: a valid graph caches success; a new graph revalidates.
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := dag.New()
	bad.AddTask("x", -1, 1)
	if err := c.Validate(bad); err == nil {
		t.Fatal("negative processing time not rejected through the cache")
	}
}

// TestNilCachesComputeFresh checks the nil-receiver path every one-shot
// caller takes: no cache, same results.
func TestNilCachesComputeFresh(t *testing.T) {
	g := buildChain(true)
	var c *Caches
	list, err := c.PriorityList(nil, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := PriorityList(nil, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pure {
		if list[i] != pure[i] {
			t.Fatalf("nil-cache list %v, want %v", list, pure)
		}
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	if NewPartialCached(g, platform.New(1, 1, 10, 10), nil) == nil {
		t.Fatal("nil-cache NewPartialCached failed")
	}
}

// TestCachesConcurrentSameGraph hammers one cache set from many goroutines
// (the session concurrency contract); run with -race.
func TestCachesConcurrentSameGraph(t *testing.T) {
	g := buildChain(true)
	c := NewCaches()
	want, err := PriorityList(nil, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.Validate(g); err != nil {
					errs <- err
					return
				}
				list, err := c.PriorityList(nil, g, 5)
				if err != nil {
					errs <- err
					return
				}
				for j := range want {
					if list[j] != want[j] {
						t.Errorf("goroutine saw list %v, want %v", list, want)
						return
					}
				}
				_ = NewPartialCached(g, platform.New(2, 1, 50, 50), c)
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
