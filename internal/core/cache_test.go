package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

// buildChain returns a fresh 3-task chain graph.
func buildChain(extra bool) *dag.Graph {
	g := dag.New()
	a := g.AddTask("a", 2, 1)
	b := g.AddTask("b", 1, 2)
	c := g.AddTask("c", 3, 3)
	g.MustAddEdge(a, b, 2, 1)
	g.MustAddEdge(b, c, 1, 1)
	if extra {
		d := g.AddTask("d", 5, 5)
		g.MustAddEdge(a, d, 1, 1)
	}
	return g
}

// TestPriorityListCacheInvalidation checks that the (graph, seed) memo is a
// pure cache: repeated calls return equal fresh slices, mutating the
// returned slice is safe, a different seed misses, and growing the graph
// after a hit invalidates the entry.
func TestPriorityListCacheInvalidation(t *testing.T) {
	g := buildChain(false)
	l1, err := PriorityList(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := PriorityList(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) != len(l2) {
		t.Fatalf("cached list length %d, want %d", len(l2), len(l1))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("cached list %v differs from first %v", l2, l1)
		}
	}
	// The returned slice must be caller-owned.
	l2[0], l2[len(l2)-1] = l2[len(l2)-1], l2[0]
	l3, err := PriorityList(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range l1 {
		if l3[i] != l1[i] {
			t.Fatalf("mutating a returned list corrupted the cache: %v, want %v", l3, l1)
		}
	}
	// Grow the graph: the memo must miss and reflect the new task.
	g.AddTask("late", 1, 1)
	l4, err := PriorityList(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(l4) != g.NumTasks() {
		t.Fatalf("stale cache after graph growth: %d tasks listed, graph has %d", len(l4), g.NumTasks())
	}
	// Different seed on the same graph: must recompute, and match a fresh
	// identical graph's list.
	fresh := buildChain(false)
	fresh.AddTask("late", 1, 1)
	lf, err := PriorityList(fresh, 13)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := PriorityList(g, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lf {
		if lf[i] != lg[i] {
			t.Fatalf("seed switch returned stale list %v, want %v", lg, lf)
		}
	}
}

// TestGraphStaticsCacheInvalidation checks that NewPartial's memoized
// per-graph inputs track graph growth.
func TestGraphStaticsCacheInvalidation(t *testing.T) {
	g := buildChain(false)
	p := platform.New(1, 1, 100, 100)
	st := NewPartial(g, p)
	if got := len(st.ReadyTasks()); got != 1 {
		t.Fatalf("chain has %d sources, want 1", got)
	}
	if st.outFiles[0] != 2 {
		t.Fatalf("task 0 outFiles = %d, want 2", st.outFiles[0])
	}
	// Add a second edge out of task 0 and a new source: statics must
	// refresh.
	g = buildChain(true)
	st2 := NewPartial(g, p)
	if st2.outFiles[0] != 3 {
		t.Fatalf("after growth, task 0 outFiles = %d, want 3", st2.outFiles[0])
	}
	// Same pointer growth (the dangerous case): mutate g in place.
	g.AddTask("src2", 4, 4)
	st3 := NewPartial(g, p)
	if len(st3.pending) != g.NumTasks() {
		t.Fatalf("stale statics: pending has %d entries, graph %d tasks", len(st3.pending), g.NumTasks())
	}
	if got := len(st3.ReadyTasks()); got != 2 {
		t.Fatalf("after adding a source, %d ready tasks, want 2", got)
	}
	// validateCached: valid graph caches success; a new graph revalidates.
	if err := validateCached(g); err != nil {
		t.Fatal(err)
	}
	if err := validateCached(g); err != nil {
		t.Fatal(err)
	}
	bad := dag.New()
	x := bad.AddTask("x", -1, 1)
	_ = x
	if err := validateCached(bad); err == nil {
		t.Fatal("negative processing time not rejected through the cache")
	}
}
