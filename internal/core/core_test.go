package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

func mustSchedule(t *testing.T, f Func, g *dag.Graph, p platform.Platform, seed int64) *schedule.Schedule {
	t.Helper()
	s, err := f(tctx, g, p, Options{Seed: seed})
	if err != nil {
		t.Fatalf("scheduling failed: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	return s
}

func TestPriorityListPaperExample(t *testing.T) {
	g := dag.PaperExample()
	list, err := PriorityList(nil, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks: T1=8.5, T3=6, T2=3.5, T4=1 (no ties).
	want := []dag.TaskID{0, 2, 1, 3}
	for i, id := range list {
		if id != want[i] {
			t.Fatalf("priority list = %v, want %v", list, want)
		}
	}
}

func TestPriorityListTieBreakDependsOnSeed(t *testing.T) {
	// Ten identical independent tasks: order is purely the tie-break.
	g := dag.New()
	for i := 0; i < 10; i++ {
		g.AddTask("", 1, 1)
	}
	a, _ := PriorityList(nil, g, 1)
	b, _ := PriorityList(nil, g, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different lists")
		}
	}
	c, _ := PriorityList(nil, g, 99)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical tie-breaks (possible but wildly unlikely)")
	}
}

func TestHEFTOnPaperExample(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 1, 1) // bounds ignored by HEFT
	s := mustSchedule(t, HEFT, g, p, 1)
	// HEFT trace: T1 -> red (EFT 1 vs 3). T3 -> red (EFT 1+3=4 vs
	// blue 1+1+6=8). T2 -> blue (EFT 2+2=4 vs red 4+2=6). T4: blue
	// would start after comm(3,4): max(4, 4+1)=5, EFT 6; red after
	// comm(2,4): max(4+1, 4)=5, EFT 6. Tie -> blue. Makespan 6.
	if ms := s.Makespan(); ms != 6 {
		t.Fatalf("HEFT makespan = %g, want 6", ms)
	}
}

func TestMinMinOnPaperExample(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 1, 1)
	s := mustSchedule(t, MinMin, g, p, 1)
	if ms := s.Makespan(); ms > 7 {
		t.Fatalf("MinMin makespan = %g, want <= 7", ms)
	}
}

func TestMemHEFTRespectsMemoryBounds(t *testing.T) {
	g := dag.PaperExample()
	for _, m := range []int64{4, 5, 6, 10} {
		p := platform.New(1, 1, m, m)
		s, err := MemHEFT(tctx, g, p, Options{})
		if err != nil {
			continue // infeasible for the heuristic: acceptable here
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("M=%d: invalid schedule: %v", m, err)
		}
		blue, red := s.MemoryPeaks()
		if blue > m || red > m {
			t.Fatalf("M=%d: peaks (%d,%d) exceed bound", m, blue, red)
		}
	}
}

func TestMemMinMinRespectsMemoryBounds(t *testing.T) {
	g := dag.PaperExample()
	for _, m := range []int64{4, 5, 6, 10} {
		p := platform.New(1, 1, m, m)
		s, err := MemMinMin(tctx, g, p, Options{})
		if err != nil {
			continue
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("M=%d: invalid schedule: %v", m, err)
		}
		blue, red := s.MemoryPeaks()
		if blue > m || red > m {
			t.Fatalf("M=%d: peaks (%d,%d) exceed bound", m, blue, red)
		}
	}
}

func TestMemHEFTEqualsHEFTWithPlentifulMemory(t *testing.T) {
	// §6.2.1: if both bounds exceed HEFT's peaks, MemHEFT takes exactly
	// the same decisions as HEFT.
	g := dag.PaperExample()
	p := platform.New(1, 1, 0, 0)
	h := mustSchedule(t, HEFT, g, p, 7)
	hb, hr := h.MemoryPeaks()
	mh := mustSchedule(t, MemHEFT, g, p.WithBounds(hb, hr), 7)
	for i := 0; i < g.NumTasks(); i++ {
		if h.Tasks[i] != mh.Tasks[i] {
			t.Fatalf("task %d placed differently: %+v vs %+v", i, h.Tasks[i], mh.Tasks[i])
		}
	}
}

func TestMemHEFTFailsWhenMemoryTooSmall(t *testing.T) {
	g := dag.PaperExample()
	// Even executing a single task needs its files in memory; T3 needs 4.
	p := platform.New(1, 1, 2, 2)
	_, err := MemHEFT(tctx, g, p, Options{})
	if !errors.Is(err, ErrMemoryBound) {
		t.Fatalf("err = %v, want ErrMemoryBound", err)
	}
	_, err = MemMinMin(tctx, g, p, Options{})
	if !errors.Is(err, ErrMemoryBound) {
		t.Fatalf("err = %v, want ErrMemoryBound", err)
	}
}

func TestHeuristicsOnChainSingleMemory(t *testing.T) {
	// A chain with equal times on a 1+0 platform: the makespan is just
	// the sum of the works, and memory needs are one file in flight.
	g := dag.Chain(6, 2, 2, 3, 1)
	p := platform.New(1, 0, 6, 0)
	for name, f := range Algorithms {
		if name == "heft" || name == "minmin" {
			continue // oblivious ones ignore bounds anyway
		}
		s := mustSchedule(t, f, g, p, 1)
		if ms := s.Makespan(); ms != 12 {
			t.Fatalf("%s: makespan = %g, want 12", name, ms)
		}
	}
}

func TestChainNeedsTwoFilesDuringInnerTasks(t *testing.T) {
	// Inner chain tasks hold input+output (2 files of size 3): bound 5
	// must fail, bound 6 must succeed.
	g := dag.Chain(4, 1, 1, 3, 1)
	if _, err := MemHEFT(tctx, g, platform.New(1, 0, 5, 0), Options{}); !errors.Is(err, ErrMemoryBound) {
		t.Fatalf("bound 5 accepted: %v", err)
	}
	s, err := MemHEFT(tctx, g, platform.New(1, 0, 6, 0), Options{})
	if err != nil {
		t.Fatalf("bound 6 rejected: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForkJoinMemoryForcesSerialisation(t *testing.T) {
	// width 6, unit times, files of size 2. The fork holds 12 units of
	// output; executing it needs 12. Give exactly 12 so the middle tasks
	// can only run once predecessors' files are consumed.
	g := dag.ForkJoin(6, 1, 1, 2, 1)
	p := platform.New(2, 2, 12, 12)
	for _, f := range []Func{MemHEFT, MemMinMin} {
		s, err := f(tctx, g, p, Options{Seed: 3})
		if err != nil {
			t.Fatalf("forkjoin infeasible: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemoryAwareSucceedsAtTotalFilesBound(t *testing.T) {
	// With M = sum of all file sizes no memory check can ever bind (the
	// files of the task under evaluation are not yet accounted, so
	// used + need <= TotalFiles always), hence the memory-aware runs
	// must succeed and make exactly the oblivious decisions.
	g := randomDAG(42, 25)
	p := platform.New(2, 2, 0, 0)
	h := mustSchedule(t, HEFT, g, p, 5)
	total := g.TotalFiles()
	mh := mustSchedule(t, MemHEFT, g, p.WithBounds(total, total), 5)
	for i := 0; i < g.NumTasks(); i++ {
		if h.Tasks[i] != mh.Tasks[i] {
			t.Fatalf("task %d differs at TotalFiles bound", i)
		}
	}
}

func TestZeroCostBroadcastTasks(t *testing.T) {
	// A source broadcasting through a chain of fictitious tasks, as the
	// linear-algebra DAGs do.
	g := dag.New()
	src := g.AddTask("src", 2, 1)
	b1 := g.AddTask("b1", 0, 0)
	b2 := g.AddTask("b2", 0, 0)
	c1 := g.AddTask("c1", 3, 1)
	c2 := g.AddTask("c2", 3, 1)
	g.MustAddEdge(src, b1, 1, 1)
	g.MustAddEdge(b1, b2, 1, 1)
	g.MustAddEdge(b1, c1, 1, 1)
	g.MustAddEdge(b2, c2, 1, 1)
	p := platform.New(1, 1, 10, 10)
	for name, f := range Algorithms {
		s, err := f(tctx, g, p, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%s failed: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"heft", "minmin", "memheft", "memminmin"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestSingleTaskGraph(t *testing.T) {
	g := dag.New()
	g.AddTask("only", 5, 2)
	p := platform.New(1, 1, 0, 0) // no files: zero memory suffices
	s := mustSchedule(t, MemHEFT, g, p, 1)
	if s.Makespan() != 2 { // red is faster
		t.Fatalf("makespan = %g, want 2", s.Makespan())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := dag.New()
	p := platform.New(1, 1, 1, 1)
	s, err := MemHEFT(tctx, g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 0 {
		t.Fatal("empty graph has nonzero makespan")
	}
	if _, err := MemMinMin(tctx, g, p, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRedOnlyPlatform(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(0, 1, 0, 20)
	s := mustSchedule(t, MemMinMin, g, p, 1)
	// Serial on red: 1+2+3+1 = 7.
	if ms := s.Makespan(); ms != 7 {
		t.Fatalf("makespan = %g, want 7", ms)
	}
	for i := range s.Tasks {
		if s.MemoryOf(dag.TaskID(i)) != platform.Red {
			t.Fatal("task not on red on red-only platform")
		}
	}
}

func TestInvalidPlatformRejected(t *testing.T) {
	g := dag.PaperExample()
	if _, err := MemHEFT(tctx, g, platform.New(0, 0, 1, 1), Options{}); err == nil {
		t.Fatal("no-processor platform accepted")
	}
	if _, err := MemMinMin(tctx, g, platform.New(0, 0, 1, 1), Options{}); err == nil {
		t.Fatal("no-processor platform accepted")
	}
}

// randomDAG builds a seeded random layered-ish DAG for property tests.
func randomDAG(seed int64, n int) *dag.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dag.New()
	for i := 0; i < n; i++ {
		g.AddTask("", float64(rng.Intn(20)+1), float64(rng.Intn(20)+1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j < i+8; j++ {
			if rng.Float64() < 0.35 {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), int64(rng.Intn(10)+1), float64(rng.Intn(10)+1))
			}
		}
	}
	return g
}

func TestPropertyHeuristicsProduceValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 20)
		p := platform.New(2, 2, platform.Unlimited, platform.Unlimited)
		for _, fn := range []Func{MemHEFT, MemMinMin} {
			s, err := fn(tctx, g, p, Options{Seed: seed})
			if err != nil {
				return false
			}
			if err := s.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBoundedRunsRespectBounds(t *testing.T) {
	f := func(seed int64, rawBound uint16) bool {
		g := randomDAG(seed, 18)
		bound := int64(rawBound%200) + 1
		p := platform.New(2, 2, bound, bound)
		for _, fn := range []Func{MemHEFT, MemMinMin} {
			s, err := fn(tctx, g, p, Options{Seed: seed})
			if err != nil {
				continue // infeasible is fine; invalid is not
			}
			if err := s.Validate(); err != nil {
				return false
			}
			blue, red := s.MemoryPeaks()
			if blue > bound || red > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMakespanAtLeastCriticalPath(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 16)
		cp, err := g.CriticalPathLength()
		if err != nil {
			return false
		}
		p := platform.New(2, 2, platform.Unlimited, platform.Unlimited)
		for _, fn := range []Func{HEFT, MinMin} {
			s, err := fn(tctx, g, p, Options{Seed: seed})
			if err != nil {
				return false
			}
			if s.Makespan() < cp-schedule.Eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTotalFilesBoundMatchesOblivious(t *testing.T) {
	// M = TotalFiles can never bind, so the memory-aware heuristics must
	// succeed and reproduce the oblivious placements exactly. (Bounds at
	// the *measured* HEFT peaks are not guaranteed to suffice: the
	// heuristics' internal accounting is conservative — uniform
	// communication windows and an "everywhere after t" fit rule — so
	// it can exceed the true model usage of the emitted schedule.)
	f := func(seed int64) bool {
		g := randomDAG(seed, 15)
		total := g.TotalFiles()
		p := platform.New(1, 1, total, total)
		pairs := [][2]Func{{HEFT, MemHEFT}, {MinMin, MemMinMin}}
		for _, pair := range pairs {
			a, errA := pair[0](tctx, g, p, Options{Seed: seed})
			b, errB := pair[1](tctx, g, p, Options{Seed: seed})
			if errA != nil || errB != nil {
				return false
			}
			for i := 0; i < g.NumTasks(); i++ {
				if a.Tasks[i] != b.Tasks[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConservativeCommWindowNeverUnderestimates(t *testing.T) {
	// Two cross parents with different comm times: the heuristic reserves
	// the conservative max window; the emitted per-edge ALAP comms must
	// still validate and respect bounds.
	g := dag.New()
	a := g.AddTask("a", 1, 10)
	b := g.AddTask("b", 1, 10)
	c := g.AddTask("c", 10, 1) // prefers red; parents prefer blue
	g.MustAddEdge(a, c, 3, 5)
	g.MustAddEdge(b, c, 4, 1)
	p := platform.New(2, 1, 20, 20)
	s := mustSchedule(t, MemMinMin, g, p, 1)
	if s.MemoryOf(c) != platform.Red {
		t.Skip("heuristic placed c on blue; conservative window untested here")
	}
	ea, _ := g.EdgeBetween(a, c)
	eb, _ := g.EdgeBetween(b, c)
	startC := s.Tasks[c].Start
	if got := s.CommStart[ea.ID]; math.Abs(got-(startC-5)) > 1e-9 {
		t.Fatalf("comm a->c starts at %g, want %g", got, startC-5)
	}
	if got := s.CommStart[eb.ID]; math.Abs(got-(startC-1)) > 1e-9 {
		t.Fatalf("comm b->c starts at %g, want %g", got, startC-1)
	}
}
