package core

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

// TestMemHEFTSkipsBlockedHighPriorityTask verifies the index-scan of
// Algorithm 1: when the highest-rank ready task does not fit in memory,
// MemHEFT schedules a lower-rank task that does, instead of failing.
func TestMemHEFTSkipsBlockedHighPriorityTask(t *testing.T) {
	g := dag.New()
	// big: huge rank (long chain below it), needs 8 units of memory.
	big := g.AddTask("big", 10, 10)
	bigChild := g.AddTask("bigchild", 10, 10)
	g.MustAddEdge(big, bigChild, 8, 1)
	// small: tiny rank, needs 2 units.
	small := g.AddTask("small", 1, 1)
	smallChild := g.AddTask("smallchild", 1, 1)
	g.MustAddEdge(small, smallChild, 2, 1)

	ranks, err := g.UpwardRanks(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[big] <= ranks[small] {
		t.Fatalf("fixture broken: rank(big)=%g <= rank(small)=%g", ranks[big], ranks[small])
	}

	// Memory 4: big (needs 8) never fits, small (needs 2) does.
	p := platform.New(1, 1, 4, 4)
	s, err := MemHEFT(tctx, g, p, Options{Seed: 1})
	if err == nil {
		t.Fatal("expected failure: big can never fit")
	}
	// The partial schedule must contain small and smallChild.
	if s.Tasks[small].Proc < 0 || s.Tasks[smallChild].Proc < 0 {
		t.Fatal("MemHEFT did not schedule the fitting low-priority tasks before failing")
	}
}

// TestMemHEFTListScanOrder pins the restart-from-head behaviour: after the
// low-priority task releases memory, the high-priority one is picked again.
func TestMemHEFTListScanOrder(t *testing.T) {
	g := dag.New()
	// a and b are independent; a has higher rank but needs more memory
	// than is initially free; b consumes little and its completion frees
	// nothing — but scheduling order must still be b first, then a
	// becomes feasible only if memory allows. Construct so that both fit
	// sequentially within bound 6: a needs 5 (outputs), b needs 1.
	a := g.AddTask("a", 4, 4)
	aChild := g.AddTask("achild", 1, 1)
	g.MustAddEdge(a, aChild, 5, 1)
	b := g.AddTask("b", 1, 1)
	bChild := g.AddTask("bchild", 1, 1)
	g.MustAddEdge(b, bChild, 1, 1)

	p := platform.New(2, 2, 6, 6)
	s, err := MemHEFT(tctx, g, p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All four scheduled; a (rank max) goes first at t=0.
	if s.Tasks[a].Start != 0 {
		t.Fatalf("a starts at %g", s.Tasks[a].Start)
	}
}

func TestSameSeedIsDeterministic(t *testing.T) {
	g := randomDAG(99, 24)
	p := platform.New(2, 2, 120, 120)
	for name, fn := range Algorithms {
		s1, err1 := fn(tctx, g, p, Options{Seed: 5})
		s2, err2 := fn(tctx, g, p, Options{Seed: 5})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: nondeterministic feasibility", name)
		}
		if err1 != nil {
			continue
		}
		for i := range s1.Tasks {
			if s1.Tasks[i] != s2.Tasks[i] {
				t.Fatalf("%s: nondeterministic placement of task %d", name, i)
			}
		}
	}
}

func TestCommunicationsAreALAP(t *testing.T) {
	// Every cross edge's communication must end exactly at the consumer's
	// start (as-late-as-possible placement).
	g := randomDAG(7, 20)
	p := platform.New(1, 1, platform.Unlimited, platform.Unlimited)
	s, err := MemHEFT(tctx, g, p, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !s.IsCross(dag.EdgeID(e)) {
			continue
		}
		edge := g.Edge(dag.EdgeID(e))
		end := s.CommStart[e] + edge.Comm
		if math.Abs(end-s.Tasks[edge.To].Start) > 1e-9 {
			t.Fatalf("comm %d->%d ends at %g, consumer starts at %g",
				edge.From, edge.To, end, s.Tasks[edge.To].Start)
		}
	}
}

func TestPartialCloneIsDeepEnough(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 10, 10)
	st := NewPartial(g, p)
	c1 := st.Evaluate(0, platform.Red)
	if !c1.Feasible() {
		t.Fatal("T1 should fit")
	}
	clone := st.Clone()
	clone.Commit(c1)
	if st.Assigned(0) {
		t.Fatal("commit on clone mutated original assignment")
	}
	if st.Schedule().Tasks[0].Proc != -1 {
		t.Fatal("commit on clone mutated original schedule")
	}
	// Original can still commit independently.
	st.Commit(st.Evaluate(0, platform.Blue))
	if st.MakespanSoFar() != 3 { // blue time of T1
		t.Fatalf("original makespan %g", st.MakespanSoFar())
	}
	if clone.MakespanSoFar() != 1 { // red time of T1
		t.Fatalf("clone makespan %g", clone.MakespanSoFar())
	}
}

func TestPartialReadyTasksEvolution(t *testing.T) {
	g := dag.PaperExample()
	st := NewPartial(g, platform.New(1, 1, 100, 100))
	r := st.ReadyTasks()
	if len(r) != 1 || r[0] != 0 {
		t.Fatalf("initial ready = %v", r)
	}
	st.Commit(st.Evaluate(0, platform.Red))
	r = st.ReadyTasks()
	if len(r) != 2 || r[0] != 1 || r[1] != 2 {
		t.Fatalf("ready after T1 = %v", r)
	}
	if st.Done() {
		t.Fatal("not done yet")
	}
}

// TestStressLinalgAllHeuristicsValidate runs every heuristic over a grid of
// factorisation sizes and memory bounds and validates every produced
// schedule — an integration sweep across linalg, core and schedule.
func TestStressLinalgAllHeuristicsValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep")
	}
	for _, n := range []int{3, 5} {
		for _, build := range []string{"lu", "cholesky"} {
			g := buildLinalg(t, build, n)
			unb := platform.New(3, 2, platform.Unlimited, platform.Unlimited)
			ref, err := HEFT(tctx, g, unb, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			blue, red := ref.MemoryPeaks()
			peak := blue
			if red > peak {
				peak = red
			}
			for _, frac := range []int64{10, 7, 5, 3} {
				bound := peak * frac / 10
				p := platform.New(3, 2, bound, bound)
				for name, fn := range Algorithms {
					s, err := fn(tctx, g, p, Options{Seed: 2})
					if err != nil {
						continue
					}
					if err := s.Validate(); err != nil {
						t.Fatalf("%s %s n=%d frac=%d: %v", build, name, n, frac, err)
					}
				}
			}
		}
	}
}

func buildLinalg(t *testing.T, kind string, n int) *dag.Graph {
	t.Helper()
	// Local import-free construction: replicate via dag fixtures is not
	// possible, so use a tiny kernel-weighted chain-of-levels stand-in
	// when linalg is unavailable. The real builders live in
	// internal/linalg; importing them here would create an import cycle
	// in tests (linalg's tests import core), so we approximate with a
	// dense layered graph of comparable shape.
	g := dag.New()
	var prev []dag.TaskID
	for level := 0; level < n*2; level++ {
		var cur []dag.TaskID
		width := n - level%n
		if width < 1 {
			width = 1
		}
		for w := 0; w < width; w++ {
			id := g.AddTask("", float64(450+w*100), float64(90+w*10))
			for _, p := range prev {
				if (int(p)+w)%2 == 0 {
					g.MustAddEdge(p, id, 1, 50)
				}
			}
			cur = append(cur, id)
		}
		prev = cur
	}
	_ = kind
	return g
}
