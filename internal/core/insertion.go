package core

import (
	"context"
	"math"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// The paper's MemHEFT keeps one availability time per processor (a task can
// only be appended after the last task of a processor). Classical HEFT
// instead uses *insertion-based* policy: a task may fill an idle gap between
// two already-scheduled tasks. This file adds that policy as an option so
// its effect can be measured (see BenchmarkAblationInsertion); the paper's
// algorithms default to the append policy.

// busyInterval is one committed occupation of a processor.
type busyInterval struct {
	start, end float64
}

// insertionState tracks per-processor busy lists (sorted by start) for the
// insertion policy.
type insertionState struct {
	busy [][]busyInterval
}

func newInsertionState(procs int) *insertionState {
	return &insertionState{busy: make([][]busyInterval, procs)}
}

// earliestFitOn returns the earliest time >= lb at which a task of duration
// w fits on proc.
func (is *insertionState) earliestFitOn(proc int, lb, w float64) float64 {
	cur := lb
	for _, iv := range is.busy[proc] {
		if cur+w <= iv.start+schedule.Eps {
			return cur
		}
		if iv.end > cur {
			cur = iv.end
		}
	}
	return cur
}

// insert records the occupation [start, start+w) on proc, keeping the list
// sorted.
func (is *insertionState) insert(proc int, start, w float64) {
	iv := busyInterval{start: start, end: start + w}
	list := is.busy[proc]
	pos := len(list)
	for i, b := range list {
		if iv.start < b.start {
			pos = i
			break
		}
	}
	list = append(list, busyInterval{})
	copy(list[pos+1:], list[pos:])
	list[pos] = iv
	is.busy[proc] = list
}

// evaluateInsertion is Evaluate with gap-filling resource selection. It
// shares the precedence and memory components with Evaluate and differs
// only in how processor availability constrains the start time.
func (st *Partial) evaluateInsertion(id dag.TaskID, mu platform.Memory) Candidate {
	c := Candidate{Task: id, Mem: mu, EST: inf, EFT: inf}
	lo, hi := st.p.ProcRange(mu)
	if lo == hi || st.ins == nil {
		return c
	}
	precedenceEST, crossFiles, cmu := st.staticFor(id, mu)
	var taskMemEST, commMemEST float64
	if !st.unbounded[mu] {
		if need := crossFiles + st.outFiles[id]; need != 0 {
			taskMemEST = st.free[mu].EarliestFit(0, need)
		}
		if crossFiles != 0 {
			commMemEST = st.free[mu].EarliestFit(0, crossFiles)
		}
	}
	lower := math.Max(precedenceEST, taskMemEST)
	lower = math.Max(lower, commMemEST+cmu)
	if math.IsInf(lower, 1) {
		return c
	}
	w := st.duration(id, mu)
	est := inf
	for proc := lo; proc < hi; proc++ {
		if t := st.ins.earliestFitOn(proc, lower, w); t < est {
			est = t
		}
	}
	c.EST = est
	c.EFT = est + w
	c.CMu = cmu
	return c
}

// commitInsertion commits a candidate computed by evaluateInsertion.
func (st *Partial) commitInsertion(c Candidate) {
	id, mu := c.Task, c.Mem
	w := st.duration(id, mu)
	start, fin := c.EST, c.EST+w
	lo, hi := st.p.ProcRange(mu)
	bestProc := -1
	for proc := lo; proc < hi; proc++ {
		if st.ins.earliestFitOn(proc, c.EST, w) <= start+schedule.Eps {
			bestProc = proc
			break
		}
	}
	if bestProc < 0 {
		panic("core: no gap at committed start time")
	}
	st.ins.insert(bestProc, start, w)
	st.sched.Tasks[id] = schedule.TaskPlacement{Start: start, Proc: bestProc}
	if fin > st.availProc[bestProc] {
		st.availProc[bestProc] = fin
	}
	st.finishTask(id, fin)
	st.commitFiles(id, mu, start, fin, c.CMu)
}

// MemHEFTInsertion runs Algorithm 1 with classical HEFT's insertion-based
// processor selection instead of the paper's append policy. Everything else
// (priority list, memory accounting, ALAP communications) is identical.
func MemHEFTInsertion(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*schedule.Schedule, error) {
	return memHEFTWith(ctx, g, p, opt, true)
}
