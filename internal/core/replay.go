package core

import (
	"context"
	"math"

	"repro/internal/platform"
)

// Trace records the committed placement sequence of one heuristic run so a
// later run on a platform with equal processor counts and no larger memory
// capacities can replay the prefix instead of re-deriving it. Traces are
// recorded through Options.Record and consumed through Options.Replay; a
// stored trace must never be mutated afterwards (replay reads it
// concurrently from forked sessions).
//
// Replay is sound only downward in capacity: with an identical committed
// prefix, every staircase holds less free memory under a smaller capacity,
// so earliest-fit times — and hence every candidate's EST/EFT — are
// monotone non-decreasing, and a task that was infeasible stays infeasible.
// Each replayed step is verified by recomputing the best candidate on the
// live state and comparing it to the recorded one; the first mismatch
// truncates the replay and the normal scheduling loop resumes from the
// verified prefix, which keeps the result bit-identical to a from-scratch
// run (the recorded decision either still is the engine's decision, proven
// by the comparison, or the engine takes over).
type Trace struct {
	// Platform is the platform the trace was recorded on — for HEFT and
	// MinMin the engine-effective unbounded platform, not the nominal one.
	Platform platform.Platform
	// Cands is the commit sequence: one fully resolved candidate per task
	// in commit order.
	Cands []Candidate
	// Complete reports whether the recorded run scheduled every task.
	// Incomplete traces (memory-bound or interrupted runs) are still valid
	// prefixes, but callers typically keep the last complete one.
	Complete bool
	// MinMargin[mu] is the minimum, over the recorded steps placed on
	// memory mu, of the slack each step's memory fits had when committed
	// (math.MaxInt64 when no bounded fit was recorded on mu, -1 when the
	// margins of a mirrored prefix could not be derived). It powers the
	// FullReplayOn shortcut.
	MinMargin [2]int64
}

// replayEligible reports whether a trace recorded on prev may be replayed
// on next: identical processor counts and per-memory capacities that did
// not grow. Growing a capacity can unblock a previously skipped task, which
// replay cannot see; shrinking only delays or blocks, which the per-step
// verification catches.
func replayEligible(prev, next platform.Platform) bool {
	return prev.PBlue == next.PBlue && prev.PRed == next.PRed &&
		capEligible(prev.MBlue, next.MBlue) && capEligible(prev.MRed, next.MRed)
}

// capEligible is the per-memory shrink check; any two unlimited capacities
// compare equal regardless of their numeric encoding.
func capEligible(prev, next int64) bool {
	if next >= platform.Unlimited {
		return prev >= platform.Unlimited
	}
	return next <= prev
}

// beginRun applies the warm-start options to a freshly built Partial:
// resets the recording trace, replays the verified prefix of opt.Replay
// when the trace is eligible for p, mirrors the replayed prefix into the
// recording, and reports the replay counters. It returns the number of
// placements committed by replay; the only error is cooperative
// cancellation mid-replay.
func (st *Partial) beginRun(ctx context.Context, p platform.Platform, opt Options) (int, error) {
	if rec := opt.Record; rec != nil {
		rec.Platform = p
		rec.Cands = rec.Cands[:0]
		rec.Complete = false
		rec.MinMargin = [2]int64{math.MaxInt64, math.MaxInt64}
	}
	replayed := 0
	if tr := opt.Replay; tr != nil && replayEligible(tr.Platform, p) {
		var err error
		replayed, err = st.replayPrefix(ctx, tr)
		if err != nil {
			return replayed, err
		}
		if rec := opt.Record; rec != nil && replayed > 0 {
			rec.Cands = append(rec.Cands, tr.Cands[:replayed]...)
			if m := prefixMargin(tr.Platform.MBlue, p.MBlue, tr.MinMargin[0]); m < rec.MinMargin[0] {
				rec.MinMargin[0] = m
			}
			if m := prefixMargin(tr.Platform.MRed, p.MRed, tr.MinMargin[1]); m < rec.MinMargin[1] {
				rec.MinMargin[1] = m
			}
		}
	}
	if opt.Stats != nil && opt.Replay != nil {
		opt.Stats.Replayed += replayed
		opt.Stats.ReplayTruncated = replayed < len(opt.Replay.Cands)
	}
	return replayed, nil
}

// replayPrefix commits the longest verified prefix of tr onto st and
// returns its length. Each step is verified by replayVerify — much cheaper
// than re-deriving the decision, and equally exact — so a full replay costs
// little more than the commits themselves; the first step that no longer
// verifies stops the replay and the caller's normal loop takes over.
func (st *Partial) replayPrefix(ctx context.Context, tr *Trace) (int, error) {
	for i := range tr.Cands {
		if err := ctxErr(ctx, i); err != nil {
			return i, err
		}
		rc := tr.Cands[i]
		if !rc.Feasible() || !st.Ready(rc.Task) {
			return i, nil
		}
		if !st.replayVerify(rc) {
			return i, nil
		}
		st.Commit(rc)
	}
	return len(tr.Cands), nil
}

// replayVerify decides, without re-evaluating any candidate, whether the
// recorded candidate rc is still bit-exactly what the engine would compute
// and commit at this position. It rests on two invariants of an eligible
// replay (same processor counts, capacities not grown, identical verified
// prefix — the session guarantees the trace comes from the same graph,
// scheduler and seed):
//
//   - every non-staircase EST component (processor availability,
//     precedence_EST, C(mu,i)) is a pure function of the committed prefix,
//     so it matches the recording run bit for bit;
//   - the staircases carry the recording run's exact reservations over a
//     capacity that did not grow, so free(t) only shrank: every
//     earliest-fit time is monotone non-decreasing and an infeasible
//     candidate stays infeasible.
//
// The recorded EST therefore remains exact iff both memory fits still hold
// at their recorded positions — the two FitsFrom checks bound the only
// components that can move by rc.EST, which the recording run attained —
// and the other memory needs no evaluation at all: its EFT was no better
// than rc's when recorded (rc was Best), it is monotone non-decreasing, and
// the tie-break depends only on the memory index, so rc still wins. The
// same monotonicity keeps every higher-priority task MemHEFT skipped
// skipped, and every ready pair MemMinMin rejected rejected, so the
// engines' selection order is preserved too.
func (st *Partial) replayVerify(rc Candidate) bool {
	mu := rc.Mem
	_, cross, cmu := st.staticFor(rc.Task, mu)
	if cmu != rc.CMu {
		return false // not this prefix's recording; fall back to scratch
	}
	if st.unbounded[mu] {
		return true
	}
	if need := cross + st.outFiles[rc.Task]; need != 0 && !st.free[mu].FitsFrom(rc.EST, need) {
		return false
	}
	return cross == 0 || st.free[mu].FitsFrom(rc.EST-cmu, cross)
}

// recordStep appends c to the recording trace together with the pre-commit
// slack of its memory fits, folded into rec.MinMargin. Engines call it in
// place of a plain append, immediately before Commit(c): the slacks must be
// measured on the staircase the fits were evaluated against.
func (st *Partial) recordStep(rec *Trace, c Candidate) {
	rec.Cands = append(rec.Cands, c)
	mu := c.Mem
	if st.unbounded[mu] {
		return
	}
	_, cross, cmu := st.staticFor(c.Task, mu)
	if need := cross + st.outFiles[c.Task]; need > 0 {
		if m := st.free[mu].SlackAt(c.EST) - need; m < rec.MinMargin[mu] {
			rec.MinMargin[mu] = m
		}
	}
	if cross > 0 {
		if m := st.free[mu].SlackAt(c.EST-cmu) - cross; m < rec.MinMargin[mu] {
			rec.MinMargin[mu] = m
		}
	}
}

// prefixMargin translates a recorded margin to the capacity a prefix of the
// trace was just replayed on: the replay committed the recorded reservations
// bit for bit, so its staircase equals the recording run's shifted down by
// delta = prevCap - nextCap, and every recorded slack shrank by exactly
// delta. Using the whole-trace minimum for a (possibly shorter) prefix is
// conservative — the prefix's true margin can only be larger. A bounded
// replay of an unbounded recording verified against staircases whose slacks
// were never captured, so it degrades to -1 (blocks FullReplayOn forever,
// which is safe: margins are never negative when known).
func prefixMargin(prevCap, nextCap, margin int64) int64 {
	if nextCap >= platform.Unlimited {
		return margin // nothing shrank (eligibility: prevCap is unlimited too)
	}
	if prevCap >= platform.Unlimited {
		return -1
	}
	return margin - (prevCap - nextCap)
}

// FullReplayOn reports whether replaying the complete trace on next is
// guaranteed to verify every step, making the run's schedule bit-identical
// to the recorded one — so a caller holding that schedule can reuse it
// without running the engine at all. Soundness: under an eligible shrink the
// replaying run's staircases hold the recorded reservations over a capacity
// smaller by delta(mu) = recorded cap - next cap, so every suffix minimum —
// and with it every recorded fit slack — drops by exactly delta(mu); the
// per-step FitsFrom checks of replayVerify therefore all still pass iff
// delta(mu) <= MinMargin[mu] for both memories. The remaining per-step
// checks (feasibility, readiness, C(mu,i)) are pure functions of the shared
// graph and the identical committed prefix and hold by induction.
func (tr *Trace) FullReplayOn(next platform.Platform) bool {
	if tr == nil || !tr.Complete || !replayEligible(tr.Platform, next) {
		return false
	}
	return marginOK(tr.Platform.MBlue, next.MBlue, tr.MinMargin[0]) &&
		marginOK(tr.Platform.MRed, next.MRed, tr.MinMargin[1])
}

// marginOK is the per-memory margin check of FullReplayOn.
func marginOK(prevCap, nextCap, margin int64) bool {
	if nextCap >= platform.Unlimited {
		return true // eligibility guarantees prevCap is unlimited too
	}
	if prevCap >= platform.Unlimited {
		return false // a bounded run of an unbounded recording must verify per step
	}
	return prevCap-nextCap <= margin
}
