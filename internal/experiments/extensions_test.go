package experiments

import (
	"math"
	"testing"
)

func TestExtInsertionShape(t *testing.T) {
	tab, err := ExtInsertion(tctx, Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	ai := tab.Column("memheft-append")
	ii := tab.Column("memheft-insertion")
	if ai < 0 || ii < 0 {
		t.Fatal("columns missing")
	}
	// At the most generous bound both must schedule.
	last := tab.Rows[len(tab.Rows)-1]
	if math.IsNaN(last.Values[ai]) || math.IsNaN(last.Values[ii]) {
		t.Fatal("both policies must fit at ample memory")
	}
}

func TestExtOnlineShape(t *testing.T) {
	tab, err := ExtOnline(tctx, Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"memheft", "memminmin", "online-rank", "online-eft"} {
		if tab.Column(col) < 0 {
			t.Fatalf("column %s missing", col)
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	static := last.Values[tab.Column("memheft")]
	onEFT := last.Values[tab.Column("online-eft")]
	if math.IsNaN(static) || math.IsNaN(onEFT) {
		t.Fatal("ample-memory row incomplete")
	}
	// The online dispatcher pays for eager transfers and no lookahead;
	// it must stay within an order of magnitude of the static schedule.
	if onEFT > static*10 {
		t.Fatalf("online %g absurdly worse than static %g", onEFT, static)
	}
}

func TestExtMultiPoolShape(t *testing.T) {
	tab, err := ExtMultiPool(tctx, Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Device memory shrinks down the rows; the first (largest) bound
	// must schedule for both heuristics.
	first := tab.Rows[0]
	for i, v := range first.Values {
		if math.IsNaN(v) {
			t.Fatalf("column %s failed at the largest device memory", tab.Columns[i])
		}
	}
	// Makespan must not improve as device memory shrinks for MemHEFT...
	// not guaranteed in general for heuristics; only check the weaker
	// invariant that values are positive when present.
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			if !math.IsNaN(v) && v <= 0 {
				t.Fatal("nonpositive makespan")
			}
		}
	}
}
