// Package experiments reproduces the evaluation campaign of §6 of the
// paper: the memory sweeps over the four DAG sets (SmallRandSet,
// LargeRandSet, LUSet, CholeskySet), the aggregation into normalised
// makespans and success rates, and renderers for every figure and table.
// cmd/experiments and the repository benchmarks are thin wrappers around
// this package.
package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Table is a generic experiment result: one x column and one y column per
// series. Missing values (failed runs) are NaN.
type Table struct {
	Name    string
	XLabel  string
	Columns []string
	Rows    []Row
}

// Row is one x value and one cell per column (NaN = missing).
type Row struct {
	X      float64
	Values []float64
}

// AddRow appends a row; the number of values must match the columns.
func (t *Table) AddRow(x float64, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row with %d values for %d columns", len(values), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{X: x, Values: append([]float64(nil), values...)})
}

// Column returns the index of the named column, or -1.
func (t *Table) Column(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// CSV renders the table as comma-separated values with a header row;
// missing cells are empty.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%g", r.X)
		for _, v := range r.Values {
			b.WriteByte(',')
			if !math.IsNaN(v) {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-style markdown table; missing
// cells show a dash.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| %s |", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|")
	for i := 0; i <= len(t.Columns); i++ {
		b.WriteString(" --- |")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %.3g |", r.X)
		for _, v := range r.Values {
			if math.IsNaN(v) {
				b.WriteString(" – |")
			} else {
				fmt.Fprintf(&b, " %.4g |", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
