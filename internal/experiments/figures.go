package experiments

import (
	"context"
	"time"

	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/linalg"
	"repro/internal/platform"
)

// Scale selects the cost of an experiment run.
type Scale int

// Scales. Full reproduces the paper's parameters exactly; Quick shrinks the
// instance counts and sizes so the whole campaign runs in seconds (used by
// tests and benchmarks — the qualitative shapes survive the reduction).
const (
	Quick Scale = iota
	Full
)

// RandomPlatform is the platform used for the random-DAG experiments. The
// paper does not state processor counts for those sets; two processors per
// memory is the smallest platform exhibiting all effects (see DESIGN.md).
func RandomPlatform() platform.Platform { return platform.New(2, 2, 0, 0) }

// MiragePlatform models the mirage machine of §6.1.2: 12 CPU cores (blue)
// and 3 GPUs (red).
func MiragePlatform() platform.Platform { return platform.New(12, 3, 0, 0) }

// Table1 returns the kernel timing table (Table 1 of the paper plus the
// synthetic accelerator column used throughout, cf. DESIGN.md).
func Table1() *Table {
	t := &Table{Name: "Table 1", XLabel: "kernel-index", Columns: []string{"cpu-ms", "gpu-ms"}}
	order := []linalg.Kernel{linalg.GETRF, linalg.GEMM, linalg.TRSML, linalg.TRSMU, linalg.POTRF, linalg.SYRK}
	for i, k := range order {
		kt := linalg.KernelTimes[k]
		t.AddRow(float64(i), kt.Blue, kt.Red)
	}
	return t
}

// Table1Kernels lists the kernel names in the same order as Table1 rows.
func Table1Kernels() []string {
	return []string{"getrf", "gemm", "trsm_l", "trsm_u", "potrf", "syrk"}
}

// Fig10 reproduces Figure 10: SmallRandSet, normalised makespan and success
// rate for MemHEFT, MemMinMin and the exact-search reference.
func Fig10(ctx context.Context, scale Scale, seed int64) (*SweepResult, error) {
	count := 50
	optNodes := 200000
	optTimeout := 2 * time.Second
	alphas := DefaultAlphas()
	if scale == Quick {
		count = 8
		optNodes = 30000
		optTimeout = time.Second
		alphas = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	graphs, err := daggen.Set(daggen.SmallParams(), count, seed)
	if err != nil {
		return nil, err
	}
	return NormalizedSweep(ctx, NormalizedSweepConfig{
		Graphs:      graphs,
		Platform:    RandomPlatform(),
		Alphas:      alphas,
		Seed:        seed,
		WithOptimal: true,
		OptNodes:    optNodes,
		OptTimeout:  optTimeout,
	})
}

// Fig11 reproduces Figure 11: makespan versus absolute memory for one DAG of
// SmallRandSet, all four heuristics plus the lower bound.
func Fig11(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	g, err := daggen.Generate(daggen.SmallParams(), seed)
	if err != nil {
		return nil, err
	}
	p := RandomPlatform()
	_, peak, err := HEFTReference(ctx, g, p, seed)
	if err != nil {
		return nil, err
	}
	steps := 30
	if scale == Quick {
		steps = 10
	}
	return AbsoluteSweep(ctx, AbsoluteSweepConfig{
		Graph:      g,
		Platform:   p,
		Memories:   MemoryGrid(peak+peak/10, steps),
		Seed:       seed,
		LowerBound: true,
	})
}

// Fig12 reproduces Figure 12: LargeRandSet, normalised makespan and success
// rate for the two memory-aware heuristics. At Full scale this runs the
// paper's 100 DAGs of 1000 tasks and takes a while; Quick shrinks both.
func Fig12(ctx context.Context, scale Scale, seed int64) (*SweepResult, error) {
	params := daggen.LargeParams()
	count := 100
	alphas := DefaultAlphas()
	if scale == Quick {
		params.Size = 120
		count = 6
		alphas = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	graphs, err := daggen.Set(params, count, seed)
	if err != nil {
		return nil, err
	}
	return NormalizedSweep(ctx, NormalizedSweepConfig{
		Graphs:   graphs,
		Platform: RandomPlatform(),
		Alphas:   alphas,
		Seed:     seed,
	})
}

// Fig13 reproduces Figure 13: makespan versus absolute memory for one DAG of
// LargeRandSet, the four heuristics (no lower bound is drawn in the paper's
// figure, but including it costs nothing).
func Fig13(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	params := daggen.LargeParams()
	steps := 25
	if scale == Quick {
		params.Size = 120
		steps = 8
	}
	g, err := daggen.Generate(params, seed)
	if err != nil {
		return nil, err
	}
	p := RandomPlatform()
	_, peak, err := HEFTReference(ctx, g, p, seed)
	if err != nil {
		return nil, err
	}
	return AbsoluteSweep(ctx, AbsoluteSweepConfig{
		Graph:    g,
		Platform: p,
		Memories: MemoryGrid(peak+peak/10, steps),
		Seed:     seed,
	})
}

// Fig14 reproduces Figure 14: the LU factorisation of a 13x13 tiled matrix
// on the mirage platform, makespan versus memory (in tiles).
func Fig14(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	tiles := 13
	steps := 25
	if scale == Quick {
		tiles = 6
		steps = 8
	}
	g, err := linalg.LU(linalg.DefaultConfig(tiles))
	if err != nil {
		return nil, err
	}
	return linalgSweep(ctx, g, seed, steps)
}

// Fig15 reproduces Figure 15: the Cholesky factorisation of a 13x13 tiled
// matrix on the mirage platform.
func Fig15(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	tiles := 13
	steps := 25
	if scale == Quick {
		tiles = 6
		steps = 8
	}
	g, err := linalg.Cholesky(linalg.DefaultConfig(tiles))
	if err != nil {
		return nil, err
	}
	return linalgSweep(ctx, g, seed, steps)
}

// linalgSweep is the common body of Figures 14 and 15: sweep absolute
// memory (in tiles) on the mirage platform for the two memory-aware
// heuristics, as in the paper's figures.
func linalgSweep(ctx context.Context, g *dag.Graph, seed int64, steps int) (*Table, error) {
	p := MiragePlatform()
	_, peak, err := HEFTReference(ctx, g, p, seed)
	if err != nil {
		return nil, err
	}
	return AbsoluteSweep(ctx, AbsoluteSweepConfig{
		Graph:      g,
		Platform:   p,
		Memories:   MemoryGrid(peak+peak/10, steps),
		Seed:       seed,
		Algorithms: []string{"memheft", "memminmin"},
	})
}
