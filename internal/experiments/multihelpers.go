package experiments

import (
	"context"
	"errors"
	"math"

	"repro/internal/dag"
	"repro/internal/multi"
)

// multiInstance builds a 3-pool instance from a dual-time graph: pool 0
// (CPU) keeps the blue time, pool 1 (accelerator A) the red time, pool 2
// (accelerator B) the mean of the two.
func multiInstance(g *dag.Graph) *multi.Instance {
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(dag.TaskID(i))
		times[i] = []float64{t.WBlue, t.WRed, (t.WBlue + t.WRed) / 2}
	}
	return multi.NewInstance(g, times)
}

// multiPlatform is the 3-pool platform of the multi-pool sweep: a 2-proc
// CPU pool with generous memory plus two single-proc accelerators with the
// given device memory.
func multiPlatform(hostMem, devMem int64) multi.Platform {
	return multi.NewPlatform(
		multi.Pool{Procs: 2, Capacity: hostMem},
		multi.Pool{Procs: 1, Capacity: devMem},
		multi.Pool{Procs: 1, Capacity: devMem},
	)
}

// multiRun executes one generalised heuristic and returns its makespan, or
// NaN when the instance does not fit.
func multiRun(ctx context.Context, in *multi.Instance, p multi.Platform, seed int64, heft bool) (float64, error) {
	var (
		s   *multi.Schedule
		err error
	)
	if heft {
		s, err = multi.MemHEFT(ctx, in, p, multi.Options{Seed: seed})
	} else {
		s, err = multi.MemMinMin(ctx, in, p, multi.Options{Seed: seed})
	}
	if err != nil {
		if errors.Is(err, multi.ErrMemoryBound) {
			return math.NaN(), nil
		}
		return 0, err
	}
	return s.Makespan(), nil
}
