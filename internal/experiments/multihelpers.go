package experiments

import (
	"context"
	"errors"
	"math"

	"repro/internal/dag"
	"repro/internal/multi"
)

// multiInstance builds a 3-pool instance from a dual-time graph: pool 0
// (CPU) keeps the blue time, pool 1 (accelerator A) the red time, pool 2
// (accelerator B) the mean of the two.
func multiInstance(g *dag.Graph) *multi.Instance {
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(dag.TaskID(i))
		times[i] = []float64{t.WBlue, t.WRed, (t.WBlue + t.WRed) / 2}
	}
	return multi.NewInstance(g, times)
}

// multiPlatform is the 3-pool platform of the multi-pool sweep: a 2-proc
// CPU pool with generous memory plus two single-proc accelerators with the
// given device memory.
func multiPlatform(hostMem, devMem int64) multi.Platform {
	return multi.NewPlatform(
		multi.Pool{Procs: 2, Capacity: hostMem},
		multi.Pool{Procs: 1, Capacity: devMem},
		multi.Pool{Procs: 1, Capacity: devMem},
	)
}

// KPoolBench builds the deterministic k-pool benchmark fixture shared by
// the package benchmarks and cmd/benchjson: pool 0 is a 2-processor host
// carrying the graph's blue times, pools 1..k-1 are single-processor
// accelerators whose times start from the red column and grow 20% per
// additional pool (so placements spread), and every pool's capacity is
// alpha times the total file volume of the graph.
func KPoolBench(g *dag.Graph, k int, alpha float64) (*multi.Instance, multi.Platform) {
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(dag.TaskID(i))
		row := make([]float64, k)
		row[0] = t.WBlue
		for j := 1; j < k; j++ {
			row[j] = t.WRed * (1 + 0.2*float64(j-1))
		}
		times[i] = row
	}
	bound := int64(alpha * float64(g.TotalFiles()))
	pools := make([]multi.Pool, k)
	pools[0] = multi.Pool{Procs: 2, Capacity: bound}
	for j := 1; j < k; j++ {
		pools[j] = multi.Pool{Procs: 1, Capacity: bound}
	}
	return multi.NewInstance(g, times), multi.NewPlatform(pools...)
}

// multiRun executes one generalised heuristic and returns its makespan, or
// NaN when the instance does not fit. The caller-owned caches serve the
// ranking/statics memos across the sweep, exactly as a Session would.
func multiRun(ctx context.Context, in *multi.Instance, p multi.Platform, seed int64, heft bool, caches *multi.Caches) (float64, error) {
	var (
		s   *multi.Schedule
		err error
	)
	opt := multi.Options{Seed: seed, Caches: caches}
	if heft {
		s, err = multi.MemHEFT(ctx, in, p, opt)
	} else {
		s, err = multi.MemMinMin(ctx, in, p, opt)
	}
	if err != nil {
		if errors.Is(err, multi.ErrMemoryBound) {
			return math.NaN(), nil
		}
		return 0, err
	}
	return s.Makespan(), nil
}
