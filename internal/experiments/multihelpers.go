package experiments

import (
	memsched "repro"
	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/multi"
	"repro/sweep"
)

// multiPoolTimes builds a 3-pool timing matrix from a dual-time graph: pool
// 0 (CPU) keeps the blue time, pool 1 (accelerator A) the red time, pool 2
// (accelerator B) the mean of the two.
func multiPoolTimes(g *dag.Graph) [][]float64 {
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(dag.TaskID(i))
		times[i] = []float64{t.WBlue, t.WRed, (t.WBlue + t.WRed) / 2}
	}
	return times
}

// multiPlatform is the 3-pool platform of the multi-pool sweep: a 2-proc
// CPU pool with generous memory plus two single-proc accelerators with the
// given device memory.
func multiPlatform(hostMem, devMem int64) multi.Platform {
	return multi.NewPlatform(
		multi.Pool{Procs: 2, Capacity: hostMem},
		multi.Pool{Procs: 1, Capacity: devMem},
		multi.Pool{Procs: 1, Capacity: devMem},
	)
}

// SweepBench builds the deterministic sweep benchmark fixture shared by
// the package benchmarks (BenchmarkSweep64x1000Workers*) and cmd/benchjson,
// mirroring KPoolBench's role for the k-pool suite: a warm session over a
// daggen graph of the given size, and a 64-point spec — 16 memory fractions
// in the feasible band (0.55–1.0, so every point is a full schedule) × both
// memory-aware heuristics × 2 seeds — with the given worker bound
// (0 = GOMAXPROCS).
func SweepBench(size, workers int) (*memsched.Session, sweep.Spec, error) {
	params := daggen.LargeParams()
	params.Size = size
	g, err := daggen.Generate(params, 7)
	if err != nil {
		return nil, sweep.Spec{}, err
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		return nil, sweep.Spec{}, err
	}
	alphas := make([]float64, 16)
	for i := range alphas {
		alphas[i] = 0.55 + 0.03*float64(i)
	}
	return sess, sweep.Spec{
		Base:       memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited),
		Alphas:     alphas,
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{7, 8},
		Workers:    workers,
	}, nil
}

// KPoolBench builds the deterministic k-pool benchmark fixture shared by
// the package benchmarks and cmd/benchjson: pool 0 is a 2-processor host
// carrying the graph's blue times, pools 1..k-1 are single-processor
// accelerators whose times start from the red column and grow 20% per
// additional pool (so placements spread), and every pool's capacity is
// alpha times the total file volume of the graph.
func KPoolBench(g *dag.Graph, k int, alpha float64) (*multi.Instance, multi.Platform) {
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(dag.TaskID(i))
		row := make([]float64, k)
		row[0] = t.WBlue
		for j := 1; j < k; j++ {
			row[j] = t.WRed * (1 + 0.2*float64(j-1))
		}
		times[i] = row
	}
	bound := int64(alpha * float64(g.TotalFiles()))
	pools := make([]multi.Pool, k)
	pools[0] = multi.Pool{Procs: 2, Capacity: bound}
	for j := 1; j < k; j++ {
		pools[j] = multi.Pool{Procs: 1, Capacity: bound}
	}
	return multi.NewInstance(g, times), multi.NewPlatform(pools...)
}
