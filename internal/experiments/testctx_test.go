package experiments

import "context"

// tctx is the shared background context of the package tests.
var tctx = context.Background()
