package experiments

import (
	"context"

	memsched "repro"
	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/linalg"
	"repro/sweep"
)

// This file hosts the experiments that go beyond the paper: the ablation of
// the processor-selection policy (append vs insertion), the comparison of
// the static heuristics against the online StarPU-style dispatcher of
// internal/sim, and the k-pool generalisation. All three are absolute
// memory sweeps on the parallel sweep engine; their outputs reuse the
// rendering of Figures 11/13/14/15.

// gridSweep runs one absolute-memory grid on the engine and folds the
// per-scheduler curves into a Table, relabelling columns (labels[i] names
// schedulers[i]'s column).
func gridSweep(ctx context.Context, sess *memsched.Session, platforms []memsched.Platform, xs []float64, schedulers, labels []string, seed int64) (*Table, error) {
	res, err := sweep.Run(ctx, sess, sweep.Spec{
		Platforms:  platforms,
		Xs:         xs,
		Schedulers: schedulers,
		Seeds:      []int64{seed},
	})
	if err != nil {
		return nil, err
	}
	table := &Table{XLabel: "memory", Columns: labels}
	for ai, x := range xs {
		row := make([]float64, len(schedulers))
		for si := range schedulers {
			row[si] = res.Summary.Curves[si].Makespan[ai]
		}
		table.AddRow(x, row...)
	}
	return table, nil
}

// memoryGridPlatforms expands a memory grid into uniformly bounded
// platforms plus their x labels.
func memoryGridPlatforms(base memsched.Platform, memories []int64) ([]memsched.Platform, []float64) {
	platforms := make([]memsched.Platform, len(memories))
	xs := make([]float64, len(memories))
	for i, mem := range memories {
		platforms[i] = base.WithUniformBounds(mem)
		xs[i] = float64(mem)
	}
	return platforms, xs
}

// ExtInsertion sweeps absolute memory on one random DAG and compares the
// paper's MemHEFT (append policy) against the insertion-based variant.
func ExtInsertion(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	params := daggen.SmallParams()
	params.Size = 60
	steps := 20
	if scale == Quick {
		params.Size = 30
		steps = 8
	}
	g, err := daggen.Generate(params, seed)
	if err != nil {
		return nil, err
	}
	p := RandomPlatform()
	_, peak, err := HEFTReference(ctx, g, p, seed)
	if err != nil {
		return nil, err
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		return nil, err
	}
	platforms, xs := memoryGridPlatforms(poolPlatform(p), MemoryGrid(peak+peak/10, steps))
	table, err := gridSweep(ctx, sess, platforms, xs,
		[]string{"memheft", "memheft-insertion"},
		[]string{"memheft-append", "memheft-insertion"}, seed)
	if err != nil {
		return nil, err
	}
	table.Name = "append vs insertion"
	return table, nil
}

// ExtOnline sweeps absolute memory on an LU factorisation and compares the
// static memory-aware heuristics against the online dispatcher's two
// policies. Online admission control is stricter than the static staircase
// accounting, so the online curves are expected to stop earlier and sit
// higher — quantifying what the paper's proposed StarPU integration would
// give up without lookahead.
func ExtOnline(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tiles := 8
	steps := 16
	if scale == Quick {
		tiles = 5
		steps = 6
	}
	g, err := linalg.LU(linalg.DefaultConfig(tiles))
	if err != nil {
		return nil, err
	}
	p := MiragePlatform()
	_, peak, err := HEFTReference(ctx, g, p, seed)
	if err != nil {
		return nil, err
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		return nil, err
	}
	platforms, xs := memoryGridPlatforms(poolPlatform(p), MemoryGrid(peak+peak/10, steps))
	table, err := gridSweep(ctx, sess, platforms, xs,
		[]string{"memheft", "memminmin", sweep.SchedulerSimRank, sweep.SchedulerSimEFT},
		[]string{"memheft", "memminmin", "online-rank", "online-eft"}, seed)
	if err != nil {
		return nil, err
	}
	table.Name = "static vs online"
	return table, nil
}

// ExtMultiPool sweeps the per-accelerator memory of a 3-pool platform
// (CPU + two accelerator types) on a flavoured random workload, showing the
// k-memory generalisation at work. Returns makespan per device-memory size
// for the generalised heuristics.
func ExtMultiPool(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	params := daggen.SmallParams()
	params.Size = 45
	if scale == Quick {
		params.Size = 24
	}
	g, err := daggen.Generate(params, seed)
	if err != nil {
		return nil, err
	}
	return multiPoolSweep(ctx, g, seed)
}

func multiPoolSweep(ctx context.Context, g *dag.Graph, seed int64) (*Table, error) {
	// Pool times: CPU keeps the blue time; accelerator A gets the red
	// time; accelerator B gets the mean — three genuinely different
	// speeds per task. The session carries the matrix, so the engine runs
	// the generalised k-pool path.
	sess, err := memsched.NewSession(g, memsched.WithPoolTimes(multiPoolTimes(g)))
	if err != nil {
		return nil, err
	}
	// Reference footprint: total files (a bound that always fits).
	total := g.TotalFiles()
	var platforms []memsched.Platform
	var xs []float64
	for frac := 10; frac >= 1; frac-- {
		dev := total * int64(frac) / 10
		if dev == 0 {
			continue
		}
		platforms = append(platforms, multiPlatform(total*2, dev))
		xs = append(xs, float64(dev))
	}
	table, err := gridSweep(ctx, sess, platforms, xs,
		[]string{"memheft", "memminmin"},
		[]string{"multi-memheft", "multi-memminmin"}, seed)
	if err != nil {
		return nil, err
	}
	table.Name = "multi-pool sweep"
	table.XLabel = "device-memory"
	return table, nil
}
