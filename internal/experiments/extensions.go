package experiments

import (
	"context"
	"errors"
	"math"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/linalg"
	"repro/internal/multi"
	"repro/internal/sim"
)

// This file hosts the experiments that go beyond the paper: the ablation of
// the processor-selection policy (append vs insertion) and the comparison of
// the static heuristics against the online StarPU-style dispatcher of
// internal/sim. Both reuse the absolute-memory-sweep format of Figures
// 11/13/14/15 so their outputs render with the same tooling.

// ExtInsertion sweeps absolute memory on one random DAG and compares the
// paper's MemHEFT (append policy) against the insertion-based variant.
func ExtInsertion(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	caches := core.NewCaches()
	params := daggen.SmallParams()
	params.Size = 60
	steps := 20
	if scale == Quick {
		params.Size = 30
		steps = 8
	}
	g, err := daggen.Generate(params, seed)
	if err != nil {
		return nil, err
	}
	p := RandomPlatform()
	_, peak, err := heftReferenceCached(ctx, g, p, seed, caches)
	if err != nil {
		return nil, err
	}
	table := &Table{Name: "append vs insertion", XLabel: "memory",
		Columns: []string{"memheft-append", "memheft-insertion"}}
	for _, mem := range MemoryGrid(peak+peak/10, steps) {
		pb := p.WithBounds(mem, mem)
		row := make([]float64, 2)
		for i, fn := range []core.Func{core.MemHEFT, core.MemHEFTInsertion} {
			s, err := fn(ctx, g, pb, core.Options{Seed: seed, Caches: caches})
			if err != nil {
				if errors.Is(err, core.ErrMemoryBound) {
					row[i] = math.NaN()
					continue
				}
				return nil, err
			}
			row[i] = s.Makespan()
		}
		table.AddRow(float64(mem), row...)
	}
	return table, nil
}

// ExtOnline sweeps absolute memory on an LU factorisation and compares the
// static memory-aware heuristics against the online dispatcher's two
// policies. Online admission control is stricter than the static staircase
// accounting, so the online curves are expected to stop earlier and sit
// higher — quantifying what the paper's proposed StarPU integration would
// give up without lookahead.
func ExtOnline(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	caches := core.NewCaches()
	tiles := 8
	steps := 16
	if scale == Quick {
		tiles = 5
		steps = 6
	}
	g, err := linalg.LU(linalg.DefaultConfig(tiles))
	if err != nil {
		return nil, err
	}
	p := MiragePlatform()
	_, peak, err := heftReferenceCached(ctx, g, p, seed, caches)
	if err != nil {
		return nil, err
	}
	table := &Table{Name: "static vs online", XLabel: "memory",
		Columns: []string{"memheft", "memminmin", "online-rank", "online-eft"}}
	for _, mem := range MemoryGrid(peak+peak/10, steps) {
		pb := p.WithBounds(mem, mem)
		row := make([]float64, 4)
		for i, fn := range []core.Func{core.MemHEFT, core.MemMinMin} {
			s, err := fn(ctx, g, pb, core.Options{Seed: seed, Caches: caches})
			if err != nil {
				if errors.Is(err, core.ErrMemoryBound) {
					row[i] = math.NaN()
					continue
				}
				return nil, err
			}
			row[i] = s.Makespan()
		}
		for i, pol := range []sim.Policy{sim.RankPolicy, sim.EFTPolicy} {
			res, err := sim.Run(ctx, g, pb, sim.Options{Policy: pol, Seed: seed})
			if err != nil {
				if errors.Is(err, sim.ErrStuck) {
					row[2+i] = math.NaN()
					continue
				}
				return nil, err
			}
			row[2+i] = res.Makespan()
		}
		table.AddRow(float64(mem), row...)
	}
	return table, nil
}

// ExtMultiPool sweeps the per-accelerator memory of a 3-pool platform
// (CPU + two accelerator types) on a flavoured random workload, showing the
// k-memory generalisation at work. Returns makespan per device-memory size
// for the generalised heuristics.
func ExtMultiPool(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	params := daggen.SmallParams()
	params.Size = 45
	if scale == Quick {
		params.Size = 24
	}
	g, err := daggen.Generate(params, seed)
	if err != nil {
		return nil, err
	}
	return multiPoolSweep(ctx, g, seed)
}

func multiPoolSweep(ctx context.Context, g *dag.Graph, seed int64) (*Table, error) {
	// Pool times: CPU keeps the blue time; accelerator A gets the red
	// time; accelerator B gets the mean — three genuinely different
	// speeds per task.
	inst := multiInstance(g)
	mcaches := multi.NewCaches()
	table := &Table{Name: "multi-pool sweep", XLabel: "device-memory",
		Columns: []string{"multi-memheft", "multi-memminmin"}}
	// Reference footprint: total files (a bound that always fits).
	total := g.TotalFiles()
	for frac := 10; frac >= 1; frac-- {
		dev := total * int64(frac) / 10
		if dev == 0 {
			continue
		}
		p := multiPlatform(total*2, dev)
		row := make([]float64, 2)
		for i, fn := range []func() (float64, error){
			func() (float64, error) { return multiRun(ctx, inst, p, seed, true, mcaches) },
			func() (float64, error) { return multiRun(ctx, inst, p, seed, false, mcaches) },
		} {
			v, err := fn()
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		table.AddRow(float64(dev), row...)
	}
	return table, nil
}
