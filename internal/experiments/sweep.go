package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exact"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// HEFTReference runs memory-oblivious HEFT on g and returns its makespan and
// the larger of its two memory peaks; the paper normalises every sweep by
// these quantities ("the amount of memory required by HEFT").
func HEFTReference(ctx context.Context, g *dag.Graph, p platform.Platform, seed int64) (makespan float64, maxPeak int64, err error) {
	return heftReferenceCached(ctx, g, p, seed, nil)
}

// NormalizedSweepConfig drives the Figure 10 / Figure 12 experiment: for
// every DAG of a set and every alpha, run the memory-aware heuristics with
// both memory bounds set to alpha times the HEFT requirement, then average
// the HEFT-normalised makespans over successful runs and record success
// rates.
type NormalizedSweepConfig struct {
	Graphs   []*dag.Graph
	Platform platform.Platform // memory bounds ignored
	Alphas   []float64
	Seed     int64

	// WithOptimal adds the exact-search reference curve (Figure 10).
	WithOptimal bool
	OptNodes    int           // per-instance node budget; 0 = exact.DefaultMaxNodes
	OptTimeout  time.Duration // per-instance time budget
}

// DefaultAlphas is the normalised-memory grid of Figures 10 and 12.
func DefaultAlphas() []float64 {
	alphas := make([]float64, 0, 20)
	for a := 0.05; a <= 1.0001; a += 0.05 {
		alphas = append(alphas, math.Round(a*100)/100)
	}
	return alphas
}

// SweepResult carries the two panels of Figures 10 and 12.
type SweepResult struct {
	Makespan *Table // average normalised makespan (successful runs only)
	Success  *Table // fraction of DAGs scheduled
}

// NormalizedSweep runs the experiment. The context cancels the sweep
// between (and inside) cells; a cancelled sweep returns ctx's error.
func NormalizedSweep(ctx context.Context, cfg NormalizedSweepConfig) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cols := []string{"MemHEFT", "MemMinMin"}
	if cfg.WithOptimal {
		cols = append(cols, "Optimal")
	}
	msTable := &Table{Name: "normalized makespan", XLabel: "alpha", Columns: cols}
	srTable := &Table{Name: "success rate", XLabel: "alpha", Columns: cols}

	type ref struct {
		ms   float64
		peak int64
	}
	// One cache set per graph: every alpha of a graph reuses the same
	// priority list and statics, and concurrent workers on different
	// graphs share nothing (the former process-global single-slot caches
	// made them thrash and serialize).
	caches := make([]*core.Caches, len(cfg.Graphs))
	refs := make([]ref, len(cfg.Graphs))
	for i, g := range cfg.Graphs {
		caches[i] = core.NewCaches()
		ms, peak, err := heftReferenceCached(ctx, g, cfg.Platform, cfg.Seed, caches[i])
		if err != nil {
			return nil, err
		}
		refs[i] = ref{ms: ms, peak: peak}
	}

	algs := []namedAlg{
		{"MemHEFT", core.MemHEFT},
		{"MemMinMin", core.MemMinMin},
	}

	// One cell of work: one DAG at one alpha. Cells are independent, so
	// they run on a bounded worker pool; the reduction below is
	// sequential and index-ordered, keeping results bit-for-bit
	// deterministic regardless of scheduling.
	type cell struct {
		norm []float64 // normalised makespan per column; NaN = failed
		err  error
	}
	nA, nG := len(cfg.Alphas), len(cfg.Graphs)
	cells := make([]cell, nA*nG)
	workers := runtime.GOMAXPROCS(0)
	if workers > nA*nG {
		workers = nA * nG
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := ctx.Err(); err != nil {
					cells[idx] = cell{err: err}
					continue
				}
				ai, gi := idx/nG, idx%nG
				cells[idx] = sweepCell(ctx, cfg, cols, cfg.Alphas[ai], cfg.Graphs[gi], refs[gi].ms, refs[gi].peak, algs, caches[gi])
			}
		}()
	}
	for idx := range cells {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	for ai, alpha := range cfg.Alphas {
		sums := make([]float64, len(cols))
		oks := make([]int, len(cols))
		for gi := 0; gi < nG; gi++ {
			c := cells[ai*nG+gi]
			if c.err != nil {
				return nil, c.err
			}
			for i, v := range c.norm {
				if !math.IsNaN(v) {
					oks[i]++
					sums[i] += v
				}
			}
		}
		msRow := make([]float64, len(cols))
		srRow := make([]float64, len(cols))
		for i := range cols {
			if oks[i] > 0 {
				msRow[i] = sums[i] / float64(oks[i])
			} else {
				msRow[i] = math.NaN()
			}
			srRow[i] = float64(oks[i]) / float64(nG)
		}
		msTable.AddRow(alpha, msRow...)
		srTable.AddRow(alpha, srRow...)
	}
	return &SweepResult{Makespan: msTable, Success: srTable}, nil
}

// sweepCell evaluates one DAG at one alpha: both heuristics plus, when
// configured, the exact reference seeded with the better heuristic schedule.
func sweepCell(ctx context.Context, cfg NormalizedSweepConfig, cols []string, alpha float64, g *dag.Graph, refMS float64, refPeak int64, algs []namedAlg, caches *core.Caches) struct {
	norm []float64
	err  error
} {
	out := struct {
		norm []float64
		err  error
	}{norm: make([]float64, len(cols))}
	for i := range out.norm {
		out.norm[i] = math.NaN()
	}
	bound := int64(alpha * float64(refPeak))
	p := cfg.Platform.WithBounds(bound, bound)
	var best *schedule.Schedule
	for ai, alg := range algs {
		s, err := alg.fn(ctx, g, p, core.Options{Seed: cfg.Seed, Caches: caches})
		if err != nil {
			if ctx.Err() != nil {
				out.err = ctx.Err()
				return out
			}
			continue
		}
		out.norm[ai] = s.Makespan() / refMS
		if best == nil || s.Makespan() < best.Makespan() {
			best = s
		}
	}
	if cfg.WithOptimal {
		opt := exact.Options{MaxNodes: cfg.OptNodes, Timeout: cfg.OptTimeout, Incumbent: best, Caches: caches}
		res, err := exact.Solve(ctx, g, p, opt)
		if err != nil {
			out.err = err
			return out
		}
		if res.Schedule != nil {
			out.norm[len(cols)-1] = res.Makespan / refMS
		}
	}
	return out
}

// heftReferenceCached is HEFTReference with a session-style cache set.
func heftReferenceCached(ctx context.Context, g *dag.Graph, p platform.Platform, seed int64, caches *core.Caches) (makespan float64, maxPeak int64, err error) {
	s, err := core.HEFT(ctx, g, p, core.Options{Seed: seed, Caches: caches})
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: HEFT reference failed: %w", err)
	}
	blue, red := s.MemoryPeaks()
	peak := blue
	if red > peak {
		peak = red
	}
	return s.Makespan(), peak, nil
}

// namedAlg pairs a column name with its scheduler.
type namedAlg struct {
	name string
	fn   core.Func
}

// AbsoluteSweepConfig drives the Figures 11/13/14/15 experiment: one DAG,
// absolute memory bounds on the x axis, one curve per algorithm (plus
// optionally the lower bound).
type AbsoluteSweepConfig struct {
	Graph      *dag.Graph
	Platform   platform.Platform // memory bounds ignored
	Memories   []int64           // bounds applied to both memories
	Seed       int64
	Algorithms []string // names from core.Algorithms; nil = all four
	LowerBound bool
}

// AbsoluteSweep runs the experiment. Memory-oblivious algorithms (heft,
// minmin) are reported only at bounds that accommodate their peaks — they
// appear as the horizontal reference lines of Figure 11. The context
// cancels the sweep between memory steps.
func AbsoluteSweep(ctx context.Context, cfg AbsoluteSweepConfig) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	caches := core.NewCaches()
	names := cfg.Algorithms
	if names == nil {
		names = []string{"heft", "minmin", "memheft", "memminmin"}
	}
	cols := append([]string(nil), names...)
	if cfg.LowerBound {
		cols = append(cols, "lowerbound")
	}
	table := &Table{Name: "makespan vs memory", XLabel: "memory", Columns: cols}

	lb := math.NaN()
	if cfg.LowerBound {
		v, err := exact.LowerBound(cfg.Graph, cfg.Platform)
		if err != nil {
			return nil, err
		}
		lb = v
	}

	// Memory-oblivious results are memory-independent; compute once.
	type obliv struct {
		ms   float64
		peak int64
	}
	oblivious := map[string]obliv{}
	for _, name := range names {
		if name != "heft" && name != "minmin" {
			continue
		}
		fn := core.Algorithms[name]
		s, err := fn(ctx, cfg.Graph, cfg.Platform, core.Options{Seed: cfg.Seed, Caches: caches})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s failed: %w", name, err)
		}
		blue, red := s.MemoryPeaks()
		peak := blue
		if red > peak {
			peak = red
		}
		oblivious[name] = obliv{ms: s.Makespan(), peak: peak}
	}

	for _, mem := range cfg.Memories {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make([]float64, len(cols))
		for i, name := range names {
			if o, ok := oblivious[name]; ok {
				if mem >= o.peak {
					row[i] = o.ms
				} else {
					row[i] = math.NaN()
				}
				continue
			}
			fn, err := core.ByName(name)
			if err != nil {
				return nil, err
			}
			s, err := fn(ctx, cfg.Graph, cfg.Platform.WithBounds(mem, mem), core.Options{Seed: cfg.Seed, Caches: caches})
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				row[i] = math.NaN()
				continue
			}
			row[i] = s.Makespan()
		}
		if cfg.LowerBound {
			row[len(row)-1] = lb
		}
		table.AddRow(float64(mem), row...)
	}
	return table, nil
}

// MemoryGrid returns count bounds spread uniformly over (0, max], rounded to
// integers and deduplicated; convenient for absolute sweeps.
func MemoryGrid(max int64, count int) []int64 {
	if count < 1 {
		count = 1
	}
	var out []int64
	last := int64(-1)
	for i := 1; i <= count; i++ {
		v := int64(math.Round(float64(max) * float64(i) / float64(count)))
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}
