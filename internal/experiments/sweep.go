package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	memsched "repro"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/sweep"
)

// The paper's two sweep shapes — normalised memory fractions (Figures 10
// and 12) and absolute memory bounds (Figures 11/13/14/15) — both run on
// the parallel sweep engine of package repro/sweep: one Session per DAG, a
// declarative Spec for the alpha or memory axis, and the engine's worker
// pool in place of the hand-rolled goroutine pool this package used to
// carry. Results stay bit-for-bit deterministic: the engine orders results
// by point index regardless of worker scheduling.

// HEFTReference runs memory-oblivious HEFT on g and returns its makespan and
// the larger of its two memory peaks; the paper normalises every sweep by
// these quantities ("the amount of memory required by HEFT").
func HEFTReference(ctx context.Context, g *dag.Graph, p platform.Platform, seed int64) (makespan float64, maxPeak int64, err error) {
	return heftReferenceCached(ctx, g, p, seed, nil)
}

// poolPlatform lifts the dual-memory platform type onto the unified pool
// surface the Session API (and the sweep engine) speak.
func poolPlatform(p platform.Platform) memsched.Platform {
	return memsched.NewDualPlatform(p.PBlue, p.PRed, p.MBlue, p.MRed)
}

// NormalizedSweepConfig drives the Figure 10 / Figure 12 experiment: for
// every DAG of a set and every alpha, run the memory-aware heuristics with
// both memory bounds set to alpha times the HEFT requirement, then average
// the HEFT-normalised makespans over successful runs and record success
// rates.
type NormalizedSweepConfig struct {
	Graphs   []*dag.Graph
	Platform platform.Platform // memory bounds ignored
	Alphas   []float64
	Seed     int64

	// WithOptimal adds the exact-search reference curve (Figure 10).
	WithOptimal bool
	OptNodes    int           // per-instance node budget; 0 = exact.DefaultMaxNodes
	OptTimeout  time.Duration // per-instance time budget
}

// DefaultAlphas is the normalised-memory grid of Figures 10 and 12.
func DefaultAlphas() []float64 {
	alphas := make([]float64, 0, 20)
	for a := 0.05; a <= 1.0001; a += 0.05 {
		alphas = append(alphas, math.Round(a*100)/100)
	}
	return alphas
}

// SweepResult carries the two panels of Figures 10 and 12.
type SweepResult struct {
	Makespan *Table // average normalised makespan (successful runs only)
	Success  *Table // fraction of DAGs scheduled
}

// normalizedSchedulers is the heuristic axis of the normalised sweeps, in
// column order.
var normalizedSchedulers = []string{"memheft", "memminmin"}

// NormalizedSweep runs the experiment on the sweep engine: one alpha ×
// scheduler grid per DAG, then — when WithOptimal is set — a second
// explicit-points sweep running the exact reference at every alpha, each
// point seeded with the better heuristic schedule of the same cell as its
// incumbent (a dependency a single grid cannot express, but explicit
// Points carry it, so the exact searches still fan out across workers).
// The context cancels the sweep between and inside points; a cancelled
// sweep returns ctx's error.
func NormalizedSweep(ctx context.Context, cfg NormalizedSweepConfig) (*SweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cols := []string{"MemHEFT", "MemMinMin"}
	if cfg.WithOptimal {
		cols = append(cols, "Optimal")
	}
	nA, nG, nS := len(cfg.Alphas), len(cfg.Graphs), len(normalizedSchedulers)
	sums := make([][]float64, nA)
	oks := make([][]int, nA)
	for ai := range sums {
		sums[ai] = make([]float64, len(cols))
		oks[ai] = make([]int, len(cols))
	}

	for _, g := range cfg.Graphs {
		sess, err := memsched.NewSession(g)
		if err != nil {
			return nil, err
		}
		res, err := sweep.Run(ctx, sess, sweep.Spec{
			Base:        poolPlatform(cfg.Platform),
			Alphas:      cfg.Alphas,
			Schedulers:  normalizedSchedulers,
			Seeds:       []int64{cfg.Seed},
			KeepResults: cfg.WithOptimal, // the exact pass reuses the heuristic schedules as incumbents
		})
		if err != nil {
			return nil, err
		}
		refMS := res.Summary.RefMakespan
		incumbents := make([]*memsched.Schedule, nA)
		for ai := range cfg.Alphas {
			// Point index (ai, si): the grid is axis-major with one seed.
			for si := 0; si < nS; si++ {
				pr := res.Points[ai*nS+si]
				if !pr.Feasible {
					continue
				}
				oks[ai][si]++
				sums[ai][si] += pr.Makespan / refMS
				if cfg.WithOptimal && pr.Result != nil && pr.Result.Schedule != nil {
					if best := incumbents[ai]; best == nil || pr.Makespan < best.Makespan() {
						incumbents[ai] = pr.Result.Schedule
					}
				}
			}
		}
		if cfg.WithOptimal {
			points := make([]sweep.Point, nA)
			for ai, alpha := range cfg.Alphas {
				bound := int64(alpha * float64(res.Summary.Peak))
				points[ai] = sweep.Point{
					Platform:  poolPlatform(cfg.Platform).WithUniformBounds(bound),
					Scheduler: sweep.SchedulerOptimal,
					Seed:      cfg.Seed,
					Axis:      ai,
					X:         alpha,
					Alpha:     alpha,
					Incumbent: incumbents[ai],
				}
			}
			opt, err := sweep.Run(ctx, sess, sweep.Spec{
				Points:     points,
				OptNodes:   cfg.OptNodes,
				OptTimeout: cfg.OptTimeout,
			})
			if err != nil {
				return nil, err
			}
			for ai := range cfg.Alphas {
				if pr := opt.Points[ai]; pr.Feasible {
					oks[ai][nS]++
					sums[ai][nS] += pr.Makespan / refMS
				}
			}
		}
	}

	msTable := &Table{Name: "normalized makespan", XLabel: "alpha", Columns: cols}
	srTable := &Table{Name: "success rate", XLabel: "alpha", Columns: cols}
	for ai, alpha := range cfg.Alphas {
		msRow := make([]float64, len(cols))
		srRow := make([]float64, len(cols))
		for i := range cols {
			if oks[ai][i] > 0 {
				msRow[i] = sums[ai][i] / float64(oks[ai][i])
			} else {
				msRow[i] = math.NaN()
			}
			srRow[i] = float64(oks[ai][i]) / float64(nG)
		}
		msTable.AddRow(alpha, msRow...)
		srTable.AddRow(alpha, srRow...)
	}
	return &SweepResult{Makespan: msTable, Success: srTable}, nil
}

// heftReferenceCached is HEFTReference with a session-style cache set.
func heftReferenceCached(ctx context.Context, g *dag.Graph, p platform.Platform, seed int64, caches *core.Caches) (makespan float64, maxPeak int64, err error) {
	s, err := core.HEFT(ctx, g, p, core.Options{Seed: seed, Caches: caches})
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: HEFT reference failed: %w", err)
	}
	blue, red := s.MemoryPeaks()
	peak := blue
	if red > peak {
		peak = red
	}
	return s.Makespan(), peak, nil
}

// AbsoluteSweepConfig drives the Figures 11/13/14/15 experiment: one DAG,
// absolute memory bounds on the x axis, one curve per algorithm (plus
// optionally the lower bound).
type AbsoluteSweepConfig struct {
	Graph      *dag.Graph
	Platform   platform.Platform // memory bounds ignored
	Memories   []int64           // bounds applied to both memories
	Seed       int64
	Algorithms []string // names from core.Algorithms; nil = all four
	LowerBound bool
}

// AbsoluteSweep runs the experiment on the sweep engine. Memory-oblivious
// algorithms (heft, minmin) are evaluated once — their schedules ignore the
// bounds — and reported only at bounds that accommodate their peaks, the
// horizontal reference lines of Figure 11. The context cancels the sweep
// cooperatively.
func AbsoluteSweep(ctx context.Context, cfg AbsoluteSweepConfig) (*Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	names := cfg.Algorithms
	if names == nil {
		names = []string{"heft", "minmin", "memheft", "memminmin"}
	}
	// The sweep engine reports curves under normalized (lower-cased)
	// scheduler names; normalize once so mixed-case Algorithms entries
	// keep working like they did through core.ByName.
	names = append([]string(nil), names...)
	for i, name := range names {
		names[i] = strings.ToLower(strings.TrimSpace(name))
	}
	cols := append([]string(nil), names...)
	if cfg.LowerBound {
		cols = append(cols, "lowerbound")
	}
	table := &Table{Name: "makespan vs memory", XLabel: "memory", Columns: cols}

	sess, err := memsched.NewSession(cfg.Graph)
	if err != nil {
		return nil, err
	}
	base := poolPlatform(cfg.Platform)

	lb := math.NaN()
	if cfg.LowerBound {
		v, err := sess.LowerBound(base)
		if err != nil {
			return nil, err
		}
		lb = v
	}

	// Split the algorithm axis: the oblivious pair is memory-independent
	// (one point each), the aware names form the memory grid.
	type obliv struct {
		ms   float64
		peak int64
	}
	oblivious := map[string]obliv{}
	var aware []string
	for _, name := range names {
		if name != "heft" && name != "minmin" {
			aware = append(aware, name)
			continue
		}
		res, err := sweep.Run(ctx, sess, sweep.Spec{
			Platforms:  []memsched.Platform{base},
			Schedulers: []string{name},
			Seeds:      []int64{cfg.Seed},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s failed: %w", name, err)
		}
		pt := res.Points[0]
		peak := int64(0)
		for _, p := range pt.Peaks {
			if p > peak {
				peak = p
			}
		}
		oblivious[name] = obliv{ms: pt.Makespan, peak: peak}
	}

	curves := map[string][]float64{}
	if len(aware) > 0 {
		platforms := make([]memsched.Platform, len(cfg.Memories))
		xs := make([]float64, len(cfg.Memories))
		for i, mem := range cfg.Memories {
			platforms[i] = base.WithUniformBounds(mem)
			xs[i] = float64(mem)
		}
		res, err := sweep.Run(ctx, sess, sweep.Spec{
			Platforms:  platforms,
			Xs:         xs,
			Schedulers: aware,
			Seeds:      []int64{cfg.Seed},
		})
		if err != nil {
			return nil, err
		}
		for _, c := range res.Summary.Curves {
			curves[c.Scheduler] = c.Makespan
		}
	}

	for mi, mem := range cfg.Memories {
		row := make([]float64, len(cols))
		for i, name := range names {
			if o, ok := oblivious[name]; ok {
				if mem >= o.peak {
					row[i] = o.ms
				} else {
					row[i] = math.NaN()
				}
				continue
			}
			row[i] = curves[name][mi]
		}
		if cfg.LowerBound {
			row[len(row)-1] = lb
		}
		table.AddRow(float64(mem), row...)
	}
	return table, nil
}

// MemoryGrid returns count bounds spread uniformly over (0, max], rounded to
// integers and deduplicated; convenient for absolute sweeps.
func MemoryGrid(max int64, count int) []int64 {
	if count < 1 {
		count = 1
	}
	var out []int64
	last := int64(-1)
	for i := 1; i <= count; i++ {
		v := int64(math.Round(float64(max) * float64(i) / float64(count)))
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}
