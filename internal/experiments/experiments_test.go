package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/platform"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Name: "x", XLabel: "alpha", Columns: []string{"a", "b"}}
	tab.AddRow(0.5, 1.25, math.NaN())
	tab.AddRow(1.0, 2, 3)
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "alpha,a,b\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "0.5,1.25,\n") {
		t.Fatalf("csv NaN not empty: %q", csv)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| alpha | a | b |") || !strings.Contains(md, "–") {
		t.Fatalf("markdown wrong:\n%s", md)
	}
}

func TestTableAddRowPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow(1, 2, 3)
}

func TestTableColumn(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	if tab.Column("b") != 1 || tab.Column("zz") != -1 {
		t.Fatal("Column lookup wrong")
	}
}

func TestHEFTReference(t *testing.T) {
	g := dag.PaperExample()
	ms, peak, err := HEFTReference(tctx, g, RandomPlatform(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms <= 0 || peak <= 0 {
		t.Fatalf("ms=%g peak=%d", ms, peak)
	}
}

func TestMemoryGrid(t *testing.T) {
	grid := MemoryGrid(100, 10)
	if len(grid) != 10 || grid[0] != 10 || grid[9] != 100 {
		t.Fatalf("grid = %v", grid)
	}
	// Dedup for tiny maxima.
	small := MemoryGrid(3, 10)
	for i := 1; i < len(small); i++ {
		if small[i] <= small[i-1] {
			t.Fatalf("grid not strictly increasing: %v", small)
		}
	}
}

func TestDefaultAlphas(t *testing.T) {
	a := DefaultAlphas()
	if len(a) != 20 || a[0] != 0.05 || a[len(a)-1] != 1.0 {
		t.Fatalf("alphas = %v", a)
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table1 has %d rows", len(tab.Rows))
	}
	// Row 0 is getrf: cpu 450.
	if tab.Rows[0].Values[0] != 450 {
		t.Fatalf("getrf cpu = %g", tab.Rows[0].Values[0])
	}
	if len(Table1Kernels()) != 6 {
		t.Fatal("kernel list wrong")
	}
}

func TestNormalizedSweepSmall(t *testing.T) {
	graphs, err := daggen.Set(daggen.SmallParams(), 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NormalizedSweep(tctx, NormalizedSweepConfig{
		Graphs:   graphs,
		Platform: RandomPlatform(),
		Alphas:   []float64{0.3, 1.0},
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Makespan.Rows) != 2 || len(res.Success.Rows) != 2 {
		t.Fatal("row counts wrong")
	}
	// At alpha = 1 every DAG must schedule (bounds at the HEFT peak are
	// sufficient for these instances) and the normalised makespan sits
	// near 1.
	last := res.Success.Rows[1]
	for i, v := range last.Values {
		if v < 0.99 {
			t.Fatalf("success[%s] at alpha=1 is %g", res.Success.Columns[i], v)
		}
	}
	msLast := res.Makespan.Rows[1]
	for i, v := range msLast.Values {
		if math.IsNaN(v) || v < 0.5 || v > 2 {
			t.Fatalf("normalised makespan[%s] at alpha=1 is %g", res.Makespan.Columns[i], v)
		}
	}
	// Success rates must not increase when memory shrinks.
	for i := range res.Success.Columns {
		if res.Success.Rows[0].Values[i] > res.Success.Rows[1].Values[i]+1e-9 {
			t.Fatalf("success rate increased when memory shrank (col %d)", i)
		}
	}
}

func TestNormalizedSweepWithOptimal(t *testing.T) {
	graphs, err := daggen.Set(daggen.SmallParams(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NormalizedSweep(tctx, NormalizedSweepConfig{
		Graphs:      graphs,
		Platform:    RandomPlatform(),
		Alphas:      []float64{0.8},
		Seed:        5,
		WithOptimal: true,
		OptNodes:    20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	oi := res.Makespan.Column("Optimal")
	if oi < 0 {
		t.Fatal("Optimal column missing")
	}
	// Optimal success rate >= heuristic success rates; optimal makespan
	// <= each heuristic's (averages over the same successful set need
	// not be comparable, but with both heuristics succeeding on these
	// instances the sets coincide).
	for i := range res.Success.Columns {
		if res.Success.Rows[0].Values[oi] < res.Success.Rows[0].Values[i]-1e-9 {
			t.Fatal("optimal success rate below a heuristic's")
		}
	}
	mh := res.Makespan.Rows[0].Values[res.Makespan.Column("MemHEFT")]
	op := res.Makespan.Rows[0].Values[oi]
	if !math.IsNaN(mh) && !math.IsNaN(op) && op > mh+1e-9 {
		t.Fatalf("optimal %g worse than MemHEFT %g", op, mh)
	}
}

func TestAbsoluteSweepFig11Shape(t *testing.T) {
	g, err := daggen.Generate(daggen.SmallParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPlatform()
	_, peak, err := HEFTReference(tctx, g, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := AbsoluteSweep(tctx, AbsoluteSweepConfig{
		Graph:      g,
		Platform:   p,
		Memories:   MemoryGrid(peak+peak/10, 8),
		Seed:       3,
		LowerBound: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	li := tab.Column("lowerbound")
	hi := tab.Column("heft")
	mi := tab.Column("memheft")
	if li < 0 || hi < 0 || mi < 0 {
		t.Fatal("columns missing")
	}
	for _, r := range tab.Rows {
		lb := r.Values[li]
		for ci, v := range r.Values {
			if ci == li || math.IsNaN(v) {
				continue
			}
			if v < lb-1e-9 {
				t.Fatalf("%s below lower bound at mem %g: %g < %g", tab.Columns[ci], r.X, v, lb)
			}
		}
	}
	// The largest bound exceeds HEFT's peak: heft value present there.
	lastRow := tab.Rows[len(tab.Rows)-1]
	if math.IsNaN(lastRow.Values[hi]) {
		t.Fatal("HEFT missing at ample memory")
	}
	// The memory-aware curve must be present wherever HEFT is.
	if math.IsNaN(lastRow.Values[mi]) {
		t.Fatal("MemHEFT missing at ample memory")
	}
}

// TestAbsoluteSweepMixedCaseNames: algorithm names were case-insensitive
// through core.ByName before the sweep-engine rebuild and must stay so.
func TestAbsoluteSweepMixedCaseNames(t *testing.T) {
	g, err := daggen.Generate(daggen.SmallParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := AbsoluteSweep(tctx, AbsoluteSweepConfig{
		Graph:      g,
		Platform:   RandomPlatform(),
		Memories:   MemoryGrid(500, 3),
		Seed:       3,
		Algorithms: []string{"MemHEFT", " heft "},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("memheft") < 0 || tab.Column("heft") < 0 {
		t.Fatalf("normalized columns missing: %v", tab.Columns)
	}
}

func TestQuickFiguresRun(t *testing.T) {
	if _, err := Fig11(tctx, Quick, 7); err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	tab, err := Fig14(tctx, Quick, 7)
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	if tab.Column("memheft") < 0 || tab.Column("memminmin") < 0 {
		t.Fatal("Fig14 columns wrong")
	}
	if _, err := Fig15(tctx, Quick, 7); err != nil {
		t.Fatalf("Fig15: %v", err)
	}
}

func TestQuickFig12Runs(t *testing.T) {
	res, err := Fig12(tctx, Quick, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.Column("Optimal") >= 0 {
		t.Fatal("Fig12 must not include the optimal curve")
	}
	if len(res.Makespan.Rows) != 5 {
		t.Fatalf("Fig12 quick rows = %d", len(res.Makespan.Rows))
	}
}

func TestQuickFig10Runs(t *testing.T) {
	res, err := Fig10(tctx, Quick, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.Column("Optimal") < 0 {
		t.Fatal("Fig10 must include the optimal curve")
	}
	// At alpha=1 everything schedules.
	last := res.Success.Rows[len(res.Success.Rows)-1]
	for i, v := range last.Values {
		if v < 0.9 {
			t.Fatalf("success[%s] at alpha=1 = %g", res.Success.Columns[i], v)
		}
	}
}

func TestMiragePlatformShape(t *testing.T) {
	p := MiragePlatform()
	if p.PBlue != 12 || p.PRed != 3 {
		t.Fatalf("mirage = %+v", p)
	}
	if RandomPlatform().TotalProcs() != 4 {
		t.Fatal("random platform wrong")
	}
}

var _ = platform.New // keep import when build tags change
