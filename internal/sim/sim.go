// Package sim provides a discrete-event runtime simulator for dual-memory
// platforms, in the spirit of the StarPU runtime the paper's conclusion
// proposes as an integration target. Unlike the static heuristics of
// internal/core — which precompute a full schedule with as-late-as-possible
// communications — the simulator drives an *online* dispatcher: scheduling
// decisions happen at runtime events (a processor going idle, a transfer
// completing), transfers start eagerly at dispatch time, and memory is
// managed by admission control on the current usage rather than on a
// staircase of future reservations.
//
// The dispatcher still produces a schedule in the paper's model, so its
// output is checked by the same validator as everything else; tests compare
// it against the static heuristics.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// ErrStuck is returned (wrapped) when the online run deadlocks: nothing is
// running and no ready task passes memory admission.
var ErrStuck = errors.New("sim: runtime stuck: no ready task fits in memory")

// Policy selects the dispatch order among admissible ready tasks.
type Policy int

// Dispatch policies.
const (
	// RankPolicy dispatches the highest-upward-rank admissible ready
	// task first (HEFT-flavoured).
	RankPolicy Policy = iota
	// EFTPolicy dispatches the (task, processor) pair with the earliest
	// finish time (MinMin-flavoured).
	EFTPolicy
)

func (p Policy) String() string {
	if p == RankPolicy {
		return "rank"
	}
	return "eft"
}

// Options configures a simulation run.
type Options struct {
	Policy Policy
	Seed   int64 // reserved for tie-break randomisation; dispatch is currently deterministic
}

// Result couples the emitted schedule with runtime statistics.
type Result struct {
	Schedule *schedule.Schedule
	Events   int // dispatcher invocations
}

// event is an entry of the simulation clock: a task or transfer completion.
type event struct {
	time float64
	seq  int // tie-breaker: FIFO among equal times
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// runtime is the mutable simulation state.
type runtime struct {
	g   *dag.Graph
	p   platform.Platform
	out *schedule.Schedule

	clock      float64
	queue      eventQueue
	seq        int
	procFree   []float64 // per processor: time it becomes idle
	used       [2]int64  // current memory usage
	pendingIn  []int     // per task: parents not yet completed
	completed  []bool
	running    int
	ranks      []float64
	dispatched []bool
}

// Run simulates the online execution of g on p and returns the emitted
// schedule (already validated) and statistics. The context cancels the
// event loop cooperatively; cancellation returns ctx.Err() wrapped.
func Run(ctx context.Context, g *dag.Graph, p platform.Platform, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ranks, err := g.UpwardRanks(ctx)
	if err != nil {
		return nil, err
	}
	rt := &runtime{
		g: g, p: p,
		out:        schedule.New(g, p),
		procFree:   make([]float64, p.TotalProcs()),
		pendingIn:  make([]int, g.NumTasks()),
		completed:  make([]bool, g.NumTasks()),
		dispatched: make([]bool, g.NumTasks()),
		ranks:      ranks,
	}
	for i := 0; i < g.NumTasks(); i++ {
		rt.pendingIn[i] = len(g.In(dag.TaskID(i)))
	}
	heap.Init(&rt.queue)

	events := 0
	for {
		if events%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: run interrupted: %w", err)
			}
		}
		events++
		progress := rt.dispatch(opt)
		if rt.done() {
			break
		}
		if len(rt.queue) == 0 {
			if !progress {
				return nil, fmt.Errorf("%w (t=%g, %d tasks left)", ErrStuck, rt.clock, rt.remaining())
			}
			continue
		}
		// Advance the clock to the next completion.
		ev := heap.Pop(&rt.queue).(event)
		rt.clock = ev.time
		rt.collect()
	}
	res := &Result{Schedule: rt.out, Events: events}
	if err := rt.out.Validate(); err != nil {
		return nil, fmt.Errorf("sim: emitted schedule invalid: %w", err)
	}
	return res, nil
}

func (rt *runtime) done() bool {
	for _, c := range rt.completed {
		if !c {
			return false
		}
	}
	return true
}

func (rt *runtime) remaining() int {
	n := 0
	for _, c := range rt.completed {
		if !c {
			n++
		}
	}
	return n
}

// collect marks tasks whose finish time has been reached as completed,
// releasing their input files.
func (rt *runtime) collect() {
	g := rt.g
	for i := 0; i < g.NumTasks(); i++ {
		id := dag.TaskID(i)
		if rt.completed[i] || !rt.dispatched[i] {
			continue
		}
		if rt.out.Finish(id) > rt.clock+schedule.Eps {
			continue
		}
		rt.completed[i] = true
		rt.running--
		mem := rt.out.MemoryOf(id)
		// Input files are discarded at completion (intra-memory ones
		// were still resident; cross ones were released from the
		// source at transfer end, handled at dispatch below).
		for _, e := range g.In(id) {
			edge := g.Edge(e)
			rt.used[mem] -= edge.File
			if rt.out.IsCross(e) {
				// The source-side copy left at transfer end;
				// account it now if the transfer end has
				// passed (it has: transfers end before the
				// task starts).
				srcMem := mem.Other()
				rt.used[srcMem] -= edge.File
			}
		}
		for _, e := range g.Out(id) {
			rt.pendingIn[g.Edge(e).To]--
		}
	}
}

// admissible reports whether task id fits on memory mu right now, and the
// incremental memory it would pin there.
func (rt *runtime) admissible(id dag.TaskID, mu platform.Memory) (int64, bool) {
	g := rt.g
	var need int64
	for _, e := range g.In(id) {
		edge := g.Edge(e)
		if rt.out.MemoryOf(edge.From) != mu {
			need += edge.File
		}
	}
	for _, e := range g.Out(id) {
		need += g.Edge(e).File
	}
	return need, rt.used[mu]+need <= rt.p.Capacity(mu)
}

// dispatch assigns admissible ready tasks to idle processors at the current
// clock. Returns whether anything was dispatched.
func (rt *runtime) dispatch(opt Options) bool {
	g := rt.g
	progress := false
	for {
		type move struct {
			id   dag.TaskID
			mu   platform.Memory
			proc int
			eft  float64
		}
		best := move{proc: -1}
		for i := 0; i < g.NumTasks(); i++ {
			id := dag.TaskID(i)
			if rt.dispatched[i] || rt.pendingIn[i] > 0 {
				continue
			}
			for _, mu := range platform.Memories {
				lo, hi := rt.p.ProcRange(mu)
				proc := -1
				for q := lo; q < hi; q++ {
					if rt.procFree[q] <= rt.clock+schedule.Eps {
						proc = q
						break
					}
				}
				if proc < 0 {
					continue
				}
				if _, ok := rt.admissible(id, mu); !ok {
					continue
				}
				// Transfer window: all cross inputs start now.
				delay := 0.0
				for _, e := range g.In(id) {
					edge := g.Edge(e)
					if rt.out.MemoryOf(edge.From) != mu && edge.Comm > delay {
						delay = edge.Comm
					}
				}
				w := g.Task(id).WBlue
				if mu == platform.Red {
					w = g.Task(id).WRed
				}
				eft := rt.clock + delay + w
				pick := false
				switch opt.Policy {
				case RankPolicy:
					if best.proc < 0 || rt.ranks[id] > rt.ranks[best.id] ||
						(rt.ranks[id] == rt.ranks[best.id] && eft < best.eft) {
						pick = true
					}
				case EFTPolicy:
					if best.proc < 0 || eft < best.eft {
						pick = true
					}
				}
				if pick {
					best = move{id: id, mu: mu, proc: proc, eft: eft}
				}
			}
		}
		if best.proc < 0 {
			return progress
		}
		rt.start(best.id, best.mu, best.proc)
		progress = true
	}
}

// start dispatches task id on proc (memory mu) at the current clock:
// transfers begin immediately, the task starts when the slowest transfer
// completes, and all memory is pinned up front (admission control).
func (rt *runtime) start(id dag.TaskID, mu platform.Memory, proc int) {
	g := rt.g
	delay := 0.0
	for _, e := range g.In(id) {
		edge := g.Edge(e)
		if rt.out.MemoryOf(edge.From) != mu {
			rt.out.CommStart[edge.ID] = rt.clock
			if edge.Comm > delay {
				delay = edge.Comm
			}
			rt.used[mu] += edge.File // dest copy pinned from now
		}
	}
	for _, e := range g.Out(id) {
		rt.used[mu] += g.Edge(e).File
	}
	start := rt.clock + delay
	w := g.Task(id).WBlue
	if mu == platform.Red {
		w = g.Task(id).WRed
	}
	rt.out.Tasks[id] = schedule.TaskPlacement{Start: start, Proc: proc}
	rt.procFree[proc] = start + w
	rt.dispatched[id] = true
	rt.running++
	rt.seq++
	heap.Push(&rt.queue, event{time: start + w, seq: rt.seq})
}

// Makespan is a convenience accessor on a Result.
func (r *Result) Makespan() float64 {
	if r == nil || r.Schedule == nil {
		return math.Inf(1)
	}
	return r.Schedule.Makespan()
}
