package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/linalg"
	"repro/internal/platform"
)

func TestRunPaperExampleUnlimited(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, platform.Unlimited, platform.Unlimited)
	for _, pol := range []Policy{RankPolicy, EFTPolicy} {
		res, err := Run(tctx, g, p, Options{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.Makespan() <= 0 || res.Makespan() > 12 {
			t.Fatalf("%v: makespan %g out of range", pol, res.Makespan())
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

func TestRunRespectsMemoryBounds(t *testing.T) {
	g := dag.PaperExample()
	for _, m := range []int64{5, 6, 8} {
		p := platform.New(1, 1, m, m)
		res, err := Run(tctx, g, p, Options{Policy: RankPolicy})
		if err != nil {
			continue // online admission can be stricter than static
		}
		blue, red := res.Schedule.MemoryPeaks()
		if blue > m || red > m {
			t.Fatalf("M=%d: peaks (%d,%d)", m, blue, red)
		}
	}
}

func TestRunStuckOnTinyMemory(t *testing.T) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 2, 2)
	_, err := Run(tctx, g, p, Options{})
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
}

func TestRunChainSerialises(t *testing.T) {
	g := dag.Chain(5, 2, 2, 1, 1)
	p := platform.New(1, 0, 10, 0)
	res, err := Run(tctx, g, p, Options{Policy: EFTPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 10 {
		t.Fatalf("makespan = %g, want 10", res.Makespan())
	}
}

func TestTransfersStartEagerly(t *testing.T) {
	// Online semantics: cross transfers start at dispatch time, not ALAP.
	g := dag.New()
	a := g.AddTask("a", 1, 5)
	b := g.AddTask("b", 9, 1) // wants red
	g.MustAddEdge(a, b, 1, 3)
	p := platform.New(1, 1, 10, 10)
	res, err := Run(tctx, g, p, Options{Policy: EFTPolicy})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.EdgeBetween(a, b)
	if !res.Schedule.IsCross(e.ID) {
		t.Skip("dispatcher kept both on one memory")
	}
	tau := res.Schedule.CommStart[e.ID]
	finishA := res.Schedule.Finish(a)
	if tau != finishA {
		t.Fatalf("transfer starts at %g, dispatch was possible at %g", tau, finishA)
	}
}

func TestPolicyDifferencesShowUp(t *testing.T) {
	// On a wide heterogeneous graph the two policies generally disagree
	// somewhere; at minimum both must emit valid schedules.
	g := randomDAG(5, 40)
	p := platform.New(2, 2, platform.Unlimited, platform.Unlimited)
	r1, err := Run(tctx, g, p, Options{Policy: RankPolicy})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tctx, g, p, Options{Policy: EFTPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan() <= 0 || r2.Makespan() <= 0 {
		t.Fatal("bad makespans")
	}
}

func TestPropertyOnlineSchedulesValidate(t *testing.T) {
	f := func(seed int64, rawBound uint16) bool {
		g := randomDAG(seed, 20)
		bound := int64(rawBound%300) + 20
		p := platform.New(2, 2, bound, bound)
		for _, pol := range []Policy{RankPolicy, EFTPolicy} {
			res, err := Run(tctx, g, p, Options{Policy: pol})
			if err != nil {
				if !errors.Is(err, ErrStuck) {
					return false
				}
				continue
			}
			if res.Schedule.Validate() != nil {
				return false
			}
			blue, red := res.Schedule.MemoryPeaks()
			if blue > bound || red > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineVsStaticOnLU(t *testing.T) {
	// The online dispatcher must complete the LU graph with generous
	// memory and land within a reasonable factor of static MemMinMin
	// (eager transfers and no lookahead cost something).
	g, err := linalg.LU(linalg.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	p := platform.New(12, 3, 200, 200)
	static, err := core.MemMinMin(tctx, g, p, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	online, err := Run(tctx, g, p, Options{Policy: EFTPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if online.Makespan() < static.Makespan()/3 || online.Makespan() > static.Makespan()*3 {
		t.Fatalf("online %g vs static %g: outside sanity band", online.Makespan(), static.Makespan())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := dag.New()
	res, err := Run(tctx, g, platform.New(1, 1, 1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 0 {
		t.Fatal("empty graph should have zero makespan")
	}
}

func TestResultMakespanNilSafety(t *testing.T) {
	var r *Result
	if !(r.Makespan() > 1e300) {
		t.Fatal("nil result should report +inf makespan")
	}
}

func randomDAG(seed int64, n int) *dag.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dag.New()
	for i := 0; i < n; i++ {
		g.AddTask("", float64(rng.Intn(20)+1), float64(rng.Intn(20)+1))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j < i+7; j++ {
			if rng.Float64() < 0.3 {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), int64(rng.Intn(8)+1), float64(rng.Intn(8)+1))
			}
		}
	}
	return g
}
