// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimise  c.x
//	subject to  a_r.x (<=|>=|=) b_r   for every constraint r
//	            x >= 0
//
// It is the relaxation engine behind the branch-and-bound MILP solver of
// internal/mip, which in turn solves the paper's ILP formulation
// (internal/ilp) on small instances — the role CPLEX plays in the paper.
// Bland's rule guarantees termination; instances in this repository are
// small, so the dense tableau and the slow-but-safe pivoting rule are a fine
// trade-off.
package lp

import (
	"fmt"
	"math"
)

// Sense is the direction of one constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a.x <= b
	GE              // a.x >= b
	EQ              // a.x == b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Constraint is one row: sum of Coeffs[i]*x_i (Sense) RHS. Coefficients are
// sparse; absent variables have coefficient zero.
type Constraint struct {
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over NumVars non-negative variables with a
// minimisation objective.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; nil means the zero objective
	Constraints []Constraint
}

// AddConstraint appends a constraint built from the sparse coefficient map.
func (p *Problem) AddConstraint(coeffs map[int]float64, sense Sense, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs})
}

// Status classifies the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of a successful Solve call.
type Solution struct {
	Status    Status
	X         []float64 // length NumVars; meaningful only when Optimal
	Objective float64   // c.x; meaningful only when Optimal
}

const (
	eps     = 1e-9
	maxIter = 200000
)

// tableau is the dense simplex tableau: rows 0..m-1 are constraints in
// canonical equality form, row m is the objective (z) row. Column n is the
// right-hand side.
type tableau struct {
	m, n  int
	a     [][]float64 // (m+1) x (n+1)
	basis []int       // length m
}

func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j <= t.n; j++ {
		pr[j] *= inv
	}
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.n; j++ {
			ri[j] -= f * pr[j]
		}
	}
	t.basis[row] = col
}

// iterate runs primal simplex on the current tableau until optimality or
// unboundedness. allowed reports whether a column may enter the basis.
// Bland's rule: entering = smallest-index column with negative reduced cost;
// leaving = smallest basis index among minimum-ratio rows.
func (t *tableau) iterate(allowed func(col int) bool) (Status, error) {
	for iter := 0; iter < maxIter; iter++ {
		enter := -1
		for j := 0; j < t.n; j++ {
			if allowed(j) && t.a[t.m][j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= eps {
				continue
			}
			ratio := t.a[i][t.n] / aij
			if ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				leave, bestRatio = i, ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
	return Optimal, fmt.Errorf("lp: iteration limit (%d) exceeded", maxIter)
}

// Solve runs two-phase simplex on p.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars < 0 {
		return nil, fmt.Errorf("lp: negative NumVars")
	}
	if p.Objective != nil && len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d entries for %d variables", len(p.Objective), p.NumVars)
	}
	m := len(p.Constraints)
	nv := p.NumVars

	// Count auxiliary columns. Every inequality gets a slack/surplus;
	// every >= or == row (after RHS normalisation) gets an artificial.
	type rowInfo struct {
		sense Sense
		neg   bool // row multiplied by -1 to make RHS >= 0
	}
	rows := make([]rowInfo, m)
	nSlack, nArt := 0, 0
	for r, c := range p.Constraints {
		sense, rhs := c.Sense, c.RHS
		neg := rhs < 0
		if neg {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows[r] = rowInfo{sense: sense, neg: neg}
		if sense != EQ {
			nSlack++
		}
		if sense != LE {
			nArt++
		}
	}
	n := nv + nSlack + nArt
	t := &tableau{m: m, n: n, basis: make([]int, m)}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, n+1)
	}
	artStart := nv + nSlack
	slack, art := nv, artStart
	for r, c := range p.Constraints {
		sign := 1.0
		if rows[r].neg {
			sign = -1
		}
		for v, coef := range c.Coeffs {
			if v < 0 || v >= nv {
				return nil, fmt.Errorf("lp: constraint %d references variable %d of %d", r, v, nv)
			}
			t.a[r][v] += sign * coef
		}
		t.a[r][n] = sign * c.RHS
		switch rows[r].sense {
		case LE:
			t.a[r][slack] = 1
			t.basis[r] = slack
			slack++
		case GE:
			t.a[r][slack] = -1
			slack++
			t.a[r][art] = 1
			t.basis[r] = art
			art++
		case EQ:
			t.a[r][art] = 1
			t.basis[r] = art
			art++
		}
	}

	// Phase 1: minimise the sum of artificials. Canonical z-row:
	// z[j] = c1[j] - sum over artificial-basic rows of a[r][j], where
	// c1 is 1 on artificial columns and 0 elsewhere; every initially
	// basic column then has reduced cost 0 as required.
	if nArt > 0 {
		for j := 0; j <= n; j++ {
			t.a[m][j] = 0
		}
		for j := artStart; j < n; j++ {
			t.a[m][j] = 1
		}
		for r := 0; r < m; r++ {
			if t.basis[r] >= artStart {
				for j := 0; j <= n; j++ {
					t.a[m][j] -= t.a[r][j]
				}
			}
		}
		// Artificials never re-enter the basis.
		st, err := t.iterate(func(col int) bool { return col < artStart })
		if err != nil {
			return nil, err
		}
		if st == Unbounded {
			return nil, fmt.Errorf("lp: phase 1 unbounded (internal error)")
		}
		if -t.a[m][n] > 1e-6 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive lingering artificials out of the basis.
		for r := 0; r < m; r++ {
			if t.basis[r] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[r][j]) > eps {
					t.pivot(r, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: keep the artificial basic at
				// zero; the allowed() filter below stops it
				// from re-entering elsewhere.
				t.a[r][n] = 0
			}
		}
	}

	// Phase 2: original objective. Rebuild the z-row from scratch:
	// z = c.x with basic variables substituted out.
	for j := 0; j <= n; j++ {
		t.a[m][j] = 0
	}
	for v := 0; v < nv; v++ {
		if p.Objective != nil {
			t.a[m][v] = p.Objective[v]
		}
	}
	for r := 0; r < m; r++ {
		b := t.basis[r]
		coef := t.a[m][b]
		if coef == 0 {
			continue
		}
		for j := 0; j <= n; j++ {
			t.a[m][j] -= coef * t.a[r][j]
		}
	}
	st, err := t.iterate(func(col int) bool { return col < artStart })
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	sol := &Solution{Status: Optimal, X: make([]float64, nv)}
	for r := 0; r < m; r++ {
		if t.basis[r] < nv {
			sol.X[t.basis[r]] = t.a[r][n]
		}
	}
	for v := 0; v < nv; v++ {
		if sol.X[v] < 0 && sol.X[v] > -1e-7 {
			sol.X[v] = 0
		}
		if p.Objective != nil {
			sol.Objective += p.Objective[v] * sol.X[v]
		}
	}
	return sol, nil
}
