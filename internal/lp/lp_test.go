package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimpleMinimisation(t *testing.T) {
	// min x0 + x1 s.t. x0 + 2x1 >= 4, 3x0 + x1 >= 6 -> x=(1.6, 1.2), obj 2.8.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, GE, 4)
	p.AddConstraint(map[int]float64{0: 3, 1: 1}, GE, 6)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Objective, 2.8) {
		t.Fatalf("got %v obj %g", s.Status, s.Objective)
	}
	if !approx(s.X[0], 1.6) || !approx(s.X[1], 1.2) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestMaximisationViaNegation(t *testing.T) {
	// max 3x+2y s.t. x+y <= 4, x+3y <= 6 -> x=4, y=0, obj 12.
	p := &Problem{NumVars: 2, Objective: []float64{-3, -2}}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: 3}, LE, 6)
	s := solveOK(t, p)
	if !approx(s.Objective, -12) {
		t.Fatalf("obj = %g, want -12", s.Objective)
	}
	if !approx(s.X[0], 4) || !approx(s.X[1], 0) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x + y = 5, x - y = 1 -> (3,2), obj 5.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 5)
	p.AddConstraint(map[int]float64{0: 1, 1: -1}, EQ, 1)
	s := solveOK(t, p)
	if !approx(s.X[0], 3) || !approx(s.X[1], 2) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(map[int]float64{0: 1}, GE, 5)
	p.AddConstraint(map[int]float64{0: 1}, LE, 3)
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{-1, 0}}
	p.AddConstraint(map[int]float64{1: 1}, LE, 3)
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// x0 - x1 <= -2 with min x0: x0 = 0, x1 >= 2.
	p := &Problem{NumVars: 2, Objective: []float64{1, 0}}
	p.AddConstraint(map[int]float64{0: 1, 1: -1}, LE, -2)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.X[0], 0) || s.X[1] < 2-1e-9 {
		t.Fatalf("sol = %+v", s)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	p := &Problem{NumVars: 2}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 3)
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.X[0]+s.X[1], 3) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equalities leave a redundant row in phase 1.
	p := &Problem{NumVars: 2, Objective: []float64{1, 2}}
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{0: 2, 1: 2}, EQ, 8)
	p.AddConstraint(map[int]float64{0: 1}, GE, 1)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Objective, 1*4+0) { // x=(4,0)
		t.Fatalf("sol = %+v", s)
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// Classic Beale cycling example; Bland's rule must terminate.
	p := &Problem{NumVars: 4, Objective: []float64{-0.75, 150, -0.02, 6}}
	p.AddConstraint(map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, LE, 0)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, LE, 0)
	p.AddConstraint(map[int]float64{2: 1}, LE, 1)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Objective, -0.05) {
		t.Fatalf("sol = %+v", s)
	}
}

func TestBigMStyleScheduling(t *testing.T) {
	// A toy precedence LP: min M s.t. t1 >= t0 + 3, M >= t1 + 2, t0 >= 0.
	p := &Problem{NumVars: 3, Objective: []float64{0, 0, 1}} // t0, t1, M
	p.AddConstraint(map[int]float64{1: 1, 0: -1}, GE, 3)
	p.AddConstraint(map[int]float64{2: 1, 1: -1}, GE, 2)
	s := solveOK(t, p)
	if !approx(s.Objective, 5) {
		t.Fatalf("makespan = %g, want 5", s.Objective)
	}
}

func TestBadVariableIndexRejected(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(map[int]float64{3: 1}, GE, 1)
	if _, err := Solve(p); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

func TestObjectiveLengthMismatchRejected(t *testing.T) {
	p := &Problem{NumVars: 3, Objective: []float64{1}}
	if _, err := Solve(p); err == nil {
		t.Fatal("short objective accepted")
	}
}

func TestPropertyFeasibleSolutionsSatisfyConstraints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		p := &Problem{NumVars: nv, Objective: make([]float64, nv)}
		for v := range p.Objective {
			p.Objective[v] = float64(rng.Intn(11) - 5)
		}
		for r := 0; r < 2+rng.Intn(5); r++ {
			coeffs := map[int]float64{}
			for v := 0; v < nv; v++ {
				if rng.Intn(2) == 0 {
					coeffs[v] = float64(rng.Intn(9) - 4)
				}
			}
			// Keep RHS >= 0 with <= so x=0 is always feasible and
			// the instance cannot be infeasible.
			p.AddConstraint(coeffs, LE, float64(rng.Intn(10)))
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		if s.Status == Infeasible {
			return false // x = 0 is feasible by construction
		}
		if s.Status == Unbounded {
			return true
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for v, coef := range c.Coeffs {
				lhs += coef * s.X[v]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOptimalityAgainstGridSearch(t *testing.T) {
	// 2-variable LPs with small integer data: compare against brute-force
	// evaluation on a fine grid of basic feasible candidates.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Problem{NumVars: 2, Objective: []float64{
			float64(rng.Intn(7) - 3), float64(rng.Intn(7) - 3)}}
		for r := 0; r < 3; r++ {
			p.AddConstraint(map[int]float64{
				0: float64(rng.Intn(5)), 1: float64(rng.Intn(5)),
			}, LE, float64(rng.Intn(8)+1))
		}
		// Bound the box so everything is finite.
		p.AddConstraint(map[int]float64{0: 1}, LE, 10)
		p.AddConstraint(map[int]float64{1: 1}, LE, 10)
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		best := math.Inf(1)
		for x := 0.0; x <= 10; x += 0.25 {
		inner:
			for y := 0.0; y <= 10; y += 0.25 {
				for _, c := range p.Constraints {
					if c.Coeffs[0]*x+c.Coeffs[1]*y > c.RHS+1e-9 {
						continue inner
					}
				}
				v := p.Objective[0]*x + p.Objective[1]*y
				if v < best {
					best = v
				}
			}
		}
		return s.Objective <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
