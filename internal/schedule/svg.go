package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/platform"
)

// SVG renders the schedule as a self-contained Gantt chart: one row per
// processor (blue rows first), a communications row, and a step plot of the
// usage of each memory underneath. The output is deterministic, suitable
// for golden tests and documentation.
func (s *Schedule) SVG() string {
	const (
		width     = 960
		rowH      = 26
		leftPad   = 90
		topPad    = 24
		memPlotH  = 72
		rightPad  = 16
		labelFont = 11
	)
	ms := s.Makespan()
	if ms <= 0 {
		ms = 1
	}
	scale := float64(width-leftPad-rightPad) / ms
	x := func(t float64) float64 { return leftPad + t*scale }

	procs := s.Platform.TotalProcs()
	rows := procs + 1 // + communications row
	chartH := rows * rowH
	height := topPad + chartH + 2*memPlotH + 3*rowH

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="%d">`+"\n",
		width, height, labelFont)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Row labels and lanes.
	for proc := 0; proc < procs; proc++ {
		y := topPad + proc*rowH
		colour := "#eef3fb"
		if s.Platform.MemoryOf(proc) == platform.Red {
			colour = "#fbeeee"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
			leftPad, y, width-leftPad-rightPad, rowH-2, colour)
		fmt.Fprintf(&b, `<text x="4" y="%d">proc %d (%s)</text>`+"\n",
			y+rowH-9, proc, s.Platform.MemoryOf(proc))
	}
	commY := topPad + procs*rowH
	fmt.Fprintf(&b, `<text x="4" y="%d">transfers</text>`+"\n", commY+rowH-9)

	// Task boxes, sorted for determinism.
	type box struct {
		id dag.TaskID
	}
	order := make([]dag.TaskID, s.Graph.NumTasks())
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool { return s.Tasks[order[a]].Start < s.Tasks[order[b]].Start })
	for _, id := range order {
		pl := s.Tasks[id]
		y := topPad + pl.Proc*rowH
		w := s.Duration(id) * scale
		if w < 1 {
			w = 1 // zero-duration (fictitious) tasks stay visible
		}
		fill := "#4a86c8"
		if s.Platform.MemoryOf(pl.Proc) == platform.Red {
			fill = "#c85b4a"
		}
		name := s.Graph.Task(id).Name
		if name == "" {
			name = fmt.Sprintf("T%d", id)
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="black" stroke-width="0.4"><title>%s [%.2f,%.2f)</title></rect>`+"\n",
			x(pl.Start), y+2, w, rowH-6, fill, name, pl.Start, s.Finish(id))
		if w > 28 {
			fmt.Fprintf(&b, `<text x="%.2f" y="%d" fill="white">%s</text>`+"\n", x(pl.Start)+2, y+rowH-9, name)
		}
	}

	// Communications.
	for e := 0; e < s.Graph.NumEdges(); e++ {
		if !s.IsCross(dag.EdgeID(e)) || math.IsNaN(s.CommStart[e]) {
			continue
		}
		edge := s.Graph.Edge(dag.EdgeID(e))
		w := edge.Comm * scale
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="#999" stroke="black" stroke-width="0.3"><title>%d-&gt;%d [%.2f,%.2f)</title></rect>`+"\n",
			x(s.CommStart[e]), commY+4, w, rowH-10, edge.From, edge.To, s.CommStart[e], s.CommStart[e]+edge.Comm)
	}

	// Memory step plots.
	for mi, mem := range platform.Memories {
		y0 := topPad + chartH + rowH + mi*(memPlotH+rowH)
		peak := s.memPeak(mem)
		if peak == 0 {
			peak = 1
		}
		fmt.Fprintf(&b, `<text x="4" y="%d">%s mem (peak %d)</text>`+"\n", y0+memPlotH/2, mem, s.memPeak(mem))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ccc"/>`+"\n",
			leftPad, y0+memPlotH, width-rightPad, y0+memPlotH)
		pts := s.usageSteps(mem)
		var path strings.Builder
		cur := int64(0)
		fmt.Fprintf(&path, "M %.2f %.2f", x(0), float64(y0+memPlotH))
		for _, p := range pts {
			yv := float64(y0+memPlotH) - float64(p.usage)/float64(peak)*float64(memPlotH-4)
			fmt.Fprintf(&path, " L %.2f %.2f", x(p.t), float64(y0+memPlotH)-float64(cur)/float64(peak)*float64(memPlotH-4))
			fmt.Fprintf(&path, " L %.2f %.2f", x(p.t), yv)
			cur = p.usage
		}
		fmt.Fprintf(&path, " L %.2f %.2f", x(ms), float64(y0+memPlotH)-float64(cur)/float64(peak)*float64(memPlotH-4))
		colour := "#4a86c8"
		if mem == platform.Red {
			colour = "#c85b4a"
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.4"/>`+"\n", path.String(), colour)
	}

	// Time axis.
	axisY := topPad + chartH + 4
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", leftPad, axisY, width-rightPad, axisY)
	fmt.Fprintf(&b, `<text x="%d" y="%d">0</text>`+"\n", leftPad, axisY+14)
	fmt.Fprintf(&b, `<text x="%.2f" y="%d">%.6g</text>`+"\n", x(ms)-30, axisY+14, ms)

	b.WriteString("</svg>\n")
	return b.String()
}

type usagePoint struct {
	t     float64
	usage int64
}

// usageSteps returns the cumulative usage of one memory at each change
// point, in time order.
func (s *Schedule) usageSteps(mem platform.Memory) []usagePoint {
	type ev struct {
		t     float64
		delta int64
	}
	var evs []ev
	for _, r := range s.residencies() {
		if r.mem != mem {
			continue
		}
		evs = append(evs, ev{r.from, r.size}, ev{r.to, -r.size})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta
	})
	var out []usagePoint
	var cur int64
	for _, e := range evs {
		cur += e.delta
		if len(out) > 0 && out[len(out)-1].t == e.t {
			out[len(out)-1].usage = cur
			continue
		}
		out = append(out, usagePoint{e.t, cur})
	}
	return out
}

func (s *Schedule) memPeak(mem platform.Memory) int64 {
	blue, red := s.MemoryPeaks()
	if mem == platform.Blue {
		return blue
	}
	return red
}
