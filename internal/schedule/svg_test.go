package schedule

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func TestSVGContainsAllElements(t *testing.T) {
	s := paperS1(2, 5)
	svg := s.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not a complete SVG document")
	}
	for _, want := range []string{
		"proc 0 (blue)", "proc 1 (red)", "transfers",
		"T1", "T2", "T3", // task labels (T4 may be too narrow for text)
		"blue mem (peak 2)", "red mem (peak 5)",
		"<path", // memory step plots
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two cross communications -> at least two transfer boxes with titles.
	if strings.Count(svg, "-&gt;") != 2 {
		t.Fatalf("expected 2 transfer boxes, SVG has %d", strings.Count(svg, "-&gt;"))
	}
}

func TestSVGDeterministic(t *testing.T) {
	s := paperS1(2, 5)
	if s.SVG() != s.SVG() {
		t.Fatal("SVG output not deterministic")
	}
}

func TestSVGZeroDurationTasksVisible(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 1, 1)
	b := g.AddTask("bcast", 0, 0)
	c := g.AddTask("c", 1, 1)
	g.MustAddEdge(a, b, 1, 0)
	g.MustAddEdge(b, c, 1, 0)
	p := platform.New(1, 0, 10, 0)
	s := New(g, p)
	s.Tasks[0] = TaskPlacement{Start: 0, Proc: 0}
	s.Tasks[1] = TaskPlacement{Start: 1, Proc: 0}
	s.Tasks[2] = TaskPlacement{Start: 1, Proc: 0}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	svg := s.SVG()
	// Three rect boxes for three tasks (plus lane and background rects).
	if strings.Count(svg, "<title>") < 3 {
		t.Fatal("zero-duration task box missing")
	}
}

func TestSVGEmptyScheduleDoesNotPanic(t *testing.T) {
	g := dag.New()
	s := New(g, platform.New(1, 1, 1, 1))
	svg := s.SVG()
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("bad SVG for empty schedule")
	}
}
