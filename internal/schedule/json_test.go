package schedule

import (
	"encoding/json"
	"testing"

	"repro/internal/dag"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := paperS1(2, 5)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(s.Graph, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	if back.Makespan() != s.Makespan() {
		t.Fatalf("makespan changed: %g vs %g", back.Makespan(), s.Makespan())
	}
	b1, r1 := s.MemoryPeaks()
	b2, r2 := back.MemoryPeaks()
	if b1 != b2 || r1 != r2 {
		t.Fatal("peaks changed across round trip")
	}
	for i := range s.Tasks {
		if s.Tasks[i] != back.Tasks[i] {
			t.Fatalf("placement %d changed", i)
		}
	}
}

func TestScheduleJSONPreservesIntraMemoryNaN(t *testing.T) {
	s := paperS1(2, 5)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(s.Graph, data)
	if err != nil {
		t.Fatal(err)
	}
	e13, _ := s.Graph.EdgeBetween(0, 2) // intra-memory edge
	if !back.IsCross(e13.ID) == false {
		t.Fatal("edge became cross")
	}
	if v := back.CommStart[e13.ID]; v == v { // NaN check
		t.Fatalf("intra-memory comm start not NaN: %g", v)
	}
}

func TestDecodeJSONRejectsShapeMismatch(t *testing.T) {
	s := paperS1(2, 5)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	other := dag.Chain(3, 1, 1, 1, 1)
	if _, err := DecodeJSON(other, data); err == nil {
		t.Fatal("mismatched graph accepted")
	}
	if _, err := DecodeJSON(s.Graph, []byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
