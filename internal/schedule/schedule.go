// Package schedule defines the schedule object s = (sigma, tau, proc) of the
// paper and a validator that checks the three families of constraints of §3
// (flow dependencies, resource exclusivity, memory capacity) exactly as the
// model defines them. Every scheduling algorithm in this repository returns a
// *Schedule, and every test funnels results through Validate, so the model
// semantics live in exactly one place.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/platform"
)

// Eps is the tolerance used for floating-point comparisons between event
// times. All paper instances use integral times, so the tolerance only
// absorbs accumulated rounding in long schedules.
const Eps = 1e-9

// TaskPlacement records where and when one task runs.
type TaskPlacement struct {
	Start float64
	Proc  int // paper numbering: 0..P1-1 blue, P1..P1+P2-1 red
}

// Schedule is a complete mapping of a DAG onto a platform: a start time and
// processor per task (sigma, proc) and a start time per cross-memory
// communication (tau). CommStart entries for same-memory edges are NaN and
// ignored.
type Schedule struct {
	Graph    *dag.Graph
	Platform platform.Platform

	Tasks     []TaskPlacement // indexed by dag.TaskID
	CommStart []float64       // indexed by dag.EdgeID; NaN when intra-memory
}

// New returns an empty schedule skeleton for the given graph and platform,
// with all task starts unset (-1) and all communications NaN.
func New(g *dag.Graph, p platform.Platform) *Schedule {
	s := &Schedule{
		Graph:     g,
		Platform:  p,
		Tasks:     make([]TaskPlacement, g.NumTasks()),
		CommStart: make([]float64, g.NumEdges()),
	}
	for i := range s.Tasks {
		s.Tasks[i] = TaskPlacement{Start: -1, Proc: -1}
	}
	for i := range s.CommStart {
		s.CommStart[i] = math.NaN()
	}
	return s
}

// Clone returns an independent copy of the schedule sharing the immutable
// graph. The warm-start margin shortcut hands clones of a recorded schedule
// to callers so the stored original can never be mutated through a Result.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		Graph:     s.Graph,
		Platform:  s.Platform,
		Tasks:     append([]TaskPlacement(nil), s.Tasks...),
		CommStart: append([]float64(nil), s.CommStart...),
	}
}

// MemoryOf returns the memory on which task id executes.
func (s *Schedule) MemoryOf(id dag.TaskID) platform.Memory {
	return s.Platform.MemoryOf(s.Tasks[id].Proc)
}

// Duration returns the actual processing time W(i) of task id given its
// assigned processor.
func (s *Schedule) Duration(id dag.TaskID) float64 {
	t := s.Graph.Task(id)
	if s.MemoryOf(id) == platform.Blue {
		return t.WBlue
	}
	return t.WRed
}

// Finish returns sigma(i) + W(i).
func (s *Schedule) Finish(id dag.TaskID) float64 {
	return s.Tasks[id].Start + s.Duration(id)
}

// IsCross reports whether edge e connects tasks placed on different memories.
func (s *Schedule) IsCross(e dag.EdgeID) bool {
	edge := s.Graph.Edge(e)
	return s.MemoryOf(edge.From) != s.MemoryOf(edge.To)
}

// CommDuration returns COMM(i,j): the edge's communication time when it
// crosses memories and 0 otherwise.
func (s *Schedule) CommDuration(e dag.EdgeID) float64 {
	if s.IsCross(e) {
		return s.Graph.Edge(e).Comm
	}
	return 0
}

// Makespan returns the completion time of the last task.
func (s *Schedule) Makespan() float64 {
	ms := 0.0
	for i := range s.Tasks {
		if f := s.Finish(dag.TaskID(i)); f > ms {
			ms = f
		}
	}
	return ms
}

// residency is one interval during which a file occupies one memory.
type residency struct {
	mem      platform.Memory
	from, to float64
	size     int64
	edge     dag.EdgeID
}

// residencies expands the schedule into the set of file-residency intervals
// implied by the model of §3.2:
//
//   - an intra-memory edge (j,i) occupies mem(j) on [sigma(j), finish(i));
//   - a cross edge occupies mem(j) on [sigma(j), tau+C) — the source copy is
//     discarded when the transfer completes — and mem(i) on
//     [tau, finish(i)).
func (s *Schedule) residencies() []residency {
	g := s.Graph
	var rs []residency
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(dag.EdgeID(e))
		if edge.File == 0 {
			continue
		}
		srcMem := s.MemoryOf(edge.From)
		prodStart := s.Tasks[edge.From].Start
		consFinish := s.Finish(edge.To)
		if !s.IsCross(dag.EdgeID(e)) {
			rs = append(rs, residency{mem: srcMem, from: prodStart, to: consFinish, size: edge.File, edge: dag.EdgeID(e)})
			continue
		}
		tau := s.CommStart[e]
		rs = append(rs, residency{mem: srcMem, from: prodStart, to: tau + edge.Comm, size: edge.File, edge: dag.EdgeID(e)})
		rs = append(rs, residency{mem: srcMem.Other(), from: tau, to: consFinish, size: edge.File, edge: dag.EdgeID(e)})
	}
	return rs
}

// MemoryPeaks returns the peak usage of the blue and red memories over the
// whole schedule (the paper's Ms_blue and Ms_red).
func (s *Schedule) MemoryPeaks() (blue, red int64) {
	type event struct {
		t     float64
		delta int64
	}
	var evs [2][]event
	for _, r := range s.residencies() {
		evs[r.mem] = append(evs[r.mem], event{r.from, r.size}, event{r.to, -r.size})
	}
	peaks := [2]int64{}
	for m := range evs {
		sort.Slice(evs[m], func(i, j int) bool {
			ti, tj := evs[m][i].t, evs[m][j].t
			if math.Abs(ti-tj) > Eps {
				return ti < tj
			}
			return evs[m][i].delta < evs[m][j].delta // releases before acquisitions
		})
		var cur int64
		for _, e := range evs[m] {
			cur += e.delta
			if cur > peaks[m] {
				peaks[m] = cur
			}
		}
	}
	return peaks[0], peaks[1]
}

// UsageAt returns the amount of memory m occupied at time t (files whose
// residency interval contains t, intervals being half-open [from, to)).
func (s *Schedule) UsageAt(m platform.Memory, t float64) int64 {
	var sum int64
	for _, r := range s.residencies() {
		if r.mem == m && r.from <= t+Eps && t < r.to-Eps {
			sum += r.size
		}
	}
	return sum
}

// Validate checks that the schedule satisfies every constraint of the model:
// completeness, flow dependencies (with communications), processor
// exclusivity, and the memory bounds of the platform. It returns nil for a
// valid schedule and a descriptive error for the first violation found.
func (s *Schedule) Validate() error {
	g, p := s.Graph, s.Platform
	if err := p.Validate(); err != nil {
		return err
	}
	if len(s.Tasks) != g.NumTasks() || len(s.CommStart) != g.NumEdges() {
		return fmt.Errorf("schedule: shape mismatch with graph")
	}
	// Completeness and placement sanity.
	for i := range s.Tasks {
		pl := s.Tasks[i]
		if pl.Proc < 0 || pl.Proc >= p.TotalProcs() {
			return fmt.Errorf("schedule: task %d assigned to invalid processor %d", i, pl.Proc)
		}
		if pl.Start < -Eps {
			return fmt.Errorf("schedule: task %d starts at negative time %g", i, pl.Start)
		}
	}
	// Flow constraints.
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(dag.EdgeID(e))
		srcFinish := s.Finish(edge.From)
		dstStart := s.Tasks[edge.To].Start
		if !s.IsCross(dag.EdgeID(e)) {
			if srcFinish > dstStart+Eps {
				return fmt.Errorf("schedule: edge %d->%d violates precedence: finish(%d)=%g > start(%d)=%g",
					edge.From, edge.To, edge.From, srcFinish, edge.To, dstStart)
			}
			continue
		}
		tau := s.CommStart[e]
		if math.IsNaN(tau) {
			return fmt.Errorf("schedule: cross edge %d->%d has no communication start", edge.From, edge.To)
		}
		if srcFinish > tau+Eps {
			return fmt.Errorf("schedule: communication %d->%d starts at %g before producer finishes at %g",
				edge.From, edge.To, tau, srcFinish)
		}
		if tau+edge.Comm > dstStart+Eps {
			return fmt.Errorf("schedule: communication %d->%d ends at %g after consumer starts at %g",
				edge.From, edge.To, tau+edge.Comm, dstStart)
		}
	}
	// Resource constraints: tasks sharing a processor must not overlap.
	byProc := make(map[int][]dag.TaskID)
	for i := range s.Tasks {
		byProc[s.Tasks[i].Proc] = append(byProc[s.Tasks[i].Proc], dag.TaskID(i))
	}
	for proc, ids := range byProc {
		// Sort by start, breaking ties by finish so that zero-duration
		// tasks sitting exactly on another task's boundary (legal in
		// the model) come first and do not trip the pairwise check.
		sort.Slice(ids, func(a, b int) bool {
			sa, sb := s.Tasks[ids[a]].Start, s.Tasks[ids[b]].Start
			if sa != sb {
				return sa < sb
			}
			return s.Finish(ids[a]) < s.Finish(ids[b])
		})
		for k := 1; k < len(ids); k++ {
			prev, cur := ids[k-1], ids[k]
			if s.Finish(prev) > s.Tasks[cur].Start+Eps {
				return fmt.Errorf("schedule: tasks %d and %d overlap on processor %d ([%g,%g) vs [%g,%g))",
					prev, cur, proc,
					s.Tasks[prev].Start, s.Finish(prev), s.Tasks[cur].Start, s.Finish(cur))
			}
		}
	}
	// Memory constraints. Usage only increases when a residency interval
	// opens, so checking at every interval start is exact.
	rs := s.residencies()
	for _, r := range rs {
		var usage int64
		for _, o := range rs {
			if o.mem == r.mem && o.from <= r.from+Eps && r.from < o.to-Eps {
				usage += o.size
			}
		}
		if usage > p.Capacity(r.mem) {
			return fmt.Errorf("schedule: %s memory over capacity at t=%g: %d > %d (opening file of edge %d)",
				r.mem, r.from, usage, p.Capacity(r.mem), r.edge)
		}
	}
	return nil
}
