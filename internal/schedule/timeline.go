package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dag"
)

// Event is one row of a schedule timeline: a task execution or a
// cross-memory communication.
type Event struct {
	Kind  string // "task" or "comm"
	Label string
	Start float64
	End   float64
	Proc  int // -1 for communications
}

// Timeline flattens the schedule into a list of events sorted by start time
// (ties broken by processor then label), convenient for printing and for
// golden tests.
func (s *Schedule) Timeline() []Event {
	g := s.Graph
	var evs []Event
	for i := 0; i < g.NumTasks(); i++ {
		id := dag.TaskID(i)
		name := g.Task(id).Name
		if name == "" {
			name = fmt.Sprintf("T%d", i)
		}
		evs = append(evs, Event{
			Kind:  "task",
			Label: name,
			Start: s.Tasks[i].Start,
			End:   s.Finish(id),
			Proc:  s.Tasks[i].Proc,
		})
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !s.IsCross(dag.EdgeID(e)) || math.IsNaN(s.CommStart[e]) {
			continue
		}
		edge := g.Edge(dag.EdgeID(e))
		evs = append(evs, Event{
			Kind:  "comm",
			Label: fmt.Sprintf("%d->%d", edge.From, edge.To),
			Start: s.CommStart[e],
			End:   s.CommStart[e] + edge.Comm,
			Proc:  -1,
		})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		if evs[i].Proc != evs[j].Proc {
			return evs[i].Proc < evs[j].Proc
		}
		return evs[i].Label < evs[j].Label
	})
	return evs
}

// Render prints the timeline as a fixed-width table, one line per event.
func (s *Schedule) Render() string {
	var b strings.Builder
	blue, red := s.MemoryPeaks()
	fmt.Fprintf(&b, "makespan=%g bluePeak=%d redPeak=%d\n", s.Makespan(), blue, red)
	for _, e := range s.Timeline() {
		where := "comm"
		if e.Proc >= 0 {
			where = fmt.Sprintf("proc %d (%s)", e.Proc, s.Platform.MemoryOf(e.Proc))
		}
		fmt.Fprintf(&b, "%8.2f %8.2f  %-5s %-12s on %s\n", e.Start, e.End, e.Kind, e.Label, where)
	}
	return b.String()
}
