package schedule

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/platform"
)

// jsonSchedule is the wire format of a schedule. The graph itself is not
// embedded — schedules are exchanged alongside their graph file — but the
// platform is, so a schedule file carries everything needed to re-validate
// against its graph. Intra-memory edges carry a communication start of -1.
type jsonSchedule struct {
	PBlue     int             `json:"pblue"`
	PRed      int             `json:"pred"`
	MBlue     int64           `json:"mblue"`
	MRed      int64           `json:"mred"`
	Tasks     []TaskPlacement `json:"tasks"`
	CommStart []float64       `json:"commStart"`
}

// MarshalJSON encodes the schedule (placements, communications, platform).
func (s *Schedule) MarshalJSON() ([]byte, error) {
	js := jsonSchedule{
		PBlue: s.Platform.PBlue, PRed: s.Platform.PRed,
		MBlue: s.Platform.MBlue, MRed: s.Platform.MRed,
		Tasks:     s.Tasks,
		CommStart: make([]float64, len(s.CommStart)),
	}
	for i, v := range s.CommStart {
		if math.IsNaN(v) {
			js.CommStart[i] = -1
		} else {
			js.CommStart[i] = v
		}
	}
	return json.Marshal(js)
}

// DecodeJSON decodes a schedule of graph g from data. The placement and
// communication slices must match the graph's shape; negative communication
// starts become NaN (intra-memory edges).
func DecodeJSON(g *dag.Graph, data []byte) (*Schedule, error) {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("schedule: decoding: %w", err)
	}
	if len(js.Tasks) != g.NumTasks() || len(js.CommStart) != g.NumEdges() {
		return nil, fmt.Errorf("schedule: shape mismatch: %d/%d placements for a %d/%d graph",
			len(js.Tasks), len(js.CommStart), g.NumTasks(), g.NumEdges())
	}
	s := &Schedule{
		Graph:     g,
		Platform:  platform.New(js.PBlue, js.PRed, js.MBlue, js.MRed),
		Tasks:     js.Tasks,
		CommStart: make([]float64, len(js.CommStart)),
	}
	for i, v := range js.CommStart {
		if v < 0 {
			s.CommStart[i] = math.NaN()
		} else {
			s.CommStart[i] = v
		}
	}
	return s, nil
}
