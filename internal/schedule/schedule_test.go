package schedule

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

// paperS1 builds schedule s1 of Figure 3 on a 1 blue + 1 red platform:
// T1 red [0,1), T2 blue [2,4), T3 red [1,4), T4 red [5,6), with
// communications (T1,T2) at tau=1 and (T2,T4) at tau=4.
// The paper works out: makespan 6, blue peak 2, red peak 5.
func paperS1(mBlue, mRed int64) *Schedule {
	g := dag.PaperExample()
	p := platform.New(1, 1, mBlue, mRed)
	s := New(g, p)
	s.Tasks[0] = TaskPlacement{Start: 0, Proc: 1} // T1 red
	s.Tasks[1] = TaskPlacement{Start: 2, Proc: 0} // T2 blue
	s.Tasks[2] = TaskPlacement{Start: 1, Proc: 1} // T3 red
	s.Tasks[3] = TaskPlacement{Start: 5, Proc: 1} // T4 red
	e12, _ := g.EdgeBetween(0, 1)
	e24, _ := g.EdgeBetween(1, 3)
	s.CommStart[e12.ID] = 1
	s.CommStart[e24.ID] = 4
	return s
}

// paperS2 builds a schedule in the spirit of Figure 4: same platform, both
// memory peaks at most 4, makespan 7 (the paper states s2 trades one extra
// time unit for the smaller peak): T1 red [0,1), T3 red [2,5), T2 blue
// [2,4), T4 red [6,7), comm (T1,T2) at 1, comm (T2,T4) at 5.
func paperS2(mBlue, mRed int64) *Schedule {
	g := dag.PaperExample()
	p := platform.New(1, 1, mBlue, mRed)
	s := New(g, p)
	s.Tasks[0] = TaskPlacement{Start: 0, Proc: 1}
	s.Tasks[1] = TaskPlacement{Start: 2, Proc: 0}
	s.Tasks[2] = TaskPlacement{Start: 2, Proc: 1}
	s.Tasks[3] = TaskPlacement{Start: 6, Proc: 1}
	e12, _ := g.EdgeBetween(0, 1)
	e24, _ := g.EdgeBetween(1, 3)
	s.CommStart[e12.ID] = 1
	s.CommStart[e24.ID] = 5
	return s
}

func TestS1MatchesPaperNumbers(t *testing.T) {
	s := paperS1(2, 5)
	if err := s.Validate(); err != nil {
		t.Fatalf("s1 should be valid with M=(2,5): %v", err)
	}
	if ms := s.Makespan(); ms != 6 {
		t.Fatalf("makespan = %g, want 6", ms)
	}
	blue, red := s.MemoryPeaks()
	if blue != 2 || red != 5 {
		t.Fatalf("peaks = (%d,%d), want (2,5)", blue, red)
	}
}

func TestS1UsageAtKeyInstants(t *testing.T) {
	s := paperS1(5, 5)
	// Paper §3.2: RedMemUsed(T1)=3, BlueMemUsed(T2)=2, RedMemUsed(T3)=5,
	// RedMemUsed(T4)=3.
	if got := s.UsageAt(platform.Red, 0); got != 3 {
		t.Fatalf("red usage at T1 start = %d, want 3", got)
	}
	if got := s.UsageAt(platform.Blue, 2); got != 2 {
		t.Fatalf("blue usage at T2 start = %d, want 2", got)
	}
	if got := s.UsageAt(platform.Red, 1); got != 5 {
		t.Fatalf("red usage at T3 start = %d, want 5", got)
	}
	if got := s.UsageAt(platform.Red, 5); got != 3 {
		t.Fatalf("red usage at T4 start = %d, want 3", got)
	}
}

func TestS1RejectedUnderTighterBound(t *testing.T) {
	// Paper: with M(blue)=M(red)=4, s1 is no longer acceptable.
	s := paperS1(4, 4)
	err := s.Validate()
	if err == nil {
		t.Fatal("s1 accepted with M=(4,4)")
	}
	if !strings.Contains(err.Error(), "red memory over capacity") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestS2ValidWithMemoryFourAndMakespanSeven(t *testing.T) {
	s := paperS2(4, 4)
	if err := s.Validate(); err != nil {
		t.Fatalf("s2 should be valid with M=(4,4): %v", err)
	}
	if ms := s.Makespan(); ms != 7 {
		t.Fatalf("makespan = %g, want 7", ms)
	}
	blue, red := s.MemoryPeaks()
	if blue > 4 || red > 4 {
		t.Fatalf("peaks = (%d,%d), want <= 4", blue, red)
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	s := paperS1(5, 5)
	s.Tasks[3].Start = 3 // T4 before comm (T2,T4) completes
	if err := s.Validate(); err == nil {
		t.Fatal("precedence violation accepted")
	}
}

func TestValidateCatchesIntraMemoryPrecedence(t *testing.T) {
	s := paperS1(5, 5)
	s.Tasks[2].Start = 0.5 // T3 starts before its parent T1 (same memory) finishes
	if err := s.Validate(); err == nil {
		t.Fatal("intra-memory precedence violation accepted")
	}
}

func TestValidateCatchesResourceOverlap(t *testing.T) {
	s := paperS1(5, 5)
	s.Tasks[1].Proc = 1  // move T2 to red: overlaps T3 [1,4)
	s.Tasks[1].Start = 2 // [2,4)
	e12, _ := s.Graph.EdgeBetween(0, 1)
	s.CommStart[e12.ID] = math.NaN() // now intra-memory
	if err := s.Validate(); err == nil {
		t.Fatal("processor overlap accepted")
	}
	if err := s.Validate(); !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateCatchesCommBeforeProducer(t *testing.T) {
	s := paperS1(5, 5)
	e12, _ := s.Graph.EdgeBetween(0, 1)
	s.CommStart[e12.ID] = 0.5 // producer T1 finishes at 1
	if err := s.Validate(); err == nil {
		t.Fatal("early communication accepted")
	}
}

func TestValidateCatchesMissingCommStart(t *testing.T) {
	s := paperS1(5, 5)
	e12, _ := s.Graph.EdgeBetween(0, 1)
	s.CommStart[e12.ID] = math.NaN()
	if err := s.Validate(); err == nil {
		t.Fatal("missing communication start accepted")
	}
}

func TestValidateCatchesUnassignedTask(t *testing.T) {
	g := dag.PaperExample()
	s := New(g, platform.New(1, 1, 10, 10))
	if err := s.Validate(); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestValidateCatchesNegativeStart(t *testing.T) {
	s := paperS1(5, 5)
	s.Tasks[0].Start = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative start accepted")
	}
}

func TestDurationAndFinish(t *testing.T) {
	s := paperS1(5, 5)
	if d := s.Duration(0); d != 1 { // T1 on red
		t.Fatalf("Duration(T1) = %g, want 1", d)
	}
	if d := s.Duration(1); d != 2 { // T2 on blue
		t.Fatalf("Duration(T2) = %g, want 2", d)
	}
	if f := s.Finish(2); f != 4 { // T3 red [1,4)
		t.Fatalf("Finish(T3) = %g, want 4", f)
	}
}

func TestMemoryOfAndIsCross(t *testing.T) {
	s := paperS1(5, 5)
	if s.MemoryOf(0) != platform.Red || s.MemoryOf(1) != platform.Blue {
		t.Fatal("MemoryOf wrong")
	}
	e12, _ := s.Graph.EdgeBetween(0, 1)
	e13, _ := s.Graph.EdgeBetween(0, 2)
	if !s.IsCross(e12.ID) {
		t.Fatal("edge T1->T2 should cross")
	}
	if s.IsCross(e13.ID) {
		t.Fatal("edge T1->T3 should not cross")
	}
	if c := s.CommDuration(e12.ID); c != 1 {
		t.Fatalf("CommDuration cross = %g", c)
	}
	if c := s.CommDuration(e13.ID); c != 0 {
		t.Fatalf("CommDuration intra = %g", c)
	}
}

func TestZeroDurationTasksDoNotConflict(t *testing.T) {
	g := dag.New()
	a := g.AddTask("a", 0, 0)
	b := g.AddTask("b", 0, 0)
	c := g.AddTask("c", 1, 1)
	g.MustAddEdge(a, b, 1, 0)
	g.MustAddEdge(b, c, 1, 0)
	p := platform.New(1, 0, 10, 10)
	s := New(g, p)
	s.Tasks[a] = TaskPlacement{Start: 0, Proc: 0}
	s.Tasks[b] = TaskPlacement{Start: 0, Proc: 0}
	s.Tasks[c] = TaskPlacement{Start: 0, Proc: 0}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero-duration stacking rejected: %v", err)
	}
}

func TestTimelineSortedAndComplete(t *testing.T) {
	s := paperS1(5, 5)
	evs := s.Timeline()
	if len(evs) != 6 { // 4 tasks + 2 comms
		t.Fatalf("timeline has %d events, want 6", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatal("timeline not sorted")
		}
	}
	nComm := 0
	for _, e := range evs {
		if e.Kind == "comm" {
			nComm++
			if e.Proc != -1 {
				t.Fatal("comm event with processor")
			}
		}
	}
	if nComm != 2 {
		t.Fatalf("timeline has %d comms, want 2", nComm)
	}
}

func TestRenderMentionsPeaksAndMakespan(t *testing.T) {
	s := paperS1(5, 5)
	out := s.Render()
	for _, want := range []string{"makespan=6", "bluePeak=2", "redPeak=5", "T3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestUnboundedPlatformAlwaysFitsMemory(t *testing.T) {
	s := paperS1(platform.Unlimited, platform.Unlimited)
	if err := s.Validate(); err != nil {
		t.Fatalf("unbounded platform rejected: %v", err)
	}
}
