package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/cluster/ring"
	"repro/serve"
)

// Config configures a Router. The zero value of every field gets a
// sensible default from NewRouter; only Replicas is required.
type Config struct {
	// Addr is the router's listen address for ListenAndServe
	// (default ":8080").
	Addr string
	// Replicas is the static replica set (required, see ParseReplicas).
	// Ring membership is keyed by Replica.ID.
	Replicas []Replica
	// VirtualNodes is the ring's per-replica point count
	// (default ring.DefaultVirtualNodes).
	VirtualNodes int
	// LoadFactor is the bounded-load factor c: a replica carrying more
	// than c·ceil((total+1)/N) in-flight forwards is skipped in ring
	// order (default DefaultLoadFactor). Values < 1 are clamped to 1 by
	// the ring.
	LoadFactor float64
	// MaxInFlight bounds requests concurrently inside the router; excess
	// is shed with a structured 429 (default 256 — the router is
	// IO-bound, so its bound is much looser than a replica's).
	MaxInFlight int
	// MaxRequestBytes bounds request bodies (default 8 MiB, matching the
	// replicas' own cap so the router refuses what they would refuse).
	MaxRequestBytes int64
	// RateLimit, when > 0, is the router-wide token-bucket rate in
	// requests/second with burst RateBurst (<= 0 means ceil(RateLimit)).
	RateLimit float64
	RateBurst int
	// Health tunes the replica health checker.
	Health HealthConfig
	// StreamTimeout is how far the router extends its connection write
	// deadline for /v1/sweep responses, which legitimately stream far
	// past WriteTimeout (default 15m, matching the replicas' own sweep
	// deadline handling).
	StreamTimeout time.Duration
	// ReadTimeout / WriteTimeout configure the HTTP server of
	// ListenAndServe (defaults 10s / 60s, like a replica's).
	ReadTimeout, WriteTimeout time.Duration
	// ShutdownTimeout bounds the graceful drain of ListenAndServe
	// (default 10s).
	ShutdownTimeout time.Duration
	// Transport forwards the requests (default: a pooled http.Transport).
	Transport http.RoundTripper
	// Logf is the router's logger (default: discard).
	Logf func(format string, args ...any)
	// Logger receives the router's structured logs: one access line per
	// request at info (request id, route, serving replica, status, bytes,
	// duration, failover/spillover provenance) and failover, drain and
	// unroutable events at warn — every line carrying the request id, so
	// one id greps across router and replica logs. nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = ring.DefaultVirtualNodes
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = DefaultLoadFactor
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 15 * time.Minute
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.Transport == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 32
		c.Transport = tr
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Router is the cluster's cache-affinity reverse proxy: one address that
// shards /v1 traffic across a memschedd replica set by canonical graph
// hash over a consistent-hash ring.
//
// Routing policy, in order:
//
//   - The request's key (serve.RoutingKey) picks its ring owner; requests
//     with no extractable key (invalid bodies, plain GETs) round-robin
//     over routable replicas instead.
//   - Bounded load: an owner already carrying more than LoadFactor times
//     its fair share of in-flight forwards is skipped for the key's next
//     ring owner (counted as a spillover — affinity spreads to the
//     second choice, never a random replica). Only portable requests
//     (inline graph — any replica can serve them cold) spill; a
//     graph_id-only request is pinned to its owner, because a replica
//     that never saw the registration can only answer 404.
//   - Failover: a transport error or a 503 with code "draining" moves to
//     the next ring owner and feeds the health checker; a 429 on a
//     portable request spills to the next owner (the replica is alive,
//     just saturated), while a pinned request relays the 429 so the
//     client backs off and retries the same owner. Any other response —
//     including non-draining 503s, which client retries handle with
//     affinity intact — is relayed as-is.
//   - Once response bytes have streamed to the client the router never
//     fails over: a mid-stream replica death surfaces as a truncated
//     stream, and the client's retry-with-resume machinery (serve.Client
//     WithRetry) deduplicates the replay.
type Router struct {
	cfg      Config
	ring     *ring.Ring
	urls     map[string]string // replica id → base URL
	health   *Health
	prom     *routerMetrics
	load     map[string]*atomic.Int64 // in-flight forwards by replica id
	inFlight atomic.Int64
	client   *http.Client
	handler  http.Handler
	rr       atomic.Uint64
	start    time.Time

	readyOnce sync.Once
	ready     chan struct{}
	boundAddr atomic.Value // string
}

// NewRouter builds a router over cfg.Replicas.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	ids := make([]string, len(cfg.Replicas))
	urls := make(map[string]string, len(cfg.Replicas))
	load := make(map[string]*atomic.Int64, len(cfg.Replicas))
	for i, rep := range cfg.Replicas {
		ids[i] = rep.ID
		urls[rep.ID] = rep.URL
		load[rep.ID] = new(atomic.Int64)
	}
	rg, err := ring.New(ids, ring.WithVirtualNodes(cfg.VirtualNodes))
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   rg,
		urls:   urls,
		health: NewHealth(cfg.Replicas, cfg.Health),
		prom:   newRouterMetrics(),
		load:   load,
		client: &http.Client{Transport: cfg.Transport},
		start:  time.Now(),
		ready:  make(chan struct{}),
	}
	rt.handler = rt.buildHandler()
	return rt, nil
}

// buildHandler composes the serve middleware chain in front of the keyed
// proxy and wires the router's own endpoints. GETs (health, metrics,
// stats passthrough) bypass the limits, as on a replica, so probes and
// scrapes stay reliable under overload.
func (rt *Router) buildHandler() http.Handler {
	var links []serve.Middleware
	if rt.cfg.RateLimit > 0 {
		links = append(links, serve.RateLimitMiddleware(rt.cfg.RateLimit, rt.cfg.RateBurst,
			func() { rt.prom.rateLimited.Add(1) }))
	}
	links = append(links,
		serve.ConcurrencyLimitMiddleware(int64(rt.cfg.MaxInFlight), &rt.inFlight,
			func() { rt.prom.shed.Add(1) }),
		serve.BodyCapMiddleware(rt.cfg.MaxRequestBytes),
	)
	keyed := serve.Chain(links...)(http.HandlerFunc(rt.handleKeyed))

	mux := http.NewServeMux()
	for _, path := range []string{"/v1/graphs", "/v1/schedule", "/v1/simulate", "/v1/sweep"} {
		mux.Handle("POST "+path, keyed)
	}
	for _, path := range []string{"/v1/stats", "/v1/schedulers"} {
		mux.HandleFunc("GET "+path, rt.handleUnkeyed)
	}
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, serve.CodeNotFound, "unknown route "+r.Method+" "+r.URL.Path)
	})

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.prom.requests.Add(1)
		start := time.Now()
		id := serve.EnsureRequestID(r)
		w.Header().Set(serve.RequestIDHeader, id)
		note := &fwdNote{}
		ctx := serve.ContextWithRequestID(r.Context(), id)
		ctx = context.WithValue(ctx, fwdNoteKey{}, note)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if rt.cfg.Logger.Enabled(ctx, slog.LevelInfo) {
			attrs := make([]slog.Attr, 0, 9)
			attrs = append(attrs,
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("route", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", time.Since(start)))
			if note.replica != "" {
				attrs = append(attrs, slog.String("replica", note.replica))
			}
			if note.failovers > 0 {
				attrs = append(attrs, slog.Int("failovers", note.failovers))
			}
			if att := r.Header.Get(serve.RetryAttemptHeader); att != "" {
				attrs = append(attrs, slog.String("retry_attempt", att))
			}
			rt.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
		}
	})
}

// fwdNote collects what the forwarding path learns mid-request for the
// router's access log: which replica finally served, and how many
// failover hops it took to get there.
type fwdNote struct {
	replica   string
	failovers int
}

type fwdNoteKey struct{}

func noteFrom(ctx context.Context) *fwdNote {
	n, _ := ctx.Value(fwdNoteKey{}).(*fwdNote)
	return n
}

// logWarn emits one warn-level router event stamped with the request id.
func (rt *Router) logWarn(ctx context.Context, msg string, attrs ...slog.Attr) {
	if !rt.cfg.Logger.Enabled(ctx, slog.LevelWarn) {
		return
	}
	all := make([]slog.Attr, 0, len(attrs)+1)
	all = append(all, slog.String("request_id", serve.RequestIDFromContext(ctx)))
	all = append(all, attrs...)
	rt.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, msg, all...)
}

// statusWriter captures the response status and body size for the access
// log, forwarding Flush and Unwrap so streaming relays and write-deadline
// extensions keep working behind it.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// Handler returns the router's HTTP handler (for tests and embedding).
func (rt *Router) Handler() http.Handler { return rt.handler }

// Health exposes the router's replica health checker (for tests and
// embedders that run their own probe loop).
func (rt *Router) Health() *Health { return rt.health }

// handleKeyed proxies one /v1 POST: read the (bounded) body so it can be
// replayed across failover attempts, extract the affinity key, forward.
func (rt *Router) handleKeyed(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, serve.CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, serve.CodeBadRequest, "reading request body: "+err.Error())
		return
	}
	// An unextractable key (malformed body, invalid graph) still
	// forwards — unrouted — so the serving replica produces the
	// structured 4xx the client expects.
	key, portable, _ := serve.RoutingKey(body)
	if r.URL.Path == "/v1/graphs" {
		// Registration creates the replica-local session future graph_id
		// requests route to by this same key; spilling it to a
		// second-choice owner would strand them all with 404s. Pin it
		// like them.
		portable = false
	}
	if r.URL.Path == "/v1/sweep" {
		// Sweep responses legitimately stream past WriteTimeout.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(rt.cfg.StreamTimeout))
	}
	rt.forward(w, r, key, portable, body)
}

func (rt *Router) handleUnkeyed(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, "", true, nil)
}

// candidates returns the routable replicas to try for key, in order:
// the key's ring preference list — with the bounded-load choice first
// when the request is portable — or a round-robin rotation for unkeyed
// requests.
func (rt *Router) candidates(key string, portable bool) []string {
	members := rt.ring.Members()
	var prefs []string
	if key != "" {
		prefs = rt.ring.Owners(key, len(members))
	} else {
		start := int(rt.rr.Add(1)) % len(members)
		prefs = make([]string, 0, len(members))
		for i := range members {
			prefs = append(prefs, members[(start+i)%len(members)])
		}
	}
	routable := prefs[:0:0]
	for _, id := range prefs {
		if rt.health.Routable(id) {
			routable = append(routable, id)
		}
	}
	if key == "" || !portable || len(routable) < 2 {
		return routable
	}
	// Bounded load: skip an owner already past c times its fair share of
	// the in-flight forwards, spilling to the key's next choice.
	chosen, ok := rt.ring.OwnerBounded(key, rt.cfg.LoadFactor, func(id string) int {
		if !rt.health.Routable(id) {
			return -1
		}
		return int(rt.load[id].Load())
	})
	if ok && chosen != routable[0] {
		rt.prom.spillover(routable[0])
		reordered := append(make([]string, 0, len(routable)), chosen)
		for _, id := range routable {
			if id != chosen {
				reordered = append(reordered, id)
			}
		}
		return reordered
	}
	return routable
}

// forward tries the key's candidate replicas in order until one yields a
// relayable response. body is nil for GET passthroughs.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, portable bool, body []byte) {
	cands := rt.candidates(key, portable)
	if len(cands) == 0 {
		rt.prom.unroutable.Add(1)
		rt.logWarn(r.Context(), "no routable replica")
		writeRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, serve.CodeUnavailable, "no routable replica")
		return
	}
	var lastErr string
	for i, id := range cands {
		done, errMsg := rt.attempt(w, r, id, portable, body, i, i == len(cands)-1)
		if done {
			return
		}
		lastErr = errMsg
	}
	rt.prom.unroutable.Add(1)
	rt.logWarn(r.Context(), "all replicas failed", slog.String("error", lastErr))
	writeRetryAfter(w, time.Second)
	writeError(w, http.StatusServiceUnavailable, serve.CodeUnavailable,
		"all replicas failed: "+lastErr)
}

// attempt forwards to one replica. hop is the candidate's index in the
// preference walk: the first forward carries the request id unchanged,
// and every failover hop suffixes it with "-f<hop>" — distinct per
// attempt in the replica's access log, while the base id stays a common
// substring across the router's and every replica's lines. done means a
// response (or error) was written to the client; otherwise errMsg
// explains why the next candidate should be tried.
func (rt *Router) attempt(w http.ResponseWriter, r *http.Request, id string, portable bool, body []byte, hop int, last bool) (done bool, errMsg string) {
	ld := rt.load[id]
	ld.Add(1)
	defer ld.Add(-1)

	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	// The query string rides along: ?trace=1 (and any future request
	// modifiers) must reach the replica that actually serves the request.
	target := rt.urls[id] + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, reader)
	if err != nil {
		return false, err.Error()
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	} else if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if att := r.Header.Get(serve.RetryAttemptHeader); att != "" {
		req.Header.Set(serve.RetryAttemptHeader, att)
	}
	if reqID := serve.RequestIDFromContext(r.Context()); reqID != "" {
		if hop > 0 {
			reqID = fmt.Sprintf("%s-f%d", reqID, hop)
		}
		req.Header.Set(serve.RequestIDHeader, reqID)
	}

	startAt := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away; nothing to write, nothing to blame on
			// the replica.
			return true, ""
		}
		rt.health.ObserveFailure(id)
		rt.prom.failover(id)
		if n := noteFrom(r.Context()); n != nil {
			n.failovers++
		}
		rt.cfg.Logf("cluster: replica %s failed, failing over: %v", id, err)
		rt.logWarn(r.Context(), "replica failed, failing over",
			slog.String("replica", id), slog.String("error", err.Error()))
		return false, err.Error()
	}
	rt.prom.forward(id, time.Since(startAt))
	if n := noteFrom(r.Context()); n != nil {
		n.replica = id
	}

	switch resp.StatusCode {
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		ae := serve.DecodeAPIError(resp)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && ae.Code == serve.CodeDraining {
			rt.health.ObserveDraining(id)
			rt.prom.failover(id)
			if n := noteFrom(r.Context()); n != nil {
				n.failovers++
			}
			rt.cfg.Logf("cluster: replica %s draining, failing over", id)
			rt.logWarn(r.Context(), "replica draining, failing over", slog.String("replica", id))
			return false, ae.Message
		}
		if resp.StatusCode == http.StatusTooManyRequests && portable && !last {
			// Backpressure: the replica is alive but refusing; spill to
			// the key's next ring owner instead of bouncing the client.
			// Pinned requests relay the 429 instead — only the owner can
			// serve them, so the client must back off and retry it.
			rt.prom.spillover(id)
			rt.logWarn(r.Context(), "replica backpressure, spilling over", slog.String("replica", id))
			return false, ae.Message
		}
		// Terminal refusal (last candidate, or a non-draining 503):
		// relay the structured error, preserving the Retry-After hint.
		if ae.RetryAfter > 0 {
			writeRetryAfter(w, ae.RetryAfter)
		}
		writeError(w, resp.StatusCode, ae.Code, ae.Message)
		return true, ""
	}
	rt.relay(w, resp)
	return true, ""
}

// hopHeaders are connection-level headers never copied through a proxy.
var hopHeaders = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

// relay streams resp to the client, flushing after every chunk so
// NDJSON sweep records are delivered as the replica emits them, never
// buffered whole. A mid-stream upstream failure surfaces as a truncated
// body — exactly what a direct replica death would look like — and is
// left to the client's resume machinery.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if hopHeaders[k] {
			continue
		}
		if k == http.CanonicalHeaderKey(serve.RequestIDHeader) {
			// The router already stamped the response with the base id; the
			// replica's echo may carry a failover suffix meant for its own
			// logs, not for the client.
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// RouterHealthResponse is the body of the router's own GET /healthz.
type RouterHealthResponse struct {
	// Status is "ok" (every replica routable), "degraded" (some are
	// not), or "unavailable" (none are — the router answers 503).
	Status   string          `json:"status"`
	Replicas []ReplicaStatus `json:"replicas"`
	UptimeMS int64           `json:"uptime_ms"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	statuses := rt.health.Snapshot()
	routable := 0
	for _, st := range statuses {
		if st.Healthy && !st.Draining {
			routable++
		}
	}
	resp := RouterHealthResponse{
		Status:   "ok",
		Replicas: statuses,
		UptimeMS: time.Since(rt.start).Milliseconds(),
	}
	code := http.StatusOK
	switch {
	case routable == 0:
		resp.Status, code = "unavailable", http.StatusServiceUnavailable
	case routable < len(statuses):
		resp.Status = "degraded"
	}
	writeJSON(w, code, resp)
}

// ListenAndServe binds cfg.Addr, runs the health probe loop, and serves
// until ctx is cancelled, then shuts down gracefully within
// cfg.ShutdownTimeout. It returns nil after a clean shutdown.
func (rt *Router) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		rt.readyOnce.Do(func() { close(rt.ready) })
		return err
	}
	rt.boundAddr.Store(ln.Addr().String())
	rt.readyOnce.Do(func() { close(rt.ready) })
	rt.cfg.Logf("memschedd: routing %d replicas on %s (vnodes %d, load factor %g)",
		len(rt.cfg.Replicas), ln.Addr(), rt.cfg.VirtualNodes, rt.cfg.LoadFactor)

	hctx, stopHealth := context.WithCancel(context.Background())
	defer stopHealth()
	go rt.health.Run(hctx)

	srv := &http.Server{
		Handler:      rt.Handler(),
		ReadTimeout:  rt.cfg.ReadTimeout,
		WriteTimeout: rt.cfg.WriteTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	rt.cfg.Logf("memschedd: router shutting down (draining up to %v)", rt.cfg.ShutdownTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), rt.cfg.ShutdownTimeout)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if shutErr != nil {
		_ = srv.Close()
	}
	<-errc
	if shutErr != nil {
		return fmt.Errorf("cluster: shutdown: %w", shutErr)
	}
	rt.cfg.Logf("memschedd: router shutdown complete")
	return nil
}

// Addr returns the bound listen address of ListenAndServe; it blocks
// until the listener is bound (useful with ":0") and returns "" if
// binding failed.
func (rt *Router) Addr() string {
	<-rt.ready
	if a, ok := rt.boundAddr.Load().(string); ok {
		return a
	}
	return ""
}

// writeError / writeJSON / writeRetryAfter mirror the replica-side wire
// helpers so router-originated responses are indistinguishable from
// replica ones on the client.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, serve.ErrorResponse{Error: msg, Code: code,
		RequestID: w.Header().Get(serve.RequestIDHeader)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(d / time.Second)
	if d%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}
