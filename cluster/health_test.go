package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/cluster"
)

// TestHealthHysteresis walks the checker's state machine: FailAfter
// consecutive failures take a replica down, RiseAfter consecutive
// successes bring it back, a single draining response is out
// immediately, and a single success clears draining.
func TestHealthHysteresis(t *testing.T) {
	var mode atomic.Value // "ok" | "fail" | "draining"
	mode.Store("ok")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case "fail":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "draining":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"status":"draining","draining":true}`))
		default:
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"status":"ok","replica_id":"x","sessions_cached":3}`))
		}
	}))
	defer ts.Close()

	h := cluster.NewHealth(
		[]cluster.Replica{{ID: "x", URL: ts.URL}},
		cluster.HealthConfig{FailAfter: 2, RiseAfter: 2, Interval: time.Hour},
	)
	ctx := context.Background()
	probe := func() { h.ProbeAll(ctx) }
	routable := func(want bool, step string) {
		t.Helper()
		if got := h.Routable("x"); got != want {
			t.Fatalf("%s: Routable = %v, want %v (snapshot %+v)", step, got, want, h.Snapshot())
		}
	}

	// Optimistic start: routable before any probe.
	routable(true, "before first probe")
	probe()
	routable(true, "after ok probe")
	if st := h.Snapshot()[0]; st.Health.SessionsCached != 3 {
		t.Fatalf("probe did not capture the replica's health body: %+v", st)
	}

	// One failure is noise; FailAfter(2) in a row is an outage.
	mode.Store("fail")
	probe()
	routable(true, "one failure")
	probe()
	routable(false, "two failures")

	// One success does not flap it back; RiseAfter(2) does.
	mode.Store("ok")
	probe()
	routable(false, "one recovery probe")
	probe()
	routable(true, "two recovery probes")

	// Draining is an explicit signal: out after a single probe, back
	// after a single healthy one.
	mode.Store("draining")
	probe()
	routable(false, "draining")
	if st := h.Snapshot()[0]; !st.Draining || !st.Healthy {
		t.Fatalf("draining replica should stay healthy-but-draining: %+v", st)
	}
	mode.Store("ok")
	probe()
	routable(true, "drain lifted")

	// Passive data-path failures feed the same counter as probes.
	h.ObserveFailure("x")
	routable(true, "one passive failure")
	h.ObserveFailure("x")
	routable(false, "two passive failures")
	// ObserveDraining flags immediately, and a probe round restores.
	probe()
	probe()
	routable(true, "probes healed passive failures")
	h.ObserveDraining("x")
	routable(false, "passive draining")
	probe()
	routable(true, "probe cleared passive draining")
}

// TestHealthProbeTimeout: a replica that accepts but never answers is a
// failure, bounded by the probe timeout.
func TestHealthProbeTimeout(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer ts.Close()
	// Registered after ts.Close so it runs first: the stalled handler
	// must be released before Close can wait it out.
	defer close(stall)

	h := cluster.NewHealth(
		[]cluster.Replica{{ID: "x", URL: ts.URL}},
		cluster.HealthConfig{FailAfter: 1, Timeout: 50 * time.Millisecond, Interval: time.Hour},
	)
	start := time.Now()
	h.ProbeAll(context.Background())
	if h.Routable("x") {
		t.Fatal("stalled replica still routable")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("probe took %v, timeout not applied", took)
	}
	if st := h.Snapshot()[0]; st.LastErr == "" {
		t.Fatalf("timeout left no error trace: %+v", st)
	}
}
