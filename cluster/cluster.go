// Package cluster shards a set of memschedd replicas behind one
// cache-affinity router.
//
// The scheduling service's performance lives in its per-graph session
// cache (package serve): a warm session answers repeat schedule requests
// from memo lookups instead of re-deriving ranks and statics. A plain
// load balancer destroys that — each graph's requests land on a random
// replica, every replica caches every graph, and the LRU churns N times
// as fast. The cluster layer instead routes by the request's canonical
// graph hash over a consistent-hash ring (package cluster/ring), so each
// graph's session lives on exactly one replica and the union of the
// replicas' caches behaves like one cache N times the size.
//
// Router (NewRouter) is the data path: it extracts the routing key with
// serve.RoutingKey, resolves the owning replica on the ring, and
// reverse-proxies the request, streaming sweep NDJSON through without
// buffering. A health checker probes every replica's /healthz with
// hysteresis; routing falls over to the key's next ring owner when the
// owner is down or draining, and spills to the second-choice owner —
// never a random replica — when the owner answers 429 or exceeds its
// bounded-load share. The router composes the serve middleware chain
// (rate limit → concurrency shed → body cap) in front of the proxy and
// exposes its own /metrics and /healthz.
//
// The same ring is available client-side: serve.NewClusterClient routes
// each request directly to its owner, skipping the router hop.
package cluster

import (
	"fmt"
	"net/url"
	"strings"
)

// DefaultLoadFactor is the bounded-load factor c used when a Config (or a
// simulator modeling one, see package repro/clustersim) does not override
// it: a replica carrying more than c times its fair share of in-flight
// work is skipped for the key's next ring owner.
const DefaultLoadFactor = 1.25

// Replica is one memschedd instance of the replica set. ID keys the
// consistent-hash ring, so it must be stable across restarts and
// redeploys — a replica that comes back under the same ID keeps its arc
// of the key space (and its warm cache); URL is where it listens now.
type Replica struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ParseReplicas parses a comma-separated replica set, each entry either
// "id=url" or a bare url (which then doubles as the id — fine for fixed
// addresses, but named IDs survive port changes):
//
//	a=http://10.0.0.1:8080,b=http://10.0.0.2:8080
//	http://127.0.0.1:8081,http://127.0.0.2:8082
//
// URLs must be absolute http(s) URLs; trailing slashes are stripped.
// Duplicate IDs are rejected so a typo cannot silently merge two
// replicas into one ring member.
func ParseReplicas(spec string) ([]Replica, error) {
	var out []Replica
	seen := make(map[string]bool)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("cluster: empty replica entry in %q", spec)
		}
		rep := Replica{URL: entry}
		// "id=url" — but never split inside the URL itself (query strings
		// are rejected below anyway; scheme and host cannot contain '=').
		if id, rest, ok := strings.Cut(entry, "="); ok && !strings.Contains(id, "/") {
			rep = Replica{ID: strings.TrimSpace(id), URL: strings.TrimSpace(rest)}
			if rep.ID == "" {
				return nil, fmt.Errorf("cluster: empty replica id in entry %q", entry)
			}
		}
		rep.URL = strings.TrimRight(rep.URL, "/")
		u, err := url.Parse(rep.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: replica url %q is not an absolute http(s) url", rep.URL)
		}
		if u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
			return nil, fmt.Errorf("cluster: replica url %q must be a bare base url", rep.URL)
		}
		if rep.ID == "" {
			rep.ID = rep.URL
		}
		if seen[rep.ID] {
			return nil, fmt.Errorf("cluster: duplicate replica id %q", rep.ID)
		}
		seen[rep.ID] = true
		out = append(out, rep)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no replicas in %q", spec)
	}
	return out, nil
}
