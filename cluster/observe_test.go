package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/cluster"
	"repro/serve"
)

// logSink is a goroutine-safe slog destination, one per tier under test.
type logSink struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *logSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *logSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *logSink) logger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(s, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// TestClusterRequestIDPropagation drives one identified request through
// a router over three replicas and checks the same id lands in the
// response, the router's access log, and exactly one replica's access
// log — the join key the whole observability layer hangs off.
func TestClusterRequestIDPropagation(t *testing.T) {
	sinks := map[string]*logSink{"a": {}, "b": {}, "c": {}}
	var routerSink logSink
	client, _, _, _ := startCluster(t, []string{"a", "b", "c"},
		func(id string) serve.Config { return serve.Config{Logger: sinks[id].logger()} },
		cluster.Config{Logger: routerSink.logger()})

	ctx := context.Background()
	g := randGraph(t, 60, 3)
	reg, err := client.RegisterGraph(ctx, g, nil)
	if err != nil {
		t.Fatal(err)
	}

	const reqID = "cluster-prop-1"
	res, err := client.Schedule(serve.ContextWithRequestID(ctx, reqID), serve.ScheduleRequest{
		GraphID: reg.ID,
		Pools:   []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != reqID {
		t.Fatalf("response request id = %q, want %q", res.RequestID, reqID)
	}

	rout := routerSink.String()
	if !strings.Contains(rout, `"request_id":"`+reqID+`"`) || !strings.Contains(rout, `"msg":"request"`) {
		t.Fatalf("router access log has no line for %s:\n%s", reqID, rout)
	}
	// The router's line names the replica it forwarded to; that replica's
	// own access log must carry the same id (first hop: unsuffixed).
	serving := ""
	for id, sink := range sinks {
		if strings.Contains(sink.String(), `"request_id":"`+reqID+`"`) {
			if serving != "" {
				t.Fatalf("id %s appears on both replica %s and %s", reqID, serving, id)
			}
			serving = id
		}
	}
	if serving == "" {
		t.Fatalf("no replica access log carries %s", reqID)
	}
	if !strings.Contains(rout, `"replica":"`+serving+`"`) {
		t.Fatalf("router log does not attribute %s to replica %s:\n%s", reqID, serving, rout)
	}
}

// TestClusterErrorBodyRequestID checks the router's structured errors
// name the request too, all the way out to the typed client error.
func TestClusterErrorBodyRequestID(t *testing.T) {
	client, _, _, _ := startCluster(t, []string{"a", "b"}, nil, cluster.Config{})

	const reqID = "cluster-err-1"
	_, err := client.Schedule(serve.ContextWithRequestID(context.Background(), reqID), serve.ScheduleRequest{
		GraphID: strings.Repeat("0", 64),
		Pools:   []serve.PoolSpec{{Procs: 1}},
	})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", apiErr.Status)
	}
	if apiErr.RequestID != reqID {
		t.Fatalf("APIError.RequestID = %q, want %q", apiErr.RequestID, reqID)
	}
}

// TestRouterForwardsQueryString sends ?trace=1 through the router and
// requires the span timeline back: request modifiers in the query
// string must reach the replica that actually serves the request.
func TestRouterForwardsQueryString(t *testing.T) {
	_, _, base, _ := startCluster(t, []string{"a", "b"}, nil, cluster.Config{})

	body := `{"graph": {"tasks": [{"wblue": 2, "wred": 1}], "edges": []},
	          "pools": [{"procs": 1, "capacity": 8}, {"procs": 1, "capacity": 4}]}`
	resp, err := http.Post(base+"/v1/schedule?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	// The router stamps the id itself and must swallow the replica's
	// echo (the header map key is canonicalized to X-Request-Id, not
	// X-Request-ID) — the client sees exactly one value.
	if ids := resp.Header.Values(serve.RequestIDHeader); len(ids) != 1 {
		t.Fatalf("response carries %d X-Request-ID values %v, want exactly 1", len(ids), ids)
	}
	var sr serve.ScheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Trace) == 0 {
		t.Fatal("?trace=1 lost on the router hop: no spans in the response")
	}
}

// TestClusterFailoverSuffix kills a replica and checks the failover
// hop's provenance: the replica that ends up serving sees the original
// id with an "-f<hop>" suffix, and the client still gets the base id
// back — the base stays a greppable substring across every tier.
func TestClusterFailoverSuffix(t *testing.T) {
	sinks := map[string]*logSink{"a": {}, "b": {}, "c": {}}
	var routerSink logSink
	client, _, _, reps := startCluster(t, []string{"a", "b", "c"},
		func(id string) serve.Config { return serve.Config{Logger: sinks[id].logger()} },
		cluster.Config{Logger: routerSink.logger()})

	ctx := context.Background()
	g := randGraph(t, 60, 5)
	reg, err := client.RegisterGraph(ctx, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerOf(t, []string{"a", "b", "c"}, reg.ID)
	reps[owner].kill()

	const reqID = "cluster-fail-1"
	res, err := client.Schedule(serve.ContextWithRequestID(ctx, reqID), serve.ScheduleRequest{
		GraphID: reg.ID,
		Pools:   []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		Seed:    1,
	})
	if err != nil {
		// The session died with its owner; in a real deployment the client
		// re-registers (schedload does). A structured 404 still proves the
		// failover hop reached a live replica — with its id intact.
		var apiErr *serve.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
			t.Fatal(err)
		}
		if apiErr.RequestID != reqID {
			t.Fatalf("failover error request id = %q, want %q", apiErr.RequestID, reqID)
		}
	} else if res.RequestID != reqID {
		t.Fatalf("failover response request id = %q, want %q", res.RequestID, reqID)
	}

	if out := routerSink.String(); !strings.Contains(out, `"msg":"replica failed, failing over"`) ||
		!strings.Contains(out, `"request_id":"`+reqID+`"`) {
		t.Fatalf("router log missing failover provenance for %s:\n%s", reqID, out)
	}
	suffixed := false
	for id, sink := range sinks {
		if id == owner {
			continue
		}
		if strings.Contains(sink.String(), `"request_id":"`+reqID+`-f1"`) {
			suffixed = true
		}
	}
	if !suffixed {
		t.Fatalf("no surviving replica saw the -f1 suffixed id %s-f1", reqID)
	}
}
