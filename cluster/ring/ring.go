// Package ring implements the consistent-hash ring under the cluster
// layer: a deterministic map from cache-affinity keys (canonical graph
// hashes) to members of a replica set.
//
// The ring places VirtualNodes points per member on a 64-bit hash circle;
// a key is owned by the member of the first point at or after the key's
// own hash (wrapping). Virtual nodes smooth the arc distribution so every
// member owns ≈ 1/N of the key space, and membership changes move only
// the keys whose arcs the joining (or leaving) member touches — the
// property that keeps session-cache hit rates alive across scaling events.
//
// Hashing is FNV-1a over the member name and key bytes: stable across
// process restarts, architectures and Go releases, so a router restart —
// or an independent client doing its own ring routing — reproduces the
// same ownership without coordination.
//
// OwnerBounded adds the bounded-load variant (Mirrokni et al.,
// "Consistent Hashing with Bounded Loads"): a member already carrying
// more than LoadFactor times its fair share of the observed load is
// skipped in ring order, so hot keys spill to their *second* ring choice
// — never a random member — and affinity degrades gradually instead of
// collapsing.
package ring

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// DefaultVirtualNodes is the per-member point count used when Option
// WithVirtualNodes is absent. 160 points per member keeps the largest
// member share within a few tens of percent of 1/N up to dozens of
// members while the ring stays small enough to rebuild on every
// membership change.
const DefaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring over a fixed member set.
// Build one with New; all methods are safe for concurrent use.
type Ring struct {
	vnodes  int
	members []string // sorted, unique
	points  []point  // sorted by hash on the circle
}

type point struct {
	hash   uint64
	member int32 // index into members
}

// Option configures New.
type Option func(*Ring)

// WithVirtualNodes sets the number of points each member places on the
// circle (default DefaultVirtualNodes; values < 1 are ignored).
func WithVirtualNodes(n int) Option {
	return func(r *Ring) {
		if n >= 1 {
			r.vnodes = n
		}
	}
}

// New builds a ring over members (order-insensitive; duplicates and empty
// names are rejected so two independently configured rings can only agree
// or fail loudly).
func New(members []string, opts ...Option) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	r := &Ring{vnodes: DefaultVirtualNodes}
	for _, opt := range opts {
		opt(r)
	}
	r.members = append([]string(nil), members...)
	sort.Strings(r.members)
	for i, m := range r.members {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if i > 0 && r.members[i-1] == m {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
	}
	r.points = make([]point, 0, len(r.members)*r.vnodes)
	for mi, m := range r.members {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(m, v), member: int32(mi)})
		}
	}
	// Ties between points of different members are broken by member name
	// (the members slice is sorted), keeping ownership independent of the
	// order the caller listed the members in.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the member set in sorted order (shared; do not mutate).
func (r *Ring) Members() []string { return r.members }

// VirtualNodes returns the per-member point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner returns the member owning key: the member of the first ring point
// at or after the key's hash, wrapping past the top of the circle.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.search(key)].member]
}

// Owners returns up to n distinct members in ring order starting at key's
// owner — the key's failover preference list. Every member appears at
// most once; n larger than the member count returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// OwnerBounded returns the first member in key's ring order whose current
// load, as reported by load, stays under the bounded-load capacity
// c·ceil((total+1)/N) — the consistent-hashing-with-bounded-loads rule
// with the incoming request counted into the total. Members reported by
// load as negative are skipped entirely (the caller's "not routable"
// signal). When every routable member is at capacity the first routable
// owner is returned: under uniform saturation affinity beats shuffling.
// The second result is false when no member was routable at all.
func (r *Ring) OwnerBounded(key string, c float64, load func(member string) int) (string, bool) {
	if c < 1 {
		c = 1
	}
	total := 0
	routable := 0
	for _, m := range r.members {
		if l := load(m); l >= 0 {
			total += l
			routable++
		}
	}
	if routable == 0 {
		return "", false
	}
	capacity := c * math.Ceil(float64(total+1)/float64(routable))
	first := ""
	for _, m := range r.Owners(key, len(r.members)) {
		l := load(m)
		if l < 0 {
			continue
		}
		if first == "" {
			first = m
		}
		if float64(l) < capacity {
			return m, true
		}
	}
	return first, first != ""
}

// Shares returns each member's exact fraction of the hash circle — the
// probability a uniformly random key lands on it. The fractions sum to 1.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.members))
	const circle = float64(1<<63) * 2 // 2^64 as a float64
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		// The arc (prev, p.hash] belongs to p's member; the first point
		// also owns the wrap-around arc past the top of the circle.
		arc := p.hash - prev // wraps correctly in uint64 for i == 0
		shares[r.members[p.member]] += float64(arc) / circle
	}
	return shares
}

// search returns the index of the first point at or after key's hash,
// wrapping to 0 past the end.
func (r *Ring) search(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// keyHash hashes a routing key onto the circle (FNV-1a with a 64-bit
// finalizer, stable across processes).
func keyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// pointHash hashes one virtual node of a member onto the circle.
func pointHash(member string, vnode int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{'#', byte(vnode), byte(vnode >> 8), byte(vnode >> 16), byte(vnode >> 24)})
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: FNV-1a over short near-sequential
// inputs (member names and vnode counters) leaves enough structure in the
// output to visibly skew arc lengths, and this avalanche pass removes it.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
