package ring

import (
	"fmt"
	"math"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("graph-%d-%x", i, i*2654435761)
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replica-%d", i)
	}
	return out
}

// TestDeterminismAcrossBuilds: two rings built from the same member set —
// in different listing orders, as across process restarts — agree on every
// owner and every preference list.
func TestDeterminismAcrossBuilds(t *testing.T) {
	ms := members(5)
	a, err := New(ms)
	if err != nil {
		t.Fatal(err)
	}
	reversed := []string{ms[4], ms[2], ms[0], ms[3], ms[1]}
	b, err := New(reversed)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across builds: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
		oa, ob := a.Owners(k, 5), b.Owners(k, 5)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("preference list of %q differs at %d: %v vs %v", k, i, oa, ob)
			}
		}
	}
}

// TestBalance: at 3 through 16 replicas every member's share of a large
// key sample stays within ±50% of the fair 1/N share, and the analytic
// Shares agree with the sampled distribution.
func TestBalance(t *testing.T) {
	sample := keys(20000)
	for n := 3; n <= 16; n++ {
		r, err := New(members(n))
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for _, k := range sample {
			counts[r.Owner(k)]++
		}
		fair := float64(len(sample)) / float64(n)
		for _, m := range r.Members() {
			got := float64(counts[m])
			if dev := math.Abs(got-fair) / fair; dev > 0.5 {
				t.Errorf("n=%d: member %s owns %.0f keys, fair %.0f (deviation %.0f%%)", n, m, got, fair, 100*dev)
			}
		}
		shares := r.Shares()
		var sum float64
		for _, m := range r.Members() {
			sum += shares[m]
			sampled := float64(counts[m]) / float64(len(sample))
			if math.Abs(shares[m]-sampled) > 0.05 {
				t.Errorf("n=%d: member %s analytic share %.3f vs sampled %.3f", n, m, shares[m], sampled)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: shares sum to %v, want 1", n, sum)
		}
	}
}

// TestMinimalMovementOnJoin: adding one member moves only keys that land
// on the new member, and no more than about twice its fair share.
func TestMinimalMovementOnJoin(t *testing.T) {
	sample := keys(20000)
	for _, n := range []int{3, 8, 15} {
		before, err := New(members(n))
		if err != nil {
			t.Fatal(err)
		}
		after, err := New(members(n + 1)) // members(n+1) = members(n) plus one
		if err != nil {
			t.Fatal(err)
		}
		joined := fmt.Sprintf("replica-%d", n)
		moved := 0
		for _, k := range sample {
			was, is := before.Owner(k), after.Owner(k)
			if was == is {
				continue
			}
			moved++
			if is != joined {
				t.Fatalf("n=%d: key %q moved %q -> %q, but only the joining member %q may gain keys", n, k, was, is, joined)
			}
		}
		fair := float64(len(sample)) / float64(n+1)
		if float64(moved) > 2*fair {
			t.Errorf("n=%d: join moved %d keys, want <= %.0f (2x fair share)", n, moved, 2*fair)
		}
		if moved == 0 {
			t.Errorf("n=%d: join moved no keys at all", n)
		}
	}
}

// TestMinimalMovementOnLeave: removing one member moves exactly the keys
// it owned, and nothing between the survivors.
func TestMinimalMovementOnLeave(t *testing.T) {
	sample := keys(20000)
	ms := members(8)
	before, err := New(ms)
	if err != nil {
		t.Fatal(err)
	}
	left := ms[3]
	var survivors []string
	for _, m := range ms {
		if m != left {
			survivors = append(survivors, m)
		}
	}
	after, err := New(survivors)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sample {
		was, is := before.Owner(k), after.Owner(k)
		if was == left {
			if is == left {
				t.Fatalf("key %q still owned by removed member", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %q -> %q although its owner never left", k, was, is)
		}
	}
}

// TestOwnersPreferenceList: Owners starts at Owner, lists distinct
// members, and caps at the member count.
func TestOwnersPreferenceList(t *testing.T) {
	r, err := New(members(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		owners := r.Owners(k, 10)
		if len(owners) != 4 {
			t.Fatalf("Owners(%q, 10) = %d members, want 4", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] = %q, Owner = %q", owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range owners {
			if seen[m] {
				t.Fatalf("Owners(%q) repeats %q: %v", k, m, owners)
			}
			seen[m] = true
		}
	}
}

// TestOwnerBounded: an overloaded first choice spills to the second ring
// owner, an unroutable (-1) member is skipped, and uniform saturation
// falls back to the affinity owner.
func TestOwnerBounded(t *testing.T) {
	r, err := New(members(4))
	if err != nil {
		t.Fatal(err)
	}
	key := "graph-under-test"
	prefs := r.Owners(key, 4)

	loads := map[string]int{prefs[0]: 0, prefs[1]: 0, prefs[2]: 0, prefs[3]: 0}
	loadOf := func(m string) int { return loads[m] }

	if got, ok := r.OwnerBounded(key, 1.25, loadOf); !ok || got != prefs[0] {
		t.Fatalf("idle ring: OwnerBounded = %q, %v; want primary %q", got, ok, prefs[0])
	}
	// Pile load on the primary only: it exceeds c*ceil((total+1)/N) and the
	// key spills to the second ring choice — not to a random member.
	loads[prefs[0]] = 100
	if got, ok := r.OwnerBounded(key, 1.25, loadOf); !ok || got != prefs[1] {
		t.Fatalf("hot primary: OwnerBounded = %q, %v; want second owner %q", got, ok, prefs[1])
	}
	// Unroutable primary and second choice: third owner wins.
	loads[prefs[0]] = -1
	loads[prefs[1]] = -1
	if got, ok := r.OwnerBounded(key, 1.25, loadOf); !ok || got != prefs[2] {
		t.Fatalf("two down: OwnerBounded = %q, %v; want third owner %q", got, ok, prefs[2])
	}
	// Uniform saturation: every routable member is at capacity, so the
	// first routable owner keeps the key (affinity over shuffling).
	loads[prefs[0]] = -1
	loads[prefs[1]] = 50
	loads[prefs[2]] = 50
	loads[prefs[3]] = 50
	if got, ok := r.OwnerBounded(key, 1.0, loadOf); !ok || got != prefs[1] {
		t.Fatalf("saturated: OwnerBounded = %q, %v; want first routable owner %q", got, ok, prefs[1])
	}
	// Nothing routable at all.
	for m := range loads {
		loads[m] = -1
	}
	if got, ok := r.OwnerBounded(key, 1.25, loadOf); ok {
		t.Fatalf("all down: OwnerBounded = %q, ok=true; want ok=false", got)
	}
}

// TestNewRejectsBadMemberSets: empty sets, empty names and duplicates are
// configuration mistakes, not runtime states.
func TestNewRejectsBadMemberSets(t *testing.T) {
	for _, ms := range [][]string{nil, {}, {""}, {"a", "a"}, {"a", "", "b"}} {
		if _, err := New(ms); err == nil {
			t.Errorf("New(%q) succeeded, want error", ms)
		}
	}
}

// FuzzOwner: for arbitrary keys the owner is always a member, the
// preference list is a permutation prefix of the member set starting at
// the owner, and an independently built ring agrees.
func FuzzOwner(f *testing.F) {
	f.Add("graph-abc123")
	f.Add("")
	f.Add("\x00\xff\x00")
	ms := members(6)
	r, err := New(ms)
	if err != nil {
		f.Fatal(err)
	}
	twin, err := New([]string{ms[5], ms[3], ms[1], ms[4], ms[2], ms[0]})
	if err != nil {
		f.Fatal(err)
	}
	valid := map[string]bool{}
	for _, m := range ms {
		valid[m] = true
	}
	f.Fuzz(func(t *testing.T, key string) {
		owner := r.Owner(key)
		if !valid[owner] {
			t.Fatalf("Owner(%q) = %q, not a member", key, owner)
		}
		if twin.Owner(key) != owner {
			t.Fatalf("rings disagree on %q: %q vs %q", key, owner, twin.Owner(key))
		}
		owners := r.Owners(key, len(ms))
		if len(owners) != len(ms) || owners[0] != owner {
			t.Fatalf("Owners(%q) = %v, want all %d members starting at %q", key, owners, len(ms), owner)
		}
		seen := map[string]bool{}
		for _, m := range owners {
			if !valid[m] || seen[m] {
				t.Fatalf("Owners(%q) = %v: invalid or repeated member %q", key, owners, m)
			}
			seen[m] = true
		}
		if b, ok := r.OwnerBounded(key, 1.25, func(string) int { return 0 }); !ok || b != owner {
			t.Fatalf("OwnerBounded on an idle ring = %q, %v; want owner %q", b, ok, owner)
		}
	})
}
