package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/serve"
)

// routerMetrics collects the router's counters and upstream latency
// histograms for its Prometheus-format /metrics endpoint. Like package
// serve's exposition it is dependency-free text output, sorted so
// scrapes diff cleanly.
type routerMetrics struct {
	requests    atomic.Uint64
	unroutable  atomic.Uint64
	rateLimited atomic.Uint64
	shed        atomic.Uint64

	mu         sync.Mutex
	forwarded  map[string]uint64 // by replica id
	failovers  map[string]uint64 // failed attempts routed past, by replica id
	spillovers map[string]uint64 // backpressure spills past, by replica id
	upstream   map[string]*upstreamHist
}

// upstreamBuckets mirror serve's request-latency buckets (seconds, plus
// the implicit +Inf): sub-millisecond warm schedules up to multi-second
// sweeps, as seen from the router.
var upstreamBuckets = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type upstreamHist struct {
	buckets [len(upstreamBuckets) + 1]uint64
	count   uint64
	sum     float64
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		forwarded:  make(map[string]uint64),
		failovers:  make(map[string]uint64),
		spillovers: make(map[string]uint64),
		upstream:   make(map[string]*upstreamHist),
	}
}

func (m *routerMetrics) forward(id string, d time.Duration) {
	sec := d.Seconds()
	idx := len(upstreamBuckets)
	for i, le := range upstreamBuckets {
		if sec <= le {
			idx = i
			break
		}
	}
	m.mu.Lock()
	m.forwarded[id]++
	h := m.upstream[id]
	if h == nil {
		h = &upstreamHist{}
		m.upstream[id] = h
	}
	h.buckets[idx]++
	h.count++
	h.sum += sec
	m.mu.Unlock()
}

func (m *routerMetrics) failover(id string) {
	m.mu.Lock()
	m.failovers[id]++
	m.mu.Unlock()
}

func (m *routerMetrics) spillover(id string) {
	m.mu.Lock()
	m.spillovers[id]++
	m.mu.Unlock()
}

func sortedKeys(mm map[string]uint64) []string {
	keys := make([]string, 0, len(mm))
	for k := range mm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// render writes the full router exposition; shares, statuses and loads
// carry the ring, health and in-flight state owned by the Router.
func (m *routerMetrics) render(w *strings.Builder, shares map[string]float64, statuses []ReplicaStatus, loads map[string]int64, inFlight int64, uptime time.Duration) {
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("memschedd_router_requests_total", "Requests received by the router.")
	fmt.Fprintf(w, "memschedd_router_requests_total %d\n", m.requests.Load())

	m.mu.Lock()
	counter("memschedd_router_forwarded_total", "Requests forwarded, by serving replica.")
	for _, id := range sortedKeys(m.forwarded) {
		fmt.Fprintf(w, "memschedd_router_forwarded_total{replica=%q} %d\n", id, m.forwarded[id])
	}
	counter("memschedd_router_failovers_total", "Attempts routed past a replica that failed or was draining.")
	for _, id := range sortedKeys(m.failovers) {
		fmt.Fprintf(w, "memschedd_router_failovers_total{replica=%q} %d\n", id, m.failovers[id])
	}
	counter("memschedd_router_spillovers_total", "Requests spilled past a backpressuring or over-loaded replica to a later ring owner.")
	for _, id := range sortedKeys(m.spillovers) {
		fmt.Fprintf(w, "memschedd_router_spillovers_total{replica=%q} %d\n", id, m.spillovers[id])
	}
	fmt.Fprintf(w, "# HELP memschedd_router_upstream_duration_seconds Forwarded-request latency as seen by the router, by replica.\n")
	fmt.Fprintf(w, "# TYPE memschedd_router_upstream_duration_seconds histogram\n")
	histIDs := make([]string, 0, len(m.upstream))
	for id := range m.upstream {
		histIDs = append(histIDs, id)
	}
	sort.Strings(histIDs)
	for _, id := range histIDs {
		h := m.upstream[id]
		cum := uint64(0)
		for i, le := range upstreamBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(w, "memschedd_router_upstream_duration_seconds_bucket{replica=%q,le=\"%g\"} %d\n", id, le, cum)
		}
		fmt.Fprintf(w, "memschedd_router_upstream_duration_seconds_bucket{replica=%q,le=\"+Inf\"} %d\n", id, h.count)
		fmt.Fprintf(w, "memschedd_router_upstream_duration_seconds_sum{replica=%q} %g\n", id, h.sum)
		fmt.Fprintf(w, "memschedd_router_upstream_duration_seconds_count{replica=%q} %d\n", id, h.count)
	}
	m.mu.Unlock()

	counter("memschedd_router_unroutable_total", "Requests refused because no replica was routable.")
	fmt.Fprintf(w, "memschedd_router_unroutable_total %d\n", m.unroutable.Load())
	counter("memschedd_router_rate_limited_total", "Requests refused by the router's rate limiter (429, code \"rate_limited\").")
	fmt.Fprintf(w, "memschedd_router_rate_limited_total %d\n", m.rateLimited.Load())
	counter("memschedd_router_shed_total", "Requests refused by the router's concurrency limit (429, code \"shed\").")
	fmt.Fprintf(w, "memschedd_router_shed_total %d\n", m.shed.Load())

	gauge("memschedd_router_replica_healthy", "1 while the replica passes health checks, by replica.")
	for _, st := range statuses {
		fmt.Fprintf(w, "memschedd_router_replica_healthy{replica=%q} %d\n", st.ID, b2i(st.Healthy))
	}
	gauge("memschedd_router_replica_draining", "1 while the replica reports draining, by replica.")
	for _, st := range statuses {
		fmt.Fprintf(w, "memschedd_router_replica_draining{replica=%q} %d\n", st.ID, b2i(st.Draining))
	}
	gauge("memschedd_router_replica_load", "Requests currently forwarded to the replica and not yet answered.")
	loadIDs := make([]string, 0, len(loads))
	for id := range loads {
		loadIDs = append(loadIDs, id)
	}
	sort.Strings(loadIDs)
	for _, id := range loadIDs {
		fmt.Fprintf(w, "memschedd_router_replica_load{replica=%q} %d\n", id, loads[id])
	}
	gauge("memschedd_router_ring_share", "Exact fraction of the key space the replica's ring arcs own.")
	shareIDs := make([]string, 0, len(shares))
	for id := range shares {
		shareIDs = append(shareIDs, id)
	}
	sort.Strings(shareIDs)
	for _, id := range shareIDs {
		fmt.Fprintf(w, "memschedd_router_ring_share{replica=%q} %g\n", id, shares[id])
	}
	gauge("memschedd_router_in_flight", "Requests currently inside the router.")
	fmt.Fprintf(w, "memschedd_router_in_flight %d\n", inFlight)
	gauge("memschedd_router_uptime_seconds", "Seconds since the router was constructed.")
	fmt.Fprintf(w, "memschedd_router_uptime_seconds %g\n", uptime.Seconds())
	serve.WriteRuntimeMetrics(w)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	loads := make(map[string]int64, len(rt.load))
	for id, l := range rt.load {
		loads[id] = l.Load()
	}
	var b strings.Builder
	rt.prom.render(&b, rt.ring.Shares(), rt.health.Snapshot(), loads, rt.inFlight.Load(), time.Since(rt.start))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
