package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	memsched "repro"
	"repro/cluster"
	"repro/cluster/ring"
	"repro/serve"
)

// testReplica is one live memschedd replica behind an httptest listener.
type testReplica struct {
	id  string
	ts  *httptest.Server
	srv *serve.Server
}

// kill severs the replica abruptly: the listener stops accepting and
// every open connection is cut, like a crashed process — ts.Close would
// instead wait politely for in-flight requests.
func (r *testReplica) kill() {
	_ = r.ts.Listener.Close()
	r.ts.CloseClientConnections()
}

func startReplica(t *testing.T, id string, cfg serve.Config) *testReplica {
	t.Helper()
	cfg.ReplicaID = id
	srv := serve.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testReplica{id: id, ts: ts, srv: srv}
}

// startCluster spins up one replica per id (cfgFor may be nil for all
// defaults) and a router over them, served from its own httptest
// listener. It returns a client pointed at the router, the router, its
// base URL, and the replicas by id.
func startCluster(t *testing.T, ids []string, cfgFor func(id string) serve.Config, rcfg cluster.Config) (*serve.Client, *cluster.Router, string, map[string]*testReplica) {
	t.Helper()
	reps := make(map[string]*testReplica, len(ids))
	for _, id := range ids {
		var cfg serve.Config
		if cfgFor != nil {
			cfg = cfgFor(id)
		}
		rep := startReplica(t, id, cfg)
		reps[id] = rep
		rcfg.Replicas = append(rcfg.Replicas, cluster.Replica{ID: id, URL: rep.ts.URL})
	}
	rt, err := cluster.NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return serve.NewClient(rts.URL), rt, rts.URL, reps
}

// randGraph generates a distinct small graph per seed.
func randGraph(t *testing.T, size int, seed int64) *memsched.Graph {
	t.Helper()
	params := memsched.SmallRandParams()
	params.Size = size
	g, err := memsched.GenerateRandom(params, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// ownerOf reproduces the router's routing decision for a key: the same
// ring the router builds over the replica ids.
func ownerOf(t *testing.T, ids []string, key string) string {
	t.Helper()
	rg, err := ring.New(ids)
	if err != nil {
		t.Fatal(err)
	}
	return rg.Owner(key)
}

// scrapeMetric fetches url/metrics and sums the values of all series of
// the named metric (optionally filtered by a label substring).
func scrapeMetric(t *testing.T, base, name, labelSub string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	total := 0.0
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer metric name sharing this prefix
		}
		if labelSub != "" && !strings.Contains(rest, labelSub) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest[strings.LastIndex(rest, " ")+1:], "%g", &v); err == nil {
			total += v
		}
	}
	return total
}

func TestParseReplicas(t *testing.T) {
	reps, err := cluster.ParseReplicas("a=http://10.0.0.1:8080, b=http://10.0.0.2:8080/")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.Replica{{ID: "a", URL: "http://10.0.0.1:8080"}, {ID: "b", URL: "http://10.0.0.2:8080"}}
	if len(reps) != 2 || reps[0] != want[0] || reps[1] != want[1] {
		t.Fatalf("parsed %+v, want %+v", reps, want)
	}

	// Bare URLs double as ids.
	reps, err = cluster.ParseReplicas("http://127.0.0.1:8081,https://h2:8082")
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].ID != "http://127.0.0.1:8081" || reps[1].ID != "https://h2:8082" {
		t.Fatalf("bare-url ids wrong: %+v", reps)
	}

	for name, spec := range map[string]string{
		"empty":        "",
		"empty entry":  "a=http://h:1,,b=http://h:2",
		"dup id":       "a=http://h:1,a=http://h:2",
		"no scheme":    "a=h:1",
		"path":         "a=http://h:1/v1",
		"empty id":     "=http://h:1",
		"dup bare url": "http://h:1,http://h:1",
	} {
		if _, err := cluster.ParseReplicas(spec); err == nil {
			t.Errorf("%s: ParseReplicas(%q) accepted", name, spec)
		}
	}
}

// TestRouterAffinity drives several distinct graphs through a 3-replica
// router and checks the cluster behaves like one big cache: every graph's
// session lives on exactly one replica, repeat requests hit it warm, and
// the answers are bit-identical to a standalone server's.
func TestRouterAffinity(t *testing.T) {
	ids := []string{"a", "b", "c"}
	client, _, routerURL, reps := startCluster(t, ids, nil, cluster.Config{})
	solo, _ := newSoloServer(t)
	ctx := context.Background()

	const graphs = 8
	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	for seed := int64(0); seed < graphs; seed++ {
		g := randGraph(t, 40, seed)
		reg, err := client.RegisterGraph(ctx, g, nil)
		if err != nil {
			t.Fatalf("register graph %d: %v", seed, err)
		}
		// Scheduling by id succeeds only on the replica that registered
		// the graph — routing consistency between the two endpoints is
		// load-bearing here, not just an optimisation.
		req := serve.ScheduleRequest{GraphID: reg.ID, Pools: pools, Scheduler: "memheft"}
		got, err := client.Schedule(ctx, req)
		if err != nil {
			t.Fatalf("schedule graph %d by id: %v", seed, err)
		}
		if !got.SessionCached {
			t.Fatalf("graph %d: schedule after register missed the session cache", seed)
		}
		// Same request on a standalone server: the routed answer must be
		// bit-identical (same engine, same canonical session).
		sreg, err := solo.RegisterGraph(ctx, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.GraphID = sreg.ID
		want, err := solo.Schedule(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Makespan != want.Makespan || fmt.Sprint(got.Peaks) != fmt.Sprint(want.Peaks) || got.GraphID != want.GraphID {
			t.Fatalf("graph %d: routed schedule diverged: got %v/%v, want %v/%v",
				seed, got.Makespan, got.Peaks, want.Makespan, want.Peaks)
		}
	}

	// Each graph resident on exactly one replica; together the replicas
	// hold all of them.
	total, spread := 0, 0
	for _, rep := range reps {
		st := rep.srv.Stats()
		total += st.SessionsCached
		if st.SessionsCached > 0 {
			spread++
		}
	}
	if total != graphs {
		t.Fatalf("cluster holds %d sessions, want %d (one per graph, no duplicates)", total, graphs)
	}
	if spread < 2 {
		t.Fatalf("all sessions on %d replica(s); the ring should spread %d graphs", spread, graphs)
	}

	// Unkeyed GETs pass through.
	if _, err := client.Schedulers(ctx); err != nil {
		t.Fatalf("schedulers via router: %v", err)
	}
	if _, err := client.Stats(ctx); err != nil {
		t.Fatalf("stats via router: %v", err)
	}
	if n := scrapeMetric(t, routerURL, "memschedd_router_forwarded_total", ""); n < graphs*2 {
		t.Fatalf("router forwarded %g requests, want >= %d", n, graphs*2)
	}
}

func newSoloServer(t *testing.T) (*serve.Client, *serve.Server) {
	t.Helper()
	srv := serve.NewServer(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return serve.NewClient(ts.URL), srv
}

// TestRouterFailover kills one replica and checks every request still
// succeeds via the next ring owner, the router counts the failovers, and
// the health checker takes the replica out of rotation.
func TestRouterFailover(t *testing.T) {
	ids := []string{"a", "b", "c"}
	client, rt, routerURL, reps := startCluster(t, ids, nil, cluster.Config{})
	ctx := context.Background()

	const graphs = 6
	raws := make([]json.RawMessage, graphs)
	keys := make([]string, graphs)
	for seed := int64(0); seed < graphs; seed++ {
		raw, err := json.Marshal(randGraph(t, 40, seed))
		if err != nil {
			t.Fatal(err)
		}
		raws[seed] = raw
		key, err := serve.GraphKey(raw, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[seed] = key
	}

	victim := ownerOf(t, ids, keys[0])
	reps[victim].kill()

	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	for i, raw := range raws {
		if _, err := client.Schedule(ctx, serve.ScheduleRequest{Graph: raw, Pools: pools}); err != nil {
			t.Fatalf("schedule graph %d with replica %s dead: %v", i, victim, err)
		}
	}

	if n := scrapeMetric(t, routerURL, "memschedd_router_failovers_total", fmt.Sprintf("replica=%q", victim)); n < 1 {
		t.Fatalf("no failovers counted against dead replica %s", victim)
	}
	// Graph 0's owner was the victim, so at least its requests were
	// served by a live replica; nothing may have been lost.
	if rt.Health().Routable(victim) {
		// Two passive failures (FailAfter default) must have been
		// observed across 6 requests — graph 0 alone retried it once.
		t.Fatalf("replica %s still routable after repeated transport failures", victim)
	}

	// The router's own healthz reports the degradation without failing.
	resp, err := http.Get(routerURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rh cluster.RouterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&rh); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rh.Status != "degraded" {
		t.Fatalf("router healthz = %d %q, want 200 degraded", resp.StatusCode, rh.Status)
	}
}

// TestRouterSweepFailoverExactlyOnce kills the replica serving a sweep
// stream mid-flight. The truncated stream must surface to the client,
// whose retry — back through the router, which now fails over to the
// next ring owner — resumes the stream with every point delivered to
// onPoint exactly once.
func TestRouterSweepFailoverExactlyOnce(t *testing.T) {
	ids := []string{"a", "b", "c"}
	_, _, routerURL, reps := startCluster(t, ids, nil, cluster.Config{})
	ctx := context.Background()

	// A graph big enough that each sweep point takes real time, so the
	// kill below lands mid-stream instead of after the whole response
	// has already been buffered.
	raw, err := json.Marshal(randGraph(t, 3000, 7))
	if err != nil {
		t.Fatal(err)
	}
	key, err := serve.GraphKey(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := ownerOf(t, ids, key)

	retrying := serve.NewClient(routerURL, serve.WithRetry(serve.RetryPolicy{
		MaxAttempts: 5, BaseDelay: 5 * time.Millisecond,
	}))

	var kill sync.Once
	seen := make(map[int]int)
	sum, err := retrying.Sweep(ctx, serve.SweepRequest{
		Graph:      raw,
		Pools:      []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		Alphas:     sweepAlphas(8),
		Schedulers: []string{"memheft", "memminmin"},
		Workers:    1,
	}, func(pt serve.SweepPoint) error {
		seen[pt.Index]++
		kill.Do(func() { reps[victim].kill() })
		return nil
	})
	if err != nil {
		t.Fatalf("sweep with mid-stream replica kill: %v", err)
	}
	if sum == nil || sum.Points != 16 {
		t.Fatalf("sweep summary = %+v, want 16 points", sum)
	}
	for i := 0; i < sum.Points; i++ {
		if seen[i] != 1 {
			t.Fatalf("point %d delivered %d times, want exactly once (seen=%v)", i, seen[i], seen)
		}
	}
	if n := scrapeMetric(t, routerURL, "memschedd_router_failovers_total", fmt.Sprintf("replica=%q", victim)); n < 1 {
		t.Fatalf("no failover counted against killed sweep owner %s", victim)
	}
}

func sweepAlphas(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) / float64(n)
	}
	return out
}

// TestRouterSpilloverOn429 saturates a graph's owner with a near-zero
// rate limit and checks the router spills the refused request to the
// key's second ring owner instead of bouncing the 429 to the client.
func TestRouterSpilloverOn429(t *testing.T) {
	ids := []string{"a", "b"}
	raw, err := json.Marshal(randGraph(t, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	key, err := serve.GraphKey(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	owner := ownerOf(t, ids, key)

	client, _, routerURL, reps := startCluster(t, ids, func(id string) serve.Config {
		if id == owner {
			return serve.Config{RateLimit: 0.0001, RateBurst: 1}
		}
		return serve.Config{}
	}, cluster.Config{})
	ctx := context.Background()

	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	// First request consumes the owner's only token...
	if _, err := client.Schedule(ctx, serve.ScheduleRequest{Graph: raw, Pools: pools}); err != nil {
		t.Fatalf("first schedule: %v", err)
	}
	// ...so the second is 429ed by the owner and must succeed by
	// spilling to the other replica, invisibly to the client.
	if _, err := client.Schedule(ctx, serve.ScheduleRequest{Graph: raw, Pools: pools}); err != nil {
		t.Fatalf("second schedule (owner saturated): %v", err)
	}

	if n := scrapeMetric(t, routerURL, "memschedd_router_spillovers_total", fmt.Sprintf("replica=%q", owner)); n < 1 {
		t.Fatalf("no spillover counted against saturated owner %s", owner)
	}
	for _, id := range ids {
		if id != owner && reps[id].srv.Stats().Scheduled < 1 {
			t.Fatalf("second-choice replica %s served nothing", id)
		}
	}
}

// TestClusterClient routes client-side over the same ring: requests for
// one graph always land on one replica, regardless of the order the
// client was given the URLs in.
func TestClusterClient(t *testing.T) {
	ctx := context.Background()
	var urls []string
	var reps []*testReplica
	for _, id := range []string{"a", "b", "c"} {
		rep := startReplica(t, id, serve.Config{})
		reps = append(reps, rep)
		urls = append(urls, rep.ts.URL)
	}

	fwd, err := serve.NewClusterClient(urls)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := serve.NewClusterClient([]string{urls[2], urls[0], urls[1]})
	if err != nil {
		t.Fatal(err)
	}

	g := randGraph(t, 40, 11)
	reg, err := fwd.RegisterGraph(ctx, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	// A differently-ordered client agrees on the owner: scheduling by id
	// finds the registered graph (a disagreement would 404) warm.
	got, err := rev.Schedule(ctx, serve.ScheduleRequest{GraphID: reg.ID, Pools: pools})
	if err != nil {
		t.Fatalf("schedule via reordered cluster client: %v", err)
	}
	if !got.SessionCached {
		t.Fatal("reordered client missed the owner's warm session")
	}
	holders := 0
	for _, rep := range reps {
		if rep.srv.Stats().SessionsCached > 0 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("graph resident on %d replicas, want exactly 1", holders)
	}
}
