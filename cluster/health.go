package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/serve"
)

// HealthConfig tunes the replica health checker. The zero value gets
// sensible defaults from NewHealth.
type HealthConfig struct {
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout bounds one probe request (default Interval, capped at 2s).
	Timeout time.Duration
	// FailAfter is the consecutive-failure count that marks a replica
	// down (default 2): one lost probe is noise, two in a row is an
	// outage. Passive failures reported by the router via ObserveFailure
	// count toward the same threshold, so a dead replica under load is
	// detected at request rate, not probe rate.
	FailAfter int
	// RiseAfter is the consecutive-success count that marks a down
	// replica up again (default 2). The asymmetry with the instant
	// draining signal is deliberate: coming back too eagerly flaps
	// traffic onto a replica that is still crash-looping.
	RiseAfter int
	// Client issues the probes (default: a dedicated client honouring
	// Timeout).
	Client *http.Client
	// Logf logs health transitions (default log.Printf-compatible no-op).
	Logf func(format string, args ...any)
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
		if c.Timeout > 2*time.Second {
			c.Timeout = 2 * time.Second
		}
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RiseAfter <= 0 {
		c.RiseAfter = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ReplicaStatus is one replica's view in a Health snapshot (and the
// router's /healthz body).
type ReplicaStatus struct {
	Replica
	// Healthy reflects the hysteresis state machine; Draining the
	// replica's own drain signal. A replica is routable only when
	// Healthy && !Draining.
	Healthy  bool `json:"healthy"`
	Draining bool `json:"draining"`
	// Failures is the current consecutive-failure count (probes plus
	// passive router observations).
	Failures int    `json:"consecutive_failures,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
	// Health is the replica's last decoded /healthz body (zero until the
	// first successful probe) — per-replica cache state for operators and
	// load reports.
	Health serve.HealthResponse `json:"health"`
}

// Health tracks liveness and drain state for a replica set by probing
// GET /healthz, with hysteresis on both transitions. Replicas start
// healthy (optimistic): a cold router must route before its first probe
// round completes, and a wrong guess costs one failover, not an outage.
type Health struct {
	cfg      HealthConfig
	replicas []Replica
	mu       sync.Mutex
	states   map[string]*replicaState
}

type replicaState struct {
	healthy  bool
	draining bool
	fails    int // consecutive failures (probe or passive)
	oks      int // consecutive successful probes while down
	lastErr  string
	last     serve.HealthResponse
}

// NewHealth builds a checker over replicas; call Run (or ProbeAll) to
// feed it.
func NewHealth(replicas []Replica, cfg HealthConfig) *Health {
	h := &Health{cfg: cfg.withDefaults(), replicas: replicas, states: make(map[string]*replicaState, len(replicas))}
	for _, r := range replicas {
		h.states[r.ID] = &replicaState{healthy: true}
	}
	return h
}

// Run probes every replica once immediately, then every Interval until
// ctx ends.
func (h *Health) Run(ctx context.Context) {
	h.ProbeAll(ctx)
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.ProbeAll(ctx)
		}
	}
}

// ProbeAll runs one probe round over all replicas in parallel and
// returns when every probe has resolved.
func (h *Health) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range h.replicas {
		wg.Add(1)
		go func(rep Replica) {
			defer wg.Done()
			h.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

func (h *Health) probe(ctx context.Context, rep Replica) {
	pctx, cancel := context.WithTimeout(ctx, h.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.URL+"/healthz", nil)
	if err != nil {
		h.recordFailure(rep.ID, err.Error())
		return
	}
	resp, err := h.cfg.Client.Do(req)
	if err != nil {
		h.recordFailure(rep.ID, err.Error())
		return
	}
	defer resp.Body.Close()
	var hr serve.HealthResponse
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hr)
	switch {
	case resp.StatusCode == http.StatusOK && decodeErr == nil && !hr.Draining:
		h.recordSuccess(rep.ID, hr)
	case decodeErr == nil && hr.Draining:
		// An explicit, unambiguous signal from a live replica — no
		// hysteresis, it is unroutable right now.
		h.recordDraining(rep.ID, hr)
	default:
		h.recordFailure(rep.ID, fmt.Sprintf("probe status %s", resp.Status))
	}
}

// ObserveFailure feeds a passive data-path failure (transport error on a
// forwarded request) into the same hysteresis counter the prober uses.
func (h *Health) ObserveFailure(id string) { h.recordFailure(id, "forwarded request failed") }

// ObserveDraining marks a replica draining on the data path's evidence
// (a 503 with code "draining") without waiting for the next probe.
func (h *Health) ObserveDraining(id string) { h.recordDraining(id, serve.HealthResponse{}) }

// Routable reports whether requests may be sent to replica id: healthy
// per hysteresis and not draining.
func (h *Health) Routable(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[id]
	return ok && st.healthy && !st.draining
}

// Snapshot returns every replica's current status, in configured order.
func (h *Health) Snapshot() []ReplicaStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ReplicaStatus, 0, len(h.replicas))
	for _, rep := range h.replicas {
		st := h.states[rep.ID]
		out = append(out, ReplicaStatus{
			Replica: rep, Healthy: st.healthy, Draining: st.draining,
			Failures: st.fails, LastErr: st.lastErr, Health: st.last,
		})
	}
	return out
}

func (h *Health) recordSuccess(id string, hr serve.HealthResponse) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[id]
	if !ok {
		return
	}
	st.fails, st.lastErr, st.last = 0, "", hr
	if st.draining {
		st.draining = false
		h.cfg.Logf("cluster: replica %s stopped draining", id)
	}
	if !st.healthy {
		st.oks++
		if st.oks >= h.cfg.RiseAfter {
			st.healthy = true
			h.cfg.Logf("cluster: replica %s healthy again (%d consecutive probes)", id, st.oks)
		}
	}
}

func (h *Health) recordFailure(id, reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[id]
	if !ok {
		return
	}
	st.oks, st.lastErr = 0, reason
	st.fails++
	if st.healthy && st.fails >= h.cfg.FailAfter {
		st.healthy = false
		h.cfg.Logf("cluster: replica %s marked down after %d consecutive failures: %s", id, st.fails, reason)
	}
}

func (h *Health) recordDraining(id string, hr serve.HealthResponse) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[id]
	if !ok {
		return
	}
	if !st.draining {
		h.cfg.Logf("cluster: replica %s draining", id)
	}
	st.draining = true
	// The replica answered, so this is not a liveness failure; remember
	// its last self-report if it sent one.
	st.fails, st.oks = 0, 0
	if hr.Status != "" {
		st.last = hr
	}
}
