package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics collects per-endpoint request counters and latency histograms for
// the Prometheus-format GET /metrics endpoint. The implementation is
// dependency-free: the text exposition format is a few lines of stable,
// sorted output, which is all a scraper needs.
type metrics struct {
	mu       sync.Mutex
	requests map[reqKey]uint64
	hist     map[string]*histogram
	// Per-workload-class breakdowns, fed by the X-Workload-Class request
	// header. The class label set is capped at maxClassLabels; classes past
	// the cap are folded into "other" so an adversarial client cannot grow
	// the exposition without bound.
	classReqs map[reqKey]uint64
	classHist map[string]*histogram
}

type reqKey struct {
	endpoint string
	code     int
}

// maxClassLabels bounds the distinct workload-class label values kept in
// the registry (matching workload.MaxClasses, plus headroom for "other").
const maxClassLabels = 64

// latencyBuckets are the histogram upper bounds in seconds (plus the
// implicit +Inf bucket): sub-millisecond warm schedules up to multi-second
// sweeps.
var latencyBuckets = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type histogram struct {
	buckets [len(latencyBuckets) + 1]uint64 // cumulative at render time; raw per-bucket here
	count   uint64
	sum     float64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[reqKey]uint64),
		hist:      make(map[string]*histogram),
		classReqs: make(map[reqKey]uint64),
		classHist: make(map[string]*histogram),
	}
}

// bucketIndex maps a latency to its histogram bucket.
func bucketIndex(sec float64) int {
	for i, le := range latencyBuckets {
		if sec <= le {
			return i
		}
	}
	return len(latencyBuckets)
}

// observe records one finished request; class is the caller's workload
// class label ("" when the request carried none).
func (m *metrics) observe(endpoint string, class string, code int, d time.Duration) {
	sec := d.Seconds()
	idx := bucketIndex(sec)
	m.mu.Lock()
	m.requests[reqKey{endpoint, code}]++
	h := m.hist[endpoint]
	if h == nil {
		h = &histogram{}
		m.hist[endpoint] = h
	}
	h.buckets[idx]++
	h.count++
	h.sum += sec
	if class != "" {
		if _, known := m.classHist[class]; !known && len(m.classHist) >= maxClassLabels {
			class = "other"
		}
		m.classReqs[reqKey{class, code}]++
		ch := m.classHist[class]
		if ch == nil {
			ch = &histogram{}
			m.classHist[class] = ch
		}
		ch.buckets[idx]++
		ch.count++
		ch.sum += sec
	}
	m.mu.Unlock()
}

// endpoints the middleware labels explicitly; everything else is "other" so
// the label set stays bounded no matter what paths clients probe.
var knownEndpoints = map[string]bool{
	"/v1/graphs":     true,
	"/v1/schedule":   true,
	"/v1/simulate":   true,
	"/v1/sweep":      true,
	"/v1/schedulers": true,
	"/v1/stats":      true,
	"/healthz":       true,
	"/metrics":       true,
	"/debug/traces":  true,
}

func endpointLabel(path string) string {
	if knownEndpoints[path] {
		return path
	}
	return "other"
}

// render writes the full exposition: the request counters and latency
// histograms collected here plus the server gauges passed in. Output is
// sorted so scrapes diff cleanly.
func (m *metrics) render(w *strings.Builder, st StatsResponse) {
	m.mu.Lock()
	reqKeys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	histKeys := make([]string, 0, len(m.hist))
	for k := range m.hist {
		histKeys = append(histKeys, k)
	}
	sort.Strings(histKeys)
	classKeys := make([]reqKey, 0, len(m.classReqs))
	for k := range m.classReqs {
		classKeys = append(classKeys, k)
	}
	sort.Slice(classKeys, func(i, j int) bool {
		if classKeys[i].endpoint != classKeys[j].endpoint {
			return classKeys[i].endpoint < classKeys[j].endpoint
		}
		return classKeys[i].code < classKeys[j].code
	})
	classHistKeys := make([]string, 0, len(m.classHist))
	for k := range m.classHist {
		classHistKeys = append(classHistKeys, k)
	}
	sort.Strings(classHistKeys)

	fmt.Fprintf(w, "# HELP memschedd_requests_total Requests served, by endpoint and HTTP status code.\n")
	fmt.Fprintf(w, "# TYPE memschedd_requests_total counter\n")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "memschedd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	fmt.Fprintf(w, "# HELP memschedd_request_duration_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE memschedd_request_duration_seconds histogram\n")
	for _, k := range histKeys {
		h := m.hist[k]
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(w, "memschedd_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", k, le, cum)
		}
		fmt.Fprintf(w, "memschedd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", k, h.count)
		fmt.Fprintf(w, "memschedd_request_duration_seconds_sum{endpoint=%q} %g\n", k, h.sum)
		fmt.Fprintf(w, "memschedd_request_duration_seconds_count{endpoint=%q} %d\n", k, h.count)
	}
	if len(classKeys) > 0 {
		fmt.Fprintf(w, "# HELP memschedd_class_requests_total Requests served, by workload class (X-Workload-Class) and HTTP status code.\n")
		fmt.Fprintf(w, "# TYPE memschedd_class_requests_total counter\n")
		for _, k := range classKeys {
			fmt.Fprintf(w, "memschedd_class_requests_total{class=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.classReqs[k])
		}
		fmt.Fprintf(w, "# HELP memschedd_class_request_duration_seconds Request latency, by workload class.\n")
		fmt.Fprintf(w, "# TYPE memschedd_class_request_duration_seconds histogram\n")
		for _, k := range classHistKeys {
			h := m.classHist[k]
			cum := uint64(0)
			for i, le := range latencyBuckets {
				cum += h.buckets[i]
				fmt.Fprintf(w, "memschedd_class_request_duration_seconds_bucket{class=%q,le=\"%g\"} %d\n", k, le, cum)
			}
			fmt.Fprintf(w, "memschedd_class_request_duration_seconds_bucket{class=%q,le=\"+Inf\"} %d\n", k, h.count)
			fmt.Fprintf(w, "memschedd_class_request_duration_seconds_sum{class=%q} %g\n", k, h.sum)
			fmt.Fprintf(w, "memschedd_class_request_duration_seconds_count{class=%q} %d\n", k, h.count)
		}
	}
	m.mu.Unlock()

	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("memschedd_scheduled_total", "Scheduling runs that produced a schedule.", st.Scheduled)
	counter("memschedd_sweep_points_total", "Sweep point results streamed to clients.", st.SweepPoints)
	counter("memschedd_sweep_replayed_placements_total", "Placements committed by verified warm-start replay across sweep points.", st.SweepReplayedPlacements)
	counter("memschedd_sweep_replay_truncated_points_total", "Sweep points whose warm-start replay stopped before exhausting its trace.", st.SweepReplayTruncatedPoints)
	counter("memschedd_session_cache_hits_total", "Session cache hits on the schedule path.", st.SessionHits)
	counter("memschedd_session_cache_misses_total", "Session cache misses on the schedule path.", st.SessionMisses)
	counter("memschedd_session_cache_evictions_total", "Sessions displaced from the full LRU cache.", st.SessionEvictions)
	counter("memschedd_candidate_cache_hits_total", "Engine candidate-memo hits, aggregated over runs.", st.CandidateHits)
	counter("memschedd_candidate_cache_misses_total", "Engine candidate-memo misses, aggregated over runs.", st.CandidateMisses)
	counter("memschedd_shed_total", "Requests refused by the load shedder (429, code \"shed\").", st.Shed)
	counter("memschedd_rate_limited_total", "Requests refused by the rate limiter (429, code \"rate_limited\").", st.RateLimited)
	counter("memschedd_retried_requests_total", "Requests arriving marked as client retries (X-Retry-Attempt).", st.Retried)
	fmt.Fprintf(w, "# HELP memschedd_chaos_faults_total Injected faults, by kind.\n# TYPE memschedd_chaos_faults_total counter\n")
	fmt.Fprintf(w, "memschedd_chaos_faults_total{kind=\"latency\"} %d\n", st.ChaosLatency)
	fmt.Fprintf(w, "memschedd_chaos_faults_total{kind=\"error\"} %d\n", st.ChaosErrors)
	fmt.Fprintf(w, "memschedd_chaos_faults_total{kind=\"truncate\"} %d\n", st.ChaosTruncations)
	counter("memschedd_chaos_injected_total", "Injected faults of any kind.", st.ChaosLatency+st.ChaosErrors+st.ChaosTruncations)
	gauge("memschedd_sessions_cached", "Sessions currently resident in the LRU cache.", st.SessionsCached)
	gauge("memschedd_session_cache_capacity", "Bound of the session LRU cache.", st.SessionCapacity)
	gauge("memschedd_in_flight", "Requests currently holding an in-flight slot.", st.InFlight)
	gauge("memschedd_max_in_flight", "Bound on concurrently executing requests.", st.MaxInFlight)
	gauge("memschedd_queue_depth", "Requests currently queued for an in-flight slot.", st.QueueDepth)
	drainingGauge := 0
	if st.Draining {
		drainingGauge = 1
	}
	gauge("memschedd_draining", "1 while the server is draining for shutdown.", drainingGauge)
	gauge("memschedd_uptime_seconds", "Seconds since the server was constructed.", float64(st.UptimeMS)/1000)
	WriteRuntimeMetrics(w)
}

// EndpointLatency is a point-in-time snapshot of one endpoint's latency
// histogram, exported so offline consumers (the cluster simulator's
// service-time calibration in package repro/clustersim) can be fed from a
// live server instead of hand-tuned constants.
type EndpointLatency struct {
	// Endpoint is the path label ("/v1/schedule", ..., or "other").
	Endpoint string
	// Count is completed requests; SumSeconds their summed latency.
	Count      uint64
	SumSeconds float64
	// Buckets holds non-cumulative counts per LatencyBuckets bound, plus a
	// final +Inf overflow bucket (len = len(LatencyBuckets)+1).
	Buckets []uint64
}

// MeanSeconds is the average latency of the snapshot (0 when empty).
func (e EndpointLatency) MeanSeconds() float64 {
	if e.Count == 0 {
		return 0
	}
	return e.SumSeconds / float64(e.Count)
}

// LatencyBuckets returns the histogram upper bounds (seconds) used by the
// metrics registry, excluding the implicit +Inf bucket.
func LatencyBuckets() []float64 {
	out := make([]float64, len(latencyBuckets))
	copy(out, latencyBuckets[:])
	return out
}

// EndpointLatencies snapshots the per-endpoint latency histograms, sorted
// by endpoint for deterministic consumption.
func (s *Server) EndpointLatencies() []EndpointLatency {
	m := s.prom
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.hist))
	for k := range m.hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]EndpointLatency, 0, len(keys))
	for _, k := range keys {
		h := m.hist[k]
		buckets := make([]uint64, len(h.buckets))
		copy(buckets, h.buckets[:])
		out = append(out, EndpointLatency{
			Endpoint:   k,
			Count:      h.count,
			SumSeconds: h.sum,
			Buckets:    buckets,
		})
	}
	return out
}

// statusWriter captures the response status and body size for the
// metrics middleware and the access log, and forwards Flush so
// streaming endpoints keep working behind it.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer, so the
// sweep handler can extend the connection's write deadline past the
// server-wide WriteTimeout for long NDJSON streams.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.prom.render(&b, s.Stats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
