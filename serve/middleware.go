package serve

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Middleware is one link of the server's request-processing chain: it
// wraps a handler with one orthogonal concern (admission, shedding, rate
// limiting, fault injection, ...). Links compose with Chain.
type Middleware func(http.Handler) http.Handler

// Chain composes links into one middleware. Chain(a, b, c)(h) serves a
// request through a first, then b, then c, then h — the argument order is
// the request's path through the stack, outermost first.
func Chain(links ...Middleware) Middleware {
	return func(next http.Handler) http.Handler {
		for i := len(links) - 1; i >= 0; i-- {
			next = links[i](next)
		}
		return next
	}
}

// The server's chains, outermost first (metrics instrumentation wraps the
// whole mux in Handler and is not repeated here):
//
//	/v1/graphs, /v1/schedule, /v1/simulate:
//	    chaos → rate limit → load shed → admission → body cap → handler
//	/v1/sweep:
//	    chaos → rate limit → load shed → sweep admission → body cap → handler
//
// Chaos sits outermost so injected faults model the network: they cost no
// token, no slot, and are observed by the metrics layer like any other
// response. The rate limiter is the cheap front door; the shedder reads
// the admission queue and refuses work the semaphore would only delay;
// admission is the expensive gate. GET endpoints (/healthz, /metrics,
// /v1/stats, /v1/schedulers) bypass everything but metrics so probes and
// scrapes stay reliable under both overload and injected chaos.

// tokenBucket is a mutex-guarded token bucket: capacity burst, refilled
// at rate tokens/second. The clock is injectable for tests.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst <= 0 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
}

// take consumes one token if one is available; otherwise it reports how
// long until one accrues.
func (tb *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	if !tb.last.IsZero() {
		tb.tokens = math.Min(tb.burst, tb.tokens+now.Sub(tb.last).Seconds()*tb.rate)
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	return false, time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
}

// writeRetryAfter sets the Retry-After header for a 429/503, rounded up
// to whole seconds (the header's granularity), minimum 1.
func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// withRateLimit is the token-bucket front door (Config.RateLimit). A
// request with no token is refused with a structured 429 and a
// Retry-After hint sized to the bucket's refill time — the earliest
// moment a retry could succeed.
func (s *Server) withRateLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return rateLimit(s.limiter, s.cfg.RateLimit, func(r *http.Request) {
		s.rateLimited.Add(1)
		s.logRefusal(r.Context(), "rate limited", slog.Float64("rate", s.cfg.RateLimit))
	})(next)
}

// rateLimit is the shared token-bucket link behind both the Server's
// withRateLimit and the standalone RateLimitMiddleware. onLimited sees
// the refused request, so hooks can count and log with its context.
func rateLimit(tb *tokenBucket, rate float64, onLimited func(*http.Request)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ok, wait := tb.take()
			if !ok {
				if onLimited != nil {
					onLimited(r)
				}
				writeRetryAfter(w, wait)
				writeError(w, http.StatusTooManyRequests, CodeRateLimited,
					fmt.Sprintf("rate limit exceeded (%g req/s)", rate))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// RateLimitMiddleware is the Server's token-bucket front door as a
// standalone link, for composing the same chain in front of a handler
// that is not a Server — the cluster router. rate is requests/second
// shared across all clients, burst the bucket depth (<= 0 means
// ceil(rate)); a refused request gets the identical structured 429
// (code "rate_limited") + Retry-After. onLimited, when non-nil, is
// invoked once per refused request (metrics hook).
func RateLimitMiddleware(rate float64, burst int, onLimited func()) Middleware {
	var hook func(*http.Request)
	if onLimited != nil {
		hook = func(*http.Request) { onLimited() }
	}
	return rateLimit(newTokenBucket(rate, burst), rate, hook)
}

// ConcurrencyLimitMiddleware bounds concurrently served requests at max,
// shedding excess immediately with the structured 429 (code "shed") +
// Retry-After instead of queueing — the right shape for an IO-bound
// router, where a queue only adds latency in front of replicas that have
// queues of their own. inFlight, when non-nil, is maintained as the
// current concurrency gauge (metrics hook); onShed, when non-nil, is
// invoked once per refused request.
func ConcurrencyLimitMiddleware(max int64, inFlight *atomic.Int64, onShed func()) Middleware {
	if inFlight == nil {
		inFlight = new(atomic.Int64)
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if n := inFlight.Add(1); n > max {
				inFlight.Add(-1)
				if onShed != nil {
					onShed()
				}
				writeRetryAfter(w, time.Second)
				writeError(w, http.StatusTooManyRequests, CodeShed,
					fmt.Sprintf("server overloaded: %d requests already in flight", max))
				return
			}
			defer inFlight.Add(-1)
			next.ServeHTTP(w, r)
		})
	}
}

// BodyCapMiddleware bounds request bodies at maxBytes as a standalone
// link (see withBodyCap); oversize payloads surface as a structured 413
// at the first read past the cap.
func BodyCapMiddleware(maxBytes int64) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
			next.ServeHTTP(w, r)
		})
	}
}

// withShed is the queue-depth-aware load shedder (Config.ShedQueueDepth):
// when every in-flight slot is busy AND the admission queue is already at
// its bound, waiting can only add latency for everyone, so the request is
// refused immediately with a structured 429 + Retry-After instead of
// queueing. Shed requests are safe to retry — nothing was executed.
func (s *Server) withShed(next http.Handler) http.Handler {
	if s.cfg.ShedQueueDepth <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.inFlight.Load() >= int64(s.cfg.MaxInFlight) && s.waiting.Load() >= int64(s.cfg.ShedQueueDepth) {
			s.shed.Add(1)
			s.logRefusal(r.Context(), "load shed",
				slog.Int("max_in_flight", s.cfg.MaxInFlight),
				slog.Int("queue_depth", s.cfg.ShedQueueDepth))
			writeRetryAfter(w, time.Second)
			writeError(w, http.StatusTooManyRequests, CodeShed,
				fmt.Sprintf("server overloaded: all %d slots busy and %d requests already queued",
					s.cfg.MaxInFlight, s.cfg.ShedQueueDepth))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withAdmission is the in-flight semaphore (Config.MaxInFlight): it
// bounds the requests concurrently doing CPU-bound work. Excess requests
// wait for a slot until their context ends.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endAdmission := trace.Start(r.Context(), "admission")
		err := s.acquire(r.Context())
		endAdmission()
		if err != nil {
			writeError(w, http.StatusRequestTimeout, CodeTimeout, "request cancelled while waiting for an in-flight slot")
			return
		}
		defer s.release()
		next.ServeHTTP(w, r)
	})
}

// sweepClaim carries a sweep's claimed worker-token count from the
// admission link to the handler, which may widen the claim (top-up) once
// it knows the request's worker ask; the link releases the final count.
type sweepClaim struct {
	workers int
}

type ctxKey int

const sweepClaimKey ctxKey = iota

// withSweepAdmission is the sweep path's two-stage gate. Admission order
// matters: a sweep first queues on the sweep-worker budget (holding
// nothing else), and only then takes a general in-flight slot. A burst of
// batch requests therefore waits on sweep capacity without camping on the
// slots /v1/schedule needs — no head-of-line blocking of the cheap path.
func (s *Server) withSweepAdmission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endAdmission := trace.Start(r.Context(), "admission")
		if err := s.acquireSweepToken(r.Context()); err != nil {
			endAdmission()
			writeError(w, http.StatusRequestTimeout, CodeTimeout, "request cancelled while waiting for sweep capacity")
			return
		}
		claim := &sweepClaim{workers: 1}
		defer func() { s.releaseSweepWorkers(claim.workers) }()
		err := s.acquire(r.Context())
		endAdmission()
		if err != nil {
			writeError(w, http.StatusRequestTimeout, CodeTimeout, "request cancelled while waiting for an in-flight slot")
			return
		}
		defer s.release()
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), sweepClaimKey, claim)))
	})
}

// withBodyCap bounds the request body (Config.MaxRequestBytes); a larger
// payload surfaces as *http.MaxBytesError from the decode, which
// decodeBody classifies as a structured 413.
func (s *Server) withBodyCap(next http.Handler) http.Handler {
	return BodyCapMiddleware(s.cfg.MaxRequestBytes)(next)
}
