package serve

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the handler for an opt-in debug listener (memschedd
// -debug-addr): the full net/http/pprof suite mounted explicitly — the
// server itself never touches http.DefaultServeMux — plus, when traces
// is non-nil, the /debug/traces ring (so the debug port exposes the
// same trace view as the serving port). Both memschedd modes (replica
// and router) hang this off a second listener, keeping profiling off
// the serving port entirely.
func NewDebugMux(traces http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if traces != nil {
		mux.Handle("GET /debug/traces", traces)
	}
	return mux
}
