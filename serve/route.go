package serve

import (
	"encoding/json"
	"errors"
	"fmt"

	memsched "repro"
)

// ErrNoRoutingKey reports a request body that carries neither a graph id
// nor an inline graph — nothing to route by. Such a request is invalid on
// every replica, so a router may send it anywhere and let the replica
// produce the structured 400.
var ErrNoRoutingKey = errors.New("serve: request has no graph_id or graph to route by")

// keyedRequest is the field subset shared by every keyed /v1 POST body
// (register, schedule, simulate, sweep): the graph reference a
// cache-affinity router shards on.
type keyedRequest struct {
	GraphID string          `json:"graph_id"`
	Graph   json.RawMessage `json:"graph"`
	Times   [][]float64     `json:"times"`
}

// RoutingKey extracts the cache-affinity key of a keyed /v1 request body:
// the graph id when the request references a registered graph, or the
// canonical graph hash — identical to the id registering the graph would
// return — when the graph is inlined. Every replica and every router
// computing RoutingKey over the same body agrees on the key, which is what
// lets a consistent-hash ring pin each graph's session cache to one
// replica with no coordination.
//
// portable reports whether the request carries its graph inline: any
// replica can serve it from a cold cache. A graph_id-only request is
// pinned — only the replica holding the registration can answer, so a
// load balancer must not spill it to a second-choice replica (that would
// trade a warm hit for a guaranteed 404).
//
// A malformed body or an invalid graph returns an error; the caller should
// forward such requests anyway (unrouted) so the serving replica produces
// the structured 4xx the client expects.
func RoutingKey(body []byte) (key string, portable bool, err error) {
	var req keyedRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", false, fmt.Errorf("serve: decoding routing key: %w", err)
	}
	if req.GraphID != "" {
		return req.GraphID, false, nil
	}
	if len(req.Graph) == 0 {
		return "", false, ErrNoRoutingKey
	}
	key, err = GraphKey(req.Graph, req.Times)
	return key, err == nil, err
}

// GraphKey computes the canonical content hash of an inline graph (wire
// format of memsched.Graph) plus an optional pool-time matrix — the value
// POST /v1/graphs would return as the graph's id. It validates the graph
// exactly as registration would, so an invalid graph errs here instead of
// routing.
func GraphKey(raw json.RawMessage, times [][]float64) (string, error) {
	g := memsched.NewGraph()
	if err := json.Unmarshal(raw, g); err != nil {
		return "", fmt.Errorf("serve: malformed graph: %w", err)
	}
	var opts []memsched.SessionOption
	if times != nil {
		opts = append(opts, memsched.WithPoolTimes(times))
	}
	sess, err := memsched.NewSession(g, opts...)
	if err != nil {
		return "", fmt.Errorf("serve: invalid graph: %w", err)
	}
	return sess.GraphHash(), nil
}
