// Package serve exposes the Session scheduling API as an HTTP/JSON service.
//
// The server (NewServer) registers task graphs, schedules or simulates them
// on a platform described in the request, and reports structured statistics.
// Sessions — the per-graph memo holders of package memsched — are cached in
// a bounded LRU keyed by the graph's canonical content hash, so repeated
// requests for the same graph hit warm rank/statics memos: exactly the
// access pattern of a scheduling service placed in front of a stream of
// recurring workflows. Command memschedd wraps the server in a binary;
// Client is the typed Go client; command schedload is a load generator
// built on it.
//
// Endpoints:
//
//	POST /v1/graphs      register a graph (and optional pool-time matrix),
//	                     returns its canonical hash as the graph id
//	POST /v1/schedule    run a list-scheduling heuristic (graph inline or
//	                     by id) on the pools given in the request
//	POST /v1/simulate    run the online dispatcher (dual graphs, 2 pools)
//	GET  /v1/schedulers  list the registered heuristic names
//	GET  /v1/stats       server counters: session-cache hits/misses,
//	                     engine candidate-cache totals, in-flight gauge
//	GET  /healthz        liveness probe
//
// Every error response is structured JSON: {"error": ..., "code": ...}.
package serve

import (
	"encoding/json"
	"fmt"
)

// PoolSpec describes one memory pool of the request's platform. A nil
// Capacity means unlimited.
type PoolSpec struct {
	Procs    int    `json:"procs"`
	Capacity *int64 `json:"capacity,omitempty"`
}

// RegisterRequest registers a task graph (package wire format of
// memsched.Graph) and, optionally, an explicit Times[task][pool] matrix for
// k-pool scheduling (the matrix becomes part of the graph id).
type RegisterRequest struct {
	Graph json.RawMessage `json:"graph"`
	Times [][]float64     `json:"times,omitempty"`
}

// RegisterResponse reports the registered graph's id — its canonical
// content hash — and size. Cached is true when an identical graph was
// already resident, in which case its warm session was kept.
type RegisterResponse struct {
	ID     string `json:"id"`
	Tasks  int    `json:"tasks"`
	Edges  int    `json:"edges"`
	Cached bool   `json:"cached"`
}

// ScheduleRequest asks for one scheduling (or simulation) run. Exactly one
// of GraphID and Graph must be set; Pools describes the platform. The
// option fields mirror the Session option set: Scheduler and Seed map to
// WithScheduler/WithSeed, Insertion to WithInsertion, TimeoutMS to
// WithTimeout, and Policy (simulate only: "rank" or "eft") to WithPolicy.
// Placements requests the full per-task placement list in the response.
type ScheduleRequest struct {
	GraphID string          `json:"graph_id,omitempty"`
	Graph   json.RawMessage `json:"graph,omitempty"`
	Times   [][]float64     `json:"times,omitempty"`

	Pools []PoolSpec `json:"pools"`

	Scheduler  string `json:"scheduler,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Insertion  bool   `json:"insertion,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	Policy     string `json:"policy,omitempty"`
	Placements bool   `json:"placements,omitempty"`
}

// Placement is one task's slot in a schedule: its start time and global
// processor index (pool 0 owns the first processors, pool 1 the next block,
// and so on).
type Placement struct {
	Task  int     `json:"task"`
	Start float64 `json:"start"`
	Proc  int     `json:"proc"`
}

// ScheduleResponse reports one scheduling run: the schedule-level results
// plus the statistics of memsched.Stats that apply to the run.
type ScheduleResponse struct {
	GraphID       string  `json:"graph_id"`
	Scheduler     string  `json:"scheduler"`
	Makespan      float64 `json:"makespan"`
	Peaks         []int64 `json:"peaks"`
	PoolTasks     []int   `json:"pool_tasks,omitempty"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Events        int     `json:"events,omitempty"`
	WallMicros    int64   `json:"wall_us"`
	SessionCached bool    `json:"session_cached"`

	TaskPlacements []Placement `json:"task_placements,omitempty"`
}

// SchedulersResponse is the payload of GET /v1/schedulers.
type SchedulersResponse struct {
	Schedulers []string `json:"schedulers"`
}

// StatsResponse is the payload of GET /v1/stats.
type StatsResponse struct {
	// Requests counts every request served; Scheduled only the
	// schedule/simulate runs that produced a schedule.
	Requests  uint64 `json:"requests"`
	Scheduled uint64 `json:"scheduled"`
	// SessionHits / SessionMisses count schedule-path session-cache
	// lookups; SessionsCached is the current cache population and
	// SessionCapacity its bound.
	SessionHits     uint64 `json:"session_cache_hits"`
	SessionMisses   uint64 `json:"session_cache_misses"`
	SessionsCached  int    `json:"sessions_cached"`
	SessionCapacity int    `json:"session_cache_capacity"`
	// CandidateHits / CandidateMisses aggregate the engines' per-run
	// candidate-memo counters (memsched.Stats.CacheHits/CacheMisses)
	// over all runs.
	CandidateHits   uint64 `json:"candidate_cache_hits"`
	CandidateMisses uint64 `json:"candidate_cache_misses"`
	// InFlight is the current number of register/schedule/simulate
	// requests holding a semaphore slot, bounded by MaxInFlight.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	// UptimeMS is the time since the server was constructed.
	UptimeMS int64 `json:"uptime_ms"`
}

// SessionHitRate returns the fraction of schedule-path lookups served by a
// cached session (0 when nothing was looked up).
func (st StatsResponse) SessionHitRate() float64 {
	total := st.SessionHits + st.SessionMisses
	if total == 0 {
		return 0
	}
	return float64(st.SessionHits) / float64(total)
}

// Error codes used in ErrorResponse.Code.
const (
	CodeBadRequest  = "bad_request"  // malformed or invalid request
	CodeNotFound    = "not_found"    // unknown route or graph id
	CodeTooLarge    = "too_large"    // request body over the configured bound
	CodeMemoryBound = "memory_bound" // the graph does not fit the platform's memories
	CodeSimStuck    = "sim_stuck"    // the online dispatcher deadlocked on memory
	CodeTimeout     = "timeout"      // the run's timeout expired or the client left
	CodeInternal    = "internal"     // unexpected server-side failure
)

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// APIError is the typed error the Client returns for non-2xx responses.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // machine-readable code (Code* constants)
	Message string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %s (http %d, code %s)", e.Message, e.Status, e.Code)
}
