// Package serve exposes the Session scheduling API as an HTTP/JSON service.
//
// The server (NewServer) registers task graphs, schedules or simulates them
// on a platform described in the request, and reports structured statistics.
// Sessions — the per-graph memo holders of package memsched — are cached in
// a bounded LRU keyed by the graph's canonical content hash, so repeated
// requests for the same graph hit warm rank/statics memos: exactly the
// access pattern of a scheduling service placed in front of a stream of
// recurring workflows. Command memschedd wraps the server in a binary;
// Client is the typed Go client; command schedload is a load generator
// built on it.
//
// Endpoints:
//
//	POST /v1/graphs      register a graph (and optional pool-time matrix),
//	                     returns its canonical hash as the graph id
//	POST /v1/schedule    run a list-scheduling heuristic (graph inline or
//	                     by id) on the pools given in the request
//	POST /v1/simulate    run the online dispatcher (dual graphs, 2 pools)
//	POST /v1/sweep       batch-evaluate one graph across a sweep of
//	                     platforms × schedulers × seeds (package
//	                     repro/sweep); streams NDJSON point records in
//	                     point order plus a trailing summary record
//	GET  /v1/schedulers  list the registered heuristic names
//	GET  /v1/stats       server counters: session-cache hits/misses,
//	                     engine candidate-cache totals, in-flight gauge
//	GET  /metrics        Prometheus text exposition: request counts and
//	                     latency histograms by endpoint, cache and
//	                     in-flight gauges, runtime gauges and build info
//	GET  /debug/traces   the K slowest captured request traces per route
//	                     (span timelines, see TracesResponse)
//	GET  /healthz        liveness probe
//
// Every error response is structured JSON: {"error": ..., "code": ...};
// a sweep that fails after its stream began terminates with an NDJSON
// record {"type": "error", ...} instead.
package serve

import (
	"encoding/json"
	"fmt"
	"time"
)

// PoolSpec describes one memory pool of the request's platform. A nil
// Capacity means unlimited.
type PoolSpec struct {
	Procs    int    `json:"procs"`
	Capacity *int64 `json:"capacity,omitempty"`
}

// RegisterRequest registers a task graph (package wire format of
// memsched.Graph) and, optionally, an explicit Times[task][pool] matrix for
// k-pool scheduling (the matrix becomes part of the graph id).
type RegisterRequest struct {
	Graph json.RawMessage `json:"graph"`
	Times [][]float64     `json:"times,omitempty"`
}

// RegisterResponse reports the registered graph's id — its canonical
// content hash — and size. Cached is true when an identical graph was
// already resident, in which case its warm session was kept.
type RegisterResponse struct {
	ID     string `json:"id"`
	Tasks  int    `json:"tasks"`
	Edges  int    `json:"edges"`
	Cached bool   `json:"cached"`
}

// ScheduleRequest asks for one scheduling (or simulation) run. Exactly one
// of GraphID and Graph must be set; Pools describes the platform. The
// option fields mirror the Session option set: Scheduler and Seed map to
// WithScheduler/WithSeed, Insertion to WithInsertion, TimeoutMS to
// WithTimeout, and Policy (simulate only: "rank" or "eft") to WithPolicy.
// Placements requests the full per-task placement list in the response.
type ScheduleRequest struct {
	GraphID string          `json:"graph_id,omitempty"`
	Graph   json.RawMessage `json:"graph,omitempty"`
	Times   [][]float64     `json:"times,omitempty"`

	Pools []PoolSpec `json:"pools"`

	Scheduler  string `json:"scheduler,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Insertion  bool   `json:"insertion,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	Policy     string `json:"policy,omitempty"`
	Placements bool   `json:"placements,omitempty"`
}

// Placement is one task's slot in a schedule: its start time and global
// processor index (pool 0 owns the first processors, pool 1 the next block,
// and so on).
type Placement struct {
	Task  int     `json:"task"`
	Start float64 `json:"start"`
	Proc  int     `json:"proc"`
}

// ScheduleResponse reports one scheduling run: the schedule-level results
// plus the statistics of memsched.Stats that apply to the run.
type ScheduleResponse struct {
	GraphID       string  `json:"graph_id"`
	Scheduler     string  `json:"scheduler"`
	Makespan      float64 `json:"makespan"`
	Peaks         []int64 `json:"peaks"`
	PoolTasks     []int   `json:"pool_tasks,omitempty"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Events        int     `json:"events,omitempty"`
	WallMicros    int64   `json:"wall_us"`
	SessionCached bool    `json:"session_cached"`
	// RequestID echoes the request's id (X-Request-ID, generated when the
	// client sent none) so a response can be joined against the access
	// logs of every tier that touched it.
	RequestID string `json:"request_id,omitempty"`

	TaskPlacements []Placement `json:"task_placements,omitempty"`

	// Trace is the request's span timeline, present only when the request
	// opted in with ?trace=1: middleware and handler phases (admission,
	// decode, resolve, engine, encode) plus the engine's own sub-phases
	// under "engine/" (rank, statics, replay, placement, clone, search,
	// dispatch). Top-level spans (no "/" in the name) are disjoint and sum
	// to approximately the request's wall time.
	Trace []TraceSpan `json:"trace,omitempty"`
}

// TraceSpan is one wire-format span of a request trace: an interval named
// by phase, offset from the request's start. Spans appear in completion
// order; sub-phase names are slash-prefixed by their parent ("engine/rank").
type TraceSpan struct {
	Name        string `json:"name"`
	StartMicros int64  `json:"start_us"`
	DurMicros   int64  `json:"dur_us"`
}

// SweepRequest asks for one batch evaluation of a graph (inline or by id)
// across a sweep grid: either Alphas — memory fractions applied to the base
// platform in Pools, the paper's normalised-memory shape, with Peak
// optionally pinning the 100% reference — or Platforms, an explicit
// platform axis (optionally labelled by Xs). Schedulers accepts registry
// names plus "optimal", "sim-rank" and "sim-eft"; Seeds defaults to {0}.
// Workers asks for a worker count; the server grants at most that many from
// its server-wide sweep-worker budget (0 = as much of the budget as is
// free), so concurrent sweeps share the cores. TimeoutMS bounds the whole
// sweep.
type SweepRequest struct {
	GraphID string          `json:"graph_id,omitempty"`
	Graph   json.RawMessage `json:"graph,omitempty"`
	Times   [][]float64     `json:"times,omitempty"`

	Pools  []PoolSpec `json:"pools,omitempty"`
	Alphas []float64  `json:"alphas,omitempty"`
	Peak   int64      `json:"peak,omitempty"`

	Platforms [][]PoolSpec `json:"platforms,omitempty"`
	Xs        []float64    `json:"xs,omitempty"`

	Schedulers []string `json:"schedulers,omitempty"`
	Seeds      []int64  `json:"seeds,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	TimeoutMS  int64    `json:"timeout_ms,omitempty"`

	// Replay selects the warm-start replay policy of the sweep: "auto"
	// (the default, also "") chains same-(scheduler, seed) points along
	// descending capacities and replays verified placement prefixes
	// between them; "off" schedules every point from scratch. Results are
	// identical either way (see sweep.Spec.Replay).
	Replay string `json:"replay,omitempty"`
}

// SweepPoint is one "point" NDJSON record of POST /v1/sweep: the outcome of
// scheduling the graph on one (platform, scheduler, seed) combination.
// Records arrive in point-index order regardless of server-side completion
// order.
type SweepPoint struct {
	Type       string  `json:"type"` // "point"
	Index      int     `json:"index"`
	Axis       int     `json:"axis"`
	X          float64 `json:"x"`
	Alpha      float64 `json:"alpha,omitempty"`
	Scheduler  string  `json:"scheduler"`
	Seed       int64   `json:"seed"`
	Feasible   bool    `json:"feasible"`
	Reason     string  `json:"reason,omitempty"` // memory_bound | sim_stuck | infeasible
	Makespan   float64 `json:"makespan"`
	Peaks      []int64 `json:"peaks,omitempty"`
	WallMicros int64   `json:"wall_us"`
	// ReplayedPlacements / ReplayTruncated report what warm-start replay
	// did for this point (zero / absent with replay off or on
	// chain-opening points).
	ReplayedPlacements int  `json:"replayed_placements,omitempty"`
	ReplayTruncated    bool `json:"replay_truncated,omitempty"`
}

// SweepCurve is one scheduler's makespan profile over the sweep axis;
// null entries mark axis points where no seed was feasible.
type SweepCurve struct {
	Scheduler string     `json:"scheduler"`
	X         []float64  `json:"x"`
	Makespan  []*float64 `json:"makespan"`
}

// SweepFrontier is one scheduler's memory-bound frontier: the first axis
// point at which every seed produced a schedule (-1 = never).
type SweepFrontier struct {
	Scheduler string  `json:"scheduler"`
	Axis      int     `json:"axis"`
	X         float64 `json:"x"`
}

// SweepSummary is the trailing "summary" NDJSON record of a successful
// sweep stream.
type SweepSummary struct {
	Type          string          `json:"type"` // "summary"
	GraphID       string          `json:"graph_id"`
	Points        int             `json:"points"`
	Feasible      int             `json:"feasible"`
	BestIndex     int             `json:"best_index"`
	BestMakespan  float64         `json:"best_makespan"`
	RefMakespan   float64         `json:"ref_makespan,omitempty"`
	Peak          int64           `json:"peak,omitempty"`
	Curves        []SweepCurve    `json:"curves,omitempty"`
	Frontier      []SweepFrontier `json:"frontier,omitempty"`
	Workers       int             `json:"workers"`
	WallMicros    int64           `json:"wall_us"`
	SessionCached bool            `json:"session_cached"`
}

// SweepError terminates a sweep stream that failed after records were
// already sent (cancellation, timeout, a fatal point error).
type SweepError struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
	Code  string `json:"code"`
}

// SchedulersResponse is the payload of GET /v1/schedulers.
type SchedulersResponse struct {
	Schedulers []string `json:"schedulers"`
}

// StatsResponse is the payload of GET /v1/stats.
type StatsResponse struct {
	// Requests counts every request served; Scheduled only the
	// schedule/simulate runs (and sweep points) that produced a schedule;
	// SweepPoints every sweep point result streamed to a client.
	Requests    uint64 `json:"requests"`
	Scheduled   uint64 `json:"scheduled"`
	SweepPoints uint64 `json:"sweep_points"`
	// SweepReplayedPlacements aggregates the placements sweep points
	// committed by verified warm-start replay instead of full evaluation;
	// SweepReplayTruncatedPoints counts the points whose replay stopped
	// early (a recorded decision no longer held under their capacities).
	SweepReplayedPlacements    uint64 `json:"sweep_replayed_placements"`
	SweepReplayTruncatedPoints uint64 `json:"sweep_replay_truncated_points"`
	// SessionHits / SessionMisses count schedule-path session-cache
	// lookups; SessionsCached is the current cache population and
	// SessionCapacity its bound.
	SessionHits     uint64 `json:"session_cache_hits"`
	SessionMisses   uint64 `json:"session_cache_misses"`
	SessionsCached  int    `json:"sessions_cached"`
	SessionCapacity int    `json:"session_cache_capacity"`
	// SessionEvictions counts sessions displaced from the full LRU cache —
	// the cache-pressure signal sharding the key space across replicas is
	// supposed to reduce.
	SessionEvictions uint64 `json:"session_cache_evictions"`
	// CandidateHits / CandidateMisses aggregate the engines' per-run
	// candidate-memo counters (memsched.Stats.CacheHits/CacheMisses)
	// over all runs.
	CandidateHits   uint64 `json:"candidate_cache_hits"`
	CandidateMisses uint64 `json:"candidate_cache_misses"`
	// InFlight is the current number of register/schedule/simulate
	// requests holding a semaphore slot, bounded by MaxInFlight;
	// QueueDepth is the number currently waiting for a slot.
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	QueueDepth  int64 `json:"queue_depth"`
	// Shed / RateLimited count requests refused with a structured 429 by
	// the load shedder and the token-bucket rate limiter; Retried counts
	// requests that arrived marked as client retries (RetryAttemptHeader).
	Shed        uint64 `json:"shed"`
	RateLimited uint64 `json:"rate_limited"`
	Retried     uint64 `json:"retried_requests"`
	// ChaosLatency / ChaosErrors / ChaosTruncations count the faults the
	// chaos middleware injected, by kind (all zero with chaos disabled).
	ChaosLatency     uint64 `json:"chaos_injected_latency"`
	ChaosErrors      uint64 `json:"chaos_injected_errors"`
	ChaosTruncations uint64 `json:"chaos_injected_truncations"`
	// Draining is true once graceful shutdown has begun.
	Draining bool `json:"draining"`
	// UptimeMS is the time since the server was constructed.
	UptimeMS int64 `json:"uptime_ms"`
}

// SessionHitRate returns the fraction of schedule-path lookups served by a
// cached session (0 when nothing was looked up).
func (st StatsResponse) SessionHitRate() float64 {
	total := st.SessionHits + st.SessionMisses
	if total == 0 {
		return 0
	}
	return float64(st.SessionHits) / float64(total)
}

// Error codes used in ErrorResponse.Code.
const (
	CodeBadRequest  = "bad_request"  // malformed or invalid request
	CodeNotFound    = "not_found"    // unknown route or graph id
	CodeTooLarge    = "too_large"    // request body over the configured bound
	CodeMemoryBound = "memory_bound" // the graph does not fit the platform's memories
	CodeSimStuck    = "sim_stuck"    // the online dispatcher deadlocked on memory
	CodeTimeout     = "timeout"      // the run's timeout expired or the client left
	CodeInternal    = "internal"     // unexpected server-side failure
	CodeRateLimited = "rate_limited" // token-bucket front door refused the request (429 + Retry-After)
	CodeShed        = "shed"         // load shedder refused: every slot busy, queue full (429 + Retry-After)
	CodeUnavailable = "unavailable"  // transient server-side unavailability (injected fault)
	CodeDraining    = "draining"     // server shutting down; the in-flight stream was drained, not crashed
)

// RetryAttemptHeader marks a request as a client-side retry: the Client
// sets it to the attempt number (1, 2, ...) on every try after the first,
// and the server counts such requests into its retried_requests metric —
// making client retry pressure observable from the server side.
const RetryAttemptHeader = "X-Retry-Attempt"

// WorkloadClassHeader labels a request with the workload class that issued
// it (see package repro/workload). The server breaks its request counters
// and latency histograms down by this label on /metrics
// (memschedd_class_requests_total, memschedd_class_request_duration_seconds),
// so an open-loop load run can read per-class behaviour off the server it
// drove. The label set is bounded server-side; unlabeled requests are
// simply not class-counted.
const WorkloadClassHeader = "X-Workload-Class"

// RequestIDHeader carries the request id: a short opaque token that names
// one logical client call across every tier that serves it. The server
// (and the cluster router) accept a client-supplied value, generate one
// when absent, echo it on the response, and stamp it on every log line
// and error body the request produces. The Client suffixes retries with
// "-<attempt>" and the router suffixes failover hops with "-f<n>", so the
// base id remains a substring that joins all tiers' logs.
const RequestIDHeader = "X-Request-ID"

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// RequestID echoes the request's id so a refusal can be joined
	// against server logs (absent only when the error predates id
	// assignment, e.g. a router-originated refusal before forwarding).
	RequestID string `json:"request_id,omitempty"`
}

// HealthResponse is the body of GET /healthz: enough per-replica state for
// a router's health checker (and a load report) to attribute cache
// behaviour and drain status to a specific replica. Status is "ok" while
// the replica serves (HTTP 200) and "draining" once graceful shutdown has
// begun (HTTP 503 — a drained replica is alive but must stop receiving
// routed work).
type HealthResponse struct {
	Status          string `json:"status"`
	ReplicaID       string `json:"replica_id,omitempty"`
	Draining        bool   `json:"draining"`
	SessionsCached  int    `json:"sessions_cached"`
	SessionCapacity int    `json:"session_cache_capacity"`
	SessionHits     uint64 `json:"session_cache_hits"`
	SessionMisses   uint64 `json:"session_cache_misses"`
	Evictions       uint64 `json:"session_cache_evictions"`
	UptimeMS        int64  `json:"uptime_ms"`
}

// APIError is the typed error the Client returns for non-2xx responses
// (and, with Status 200, for typed in-stream sweep error records).
type APIError struct {
	Status  int    // HTTP status code
	Code    string // machine-readable code (Code* constants)
	Message string
	// RetryAfter is the server's Retry-After hint, when it sent one
	// (429/503); the Client's backoff never retries sooner.
	RetryAfter time.Duration
	// RequestID is the failing request's id as the server reported it
	// (X-Request-ID response header, falling back to the error body), so
	// a client-side failure can be chased through server logs.
	RequestID string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("serve: %s (http %d, code %s, request %s)", e.Message, e.Status, e.Code, e.RequestID)
	}
	return fmt.Sprintf("serve: %s (http %d, code %s)", e.Message, e.Status, e.Code)
}
