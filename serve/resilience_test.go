package serve_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	memsched "repro"
	"repro/serve"
)

// TestRateLimit429 exhausts the token bucket and checks the refusal is the
// documented contract: 429, code "rate_limited", Retry-After parsed into
// the typed error, and the server counter exported.
func TestRateLimit429(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{RateLimit: 0.5, RateBurst: 2})
	ctx := context.Background()

	raw, _ := memsched.PaperExample().MarshalJSON()
	req := serve.ScheduleRequest{Graph: raw, Pools: cap4()}
	for i := 0; i < 2; i++ {
		if _, err := client.Schedule(ctx, req); err != nil {
			t.Fatalf("in-burst request %d: %v", i, err)
		}
	}
	_, err := client.Schedule(ctx, req)
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-burst request: want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != serve.CodeRateLimited {
		t.Fatalf("refusal = %d %q, want 429 %q", apiErr.Status, apiErr.Code, serve.CodeRateLimited)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("Retry-After hint = %v, want >= 1s", apiErr.RetryAfter)
	}
	if !serve.Retryable(apiErr) {
		t.Fatal("a rate-limit refusal must be retryable")
	}
	if st := srv.Stats(); st.RateLimited != 1 {
		t.Fatalf("rate_limited counter = %d, want 1", st.RateLimited)
	}

	// GET endpoints bypass the limiter: probes stay reliable while the
	// bucket is empty.
	if err := client.Health(ctx); err != nil {
		t.Fatalf("healthz rate-limited: %v", err)
	}
	if _, err := client.Stats(ctx); err != nil {
		t.Fatalf("stats rate-limited: %v", err)
	}
}

// TestLoadShed429 saturates a 1-slot server, fills the admission queue, and
// checks the next request is refused immediately with code "shed" instead
// of queueing behind work it could only delay.
func TestLoadShed429(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{
		MaxInFlight:     1,
		ShedQueueDepth:  1,
		MaxRequestBytes: 64 << 20,
	})

	params := memsched.LargeRandParams()
	params.Size = 20000
	g, err := memsched.GenerateRandom(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := g.MarshalJSON()

	// Occupy the only slot with a long sweep, then park one schedule in
	// the admission queue.
	slowCtx, stopSlow := context.WithCancel(context.Background())
	defer stopSlow()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = client.Sweep(slowCtx, serve.SweepRequest{
			Graph:      raw,
			Pools:      []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
			Alphas:     []float64{0.6, 0.7, 0.8, 0.9, 1.0},
			Schedulers: []string{"memminmin", "memheft"},
			Workers:    1,
		}, nil)
	}()
	waitFor(t, func() bool { return srv.Stats().InFlight >= 1 })
	paper, _ := memsched.PaperExample().MarshalJSON()
	go func() {
		defer wg.Done()
		_, _ = client.Schedule(slowCtx, serve.ScheduleRequest{Graph: paper, Pools: cap4()})
	}()
	waitFor(t, func() bool { return srv.Stats().QueueDepth >= 1 })

	_, err = client.Schedule(context.Background(), serve.ScheduleRequest{Graph: paper, Pools: cap4()})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != serve.CodeShed {
		t.Fatalf("want 429 %q, got %v", serve.CodeShed, err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("shed refusal missing Retry-After hint: %+v", apiErr)
	}
	if st := srv.Stats(); st.Shed < 1 {
		t.Fatalf("shed counter = %d, want >= 1", st.Shed)
	}

	stopSlow()
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 15s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosErrorFaultIsStructured503: an injected error fault is a real
// structured response — 503, code "unavailable", Retry-After — counted on
// the server and retryable by taxonomy.
func TestChaosErrorFaultIsStructured503(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{
		ChaosRate:   1,
		ChaosSeed:   1,
		ChaosFaults: []string{serve.FaultError},
	})
	raw, _ := memsched.PaperExample().MarshalJSON()
	_, err := client.Schedule(context.Background(), serve.ScheduleRequest{Graph: raw, Pools: cap4()})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != serve.CodeUnavailable {
		t.Fatalf("want 503 %q, got %v", serve.CodeUnavailable, err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("injected 503 missing Retry-After: %+v", apiErr)
	}
	if !serve.Retryable(apiErr) {
		t.Fatal("an injected 503 must be retryable")
	}
	if st := srv.Stats(); st.ChaosErrors != 1 {
		t.Fatalf("chaos error counter = %d, want 1", st.ChaosErrors)
	}
	// GETs bypass chaos: stats answered above, and healthz answers here.
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("healthz faulted: %v", err)
	}
}

// TestChaosTruncationSurfacesAsTruncatedStream: with truncation forced on
// every request, a plain client's sweep dies mid-stream and surfaces as
// the retryable ErrStreamTruncated.
func TestChaosTruncationSurfacesAsTruncatedStream(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{
		ChaosRate:   1,
		ChaosSeed:   3,
		ChaosFaults: []string{serve.FaultTruncate},
	})
	raw, _ := memsched.PaperExample().MarshalJSON()
	_, err := client.Sweep(context.Background(), serve.SweepRequest{
		Graph:      raw,
		Pools:      cap4(),
		Alphas:     sweepAlphas(16),
		Schedulers: []string{"memheft", "memminmin"},
	}, nil)
	if !errors.Is(err, serve.ErrStreamTruncated) {
		t.Fatalf("want ErrStreamTruncated, got %v", err)
	}
	if !serve.Retryable(err) {
		t.Fatal("a truncated stream must be retryable")
	}
	if st := srv.Stats(); st.ChaosTruncations != 1 {
		t.Fatalf("truncation counter = %d, want 1", st.ChaosTruncations)
	}
}

// TestClientRetryUnderChaos is the end-to-end resilience loop: a seeded
// chaos server injecting all three fault kinds at rate 0.4, a client with
// a generous retry budget — every call must land, sweep callbacks must see
// every point index exactly once (resume, not replay), and the server must
// have actually injected faults (the run proved something).
func TestClientRetryUnderChaos(t *testing.T) {
	srv := serve.NewServer(serve.Config{
		ChaosRate:       0.4,
		ChaosSeed:       11,
		ChaosMaxLatency: 2 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := serve.NewClient(ts.URL,
		serve.WithHTTPClient(ts.Client()),
		serve.WithRetry(serve.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
	)
	ctx := context.Background()
	raw, _ := memsched.PaperExample().MarshalJSON()

	for i := 0; i < 3; i++ {
		if _, err := client.Schedule(ctx, serve.ScheduleRequest{Graph: raw, Pools: cap4()}); err != nil {
			t.Fatalf("schedule %d under chaos: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		next := 0
		sum, err := client.Sweep(ctx, serve.SweepRequest{
			Graph:      raw,
			Pools:      cap4(),
			Alphas:     sweepAlphas(8),
			Schedulers: []string{"memheft", "memminmin"},
		}, func(pt serve.SweepPoint) error {
			if pt.Index != next {
				return fmt.Errorf("point index %d delivered, want %d (duplicate or gap across retries)", pt.Index, next)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("sweep %d under chaos: %v", i, err)
		}
		if sum.Points != 16 || next != 16 {
			t.Fatalf("sweep %d: summary %d points, callback saw %d, want 16", i, sum.Points, next)
		}
	}

	st := srv.Stats()
	if st.ChaosLatency+st.ChaosErrors+st.ChaosTruncations == 0 {
		t.Fatal("chaos at rate 0.4 injected nothing: the run proved nothing")
	}
	m := client.Metrics()
	if m.Retries == 0 {
		t.Fatal("client retried nothing under rate-0.4 chaos")
	}
	if st.Retried == 0 {
		t.Fatal("server saw no X-Retry-Attempt marks despite client retries")
	}
}

// TestSweepResumeSkipsReplayedPoints pins the resume contract against a
// scripted flaky server: attempt one dies mid-record after point 1,
// attempt two replays the full stream — the callback must still see each
// index exactly once.
func TestSweepResumeSkipsReplayedPoints(t *testing.T) {
	point := func(i int) string {
		return fmt.Sprintf(`{"type":"point","index":%d,"scheduler":"memheft","feasible":true,"makespan":%d}`, i, 10+i)
	}
	var requests atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := requests.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		if n == 1 {
			if r.Header.Get(serve.RetryAttemptHeader) != "" {
				t.Error("first attempt carried a retry mark")
			}
			// Two whole points, then die mid-record.
			fmt.Fprintln(w, point(0))
			fmt.Fprintln(w, point(1))
			fmt.Fprint(w, `{"type":"poi`)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler) // sever the connection
		}
		if r.Header.Get(serve.RetryAttemptHeader) == "" {
			t.Error("resumed attempt not marked with " + serve.RetryAttemptHeader)
		}
		for i := 0; i < 4; i++ {
			fmt.Fprintln(w, point(i))
		}
		fmt.Fprintln(w, `{"type":"summary","points":4,"feasible":4}`)
	}))
	t.Cleanup(ts.Close)

	client := serve.NewClient(ts.URL,
		serve.WithHTTPClient(ts.Client()),
		serve.WithRetry(serve.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}),
	)
	var seen []int
	sum, err := client.Sweep(context.Background(), serve.SweepRequest{}, func(pt serve.SweepPoint) error {
		seen = append(seen, pt.Index)
		return nil
	})
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if sum.Points != 4 {
		t.Fatalf("summary points = %d, want 4", sum.Points)
	}
	want := []int{0, 1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("callback saw %v, want %v (exactly once each)", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("callback saw %v, want %v", seen, want)
		}
	}
	if got := requests.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

// TestClientRetriesTransientAndStopsOnTerminal: a scripted server checks
// both halves of the taxonomy — transient 503s are retried to success,
// terminal 422s are returned on the first attempt.
func TestClientRetriesTransientAndStopsOnTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/schedulers":
			if calls.Add(1) <= 2 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, `{"error":"transient","code":"unavailable"}`)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"schedulers":["memheft"]}`)
		case "/v1/schedule":
			calls.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			fmt.Fprintln(w, `{"error":"does not fit","code":"memory_bound"}`)
		}
	}))
	t.Cleanup(ts.Close)

	client := serve.NewClient(ts.URL,
		serve.WithHTTPClient(ts.Client()),
		serve.WithRetry(serve.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}),
	)
	names, err := client.Schedulers(context.Background())
	if err != nil || len(names) != 1 {
		t.Fatalf("retried call = (%v, %v), want one scheduler", names, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("transient path took %d attempts, want 3", got)
	}
	if m := client.Metrics(); m.Attempts != 3 || m.Retries != 2 {
		t.Fatalf("client metrics = %+v, want 3 attempts / 2 retries", m)
	}

	calls.Store(0)
	_, err = client.Schedule(context.Background(), serve.ScheduleRequest{})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != serve.CodeMemoryBound {
		t.Fatalf("want terminal 422, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("terminal 422 was attempted %d times, want 1 (no retry)", got)
	}
}

// TestClientBreakerOpensAndRecovers drives the breaker through its full
// cycle against a scripted server: consecutive failures open it, open
// calls never reach the network, and a successful probe after the
// cooldown closes it again.
func TestClientBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	var hits atomic.Int32
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if failing.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"down","code":"unavailable"}`)
			return
		}
		fmt.Fprintln(w, `{"schedulers":["memheft"]}`)
	}))
	t.Cleanup(ts.Close)

	breaker := serve.NewBreaker(3, 50*time.Millisecond)
	client := serve.NewClient(ts.URL,
		serve.WithHTTPClient(ts.Client()),
		serve.WithRetry(serve.RetryPolicy{MaxAttempts: 1}), // isolate the breaker from the retry loop
		serve.WithBreaker(breaker),
	)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := client.Schedulers(ctx); err == nil {
			t.Fatalf("call %d against a failing server succeeded", i)
		}
	}
	if st := breaker.State(); st != serve.BreakerOpen {
		t.Fatalf("breaker after 3 failures = %v, want open", st)
	}
	netHits := hits.Load()
	if _, err := client.Schedulers(ctx); !errors.Is(err, serve.ErrBreakerOpen) {
		t.Fatalf("open-breaker call = %v, want ErrBreakerOpen", err)
	}
	if hits.Load() != netHits {
		t.Fatal("open-breaker call reached the network")
	}
	if serve.Retryable(serve.ErrBreakerOpen) {
		t.Fatal("ErrBreakerOpen must be terminal")
	}

	failing.Store(false)
	time.Sleep(60 * time.Millisecond) // past the cooldown: next call is the probe
	if _, err := client.Schedulers(ctx); err != nil {
		t.Fatalf("probe call failed: %v", err)
	}
	if st := breaker.State(); st != serve.BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", st)
	}
	if m := client.Metrics(); m.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1", m.BreakerTrips)
	}
}

// TestShutdownDrainMarksSweepStream is the drain-vs-crash regression test:
// a sweep stream cut down by graceful shutdown must end with a typed
// {"type":"error","code":"draining"} record, not a severed connection.
func TestShutdownDrainMarksSweepStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := serve.NewServer(serve.Config{
		Addr:            "127.0.0.1:0",
		ShutdownTimeout: 2 * time.Second, // run contexts are cut at half of this
		MaxRequestBytes: 64 << 20,
	})
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("listener did not bind")
	}
	client := serve.NewClient("http://" + addr)

	params := memsched.LargeRandParams()
	params.Size = 30000
	g, err := memsched.GenerateRandom(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := g.MarshalJSON()

	firstPoint := make(chan struct{})
	var once sync.Once
	sweepErr := make(chan error, 1)
	go func() {
		_, err := client.Sweep(context.Background(), serve.SweepRequest{
			Graph:      raw,
			Pools:      []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
			Alphas:     sweepAlphas(16),
			Schedulers: []string{"memminmin", "memheft"},
			Seeds:      []int64{1, 2},
			Workers:    1, // sequential: the stream reliably outlives the drain budget
		}, func(serve.SweepPoint) error {
			once.Do(func() { close(firstPoint) })
			return nil
		})
		sweepErr <- err
	}()

	select {
	case <-firstPoint:
	case err := <-sweepErr:
		t.Fatalf("sweep ended before streaming: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("sweep never started streaming")
	}
	cancel() // begin graceful shutdown while the stream is live

	select {
	case err := <-sweepErr:
		var apiErr *serve.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("drained stream returned %v, want a typed error record", err)
		}
		if apiErr.Code != serve.CodeDraining {
			t.Fatalf("drain record code = %q, want %q", apiErr.Code, serve.CodeDraining)
		}
		if !strings.Contains(apiErr.Message, "draining") {
			t.Fatalf("drain record message %q does not say draining", apiErr.Message)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drained sweep never returned")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}

// TestMetricsExportResilienceCounters: the new counters and gauges are on
// /metrics in the documented shape.
func TestMetricsExportResilienceCounters(t *testing.T) {
	srv := serve.NewServer(serve.Config{
		ChaosRate:   1,
		ChaosSeed:   1,
		ChaosFaults: []string{serve.FaultError},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := serve.NewClient(ts.URL, serve.WithHTTPClient(ts.Client()))

	raw, _ := memsched.PaperExample().MarshalJSON()
	if _, err := client.Schedule(context.Background(), serve.ScheduleRequest{Graph: raw, Pools: cap4()}); err == nil {
		t.Fatal("expected the injected 503")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(serve.RetryAttemptHeader, "1")
	if resp, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`memschedd_chaos_faults_total{kind="error"} 1`,
		`memschedd_chaos_faults_total{kind="latency"} 0`,
		`memschedd_chaos_faults_total{kind="truncate"} 0`,
		"memschedd_chaos_injected_total 1",
		"memschedd_retried_requests_total 1",
		"memschedd_shed_total 0",
		"memschedd_rate_limited_total 0",
		"memschedd_queue_depth 0",
		"memschedd_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestDrainClassificationIsRetryable: a pre-stream draining 503 is
// retryable (another replica can serve it), while an in-stream draining
// record is terminal for the call — the caller decides where to resume.
func TestDrainClassificationIsRetryable(t *testing.T) {
	err := &serve.APIError{Status: http.StatusServiceUnavailable, Code: serve.CodeDraining}
	if !serve.Retryable(err) {
		t.Fatal("a pre-stream draining 503 must be retryable")
	}
	inStream := &serve.APIError{Status: http.StatusOK, Code: serve.CodeDraining}
	if serve.Retryable(inStream) {
		t.Fatal("an in-stream draining record must be terminal for this call")
	}
}
