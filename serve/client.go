package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	memsched "repro"
	"repro/cluster/ring"
)

// Client is a typed client for the scheduling service. The zero value is
// not usable; call NewClient. A Client is safe for concurrent use; with
// WithRetry it transparently retries transient failures (see Retryable)
// under exponential backoff with full jitter, honoring Retry-After hints
// and the call's context, and with WithBreaker it fails fast while its
// circuit breaker is open.
type Client struct {
	base    string
	http    *http.Client
	retry   *RetryPolicy
	breaker *Breaker
	logger  *slog.Logger

	// Cluster mode (NewClusterClient): the keyed endpoints route to
	// ring.Owner of the request's graph key, and each retry walks one
	// step down the key's ring preference list.
	ring *ring.Ring

	// headers are set on every outgoing request (WithRequestHeader) —
	// e.g. the workload-class label an open-loop load generator tags its
	// traffic with.
	headers map[string]string

	attempts, retries atomic.Uint64
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"), using http.DefaultClient unless overridden with
// WithHTTPClient.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: baseURL, http: http.DefaultClient, logger: slog.New(slog.DiscardHandler)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewClusterClient returns a client that ring-routes each keyed request
// (register, schedule, simulate, sweep) directly to the replica owning the
// request's graph key — the same consistent-hash, same default virtual
// node count as the cluster router, so client-side routing reproduces the
// router's placement with zero extra network hops. With WithRetry, retry
// attempt k walks to the k-th member of the key's ring preference list:
// a down or draining owner fails over to the next ring owner and an
// overloaded owner's 429 spills to the second choice, never to a random
// replica. Unkeyed GET endpoints (Stats, Schedulers, Health) go to the
// first URL; probe replicas individually for per-replica state.
func NewClusterClient(baseURLs []string, opts ...ClientOption) (*Client, error) {
	r, err := ring.New(baseURLs)
	if err != nil {
		return nil, fmt.Errorf("serve: cluster client: %w", err)
	}
	c := NewClient(baseURLs[0], opts...)
	c.ring = r
	return c, nil
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport reuse, test doubles).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithRetry enables the retry loop: each call gets up to
// policy.MaxAttempts tries, retrying only errors the taxonomy marks
// Retryable. Safe by construction — register and schedule are idempotent
// by canonical graph hash, and a retried sweep resumes its point stream
// instead of re-delivering.
func WithRetry(policy RetryPolicy) ClientOption {
	policy = policy.withDefaults()
	return func(c *Client) { c.retry = &policy }
}

// WithBreaker guards every call with b: while b is open, calls return
// ErrBreakerOpen without touching the network.
func WithBreaker(b *Breaker) ClientOption {
	return func(c *Client) { c.breaker = b }
}

// WithLogger routes the client's structured logs to l: one warn line
// per retry (request id, attempt, cause) and per fast-failed call while
// the breaker is open. nil restores the default discard logger.
func WithLogger(l *slog.Logger) ClientOption {
	return func(c *Client) {
		if l == nil {
			l = slog.New(slog.DiscardHandler)
		}
		c.logger = l
	}
}

// WithRequestHeader sets a static header on every request this client
// sends — typically WorkloadClassHeader, so the server's /metrics can
// break latency and shed counts down by workload class.
func WithRequestHeader(key, value string) ClientOption {
	return func(c *Client) {
		if c.headers == nil {
			c.headers = make(map[string]string)
		}
		c.headers[key] = value
	}
}

// ClientMetrics is a snapshot of a Client's resilience counters.
type ClientMetrics struct {
	Attempts     uint64 // HTTP requests actually sent, retries included
	Retries      uint64 // attempts beyond the first, across all calls
	BreakerState BreakerState
	BreakerTrips uint64
}

// Metrics snapshots the client's attempt/retry counters and, when a
// breaker is configured, its state and trip count.
func (c *Client) Metrics() ClientMetrics {
	m := ClientMetrics{Attempts: c.attempts.Load(), Retries: c.retries.Load()}
	if c.breaker != nil {
		m.BreakerState = c.breaker.State()
		m.BreakerTrips = c.breaker.Trips()
	}
	return m
}

// baseFor picks the base URL of one attempt: single-node clients always
// use their configured base; cluster clients route a keyed request to the
// ring owner of its graph key and walk the preference list on retries, so
// failover lands on the replica the router would pick too. Unkeyed
// requests (key "") stay on the first URL.
func (c *Client) baseFor(key string, attempt int) string {
	if c.ring == nil || key == "" {
		return c.base
	}
	owners := c.ring.Owners(key, len(c.ring.Members()))
	return owners[attempt%len(owners)]
}

// keyOf derives the ring routing key of a keyed request (cluster clients
// only; "" routes to the default base). An inline graph hashes to the
// same canonical key registration would assign; a graph the server would
// reject routes by "" — any replica will produce the structured error.
func (c *Client) keyOf(graphID string, graph json.RawMessage, times [][]float64) string {
	if c.ring == nil {
		return ""
	}
	if graphID != "" {
		return graphID
	}
	if len(graph) > 0 {
		if key, err := GraphKey(graph, times); err == nil {
			return key
		}
	}
	return ""
}

// RegisterGraph registers g (with an optional pool-time matrix; pass nil
// for a dual graph) and returns its id.
func (c *Client) RegisterGraph(ctx context.Context, g *memsched.Graph, times [][]float64) (RegisterResponse, error) {
	raw, err := json.Marshal(g)
	if err != nil {
		return RegisterResponse{}, fmt.Errorf("serve: encoding graph: %w", err)
	}
	var out RegisterResponse
	err = c.post(ctx, "/v1/graphs", c.keyOf("", raw, times), RegisterRequest{Graph: raw, Times: times}, &out)
	return out, err
}

// Schedule runs a list-scheduling heuristic as described by req.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (ScheduleResponse, error) {
	var out ScheduleResponse
	err := c.post(ctx, "/v1/schedule", c.keyOf(req.GraphID, req.Graph, req.Times), req, &out)
	return out, err
}

// Simulate runs the online dispatcher as described by req (Policy selects
// the dispatch order; Scheduler and Insertion are ignored).
func (c *Client) Simulate(ctx context.Context, req ScheduleRequest) (ScheduleResponse, error) {
	var out ScheduleResponse
	err := c.post(ctx, "/v1/simulate", c.keyOf(req.GraphID, req.Graph, req.Times), req, &out)
	return out, err
}

// callbackError marks an error raised by the caller's onPoint callback:
// it aborts the sweep without retry and is unwrapped before returning.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }

// Sweep runs one batch evaluation (POST /v1/sweep) and decodes the NDJSON
// stream: onPoint (may be nil) is invoked for every point record in point
// order as it arrives, and the trailing summary is returned. A stream
// terminated by a server-side error record returns that error as an
// *APIError; a non-nil onPoint error aborts the decode and is returned.
//
// With WithRetry, a stream that dies mid-flight (ErrStreamTruncated, a
// reset connection) is retried; because point records arrive in strict
// index order and the engine is deterministic, the retried stream is
// resumed — points already handed to onPoint are skipped, so the callback
// sees every index exactly once.
func (c *Client) Sweep(ctx context.Context, req SweepRequest, onPoint func(SweepPoint) error) (*SweepSummary, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding request: %w", err)
	}
	key := c.keyOf(req.GraphID, req.Graph, req.Times)
	next := 0 // first point index not yet delivered to onPoint
	deliver := func(pt SweepPoint) error {
		if pt.Index < next {
			return nil // replayed by a resumed stream
		}
		next = pt.Index + 1
		if onPoint != nil {
			if err := onPoint(pt); err != nil {
				return &callbackError{err}
			}
		}
		return nil
	}

	attempts := 1
	if c.retry != nil {
		attempts = c.retry.MaxAttempts
	}
	id := requestIDFor(ctx)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			c.logRetry(ctx, id, "/v1/sweep", attempt, lastErr)
			if err := sleepCtx(ctx, c.retry.delay(attempt, retryAfterOf(lastErr))); err != nil {
				return nil, lastErr
			}
		}
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				c.logBreakerOpen(ctx, id, "/v1/sweep")
				return nil, err
			}
		}
		sum, err := c.sweepOnce(ctx, c.baseFor(key, attempt), body, deliver, attempt, id)
		var cb *callbackError
		isCallback := errors.As(err, &cb)
		if c.breaker != nil {
			c.breaker.record(err == nil || isCallback || !Retryable(err))
		}
		if err == nil {
			return sum, nil
		}
		if isCallback {
			return nil, cb.err
		}
		if !Retryable(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// sweepOnce is one attempt of Sweep: one POST and one full stream decode.
func (c *Client) sweepOnce(ctx context.Context, base string, body []byte, deliver func(SweepPoint) error, attempt int, id string) (*SweepSummary, error) {
	c.attempts.Add(1)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range c.headers {
		hreq.Header.Set(k, v)
	}
	hreq.Header.Set(RequestIDHeader, attemptID(id, attempt))
	if attempt > 0 {
		hreq.Header.Set(RetryAttemptHeader, strconv.Itoa(attempt))
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, DecodeAPIError(resp)
	}

	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("serve: %w: stream ended without a summary", ErrStreamTruncated)
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("serve: %w: stream died mid-record", ErrStreamTruncated)
			}
			return nil, fmt.Errorf("serve: decoding sweep stream: %w", err)
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("serve: decoding sweep record: %w", err)
		}
		switch kind.Type {
		case "point":
			var pt SweepPoint
			if err := json.Unmarshal(raw, &pt); err != nil {
				return nil, fmt.Errorf("serve: decoding sweep point: %w", err)
			}
			if err := deliver(pt); err != nil {
				return nil, err
			}
		case "summary":
			var sum SweepSummary
			if err := json.Unmarshal(raw, &sum); err != nil {
				return nil, fmt.Errorf("serve: decoding sweep summary: %w", err)
			}
			return &sum, nil
		case "error":
			var se SweepError
			if err := json.Unmarshal(raw, &se); err != nil {
				return nil, fmt.Errorf("serve: decoding sweep error: %w", err)
			}
			// The stream's HTTP status was already 200; the record's
			// code classifies the failure.
			return nil, &APIError{Status: http.StatusOK, Code: se.Code, Message: se.Error}
		default:
			return nil, fmt.Errorf("serve: unknown sweep record type %q", kind.Type)
		}
	}
}

// Schedulers lists the heuristic names registered on the server.
func (c *Client) Schedulers(ctx context.Context) ([]string, error) {
	var out SchedulersResponse
	if err := c.get(ctx, "/v1/schedulers", &out); err != nil {
		return nil, err
	}
	return out.Schedulers, nil
}

// Stats fetches the server counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.get(ctx, "/v1/stats", &out)
	return out, err
}

// Health probes /healthz; a nil error means the server answered healthy.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.Healthz(ctx)
	return err
}

// Healthz probes /healthz and returns the replica's health body: its id,
// drain state and session-cache counters. A draining replica answers 503,
// which surfaces as an *APIError.
func (c *Client) Healthz(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.get(ctx, "/healthz", &out)
	return out, err
}

func (c *Client) post(ctx context.Context, path, key string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("serve: encoding request: %w", err)
	}
	return c.call(ctx, http.MethodPost, path, key, body, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.call(ctx, http.MethodGet, path, "", nil, out)
}

// call drives one logical request through the retry loop: breaker gate,
// attempt, classify, back off (full jitter, floored at the server's
// Retry-After hint), try again — until success, a terminal error, the
// attempt budget, or the caller's context ends. In cluster mode each
// attempt of a keyed request targets the next member of the key's ring
// preference list.
func (c *Client) call(ctx context.Context, method, path, key string, body []byte, out any) error {
	attempts := 1
	if c.retry != nil {
		attempts = c.retry.MaxAttempts
	}
	id := requestIDFor(ctx)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			c.logRetry(ctx, id, path, attempt, lastErr)
			if err := sleepCtx(ctx, c.retry.delay(attempt, retryAfterOf(lastErr))); err != nil {
				return lastErr
			}
		}
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				c.logBreakerOpen(ctx, id, path)
				return err
			}
		}
		err := c.once(ctx, method, c.baseFor(key, attempt)+path, body, out, attempt, id)
		if c.breaker != nil {
			c.breaker.record(err == nil || !Retryable(err))
		}
		if err == nil {
			return nil
		}
		if !Retryable(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// once sends a single attempt to url and decodes the response. id is the
// logical call's base request id; retries carry it suffixed with the
// attempt number, so every attempt is distinct in server logs while the
// base id stays a common substring across all of them.
func (c *Client) once(ctx context.Context, method, url string, body []byte, out any, attempt int, id string) error {
	c.attempts.Add(1)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
	req.Header.Set(RequestIDHeader, attemptID(id, attempt))
	if attempt > 0 {
		req.Header.Set(RetryAttemptHeader, strconv.Itoa(attempt))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return DecodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decoding response: %w", err)
	}
	return nil
}

// requestIDFor derives the base request id of one logical call: the id
// stamped on ctx (ContextWithRequestID) when the caller wants to pick
// it, a fresh one otherwise.
func requestIDFor(ctx context.Context) string {
	if id := RequestIDFromContext(ctx); validRequestID(id) {
		return id
	}
	return NewRequestID()
}

// attemptID is the X-Request-ID of one attempt: the base id, suffixed
// with the attempt number on retries.
func attemptID(base string, attempt int) string {
	if attempt == 0 {
		return base
	}
	return base + "-" + strconv.Itoa(attempt)
}

func (c *Client) logRetry(ctx context.Context, id, path string, attempt int, cause error) {
	if !c.logger.Enabled(ctx, slog.LevelWarn) {
		return
	}
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	c.logger.LogAttrs(ctx, slog.LevelWarn, "retrying",
		slog.String("request_id", id),
		slog.String("path", path),
		slog.Int("attempt", attempt),
		slog.String("cause", msg))
}

func (c *Client) logBreakerOpen(ctx context.Context, id, path string) {
	if !c.logger.Enabled(ctx, slog.LevelWarn) {
		return
	}
	c.logger.LogAttrs(ctx, slog.LevelWarn, "breaker open",
		slog.String("request_id", id),
		slog.String("path", path))
}

// DecodeAPIError turns a non-2xx response into a typed *APIError, keeping
// the structured {error, code} body when there is one, the Retry-After
// hint when set, and the server's X-Request-ID (falling back to the error
// body's request_id) so failures can be chased through server logs.
// Exported for layers that speak to a replica without a Client — the
// cluster router classifies upstream refusals (draining 503s,
// backpressure 429s) with it.
func DecodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: CodeInternal,
		Message:   fmt.Sprintf("unexpected response (status %s)", resp.Status),
		RequestID: resp.Header.Get(RequestIDHeader)}
	var body ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil && body.Error != "" {
		ae.Code, ae.Message = body.Code, body.Error
		if ae.RequestID == "" {
			ae.RequestID = body.RequestID
		}
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	return ae
}
