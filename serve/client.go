package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	memsched "repro"
)

// Client is a typed client for the scheduling service. The zero value is
// not usable; call NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"), using http.DefaultClient unless overridden with
// WithHTTPClient.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: baseURL, http: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport reuse, test doubles).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// RegisterGraph registers g (with an optional pool-time matrix; pass nil
// for a dual graph) and returns its id.
func (c *Client) RegisterGraph(ctx context.Context, g *memsched.Graph, times [][]float64) (RegisterResponse, error) {
	raw, err := json.Marshal(g)
	if err != nil {
		return RegisterResponse{}, fmt.Errorf("serve: encoding graph: %w", err)
	}
	var out RegisterResponse
	err = c.post(ctx, "/v1/graphs", RegisterRequest{Graph: raw, Times: times}, &out)
	return out, err
}

// Schedule runs a list-scheduling heuristic as described by req.
func (c *Client) Schedule(ctx context.Context, req ScheduleRequest) (ScheduleResponse, error) {
	var out ScheduleResponse
	err := c.post(ctx, "/v1/schedule", req, &out)
	return out, err
}

// Simulate runs the online dispatcher as described by req (Policy selects
// the dispatch order; Scheduler and Insertion are ignored).
func (c *Client) Simulate(ctx context.Context, req ScheduleRequest) (ScheduleResponse, error) {
	var out ScheduleResponse
	err := c.post(ctx, "/v1/simulate", req, &out)
	return out, err
}

// Sweep runs one batch evaluation (POST /v1/sweep) and decodes the NDJSON
// stream: onPoint (may be nil) is invoked for every point record in point
// order as it arrives, and the trailing summary is returned. A stream
// terminated by a server-side error record returns that error as an
// *APIError; a non-nil onPoint error aborts the decode and is returned.
func (c *Client) Sweep(ctx context.Context, req SweepRequest, onPoint func(SweepPoint) error) (*SweepSummary, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if jerr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&apiErr); jerr != nil || apiErr.Error == "" {
			return nil, &APIError{Status: resp.StatusCode, Code: CodeInternal,
				Message: fmt.Sprintf("unexpected response (status %s)", resp.Status)}
		}
		return nil, &APIError{Status: resp.StatusCode, Code: apiErr.Code, Message: apiErr.Error}
	}

	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("serve: sweep stream ended without a summary")
			}
			return nil, fmt.Errorf("serve: decoding sweep stream: %w", err)
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("serve: decoding sweep record: %w", err)
		}
		switch kind.Type {
		case "point":
			var pt SweepPoint
			if err := json.Unmarshal(raw, &pt); err != nil {
				return nil, fmt.Errorf("serve: decoding sweep point: %w", err)
			}
			if onPoint != nil {
				if err := onPoint(pt); err != nil {
					return nil, err
				}
			}
		case "summary":
			var sum SweepSummary
			if err := json.Unmarshal(raw, &sum); err != nil {
				return nil, fmt.Errorf("serve: decoding sweep summary: %w", err)
			}
			return &sum, nil
		case "error":
			var se SweepError
			if err := json.Unmarshal(raw, &se); err != nil {
				return nil, fmt.Errorf("serve: decoding sweep error: %w", err)
			}
			// The stream's HTTP status was already 200; the record's
			// code classifies the failure.
			return nil, &APIError{Status: http.StatusOK, Code: se.Code, Message: se.Error}
		default:
			return nil, fmt.Errorf("serve: unknown sweep record type %q", kind.Type)
		}
	}
}

// Schedulers lists the heuristic names registered on the server.
func (c *Client) Schedulers(ctx context.Context) ([]string, error) {
	var out SchedulersResponse
	if err := c.get(ctx, "/v1/schedulers", &out); err != nil {
		return nil, err
	}
	return out.Schedulers, nil
}

// Stats fetches the server counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.get(ctx, "/v1/stats", &out)
	return out, err
}

// Health probes /healthz; a nil error means the server answered.
func (c *Client) Health(ctx context.Context) error {
	return c.get(ctx, "/healthz", &map[string]string{})
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("serve: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr ErrorResponse
		if jerr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&apiErr); jerr != nil || apiErr.Error == "" {
			return &APIError{Status: resp.StatusCode, Code: CodeInternal,
				Message: fmt.Sprintf("unexpected response (status %s)", resp.Status)}
		}
		return &APIError{Status: resp.StatusCode, Code: apiErr.Code, Message: apiErr.Error}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decoding response: %w", err)
	}
	return nil
}
