package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	memsched "repro"
	"repro/internal/memo"
	"repro/internal/trace"
	"repro/sweep"
)

// Config tunes a Server. The zero value is usable: every field has a
// default (see the field comments).
type Config struct {
	// Addr is the listen address of ListenAndServe (default "127.0.0.1:8080").
	Addr string
	// ReplicaID names this replica in the /healthz body so routers and
	// load reports can attribute state per replica. Empty is fine for a
	// single-node deployment (default "").
	ReplicaID string
	// CacheSize bounds the session LRU cache (default 256 graphs).
	CacheSize int
	// MaxInFlight bounds the number of requests concurrently doing
	// CPU-bound work (body decode, graph validation, scheduling runs);
	// excess requests wait for a slot (default 64).
	MaxInFlight int
	// MaxRequestBytes bounds request bodies (default 8 MiB); larger
	// payloads get a structured 413.
	MaxRequestBytes int64
	// MaxRunTime caps one scheduling run (default 30s); a request's
	// timeout_ms may shorten it but never extend past the cap.
	MaxRunTime time.Duration
	// MaxSweepTime caps one whole sweep request (default 5m); the
	// request's timeout_ms may shorten it.
	MaxSweepTime time.Duration
	// MaxSweepPoints bounds the number of points one sweep request may
	// expand to (default 4096); larger grids get a structured 400.
	MaxSweepPoints int
	// MaxSweepWorkers is the server-wide sweep-worker budget (default
	// GOMAXPROCS): the total fan-out across all concurrently executing
	// sweep requests never exceeds it. Each sweep claims up to its
	// requested worker count (0 in a request = the whole budget) from
	// whatever is currently free, and always gets at least one, so
	// concurrent sweeps degrade to narrower pools instead of
	// oversubscribing the CPUs.
	MaxSweepWorkers int
	// RateLimit, when > 0, enables the token-bucket rate limiter over the
	// /v1 endpoints: requests per second, shared across all clients.
	// Refused requests get a structured 429 (code "rate_limited") with a
	// Retry-After header (default off).
	RateLimit float64
	// RateBurst is the token bucket's depth (default ceil(RateLimit),
	// minimum 1).
	RateBurst int
	// ShedQueueDepth, when > 0, enables the load shedder: once every
	// in-flight slot is busy and this many requests are already queued
	// for one, further requests are refused immediately with a structured
	// 429 (code "shed") + Retry-After instead of queueing (default off —
	// requests wait as long as their context allows).
	ShedQueueDepth int
	// ChaosRate, when in (0, 1], enables the deterministic fault-injection
	// middleware on the /v1 endpoints: each request is faulted with this
	// probability (default off). Faults are drawn from ChaosFaults by a
	// PRNG seeded with ChaosSeed, so a fixed seed reproduces the same
	// fault sequence for the same request sequence.
	ChaosRate float64
	// ChaosSeed seeds the chaos PRNG (0 is a valid seed).
	ChaosSeed int64
	// ChaosMaxLatency bounds one injected latency fault (default 25ms).
	ChaosMaxLatency time.Duration
	// ChaosFaults selects the injected fault kinds (FaultLatency,
	// FaultError, FaultTruncate); empty = all three.
	ChaosFaults []string
	// ReadTimeout / WriteTimeout configure the HTTP server of
	// ListenAndServe (defaults 10s / 60s). Sweep streams are exempt from
	// WriteTimeout: the sweep handler extends its connection's write
	// deadline to cover the sweep's own budget.
	ReadTimeout, WriteTimeout time.Duration
	// ShutdownTimeout bounds the graceful drain of ListenAndServe after
	// its context is cancelled (default 10s); runs still alive afterwards
	// have their contexts cancelled.
	ShutdownTimeout time.Duration
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Logger receives the server's structured logs: one access line per
	// request at info (request id, route, status, bytes, duration,
	// session-cache outcome), refusal events (shed, rate limit, injected
	// chaos) at warn, retained trace captures at debug. nil discards
	// everything at zero cost — log lines are built only when the level
	// is enabled.
	Logger *slog.Logger
	// TraceKeep bounds the per-route ring of slowest request traces
	// behind GET /debug/traces (default 8 per route).
	TraceKeep int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.MaxRunTime <= 0 {
		c.MaxRunTime = 30 * time.Second
	}
	if c.MaxSweepTime <= 0 {
		c.MaxSweepTime = 5 * time.Minute
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 4096
	}
	if c.MaxSweepWorkers <= 0 {
		c.MaxSweepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(math.Ceil(c.RateLimit))
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.ChaosMaxLatency <= 0 {
		c.ChaosMaxLatency = 25 * time.Millisecond
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 60 * time.Second
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.TraceKeep <= 0 {
		c.TraceKeep = 8
	}
	return c
}

// Server is the HTTP scheduling service. Create one with NewServer, mount
// Handler on any HTTP server, or run the full lifecycle (listen, serve,
// graceful shutdown) with ListenAndServe. Requests flow through an
// explicit, ordered middleware chain (see serve/middleware.go): chaos
// injection, rate limiting, load shedding, admission control, body caps —
// each an independent link, ready to be recomposed in front of a replica
// router.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	sem      chan struct{}
	sweepSem chan struct{}  // server-wide sweep-worker tokens (MaxSweepWorkers)
	limiter  *tokenBucket   // nil unless RateLimit > 0
	chaos    *chaosInjector // nil unless ChaosRate > 0
	logger   *slog.Logger
	traces   *traceStore
	start    time.Time

	smu      sync.Mutex
	sessions *memo.LRU[string, *memsched.Session]

	requests, scheduled           atomic.Uint64
	sessionHits, sessionMisses    atomic.Uint64
	candidateHits, candidateMiss  atomic.Uint64
	sweepPoints                   atomic.Uint64
	sweepReplayed, sweepTruncated atomic.Uint64
	shed, rateLimited, retried    atomic.Uint64
	inFlight, waiting             atomic.Int64
	draining                      atomic.Bool
	prom                          *metrics

	readyOnce sync.Once
	ready     chan struct{}
	boundAddr atomic.Value // string, set once the listener is bound
}

// NewServer builds a Server from cfg (zero value = all defaults).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		sweepSem: make(chan struct{}, cfg.MaxSweepWorkers),
		sessions: memo.NewLRU[string, *memsched.Session](cfg.CacheSize),
		start:    time.Now(),
		ready:    make(chan struct{}),
		prom:     newMetrics(),
		logger:   cfg.Logger,
		traces:   newTraceStore(cfg.TraceKeep),
	}
	if cfg.RateLimit > 0 {
		s.limiter = newTokenBucket(cfg.RateLimit, cfg.RateBurst)
	}
	if cfg.ChaosRate > 0 {
		s.chaos = newChaosInjector(cfg)
	}

	// The middleware chains, outermost link first (metrics instrumentation
	// wraps the whole mux in Handler). GET endpoints bypass everything so
	// probes and scrapes stay reliable under overload and injected chaos.
	api := Chain(s.withChaos, s.withRateLimit, s.withShed, s.withAdmission, s.withBodyCap)
	sweepChain := Chain(s.withChaos, s.withRateLimit, s.withShed, s.withSweepAdmission, s.withBodyCap)

	mux := http.NewServeMux()
	mux.Handle("POST /v1/graphs", api(http.HandlerFunc(s.handleRegister)))
	mux.Handle("POST /v1/schedule", api(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { s.handleRun(w, r, false) })))
	mux.Handle("POST /v1/simulate", api(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { s.handleRun(w, r, true) })))
	mux.Handle("POST /v1/sweep", sweepChain(http.HandlerFunc(s.handleSweep)))
	mux.HandleFunc("GET /v1/schedulers", s.handleSchedulers)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler (all /v1 endpoints plus
// /healthz, the Prometheus /metrics and the /debug/traces ring),
// independent of the ListenAndServe lifecycle. Every request is counted
// and timed into the metrics registry by endpoint and status code,
// assigned a request id (adopted from X-Request-ID or generated) that is
// echoed on the response before any handler runs — so even refusals
// carry it — and logged as one structured access line. POST /v1
// requests additionally run under a span recorder; timelines that rank
// among the slowest per route are retained for GET /debug/traces.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		attempt := r.Header.Get(RetryAttemptHeader)
		if attempt != "" {
			s.retried.Add(1)
		}
		start := time.Now()
		id := EnsureRequestID(r)
		w.Header().Set(RequestIDHeader, id)
		note := &reqNote{}
		ctx := ContextWithRequestID(r.Context(), id)
		ctx = context.WithValue(ctx, noteKey{}, note)
		var rec *trace.Recorder
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/") {
			rec = trace.NewRecorder()
			ctx = trace.WithRecorder(ctx, rec)
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		s.mux.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: implicit 200
		}
		elapsed := time.Since(start)
		route := endpointLabel(r.URL.Path)
		s.prom.observe(route, r.Header.Get(WorkloadClassHeader), status, elapsed)
		if rec != nil && rec.Len() > 0 {
			capture := TraceCapture{
				RequestID:    id,
				Route:        route,
				Status:       status,
				Start:        rec.Epoch(),
				DurMicros:    elapsed.Microseconds(),
				Spans:        wireSpans(rec),
				DroppedSpans: rec.Dropped(),
			}
			if s.traces.offer(capture) && s.logger.Enabled(ctx, slog.LevelDebug) {
				s.logger.LogAttrs(ctx, slog.LevelDebug, "trace captured",
					slog.String("request_id", id),
					slog.String("route", route),
					slog.Int64("dur_us", capture.DurMicros),
					slog.Int("spans", len(capture.Spans)))
			}
		}
		if s.logger.Enabled(ctx, slog.LevelInfo) {
			attrs := make([]slog.Attr, 0, 10)
			attrs = append(attrs,
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed))
			if s.cfg.ReplicaID != "" {
				attrs = append(attrs, slog.String("replica", s.cfg.ReplicaID))
			}
			if attempt != "" {
				attrs = append(attrs, slog.String("retry_attempt", attempt))
			}
			if class := r.Header.Get(WorkloadClassHeader); class != "" {
				attrs = append(attrs, slog.String("class", class))
			}
			if note.cacheKnown {
				attrs = append(attrs, slog.Bool("session_cached", note.cacheHit))
			}
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
		}
	})
}

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get cfg.ShutdownTimeout to drain, and any still alive afterwards
// have their request contexts cancelled so runs stop cooperatively. It
// returns nil after a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.readyOnce.Do(func() { close(s.ready) })
		return err
	}
	s.boundAddr.Store(ln.Addr().String())
	s.readyOnce.Do(func() { close(s.ready) })
	s.cfg.Logf("memschedd: listening on %s (cache %d sessions, %d in-flight)",
		ln.Addr(), s.cfg.CacheSize, s.cfg.MaxInFlight)

	baseCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()
	srv := &http.Server{
		Handler:      s.Handler(),
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
		BaseContext:  func(net.Listener) context.Context { return baseCtx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.cfg.Logf("memschedd: shutting down (draining up to %v)", s.cfg.ShutdownTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	// In-flight work gets half the drain budget to finish normally; then
	// its request contexts are cut while the connections are still open, so
	// stragglers terminate as typed "draining" errors (a final NDJSON error
	// record on committed sweep streams) instead of severed connections.
	// The remaining half flushes those responses — it must cover Shutdown's
	// idle-connection poll interval (up to ~500ms), so the budget halves
	// rather than taking a thinner slice.
	grace := time.AfterFunc(s.cfg.ShutdownTimeout/2, cancelRuns)
	shutErr := srv.Shutdown(shutCtx)
	grace.Stop()
	cancelRuns() // cut the request contexts of anything that outlived the drain
	if shutErr != nil {
		_ = srv.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	if shutErr != nil {
		return fmt.Errorf("serve: shutdown: %w", shutErr)
	}
	s.cfg.Logf("memschedd: shutdown complete")
	return nil
}

// Addr returns the bound listen address of ListenAndServe; it blocks until
// the listener is bound (useful with ":0") and returns "" if binding
// failed.
func (s *Server) Addr() string {
	<-s.ready
	if a, ok := s.boundAddr.Load().(string); ok {
		return a
	}
	return ""
}

// handleHealthz answers the liveness/readiness probe with the replica's
// identity and session-cache state. A draining replica answers 503 so ring
// routers (and plain load balancers watching the status code) stop sending
// it work while its in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.smu.Lock()
	cached, evictions := s.sessions.Len(), s.sessions.Evictions()
	s.smu.Unlock()
	resp := HealthResponse{
		Status:          "ok",
		ReplicaID:       s.cfg.ReplicaID,
		Draining:        s.draining.Load(),
		SessionsCached:  cached,
		SessionCapacity: s.cfg.CacheSize,
		SessionHits:     s.sessionHits.Load(),
		SessionMisses:   s.sessionMisses.Load(),
		Evictions:       evictions,
		UptimeMS:        time.Since(s.start).Milliseconds(),
	}
	status := http.StatusOK
	if resp.Draining {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() StatsResponse {
	s.smu.Lock()
	cached := s.sessions.Len()
	evictions := s.sessions.Evictions()
	s.smu.Unlock()
	st := StatsResponse{
		Requests:                   s.requests.Load(),
		Scheduled:                  s.scheduled.Load(),
		SweepPoints:                s.sweepPoints.Load(),
		SweepReplayedPlacements:    s.sweepReplayed.Load(),
		SweepReplayTruncatedPoints: s.sweepTruncated.Load(),
		SessionHits:                s.sessionHits.Load(),
		SessionMisses:              s.sessionMisses.Load(),
		SessionsCached:             cached,
		SessionCapacity:            s.cfg.CacheSize,
		SessionEvictions:           evictions,
		CandidateHits:              s.candidateHits.Load(),
		CandidateMisses:            s.candidateMiss.Load(),
		InFlight:                   s.inFlight.Load(),
		MaxInFlight:                s.cfg.MaxInFlight,
		QueueDepth:                 s.waiting.Load(),
		Shed:                       s.shed.Load(),
		RateLimited:                s.rateLimited.Load(),
		Retried:                    s.retried.Load(),
		Draining:                   s.draining.Load(),
		UptimeMS:                   time.Since(s.start).Milliseconds(),
	}
	if s.chaos != nil {
		st.ChaosLatency = s.chaos.latencies.Load()
		st.ChaosErrors = s.chaos.faults.Load()
		st.ChaosTruncations = s.chaos.truncations.Load()
	}
	return st
}

// acquire takes one in-flight slot, waiting until one frees or ctx ends.
// The waiting gauge feeds the load shedder and the queue_depth stat.
func (s *Server) acquire(ctx context.Context) error {
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() {
	s.inFlight.Add(-1)
	<-s.sem
}

// acquireSweepToken blocks (respecting ctx) for one token of the
// server-wide sweep-worker budget — the admission ticket of a sweep
// request, claimed before the general in-flight slot so queued sweeps
// never camp on the slots the schedule path needs.
func (s *Server) acquireSweepToken(ctx context.Context) error {
	select {
	case s.sweepSem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// topUpSweepWorkers grows a sweep's claim from held tokens toward want
// without waiting: concurrent sweeps share whatever of the budget is free
// instead of stacking full-size pools. Returns the new total.
func (s *Server) topUpSweepWorkers(held, want int) int {
	for held < want {
		select {
		case s.sweepSem <- struct{}{}:
			held++
		default:
			return held
		}
	}
	return held
}

// releaseSweepWorkers returns n claimed tokens.
func (s *Server) releaseSweepWorkers(n int) {
	for i := 0; i < n; i++ {
		<-s.sweepSem
	}
}

// decodeBody decodes the JSON request body into v, reporting (status,
// code) classified errors. The size bound itself lives in the withBodyCap
// middleware; the *http.MaxBytesError it produces surfaces here, at the
// first read past the cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return err
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed JSON: "+err.Error())
		return err
	}
	return nil
}

// buildSession decodes an inline graph (plus optional times matrix) into a
// validated Session. Errors have already been written to w.
func (s *Server) buildSession(w http.ResponseWriter, raw json.RawMessage, times [][]float64) (*memsched.Session, bool) {
	g := memsched.NewGraph()
	if err := json.Unmarshal(raw, g); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed graph: "+err.Error())
		return nil, false
	}
	var opts []memsched.SessionOption
	if times != nil {
		opts = append(opts, memsched.WithPoolTimes(times))
	}
	sess, err := memsched.NewSession(g, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid graph: "+err.Error())
		return nil, false
	}
	return sess, true
}

// intern stores sess in the session cache under its canonical hash. When an
// identical session is already resident the warm one is returned and kept
// (cached = true).
func (s *Server) intern(sess *memsched.Session) (resident *memsched.Session, cached bool) {
	key := sess.GraphHash()
	s.smu.Lock()
	defer s.smu.Unlock()
	if warm, ok := s.sessions.Get(key); ok {
		return warm, true
	}
	s.sessions.Put(key, sess)
	return sess, false
}

func (s *Server) lookup(id string) (*memsched.Session, bool) {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.sessions.Get(id)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	// Admission (the in-flight slot) happened in withAdmission: registration
	// decodes and validates arbitrary graphs — CPU-bound work that shares
	// the in-flight budget with the scheduling runs.
	endDecode := trace.Start(r.Context(), "decode")
	var req RegisterRequest
	if s.decodeBody(w, r, &req) != nil {
		endDecode()
		return
	}
	endDecode()
	if len(req.Graph) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, `missing "graph"`)
		return
	}
	sess, ok := s.buildSession(w, req.Graph, req.Times)
	if !ok {
		return
	}
	sess, cached := s.intern(sess)
	g := sess.Graph()
	writeJSON(w, http.StatusOK, RegisterResponse{
		ID:     sess.GraphHash(),
		Tasks:  g.NumTasks(),
		Edges:  g.NumEdges(),
		Cached: cached,
	})
}

// resolveSession turns a request's graph reference (id or inline) into a
// session, preferring a cached warm one. Errors have been written to w.
func (s *Server) resolveSession(w http.ResponseWriter, graphID string, graph json.RawMessage, times [][]float64) (sess *memsched.Session, fromCache, ok bool) {
	switch {
	case graphID != "" && len(graph) > 0:
		writeError(w, http.StatusBadRequest, CodeBadRequest, `set exactly one of "graph_id" and "graph"`)
		return nil, false, false
	case graphID != "":
		if times != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, `"times" requires an inline "graph" (a registered id already carries its matrix)`)
			return nil, false, false
		}
		sess, found := s.lookup(graphID)
		if !found {
			s.sessionMisses.Add(1)
			writeError(w, http.StatusNotFound, CodeNotFound,
				fmt.Sprintf("graph %q is not registered (register it or inline it; the cache is bounded, so it may have been evicted)", graphID))
			return nil, false, false
		}
		s.sessionHits.Add(1)
		return sess, true, true
	case len(graph) > 0:
		built, ok := s.buildSession(w, graph, times)
		if !ok {
			return nil, false, false
		}
		sess, cached := s.intern(built)
		if cached {
			s.sessionHits.Add(1)
		} else {
			s.sessionMisses.Add(1)
		}
		return sess, cached, true
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, `set "graph_id" or "graph"`)
		return nil, false, false
	}
}

// platformOf validates and builds the request's platform. Errors have been
// written to w.
func platformOf(w http.ResponseWriter, specs []PoolSpec) (memsched.Platform, bool) {
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, `missing "pools"`)
		return memsched.Platform{}, false
	}
	pools := make([]memsched.Pool, len(specs))
	for i, spec := range specs {
		capacity := int64(memsched.Unlimited)
		if spec.Capacity != nil {
			capacity = *spec.Capacity
		}
		pools[i] = memsched.Pool{Procs: spec.Procs, Capacity: capacity}
	}
	p := memsched.NewPlatform(pools...)
	if err := p.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid platform: "+err.Error())
		return memsched.Platform{}, false
	}
	return p, true
}

// knownScheduler reports whether name resolves in the scheduler registry.
func knownScheduler(name string) bool {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, n := range memsched.Schedulers() {
		if n == name {
			return true
		}
	}
	return false
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, simulate bool) {
	// withAdmission already holds the in-flight slot across this whole
	// span — body decode, graph validation and the scheduling run, not
	// just the engine call: multi-MB inline graphs cost real CPU before
	// scheduling starts.
	endDecode := trace.Start(r.Context(), "decode")
	var req ScheduleRequest
	if s.decodeBody(w, r, &req) != nil {
		endDecode()
		return
	}
	endDecode()
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, `"timeout_ms" must be >= 0`)
		return
	}
	var policy memsched.SimPolicy
	if simulate {
		switch strings.ToLower(strings.TrimSpace(req.Policy)) {
		case "", "rank":
			policy = memsched.SimRankPolicy
		case "eft":
			policy = memsched.SimEFTPolicy
		default:
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("unknown policy %q (known: rank, eft)", req.Policy))
			return
		}
	}
	scheduler := req.Scheduler
	if scheduler == "" {
		scheduler = "memheft"
	}
	if !simulate && !knownScheduler(scheduler) {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown scheduler %q (known: %s)", req.Scheduler, strings.Join(memsched.Schedulers(), ", ")))
		return
	}
	endResolve := trace.Start(r.Context(), "resolve")
	sess, fromCache, ok := s.resolveSession(w, req.GraphID, req.Graph, req.Times)
	endResolve()
	if !ok {
		return
	}
	if n := noteFrom(r.Context()); n != nil {
		n.cacheKnown, n.cacheHit = true, fromCache
	}
	p, ok := platformOf(w, req.Pools)
	if !ok {
		return
	}

	ctx := r.Context()
	timeout := s.cfg.MaxRunTime
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var (
		res *memsched.Result
		err error
	)
	endEngine := trace.Start(ctx, "engine")
	if simulate {
		res, err = sess.Simulate(ctx, p, memsched.WithPolicy(policy), memsched.WithSeed(req.Seed))
	} else {
		opts := []memsched.ScheduleOption{memsched.WithScheduler(scheduler), memsched.WithSeed(req.Seed)}
		if req.Insertion {
			opts = append(opts, memsched.WithInsertion())
		}
		res, err = sess.Schedule(ctx, p, opts...)
	}
	endEngine()
	if err != nil {
		status, code := classify(err)
		msg := err.Error()
		if s.draining.Load() && errors.Is(err, context.Canceled) {
			// The run died because the server is shutting down, not because
			// the work was wrong — tell the client to retry elsewhere.
			status, code = http.StatusServiceUnavailable, CodeDraining
			msg = "server draining for shutdown: " + msg
		}
		writeError(w, status, code, msg)
		return
	}
	s.scheduled.Add(1)
	s.candidateHits.Add(res.Stats.CacheHits)
	s.candidateMiss.Add(res.Stats.CacheMisses)

	// PeakResidency scans every file residency interval (O(E log E) on a
	// cold result) — real time the engine span does not cover, so it gets
	// its own.
	endFinalize := trace.Start(r.Context(), "finalize")
	resp := ScheduleResponse{
		GraphID:       sess.GraphHash(),
		Scheduler:     res.Stats.Scheduler,
		Makespan:      res.Makespan(),
		Peaks:         res.PeakResidency(),
		PoolTasks:     res.Stats.PoolTasks,
		CacheHits:     res.Stats.CacheHits,
		CacheMisses:   res.Stats.CacheMisses,
		CacheHitRate:  res.Stats.CacheHitRate(),
		Events:        res.Stats.Events,
		WallMicros:    res.Stats.WallTime.Microseconds(),
		SessionCached: fromCache,
		RequestID:     RequestIDFromContext(r.Context()),
	}
	if req.Placements {
		resp.TaskPlacements = placementsOf(res)
	}
	endFinalize()
	if r.URL.Query().Get("trace") == "1" {
		if rec := trace.FromContext(r.Context()); rec != nil {
			resp.Trace = wireSpans(rec)
		}
	}
	// The encode span cannot appear in its own payload; it is recorded
	// for the /debug/traces capture only.
	endEncode := trace.Start(r.Context(), "encode")
	writeJSON(w, http.StatusOK, resp)
	endEncode()
}

func placementsOf(res *memsched.Result) []Placement {
	switch {
	case res.Schedule != nil:
		out := make([]Placement, len(res.Schedule.Tasks))
		for i, t := range res.Schedule.Tasks {
			out[i] = Placement{Task: i, Start: t.Start, Proc: t.Proc}
		}
		return out
	case res.Pools != nil:
		out := make([]Placement, len(res.Pools.Tasks))
		for i, t := range res.Pools.Tasks {
			out[i] = Placement{Task: i, Start: t.Start, Proc: t.Proc}
		}
		return out
	}
	return nil
}

// sweepSpecOf maps a sweep request onto the engine Spec and enforces the
// server-side caps. Only the wire-level shape is checked here — value-level
// spec validation belongs to the engine, whose pre-stream errors surface as
// structured 400s because handleSweep commits the response status lazily.
// Errors have been written to w.
func (s *Server) sweepSpecOf(w http.ResponseWriter, req *SweepRequest) (sweep.Spec, bool) {
	var spec sweep.Spec
	switch {
	case len(req.Alphas) > 0 && len(req.Platforms) > 0:
		writeError(w, http.StatusBadRequest, CodeBadRequest, `set exactly one of "alphas" and "platforms"`)
		return spec, false
	case len(req.Alphas) > 0:
		base, ok := platformOf(w, req.Pools)
		if !ok {
			return spec, false
		}
		spec.Base, spec.Alphas, spec.Peak = base, req.Alphas, req.Peak
	case len(req.Platforms) > 0:
		if len(req.Pools) > 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, `"pools" belongs to an alpha sweep; "platforms" lists full platforms`)
			return spec, false
		}
		spec.Platforms = make([]memsched.Platform, len(req.Platforms))
		for i, specs := range req.Platforms {
			p, ok := platformOf(w, specs)
			if !ok {
				return spec, false
			}
			spec.Platforms[i] = p
		}
		spec.Xs = req.Xs
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, `set "alphas" (with "pools") or "platforms"`)
		return spec, false
	}
	spec.Schedulers = req.Schedulers
	spec.Seeds = req.Seeds
	spec.Replay = req.Replay
	spec.Workers = req.Workers
	if spec.Workers == 0 || spec.Workers > s.cfg.MaxSweepWorkers {
		spec.Workers = s.cfg.MaxSweepWorkers
	}
	if n := spec.NumPoints(); n > s.cfg.MaxSweepPoints {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("sweep expands to %d points, over the server bound of %d", n, s.cfg.MaxSweepPoints))
		return spec, false
	}
	return spec, true
}

// handleSweep streams one batch evaluation as NDJSON: one "point" record
// per sweep point in point-index order, then one trailing "summary" record.
// The 200 status is committed only when the first record is ready, so
// anything the engine rejects before streaming — bad spec values, unknown
// schedulers, engine/session mismatches — still gets a structured 4xx; a
// sweep that fails after streaming began terminates the stream with an
// "error" record instead.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	// withSweepAdmission already holds this sweep's admission claim — one
	// sweep-worker token plus a general in-flight slot — and put it in the
	// request context so the top-up below is accounted against the same
	// claim the middleware releases.
	claim, _ := r.Context().Value(sweepClaimKey).(*sweepClaim)

	endDecode := trace.Start(r.Context(), "decode")
	var req SweepRequest
	if s.decodeBody(w, r, &req) != nil {
		endDecode()
		return
	}
	endDecode()
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, `"timeout_ms" must be >= 0`)
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, `"workers" must be >= 0`)
		return
	}
	spec, ok := s.sweepSpecOf(w, &req)
	if !ok {
		return
	}
	endResolve := trace.Start(r.Context(), "resolve")
	sess, fromCache, ok := s.resolveSession(w, req.GraphID, req.Graph, req.Times)
	endResolve()
	if !ok {
		return
	}
	if n := noteFrom(r.Context()); n != nil {
		n.cacheKnown, n.cacheHit = true, fromCache
	}

	timeout := s.cfg.MaxSweepTime
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Widen the claim toward the requested worker count with whatever of
	// the server-wide budget is currently free; the admission token
	// guarantees at least one.
	if claim != nil {
		claim.workers = s.topUpSweepWorkers(claim.workers, spec.Workers)
		spec.Workers = claim.workers
	} else {
		spec.Workers = 1 // mounted without withSweepAdmission (tests): stay safe
	}

	// Long sweeps legitimately outlive the server-wide WriteTimeout;
	// extend this connection's write deadline to the sweep's own budget
	// (best-effort: not every ResponseWriter supports it).
	_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(timeout + 10*time.Second))

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streaming := false
	beginStream := func() {
		if !streaming {
			streaming = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
	}
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	endSweep := trace.Start(ctx, "sweep")
	sum, err := sweep.Stream(ctx, sess, spec, func(pr sweep.PointResult) error {
		s.sweepPoints.Add(1)
		s.candidateHits.Add(pr.Stats.CacheHits)
		s.candidateMiss.Add(pr.Stats.CacheMisses)
		s.sweepReplayed.Add(uint64(pr.ReplayedPlacements))
		if pr.ReplayTruncated {
			s.sweepTruncated.Add(1)
		}
		beginStream()
		if err := enc.Encode(sweepPointRecord(pr)); err != nil {
			return err
		}
		flush()
		return nil
	})
	endSweep()
	if err != nil {
		status, code := classify(err)
		msg := err.Error()
		if s.draining.Load() && errors.Is(err, context.Canceled) {
			// Shutdown cancelled this sweep; make drain distinguishable from
			// a crash on the wire — pre-stream as a 503, mid-stream as a
			// final typed error record instead of a severed connection.
			status, code = http.StatusServiceUnavailable, CodeDraining
			msg = "server draining for shutdown: " + msg
		}
		if !streaming {
			writeError(w, status, code, msg)
			return
		}
		_ = enc.Encode(SweepError{Type: "error", Error: msg, Code: code})
		flush()
		return
	}
	s.scheduled.Add(uint64(sum.Feasible))
	beginStream() // a sweep can deliver zero points only by failing, but commit defensively
	_ = enc.Encode(sweepSummaryRecord(sum, sess.GraphHash(), fromCache))
	flush()
}

// sweepPointRecord maps an engine point result onto its wire record.
func sweepPointRecord(pr sweep.PointResult) SweepPoint {
	return SweepPoint{
		Type:               "point",
		Index:              pr.Index,
		Axis:               pr.Point.Axis,
		X:                  pr.Point.X,
		Alpha:              pr.Point.Alpha,
		Scheduler:          pr.Point.Scheduler,
		Seed:               pr.Point.Seed,
		Feasible:           pr.Feasible,
		Reason:             pr.Reason,
		Makespan:           pr.Makespan,
		Peaks:              pr.Peaks,
		WallMicros:         pr.Stats.WallTime.Microseconds(),
		ReplayedPlacements: pr.ReplayedPlacements,
		ReplayTruncated:    pr.ReplayTruncated,
	}
}

// sweepSummaryRecord maps the engine summary onto its wire record (NaN
// curve entries become nulls: JSON has no NaN).
func sweepSummaryRecord(sum *sweep.Summary, graphID string, cached bool) SweepSummary {
	out := SweepSummary{
		Type:          "summary",
		GraphID:       graphID,
		Points:        sum.Points,
		Feasible:      sum.Feasible,
		BestIndex:     sum.BestIndex,
		BestMakespan:  sum.BestMakespan,
		RefMakespan:   sum.RefMakespan,
		Peak:          sum.Peak,
		Workers:       sum.Workers,
		WallMicros:    sum.WallTime.Microseconds(),
		SessionCached: cached,
	}
	for _, c := range sum.Curves {
		wc := SweepCurve{Scheduler: c.Scheduler, X: c.X, Makespan: make([]*float64, len(c.Makespan))}
		for i, ms := range c.Makespan {
			if !math.IsNaN(ms) {
				v := ms
				wc.Makespan[i] = &v
			}
		}
		out.Curves = append(out.Curves, wc)
	}
	for _, f := range sum.Frontier {
		out.Frontier = append(out.Frontier, SweepFrontier{Scheduler: f.Scheduler, Axis: f.Axis, X: f.X})
	}
	return out
}

func (s *Server) handleSchedulers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SchedulersResponse{Schedulers: memsched.Schedulers()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// classify maps a scheduling error onto an HTTP status and error code. The
// inputs were validated before the run, so anything left is either a model
// rejection (does not fit, deadlocks, engine/platform mismatch) or a
// timeout.
func classify(err error) (status int, code string) {
	switch {
	case errors.Is(err, memsched.ErrMemoryBound):
		return http.StatusUnprocessableEntity, CodeMemoryBound
	case errors.Is(err, memsched.ErrSimStuck):
		return http.StatusUnprocessableEntity, CodeSimStuck
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout, CodeTimeout
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	// The request id was stamped on the response headers before dispatch
	// (see Handler), so every error body can echo it without threading it
	// through each call site.
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code, RequestID: w.Header().Get(RequestIDHeader)})
}
