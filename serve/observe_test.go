package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	memsched "repro"
	"repro/serve"
)

// syncBuf is a goroutine-safe log sink for the slog handlers under test
// (the server logs from concurrent request goroutines).
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func jsonLogger(buf *syncBuf) *slog.Logger {
	return slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

func TestRequestIDEchoedAndGenerated(t *testing.T) {
	_, srv := newTestServer(t, serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A valid caller-supplied id is echoed verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/schedulers", nil)
	req.Header.Set(serve.RequestIDHeader, "caller-id.42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(serve.RequestIDHeader); got != "caller-id.42" {
		t.Fatalf("echoed id = %q, want caller-id.42", got)
	}

	// No id: the server generates one.
	resp, err = ts.Client().Get(ts.URL + "/v1/schedulers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(serve.RequestIDHeader); got == "" {
		t.Fatal("no request id generated for an id-less request")
	}

	// An invalid id (spaces, shell metacharacters) is replaced, not
	// echoed: log injection through the id header must not be possible.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/schedulers", nil)
	req.Header.Set(serve.RequestIDHeader, `bad id "with junk`)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get(serve.RequestIDHeader)
	if got == "" || strings.Contains(got, " ") {
		t.Fatalf("invalid id not replaced: %q", got)
	}
}

func TestRequestIDInErrorBodyAndAPIError(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	ctx := serve.ContextWithRequestID(context.Background(), "err-prop-1")

	_, err := client.Schedule(ctx, serve.ScheduleRequest{
		GraphID: strings.Repeat("0", 64), // registered nowhere
		Pools:   cap4(),
	})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", apiErr.Status)
	}
	if apiErr.RequestID != "err-prop-1" {
		t.Fatalf("APIError.RequestID = %q, want err-prop-1", apiErr.RequestID)
	}
	if !strings.Contains(apiErr.Error(), "err-prop-1") {
		t.Fatalf("Error() does not name the request: %s", apiErr.Error())
	}
}

func TestAccessLogCarriesRequestID(t *testing.T) {
	var buf syncBuf
	client, _ := newTestServer(t, serve.Config{Logger: jsonLogger(&buf), ReplicaID: "test-rep"})
	ctx := serve.ContextWithRequestID(context.Background(), "log-line-1")

	if _, err := client.RegisterGraph(ctx, memsched.PaperExample(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, `"msg":"request"`) && strings.Contains(l, `"request_id":"log-line-1"`) {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no access log line for request id log-line-1 in:\n%s", out)
	}
	for _, want := range []string{`"route":"/v1/graphs"`, `"status":200`, `"replica":"test-rep"`, `"method":"POST"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("access line missing %s: %s", want, line)
		}
	}
}

// TestRefusalLogsAndChainOrder drives a rate-limited server and checks
// that (a) the refusal's warn line carries the request id — the id
// middleware wraps the whole chain, including refusals that never reach
// a handler — and (b) the 429 body still names the request.
func TestRefusalLogsAndChainOrder(t *testing.T) {
	var buf syncBuf
	_, srv := newTestServer(t, serve.Config{
		Logger:    jsonLogger(&buf),
		RateLimit: 0.001, // one token forever: the second request is refused
		RateBurst: 1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var refused *http.Response
	for i := 0; i < 3; i++ {
		// The rate limiter fronts the POST /v1 chains; it refuses before
		// the body is ever decoded.
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", strings.NewReader("{}"))
		req.Header.Set(serve.RequestIDHeader, fmt.Sprintf("limited-%d", i))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			refused = resp
			break
		}
		resp.Body.Close()
	}
	if refused == nil {
		t.Fatal("rate limiter never refused")
	}
	defer refused.Body.Close()
	var body serve.ErrorResponse
	if err := json.NewDecoder(refused.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	id := refused.Header.Get(serve.RequestIDHeader)
	if body.RequestID != id || id == "" {
		t.Fatalf("429 body request_id = %q, header %q", body.RequestID, id)
	}
	out := buf.String()
	if !strings.Contains(out, `"msg":"rate limited"`) || !strings.Contains(out, fmt.Sprintf("%q", id)) {
		t.Fatalf("no rate-limit warn carrying %q in:\n%s", id, out)
	}
}

// TestTraceSpansExplainLatency schedules a graph large enough that
// engine time dominates, asks for its span timeline with ?trace=1, and
// checks the timeline actually explains where the time went: top-level
// spans nest in request order, and the retained capture's span sum
// (which includes the encode span the payload cannot carry) lands
// within 10% of the request wall time the server measured.
func TestTraceSpansExplainLatency(t *testing.T) {
	_, srv := newTestServer(t, serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	params := memsched.SmallRandParams()
	params.Size = 4000
	g, err := memsched.GenerateRandom(params, 7)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded pools: the run should measure engine latency, not bounce
	// off a memory_bound rejection.
	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	body, err := json.Marshal(serve.ScheduleRequest{Graph: raw, Pools: pools, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	observed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, payload)
	}
	var sr serve.ScheduleResponse
	if err := json.Unmarshal(payload, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.RequestID == "" {
		t.Fatal("traced response has no request id")
	}
	if len(sr.Trace) == 0 {
		t.Fatal("?trace=1 returned no spans")
	}

	names := make(map[string]bool)
	var sum time.Duration
	prevStart := int64(-1)
	for _, sp := range sr.Trace {
		names[sp.Name] = true
		if !strings.Contains(sp.Name, "/") { // top-level spans partition the request
			sum += time.Duration(sp.DurMicros) * time.Microsecond
			if sp.StartMicros < prevStart {
				t.Fatalf("top-level span %q starts before its predecessor: %+v", sp.Name, sr.Trace)
			}
			prevStart = sp.StartMicros
		}
	}
	for _, want := range []string{"admission", "decode", "resolve", "engine"} {
		if !names[want] {
			t.Fatalf("trace missing %q span: %+v", want, sr.Trace)
		}
	}
	// The payload cannot carry the encode span (it is recorded while the
	// payload is being written), so against client-observed latency the
	// sum is a sanity bound, not the tight one.
	if ratio := float64(sum) / float64(observed); ratio < 0.6 || ratio > 1.02 {
		t.Fatalf("span sum %v vs observed %v (ratio %.3f)", sum, observed, ratio)
	}

	// The same request must rank in the slow-trace ring, where the full
	// span set and the server-measured wall time live side by side; there
	// the timeline must account for the request within 10%.
	resp, err = ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces serve.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range traces.Routes["/v1/schedule"] {
		if c.RequestID != sr.RequestID {
			continue
		}
		found = true
		if len(c.Spans) == 0 || c.DurMicros <= 0 {
			t.Fatalf("retained capture is empty: %+v", c)
		}
		var capSum int64
		for _, sp := range c.Spans {
			if !strings.Contains(sp.Name, "/") {
				capSum += sp.DurMicros
			}
		}
		if ratio := float64(capSum) / float64(c.DurMicros); ratio < 0.9 || ratio > 1.02 {
			t.Fatalf("captured span sum %dus vs request wall %dus (ratio %.3f), want within 10%%",
				capSum, c.DurMicros, ratio)
		}
	}
	if !found {
		t.Fatalf("request %s not retained in /debug/traces: %+v", sr.RequestID, traces)
	}
	if traces.Keep != 8 {
		t.Fatalf("default keep = %d, want 8", traces.Keep)
	}
}

func TestDebugMuxServesPprofAndTraces(t *testing.T) {
	_, srv := newTestServer(t, serve.Config{})
	dbg := httptest.NewServer(serve.NewDebugMux(srv.TracesHandler()))
	defer dbg.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/traces"} {
		resp, err := dbg.Client().Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
	}
	// Without a trace handler, /debug/traces 404s but pprof stays up.
	bare := httptest.NewServer(serve.NewDebugMux(nil))
	defer bare.Close()
	resp, err := bare.Client().Get(bare.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traces without handler: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestMetricsExportBuildInfo(t *testing.T) {
	_, srv := newTestServer(t, serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"memschedd_build_info{", "go_goroutines ", "go_memstats_heap_alloc_bytes "} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
