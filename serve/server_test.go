package serve_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	memsched "repro"
	"repro/serve"
)

// newTestServer mounts a Server handler on an httptest server and returns a
// typed client plus the Server for counter inspection.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Client, *serve.Server) {
	t.Helper()
	srv := serve.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return serve.NewClient(ts.URL, serve.WithHTTPClient(ts.Client())), srv
}

func cap4() []serve.PoolSpec {
	four := int64(4)
	return []serve.PoolSpec{{Procs: 1, Capacity: &four}, {Procs: 1, Capacity: &four}}
}

func TestRegisterThenScheduleByID(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{})
	ctx := context.Background()

	g := memsched.PaperExample()
	reg, err := client.RegisterGraph(ctx, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ID != memsched.GraphHash(g) {
		t.Fatalf("register id %q != canonical hash %q", reg.ID, memsched.GraphHash(g))
	}
	if reg.Tasks != g.NumTasks() || reg.Edges != g.NumEdges() || reg.Cached {
		t.Fatalf("unexpected register response: %+v", reg)
	}

	// Re-registering the same content reports the warm session.
	reg2, err := client.RegisterGraph(ctx, memsched.PaperExample(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reg2.Cached || reg2.ID != reg.ID {
		t.Fatalf("identical graph not deduplicated: %+v", reg2)
	}

	res, err := client.Schedule(ctx, serve.ScheduleRequest{
		GraphID: reg.ID,
		Pools:   cap4(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's example under (1,1,4,4) with MemHEFT: makespan 10,
	// peaks (4,4) — same as ExampleSession_Schedule.
	if res.Makespan != 10 {
		t.Fatalf("makespan = %g, want 10", res.Makespan)
	}
	if len(res.Peaks) != 2 || res.Peaks[0] != 4 || res.Peaks[1] != 4 {
		t.Fatalf("peaks = %v, want [4 4]", res.Peaks)
	}
	if !res.SessionCached {
		t.Fatal("schedule by id should have hit the session cache")
	}
	if res.Scheduler != "memheft" {
		t.Fatalf("scheduler = %q, want memheft", res.Scheduler)
	}
	if st := srv.Stats(); st.SessionHits != 1 || st.Scheduled != 1 {
		t.Fatalf("stats after one by-id run: %+v", st)
	}
}

func TestScheduleInlineWarmsCache(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{})
	ctx := context.Background()

	req := serve.ScheduleRequest{Pools: cap4(), Seed: 1, Placements: true}
	raw, err := memsched.PaperExample().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	req.Graph = raw

	first, err := client.Schedule(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.SessionCached {
		t.Fatal("first inline schedule cannot be a cache hit")
	}
	if len(first.TaskPlacements) != 4 {
		t.Fatalf("placements = %v, want 4 entries", first.TaskPlacements)
	}
	second, err := client.Schedule(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.SessionCached {
		t.Fatal("second inline schedule of the same graph should hit the cache")
	}
	if second.Makespan != first.Makespan {
		t.Fatalf("warm run changed the schedule: %g vs %g", second.Makespan, first.Makespan)
	}
	st := srv.Stats()
	if st.SessionHits != 1 || st.SessionMisses != 1 {
		t.Fatalf("hit/miss = %d/%d, want 1/1", st.SessionHits, st.SessionMisses)
	}
	if st.CandidateHits+st.CandidateMisses == 0 {
		t.Fatal("aggregated candidate-cache counters should be nonzero after two runs")
	}
}

func TestScheduleMatchesDirectSession(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	ctx := context.Background()

	g, err := memsched.GenerateRandom(memsched.SmallRandParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	p := memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited)
	for _, name := range memsched.Schedulers() {
		if name == "memheft-insertion" {
			continue // selected via the insertion flag, not by name
		}
		want, err := sess.Schedule(ctx, p, memsched.WithScheduler(name), memsched.WithSeed(3))
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		raw, _ := g.MarshalJSON()
		got, err := client.Schedule(ctx, serve.ScheduleRequest{
			Graph:     raw,
			Pools:     []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
			Scheduler: name,
			Seed:      3,
		})
		if err != nil {
			t.Fatalf("%s via server: %v", name, err)
		}
		if got.Makespan != want.Makespan() {
			t.Fatalf("%s: server makespan %g != direct %g", name, got.Makespan, want.Makespan())
		}
	}
}

func TestKPoolTimesPath(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	ctx := context.Background()

	g := memsched.NewGraph()
	a := g.AddTask("a", 0, 0)
	b := g.AddTask("b", 0, 0)
	g.MustAddEdge(a, b, 1, 1)
	times := [][]float64{{1, 2, 3}, {3, 2, 1}}

	reg, err := client.RegisterGraph(ctx, g, times)
	if err != nil {
		t.Fatal(err)
	}
	// The times matrix is part of the id: the same graph without times
	// registers separately.
	regPlain, err := client.RegisterGraph(ctx, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ID == regPlain.ID {
		t.Fatal("pool-time matrix not reflected in graph id")
	}

	res, err := client.Schedule(ctx, serve.ScheduleRequest{
		GraphID: reg.ID,
		Pools:   []serve.PoolSpec{{Procs: 1}, {Procs: 1}, {Procs: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.PoolTasks) != 3 {
		t.Fatalf("k-pool response: makespan %g, pool tasks %v", res.Makespan, res.PoolTasks)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	ctx := context.Background()
	raw, _ := memsched.PaperExample().MarshalJSON()

	for _, policy := range []string{"", "rank", "eft"} {
		res, err := client.Simulate(ctx, serve.ScheduleRequest{
			Graph:  raw,
			Pools:  cap4(),
			Policy: policy,
		})
		if err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
		if res.Makespan <= 0 || res.Events == 0 {
			t.Fatalf("policy %q: makespan %g, events %d", policy, res.Makespan, res.Events)
		}
	}
}

func TestSchedulersEndpoint(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	names, err := client.Schedulers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := memsched.Schedulers()
	if len(names) != len(want) {
		t.Fatalf("schedulers = %v, want %v", names, want)
	}
	for i := range names {
		if names[i] != want[i] {
			t.Fatalf("schedulers = %v, want %v", names, want)
		}
	}
}

func TestMemoryBoundIs422(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	raw, _ := memsched.PaperExample().MarshalJSON()
	two := int64(2)
	_, err := client.Schedule(context.Background(), serve.ScheduleRequest{
		Graph: raw,
		Pools: []serve.PoolSpec{{Procs: 1, Capacity: &two}, {Procs: 1, Capacity: &two}},
	})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != serve.CodeMemoryBound {
		t.Fatalf("want 422 memory_bound, got %v", err)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{CacheSize: 2})
	ctx := context.Background()

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		g, err := memsched.GenerateRandom(memsched.SmallRandParams(), seed)
		if err != nil {
			t.Fatal(err)
		}
		reg, err := client.RegisterGraph(ctx, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, reg.ID)
	}
	if st := srv.Stats(); st.SessionsCached != 2 {
		t.Fatalf("cache population = %d, want bound 2", st.SessionsCached)
	}
	// The first registration is the LRU victim: scheduling it now is 404.
	_, err := client.Schedule(ctx, serve.ScheduleRequest{GraphID: ids[0], Pools: cap4()})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != serve.CodeNotFound {
		t.Fatalf("evicted graph should 404, got %v", err)
	}
	// The survivors still schedule.
	for _, id := range ids[1:] {
		if _, err := client.Schedule(ctx, serve.ScheduleRequest{
			GraphID: id,
			Pools:   []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		}); err != nil {
			t.Fatalf("surviving graph %s: %v", id, err)
		}
	}
}

// TestConcurrentClients exercises the full request path from many goroutines
// (run under -race in CI): mixed by-id and inline requests over a small
// graph working set must all succeed, end with a high session-cache hit
// rate, and leave the in-flight gauge at zero.
func TestConcurrentClients(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{MaxInFlight: 4})
	ctx := context.Background()

	const nGraphs, nClients, nRequests = 4, 8, 25
	ids := make([]string, nGraphs)
	raws := make([][]byte, nGraphs)
	for i := range ids {
		g, err := memsched.GenerateRandom(memsched.SmallRandParams(), int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		raws[i], _ = g.MarshalJSON()
		reg, err := client.RegisterGraph(ctx, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = reg.ID
	}

	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < nRequests; i++ {
				req := serve.ScheduleRequest{
					Pools:     []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
					Seed:      int64(c),
					Scheduler: []string{"memheft", "memminmin", "heft"}[i%3],
				}
				if i%2 == 0 {
					req.GraphID = ids[(c+i)%nGraphs]
				} else {
					req.Graph = raws[(c+i)%nGraphs]
				}
				if _, err := client.Schedule(ctx, req); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge = %d after drain, want 0", st.InFlight)
	}
	if st.Scheduled != nClients*nRequests {
		t.Fatalf("scheduled = %d, want %d", st.Scheduled, nClients*nRequests)
	}
	if rate := st.SessionHitRate(); rate < 0.9 {
		t.Fatalf("session-cache hit rate %.2f, want >= 0.9", rate)
	}
}

// TestGracefulShutdown runs the real lifecycle (listener, serve, ctx
// cancellation, drain) and checks the server goroutines are gone afterwards.
func TestGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	srv := serve.NewServer(serve.Config{Addr: "127.0.0.1:0", ShutdownTimeout: 5 * time.Second})
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("listener did not bind")
	}

	tr := &http.Transport{}
	client := serve.NewClient("http://"+addr, serve.WithHTTPClient(&http.Client{Transport: tr}))
	raw, _ := memsched.PaperExample().MarshalJSON()
	for i := 0; i < 3; i++ {
		if _, err := client.Schedule(context.Background(), serve.ScheduleRequest{Graph: raw, Pools: cap4()}); err != nil {
			t.Fatal(err)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	if err := client.Health(context.Background()); err == nil {
		t.Fatal("server still answering after shutdown")
	}
	tr.CloseIdleConnections()

	// The serve goroutines must be gone; allow a little slack for the
	// runtime's own background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRequestTimeoutIs408(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{MaxRequestBytes: 64 << 20})
	// A 20000-task DAG under a 1 ms budget: the cold run takes tens of
	// milliseconds and every phase of it — ranking, statics and the
	// placement loop — polls the context, so the deadline lands mid-run
	// even on a single-CPU runner where the timer can fire tens of
	// milliseconds late. (This test used to need a 30000-task DAG purely
	// to stretch the placement phase, back when the ranking phase was
	// uninterruptible.)
	params := memsched.LargeRandParams()
	params.Size = 20000
	g, err := memsched.GenerateRandom(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := g.MarshalJSON()
	_, err = client.Schedule(context.Background(), serve.ScheduleRequest{
		Graph:     raw,
		Pools:     []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		Scheduler: "memminmin",
		TimeoutMS: 1,
	})
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusRequestTimeout || apiErr.Code != serve.CodeTimeout {
		t.Fatalf("want 408 timeout, got %v", err)
	}
	if !strings.Contains(apiErr.Message, "interrupted") {
		t.Fatalf("timeout error should name the interrupted engine phase, got %q", apiErr.Message)
	}
}

func TestHealthAndUnknownRoute(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxInFlight == 0 || st.SessionCapacity == 0 {
		t.Fatalf("stats defaults missing: %+v", st)
	}
}
