package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// requestIDKey carries the request id through a request's context.
type requestIDKey struct{}

// noteKey carries the per-request annotation record (session-cache
// outcome) that handlers fill in for the access log.
type noteKey struct{}

// reqNote collects facts the handler learns mid-request that the access
// log wants: whether the run resolved its session from the cache. The
// Handler allocates one per request; handlers mutate it in place (a
// request is served by one goroutine, so no locking).
type reqNote struct {
	cacheKnown bool
	cacheHit   bool
}

func noteFrom(ctx context.Context) *reqNote {
	n, _ := ctx.Value(noteKey{}).(*reqNote)
	return n
}

// logRefusal emits one warn-level line for a refused or faulted request
// (shed, rate limit, injected chaos), stamped with its request id.
func (s *Server) logRefusal(ctx context.Context, event string, attrs ...slog.Attr) {
	if !s.logger.Enabled(ctx, slog.LevelWarn) {
		return
	}
	all := make([]slog.Attr, 0, len(attrs)+2)
	all = append(all, slog.String("request_id", RequestIDFromContext(ctx)))
	if s.cfg.ReplicaID != "" {
		all = append(all, slog.String("replica", s.cfg.ReplicaID))
	}
	all = append(all, attrs...)
	s.logger.LogAttrs(ctx, slog.LevelWarn, event, all...)
}

// NewRequestID returns a fresh request id: 16 hex characters of
// crypto/rand entropy, falling back to a timestamp if the system source
// fails (ids need uniqueness for log joining, not unguessability).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t" + strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}

// ContextWithRequestID stamps ctx with a request id, overriding any id
// a surrounding layer would otherwise generate. The Client forwards it
// as the X-Request-ID of every call made under ctx.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request id stamped on ctx, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// validRequestID reports whether a client-supplied id is safe to adopt:
// non-empty, bounded, and free of characters that could mangle logs or
// headers. Anything else is replaced, not sanitized — a hostile id is
// not worth preserving partially.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// EnsureRequestID returns the request's id: the X-Request-ID header when
// the client sent a valid one, a fresh id otherwise. It does not mutate
// the request.
func EnsureRequestID(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); validRequestID(id) {
		return id
	}
	return NewRequestID()
}
