package serve

import (
	"errors"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Fault kinds the chaos middleware can inject (Config.ChaosFaults).
const (
	FaultLatency  = "latency"  // sleep up to ChaosMaxLatency before serving
	FaultError    = "error"    // structured 503 {error, code:"unavailable"} + Retry-After
	FaultTruncate = "truncate" // cut the /v1/sweep NDJSON stream after a byte budget
)

type chaosKind int

const (
	chaosNone chaosKind = iota
	chaosLatency
	chaosError
	chaosTruncate
)

var chaosKindOf = map[string]chaosKind{
	FaultLatency:  chaosLatency,
	FaultError:    chaosError,
	FaultTruncate: chaosTruncate,
}

// chaosInjector is the deterministic fault source behind withChaos: one
// seeded PRNG drawn under a mutex decides, per request, whether to inject
// a fault and which kind. The same seed and request sequence reproduce
// the same fault sequence — which is what makes retry, shedding and
// breaker paths testable instead of hoped-for.
type chaosInjector struct {
	rate       float64
	maxLatency time.Duration
	kinds      []chaosKind

	mu  sync.Mutex
	rng *rand.Rand

	latencies, faults, truncations atomic.Uint64
}

func newChaosInjector(cfg Config) *chaosInjector {
	var kinds []chaosKind
	for _, name := range cfg.ChaosFaults {
		if k, ok := chaosKindOf[name]; ok {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		kinds = []chaosKind{chaosLatency, chaosError, chaosTruncate}
	}
	return &chaosInjector{
		rate:       cfg.ChaosRate,
		maxLatency: cfg.ChaosMaxLatency,
		kinds:      kinds,
		rng:        rand.New(rand.NewSource(cfg.ChaosSeed)),
	}
}

// decide draws this request's fault. Truncation only makes sense on the
// NDJSON stream, so on other endpoints it is excluded from the draw.
func (c *chaosInjector) decide(streaming bool) (kind chaosKind, latency time.Duration, truncateAfter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.rate {
		return chaosNone, 0, 0
	}
	kinds := c.kinds
	if !streaming {
		kinds = make([]chaosKind, 0, len(c.kinds))
		for _, k := range c.kinds {
			if k != chaosTruncate {
				kinds = append(kinds, k)
			}
		}
	}
	if len(kinds) == 0 {
		return chaosNone, 0, 0
	}
	kind = kinds[c.rng.Intn(len(kinds))]
	switch kind {
	case chaosLatency:
		latency = time.Duration(c.rng.Int63n(int64(c.maxLatency)) + 1)
	case chaosTruncate:
		// Enough budget to commit the 200 and a few records, small enough
		// to cut well before a multi-point stream's summary.
		truncateAfter = 64 + c.rng.Intn(2048)
	}
	return kind, latency, truncateAfter
}

// withChaos is the fault-injection link (Config.ChaosRate > 0; off by
// default and in the zero Config). It models network and dependency
// misbehaviour at the outermost layer: injected latency delays the
// request before any token or slot is claimed, injected 503s answer
// without executing anything, and injected truncation severs the sweep
// stream mid-flight. Every fault is counted and exported on /metrics.
func (s *Server) withChaos(next http.Handler) http.Handler {
	if s.chaos == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		kind, latency, cut := s.chaos.decide(r.URL.Path == "/v1/sweep")
		switch kind {
		case chaosLatency:
			s.chaos.latencies.Add(1)
			s.logRefusal(r.Context(), "chaos injected",
				slog.String("fault", FaultLatency), slog.Duration("latency", latency))
			t := time.NewTimer(latency)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				writeError(w, http.StatusRequestTimeout, CodeTimeout, "request cancelled during injected latency")
				return
			}
		case chaosError:
			s.chaos.faults.Add(1)
			s.logRefusal(r.Context(), "chaos injected", slog.String("fault", FaultError))
			writeRetryAfter(w, time.Second)
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "injected fault: service unavailable (chaos)")
			return
		case chaosTruncate:
			s.logRefusal(r.Context(), "chaos injected",
				slog.String("fault", FaultTruncate), slog.Int("truncate_after", cut))
			w = &truncatingWriter{ResponseWriter: w, remaining: cut, injector: s.chaos}
		}
		next.ServeHTTP(w, r)
	})
}

// errInjectedTruncation aborts the sweep stream once the truncation
// budget is spent; the handler's encoder surfaces it like any other
// write failure, so the client observes a stream that dies mid-record.
var errInjectedTruncation = errors.New("chaos: injected stream truncation")

// truncatingWriter forwards writes until its byte budget is spent, then
// fails every write (after flushing the partial final chunk — a realistic
// cut is rarely aligned to a record boundary).
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
	cut       bool
	injector  *chaosInjector
}

func (tw *truncatingWriter) Write(b []byte) (int, error) {
	if tw.cut {
		return 0, errInjectedTruncation
	}
	if len(b) > tw.remaining {
		tw.cut = true
		tw.injector.truncations.Add(1)
		n := tw.remaining
		if n > 0 {
			_, _ = tw.ResponseWriter.Write(b[:n])
		}
		return n, errInjectedTruncation
	}
	tw.remaining -= len(b)
	return tw.ResponseWriter.Write(b)
}

func (tw *truncatingWriter) Flush() {
	if f, ok := tw.ResponseWriter.(http.Flusher); ok && !tw.cut {
		f.Flush()
	}
}

// Unwrap keeps http.ResponseController working through the wrapper (the
// sweep handler extends its connection's write deadline).
func (tw *truncatingWriter) Unwrap() http.ResponseWriter { return tw.ResponseWriter }
