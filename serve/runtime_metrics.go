package serve

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// buildInfo resolves the process's build identity once: the module
// version, the main Go version, and the VCS revision when the binary
// was built from a checkout.
var buildInfo = sync.OnceValues(func() (goVersion, revision string) {
	goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, ""
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return goVersion, revision
})

// WriteRuntimeMetrics appends the process-level gauges shared by every
// tier's /metrics exposition — goroutine count, heap occupancy, GC
// cycles — plus the memschedd_build_info info-metric (constant 1, with
// the build identity in its labels, the Prometheus idiom for joining
// metrics against a version). The replica server calls it from its own
// registry render; the cluster router reuses it so both tiers export a
// comparable runtime baseline.
func WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_goroutines Number of goroutines that currently exist.\n# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP go_memstats_heap_alloc_bytes Heap bytes allocated and still in use.\n# TYPE go_memstats_heap_alloc_bytes gauge\ngo_memstats_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP go_memstats_heap_sys_bytes Heap bytes obtained from the system.\n# TYPE go_memstats_heap_sys_bytes gauge\ngo_memstats_heap_sys_bytes %d\n", ms.HeapSys)
	fmt.Fprintf(w, "# HELP go_memstats_heap_objects Number of currently live heap objects.\n# TYPE go_memstats_heap_objects gauge\ngo_memstats_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
	goVersion, revision := buildInfo()
	fmt.Fprintf(w, "# HELP memschedd_build_info Build identity of the serving binary; constant 1.\n# TYPE memschedd_build_info gauge\n")
	fmt.Fprintf(w, "memschedd_build_info{go_version=%q,revision=%q} 1\n", goVersion, revision)
}
