package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/serve"
)

// post sends raw JSON to path and returns the recorded response.
func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// decodeError asserts the response is a structured ErrorResponse and
// returns it.
func decodeError(t *testing.T, w *httptest.ResponseRecorder) serve.ErrorResponse {
	t.Helper()
	var e serve.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %v (body %q)", err, w.Body.String())
	}
	if e.Error == "" || e.Code == "" {
		t.Fatalf("error body missing fields: %q", w.Body.String())
	}
	return e
}

const validGraph = `{"tasks":[{"wblue":2,"wred":1},{"wblue":1,"wred":2}],` +
	`"edges":[{"from":0,"to":1,"file":1,"comm":1}]}`

// TestScheduleRejections is the table-driven 4xx coverage of the schedule
// and register decode paths: every malformed or invalid request must yield
// the right status and structured code, never a 5xx or an unstructured
// body.
func TestScheduleRejections(t *testing.T) {
	h := serve.NewServer(serve.Config{MaxRequestBytes: 64 << 10}).Handler()

	cases := []struct {
		name     string
		path     string
		body     string
		status   int
		code     string
		contains string
	}{
		{
			name:   "malformed JSON",
			path:   "/v1/schedule",
			body:   `{"graph": nope}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "malformed JSON",
		},
		{
			name:   "empty body",
			path:   "/v1/schedule",
			body:   ``,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
		},
		{
			name:   "neither graph nor graph_id",
			path:   "/v1/schedule",
			body:   `{"pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: `"graph_id" or "graph"`,
		},
		{
			name: "both graph and graph_id",
			path: "/v1/schedule",
			body: `{"graph_id":"abc","graph":` + validGraph +
				`,"pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "exactly one",
		},
		{
			name:   "unknown graph id",
			path:   "/v1/schedule",
			body:   `{"graph_id":"deadbeef","pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusNotFound, code: serve.CodeNotFound,
			contains: "not registered",
		},
		{
			name: "unknown scheduler",
			path: "/v1/schedule",
			body: `{"graph":` + validGraph +
				`,"pools":[{"procs":1},{"procs":1}],"scheduler":"quantum-annealer"}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "unknown scheduler",
		},
		{
			name: "cycle-containing graph",
			path: "/v1/schedule",
			body: `{"graph":{"tasks":[{"wblue":1,"wred":1},{"wblue":1,"wred":1}],` +
				`"edges":[{"from":0,"to":1,"file":1,"comm":0},{"from":1,"to":0,"file":1,"comm":0}]},` +
				`"pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "cycle",
		},
		{
			name: "edge referencing missing task",
			path: "/v1/schedule",
			body: `{"graph":{"tasks":[{"wblue":1,"wred":1}],` +
				`"edges":[{"from":0,"to":7,"file":1,"comm":0}]},` +
				`"pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "missing task",
		},
		{
			name: "negative processing time",
			path: "/v1/schedule",
			body: `{"graph":{"tasks":[{"wblue":-1,"wred":1}],"edges":[]},` +
				`"pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "negative",
		},
		{
			name:   "missing pools",
			path:   "/v1/schedule",
			body:   `{"graph":` + validGraph + `}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: `"pools"`,
		},
		{
			name: "platform without processors",
			path: "/v1/schedule",
			body: `{"graph":` + validGraph +
				`,"pools":[{"procs":0},{"procs":0}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "no processors",
		},
		{
			name: "negative timeout",
			path: "/v1/schedule",
			body: `{"graph":` + validGraph +
				`,"pools":[{"procs":1},{"procs":1}],"timeout_ms":-5}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "timeout_ms",
		},
		{
			name: "times with graph_id",
			path: "/v1/schedule",
			body: `{"graph_id":"abc","times":[[1,2]],` +
				`"pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "times",
		},
		{
			name: "times matrix wrong shape",
			path: "/v1/schedule",
			body: `{"graph":` + validGraph + `,"times":[[1,2]],` +
				`"pools":[{"procs":1},{"procs":1}]}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "matrix",
		},
		{
			name: "insertion with wrong scheduler",
			path: "/v1/schedule",
			body: `{"graph":` + validGraph +
				`,"pools":[{"procs":1},{"procs":1}],"scheduler":"memminmin","insertion":true}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "WithInsertion",
		},
		{
			name: "unknown simulate policy",
			path: "/v1/simulate",
			body: `{"graph":` + validGraph +
				`,"pools":[{"procs":1},{"procs":1}],"policy":"lifo"}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: "unknown policy",
		},
		{
			name:   "register without graph",
			path:   "/v1/graphs",
			body:   `{}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
			contains: `"graph"`,
		},
		{
			name:   "register malformed graph",
			path:   "/v1/graphs",
			body:   `{"graph":{"tasks":"not-a-list"}}`,
			status: http.StatusBadRequest, code: serve.CodeBadRequest,
		},
		{
			name:   "oversized request",
			path:   "/v1/graphs",
			body:   `{"graph":{"tasks":[` + strings.Repeat(`{"wblue":1,"wred":1},`, 10000) + `]}}`,
			status: http.StatusRequestEntityTooLarge, code: serve.CodeTooLarge,
			contains: "exceeds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, h, tc.path, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.status, w.Body.String())
			}
			e := decodeError(t, w)
			if e.Code != tc.code {
				t.Fatalf("code = %q, want %q", e.Code, tc.code)
			}
			if tc.contains != "" && !strings.Contains(e.Error, tc.contains) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.contains)
			}
		})
	}
}

func TestUnknownRouteIs404JSON(t *testing.T) {
	h := serve.NewServer(serve.Config{}).Handler()
	w := post(t, h, "/v2/teleport", `{}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
	if e := decodeError(t, w); e.Code != serve.CodeNotFound {
		t.Fatalf("code = %q, want %q", e.Code, serve.CodeNotFound)
	}
}

// FuzzRegisterGraph throws arbitrary bodies at the register endpoint: the
// server must always answer with valid JSON and never a 5xx, whatever the
// payload. The seed corpus covers the interesting shapes (valid, truncated,
// cyclic, out-of-range references, huge numbers, deep nesting).
func FuzzRegisterGraph(f *testing.F) {
	f.Add(`{"graph":` + validGraph + `}`)
	f.Add(`{"graph":{"tasks":[],"edges":[]}}`)
	f.Add(`{"graph":{"tasks":[{"wblue":1e308,"wred":-0}],"edges":[]}}`)
	f.Add(`{"graph":{"tasks":[{"wblue":1,"wred":1}],"edges":[{"from":0,"to":0,"file":1,"comm":0}]}}`)
	f.Add(`{"graph":{"tasks":[{"wblue":1,"wred":1},{"wblue":1,"wred":1}],` +
		`"edges":[{"from":0,"to":1,"file":1,"comm":0},{"from":1,"to":0,"file":1,"comm":0}]}}`)
	f.Add(`{"graph":{"tasks":[{"wblue":1,"wred":1}],"edges":[{"from":-1,"to":9,"file":-3,"comm":-1}]}}`)
	f.Add(`{"graph":`)
	f.Add(`[[[[[[[[`)
	f.Add(`{"graph":{"tasks":[{"name":"` + strings.Repeat("x", 100) + `","wblue":0,"wred":0}]},"times":[[1]]}`)
	f.Add(`{"graph":` + validGraph + `,"times":[[1,2],[3]]}`)

	h := serve.NewServer(serve.Config{MaxRequestBytes: 1 << 20}).Handler()
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/graphs", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code >= 500 {
			t.Fatalf("5xx on fuzzed input: %d (body %q)", w.Code, body)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("non-JSON response %q for input %q", w.Body.String(), body)
		}
	})
}
