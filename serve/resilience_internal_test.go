package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestChainComposesOutermostFirst(t *testing.T) {
	var got []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				got = append(got, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(mk("a"), mk("b"), mk("c"))(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		got = append(got, "handler")
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	want := []string{"a", "b", "c", "handler"}
	if len(got) != len(want) {
		t.Fatalf("chain ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain ran %v, want %v", got, want)
		}
	}
}

func TestTokenBucketRefill(t *testing.T) {
	tb := newTokenBucket(10, 2) // 10 tokens/s, depth 2
	cur := time.Unix(1000, 0)
	tb.now = func() time.Time { return cur }

	for i := 0; i < 2; i++ {
		if ok, _ := tb.take(); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, wait := tb.take()
	if ok {
		t.Fatal("empty bucket handed out a token")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("refill hint = %v, want (0, 100ms]", wait)
	}
	cur = cur.Add(100 * time.Millisecond) // exactly one token accrues
	if ok, _ := tb.take(); !ok {
		t.Fatal("token did not refill after the hinted wait")
	}
	if ok, _ := tb.take(); ok {
		t.Fatal("bucket refilled more than rate*elapsed tokens")
	}

	cur = cur.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := tb.take(); !ok {
			t.Fatal("refill not capped-but-available at burst after a long idle")
		}
	}
	if ok, _ := tb.take(); ok {
		t.Fatal("refill exceeded the burst cap")
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for i := 0; i < 200; i++ {
		if d := p.delay(1, 0); d < 0 || d > p.BaseDelay {
			t.Fatalf("first retry delay %v outside [0, %v]", d, p.BaseDelay)
		}
	}
	for i := 0; i < 200; i++ {
		if d := p.delay(50, 0); d < 0 || d > p.MaxDelay {
			t.Fatalf("deep retry delay %v outside [0, %v]", d, p.MaxDelay)
		}
	}
	if d := p.delay(1, 500*time.Millisecond); d < 500*time.Millisecond {
		t.Fatalf("delay %v ignored the Retry-After floor", d)
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := NewBreaker(2, time.Second)
	cur := time.Unix(2000, 0)
	b.now = func() time.Time { return cur }

	if err := b.allow(); err != nil {
		t.Fatal("closed breaker refused a call")
	}
	b.record(false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after 1 failure = %v, want closed", st)
	}
	_ = b.allow()
	b.record(false) // second consecutive failure: trips
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 2, st)
	}
	if n := b.Trips(); n != 1 {
		t.Fatalf("trips = %d, want 1", n)
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call (err = %v)", err)
	}

	cur = cur.Add(time.Second) // cooldown elapses: half-open, single probe
	if err := b.allow(); err != nil {
		t.Fatal("cooled breaker refused the probe")
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", st)
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.record(false) // failed probe: back to open
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}

	cur = cur.Add(time.Second)
	if err := b.allow(); err != nil {
		t.Fatal("cooled breaker refused the second probe")
	}
	b.record(true) // successful probe: closed again
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if err := b.allow(); err != nil {
		t.Fatal("re-closed breaker refused a call")
	}
	b.record(true)
}

func TestChaosDeciderIsDeterministic(t *testing.T) {
	cfg := Config{ChaosRate: 0.5, ChaosSeed: 7, ChaosMaxLatency: 25 * time.Millisecond}
	a, b := newChaosInjector(cfg), newChaosInjector(cfg)
	faulted := 0
	for i := 0; i < 200; i++ {
		streaming := i%2 == 0
		ka, la, ta := a.decide(streaming)
		kb, lb, tb := b.decide(streaming)
		if ka != kb || la != lb || ta != tb {
			t.Fatalf("draw %d diverged under the same seed: (%v,%v,%v) vs (%v,%v,%v)", i, ka, la, ta, kb, lb, tb)
		}
		if !streaming && ka == chaosTruncate {
			t.Fatal("truncation injected on a non-streaming endpoint")
		}
		if ka != chaosNone {
			faulted++
		}
		if ka == chaosLatency && (la <= 0 || la > cfg.ChaosMaxLatency) {
			t.Fatalf("injected latency %v outside (0, %v]", la, cfg.ChaosMaxLatency)
		}
	}
	if faulted == 0 || faulted == 200 {
		t.Fatalf("fault count %d/200 at rate 0.5: decider is stuck", faulted)
	}
}

func TestTruncatingWriterCutsMidChunk(t *testing.T) {
	rec := httptest.NewRecorder()
	inj := &chaosInjector{}
	tw := &truncatingWriter{ResponseWriter: rec, remaining: 5, injector: inj}

	n, err := tw.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, errInjectedTruncation) {
		t.Fatalf("cut write = (%d, %v), want (5, errInjectedTruncation)", n, err)
	}
	if got := rec.Body.String(); got != "hello" {
		t.Fatalf("partial chunk = %q, want %q", got, "hello")
	}
	if n, err := tw.Write([]byte("x")); n != 0 || !errors.Is(err, errInjectedTruncation) {
		t.Fatalf("post-cut write = (%d, %v), want (0, errInjectedTruncation)", n, err)
	}
	if got := inj.truncations.Load(); got != 1 {
		t.Fatalf("truncation counter = %d, want 1 (counted once at the cut)", got)
	}
}

func TestRetryableTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"408 slot wait", &APIError{Status: http.StatusRequestTimeout, Code: CodeTimeout}, true},
		{"429 shed", &APIError{Status: http.StatusTooManyRequests, Code: CodeShed}, true},
		{"429 rate limited", &APIError{Status: http.StatusTooManyRequests, Code: CodeRateLimited}, true},
		{"503 injected", &APIError{Status: http.StatusServiceUnavailable, Code: CodeUnavailable}, true},
		{"503 draining", &APIError{Status: http.StatusServiceUnavailable, Code: CodeDraining}, true},
		{"500 internal", &APIError{Status: http.StatusInternalServerError, Code: CodeInternal}, true},
		{"400 bad request", &APIError{Status: http.StatusBadRequest, Code: CodeBadRequest}, false},
		{"404 unknown graph", &APIError{Status: http.StatusNotFound, Code: CodeNotFound}, false},
		{"413 too large", &APIError{Status: http.StatusRequestEntityTooLarge, Code: CodeTooLarge}, false},
		{"422 memory bound", &APIError{Status: http.StatusUnprocessableEntity, Code: CodeMemoryBound}, false},
		{"in-stream unavailable", &APIError{Status: http.StatusOK, Code: CodeUnavailable}, true},
		{"in-stream timeout", &APIError{Status: http.StatusOK, Code: CodeTimeout}, false},
		{"in-stream draining", &APIError{Status: http.StatusOK, Code: CodeDraining}, false},
		{"truncated stream", errors.New("wrap: " + ErrStreamTruncated.Error()), true}, // unknown error: transport class
		{"wrapped truncation", errWrap(ErrStreamTruncated), true},
		{"context canceled", errWrap(context.Canceled), false},
		{"deadline exceeded", errWrap(context.DeadlineExceeded), false},
		{"breaker open", ErrBreakerOpen, false},
		{"transport reset", errors.New("read tcp: connection reset by peer"), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func errWrap(err error) error { return &wrapped{err} }

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "wrapped: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }
