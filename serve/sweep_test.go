package serve_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	memsched "repro"
	"repro/serve"
	"repro/sweep"
)

func sweepAlphas(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) / float64(n)
	}
	return out
}

// TestSweepEndpointGolden: the streamed records must be in point order and
// bit-identical to a direct engine run on an equivalent session.
func TestSweepEndpointGolden(t *testing.T) {
	client, srv := newTestServer(t, serve.Config{})
	ctx := context.Background()

	g, err := memsched.GenerateRandom(memsched.SmallRandParams(), 21)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := client.RegisterGraph(ctx, g, nil)
	if err != nil {
		t.Fatal(err)
	}

	req := serve.SweepRequest{
		GraphID:    reg.ID,
		Pools:      []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		Alphas:     sweepAlphas(8),
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{1, 2},
		Workers:    4,
	}
	var points []serve.SweepPoint
	sum, err := client.Sweep(ctx, req, func(pt serve.SweepPoint) error {
		points = append(points, pt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 32 || sum.Points != 32 {
		t.Fatalf("got %d points, summary %d, want 32", len(points), sum.Points)
	}
	for i, pt := range points {
		if pt.Index != i {
			t.Fatalf("stream out of order at %d: %+v", i, pt)
		}
	}
	if !sum.SessionCached {
		t.Fatal("sweep of a registered graph should hit the session cache")
	}
	if sum.GraphID != reg.ID {
		t.Fatalf("summary graph id %q != %q", sum.GraphID, reg.ID)
	}
	if len(sum.Curves) != 2 || len(sum.Curves[0].Makespan) != 8 {
		t.Fatalf("curves shape wrong: %+v", sum.Curves)
	}

	// Golden: the same spec on a direct session.
	sess, err := memsched.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.Run(ctx, sess, sweep.Spec{
		Base:       memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited),
		Alphas:     sweepAlphas(8),
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range points {
		want := direct.Points[i]
		if pt.Feasible != want.Feasible || pt.Makespan != want.Makespan || pt.Scheduler != want.Point.Scheduler ||
			pt.Seed != want.Point.Seed || pt.Alpha != want.Point.Alpha {
			t.Fatalf("point %d: wire %+v != direct %+v", i, pt, want)
		}
	}
	if sum.BestIndex != direct.Summary.BestIndex || sum.Feasible != direct.Summary.Feasible ||
		sum.RefMakespan != direct.Summary.RefMakespan || sum.Peak != direct.Summary.Peak {
		t.Fatalf("summary: wire %+v != direct %+v", sum, direct.Summary)
	}

	if st := srv.Stats(); st.SweepPoints != 32 || st.Scheduled != uint64(sum.Feasible) {
		t.Fatalf("server counters after sweep: %+v", st)
	}
}

// TestSweepEndpointExplicitPlatforms drives the platform-axis shape with an
// inline graph and a pool-times matrix (k-pool engine).
func TestSweepEndpointExplicitPlatforms(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	ctx := context.Background()

	g := memsched.NewGraph()
	a := g.AddTask("a", 0, 0)
	b := g.AddTask("b", 0, 0)
	g.MustAddEdge(a, b, 5, 1) // a 5-unit file starves the capacity-1 axis point
	raw, _ := g.MarshalJSON()

	big := int64(1 << 40)
	one := int64(1)
	sum, err := client.Sweep(ctx, serve.SweepRequest{
		Graph: raw,
		Times: [][]float64{{1, 2, 3}, {3, 2, 1}},
		Platforms: [][]serve.PoolSpec{
			{{Procs: 1, Capacity: &big}, {Procs: 1, Capacity: &big}, {Procs: 1, Capacity: &big}},
			{{Procs: 1, Capacity: &one}, {Procs: 1, Capacity: &one}, {Procs: 1, Capacity: &one}},
		},
		Xs:         []float64{1 << 40, 1},
		Schedulers: []string{"memheft"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points != 2 || sum.Feasible != 1 || sum.BestIndex != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Curves) != 1 || sum.Curves[0].Makespan[1] != nil {
		t.Fatalf("starved platform should be a null curve entry: %+v", sum.Curves)
	}
	if fr := sum.Frontier; len(fr) != 1 || fr[0].Axis != 0 {
		t.Fatalf("frontier = %+v", fr)
	}
}

func TestSweepEndpointValidation(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{MaxSweepPoints: 4})
	ctx := context.Background()
	raw, _ := memsched.PaperExample().MarshalJSON()
	pools := []serve.PoolSpec{{Procs: 1}, {Procs: 1}}

	cases := map[string]serve.SweepRequest{
		"no axes":         {Graph: raw, Pools: pools},
		"both axes":       {Graph: raw, Pools: pools, Alphas: []float64{1}, Platforms: [][]serve.PoolSpec{pools}},
		"alpha no pools":  {Graph: raw, Alphas: []float64{1}},
		"unknown sched":   {Graph: raw, Pools: pools, Alphas: []float64{1}, Schedulers: []string{"nope"}},
		"too many points": {Graph: raw, Pools: pools, Alphas: sweepAlphas(5)},
		"neg workers":     {Graph: raw, Pools: pools, Alphas: []float64{1}, Workers: -1},
		"neg timeout":     {Graph: raw, Pools: pools, Alphas: []float64{1}, TimeoutMS: -1},
		"pools+platforms": {Graph: raw, Pools: pools, Platforms: [][]serve.PoolSpec{pools}},
		"no graph":        {Pools: pools, Alphas: []float64{1}},
		"zero alpha":      {Graph: raw, Pools: pools, Alphas: []float64{0}},
		"negative peak":   {Graph: raw, Pools: pools, Alphas: []float64{1}, Peak: -1},
	}
	for name, req := range cases {
		_, err := client.Sweep(ctx, req, nil)
		var apiErr *serve.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("%s: want 400, got %v", name, err)
		}
	}
}

// TestSweepWorkerBudgetIsServerWide: a sweep can never claim more workers
// than the server-wide budget, and concurrent sweeps sharing an exhausted
// budget still complete (each gets at least one worker).
func TestSweepWorkerBudgetIsServerWide(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{MaxSweepWorkers: 2})
	ctx := context.Background()
	g, err := memsched.GenerateRandom(memsched.SmallRandParams(), 31)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := g.MarshalJSON()
	req := serve.SweepRequest{
		Graph:      raw,
		Pools:      []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		Alphas:     sweepAlphas(8),
		Schedulers: []string{"memheft"},
		Workers:    16,
	}
	var wg sync.WaitGroup
	sums := make([]*serve.SweepSummary, 3)
	errs := make([]error, 3)
	for i := range sums {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = client.Sweep(ctx, req, nil)
		}(i)
	}
	wg.Wait()
	for i := range sums {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		if sums[i].Workers < 1 || sums[i].Workers > 2 {
			t.Fatalf("sweep %d ran with %d workers, budget is 2", i, sums[i].Workers)
		}
	}
}

// TestSweepEngineRejectionIsPreStream400: failures the engine raises
// before any point is delivered — here the exact search on a k-pool
// session — must come back as a structured 4xx, not as a committed 200
// with an in-stream error record.
func TestSweepEngineRejectionIsPreStream400(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{})
	ctx := context.Background()

	g := memsched.NewGraph()
	a := g.AddTask("a", 0, 0)
	b := g.AddTask("b", 0, 0)
	g.MustAddEdge(a, b, 1, 1)
	raw, _ := g.MarshalJSON()

	_, err := client.Sweep(ctx, serve.SweepRequest{
		Graph:      raw,
		Times:      [][]float64{{1, 2, 3}, {3, 2, 1}},
		Pools:      []serve.PoolSpec{{Procs: 1}, {Procs: 1}, {Procs: 1}},
		Alphas:     []float64{1.0},
		Peak:       100, // skip the HEFT reference so the optimal point is the first failure
		Schedulers: []string{"optimal"},
	}, nil)
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want a pre-stream 400, got %v", err)
	}
	if !strings.Contains(apiErr.Message, "dual session") {
		t.Fatalf("error does not name the cause: %v", err)
	}
}

// TestSweepTimeoutEndsStreamWithErrorRecord: a sweep that outlives its
// budget terminates the (already committed) NDJSON stream with a typed
// error record, which the client surfaces as an APIError.
func TestSweepTimeoutEndsStreamWithErrorRecord(t *testing.T) {
	client, _ := newTestServer(t, serve.Config{MaxRequestBytes: 64 << 20})
	ctx := context.Background()

	params := memsched.LargeRandParams()
	params.Size = 20000
	g, err := memsched.GenerateRandom(params, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := g.MarshalJSON()
	_, err = client.Sweep(ctx, serve.SweepRequest{
		Graph:      raw,
		Pools:      []serve.PoolSpec{{Procs: 2}, {Procs: 2}},
		Alphas:     []float64{0.7, 0.8, 0.9, 1.0},
		Schedulers: []string{"memminmin"},
		TimeoutMS:  1,
	}, nil)
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != serve.CodeTimeout {
		t.Fatalf("want timeout error record, got %v", err)
	}
}

// TestMetricsEndpoint: the Prometheus exposition carries the per-endpoint
// request counters, the latency histogram and the cache gauges.
func TestMetricsEndpoint(t *testing.T) {
	srv := serve.NewServer(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := serve.NewClient(ts.URL, serve.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	raw, _ := memsched.PaperExample().MarshalJSON()
	if _, err := client.Schedule(ctx, serve.ScheduleRequest{Graph: raw, Pools: cap4()}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Schedule(ctx, serve.ScheduleRequest{Pools: cap4()}); err == nil {
		t.Fatal("expected a 400 for the counter test")
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`memschedd_requests_total{endpoint="/v1/schedule",code="200"} 1`,
		`memschedd_requests_total{endpoint="/v1/schedule",code="400"} 1`,
		`memschedd_request_duration_seconds_bucket{endpoint="/v1/schedule",le="+Inf"} 2`,
		`memschedd_request_duration_seconds_count{endpoint="/v1/schedule"} 2`,
		"memschedd_session_cache_hits_total 0",
		"memschedd_session_cache_misses_total 1",
		"memschedd_sessions_cached 1",
		"memschedd_in_flight 0",
		"memschedd_scheduled_total 1",
		"# TYPE memschedd_request_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}
