package serve

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrStreamTruncated marks a sweep stream that died before delivering its
// summary record — a dropped connection, a crashed server, or an injected
// truncation. It is retryable: Client.Sweep resumes a retried stream from
// the first undelivered point index.
var ErrStreamTruncated = errors.New("sweep stream truncated")

// ErrBreakerOpen is returned by a Client whose circuit breaker is open:
// the call was not sent. It is terminal for the call (retrying through an
// open breaker is the thundering herd the breaker exists to prevent).
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// Retryable classifies err per the service's error taxonomy: transient
// states worth a fresh attempt versus terminal rejections.
//
// Retryable: 408 (deadline raced the run), 429 (shed or rate-limited —
// the response says when to come back), any 5xx (including the draining
// 503 and injected faults), and every transport-level failure (connection
// reset, truncated stream, unexpected EOF) — safe because the mutating
// endpoints are idempotent by canonical graph hash.
//
// Terminal: every other 4xx (the request itself is wrong — resending the
// same bytes cannot succeed), context cancellation (the caller gave up),
// an open breaker, and mid-stream error records other than injected
// unavailability (a stream that *ended* with a typed record reflects a
// server-side decision, not a lost connection).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrBreakerOpen) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status == http.StatusOK {
			// A typed in-stream error record: the HTTP exchange worked.
			return apiErr.Code == CodeUnavailable
		}
		switch apiErr.Status {
		case http.StatusRequestTimeout, http.StatusTooManyRequests:
			return true
		}
		return apiErr.Status >= 500
	}
	return true
}

// RetryPolicy tunes a Client's retry loop (WithRetry). The zero value is
// completed with the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts is the per-call budget: total tries, first included
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff ceiling (default 25ms):
	// retry n draws its pause uniformly from [0, BaseDelay·2ⁿ⁻¹] — "full
	// jitter", which spreads a synchronized burst of retriers instead of
	// re-synchronizing them.
	BaseDelay time.Duration
	// MaxDelay caps one backoff pause (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay returns the pause before retry number retry (1-based): full
// jitter under an exponentially growing ceiling, but never less than the
// server's Retry-After hint — the server knows when capacity frees.
func (p RetryPolicy) delay(retry int, retryAfter time.Duration) time.Duration {
	ceil := p.MaxDelay
	if retry-1 < 30 { // past 2³⁰·BaseDelay the shift is surely over MaxDelay
		if c := p.BaseDelay << (retry - 1); c > 0 && c < ceil {
			ceil = c
		}
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// sleepCtx pauses for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterOf extracts the server's Retry-After hint from a classified
// error (zero when absent).
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: calls flow; consecutive transient failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fail fast with ErrBreakerOpen until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe call may proceed; its outcome
	// decides between closed and open.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker for Client
// (WithBreaker): after threshold transient failures in a row it opens and
// fails calls fast for cooldown, then lets a single probe through; the
// probe's outcome closes it or re-opens it. Only failures the taxonomy
// calls Retryable count — a 422 "does not fit" is the server working fine.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	trips    uint64
}

// NewBreaker returns a closed breaker tripping after threshold
// consecutive transient failures (default 5) and probing again after
// cooldown (default 1s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a call may proceed now (nil) or must fail fast
// (ErrBreakerOpen). An allowed call must be followed by exactly one
// record.
func (b *Breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // half-open: one probe at a time
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// record reports an allowed call's outcome. success means the server
// held up its end — a terminal 4xx counts as success here.
func (b *Breaker) record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		if success {
			b.state = BreakerClosed
			b.failures = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
		return
	}
	if success {
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// State returns the breaker's current position (open breakers past their
// cooldown still report open until a call probes them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed→open transitions over the breaker's lifetime.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
