package serve

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/trace"
)

// TraceCapture is one retained request trace: the span timeline of a
// request that ranked among the K slowest seen on its route.
type TraceCapture struct {
	RequestID string `json:"request_id"`
	Route     string `json:"route"`
	Status    int    `json:"status"`
	// Start is the request's arrival time (wall clock, RFC 3339).
	Start time.Time `json:"start"`
	// DurMicros is the request's total wall time; the spans below nest
	// inside it.
	DurMicros    int64       `json:"dur_us"`
	Spans        []TraceSpan `json:"spans"`
	DroppedSpans uint64      `json:"dropped_spans,omitempty"`
}

// TracesResponse is the payload of GET /debug/traces: per route, the
// retained captures sorted slowest-first.
type TracesResponse struct {
	// Keep is the per-route retention bound K.
	Keep   int                       `json:"keep"`
	Routes map[string][]TraceCapture `json:"routes"`
}

// traceStore keeps the K slowest request traces per route in a bounded
// in-memory ring, so "what was slow recently, and where did the time
// go?" is answerable from a running server without external tooling.
type traceStore struct {
	mu      sync.Mutex
	keep    int
	byRoute map[string][]TraceCapture // sorted by DurMicros descending
}

func newTraceStore(keep int) *traceStore {
	if keep <= 0 {
		keep = 8
	}
	return &traceStore{keep: keep, byRoute: make(map[string][]TraceCapture)}
}

// offer submits a capture; it is retained only if it ranks among the
// keep slowest for its route. Returns whether it was retained.
func (ts *traceStore) offer(c TraceCapture) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	list := ts.byRoute[c.Route]
	if len(list) >= ts.keep && c.DurMicros <= list[len(list)-1].DurMicros {
		return false
	}
	i := sort.Search(len(list), func(i int) bool { return list[i].DurMicros < c.DurMicros })
	list = append(list, TraceCapture{})
	copy(list[i+1:], list[i:])
	list[i] = c
	if len(list) > ts.keep {
		list = list[:ts.keep]
	}
	ts.byRoute[c.Route] = list
	return true
}

// snapshot copies the store into wire form.
func (ts *traceStore) snapshot() TracesResponse {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := TracesResponse{Keep: ts.keep, Routes: make(map[string][]TraceCapture, len(ts.byRoute))}
	for route, list := range ts.byRoute {
		cp := make([]TraceCapture, len(list))
		copy(cp, list)
		out.Routes[route] = cp
	}
	return out
}

// wireSpans converts a recorder's spans into wire form (microsecond
// offsets from the request's start).
func wireSpans(rec *trace.Recorder) []TraceSpan {
	spans := rec.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]TraceSpan, len(spans))
	for i, sp := range spans {
		out[i] = TraceSpan{Name: sp.Name, StartMicros: sp.Start.Microseconds(), DurMicros: sp.Dur.Microseconds()}
	}
	return out
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.snapshot())
}

// TracesHandler exposes the trace ring as a standalone handler, so a
// debug listener (NewDebugMux) can serve the same view as the serving
// port's GET /debug/traces.
func (s *Server) TracesHandler() http.Handler {
	return http.HandlerFunc(s.handleTraces)
}
