package clustersim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/workload"
)

// CapacitySweep simulates the same trace at each replica count in counts,
// on up to workers goroutines (capped at len(counts); <= 0 means
// len(counts)). Results arrive in counts order regardless of worker count
// or scheduling: each simulation is independent (its own ring, replicas
// and jitter stream seeded only by base.Seed), workers claim points off an
// atomic cursor, and outputs land in their input slot — the same
// determinism idiom as the engine's sweep worker pool. Replica IDs are
// synthesised as "r1".."rM" unless base.Replicas is set, in which case
// counts must not exceed its length (prefixes are used).
func CapacitySweep(tr *workload.Trace, base Config, counts []int, workers int) ([]*Result, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("clustersim: capacity sweep needs at least one replica count")
	}
	for _, n := range counts {
		if n < 1 {
			return nil, fmt.Errorf("clustersim: replica count %d out of range", n)
		}
		if len(base.Replicas) > 0 && n > len(base.Replicas) {
			return nil, fmt.Errorf("clustersim: replica count %d exceeds the %d configured ids", n, len(base.Replicas))
		}
	}
	if workers <= 0 || workers > len(counts) {
		workers = len(counts)
	}

	out := make([]*Result, len(counts))
	errs := make([]error, len(counts))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(counts) {
					return
				}
				cfg := base
				if len(base.Replicas) > 0 {
					cfg.Replicas = base.Replicas[:counts[i]]
				} else {
					ids := make([]string, counts[i])
					for j := range ids {
						ids[j] = fmt.Sprintf("r%d", j+1)
					}
					cfg.Replicas = ids
				}
				out[i], errs[i] = Run(tr, cfg)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PlanCapacity returns the smallest replica count in counts (tried in
// order) whose simulation meets minGoodput for every class, alongside the
// full sweep for inspection. ok is false when none does.
func PlanCapacity(tr *workload.Trace, base Config, counts []int, minGoodput float64) (need int, results []*Result, ok bool, err error) {
	results, err = CapacitySweep(tr, base, counts, 0)
	if err != nil {
		return 0, nil, false, err
	}
	for i, res := range results {
		if res.MeetsSLO(minGoodput) {
			return counts[i], results, true, nil
		}
	}
	return 0, results, false, nil
}
