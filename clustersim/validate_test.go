package clustersim_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"repro/clustersim"
	"repro/serve"
	"repro/workload"
)

// TestValidateAgainstLiveCluster gates the simulator against reality: the
// same recorded trace is driven through a live 3-replica httptest cluster
// (real serve.Server instances, real client-side ring routing, real
// session LRUs running the actual scheduling engine) and through the
// simulator configured with the same replica IDs and cache size — then
// simulated vs observed per-replica request counts and session-cache hit
// rates must agree.
//
// Tolerance and why it is where it is: both sides route by ring first
// owner over identical member strings (the trace is driven sequentially,
// so live in-flight load is always zero and the client's ring walk reduces
// to Owner; the simulator's service means are set microscopic so its
// bounded-load rule sees zero load too), and both sides run the same
// Get-then-Put-on-miss semantics over the same memo.LRU with the same
// canonical GraphHash keys — so agreement should be *exact*. The assert
// allows 2 percentage points of hit rate and 2% of per-replica requests
// anyway, as insurance against incidental server-side cache touches being
// added later; a real model divergence (routing, eviction order, keying)
// shifts these numbers far past 2%. Tighten, don't loosen: if this test
// fails at 2%, the simulator is wrong, not the tolerance.
func TestValidateAgainstLiveCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("live-cluster validation is not a -short test")
	}
	const cacheSize = 5
	spec := &workload.Spec{
		Version:         workload.SpecVersion,
		DurationSeconds: 3,
		Catalog:         workload.Catalog{Graphs: 24, Tasks: 6, Seed: 9},
		Classes: []workload.Class{{
			Name:      "validate",
			Arrival:   workload.Arrival{Process: workload.ProcessPoisson, Rate: 100},
			Mix:       workload.Mix{Schedule: 1},
			Zipf:      0.9,
			SLOMillis: 1000,
		}},
	}
	tr, err := workload.Generate(spec, 21)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	set, err := spec.Catalog.Build()
	if err != nil {
		t.Fatalf("Catalog.Build: %v", err)
	}
	rawGraphs := make([]json.RawMessage, len(set.Graphs))
	for i, g := range set.Graphs {
		raw, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("marshaling graph %d: %v", i, err)
		}
		rawGraphs[i] = raw
	}

	// Three live replicas. The httptest URLs double as ring member IDs on
	// both sides, so live and simulated routing hash identical strings.
	servers := make([]*serve.Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		srv := serve.NewServer(serve.Config{CacheSize: cacheSize})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		servers[i] = srv
		urls[i] = ts.URL
	}
	client, err := serve.NewClusterClient(urls,
		serve.WithRequestHeader(serve.WorkloadClassHeader, "validate"))
	if err != nil {
		t.Fatalf("NewClusterClient: %v", err)
	}

	// Drive the trace sequentially — arrival *order*, not arrival timing:
	// hit rates and routing depend only on the request sequence, and
	// sequential driving keeps live load at zero so routing is exactly
	// first-owner on both sides.
	ctx := context.Background()
	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	for ei, ev := range tr.Events {
		_, err := client.Schedule(ctx, serve.ScheduleRequest{Graph: rawGraphs[ev.Graph], Pools: pools})
		if err != nil {
			t.Fatalf("live schedule of event %d failed: %v", ei, err)
		}
	}

	sim, err := clustersim.Run(tr, clustersim.Config{
		Replicas:  urls,
		CacheSize: cacheSize,
		// Effectively infinite capacity and instant service: the live
		// drive was sequential, so the simulator must not queue either.
		MaxInFlight: 64,
		Service: clustersim.ServiceModel{
			ScheduleHit: 1e-6, ScheduleMiss: 1e-6,
			SimulateHit: 1e-6, SimulateMiss: 1e-6,
			SweepPointHit: 1e-6, SweepPointMiss: 1e-6,
		},
	})
	if err != nil {
		t.Fatalf("clustersim.Run: %v", err)
	}

	var liveHits, liveMisses uint64
	for i, srv := range servers {
		st := srv.Stats()
		liveHits += st.SessionHits
		liveMisses += st.SessionMisses
		simRS := sim.ReplicaStats[i]
		if simRS.ID != urls[i] {
			t.Fatalf("replica stats order mismatch: %q vs %q", simRS.ID, urls[i])
		}
		liveCount := float64(st.SessionHits + st.SessionMisses)
		simCount := float64(simRS.Hits + simRS.Misses)
		if liveCount == 0 && simCount == 0 {
			continue
		}
		if relDiff(simCount, liveCount) > 0.02 {
			t.Errorf("replica %d request count: sim %v vs live %v (>2%% apart)", i, simCount, liveCount)
		}
		if math.Abs(simRS.HitRate()-hitRate(st.SessionHits, st.SessionMisses)) > 0.02 {
			t.Errorf("replica %d hit rate: sim %.4f vs live %.4f (>2 points apart)",
				i, simRS.HitRate(), hitRate(st.SessionHits, st.SessionMisses))
		}
	}
	liveRate := hitRate(liveHits, liveMisses)
	if liveHits+liveMisses == 0 {
		t.Fatal("live cluster observed no session traffic; the drive did not reach the replicas")
	}
	if math.Abs(sim.HitRate-liveRate) > 0.02 {
		t.Fatalf("cluster hit rate: sim %.4f vs live %.4f (documented tolerance: 2 points)", sim.HitRate, liveRate)
	}
	// The spec must actually stress the caches, or agreement is vacuous:
	// a 24-graph catalog over 3 replicas with 5-entry caches has to both
	// hit (zipf head) and miss (tail churn).
	if liveRate < 0.05 || liveRate > 0.95 {
		t.Fatalf("live hit rate %.4f is degenerate; retune the validation spec", liveRate)
	}
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
