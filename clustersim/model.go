package clustersim

import (
	"fmt"
	"math"

	"repro/serve"
	"repro/workload"
)

// ServiceModel is the calibrated per-endpoint service-time model: mean
// seconds per request kind, split by session-cache outcome (a warm session
// answers from memos; a cold one re-derives ranks and statics, an order of
// magnitude slower — the split is the whole reason cache affinity matters).
// A sweep request costs SweepPoint{Hit,Miss} per α point it evaluates.
type ServiceModel struct {
	ScheduleHit    float64 `json:"schedule_hit_s"`
	ScheduleMiss   float64 `json:"schedule_miss_s"`
	SimulateHit    float64 `json:"simulate_hit_s"`
	SimulateMiss   float64 `json:"simulate_miss_s"`
	SweepPointHit  float64 `json:"sweep_point_hit_s"`
	SweepPointMiss float64 `json:"sweep_point_miss_s"`
	// JitterSigma is the σ of the mean-preserving lognormal service-time
	// jitter (0 = deterministic service).
	JitterSigma float64 `json:"jitter_sigma"`
}

// DefaultServiceModel returns a model in the ballpark of a warm memschedd
// on one core serving small graphs (the README's ~4k req/s figure puts a
// warm schedule around 250µs; cold sessions pay rank/statics derivation,
// roughly 10×). Calibrate against a real server with ModelFromLatencies
// when absolute numbers matter; defaults are for shape, not precision.
func DefaultServiceModel() ServiceModel {
	return ServiceModel{
		ScheduleHit:    0.00025,
		ScheduleMiss:   0.0025,
		SimulateHit:    0.0004,
		SimulateMiss:   0.003,
		SweepPointHit:  0.0005,
		SweepPointMiss: 0.004,
		JitterSigma:    0.25,
	}
}

func (m ServiceModel) validate() error {
	if m == (ServiceModel{}) {
		return nil // zero value means DefaultServiceModel at mean()
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"schedule_hit_s", m.ScheduleHit}, {"schedule_miss_s", m.ScheduleMiss},
		{"simulate_hit_s", m.SimulateHit}, {"simulate_miss_s", m.SimulateMiss},
		{"sweep_point_hit_s", m.SweepPointHit}, {"sweep_point_miss_s", m.SweepPointMiss},
	} {
		if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val <= 0 {
			return fmt.Errorf("clustersim: service model %s must be a finite positive duration in seconds", v.name)
		}
	}
	if math.IsNaN(m.JitterSigma) || m.JitterSigma < 0 || m.JitterSigma > 3 {
		return fmt.Errorf("clustersim: jitter_sigma must be in [0, 3]")
	}
	return nil
}

// mean returns the mean service seconds of one request.
func (m ServiceModel) mean(kind string, hit bool, sweepAlphas int) float64 {
	if m == (ServiceModel{}) {
		m = DefaultServiceModel()
	}
	switch kind {
	case workload.KindSimulate:
		if hit {
			return m.SimulateHit
		}
		return m.SimulateMiss
	case workload.KindSweep:
		if sweepAlphas < 1 {
			sweepAlphas = 1
		}
		per := m.SweepPointMiss
		if hit {
			per = m.SweepPointHit
		}
		return per * float64(sweepAlphas)
	default: // schedule
		if hit {
			return m.ScheduleHit
		}
		return m.ScheduleMiss
	}
}

// ModelFromLatencies calibrates a ServiceModel from a live server's
// exported latency histograms (serve.(*Server).EndpointLatencies) plus its
// observed session-cache hit rate. The observed endpoint mean mixes warm
// and cold requests: mean = h·hit + (1−h)·miss. With the second equation
// miss = missFactor·hit (the cold/warm cost ratio; pass 10 for the default
// model's shape) both unknowns resolve:
//
//	hit  = mean / (h + (1−h)·missFactor)
//	miss = missFactor · hit
//
// This is a deliberately coarse first moment fit — the simulator's claims
// are about routing, cache locality and queueing, not microsecond latency
// accuracy; the validation test holds hit rates and request counts to
// tolerance, not latencies. Endpoints absent from the snapshot keep the
// default model's value.
func ModelFromLatencies(lats []serve.EndpointLatency, hitRate, missFactor float64) ServiceModel {
	m := DefaultServiceModel()
	if missFactor < 1 {
		missFactor = 1
	}
	if hitRate < 0 {
		hitRate = 0
	}
	if hitRate > 1 {
		hitRate = 1
	}
	denom := hitRate + (1-hitRate)*missFactor
	split := func(mean float64) (hit, miss float64) {
		hit = mean / denom
		return hit, missFactor * hit
	}
	for _, l := range lats {
		if l.Count == 0 {
			continue
		}
		switch l.Endpoint {
		case "/v1/schedule":
			m.ScheduleHit, m.ScheduleMiss = split(l.MeanSeconds())
		case "/v1/simulate":
			m.SimulateHit, m.SimulateMiss = split(l.MeanSeconds())
		case "/v1/sweep":
			// The histogram times whole sweep requests; approximate the
			// per-point cost with the default model's 4-point width.
			m.SweepPointHit, m.SweepPointMiss = split(l.MeanSeconds() / 4)
		}
	}
	return m
}
