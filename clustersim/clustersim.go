// Package clustersim is a deterministic discrete-event simulator of a
// memschedd cluster: M replicas behind the real consistent-hash ring
// (package repro/cluster/ring), each with a bounded in-flight slot pool, a
// FIFO admission queue with load shedding, and an LRU session-cache model
// keyed by the same canonical graph hashes the live service uses.
//
// Feed it a workload.Trace (package repro/workload) and it answers the
// capacity-planning questions that would otherwise need a deployment: how
// many replicas does this traffic need, where does goodput collapse, how
// warm do the caches stay as the ring reshuffles keys. Because the
// simulation is seeded and single-threaded over a totally ordered event
// timeline, the same (Trace, Config) pair produces a byte-identical Result
// on every run — so a capacity plan can live in a committed golden test
// (see CapacitySweep), the serving-layer analogue of the engine's
// golden-equivalence tests.
//
// Fidelity boundary: the simulator models routing, admission, queueing and
// cache locality exactly (real ring, real bounded-load rule, real LRU
// semantics), but collapses request execution into a calibrated service
// time ServiceModel — it does not run the scheduling engine. The
// validation test in this package pins the part that matters for capacity
// planning: against a live 3-replica httptest cluster under the same
// trace, simulated and observed per-replica request counts and session
// cache hit rates must agree within a documented tolerance.
package clustersim

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/cluster"
	"repro/cluster/ring"
	"repro/internal/memo"
	"repro/workload"
)

// Config shapes the simulated cluster.
type Config struct {
	// Replicas are the ring member IDs (at least one). Order fixes the
	// ReplicaStats order in the Result.
	Replicas []string
	// CacheSize is each replica's session-LRU capacity (default 128,
	// matching serve.Config).
	CacheSize int
	// MaxInFlight bounds requests concurrently in service per replica
	// (default 2).
	MaxInFlight int
	// ShedQueueDepth bounds each replica's admission queue: arrivals
	// beyond it are shed with a simulated 429. 0 means unbounded (no
	// shedding); negative means no queue at all (busy ⇒ shed).
	ShedQueueDepth int
	// LoadFactor is the ring's bounded-load factor
	// (default cluster.DefaultLoadFactor, the router's own default).
	LoadFactor float64
	// VirtualNodes is the ring's per-member point count
	// (default ring.DefaultVirtualNodes).
	VirtualNodes int
	// Service is the calibrated per-endpoint service-time model
	// (default DefaultServiceModel()).
	Service ServiceModel
	// Seed drives the service-time jitter stream (and nothing else; the
	// trace carries its own randomness).
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Replicas) == 0 {
		return c, fmt.Errorf("clustersim: config needs at least one replica id")
	}
	seen := make(map[string]bool, len(c.Replicas))
	for _, id := range c.Replicas {
		if id == "" || seen[id] {
			return c, fmt.Errorf("clustersim: replica id %q empty or duplicated", id)
		}
		seen[id] = true
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = cluster.DefaultLoadFactor
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = ring.DefaultVirtualNodes
	}
	if err := c.Service.validate(); err != nil {
		return c, err
	}
	return c, nil
}

// ReplicaStats is one simulated replica's tally.
type ReplicaStats struct {
	ID     string `json:"id"`
	Served uint64 `json:"served"`
	Shed   uint64 `json:"shed"`
	// Hits/Misses/Evictions are the session-cache model's counters —
	// directly comparable to the live memschedd_session_cache_* metrics.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// PeakQueue is the deepest the admission queue got.
	PeakQueue int `json:"peak_queue"`
	// BusyMicros is summed service time — divide by the horizon for
	// utilisation.
	BusyMicros int64 `json:"busy_us"`
}

// HitRate is Hits / (Hits + Misses), 0 when the replica saw no traffic.
func (r ReplicaStats) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// Result is a full simulation outcome: the workload Report plus the
// cluster-level detail a capacity planner reads.
type Result struct {
	Replicas       int              `json:"replicas"`
	CacheSize      int              `json:"cache_size"`
	MaxInFlight    int              `json:"max_in_flight"`
	ShedQueueDepth int              `json:"shed_queue_depth"`
	Seed           int64            `json:"seed"`
	Report         *workload.Report `json:"report"`
	ReplicaStats   []ReplicaStats   `json:"replica_stats"`
	// Spillovers counts requests routed past their first-choice owner by
	// the bounded-load rule.
	Spillovers uint64 `json:"spillovers"`
	// HorizonMicros is when the last request completed (≥ the trace
	// duration when queues drained late).
	HorizonMicros int64 `json:"horizon_us"`
	// HitRate is the cluster-wide session-cache hit rate.
	HitRate float64 `json:"hit_rate"`
}

// Encode writes the result as deterministic indented JSON (the golden-test
// format).
func (r *Result) Encode(w io.Writer) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("clustersim: encoding result: %w", err)
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// MeetsSLO reports whether every class hit at least minGoodput — the
// predicate PlanCapacity searches with.
func (r *Result) MeetsSLO(minGoodput float64) bool {
	for _, c := range r.Report.Classes {
		if c.Goodput < minGoodput {
			return false
		}
	}
	return true
}

// completion is one in-service request's scheduled finish.
type completion struct {
	at      int64 // microseconds
	seq     uint64
	replica int
	event   int // trace event index
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// queued is one request waiting for an in-flight slot.
type queued struct {
	event   int
	arrived int64
}

// replica is one simulated memschedd instance.
type replica struct {
	id       string
	inFlight int
	queue    []queued
	cache    *memo.LRU[string, struct{}]
	stats    ReplicaStats
}

// Run replays the trace through a simulated cluster and aggregates the
// outcome. Determinism contract: same (Trace, Config) ⇒ identical Result —
// the event timeline is totally ordered (time, then completion-before-
// arrival, then arrival order), the jitter stream is seeded by Config.Seed
// and consumed in timeline order, and every map is avoided in favour of
// slices indexed by replica position.
func Run(tr *workload.Trace, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tr == nil || len(tr.Graphs) == 0 {
		return nil, fmt.Errorf("clustersim: trace is empty")
	}
	for _, ev := range tr.Events {
		if ev.Class < 0 || ev.Class >= len(tr.Classes) || ev.Graph < 0 || ev.Graph >= len(tr.Graphs) {
			return nil, fmt.Errorf("clustersim: trace event references out-of-range class or graph")
		}
	}

	rg, err := ring.New(cfg.Replicas, ring.WithVirtualNodes(cfg.VirtualNodes))
	if err != nil {
		return nil, fmt.Errorf("clustersim: building ring: %w", err)
	}
	index := make(map[string]int, len(cfg.Replicas))
	reps := make([]*replica, len(cfg.Replicas))
	for i, id := range cfg.Replicas {
		index[id] = i
		reps[i] = &replica{id: id, cache: memo.NewLRU[string, struct{}](cfg.CacheSize)}
	}

	jitter := newRNG(cfg.Seed)
	outcomes := make([]workload.Outcome, 0, len(tr.Events))
	var (
		heapQ      completionHeap
		seq        uint64
		spillovers uint64
		horizon    int64
	)

	// startService begins one request on rep at time now, pushing its
	// completion. The cache is consulted at service start (the live
	// server resolves its session before scheduling work too).
	startService := func(rep *replica, repIdx, event int, now int64) {
		ev := tr.Events[event]
		hash := tr.Graphs[ev.Graph].Hash
		_, hit := rep.cache.Get(hash)
		if hit {
			rep.stats.Hits++
		} else {
			rep.stats.Misses++
			rep.cache.Put(hash, struct{}{})
			rep.stats.Evictions = rep.cache.Evictions()
		}
		mean := cfg.Service.mean(ev.Kind, hit, tr.Classes[ev.Class].SweepAlphas)
		us := jitter.serviceMicros(mean, cfg.Service.JitterSigma)
		rep.inFlight++
		rep.stats.BusyMicros += us
		seq++
		heap.Push(&heapQ, completion{at: now + us, seq: seq, replica: repIdx, event: event})
	}

	// finish retires the completion c and starts the next queued request,
	// if any, at the freed slot.
	finish := func(c completion) {
		rep := reps[c.replica]
		rep.inFlight--
		rep.stats.Served++
		outcomes = append(outcomes, workload.Outcome{
			Event:   c.event,
			Status:  workload.StatusOK,
			Latency: time.Duration(c.at-tr.Events[c.event].At.Microseconds()) * time.Microsecond,
		})
		if c.at > horizon {
			horizon = c.at
		}
		if len(rep.queue) > 0 {
			next := rep.queue[0]
			rep.queue = rep.queue[1:]
			startService(rep, c.replica, next.event, c.at)
		}
	}

	load := func(id string) int {
		rep := reps[index[id]]
		return rep.inFlight + len(rep.queue)
	}

	for ei, ev := range tr.Events {
		at := ev.At.Microseconds()
		// Retire everything completing at or before this arrival:
		// completions at the same microsecond free their slot first, as a
		// real server would have written its response before the next
		// in-flight slot is contended.
		for len(heapQ) > 0 && heapQ[0].at <= at {
			finish(heap.Pop(&heapQ).(completion))
		}
		hash := tr.Graphs[ev.Graph].Hash
		owner, ok := rg.OwnerBounded(hash, cfg.LoadFactor, load)
		if !ok {
			// Unreachable with static membership (no replica reports
			// negative load), kept for symmetry with the router.
			outcomes = append(outcomes, workload.Outcome{Event: ei, Status: workload.StatusError})
			continue
		}
		if owner != rg.Owner(hash) {
			spillovers++
		}
		repIdx := index[owner]
		rep := reps[repIdx]
		switch {
		case rep.inFlight < cfg.MaxInFlight:
			startService(rep, repIdx, ei, at)
		case cfg.ShedQueueDepth == 0 || len(rep.queue) < cfg.ShedQueueDepth:
			rep.queue = append(rep.queue, queued{event: ei, arrived: at})
			if len(rep.queue) > rep.stats.PeakQueue {
				rep.stats.PeakQueue = len(rep.queue)
			}
		default:
			rep.stats.Shed++
			outcomes = append(outcomes, workload.Outcome{Event: ei, Status: workload.StatusShed})
		}
	}
	// Drain: every queued and in-service request completes.
	for len(heapQ) > 0 {
		finish(heap.Pop(&heapQ).(completion))
	}

	stats := make([]ReplicaStats, len(reps))
	var hits, misses uint64
	for i, rep := range reps {
		rep.stats.ID = rep.id
		stats[i] = rep.stats
		hits += rep.stats.Hits
		misses += rep.stats.Misses
	}
	res := &Result{
		Replicas:       len(reps),
		CacheSize:      cfg.CacheSize,
		MaxInFlight:    cfg.MaxInFlight,
		ShedQueueDepth: cfg.ShedQueueDepth,
		Seed:           cfg.Seed,
		Report:         workload.NewReport(tr, outcomes),
		ReplicaStats:   stats,
		Spillovers:     spillovers,
		HorizonMicros:  horizon,
	}
	if hits+misses > 0 {
		res.HitRate = float64(hits) / float64(hits+misses)
	}
	return res, nil
}

// rng is the jitter stream: a private splitmix64 (the same construction as
// package workload's generator — duplicated rather than exported, the two
// packages' streams must never be coupled by a shared type).
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	r := &rng{state: uint64(seed) ^ 0x9e3779b97f4a7c15}
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) norm() float64 {
	u1 := 1 - r.float64()
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// serviceMicros draws one service time: lognormal jitter around mean
// seconds, mean-preserved (the exp(σz − σ²/2) correction keeps E[X] =
// mean for any σ), floored at 1µs. σ = 0 is deterministic service.
func (r *rng) serviceMicros(mean, sigma float64) int64 {
	x := mean
	if sigma > 0 {
		x = mean * math.Exp(sigma*r.norm()-sigma*sigma/2)
	}
	us := int64(math.Round(x * 1e6))
	if us < 1 {
		us = 1
	}
	return us
}
