package clustersim_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/clustersim"
	"repro/workload"
)

// -update-golden regenerates the committed trace and report goldens from
// testdata/spec_small.json. Run it after an intentional format or model
// change, and review the diff like any other code change.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace and report from the committed spec")

const (
	goldenSeed    = 42
	goldenSimSeed = 7
)

func goldenConfig() clustersim.Config {
	return clustersim.Config{
		Replicas:       []string{"r1", "r2", "r3"},
		CacheSize:      4,
		MaxInFlight:    1,
		ShedQueueDepth: 2,
		Seed:           goldenSimSeed,
		// A single-core-replica model, slow enough that the bursty class
		// queues and sheds: the golden must exercise admission, not just
		// routing.
		Service: clustersim.ServiceModel{
			ScheduleHit:    0.002,
			ScheduleMiss:   0.012,
			SimulateHit:    0.003,
			SimulateMiss:   0.015,
			SweepPointHit:  0.0025,
			SweepPointMiss: 0.012,
			JitterSigma:    0.25,
		},
	}
}

func loadGoldenSpec(t *testing.T) *workload.Spec {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "spec_small.json"))
	if err != nil {
		t.Fatalf("opening spec: %v", err)
	}
	defer f.Close()
	spec, err := workload.DecodeSpec(f)
	if err != nil {
		t.Fatalf("decoding spec: %v", err)
	}
	return spec
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("writing golden %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s (regenerate with -update-golden): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the committed golden.\n"+
			"If the change is intentional, regenerate with:\n"+
			"  go test ./clustersim -run TestGolden -update-golden\n"+
			"and review the diff. Byte-identical replay is this package's contract.", path)
	}
}

// TestGoldenTraceAndReport is the capacity-planning regression gate: the
// committed (Spec, seed) must expand to a byte-identical trace, and that
// trace through the simulator must produce a byte-identical Result — on
// every platform, Go release and run. Any drift (generator draw order, trace
// encoding, routing, cache model, report math) fails here before it can
// silently re-baseline a capacity plan.
func TestGoldenTraceAndReport(t *testing.T) {
	spec := loadGoldenSpec(t)
	tr, err := workload.Generate(spec, goldenSeed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var traceBuf bytes.Buffer
	if err := workload.EncodeTrace(&traceBuf, tr); err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_trace.ndjson"), traceBuf.Bytes())

	res, err := clustersim.Run(tr, goldenConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var repBuf bytes.Buffer
	if err := res.Encode(&repBuf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_report.json"), repBuf.Bytes())

	// The golden run must exercise the interesting paths, or the gate
	// guards nothing: cache churn (evictions) and queueing (peak queue).
	var evictions uint64
	peak := 0
	for _, rs := range res.ReplicaStats {
		evictions += rs.Evictions
		if rs.PeakQueue > peak {
			peak = rs.PeakQueue
		}
	}
	if evictions == 0 {
		t.Error("golden run produced no cache evictions; the spec no longer stresses the LRU model")
	}
	if peak == 0 {
		t.Error("golden run produced no queueing; the spec no longer stresses admission")
	}
}

// TestTraceDecodeMatchesGenerate pins record/replay: decoding the committed
// golden trace must reproduce exactly what Generate produces, so a recorded
// trace is a full substitute for regeneration.
func TestTraceDecodeMatchesGenerate(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_trace.ndjson"))
	if err != nil {
		t.Skipf("golden trace missing (run -update-golden first): %v", err)
	}
	decoded, err := workload.DecodeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	resFromDecoded, err := clustersim.Run(decoded, goldenConfig())
	if err != nil {
		t.Fatalf("Run(decoded): %v", err)
	}
	tr, err := workload.Generate(loadGoldenSpec(t), goldenSeed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	resFromGenerated, err := clustersim.Run(tr, goldenConfig())
	if err != nil {
		t.Fatalf("Run(generated): %v", err)
	}
	var a, b bytes.Buffer
	if err := resFromDecoded.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := resFromGenerated.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("a replayed (decoded) trace simulates differently from its regenerated twin")
	}
}

// TestCapacitySweepDeterministicAcrossWorkers runs the same capacity sweep
// on 1, 2 and 4 workers and demands byte-identical results in order — the
// same contract as the engine's sweep pool, and the test CI runs under
// -race: any shared mutable state between concurrent simulations surfaces
// here.
func TestCapacitySweepDeterministicAcrossWorkers(t *testing.T) {
	spec := loadGoldenSpec(t)
	tr, err := workload.Generate(spec, goldenSeed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	counts := []int{1, 2, 3, 4, 6}
	base := clustersim.Config{CacheSize: 4, MaxInFlight: 2, ShedQueueDepth: 4, Seed: goldenSimSeed}
	var reference [][]byte
	for _, workers := range []int{1, 2, 4} {
		results, err := clustersim.CapacitySweep(tr, base, counts, workers)
		if err != nil {
			t.Fatalf("CapacitySweep(workers=%d): %v", workers, err)
		}
		if len(results) != len(counts) {
			t.Fatalf("CapacitySweep(workers=%d) returned %d results, want %d", workers, len(results), len(counts))
		}
		encoded := make([][]byte, len(results))
		for i, res := range results {
			if res.Replicas != counts[i] {
				t.Fatalf("result %d is for %d replicas, want %d (out-of-order results)", i, res.Replicas, counts[i])
			}
			var buf bytes.Buffer
			if err := res.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			encoded[i] = buf.Bytes()
		}
		if reference == nil {
			reference = encoded
			continue
		}
		for i := range encoded {
			if !bytes.Equal(reference[i], encoded[i]) {
				t.Fatalf("workers=%d result %d differs from the single-worker run", workers, i)
			}
		}
	}
}

// TestPlanCapacity sanity-checks the planning predicate: more replicas can
// only help (goodput is monotone-ish for this spec), and the planner picks
// the first count that clears the bar.
func TestPlanCapacity(t *testing.T) {
	spec := loadGoldenSpec(t)
	tr, err := workload.Generate(spec, goldenSeed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	base := clustersim.Config{CacheSize: 4, MaxInFlight: 2, ShedQueueDepth: 4, Seed: goldenSimSeed}
	counts := []int{1, 2, 4, 8}
	need, results, ok, err := clustersim.PlanCapacity(tr, base, counts, 0.5)
	if err != nil {
		t.Fatalf("PlanCapacity: %v", err)
	}
	if !ok {
		t.Fatalf("no replica count in %v reaches 0.5 goodput for every class", counts)
	}
	for i, res := range results {
		if res.MeetsSLO(0.5) {
			if counts[i] != need {
				t.Fatalf("planner picked %d replicas, but %d already meets the bar", need, counts[i])
			}
			break
		}
	}
}
