package memsched

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/multi"
)

// This file holds the warm-start surface of a Session: the replay-trace
// store behind WithWarmStart, the WarmUp precomputation entry point and the
// platform-eligibility predicate of capacity-delta replay.

// warmKey identifies one replay trace: traces are only exchanged between
// runs of the same scheduler with the same tie-break seed, where the
// committed placement sequence is a pure function of the platform.
type warmKey struct {
	scheduler string
	seed      int64
}

// maxWarmTraces bounds the per-engine trace store of a session. A sweep
// chain uses one key at a time (a handful across schedulers and seeds);
// beyond the bound an arbitrary entry is evicted, which only costs the next
// warm-started run its replay.
const maxWarmTraces = 8

// ReplayableScheduler reports whether the named scheduler supports
// WithWarmStart trace record/replay: the four list schedulers whose commit
// loops verify recorded candidates step by step ("memheft", "memminmin",
// "heft", "minmin"). The insertion ablation is excluded — its commits
// depend on idle-gap state a trace does not capture. WithWarmStart is
// silently inert for every other scheduler.
func ReplayableScheduler(name string) bool {
	switch name {
	case "memheft", "memminmin", "heft", "minmin":
		return true
	}
	return false
}

// dualWarm is one stored dual-engine warm entry: the recorded trace, a
// private clone of the schedule it produced with its makespan, and the peak
// memory residencies of that schedule. When a later run replays the complete
// trace its schedule is bit-identical to the recorded one, so the stored
// peaks let it skip the O(E log E) MemoryPeaks scan; when the trace's fit
// margins prove the whole replay up front (Trace.FullReplayOn), the stored
// schedule is cloned out directly and the engine never runs. All fields are
// immutable once stored.
type dualWarm struct {
	trace    *core.Trace
	sched    *Schedule // private clone; never handed out directly
	makespan float64
	peaks    []int64 // blue, red
}

// multiWarm mirrors dualWarm for the k-pool engine, with the per-pool task
// counts the engine would have reported.
type multiWarm struct {
	trace     *multi.Trace
	sched     *PoolSchedule // private clone; never handed out directly
	makespan  float64
	poolTasks []int
	peaks     []int64 // per pool
}

// dualWarmEntry returns the stored dual-engine entry of k (nil when
// absent). The returned entry is immutable and safe to read concurrently.
func (s *Session) dualWarmEntry(k warmKey) *dualWarm {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	return s.warmDual[k]
}

// putDualWarm stores tr with a private clone of the schedule it produced,
// its makespan and its peaks under k, replacing any previous entry.
// Incomplete traces (failed or interrupted runs) are dropped: replaying a
// prefix of a run that did not finish could diverge from a from-scratch run
// in ways the per-step verification never gets to check.
func (s *Session) putDualWarm(k warmKey, tr *core.Trace, sched *Schedule, makespan float64, peaks []int64) {
	if tr == nil || !tr.Complete {
		return
	}
	entry := &dualWarm{trace: tr, sched: sched.Clone(), makespan: makespan, peaks: peaks}
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if s.warmDual == nil {
		s.warmDual = make(map[warmKey]*dualWarm, maxWarmTraces)
	}
	if _, ok := s.warmDual[k]; !ok {
		for len(s.warmDual) >= maxWarmTraces {
			for victim := range s.warmDual {
				delete(s.warmDual, victim)
				break
			}
		}
	}
	s.warmDual[k] = entry
}

// multiWarmEntry and putMultiWarm mirror the dual-engine store for the
// k-pool engine.
func (s *Session) multiWarmEntry(k warmKey) *multiWarm {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	return s.warmMulti[k]
}

func (s *Session) putMultiWarm(k warmKey, tr *multi.Trace, sched *PoolSchedule, makespan float64, poolTasks []int, peaks []int64) {
	if tr == nil || !tr.Complete {
		return
	}
	entry := &multiWarm{
		trace:     tr,
		sched:     sched.Clone(),
		makespan:  makespan,
		poolTasks: append([]int(nil), poolTasks...),
		peaks:     peaks,
	}
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	if s.warmMulti == nil {
		s.warmMulti = make(map[warmKey]*multiWarm, maxWarmTraces)
	}
	if _, ok := s.warmMulti[k]; !ok {
		for len(s.warmMulti) >= maxWarmTraces {
			for victim := range s.warmMulti {
				delete(s.warmMulti, victim)
				break
			}
		}
	}
	s.warmMulti[k] = entry
}

// WarmUp precomputes everything a Schedule call and every warm fork inherit
// — validation, graph statics, mean ranks and the priority list of each
// given seed (default seed 0) — with cooperative cancellation, so the
// session's first scheduling call and every Fork taken afterwards start
// fully warm. Dual sessions warm the dual-engine memos; WithPoolTimes
// sessions warm the k-pool memos. Calling WarmUp is never required:
// everything it computes is also computed lazily.
func (s *Session) WarmUp(ctx context.Context, seeds ...int64) error {
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	if s.times == nil {
		err = s.caches.Warm(ctx, s.g, seeds)
	} else {
		err = s.mcaches.Warm(ctx, s.instance(), seeds)
	}
	if err != nil {
		return fmt.Errorf("memsched: warm-up interrupted: %w", err)
	}
	return nil
}

// ReplayEligible reports whether a warm-start trace recorded on prev may be
// replayed on next: same pool count, identical per-pool processor counts,
// and no capacity grown (two Unlimited capacities compare equal regardless
// of their numeric encoding). Shrinking capacities only delays or blocks
// placements, which the per-step replay verification catches exactly;
// growing one can unblock a previously skipped task, which replay cannot
// see, so it is rejected. The sweep engine orders each point chain by
// descending total capacity so adjacent points stay eligible.
func ReplayEligible(prev, next Platform) bool {
	return multi.ReplayEligible(prev, next)
}
