package memsched_test

// One benchmark per table and figure of the paper's evaluation (§6), plus
// ablation benchmarks for the design choices called out in DESIGN.md. The
// figure benchmarks run the same harness code as cmd/experiments at reduced
// scale so `go test -bench=.` completes in minutes; run
// `go run ./cmd/experiments -scale full` for the paper-scale campaign.

import (
	"context"
	"testing"

	memsched "repro"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/linalg"
	"repro/internal/memfn"
	"repro/internal/multi"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/sweep"
)

// --- Table 1 ---

// BenchmarkTable1Kernels regenerates the kernel timing table.
func BenchmarkTable1Kernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if len(t.Rows) != 6 {
			b.Fatal("table shape")
		}
	}
}

// --- Figures 10-15 ---

// BenchmarkFig10SmallRandSet runs the SmallRandSet sweep with the exact
// reference curve (reduced instance count).
func BenchmarkFig10SmallRandSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		graphs, err := daggen.Set(daggen.SmallParams(), 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		_, err = experiments.NormalizedSweep(tctx, experiments.NormalizedSweepConfig{
			Graphs:      graphs,
			Platform:    experiments.RandomPlatform(),
			Alphas:      []float64{0.4, 0.7, 1.0},
			Seed:        1,
			WithOptimal: true,
			OptNodes:    20000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11SingleSmallDAG sweeps absolute memory on one 30-task DAG
// with all four heuristics and the lower bound.
func BenchmarkFig11SingleSmallDAG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(tctx, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12LargeRandSet runs the LargeRandSet sweep at reduced size.
func BenchmarkFig12LargeRandSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(tctx, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13SingleLargeDAG sweeps absolute memory on one large DAG.
func BenchmarkFig13SingleLargeDAG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(tctx, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14LU sweeps memory for the tiled LU factorisation on the
// mirage platform.
func BenchmarkFig14LU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(tctx, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Cholesky sweeps memory for the tiled Cholesky factorisation.
func BenchmarkFig15Cholesky(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(tctx, experiments.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Scheduler throughput ---

func benchScheduler(b *testing.B, fn core.Func, size int, alpha float64) {
	params := daggen.LargeParams()
	params.Size = size
	g, err := daggen.Generate(params, 7)
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.RandomPlatform()
	_, peak, err := experiments.HEFTReference(tctx, g, p, 7)
	if err != nil {
		b.Fatal(err)
	}
	bound := int64(alpha * float64(peak))
	p = p.WithBounds(bound, bound)
	// One cache set for the loop, as a session would hold: the benchmark
	// tracks the steady-state (warm-memo) scheduling cost.
	caches := core.NewCaches()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(tctx, g, p, core.Options{Seed: 7, Caches: caches}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemHEFT300 measures MemHEFT on a 300-task DAG at half the HEFT
// memory.
func BenchmarkMemHEFT300(b *testing.B) { benchScheduler(b, core.MemHEFT, 300, 0.5) }

// BenchmarkMemMinMin300 measures MemMinMin on the same instance.
func BenchmarkMemMinMin300(b *testing.B) { benchScheduler(b, core.MemMinMin, 300, 0.5) }

// BenchmarkHEFT1000 measures plain HEFT on a 1000-task DAG.
func BenchmarkHEFT1000(b *testing.B) { benchScheduler(b, core.HEFT, 1000, 1) }

// BenchmarkMemHEFT3000 and BenchmarkMemHEFT10000 track the incremental
// engine at production scales the naive implementation could not reach in
// reasonable time (the per-iteration full rescan is quadratic in n with an
// O(l) staircase walk inside).
// (The memory pressure is eased with size: at these scales the random DAGs
// stop fitting half the HEFT peak — see the feasibility sweep in ISSUE 1.)
func BenchmarkMemHEFT3000(b *testing.B)  { benchScheduler(b, core.MemHEFT, 3000, 0.7) }
func BenchmarkMemHEFT10000(b *testing.B) { benchScheduler(b, core.MemHEFT, 10000, 0.9) }

// BenchmarkMemMinMin3000 is the dynamic heuristic at the same scale; its
// candidate heap with lazy invalidation is what keeps the per-commit cost
// near the ready-set width instead of a full re-evaluation.
func BenchmarkMemMinMin3000(b *testing.B) { benchScheduler(b, core.MemMinMin, 3000, 0.7) }

// BenchmarkMemHEFTReference300 and BenchmarkMemMinMinReference300 run the
// retained naive oracles on the 300-task instance, pinning the speedup of
// the incremental paths (the golden-equivalence tests prove the schedules
// are identical).
func BenchmarkMemHEFTReference300(b *testing.B) {
	benchScheduler(b, core.MemHEFTReference, 300, 0.5)
}
func BenchmarkMemMinMinReference300(b *testing.B) {
	benchScheduler(b, core.MemMinMinReference, 300, 0.5)
}

// --- k-pool engine throughput ---

// benchMultiScheduler measures one generalised heuristic on the shared
// deterministic fixture (host pool + k-1 accelerators, capacities at alpha
// times the total file volume), with one cache set held across iterations
// as a k-pool session would.
func benchMultiScheduler(b *testing.B, fn multi.Func, size, k int, alpha float64, cached bool) {
	params := daggen.LargeParams()
	params.Size = size
	g, err := daggen.Generate(params, 7)
	if err != nil {
		b.Fatal(err)
	}
	in, p := experiments.KPoolBench(g, k, alpha)
	var caches *multi.Caches
	if cached {
		caches = multi.NewCaches()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(tctx, in, p, multi.Options{Seed: 7, Caches: caches}); err != nil {
			b.Fatal(err)
		}
	}
}

// The incremental k-pool engine across the tracked scales: the paper's
// "several types of accelerators" extension at 3, 4 and 8 pools.
func BenchmarkMultiMemHEFT300k3(b *testing.B) {
	benchMultiScheduler(b, multi.MemHEFT, 300, 3, 0.3, true)
}
func BenchmarkMultiMemHEFT1000k4(b *testing.B) {
	benchMultiScheduler(b, multi.MemHEFT, 1000, 4, 0.3, true)
}
func BenchmarkMultiMemHEFT3000k8(b *testing.B) {
	benchMultiScheduler(b, multi.MemHEFT, 3000, 8, 0.3, true)
}
func BenchmarkMultiMemMinMin300k3(b *testing.B) {
	benchMultiScheduler(b, multi.MemMinMin, 300, 3, 0.3, true)
}
func BenchmarkMultiMemMinMin1000k4(b *testing.B) {
	benchMultiScheduler(b, multi.MemMinMin, 1000, 4, 0.3, true)
}

// The retained eager oracles on the same instances, pinning the speedup of
// the incremental k-pool engine (equivalence_test.go proves the schedules
// are bit-identical).
func BenchmarkMultiMemHEFTRef1000k4(b *testing.B) {
	benchMultiScheduler(b, multi.MemHEFTReference, 1000, 4, 0.3, false)
}
func BenchmarkMultiMemMinMinRef300k3(b *testing.B) {
	benchMultiScheduler(b, multi.MemMinMinReference, 300, 3, 0.3, false)
}

// --- Sweep engine throughput ---

// benchSweep measures one full 64-point sweep per iteration on the shared
// deterministic fixture (experiments.SweepBench, also the cmd/benchjson
// workload): a warm n=1000 session over 16 feasible-band memory fractions
// × both memory-aware heuristics × 2 seeds. The session is warmed with one
// untimed run, as a sweep service holding its sessions in the LRU cache
// would see; with workers > 1 each iteration still pays the per-fork
// ranking once per worker, which is part of the fan-out cost.
// BenchmarkSweep64x1000Workers1 against BenchmarkSweep64x1000WorkersMax is
// the engine's scaling headline (equal on a single-core host; the results
// are bit-identical at every worker count, see repro/sweep's tests). Both
// pin Replay to off so they keep measuring the from-scratch engine;
// BenchmarkSweep64x1000Replay runs the identical workload under the default
// warm-start policy, so Replay/Workers1 is the capacity-delta replay
// speedup on bit-identical results.
func benchSweep(b *testing.B, workers int, replay string) {
	sess, spec, err := experiments.SweepBench(1000, workers)
	if err != nil {
		b.Fatal(err)
	}
	spec.Replay = replay
	if _, err := sweep.Run(tctx, sess, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(tctx, sess, spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Feasible == 0 {
			b.Fatal("sweep fixture produced no feasible point")
		}
	}
}

func BenchmarkSweep64x1000Workers1(b *testing.B)   { benchSweep(b, 1, sweep.ReplayOff) }
func BenchmarkSweep64x1000WorkersMax(b *testing.B) { benchSweep(b, 0, sweep.ReplayOff) }
func BenchmarkSweep64x1000Replay(b *testing.B)     { benchSweep(b, 1, sweep.ReplayAuto) }

// --- Session fork cost ---

// benchFork measures Session.Fork plus one schedule on the fork, against a
// parent whose memos are fully warm. The warm (copy-on-write) fork inherits
// the parent's rank and priority memos behind frozen views, so its first
// schedule costs one engine pass; the cold fork pays ranking again — the
// gap is the price ForkCold buys isolation with.
func benchFork(b *testing.B, opts ...memsched.ForkOption) {
	params := daggen.LargeParams()
	params.Size = 1000
	g, err := daggen.Generate(params, 7)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		b.Fatal(err)
	}
	p := memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited)
	if _, err := sess.Schedule(tctx, p, memsched.WithSeed(7)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Fork(opts...).Schedule(tctx, p, memsched.WithSeed(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForkWarm1000(b *testing.B) { benchFork(b) }
func BenchmarkForkCold1000(b *testing.B) { benchFork(b, memsched.ForkCold()) }

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationBroadcastPipeline compares scheduling the LU graph with
// and without the paper's broadcast pipelines (fictitious task chains vs
// direct fan-out). The pipelined graph is bigger but its per-task memory
// needs are bounded, which is what lets MemHEFT run in small memories.
func BenchmarkAblationBroadcastPipeline(b *testing.B) {
	for _, pipeline := range []bool{true, false} {
		name := "direct"
		if pipeline {
			name = "pipeline"
		}
		b.Run(name, func(b *testing.B) {
			cfg := linalg.DefaultConfig(8)
			cfg.Pipeline = pipeline
			g, err := linalg.LU(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// 32 tiles per memory: the pipelined graph schedules,
			// the direct fan-out does not (its getrf/trsm outputs
			// materialise all copies at once).
			p := experiments.MiragePlatform().WithBounds(32, 32)
			b.ResetTimer()
			fails := 0
			for i := 0; i < b.N; i++ {
				if _, err := core.MemHEFT(tctx, g, p, core.Options{Seed: 1}); err != nil {
					fails++
				}
			}
			b.ReportMetric(float64(fails)/float64(b.N), "failrate")
		})
	}
}

// BenchmarkAblationTieBreak compares deterministic rank order (seed-fixed)
// against fresh random tie-breaking per run, measuring the scheduling cost
// of the priority phase.
func BenchmarkAblationTieBreak(b *testing.B) {
	g, err := daggen.Generate(daggen.SmallParams(), 3)
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.RandomPlatform().WithBounds(platform.Unlimited, platform.Unlimited)
	b.Run("fixed-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MemHEFT(tctx, g, p, core.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-run-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MemHEFT(tctx, g, p, core.Options{Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStaircase measures the core memory-function primitives
// on a staircase with many pieces (the l in the paper's O(l) analysis).
func BenchmarkAblationStaircase(b *testing.B) {
	build := func() *memfn.Staircase {
		s := memfn.New(1 << 20)
		for i := 0; i < 512; i++ {
			s.Reserve(float64(2*i), float64(2*i+1), int64(i%37)+1)
		}
		return s
	}
	b.Run("EarliestFit", func(b *testing.B) {
		s := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.EarliestFit(0, 1<<19)
		}
	})
	b.Run("Reserve", func(b *testing.B) {
		s := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Reserve(float64(i%1024), float64(i%1024+3), 5)
			s.Reserve(float64(i%1024), float64(i%1024+3), -5)
		}
	})
}

// BenchmarkExactSearchPaperExample measures the branch-and-bound reference
// on the paper's toy instance at the memory bound where the optimum shifts.
func BenchmarkExactSearchPaperExample(b *testing.B) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 4, 4)
	for i := 0; i < b.N; i++ {
		res, err := exact.Solve(tctx, g, p, exact.Options{})
		if err != nil || res.Makespan != 7 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkILPBuild measures assembling the full §4 ILP for the paper
// example (the solve itself is exercised by the ilp tests).
func BenchmarkILPBuild(b *testing.B) {
	g := dag.PaperExample()
	p := platform.New(1, 1, 5, 5)
	for i := 0; i < b.N; i++ {
		if _, err := ilp.Build(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationInsertion compares the paper's append-only processor
// policy against classical HEFT's insertion-based policy, reporting the
// makespan ratio (insertion/append) alongside the timing.
func BenchmarkAblationInsertion(b *testing.B) {
	params := daggen.SmallParams()
	params.Size = 80
	g, err := daggen.Generate(params, 13)
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.RandomPlatform().WithBounds(platform.Unlimited, platform.Unlimited)
	ref, err := core.MemHEFT(tctx, g, p, core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MemHEFT(tctx, g, p, core.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insertion", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			s, err := core.MemHEFTInsertion(tctx, g, p, core.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			last = s.Makespan()
		}
		b.ReportMetric(last/ref.Makespan(), "makespan-ratio")
	})
}

// BenchmarkAblationOnlineVsStatic compares the static MemMinMin schedule
// against the online (StarPU-style) dispatcher on the same LU instance,
// reporting the online/static makespan ratio.
func BenchmarkAblationOnlineVsStatic(b *testing.B) {
	g, err := linalg.LU(linalg.DefaultConfig(6))
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.MiragePlatform().WithBounds(120, 120)
	static, err := core.MemMinMin(tctx, g, p, core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("static-memminmin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MemMinMin(tctx, g, p, core.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("online-eft", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(tctx, g, p, sim.Options{Policy: sim.EFTPolicy})
			if err != nil {
				b.Fatal(err)
			}
			last = res.Makespan()
		}
		b.ReportMetric(last/static.Makespan(), "makespan-ratio")
	})
}

// BenchmarkAblationMultiPool compares the dual-memory scheduler against the
// k-pool generalisation on the same instance: the 2-pool run must match
// core's behaviour (verified by tests) at comparable cost, and the 4-pool
// run shows the cost of evaluating more memories per decision.
func BenchmarkAblationMultiPool(b *testing.B) {
	params := daggen.SmallParams()
	params.Size = 60
	g, err := daggen.Generate(params, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("core-2mem", func(b *testing.B) {
		p := platform.New(2, 2, 500, 500)
		for i := 0; i < b.N; i++ {
			if _, err := core.MemHEFT(tctx, g, p, core.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multi-2pool", func(b *testing.B) {
		in := multi.FromDual(g)
		p := multi.NewPlatform(multi.Pool{Procs: 2, Capacity: 500}, multi.Pool{Procs: 2, Capacity: 500})
		for i := 0; i < b.N; i++ {
			if _, err := multi.MemHEFT(tctx, in, p, multi.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multi-4pool", func(b *testing.B) {
		times := make([][]float64, g.NumTasks())
		for i := 0; i < g.NumTasks(); i++ {
			t := g.Task(dag.TaskID(i))
			times[i] = []float64{t.WBlue, t.WRed, t.WBlue + 1, t.WRed + 1}
		}
		in := multi.NewInstance(g, times)
		p := multi.NewPlatform(
			multi.Pool{Procs: 1, Capacity: 250}, multi.Pool{Procs: 1, Capacity: 250},
			multi.Pool{Procs: 1, Capacity: 250}, multi.Pool{Procs: 1, Capacity: 250})
		for i := 0; i < b.N; i++ {
			if _, err := multi.MemHEFT(tctx, in, p, multi.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGraphGeneration measures the workload generators.
func BenchmarkGraphGeneration(b *testing.B) {
	b.Run("daggen-1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := daggen.Generate(daggen.LargeParams(), int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lu-13", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linalg.LU(linalg.DefaultConfig(13)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cholesky-13", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linalg.Cholesky(linalg.DefaultConfig(13)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// tctx is the shared background context of the package benchmarks.
var tctx = context.Background()
