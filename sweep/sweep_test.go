package sweep_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	memsched "repro"
	"repro/sweep"
)

// testGraph builds a deterministic random DAG of the given size.
func testGraph(t testing.TB, size int, seed int64) *memsched.Graph {
	t.Helper()
	params := memsched.SmallRandParams()
	params.Size = size
	g, err := memsched.GenerateRandom(params, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testSession(t testing.TB, size int, seed int64) *memsched.Session {
	t.Helper()
	sess, err := memsched.NewSession(testGraph(t, size, seed))
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func dualBase() memsched.Platform {
	return memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited)
}

// alphas16 is the 16-step fraction grid of the determinism tests.
func alphas16() []float64 {
	out := make([]float64, 16)
	for i := range out {
		out[i] = float64(i+1) / 16
	}
	return out
}

func TestGridCompileOrderAndAxes(t *testing.T) {
	sess := testSession(t, 40, 1)
	spec := sweep.Spec{
		Base:       dualBase(),
		Alphas:     []float64{0.5, 1.0},
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{3, 4},
	}
	if got := spec.NumPoints(); got != 8 {
		t.Fatalf("NumPoints = %d, want 8", got)
	}
	res, err := sweep.Run(context.Background(), sess, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Axis-major, then scheduler, then seed; indices contiguous.
	for i, pr := range res.Points {
		if pr.Index != i {
			t.Fatalf("point %d reports index %d", i, pr.Index)
		}
		wantAxis := i / 4
		wantSched := []string{"memheft", "memheft", "memminmin", "memminmin"}[i%4]
		wantSeed := []int64{3, 4}[i%2]
		if pr.Point.Axis != wantAxis || pr.Point.Scheduler != wantSched || pr.Point.Seed != wantSeed {
			t.Fatalf("point %d = %+v, want axis %d sched %s seed %d", i, pr.Point, wantAxis, wantSched, wantSeed)
		}
		if pr.Point.Alpha != spec.Alphas[wantAxis] || pr.Point.X != spec.Alphas[wantAxis] {
			t.Fatalf("point %d alpha/X = %g/%g", i, pr.Point.Alpha, pr.Point.X)
		}
	}
	sum := res.Summary
	if sum == nil || sum.Points != 8 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Peak <= 0 || sum.RefMakespan <= 0 {
		t.Fatalf("HEFT reference not measured: peak %d ref %g", sum.Peak, sum.RefMakespan)
	}
	if len(sum.Curves) != 2 || len(sum.Curves[0].Makespan) != 2 {
		t.Fatalf("curves = %+v", sum.Curves)
	}
}

// TestDeterministicAcrossWorkers is the acceptance test of the engine: a
// concurrent sweep must produce results bit-identical to workers=1 — same
// makespans, peaks, feasibility and summary — regardless of completion
// order. Run under -race this also proves the worker pool and the forked
// sessions are race-clean.
func TestDeterministicAcrossWorkers(t *testing.T) {
	spec := sweep.Spec{
		Base:       dualBase(),
		Alphas:     alphas16(),
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{1, 2},
	}
	baseline := runWith(t, spec, 1)
	for _, workers := range []int{2, 8} {
		got := runWith(t, spec, workers)
		comparePoints(t, baseline, got, workers)
	}
}

func runWith(t *testing.T, spec sweep.Spec, workers int) *sweep.Result {
	t.Helper()
	spec.Workers = workers
	sess := testSession(t, 150, 7)
	res, err := sweep.Run(context.Background(), sess, spec)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if res.Summary == nil || res.Summary.Points != len(res.Points) {
		t.Fatalf("workers=%d: summary %+v", workers, res.Summary)
	}
	return res
}

func comparePoints(t *testing.T, want, got *sweep.Result, workers int) {
	t.Helper()
	if len(want.Points) != len(got.Points) {
		t.Fatalf("workers=%d: %d points vs %d", workers, len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		w, g := want.Points[i], got.Points[i]
		if w.Index != g.Index || w.Feasible != g.Feasible || w.Reason != g.Reason || w.Makespan != g.Makespan {
			t.Fatalf("workers=%d point %d: got {feasible %v reason %q ms %v}, want {feasible %v reason %q ms %v}",
				workers, i, g.Feasible, g.Reason, g.Makespan, w.Feasible, w.Reason, w.Makespan)
		}
		if len(w.Peaks) != len(g.Peaks) {
			t.Fatalf("workers=%d point %d: peaks %v vs %v", workers, i, g.Peaks, w.Peaks)
		}
		for k := range w.Peaks {
			if w.Peaks[k] != g.Peaks[k] {
				t.Fatalf("workers=%d point %d: peaks %v vs %v", workers, i, g.Peaks, w.Peaks)
			}
		}
	}
	ws, gs := want.Summary, got.Summary
	if ws.Feasible != gs.Feasible || ws.BestIndex != gs.BestIndex || ws.BestMakespan != gs.BestMakespan ||
		ws.RefMakespan != gs.RefMakespan || ws.Peak != gs.Peak {
		t.Fatalf("workers=%d summary: %+v vs %+v", workers, gs, ws)
	}
	for si := range ws.Curves {
		for ai := range ws.Curves[si].Makespan {
			w, g := ws.Curves[si].Makespan[ai], gs.Curves[si].Makespan[ai]
			if w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
				t.Fatalf("workers=%d curve %s axis %d: %v vs %v", workers, ws.Curves[si].Scheduler, ai, g, w)
			}
		}
		if ws.Frontier[si] != gs.Frontier[si] {
			t.Fatalf("workers=%d frontier: %+v vs %+v", workers, gs.Frontier[si], ws.Frontier[si])
		}
	}
}

// TestAlphaSweepMatchesDirectSession: every engine point must be exactly
// what a direct Session call on the same derived platform produces.
func TestAlphaSweepMatchesDirectSession(t *testing.T) {
	sess := testSession(t, 60, 3)
	base := dualBase()
	res, err := sweep.Run(context.Background(), sess, sweep.Spec{
		Base:       base,
		Alphas:     []float64{0.4, 0.8},
		Schedulers: []string{"memheft"},
		Seeds:      []int64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Points {
		bound := int64(pr.Point.Alpha * float64(res.Summary.Peak))
		direct, err := sess.Schedule(context.Background(), base.WithUniformBounds(bound),
			memsched.WithScheduler("memheft"), memsched.WithSeed(5))
		switch {
		case errors.Is(err, memsched.ErrMemoryBound):
			if pr.Feasible {
				t.Fatalf("alpha %g: engine feasible, direct memory-bound", pr.Point.Alpha)
			}
		case err != nil:
			t.Fatal(err)
		default:
			if !pr.Feasible || pr.Makespan != direct.Makespan() {
				t.Fatalf("alpha %g: engine %v/%v, direct %v", pr.Point.Alpha, pr.Feasible, pr.Makespan, direct.Makespan())
			}
		}
	}
}

// TestFrontierAndBest: starving the memory at low alphas yields an
// infeasible region; the frontier marks the first fully feasible axis point
// and the best index points at a feasible minimum.
func TestFrontierAndBest(t *testing.T) {
	sess := testSession(t, 60, 9)
	res, err := sweep.Run(context.Background(), sess, sweep.Spec{
		Base:       dualBase(),
		Alphas:     []float64{0.01, 0.05, 0.5, 1.0},
		Schedulers: []string{"memheft"},
		Seeds:      []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Feasible == 0 || res.Summary.Feasible == len(res.Points) {
		t.Skipf("fixture not discriminating: %d/%d feasible", res.Summary.Feasible, len(res.Points))
	}
	fr := res.Summary.FrontierFor("memheft")
	if fr == nil || fr.Axis <= 0 {
		t.Fatalf("frontier = %+v, want a positive axis", fr)
	}
	best := res.Points[res.Summary.BestIndex]
	if !best.Feasible {
		t.Fatal("best index points at an infeasible point")
	}
	for _, pr := range res.Points {
		if pr.Feasible && pr.Makespan < best.Makespan {
			t.Fatalf("point %d beats the reported best", pr.Index)
		}
		if !pr.Feasible && pr.Reason != "memory_bound" {
			t.Fatalf("infeasible point %d has reason %q", pr.Index, pr.Reason)
		}
	}
}

// TestCancellationPartialOrderedResults: cancelling mid-sweep returns the
// contiguous completed prefix and an explicit context error. workers=1
// makes the cut deterministic: the cancel lands after the third delivery,
// so exactly points 0..3 are delivered.
func TestCancellationPartialOrderedResults(t *testing.T) {
	sess := testSession(t, 60, 11)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen []int
	sum, err := sweep.Stream(ctx, sess, sweep.Spec{
		Base:       dualBase(),
		Alphas:     alphas16(),
		Schedulers: []string{"memheft"},
		Seeds:      []int64{1},
		Workers:    1,
	}, func(pr sweep.PointResult) error {
		seen = append(seen, pr.Index)
		if len(seen) == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum != nil {
		t.Fatal("cancelled sweep still returned a summary")
	}
	if len(seen) != 4 {
		t.Fatalf("delivered %v, want exactly the first 4 points", seen)
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("delivery out of order: %v", seen)
		}
	}
}

// TestRunReturnsPartialPrefixOnCancel: the collected Run variant keeps the
// delivered prefix alongside the error.
func TestRunReturnsPartialPrefixOnCancel(t *testing.T) {
	sess := testSession(t, 60, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts
	res, err := sweep.Run(ctx, sess, sweep.Spec{
		Base:   dualBase(),
		Peak:   1 << 40, // skip the HEFT reference: it would fail on the dead ctx first
		Alphas: []float64{0.5, 1.0},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Points) != 0 || res.Summary != nil {
		t.Fatalf("dead-context sweep delivered %d points, summary %v", len(res.Points), res.Summary)
	}
}

func TestSpecValidation(t *testing.T) {
	sess := testSession(t, 10, 1)
	ctx := context.Background()
	cases := map[string]sweep.Spec{
		"no points":      {},
		"two sources":    {Alphas: []float64{1}, Base: dualBase(), Platforms: []memsched.Platform{dualBase()}},
		"alpha no base":  {Alphas: []float64{1}},
		"bad alpha":      {Alphas: []float64{-1}, Base: dualBase()},
		"bad xs":         {Platforms: []memsched.Platform{dualBase()}, Xs: []float64{1, 2}},
		"unknown sched":  {Platforms: []memsched.Platform{dualBase()}, Schedulers: []string{"nope"}},
		"bad workers":    {Platforms: []memsched.Platform{dualBase()}, Workers: -1},
		"invalid point":  {Points: []sweep.Point{{Platform: memsched.NewPlatform(), Scheduler: "memheft"}}},
		"unknown pt sch": {Points: []sweep.Point{{Platform: dualBase(), Scheduler: "nope"}}},
	}
	for name, spec := range cases {
		if _, err := sweep.Run(ctx, sess, spec); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
	if _, err := sweep.Run(ctx, nil, sweep.Spec{Platforms: []memsched.Platform{dualBase()}}); err == nil {
		t.Fatal("nil session accepted")
	}
}

// TestFatalPointErrorSurfaces: a point failing for a reason other than
// infeasibility (here: the exact search on a k-pool session) stops the
// sweep, and the returned error names that cause rather than the
// collateral cancellation of the other in-flight points.
func TestFatalPointErrorSurfaces(t *testing.T) {
	g := testGraph(t, 30, 5)
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(memsched.TaskID(i))
		times[i] = []float64{task.WBlue, task.WRed, task.WBlue}
	}
	sess, err := memsched.NewSession(g, memsched.WithPoolTimes(times))
	if err != nil {
		t.Fatal(err)
	}
	p := memsched.NewPlatform(
		memsched.Pool{Procs: 1, Capacity: memsched.Unlimited},
		memsched.Pool{Procs: 1, Capacity: memsched.Unlimited},
		memsched.Pool{Procs: 1, Capacity: memsched.Unlimited},
	)
	res, err := sweep.Run(context.Background(), sess, sweep.Spec{
		Platforms:  []memsched.Platform{p},
		Schedulers: []string{"memheft", sweep.SchedulerOptimal},
		Seeds:      []int64{1, 2},
		Workers:    4,
	})
	if err == nil {
		t.Fatal("optimal on a k-pool session should be a fatal sweep error")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("collateral cancellation masked the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "dual session") {
		t.Fatalf("error does not name the cause: %v", err)
	}
	if res.Summary != nil {
		t.Fatal("failed sweep still produced a summary")
	}
	for i, pr := range res.Points {
		if pr.Index != i {
			t.Fatalf("partial prefix out of order: %v", res.Points)
		}
	}
}

// TestOptimalAndSimSchedulers: the engine extensions run through
// Session.Optimal and Session.Simulate; optimal may not beat MemHEFT's
// makespan on a toy instance, but must be feasible and no worse than it.
func TestOptimalAndSimSchedulers(t *testing.T) {
	g := memsched.PaperExample()
	sess, err := memsched.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	p := memsched.NewDualPlatform(1, 1, 4, 4)
	res, err := sweep.Run(context.Background(), sess, sweep.Spec{
		Platforms:  []memsched.Platform{p},
		Schedulers: []string{"memheft", sweep.SchedulerOptimal, sweep.SchedulerSimRank, sweep.SchedulerSimEFT},
		Seeds:      []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]sweep.PointResult{}
	for _, pr := range res.Points {
		byName[pr.Point.Scheduler] = pr
	}
	opt := byName[sweep.SchedulerOptimal]
	mh := byName["memheft"]
	if !opt.Feasible || !mh.Feasible {
		t.Fatalf("optimal/memheft infeasible: %+v / %+v", opt, mh)
	}
	if opt.Makespan > mh.Makespan+1e-9 {
		t.Fatalf("optimal %g worse than memheft %g", opt.Makespan, mh.Makespan)
	}
	if opt.Makespan != 7 {
		t.Fatalf("paper example optimum = %g, want 7", opt.Makespan)
	}
	for _, sim := range []string{sweep.SchedulerSimRank, sweep.SchedulerSimEFT} {
		pr, ok := byName[sim]
		if !ok || (!pr.Feasible && pr.Reason != "sim_stuck") {
			t.Fatalf("%s: %+v", sim, pr)
		}
	}
}

// TestKPoolSweep: a pool-times session sweeps k-pool platforms through the
// generalised engine.
func TestKPoolSweep(t *testing.T) {
	g := testGraph(t, 40, 13)
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(memsched.TaskID(i))
		times[i] = []float64{task.WBlue, task.WRed, (task.WBlue + task.WRed) / 2}
	}
	sess, err := memsched.NewSession(g, memsched.WithPoolTimes(times))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(capacity int64) memsched.Platform {
		return memsched.NewPlatform(
			memsched.Pool{Procs: 2, Capacity: capacity},
			memsched.Pool{Procs: 1, Capacity: capacity},
			memsched.Pool{Procs: 1, Capacity: capacity},
		)
	}
	res, err := sweep.Run(context.Background(), sess, sweep.Spec{
		Platforms:  []memsched.Platform{mk(memsched.Unlimited), mk(1)},
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{1},
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Points[:2] {
		if !pr.Feasible || len(pr.Peaks) != 3 {
			t.Fatalf("unbounded k-pool point infeasible or wrong peaks: %+v", pr)
		}
	}
	for _, pr := range res.Points[2:] {
		if pr.Feasible {
			t.Fatalf("capacity-1 k-pool point feasible: %+v", pr)
		}
	}
}

// TestExplicitPoints: an explicit point list runs verbatim, keeps results
// when asked, and produces no curves.
func TestExplicitPoints(t *testing.T) {
	sess := testSession(t, 30, 2)
	p := dualBase()
	res, err := sweep.Run(context.Background(), sess, sweep.Spec{
		Points: []sweep.Point{
			{Platform: p, Scheduler: "MemHEFT", Seed: 1},
			{Platform: p}, // scheduler defaults to memheft
		},
		KeepResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.Points[0].Makespan != res.Points[1].Makespan {
		t.Fatal("defaulted point differs from explicit memheft")
	}
	if res.Points[0].Result == nil || res.Points[0].Result.Schedule == nil {
		t.Fatal("KeepResults dropped the schedule")
	}
	if res.Summary.Curves != nil || res.Summary.Frontier != nil {
		t.Fatal("explicit points must not fabricate curves")
	}
	if res.Summary.BestIndex != 0 {
		t.Fatalf("best index = %d", res.Summary.BestIndex)
	}
}

// TestForkEquivalence: a forked session produces bit-identical schedules
// and shares the graph hash.
func TestForkEquivalence(t *testing.T) {
	sess := testSession(t, 80, 17)
	fork := sess.Fork()
	if fork.GraphHash() != sess.GraphHash() {
		t.Fatal("fork changed the graph hash")
	}
	p := memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited)
	a, err := sess.Schedule(context.Background(), p, memsched.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := fork.Schedule(context.Background(), p, memsched.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan() != b.Makespan() {
		t.Fatalf("fork makespan %g != %g", b.Makespan(), a.Makespan())
	}
	for i := range a.Schedule.Tasks {
		if a.Schedule.Tasks[i] != b.Schedule.Tasks[i] {
			t.Fatalf("fork placement differs at task %d", i)
		}
	}
}
