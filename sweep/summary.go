package sweep

import "math"

// summarize folds a completed sweep's outcomes into the Summary. Every
// outcome is a delivered point result (fatal sweeps never get here), so the
// aggregation is a deterministic function of the point results alone.
func summarize(c *compiled, outs []outcome, workers int) *Summary {
	sum := &Summary{
		Points:       len(outs),
		BestIndex:    -1,
		BestMakespan: math.Inf(1),
		RefMakespan:  c.refMS,
		Peak:         c.peak,
		Workers:      workers,
	}
	for i := range outs {
		pr := &outs[i].pr
		if !pr.Feasible {
			continue
		}
		sum.Feasible++
		if pr.Makespan < sum.BestMakespan {
			sum.BestMakespan = pr.Makespan
			sum.BestIndex = pr.Index
		}
	}
	if sum.BestIndex < 0 {
		sum.BestMakespan = 0
	}
	if !c.grid {
		return sum
	}

	// Curves and frontier: fold the grid back along its axes. The point
	// list is axis-major (axis, scheduler, seed), so the point index of
	// (ai, si, sei) is ((ai*len(schedulers))+si)*len(seeds)+sei.
	nSched, nSeed := len(c.schedulers), len(c.seeds)
	sum.Curves = make([]Curve, nSched)
	sum.Frontier = make([]Frontier, nSched)
	for si, sched := range c.schedulers {
		curve := Curve{
			Scheduler: sched,
			X:         c.axes,
			Makespan:  make([]float64, len(c.axes)),
		}
		frontier := Frontier{Scheduler: sched, Axis: -1}
		for ai := range c.axes {
			sumMS, feasible := 0.0, 0
			for sei := 0; sei < nSeed; sei++ {
				pr := &outs[((ai*nSched)+si)*nSeed+sei].pr
				if pr.Feasible {
					feasible++
					sumMS += pr.Makespan
				}
			}
			if feasible == 0 {
				curve.Makespan[ai] = math.NaN()
			} else {
				curve.Makespan[ai] = sumMS / float64(feasible)
			}
			if feasible == nSeed && frontier.Axis == -1 {
				frontier.Axis = ai
				frontier.X = c.axes[ai]
			}
		}
		sum.Curves[si] = curve
		sum.Frontier[si] = frontier
	}
	return sum
}

// CurveFor returns the summary curve of the named scheduler (normalized
// name), or nil when the sweep carried no curve for it.
func (s *Summary) CurveFor(name string) *Curve {
	name = normalize(name)
	for i := range s.Curves {
		if s.Curves[i].Scheduler == name {
			return &s.Curves[i]
		}
	}
	return nil
}

// FrontierFor returns the frontier entry of the named scheduler, or nil.
func (s *Summary) FrontierFor(name string) *Frontier {
	name = normalize(name)
	for i := range s.Frontier {
		if s.Frontier[i].Scheduler == name {
			return &s.Frontier[i]
		}
	}
	return nil
}
