package sweep_test

import (
	"context"
	"strings"
	"testing"

	memsched "repro"
	"repro/sweep"
)

// goldenCompare asserts that two sweeps produced bit-identical point
// results: feasibility, reason, makespan and per-pool peaks must match at
// every index. Replay counters and wall times are deliberately excluded —
// they describe how a result was computed, not what it is.
func goldenCompare(t *testing.T, got, want []sweep.PointResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("point count %d vs %d", len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		if a.Feasible != b.Feasible || a.Reason != b.Reason || a.Makespan != b.Makespan {
			t.Fatalf("point %d diverged: feas %v/%v reason %q/%q makespan %g/%g (%s alpha %g seed %d)",
				i, a.Feasible, b.Feasible, a.Reason, b.Reason, a.Makespan, b.Makespan,
				a.Point.Scheduler, a.Point.Alpha, a.Point.Seed)
		}
		if len(a.Peaks) != len(b.Peaks) {
			t.Fatalf("point %d peak arity %d vs %d", i, len(a.Peaks), len(b.Peaks))
		}
		for k := range a.Peaks {
			if a.Peaks[k] != b.Peaks[k] {
				t.Fatalf("point %d pool %d peak %d vs %d", i, k, a.Peaks[k], b.Peaks[k])
			}
		}
	}
}

func totalReplayed(points []sweep.PointResult) (placements int, truncated int) {
	for _, pr := range points {
		placements += pr.ReplayedPlacements
		if pr.ReplayTruncated {
			truncated++
		}
	}
	return placements, truncated
}

// denseAlphas spans from comfortably feasible down into the infeasible
// band, so replayed chains cross feasibility frontiers.
func denseAlphas(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1.0 - 0.9*float64(i)/float64(n-1) // 1.0 .. 0.1
	}
	return out
}

// TestReplayGoldenEquivalenceDual is the acceptance test of capacity-delta
// replay on the dual engine: a replayed sweep must be bit-identical to the
// from-scratch engine at every point, for one worker and for many, over a
// dense alpha grid that crosses the feasibility frontier — while actually
// replaying a nonzero number of placements.
func TestReplayGoldenEquivalenceDual(t *testing.T) {
	sess := testSession(t, 80, 7)
	spec := sweep.Spec{
		Base:       dualBase(),
		Alphas:     denseAlphas(12),
		Schedulers: []string{"memheft", "memminmin", "heft"},
		Seeds:      []int64{7, 8},
		Replay:     sweep.ReplayOff,
		Workers:    1,
	}
	oracle, err := sweep.Run(context.Background(), sess.Fork(memsched.ForkCold()), spec)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := totalReplayed(oracle.Points); p != 0 {
		t.Fatalf("ReplayOff replayed %d placements", p)
	}
	for _, workers := range []int{1, 4} {
		spec.Replay = sweep.ReplayAuto
		spec.Workers = workers
		res, err := sweep.Run(context.Background(), sess.Fork(), spec)
		if err != nil {
			t.Fatal(err)
		}
		goldenCompare(t, res.Points, oracle.Points)
		if workers == 1 {
			placements, truncated := totalReplayed(res.Points)
			if placements == 0 {
				t.Fatal("replay-auto sweep replayed nothing")
			}
			if truncated == 0 {
				t.Fatal("dense frontier-crossing grid never truncated a replay")
			}
			t.Logf("dual: %d replayed placements, %d truncated points", placements, truncated)
		}
	}
}

// TestReplayGoldenEquivalenceKPool mirrors the dual golden test on the
// generalised 3-pool engine (explicit pool-times session).
func TestReplayGoldenEquivalenceKPool(t *testing.T) {
	g := testGraph(t, 60, 11)
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(memsched.TaskID(i))
		times[i] = []float64{task.WBlue, task.WRed, (task.WBlue + task.WRed) / 2}
	}
	sess, err := memsched.NewSession(g, memsched.WithPoolTimes(times))
	if err != nil {
		t.Fatal(err)
	}
	base := memsched.NewPlatform(
		memsched.Pool{Procs: 2, Capacity: memsched.Unlimited},
		memsched.Pool{Procs: 1, Capacity: memsched.Unlimited},
		memsched.Pool{Procs: 1, Capacity: memsched.Unlimited},
	)
	spec := sweep.Spec{
		Base:       base,
		Alphas:     denseAlphas(10),
		Schedulers: []string{"memheft", "memminmin"},
		Seeds:      []int64{11},
		Replay:     sweep.ReplayOff,
		Workers:    1,
	}
	oracle, err := sweep.Run(context.Background(), sess.Fork(memsched.ForkCold()), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		spec.Replay = sweep.ReplayAuto
		spec.Workers = workers
		res, err := sweep.Run(context.Background(), sess.Fork(), spec)
		if err != nil {
			t.Fatal(err)
		}
		goldenCompare(t, res.Points, oracle.Points)
		if workers == 1 {
			if placements, _ := totalReplayed(res.Points); placements == 0 {
				t.Fatal("k-pool replay-auto sweep replayed nothing")
			}
		}
	}
}

// TestReplaySpecValidation pins the Replay policy surface: auto, off and ""
// are accepted, anything else is rejected before compilation.
func TestReplaySpecValidation(t *testing.T) {
	sess := testSession(t, 20, 3)
	spec := sweep.Spec{
		Base:   dualBase(),
		Alphas: []float64{1.0},
		Replay: "sometimes",
	}
	if _, err := sweep.Run(context.Background(), sess, spec); err == nil ||
		!strings.Contains(err.Error(), "replay policy") {
		t.Fatalf("bad replay policy: err = %v", err)
	}
	for _, ok := range []string{"", sweep.ReplayAuto, sweep.ReplayOff, "AUTO"} {
		spec.Replay = ok
		if _, err := sweep.Run(context.Background(), sess, spec); err != nil {
			t.Fatalf("replay policy %q rejected: %v", ok, err)
		}
	}
}

// TestReplayCancellationMidChain cancels a replayed sweep from its sink:
// the delivered results must still be the ordered, bit-identical prefix.
func TestReplayCancellationMidChain(t *testing.T) {
	sess := testSession(t, 60, 7)
	spec := sweep.Spec{
		Base:       dualBase(),
		Alphas:     denseAlphas(10),
		Schedulers: []string{"memheft"},
		Seeds:      []int64{7},
		Workers:    1,
	}
	oracle, err := sweep.Run(context.Background(), sess.Fork(memsched.ForkCold()), sweep.Spec{
		Base: spec.Base, Alphas: spec.Alphas, Schedulers: spec.Schedulers,
		Seeds: spec.Seeds, Workers: 1, Replay: sweep.ReplayOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []sweep.PointResult
	_, err = sweep.Stream(ctx, sess.Fork(), spec, func(pr sweep.PointResult) error {
		got = append(got, pr)
		if len(got) == 4 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if len(got) < 4 {
		t.Fatalf("only %d results delivered before cancel", len(got))
	}
	goldenCompare(t, got, oracle.Points[:len(got)])
}

// TestReplayExplicitPointsNeverChain pins that explicit point lists skip
// chaining entirely: every point runs from scratch even under ReplayAuto.
func TestReplayExplicitPointsNeverChain(t *testing.T) {
	sess := testSession(t, 30, 5)
	p1 := memsched.NewDualPlatform(2, 2, 100000, 100000)
	p2 := memsched.NewDualPlatform(2, 2, 50000, 50000)
	spec := sweep.Spec{
		Points: []sweep.Point{
			{Platform: p1, Scheduler: "memheft", Seed: 5},
			{Platform: p2, Scheduler: "memheft", Seed: 5},
		},
		Replay: sweep.ReplayAuto,
	}
	res, err := sweep.Run(context.Background(), sess, spec)
	if err != nil {
		t.Fatal(err)
	}
	if placements, _ := totalReplayed(res.Points); placements != 0 {
		t.Fatalf("explicit points replayed %d placements", placements)
	}
}
