package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	memsched "repro"
	"repro/internal/trace"
)

// Run executes spec against sess and collects every point result in point
// order plus the summary. On cancellation or a fatal point error the
// returned Result still carries the completed ordered prefix (its Summary
// is nil) together with the error.
func Run(ctx context.Context, sess *memsched.Session, spec Spec) (*Result, error) {
	res := &Result{}
	sum, err := Stream(ctx, sess, spec, func(pr PointResult) error {
		res.Points = append(res.Points, pr)
		return nil
	})
	res.Summary = sum
	return res, err
}

// Stream executes spec against sess, invoking fn once per point result in
// strictly increasing index order — results are held back until every
// earlier point has been delivered, so fn observes the same sequence
// regardless of worker count or completion order. fn runs on the calling
// goroutine. A non-nil fn error stops the sweep and is returned.
//
// The summary is returned once every point has been delivered; a cancelled
// or failed sweep returns a nil summary and the (wrapped) cause after the
// completed prefix has been delivered.
func Stream(ctx context.Context, sess *memsched.Session, spec Spec, fn func(PointResult) error) (*Summary, error) {
	if sess == nil {
		return nil, errors.New("sweep: nil session")
	}
	if fn == nil {
		fn = func(PointResult) error { return nil }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	endCompile := trace.Start(ctx, "sweep/compile")
	c, err := compile(ctx, sess, &spec)
	endCompile()
	if err != nil {
		return nil, err
	}
	n := len(c.points)
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	chains := buildChains(c, &spec, workers)
	if workers > len(chains) {
		workers = len(chains)
	}

	// Precompute the session memos every worker fork inherits (statics,
	// ranks, the priority list of each swept seed), so the forks below are
	// born warm instead of each re-ranking the graph.
	if seeds := registrySeeds(c); len(seeds) > 0 {
		endWarm := trace.Start(ctx, "sweep/warmup")
		err := sess.WarmUp(ctx, seeds...)
		endWarm()
		if err != nil {
			return nil, err
		}
	}

	// Workers claim chains — capacity-ordered runs of point indices, a
	// single point each when replay is off — from an atomic cursor and
	// record outcomes into per-point slots; the collector (this goroutine)
	// emits the contiguous completed prefix. A fatal outcome — anything
	// that is not plain infeasibility — cancels runCtx so in-flight points
	// stop cooperatively and unclaimed points are skipped.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	outs := make([]outcome, n)
	done := make(chan int, n) // buffered: workers never block on the collector
	var cursor atomic.Int64
	var wg sync.WaitGroup

	// The first genuinely fatal point error is the sweep's cause: later
	// (or earlier-indexed) points interrupted by the resulting cancel
	// must not mask it when the collector walks the prefix.
	var fatalMu sync.Mutex
	var fatalErr error
	setFatal := func(err error) {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return // collateral interruption, not a cause
		}
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		ws := sess
		if w > 0 {
			// Per-worker engine caches: forks share nothing mutable,
			// so workers never contend on a memo mutex (see
			// Session.Fork). Worker 0 keeps the caller's session —
			// a workers=1 sweep on a warm session stays warm.
			ws = sess.Fork()
		}
		wg.Add(1)
		go func(ws *memsched.Session) {
			defer wg.Done()
			for {
				ci := int(cursor.Add(1)) - 1
				if ci >= len(chains) {
					return
				}
				ch := chains[ci]
				for _, i := range ch.idxs {
					if err := runCtx.Err(); err != nil {
						outs[i] = outcome{err: fmt.Errorf("sweep: point %d skipped: %w", i, err)}
					} else {
						outs[i] = runPoint(runCtx, ws, &spec, c.points[i], i, ch.warm)
						if err := outs[i].err; err != nil {
							setFatal(err)
							cancel()
						}
					}
					done <- i
				}
			}
		}(ws)
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	emitted := 0
	ready := make([]bool, n)
	var sweepErr error
	for i := range done {
		ready[i] = true
		for sweepErr == nil && emitted < n && ready[emitted] {
			// The caller's context is authoritative even when the
			// workers have already raced ahead of the collector:
			// cancellation cuts the delivery stream at the current
			// prefix.
			if err := ctx.Err(); err != nil {
				sweepErr = fmt.Errorf("sweep: interrupted after %d of %d points: %w", emitted, n, err)
				cancel()
				break
			}
			if err := outs[emitted].err; err != nil {
				fatalMu.Lock()
				if fatalErr != nil {
					err = fatalErr
				}
				fatalMu.Unlock()
				sweepErr = err
				cancel()
				break
			}
			if err := fn(outs[emitted].pr); err != nil {
				sweepErr = fmt.Errorf("sweep: result sink failed: %w", err)
				cancel()
				break
			}
			emitted++
		}
	}
	if sweepErr != nil {
		return nil, sweepErr
	}
	sum := summarize(c, outs, workers)
	sum.WallTime = time.Since(start)
	return sum, nil
}

// outcome separates a delivered point result from a fatal error; exactly
// one of the two is meaningful.
type outcome struct {
	pr  PointResult
	err error
}

// pointChain is a run of point indices one worker executes in order. Warm
// chains thread memsched.WithWarmStart through their points, so each point
// replays the verified committed-placement prefix of its predecessor.
type pointChain struct {
	idxs []int
	warm bool
}

// registrySeeds returns the distinct seeds of every registry-scheduler
// point, in first-appearance order: the seeds whose priority lists
// Session.WarmUp should precompute before the worker forks are taken.
// Optimal and simulator points rank nothing seed-dependent up front.
func registrySeeds(c *compiled) []int64 {
	seen := make(map[int64]bool)
	var seeds []int64
	for _, pt := range c.points {
		switch pt.Scheduler {
		case SchedulerOptimal, SchedulerSimRank, SchedulerSimEFT:
			continue
		}
		if !seen[pt.Seed] {
			seen[pt.Seed] = true
			seeds = append(seeds, pt.Seed)
		}
	}
	// The session's priority memo is bounded; warming beyond it would only
	// evict earlier seeds again.
	if len(seeds) > 64 {
		seeds = seeds[:64]
	}
	return seeds
}

// totalCapacity orders platforms for chain building: the sum of the pool
// capacities, +Inf as soon as any pool is unlimited. A coarse key is enough
// — chains are segmented by the exact ReplayEligible predicate afterwards,
// so a tie broken "wrong" only shortens a chain, never corrupts a result.
func totalCapacity(p memsched.Platform) float64 {
	total := 0.0
	for _, pool := range p.Pools {
		if pool.Capacity >= memsched.Unlimited {
			return math.Inf(1)
		}
		total += float64(pool.Capacity)
	}
	return total
}

// buildChains groups the compiled points into the chains workers claim.
// Under ReplayOff (or for explicit point lists) every point is its own
// chain, reproducing the old point-granular scheduling. Under ReplayAuto a
// grid's points are grouped per replayable (scheduler, seed) pair, ordered
// by descending total capacity (ties by axis order), and split wherever two
// adjacent platforms lose replay eligibility; the longest chains are then
// halved until there is at least one chain per worker, so replay never
// serialises a sweep below its worker count. Chains are returned sorted by
// their first point index, which keeps claiming deterministic.
func buildChains(c *compiled, spec *Spec, workers int) []pointChain {
	if normalize(spec.Replay) == ReplayOff || !c.grid {
		chains := make([]pointChain, len(c.points))
		for i := range c.points {
			chains[i] = pointChain{idxs: []int{i}}
		}
		return chains
	}
	type key struct {
		sched string
		seed  int64
	}
	groups := make(map[key][]int)
	var order []key
	var chains []pointChain
	for i, pt := range c.points {
		if !memsched.ReplayableScheduler(pt.Scheduler) {
			chains = append(chains, pointChain{idxs: []int{i}})
			continue
		}
		k := key{pt.Scheduler, pt.Seed}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		idxs := groups[k]
		sort.SliceStable(idxs, func(a, b int) bool {
			ca, cb := totalCapacity(c.points[idxs[a]].Platform), totalCapacity(c.points[idxs[b]].Platform)
			if ca != cb {
				return ca > cb
			}
			return c.points[idxs[a]].Axis < c.points[idxs[b]].Axis
		})
		segStart := 0
		for j := 1; j <= len(idxs); j++ {
			if j == len(idxs) || !memsched.ReplayEligible(c.points[idxs[j-1]].Platform, c.points[idxs[j]].Platform) {
				seg := idxs[segStart:j]
				chains = append(chains, pointChain{idxs: seg, warm: len(seg) > 1})
				segStart = j
			}
		}
	}
	for len(chains) < workers {
		longest, size := -1, 1
		for i := range chains {
			if len(chains[i].idxs) > size {
				longest, size = i, len(chains[i].idxs)
			}
		}
		if longest < 0 {
			break // nothing left to split
		}
		head, tail := chains[longest].idxs[:size/2], chains[longest].idxs[size/2:]
		chains[longest] = pointChain{idxs: head, warm: len(head) > 1}
		chains = append(chains, pointChain{idxs: tail, warm: len(tail) > 1})
	}
	sort.Slice(chains, func(a, b int) bool { return chains[a].idxs[0] < chains[b].idxs[0] })
	return chains
}

// compile validates spec and expands it to the full point list, measuring
// the HEFT reference of an alpha sweep when needed (on the caller's
// session, so a warm session serves it from its memos).
func compile(ctx context.Context, sess *memsched.Session, spec *Spec) (*compiled, error) {
	if err := validateAxes(spec); err != nil {
		return nil, err
	}
	c := &compiled{
		schedulers: make([]string, 0, len(spec.Schedulers)),
		seeds:      spec.Seeds,
	}
	for _, name := range spec.Schedulers {
		norm := normalize(name)
		if !KnownScheduler(norm) {
			return nil, fmt.Errorf("sweep: unknown scheduler %q (known: %v)", name, SchedulerNames())
		}
		c.schedulers = append(c.schedulers, norm)
	}
	if len(c.schedulers) == 0 {
		c.schedulers = []string{"memheft"}
	}
	if len(c.seeds) == 0 {
		c.seeds = []int64{0}
	}

	if len(spec.Points) > 0 {
		c.points = make([]Point, len(spec.Points))
		for i, pt := range spec.Points {
			pt.Scheduler = normalize(pt.Scheduler)
			if pt.Scheduler == "" {
				pt.Scheduler = "memheft"
			}
			if !KnownScheduler(pt.Scheduler) {
				return nil, fmt.Errorf("sweep: point %d has unknown scheduler %q", i, spec.Points[i].Scheduler)
			}
			if err := pt.Platform.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: point %d: %w", i, err)
			}
			c.points[i] = pt
		}
		return c, nil
	}

	// Grid: resolve the platform axis first.
	var platforms []memsched.Platform
	switch {
	case len(spec.Alphas) > 0:
		if err := spec.Base.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: base platform: %w", err)
		}
		peak := spec.Peak
		if peak == 0 {
			ref, err := sess.Schedule(ctx, spec.Base, memsched.WithScheduler("heft"), memsched.WithSeed(c.seeds[0]))
			if err != nil {
				return nil, fmt.Errorf("sweep: HEFT reference failed: %w", err)
			}
			for _, p := range ref.PeakResidency() {
				if p > peak {
					peak = p
				}
			}
			c.refMS = ref.Makespan()
		}
		c.peak = peak
		platforms = make([]memsched.Platform, len(spec.Alphas))
		c.axes = spec.Alphas
		for i, a := range spec.Alphas {
			platforms[i] = spec.Base.WithUniformBounds(int64(a * float64(peak)))
		}
	default:
		platforms = spec.Platforms
		c.axes = spec.Xs
		if c.axes == nil {
			c.axes = make([]float64, len(platforms))
			for i := range c.axes {
				c.axes[i] = float64(i)
			}
		}
		for i, p := range platforms {
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: platform %d: %w", i, err)
			}
		}
	}

	c.grid = true
	c.points = make([]Point, 0, len(platforms)*len(c.schedulers)*len(c.seeds))
	for ai, p := range platforms {
		alpha := 0.0
		if len(spec.Alphas) > 0 {
			alpha = spec.Alphas[ai]
		}
		for _, sched := range c.schedulers {
			for _, seed := range c.seeds {
				c.points = append(c.points, Point{
					Platform:  p,
					Scheduler: sched,
					Seed:      seed,
					Axis:      ai,
					X:         c.axes[ai],
					Alpha:     alpha,
				})
			}
		}
	}
	return c, nil
}

// runPoint executes one point, warm-starting registry schedulers when the
// point sits on a warm chain. Infeasibility (memory bound, simulator
// deadlock, proven-infeasible optimum) is a regular result; every other
// error is fatal to the sweep.
func runPoint(ctx context.Context, sess *memsched.Session, spec *Spec, pt Point, idx int, warm bool) outcome {
	var (
		res *memsched.Result
		err error
	)
	switch pt.Scheduler {
	case SchedulerOptimal:
		opts := []memsched.ScheduleOption{memsched.WithSeed(pt.Seed), memsched.WithMaxNodes(spec.OptNodes)}
		if pt.Incumbent != nil {
			opts = append(opts, memsched.WithIncumbent(pt.Incumbent))
		}
		if spec.OptTimeout > 0 {
			opts = append(opts, memsched.WithTimeout(spec.OptTimeout))
		}
		res, err = sess.Optimal(ctx, pt.Platform, opts...)
	case SchedulerSimRank, SchedulerSimEFT:
		policy := memsched.SimRankPolicy
		if pt.Scheduler == SchedulerSimEFT {
			policy = memsched.SimEFTPolicy
		}
		res, err = sess.Simulate(ctx, pt.Platform, memsched.WithPolicy(policy), memsched.WithSeed(pt.Seed))
	default:
		res, err = sess.Schedule(ctx, pt.Platform,
			memsched.WithScheduler(pt.Scheduler), memsched.WithSeed(pt.Seed), memsched.WithWarmStart(warm))
	}

	pr := PointResult{Index: idx, Point: pt}
	switch {
	case errors.Is(err, memsched.ErrMemoryBound):
		pr.Reason = "memory_bound"
	case errors.Is(err, memsched.ErrSimStuck):
		pr.Reason = "sim_stuck"
	case err != nil:
		return outcome{err: fmt.Errorf("sweep: point %d (%s): %w", idx, pt.Scheduler, err)}
	case res.Schedule == nil && res.Pools == nil:
		// Optimal with no incumbent in budget, or proven infeasible.
		pr.Reason = "infeasible"
		pr.Stats = res.Stats
	default:
		pr.Feasible = true
		pr.Makespan = res.Makespan()
		pr.Peaks = res.PeakResidency()
		pr.Stats = res.Stats
		pr.ReplayedPlacements = res.Stats.ReplayedPlacements
		pr.ReplayTruncated = res.Stats.ReplayTruncated
		if spec.KeepResults {
			pr.Result = res
		}
	}
	return outcome{pr: pr}
}
